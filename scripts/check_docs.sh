#!/usr/bin/env bash
# Documentation freshness gate (ctest label: docs).
#
# The docs make seven kinds of checkable claims, and each has rotted at
# least once before this gate existed:
#   1. repo paths in backticks (`src/...`, `tests/...`, `scripts/...`)
#   2. section references of the form `DESIGN.md §N` — in the docs AND in
#      source comments
#   3. experiment rows `| E<k> ...` in EXPERIMENTS.md (must be contiguous
#      from E1) and `bench_<name>` binaries the docs tell the reader to run
#   4. C++ code fences in README.md (compile-checked against src/)
#   5. `ctest -L <label>` commands (the label must exist in tests/CMakeLists.txt)
#   6. benchmark figures quoted in prose, via `<!-- bench-quote: ... -->`
#      annotations diffed against bench_output.txt with a tolerance
#   7. the annotations themselves must not be skipped: a prose line that
#      names a benchmark row AND quotes a unit figure (ns/us/ms/rows/s/%)
#      in a file with no bench-quote annotation for that row is drift
#      check 6 can never catch — flagged here
#
# `--selftest-figures` runs check 7 against a deliberately planted
# violation (and a properly annotated control) instead of the real docs;
# tests/CMakeLists.txt registers it as the gate's negative test.
#
# Fails loudly with every stale reference, not just the first.

set -u

ROOT="${REPO_ROOT:-$(cd "$(dirname "$0")/.." && pwd)}"
cd "$ROOT" || exit 1

DOCS="README.md DESIGN.md EXPERIMENTS.md ROADMAP.md"
failures=0

fail() {
  echo "check_docs: $*" >&2
  failures=$((failures + 1))
}

# ---- 7 (function; called below, and by --selftest-figures) ---------------
# A benchmark figure quoted WITHOUT an annotation is invisible to check 6 —
# it would silently rot on the next re-run. Heuristic with no false
# negatives on the current docs: any line that names a row from
# bench_output.txt (first column, base name before any '/') and also quotes
# a number with a unit must have a `<!-- bench-quote: <row> ... -->`
# somewhere in the same file.
check_unannotated_figures() {
  [ -f bench_output.txt ] || return 0
  bench_names=$(awk '$2 ~ /^[0-9.]+$/ && $3 ~ /^(ns|us|ms|s)$/ {
                      split($1, a, "/"); print a[1]
                    }' bench_output.txt | sort -u)
  [ -n "$bench_names" ] || return 0
  for doc in "$@"; do
    [ -f "$doc" ] || continue
    for name in $bench_names; do
      hit=$(grep -nE "\b${name}\b" "$doc" |
            grep -E '[0-9]+(\.[0-9]+)?[[:space:]]*(ns|µs|us|ms|rows/s|%)' |
            head -1)
      [ -n "$hit" ] || continue
      grep -q "<!-- bench-quote: ${name}" "$doc" && continue
      fail "$doc:${hit%%:*} quotes a figure next to bench row '${name}' with no annotation — add '<!-- bench-quote: ${name} <field> <value> [tol=<pct>] -->' on an adjacent line (or drop the number)"
    done
  done
}

if [ "${1:-}" = "--selftest-figures" ]; then
  name=$(awk '$2 ~ /^[0-9.]+$/ && $3 ~ /^(ns|us|ms|s)$/ {
                split($1, a, "/"); print a[1]; exit
              }' bench_output.txt)
  [ -n "$name" ] || { echo "check_docs: selftest needs bench_output.txt" >&2; exit 1; }
  tmp=$(mktemp -d)
  # Planted drift: a figure beside a real row name, no annotation.
  printf 'The %s run takes 123 ms on this machine.\n' "$name" > "$tmp/planted.md"
  # Control: same claim, properly annotated — must NOT be flagged.
  printf 'The %s run takes 123 ms on this machine.\n<!-- bench-quote: %s time 123 -->\n' \
      "$name" "$name" > "$tmp/annotated.md"
  check_unannotated_figures "$tmp/planted.md"
  planted=$failures
  check_unannotated_figures "$tmp/annotated.md"
  control=$((failures - planted))
  rm -rf "$tmp"
  if [ "$planted" -ge 1 ] && [ "$control" -eq 0 ]; then
    echo "check_docs: selftest OK (planted drift flagged, annotated control clean)"
    exit 0
  fi
  echo "check_docs: SELFTEST FAILED (planted=$planted flagged, control=$control flagged)" >&2
  exit 1
fi

# ---- 1. backticked repo paths must exist --------------------------------
for doc in $DOCS; do
  [ -f "$doc" ] || { fail "missing doc $doc"; continue; }
  # `...` spans that look like tree paths; globs (src/engines/*) skipped.
  grep -oE '`[^`]+`' "$doc" | tr -d '`' |
    grep -E '^(src|tests|bench|examples|scripts)/[A-Za-z0-9_./-]+$' |
    sort -u |
    while read -r path; do
      [ -e "$path" ] || echo "$doc names missing path: $path"
    done
done > /tmp/check_docs_paths.$$
while read -r line; do fail "$line"; done < /tmp/check_docs_paths.$$
rm -f /tmp/check_docs_paths.$$

# ---- 2. DESIGN.md §N references must resolve to a "## N." heading -------
refs=$(grep -rhoE 'DESIGN\.md §[0-9]+' $DOCS src tests bench examples scripts 2>/dev/null |
  grep -oE '[0-9]+' | sort -un)
for n in $refs; do
  grep -qE "^## ${n}\." DESIGN.md ||
    fail "reference to DESIGN.md §${n} but DESIGN.md has no '## ${n}.' heading"
done

# ---- 3a. EXPERIMENTS.md rows E1..Emax must be contiguous ----------------
rows=$(grep -oE '^\| E[0-9]+' EXPERIMENTS.md | grep -oE '[0-9]+' | sort -un)
max=$(echo "$rows" | tail -1)
if [ -z "$max" ]; then
  fail "EXPERIMENTS.md has no '| E<k>' experiment rows"
else
  for k in $(seq 1 "$max"); do
    echo "$rows" | grep -qx "$k" ||
      fail "EXPERIMENTS.md experiment rows skip E${k} (max row is E${max})"
  done
fi

# ---- 3b. bench binaries the docs mention must exist ---------------------
for tok in $(grep -ohE '\bbench_[a-z0-9_]+\b' README.md EXPERIMENTS.md | sort -u); do
  case "$tok" in
    bench_output) continue ;;  # bench_output.txt, the capture — checked next
  esac
  [ -f "bench/${tok}.cpp" ] ||
    fail "docs mention ${tok} but bench/${tok}.cpp does not exist"
done

# EXPERIMENTS.md points readers at the raw capture; it must be committed.
if grep -q 'bench_output\.txt' EXPERIMENTS.md; then
  [ -f bench_output.txt ] ||
    fail "EXPERIMENTS.md references bench_output.txt but it is not in the tree"
fi

# ---- 4. README C++ snippets must compile --------------------------------
# Every ```cpp fence in README.md is stitched into one translation unit:
# #include lines are hoisted to the top, each snippet body becomes a nested
# scope inside main() (nested, not sibling, so later snippets may use
# variables earlier ones declared). Syntax-only: no linking, no running.
if grep -q '^```cpp' README.md; then
  snippet_dir=$(mktemp -d)
  awk '/^```cpp/{inblock=1; n++; next} /^```/{inblock=0; next}
       inblock{print > sprintf("'"$snippet_dir"'/snippet%03d.inc", n)}' README.md
  tu="$snippet_dir/readme_snippets.cpp"
  {
    grep -h '^#include' "$snippet_dir"/snippet*.inc 2>/dev/null | sort -u
    echo "using namespace poly;"
    echo "int main() {"
    opens=0
    for inc in "$snippet_dir"/snippet*.inc; do
      [ -f "$inc" ] || continue
      echo "{"
      opens=$((opens + 1))
      grep -v '^#include' "$inc"
    done
    for _ in $(seq 1 "$opens"); do echo "}"; done
    echo "return 0; }"
  } > "$tu"
  if ! "${CXX:-c++}" -std=c++20 -fsyntax-only -I "$ROOT/src" "$tu" 2> "$snippet_dir/err"; then
    sed 's/^/check_docs:   /' "$snippet_dir/err" >&2
    fail "README.md \`\`\`cpp snippets no longer compile against src/ (see above)"
  fi
  rm -rf "$snippet_dir"
fi

# ---- 5. ctest labels the docs mention must exist -------------------------
for label in $(grep -rhoE 'ctest[^|)]* -L [a-z0-9_-]+' $DOCS 2>/dev/null |
               sed -E 's/.* -L ([a-z0-9_-]+).*/\1/' | sort -u); do
  grep -qE "LABELS[[:space:]]+.*\b${label}\b" tests/CMakeLists.txt ||
    fail "docs tell the reader to run 'ctest -L ${label}' but tests/CMakeLists.txt defines no such label"
done

# ---- 6. bench numbers quoted in docs must match bench_output.txt ---------
# Prose that quotes a benchmark figure carries a machine-readable annotation
# on an adjacent line:
#   <!-- bench-quote: <BenchmarkName> <field> <value> [tol=<pct>] -->
# field is `time` (wall time, in the unit bench_output.txt prints for that
# row), `cpu`, or a google-benchmark counter name (e.g. hot_hit_rate). The
# value is diffed against the committed capture with a relative tolerance:
# default 5%, per-quote override via tol=, global override via
# BENCH_QUOTE_TOL. Re-quoting after a re-run means updating both the prose
# and the annotation — which is the point.
if [ -f bench_output.txt ]; then
  grep -hoE '<!-- bench-quote: [^>]+ -->' README.md EXPERIMENTS.md 2>/dev/null |
  sed -E 's/<!-- bench-quote: (.*) -->/\1/' |
  while read -r name field value rest; do
    tol="${BENCH_QUOTE_TOL:-5}"
    case "$rest" in tol=*) tol="${rest#tol=}" ;; esac
    row=$(grep -E "^${name}[[:space:]]" bench_output.txt | head -1)
    if [ -z "$row" ]; then
      echo "bench-quote: no '${name}' row in bench_output.txt"
      continue
    fi
    case "$field" in
      time) actual=$(echo "$row" | awk '{print $2}') ;;
      cpu)  actual=$(echo "$row" | awk '{print $4}') ;;
      *)    actual=$(echo "$row" | grep -oE "${field}=[0-9.eE+-]+" | head -1 |
                     cut -d= -f2) ;;
    esac
    if [ -z "$actual" ]; then
      echo "bench-quote: '${name}' row has no field '${field}' in bench_output.txt"
      continue
    fi
    ok=$(awk -v q="$value" -v a="$actual" -v t="$tol" 'BEGIN {
      d = q - a; if (d < 0) d = -d
      base = a; if (base < 0) base = -base
      if (base == 0) print (d == 0 ? "yes" : "no")
      else print (d / base * 100 <= t ? "yes" : "no")
    }')
    [ "$ok" = yes ] ||
      echo "bench-quote: docs quote ${name} ${field}=${value} but bench_output.txt has ${actual} (tolerance ${tol}%)"
  done > /tmp/check_docs_bench.$$
  while read -r line; do fail "$line"; done < /tmp/check_docs_bench.$$
  rm -f /tmp/check_docs_bench.$$
fi

# ---- 7. figures quoted beside bench rows must carry an annotation --------
check_unannotated_figures README.md EXPERIMENTS.md

# ---- summary ------------------------------------------------------------
if [ "$failures" -gt 0 ]; then
  echo "check_docs: FAILED with $failures stale reference(s)" >&2
  exit 1
fi
echo "check_docs: OK"
