#!/usr/bin/env bash
# One command for every tier-2 gate — the checks that are stronger than the
# default `ctest` tier-1 run but too slow or too specialized to sit in it.
#
# Gates, in cheap-to-expensive order (a later gate only runs if the earlier
# ones pass, so a docs typo fails in seconds, not after a TSan rebuild):
#   1. docs        scripts/check_docs.sh + its --selftest-figures negative
#                  test (ctest -L docs)
#   2. tiering     three-band policy/daemon/heat regression suite
#                  (ctest -L tiering)
#   3. resource    workload-management suite: memory budget, admission,
#                  pressure broker, balance oracle (ctest -L resource)
#   4. soe-sql     distributed-SQL suite: fragment planner, shuffle and
#                  broadcast joins, the 50-seed distributed-vs-local oracle,
#                  mid-shuffle chaos (ctest -L soe-sql)
#   5. chaos       seeded chaos-oracle sweep, default 50 seeds
#                  (scripts/chaos_sweep.sh; ctest -L chaos runs the in-suite
#                  subset)
#   6. tsan        whole-suite ThreadSanitizer build + run
#                  (scripts/run_tsan.sh; ctest -L tsan-full in build-tsan)
#
# Usage:
#   scripts/run_gates.sh            # all gates, needs an existing ./build
#   scripts/run_gates.sh docs tsan  # just the named gates
#
# Environment:
#   BUILD_DIR=build        tier-1 build tree (gates 1–3)
#   CHAOS_SEEDS=50         seed count for the chaos sweep
#   SKIP_TSAN_BUILD=       set non-empty to reuse an existing build-tsan
set -u

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-${REPO_ROOT}/build}"
CHAOS_SEEDS="${CHAOS_SEEDS:-50}"
GATES="${*:-docs tiering resource soe-sql chaos tsan}"

if [[ ! -d "$BUILD_DIR" ]]; then
  echo "run_gates.sh: no build tree at $BUILD_DIR" >&2
  echo "build first: cmake -B build -S . && cmake --build build -j" >&2
  exit 2
fi

run_gate() {
  local name="$1"; shift
  echo
  echo "==== gate: $name ===="
  if "$@"; then
    echo "==== gate: $name OK ===="
  else
    echo "run_gates.sh: gate '$name' FAILED" >&2
    exit 1
  fi
}

for gate in $GATES; do
  case "$gate" in
    docs)
      run_gate docs ctest --test-dir "$BUILD_DIR" -L docs --output-on-failure
      ;;
    tiering)
      run_gate tiering ctest --test-dir "$BUILD_DIR" -L tiering --output-on-failure
      ;;
    resource)
      run_gate resource ctest --test-dir "$BUILD_DIR" -L resource --output-on-failure
      ;;
    soe-sql)
      run_gate soe-sql ctest --test-dir "$BUILD_DIR" -L soe-sql --output-on-failure
      ;;
    chaos)
      run_gate chaos "$REPO_ROOT/scripts/chaos_sweep.sh" "$CHAOS_SEEDS" "$BUILD_DIR"
      ;;
    tsan)
      run_gate tsan "$REPO_ROOT/scripts/run_tsan.sh"
      ;;
    *)
      echo "run_gates.sh: unknown gate '$gate' (know: docs tiering resource soe-sql chaos tsan)" >&2
      exit 2
      ;;
  esac
done

echo
echo "run_gates.sh: all gates passed ($GATES)"
