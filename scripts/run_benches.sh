#!/usr/bin/env bash
# Regenerates bench_output.txt — the raw capture EXPERIMENTS.md quotes from.
#
# Usage: scripts/run_benches.sh [build-dir] [extra google-benchmark flags...]
# Example (quick pass): scripts/run_benches.sh build --benchmark_min_time=0.1
#
# Runs every bench binary in <build-dir>/bench in name order and writes the
# combined output to bench_output.txt in the repo root. Expect a full pass
# to take tens of minutes on one core; numbers in EXPERIMENTS.md are from
# this machine class, so regenerate rather than compare across hosts.

set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-build}"
shift || true

if [ ! -d "$ROOT/$BUILD/bench" ]; then
  echo "run_benches: no $BUILD/bench directory — build first:" >&2
  echo "  cmake -B $BUILD -S . && cmake --build $BUILD -j" >&2
  exit 1
fi

OUT="$ROOT/bench_output.txt"
: > "$OUT"
for b in "$ROOT/$BUILD"/bench/bench_*; do
  [ -x "$b" ] || continue
  echo "== $(basename "$b") ==" | tee -a "$OUT"
  "$b" "$@" 2>&1 | tee -a "$OUT"
  echo | tee -a "$OUT"
done
echo "run_benches: wrote $OUT"
