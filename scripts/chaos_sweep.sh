#!/usr/bin/env bash
# Runs the seeded chaos oracle once per seed and prints every failing seed
# with the exact command to replay it. The oracle is fully deterministic, so
# a failing seed reproduces the failure byte-for-byte.
#
# Usage: scripts/chaos_sweep.sh [num_seeds] [build_dir]
#   num_seeds  seeds 1..N to sweep (default 50)
#   build_dir  cmake build directory containing tests/poly_tests (default build)
set -u

NUM_SEEDS="${1:-50}"
BUILD_DIR="${2:-build}"
TESTS_BIN="$BUILD_DIR/tests/poly_tests"

if [[ ! -x "$TESTS_BIN" ]]; then
  echo "error: $TESTS_BIN not found or not executable." >&2
  echo "build first: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
  exit 2
fi

failing=()
for seed in $(seq 1 "$NUM_SEEDS"); do
  if POLY_CHAOS_SEED="$seed" "$TESTS_BIN" --gtest_filter='ChaosOracle.*' \
      --gtest_brief=1 >/dev/null 2>&1; then
    printf 'seed %4d: ok\n' "$seed"
  else
    printf 'seed %4d: FAILED\n' "$seed"
    failing+=("$seed")
  fi
done

echo
if [[ ${#failing[@]} -eq 0 ]]; then
  echo "chaos sweep: all $NUM_SEEDS seeds passed"
  exit 0
fi

echo "chaos sweep: ${#failing[@]}/$NUM_SEEDS seeds FAILED: ${failing[*]}"
echo "replay one with:"
echo "  POLY_CHAOS_SEED=${failing[0]} $TESTS_BIN --gtest_filter='ChaosOracle.*'"
exit 1
