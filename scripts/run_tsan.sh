#!/usr/bin/env bash
# Whole-suite ThreadSanitizer gate (tier 2).
#
# Configures a dedicated build tree with -DPOLY_SANITIZE=thread, builds the
# test binary, and runs every gtest suite (`ctest -L tsan-full`) under TSan
# with halt_on_error=1 so ANY data-race report fails the run — there is no
# quarantine list. The reader-safe MVCC version store (DESIGN.md §12) is what
# makes the full suite eligible: snapshot readers bound their scans by an
# atomically published watermark and pin an epoch instead of racing writer
# push_backs.
#
# Usage:
#   scripts/run_tsan.sh [build-dir]       # default build dir: build-tsan
#
# Optional environment:
#   CTEST_LABEL=concurrency   run a narrower label instead of the full suite
#   POLY_MVCC_SEED=<n>        replay one oracle seed (see mvcc_concurrency_test)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build-tsan}"
LABEL="${CTEST_LABEL:-tsan-full}"

# No-quarantine invariant: the MVCC gate file must not carry disabled tests.
# The §12.5 value-read gaps were once parked as DISABLED_ known-gap tests;
# now that chunked value storage closed them, re-disabling any test in this
# file would silently shrink the gate — fail loudly instead.
if grep -q "DISABLED_" "${REPO_ROOT}/tests/mvcc_concurrency_test.cpp"; then
  echo "run_tsan.sh: tests/mvcc_concurrency_test.cpp contains DISABLED_ tests;" >&2
  echo "the MVCC concurrency gate must run every test it defines." >&2
  exit 1
fi

cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" -DPOLY_SANITIZE=thread
cmake --build "${BUILD_DIR}" -j"$(nproc)"

# halt_on_error=1: the first report aborts the test binary, so a single race
# fails ctest rather than scrolling past. second_deadlock_stack aids lock-
# order reports from the tiering daemon tests.
export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1 ${TSAN_OPTIONS:-}"

cd "${BUILD_DIR}"
ctest -L "${LABEL}" --output-on-failure
echo "TSan gate (${LABEL}): clean"
