// Scenario V-3 from the paper: a soap producer plans refill routes for
// washroom dispensers.
//
//  * fill-level sensor readings land in the (simulated) Hadoop DFS,
//  * event notices are unstructured text mined with the text engine,
//  * dispenser locations live in the geo engine,
//  * the service road network is a graph view over a relational edge table,
//  * ERP master data stays relational,
// and one program combines all engines — the paper's "polyphonic data
// management" demonstration.

#include <cstdio>
#include <set>

#include "engines/geo/geo_index.h"
#include "engines/graph/graph_view.h"
#include "engines/text/text_engine.h"
#include "engines/timeseries/ts_ops.h"
#include "hadoop/table_connector.h"
#include "txn/transaction_manager.h"

using namespace poly;

int main() {
  Database db;
  TransactionManager tm;
  SimulatedDfs dfs;

  // ---- ERP master data: dispensers with locations (relational + geo) ----
  ColumnTable* dispensers = *db.CreateTable(
      "dispensers", Schema({ColumnDef("id", DataType::kInt64),
                            ColumnDef("site", DataType::kString),
                            ColumnDef("road_node", DataType::kInt64),
                            ColumnDef("location", DataType::kGeoPoint)}));
  {
    auto txn = tm.Begin();
    const char* sites[] = {"airport", "mall", "stadium", "office"};
    for (int i = 0; i < 12; ++i) {
      double lon = 8.40 + (i % 4) * 0.05;
      double lat = 49.00 + (i / 4) * 0.04;
      (void)tm.Insert(txn.get(), dispensers,
                      {Value::Int(i), Value::Str(sites[i % 4]), Value::Int(i),
                       Value::GeoPoint(lon, lat)});
    }
    (void)tm.Commit(txn.get());
  }

  // ---- Sensor data: fill levels arrive as a DFS file (IoT ingest) ----
  {
    std::string tsv = "dispenser:INT64\tts:TIMESTAMP\tfill:DOUBLE\n";
    for (int d = 0; d < 12; ++d) {
      double fill = 100;
      for (int t = 0; t < 48; ++t) {
        fill -= (d % 5 == 0 ? 2.0 : 0.7);  // some dispensers drain fast
        if (fill < 0) fill = 0;
        tsv += std::to_string(d) + "\t" + std::to_string(t * 3600000000LL) + "\t" +
               std::to_string(fill) + "\n";
      }
    }
    (void)dfs.Write("/iot/fill_levels.tsv", tsv);
  }
  DfsTableConnector connector(&dfs);
  ColumnTable* readings = *connector.Import("/iot/fill_levels.tsv", "readings", &db, &tm);
  std::printf("imported %llu sensor readings from DFS\n",
              static_cast<unsigned long long>(readings->CountVisible(tm.AutoCommitView())));

  // ---- Event notices: unstructured text, mined for sites ----
  ColumnTable* notices = *db.CreateTable(
      "notices", Schema({ColumnDef("id", DataType::kInt64),
                         ColumnDef("body", DataType::kString)}));
  {
    auto txn = tm.Begin();
    (void)tm.Insert(txn.get(), notices,
                    {Value::Int(1), Value::Str("Big concert at the stadium this weekend, "
                                               "huge crowds expected")});
    (void)tm.Insert(txn.get(), notices,
                    {Value::Int(2), Value::Str("quarterly earnings call scheduled")});
    (void)tm.Commit(txn.get());
  }
  TextEngine text = *TextEngine::Create(notices, "body");
  text.Refresh();
  bool stadium_event = !text.Search("stadium crowds").empty();
  std::printf("event mining: stadium event expected = %s\n",
              stadium_event ? "yes" : "no");

  // ---- Decide which dispensers need a refill ----
  ReadView now = tm.AutoCommitView();
  std::set<int64_t> to_refill;
  for (int d = 0; d < 12; ++d) {
    TimeSeries series = *SeriesFromTable(*readings, now, "ts", "fill", "dispenser", d);
    double last_fill = series.values.back();
    // Proactive refill threshold rises for event sites (the paper's
    // "fill them earlier, if they have notice of a major event").
    Value site = dispensers->GetValue(static_cast<uint64_t>(d), 1);
    double threshold = (stadium_event && site.AsString() == "stadium") ? 80.0 : 25.0;
    if (last_fill < threshold) to_refill.insert(d);
  }
  std::printf("dispensers needing refill: %zu of 12\n", to_refill.size());

  // ---- Service road network: graph view over a relational edge table ----
  ColumnTable* roads = *db.CreateTable(
      "roads", Schema({ColumnDef("src", DataType::kInt64),
                       ColumnDef("dst", DataType::kInt64),
                       ColumnDef("km", DataType::kDouble)}));
  {
    auto txn = tm.Begin();
    // Chain 0-1-2-...-11 plus a few shortcuts; node 100 is the depot.
    for (int i = 0; i < 11; ++i) {
      (void)tm.Insert(txn.get(), roads,
                      {Value::Int(i), Value::Int(i + 1), Value::Dbl(2.0)});
    }
    (void)tm.Insert(txn.get(), roads, {Value::Int(100), Value::Int(0), Value::Dbl(1.0)});
    (void)tm.Insert(txn.get(), roads, {Value::Int(100), Value::Int(6), Value::Dbl(3.0)});
    (void)tm.Commit(txn.get());
  }
  GraphView road_graph =
      *GraphView::Build(*roads, tm.AutoCommitView(), "src", "dst", "km",
                        /*directed=*/false);

  // ---- Route: nearest-neighbour tour over refill targets ----
  std::printf("\nrefill tour from depot (node 100):\n");
  int64_t position = 100;
  double total_km = 0;
  std::set<int64_t> remaining = to_refill;
  while (!remaining.empty()) {
    double best_cost = 1e18;
    int64_t best = -1;
    std::vector<int64_t> best_path;
    for (int64_t target : remaining) {
      double cost;
      auto path = road_graph.ShortestPath(position, target, &cost);
      if (!path.empty() && cost < best_cost) {
        best_cost = cost;
        best = target;
        best_path = path;
      }
    }
    if (best < 0) break;
    Value site = dispensers->GetValue(static_cast<uint64_t>(best), 1);
    std::printf("  -> dispenser %lld at %s (%.1f km, %zu hops)\n",
                static_cast<long long>(best), site.AsString().c_str(), best_cost,
                best_path.size() - 1);
    total_km += best_cost;
    position = best;
    remaining.erase(best);
  }
  std::printf("tour length: %.1f km\n", total_km);

  // ---- Geo check: which dispensers sit within 5 km of the stadium? ----
  GeoIndex geo = *GeoIndex::Build(*dispensers, tm.AutoCommitView(), "location", 0.05);
  GeoPointValue stadium_gate{8.50, 49.04};
  auto nearby = geo.WithinDistance(stadium_gate, 5000);
  std::printf("dispensers within 5 km of the stadium gate: %zu\n", nearby.size());

  std::printf("\nscenario complete: sensor (DFS) + text + geo + graph + ERP combined.\n");
  return 0;
}
