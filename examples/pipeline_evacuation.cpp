// Scenario V-5 from the paper: a gas-pipeline operator computes an
// evacuation plan in real time when a leak is detected.
//
//  * the pipeline is "a huge graph" stored relationally and interpreted
//    through a graph view,
//  * "in addition to the logical perspective [...] the location information
//    for the graph is stored" — every node carries a geo position,
//  * a leak event triggers: find the affected pipeline section (graph
//    reachability along flow direction), find everyone nearby (geo), and
//    compute evacuation routes to shelters (weighted shortest paths).

#include <cstdio>

#include "engines/geo/geo_index.h"
#include "engines/graph/graph_view.h"
#include "engines/graph/hierarchy.h"
#include "txn/transaction_manager.h"

using namespace poly;

int main() {
  Database db;
  TransactionManager tm;

  // ---- Pipeline topology: 40-node grid-ish network with flow direction --
  ColumnTable* pipes = *db.CreateTable(
      "pipes", Schema({ColumnDef("src", DataType::kInt64),
                       ColumnDef("dst", DataType::kInt64),
                       ColumnDef("length_km", DataType::kDouble)}));
  ColumnTable* stations = *db.CreateTable(
      "stations", Schema({ColumnDef("id", DataType::kInt64),
                          ColumnDef("kind", DataType::kString),
                          ColumnDef("pos", DataType::kGeoPoint)}));
  {
    auto txn = tm.Begin();
    // Main trunk 0->1->...->19, two branches.
    for (int i = 0; i < 19; ++i) {
      (void)tm.Insert(txn.get(), pipes,
                      {Value::Int(i), Value::Int(i + 1), Value::Dbl(5.0)});
    }
    for (int i = 0; i < 10; ++i) {
      (void)tm.Insert(txn.get(), pipes,
                      {Value::Int(5), Value::Int(20 + i), Value::Dbl(3.0)});
    }
    for (int i = 0; i < 10; ++i) {
      (void)tm.Insert(txn.get(), pipes,
                      {Value::Int(12), Value::Int(30 + i), Value::Dbl(4.0)});
    }
    // Station positions roughly along a line; branches fan out north.
    for (int i = 0; i < 40; ++i) {
      double lon = 10.0 + (i < 20 ? i * 0.05 : (i < 30 ? 5 * 0.05 : 12 * 0.05));
      double lat = 50.0 + (i < 20 ? 0.0 : 0.03 * (i % 10 + 1));
      const char* kind = i % 7 == 0 ? "compressor" : "valve";
      (void)tm.Insert(txn.get(), stations,
                      {Value::Int(i), Value::Str(kind), Value::GeoPoint(lon, lat)});
    }
    (void)tm.Commit(txn.get());
  }
  ReadView now = tm.AutoCommitView();
  GraphView flow = *GraphView::Build(*pipes, now, "src", "dst", "length_km",
                                     /*directed=*/true);
  std::printf("pipeline graph: %zu stations, %zu segments\n", flow.num_nodes(),
              flow.num_edges());

  // ---- Leak detected at station 5: what is downstream? ----
  int64_t leak_at = 5;
  auto downstream = flow.NodesWithinCost(leak_at, 1e18);
  std::printf("leak at station %lld: %zu stations downstream must be shut\n",
              static_cast<long long>(leak_at), downstream.size() - 1);

  // Sections within 10 km of gas flow from the leak are the hot zone.
  auto hot_zone = flow.NodesWithinCost(leak_at, 10.0);
  std::printf("hot zone (<= 10 km of pipe from the leak): %zu stations\n",
              hot_zone.size());

  // ---- Geo: population sites near the hot zone ----
  ColumnTable* sites = *db.CreateTable(
      "sites", Schema({ColumnDef("id", DataType::kInt64),
                       ColumnDef("people", DataType::kInt64),
                       ColumnDef("pos", DataType::kGeoPoint)}));
  {
    auto txn = tm.Begin();
    for (int i = 0; i < 30; ++i) {
      double lon = 10.0 + (i % 10) * 0.09;
      double lat = 49.98 + (i / 10) * 0.05;
      (void)tm.Insert(txn.get(), sites,
                      {Value::Int(i), Value::Int(50 + 10 * (i % 7)),
                       Value::GeoPoint(lon, lat)});
    }
    (void)tm.Commit(txn.get());
  }
  now = tm.AutoCommitView();
  GeoIndex site_index = *GeoIndex::Build(*sites, now, "pos", 0.05);

  int64_t people_affected = 0;
  std::vector<uint64_t> affected_sites;
  for (int64_t station : hot_zone) {
    GeoPointValue pos =
        stations->GetValue(static_cast<uint64_t>(station), 2).AsGeoPoint();
    for (uint64_t site_row : site_index.WithinDistance(pos, 4000)) {
      if (std::find(affected_sites.begin(), affected_sites.end(), site_row) ==
          affected_sites.end()) {
        affected_sites.push_back(site_row);
        people_affected += sites->GetValue(site_row, 1).AsInt();
      }
    }
  }
  std::printf("evacuation needed for %zu sites, %lld people\n", affected_sites.size(),
              static_cast<long long>(people_affected));

  // ---- Evacuation routes on the road network (undirected graph) ----
  ColumnTable* roads = *db.CreateTable(
      "roads", Schema({ColumnDef("src", DataType::kInt64),
                       ColumnDef("dst", DataType::kInt64),
                       ColumnDef("minutes", DataType::kDouble)}));
  {
    auto txn = tm.Begin();
    // Site i connects to neighbours i-1/i+1 and to one of two shelters
    // (900 west, 901 east) at varying cost.
    for (int i = 0; i < 29; ++i) {
      (void)tm.Insert(txn.get(), roads,
                      {Value::Int(i), Value::Int(i + 1), Value::Dbl(6.0)});
    }
    (void)tm.Insert(txn.get(), roads, {Value::Int(0), Value::Int(900), Value::Dbl(10.0)});
    (void)tm.Insert(txn.get(), roads, {Value::Int(29), Value::Int(901), Value::Dbl(10.0)});
    (void)tm.Commit(txn.get());
  }
  GraphView road = *GraphView::Build(*roads, tm.AutoCommitView(), "src", "dst",
                                     "minutes", /*directed=*/false);
  std::printf("\nevacuation routes:\n");
  for (uint64_t site_row : affected_sites) {
    int64_t site = sites->GetValue(site_row, 0).AsInt();
    double west_cost, east_cost;
    auto west = road.ShortestPath(site, 900, &west_cost);
    auto east = road.ShortestPath(site, 901, &east_cost);
    const char* shelter = west_cost <= east_cost ? "west" : "east";
    double minutes = std::min(west_cost, east_cost);
    std::printf("  site %lld -> %s shelter, %.0f min, %zu waypoints\n",
                static_cast<long long>(site), shelter, minutes,
                (west_cost <= east_cost ? west : east).size());
  }

  // ---- Bonus: the shutdown command cascade is a hierarchy query ----
  ColumnTable* org = *db.CreateTable(
      "command_chain", Schema({ColumnDef("id", DataType::kInt64),
                               ColumnDef("parent", DataType::kInt64)}));
  {
    auto txn = tm.Begin();
    (void)tm.Insert(txn.get(), org, {Value::Int(1), Value::Null()});       // control room
    (void)tm.Insert(txn.get(), org, {Value::Int(2), Value::Int(1)});       // region A
    (void)tm.Insert(txn.get(), org, {Value::Int(3), Value::Int(1)});       // region B
    for (int i = 4; i < 10; ++i) {
      (void)tm.Insert(txn.get(), org, {Value::Int(i), Value::Int(i % 2 == 0 ? 2 : 3)});
    }
    (void)tm.Commit(txn.get());
  }
  HierarchyView chain = *HierarchyView::Build(*org, tm.AutoCommitView(), "id", "parent");
  std::printf("\nshutdown cascade: control room notifies %lld teams transitively\n",
              static_cast<long long>(*chain.CountDescendants(1)));

  std::printf("\nscenario complete: graph + geo + hierarchy combined in one engine.\n");
  return 0;
}
