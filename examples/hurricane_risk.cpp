// Scenario V-4 from the paper: an insurance company prices policies from
// hurricane history.
//
//  * historical hurricane tracks live on the (simulated) Hadoop store,
//  * customers and premiums live in the ERP (relational engine),
//  * customer locations live in the geospatial engine,
//  * the predictive engine fits a hurricane-frequency trend,
// and the computed risk profile flows back into the ERP table — "computed
// models have to go back to the ERP for consumption".

#include <cstdio>
#include <map>

#include "common/random.h"
#include "engines/geo/geo_index.h"
#include "engines/predictive/forecast.h"
#include "hadoop/table_connector.h"
#include "txn/transaction_manager.h"

using namespace poly;

int main() {
  Database db;
  TransactionManager tm;
  SimulatedDfs dfs;
  Random rng(2026);

  // ---- Hurricane history: 30 seasons of tracks, stored on the DFS ----
  // Each track is a sequence of (lon, lat) points moving roughly north-west
  // across a coastal band.
  {
    std::string tsv = "year:INT64\tstorm:INT64\tpoint:GEO_POINT\n";
    for (int year = 1995; year < 2025; ++year) {
      // Mild upward trend in storms per season.
      int storms = 4 + (year - 1995) / 8 + static_cast<int>(rng.Uniform(3));
      for (int s = 0; s < storms; ++s) {
        double lon = -80.0 - rng.NextDouble() * 3.0;
        double lat = 24.0 + rng.NextDouble() * 2.0;
        for (int step = 0; step < 10; ++step) {
          tsv += std::to_string(year) + "\t" + std::to_string(s) + "\t" +
                 std::to_string(lon) + ";" + std::to_string(lat) + "\n";
          lon -= 0.15 + rng.NextDouble() * 0.1;
          lat += 0.25 + rng.NextDouble() * 0.15;
        }
      }
    }
    (void)dfs.Write("/weather/hurricanes.tsv", tsv);
  }
  DfsTableConnector connector(&dfs);
  ColumnTable* tracks = *connector.Import("/weather/hurricanes.tsv", "tracks", &db, &tm);
  ReadView now = tm.AutoCommitView();
  std::printf("loaded %llu hurricane track points from DFS\n",
              static_cast<unsigned long long>(tracks->CountVisible(now)));

  // ---- ERP: customers with premiums and locations ----
  ColumnTable* customers = *db.CreateTable(
      "customers", Schema({ColumnDef("id", DataType::kInt64),
                           ColumnDef("premium", DataType::kDouble),
                           ColumnDef("home", DataType::kGeoPoint),
                           ColumnDef("risk_score", DataType::kDouble)}));
  {
    auto txn = tm.Begin();
    for (int i = 0; i < 200; ++i) {
      double lon = -84.0 + rng.NextDouble() * 5.0;
      double lat = 25.0 + rng.NextDouble() * 5.0;
      (void)tm.Insert(txn.get(), customers,
                      {Value::Int(i), Value::Dbl(800.0), Value::GeoPoint(lon, lat),
                       Value::Null()});
    }
    (void)tm.Commit(txn.get());
  }

  // ---- Predictive engine: storms-per-season trend + forecast ----
  std::map<int64_t, std::map<int64_t, bool>> season_storms;
  size_t year_col = 0, storm_col = 1;
  tracks->ScanVisible(now, [&](uint64_t r) {
    season_storms[tracks->GetValue(r, year_col).AsInt()]
                 [tracks->GetValue(r, storm_col).AsInt()] = true;
  });
  std::vector<double> per_season;
  for (const auto& [year, storms] : season_storms) {
    per_season.push_back(static_cast<double>(storms.size()));
  }
  LinearFit fit = *FitLinearTrend(per_season);
  auto forecast = *HoltLinear(per_season, 0.4, 0.2, 3);
  std::printf("storm seasons analysed: %zu, trend %+0.2f storms/season (r2=%.2f)\n",
              per_season.size(), fit.slope, fit.r2);
  std::printf("forecast next 3 seasons: %.1f, %.1f, %.1f storms\n", forecast[0],
              forecast[1], forecast[2]);

  // ---- Geo: exposure = historical track points near each customer ----
  GeoIndex track_index = *GeoIndex::Build(*tracks, now, "point", 0.25);
  auto txn = tm.Begin();
  uint64_t high_risk = 0;
  double scale = forecast[0] / (per_season.empty() ? 1.0 : per_season.back());
  std::vector<std::pair<uint64_t, Row>> updates;
  customers->ScanVisible(now, [&](uint64_t r) {
    GeoPointValue home = customers->GetValue(r, 2).AsGeoPoint();
    size_t hits = track_index.WithinDistance(home, 100000).size();  // 100 km
    double risk = static_cast<double>(hits) / 30.0 * scale;  // per forecast season
    Row row = customers->GetRow(r);
    row[3] = Value::Dbl(risk);
    row[1] = Value::Dbl(800.0 * (1.0 + risk * 0.10));  // re-price premium
    updates.emplace_back(r, std::move(row));
    if (risk > 1.0) ++high_risk;
  });
  for (auto& [r, row] : updates) {
    (void)tm.Update(txn.get(), customers, r, row);
  }
  (void)tm.Commit(txn.get());
  std::printf("risk profile written back to ERP: %llu of 200 customers high-risk\n",
              static_cast<unsigned long long>(high_risk));

  // ---- Report: premium uplift stats ----
  ReadView after = tm.AutoCommitView();
  double total_premium = 0;
  customers->ScanVisible(after, [&](uint64_t r) {
    total_premium += customers->GetValue(r, 1).AsDouble();
  });
  std::printf("total annual premium after re-pricing: %.0f (was %.0f)\n", total_premium,
              200 * 800.0);
  std::printf("\nscenario complete: DFS history + geo exposure + forecast -> ERP.\n");
  return 0;
}
