// A guided tour of the SAP HANA SOE reproduction (§IV, Figure 3): create a
// cluster, load a partitioned table through the transaction broker and the
// CORFU-style shared log, query it with distributed SQL, watch an OLAP node
// lag and catch up, kill a node, and rebalance from the log.

#include <cstdio>

#include "common/random.h"
#include "soe/rdd.h"
#include "soe/sql_bridge.h"

using namespace poly;

int main() {
  // ---- Cluster: 4 query/data nodes, 3 log units, log replication 2 ----
  SoeCluster::Options opts;
  opts.num_nodes = 4;
  opts.log_units = 3;
  opts.log_replication = 2;
  SoeCluster cluster(opts);
  std::printf("cluster up: %d nodes, %d log units\n", cluster.num_nodes(),
              cluster.log().num_units());

  // ---- DDL via the catalog service (v2catalog) ----
  Schema schema({ColumnDef("sensor", DataType::kInt64),
                 ColumnDef("site", DataType::kInt64),
                 ColumnDef("value", DataType::kDouble)});
  if (!cluster.CreateTable("readings", schema, PartitionSpec::Hash("sensor", 8),
                           /*replication=*/2)
           .ok()) {
    return 1;
  }
  std::printf("table 'readings': 8 hash partitions x2 replicas placed\n");

  // ---- Writes: transactions serialize through the shared log ----
  Random rng(1);
  std::vector<Row> batch;
  for (int i = 0; i < 5000; ++i) {
    batch.push_back({Value::Int(static_cast<int64_t>(rng.Uniform(200))),
                     Value::Int(static_cast<int64_t>(rng.Uniform(5))),
                     Value::Dbl(rng.NextDouble() * 100)});
  }
  auto offset = cluster.CommitInserts("readings", batch);
  std::printf("committed 5000 rows in one transaction at log offset %llu "
              "(log tail %llu)\n",
              static_cast<unsigned long long>(*offset),
              static_cast<unsigned long long>(cluster.log().Tail()));

  // ---- Distributed SQL through the single point of entry ----
  SoeSqlBridge sql(&cluster);
  auto rs = sql.Execute(
      "SELECT site, COUNT(*) AS readings, AVG(value) AS avg_v "
      "FROM readings GROUP BY site ORDER BY site");
  std::printf("\ndistributed SQL result:\n%s", rs->ToString().c_str());
  std::printf("coordinator stats: %zu partitions on %zu nodes, %llu bytes gathered\n",
              cluster.last_query_stats().partitions,
              cluster.last_query_stats().nodes_used,
              static_cast<unsigned long long>(
                  cluster.last_query_stats().result_bytes_gathered));

  // ---- RDD facade (§IV-C Spark integration) ----
  auto rdd = SoeRdd::FromTable(&cluster, "readings")
                 .Where(Expr::Compare(CmpOp::kLt, Expr::Column(0),
                                      Expr::Literal(Value::Int(10))));
  std::printf("\nRDD count of hot sensors (<10): %llu (pushed down: %s)\n",
              static_cast<unsigned long long>(*rdd.Count()),
              rdd.FullyPushable() ? "yes" : "no");

  // ---- OLTP vs OLAP consistency ----
  (void)cluster.SetNodeMode(0, NodeMode::kOlap);
  (void)cluster.CommitInserts(
      "readings", {{Value::Int(0), Value::Int(0), Value::Dbl(42.0)}});
  std::printf("\nnode 0 switched to OLAP: staleness %llu log offsets\n",
              static_cast<unsigned long long>(cluster.Staleness(0)));
  auto applied = cluster.PollNode(0);
  std::printf("poll applied %llu records -> staleness %llu\n",
              static_cast<unsigned long long>(*applied),
              static_cast<unsigned long long>(cluster.Staleness(0)));
  (void)cluster.SetNodeMode(0, NodeMode::kOltp);

  // ---- Failure: kill a node, queries fail over to replicas ----
  (void)cluster.KillNode(1);
  auto after_kill = sql.Execute("SELECT COUNT(*) AS n FROM readings");
  std::printf("\nnode 1 killed; count over replicas: %s\n",
              after_kill->rows[0][0].ToString().c_str());

  // ---- Cluster manager heals the replication factor from the log ----
  if (cluster.Rebalance().ok()) {
    std::printf("rebalance rebuilt under-replicated partitions by log replay\n");
  }
  (void)cluster.KillNode(2);  // would have been fatal before the rebalance
  auto after_second = sql.Execute("SELECT COUNT(*) AS n FROM readings");
  std::printf("node 2 also killed; count still answerable: %s\n",
              after_second.ok() ? after_second->rows[0][0].ToString().c_str()
                                : after_second.status().ToString().c_str());

  // ---- Statistics service (v2stats) ----
  // Per-node figures and Hotspot() both derive from the cluster's metric
  // registry (DESIGN.md §10) — the same numbers the fabric, the retry
  // layer, and the shared log counted into it.
  int hotspot = cluster.statistics().Hotspot();
  std::printf("\nhotspot per v2stats: node %d\n", hotspot);
  std::printf("%s", cluster.statistics().Report().c_str());
  std::printf("simulated network: %llu messages, %llu bytes (modeled %.2f ms)\n",
              static_cast<unsigned long long>(cluster.network().messages()),
              static_cast<unsigned long long>(cluster.network().bytes()),
              cluster.network().simulated_nanos() / 1e6);
  metrics::RegistrySnapshot snap = cluster.metrics().TakeSnapshot();
  std::printf("registry mirror: soe.net.messages=%llu soe.retry.count=%llu "
              "soe.log.appends=%llu\n",
              static_cast<unsigned long long>(snap.counter("soe.net.messages")),
              static_cast<unsigned long long>(snap.counter("soe.retry.count")),
              static_cast<unsigned long long>(snap.counter("soe.log.appends")));

  std::printf("\ntour complete: every Figure 3 service exercised.\n");
  return 0;
}
