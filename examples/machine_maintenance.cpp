// Scenario V-2 from the paper: predictive maintenance. "A customer
// institution collects massive sensor data within a large Hadoop
// installation [...] the ERP system shows the state of the current
// production [...] correlate the sensor data with events in the production
// process in order to analyze and predict machine failures."
//
//  * raw vibration readings live on the simulated DFS and are first
//    aggregated THERE with MapReduce (compute moves to the data),
//  * refined per-hour aggregates flow into the in-memory column store
//    (the paper's "data refinement process into the In-Memory structures"),
//  * the time-series engine correlates vibration with ERP failure events,
//  * the predictive engine forecasts the next failure window.

#include <cstdio>

#include "common/random.h"
#include "common/string_util.h"
#include "engines/predictive/forecast.h"
#include "engines/timeseries/ts_codec.h"
#include "engines/timeseries/ts_ops.h"
#include "hadoop/mapreduce.h"
#include "hadoop/table_connector.h"
#include "txn/transaction_manager.h"

using namespace poly;

int main() {
  Database db;
  TransactionManager tm;
  SimulatedDfs dfs;
  ThreadPool pool(4);
  Random rng(7);

  // ---- Raw sensor stream on DFS: machine \t minute \t vibration ----
  const int kMachines = 4, kHours = 72;
  {
    std::string raw;
    for (int m = 0; m < kMachines; ++m) {
      double wear = 0;
      for (int minute = 0; minute < kHours * 60; ++minute) {
        wear += (m == 2 ? 0.0008 : 0.0001);  // machine 2 degrades fast
        double vibration = 1.0 + wear + rng.NextGaussian() * 0.05;
        raw += std::to_string(m) + "\t" + std::to_string(minute) + "\t" +
               std::to_string(vibration) + "\n";
      }
    }
    (void)dfs.Write("/sensors/vibration.raw", raw);
    std::printf("raw sensor file: %zu bytes on DFS\n", raw.size());
  }

  // ---- Refine on the Hadoop side: MapReduce computes per-hour means ----
  MapReduceJob job(&dfs, &pool);
  auto stats = job.Run(
      "/sensors/vibration.raw", "/sensors/vibration.hourly",
      [](const std::string& line) {
        auto f = SplitString(line, '\t');
        std::vector<KeyValue> out;
        if (f.size() == 3) {
          long minute = std::stol(f[1]);
          out.push_back(KeyValue{f[0] + ":" + std::to_string(minute / 60), f[2]});
        }
        return out;
      },
      [](const std::string& key, const std::vector<std::string>& values) {
        double sum = 0;
        for (const auto& v : values) sum += std::stod(v);
        return std::vector<std::string>{key + "\t" +
                                        std::to_string(sum / values.size())};
      },
      /*num_reducers=*/4);
  std::printf("MapReduce refinement: %zu map tasks, %llu pairs -> hourly means\n",
              stats->map_tasks, static_cast<unsigned long long>(stats->map_output_pairs));

  // ---- Load the refined aggregates into the in-memory store ----
  ColumnTable* hourly = *db.CreateTable(
      "vibration_hourly", Schema({ColumnDef("machine", DataType::kInt64),
                                  ColumnDef("hour", DataType::kInt64),
                                  ColumnDef("mean_vibration", DataType::kDouble)}));
  {
    std::string refined = *dfs.Read("/sensors/vibration.hourly");
    auto txn = tm.Begin();
    for (const auto& line : SplitString(refined, '\n')) {
      if (line.empty()) continue;
      auto kv = SplitString(line, '\t');
      auto mk = SplitString(kv[0], ':');
      (void)tm.Insert(txn.get(), hourly,
                      {Value::Int(std::stoll(mk[0])), Value::Int(std::stoll(mk[1])),
                       Value::Dbl(std::stod(kv[1]))});
    }
    (void)tm.Commit(txn.get());
    hourly->Merge();
  }
  ReadView now = tm.AutoCommitView();
  std::printf("in-memory hourly table: %llu rows\n",
              static_cast<unsigned long long>(hourly->CountVisible(now)));

  // ---- ERP: production incidents (machine 2 had quality dips) ----
  ColumnTable* incidents = *db.CreateTable(
      "incidents", Schema({ColumnDef("machine", DataType::kInt64),
                           ColumnDef("hour", DataType::kInt64),
                           ColumnDef("defect_rate", DataType::kDouble)}));
  {
    auto txn = tm.Begin();
    for (int h = 0; h < kHours; ++h) {
      for (int m = 0; m < kMachines; ++m) {
        double base = m == 2 ? 0.01 + 0.0008 * 60 * h / 25.0 : 0.01;
        (void)tm.Insert(txn.get(), incidents,
                        {Value::Int(m), Value::Int(h),
                         Value::Dbl(base + rng.NextDouble() * 0.003)});
      }
    }
    (void)tm.Commit(txn.get());
  }
  now = tm.AutoCommitView();

  // ---- Correlate sensor vs ERP per machine (time-series engine) ----
  std::printf("\nvibration <-> defect-rate correlation per machine:\n");
  int worst_machine = -1;
  double worst_corr = -2;
  for (int m = 0; m < kMachines; ++m) {
    TimeSeries vib = *SeriesFromTable(*hourly, now, "hour", "mean_vibration",
                                      "machine", m);
    TimeSeries def = *SeriesFromTable(*incidents, now, "hour", "defect_rate",
                                      "machine", m);
    double corr = Correlation(vib, def, 1);
    std::printf("  machine %d: corr=%.2f\n", m, corr);
    if (corr > worst_corr) {
      worst_corr = corr;
      worst_machine = m;
    }
  }
  std::printf("machine %d shows the strongest wear signal (corr %.2f)\n", worst_machine,
              worst_corr);

  // ---- Forecast: when does the worst machine cross the failure limit? --
  TimeSeries vib = *SeriesFromTable(*hourly, now, "hour", "mean_vibration", "machine",
                                    worst_machine);
  auto forecast = *HoltLinear(vib.values, 0.3, 0.2, 48);
  const double kFailureLimit = 4.0;
  int hours_to_limit = -1;
  for (size_t h = 0; h < forecast.size(); ++h) {
    if (forecast[h] >= kFailureLimit) {
      hours_to_limit = static_cast<int>(h) + 1;
      break;
    }
  }
  if (hours_to_limit > 0) {
    std::printf("forecast: vibration limit %.1f reached in ~%d h -> schedule service\n",
                kFailureLimit, hours_to_limit);
  } else {
    std::printf("forecast: no failure within 48 h (last forecast %.2f)\n",
                forecast.back());
  }

  // ---- Archive: compress the hourly series for cheap retention ----
  CompressedSeries archive = CompressedSeries::FromSeries(vib);
  std::printf("archived machine %d series: %zu points, %.1fx compression\n",
              worst_machine, archive.num_points(), archive.CompressionRatio());

  std::printf("\nscenario complete: Hadoop refinement -> in-memory correlation -> "
              "forecast.\n");
  return 0;
}
