// Quickstart: the Polyphony HTAP core in one file.
//
// Creates a column-store table, runs transactional writes (OLTP), runs an
// analytical query on the same data (OLAP), merges the delta into the
// compressed main store, and shows snapshot isolation — the §II-A claim of
// the paper ("recombine OLTP and OLAP workloads into one single system")
// as a runnable program.
//
// Build: cmake -B build -G Ninja && cmake --build build
// Run:   ./build/examples/example_quickstart

#include <cstdio>

#include "common/metrics.h"
#include "query/compiled.h"
#include "query/executor.h"
#include "query/optimizer.h"
#include "query/sql_parser.h"
#include "storage/database.h"
#include "txn/transaction_manager.h"

using namespace poly;

int main() {
  Database db;
  TransactionManager tm;

  // ---- DDL ----
  Schema schema({ColumnDef("order_id", DataType::kInt64),
                 ColumnDef("region", DataType::kString),
                 ColumnDef("amount", DataType::kDouble)});
  ColumnTable* orders = *db.CreateTable("orders", schema);
  std::printf("created table orders %s\n", schema.ToString().c_str());

  // ---- OLTP: transactional inserts ----
  auto txn = tm.Begin();
  const char* regions[] = {"north", "south", "east", "west"};
  for (int i = 0; i < 1000; ++i) {
    Status s = tm.Insert(txn.get(), orders,
                         {Value::Int(i), Value::Str(regions[i % 4]),
                          Value::Dbl(10.0 + (i % 97))});
    if (!s.ok()) {
      std::printf("insert failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  if (!tm.Commit(txn.get()).ok()) return 1;
  std::printf("committed 1000 orders (commit ts %llu)\n",
              static_cast<unsigned long long>(txn->commit_ts()));

  // ---- Snapshot isolation: a reader opened now ignores later writes ----
  auto reader = tm.Begin();
  auto late = tm.Begin();
  (void)tm.Insert(late.get(), orders,
                  {Value::Int(9999), Value::Str("north"), Value::Dbl(1e6)});
  (void)tm.Commit(late.get());
  Executor snapshot_exec(&db, reader->View());
  auto snap = snapshot_exec.Execute(PlanBuilder::Scan("orders").Build());
  std::printf("reader snapshot sees %zu rows (a later commit added 1 more)\n",
              snap->num_rows());
  (void)tm.Commit(reader.get());

  // ---- OLAP: aggregate by region on the same store ----
  AggSpec cnt{AggFunc::kCount, nullptr, "orders"};
  AggSpec revenue{AggFunc::kSum, Expr::Column(2), "revenue"};
  auto plan = PlanBuilder::Scan("orders")
                  .Filter(Expr::Compare(CmpOp::kGe, Expr::Column(2),
                                        Expr::Literal(Value::Dbl(50.0))))
                  .Aggregate({1}, {cnt, revenue})
                  .Sort({{0, true}})
                  .Build();
  Optimizer opt;
  PlanPtr optimized = opt.Optimize(plan);
  std::printf("\nplan after optimization (filter pushed into scan):\n%s\n",
              optimized->ToString().c_str());

  Executor exec(&db, tm.AutoCommitView());
  auto result = exec.Execute(optimized);
  std::printf("revenue by region (amount >= 50):\n%s\n", result->ToString().c_str());

  // ---- Delta merge: write-optimized delta -> compressed main ----
  size_t before = orders->MemoryBytes();
  TableMergeStats merge = orders->Merge();
  std::printf("delta merge: %llu rows moved, %zu -> %zu bytes\n",
              static_cast<unsigned long long>(merge.rows_moved), before,
              orders->MemoryBytes());

  // ---- Compiled execution (§IV-A): same query, fused kernel ----
  QueryCompiler compiler(&db, tm.AutoCommitView());
  auto agg_only = PlanBuilder::Scan("orders")
                      .Aggregate({1}, {revenue})
                      .Build();
  if (compiler.CanCompile(agg_only)) {
    auto compiled = compiler.Execute(agg_only);
    std::printf("compiled kernel produced %zu groups\n", compiled->num_rows());
  }

  // ---- Observability (DESIGN.md §10): EXPLAIN ANALYZE + metrics ----
  // Tracing hangs a per-operator span tree (rows in/out, bytes, wall+CPU
  // nanos) off the result; the storage layer meanwhile counted the scans
  // and the merge above into the process-wide metric registry.
  ExecOptions traced_opts;
  traced_opts.trace = true;
  Executor traced(&db, tm.AutoCommitView(), traced_opts);
  auto traced_result = traced.Execute(optimized);
  std::printf("EXPLAIN ANALYZE:\n%s\n", traced_result->AnnotatedPlan().c_str());
  metrics::RegistrySnapshot msnap = metrics::Default().TakeSnapshot();
  std::printf("storage.scan.hot.rows = %llu, storage.merge.rows_moved = %llu\n\n",
              static_cast<unsigned long long>(msnap.counter("storage.scan.hot.rows")),
              static_cast<unsigned long long>(msnap.counter("storage.merge.rows_moved")));

  // ---- SQL surface: the same engine through the common query language ----
  SqlParser sql(&db);
  auto parsed = sql.Parse(
      "SELECT region, COUNT(*) AS orders, SUM(amount) AS revenue "
      "FROM orders WHERE amount >= 50.0 GROUP BY region ORDER BY revenue DESC");
  if (parsed.ok()) {
    Executor sql_exec(&db, tm.AutoCommitView());
    auto sql_result = sql_exec.Execute(opt.Optimize(*parsed));
    std::printf("same query through SQL:\n%s\n", sql_result->ToString().c_str());
  }

  std::printf("\nquickstart done.\n");
  return 0;
}
