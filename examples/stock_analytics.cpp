// Scenario V-1 from the paper: "financial analysts storing stock price data
// within a RDBMS require on the one hand the business context of stock
// values, e.g., an excerpt for recent news [...] On the other hand, the
// analysts use statistical algorithms for example to identify correlations
// of stocks and derivatives."
//
//  * daily prices live in the column store,
//  * the scientific engine builds the return-correlation matrix in the
//    database and extracts the dominant market mode by power iteration —
//    no copy-out to an external package (the §II-G claim; the external
//    provider's transfer tax is printed for contrast),
//  * the text engine scores news sentiment and joins it with the
//    statistical picture.

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/random.h"
#include "engines/scientific/matrix.h"
#include "engines/text/text_analysis.h"
#include "engines/timeseries/ts_ops.h"
#include "txn/transaction_manager.h"

using namespace poly;

int main() {
  Database db;
  TransactionManager tm;
  Random rng(99);

  const int kStocks = 8, kDays = 250;
  const char* tickers[] = {"AAA", "BBB", "CCC", "DDD", "EEE", "FFF", "GGG", "HHH"};

  // ---- Price table in the relational engine ----
  ColumnTable* prices = *db.CreateTable(
      "prices", Schema({ColumnDef("stock", DataType::kInt64),
                        ColumnDef("day", DataType::kInt64),
                        ColumnDef("close", DataType::kDouble)}));
  {
    auto txn = tm.Begin();
    std::vector<double> level(kStocks, 100.0);
    for (int d = 0; d < kDays; ++d) {
      double market = rng.NextGaussian() * 0.01;  // shared market factor
      for (int s = 0; s < kStocks; ++s) {
        double beta = 0.5 + 0.15 * s;  // different market exposure
        double idio = rng.NextGaussian() * 0.01;
        level[s] *= 1.0 + beta * market + idio;
        (void)tm.Insert(txn.get(), prices,
                        {Value::Int(s), Value::Int(d), Value::Dbl(level[s])});
      }
    }
    (void)tm.Commit(txn.get());
    prices->Merge();
  }
  ReadView now = tm.AutoCommitView();
  std::printf("price table: %llu rows (merged, %zu bytes)\n",
              static_cast<unsigned long long>(prices->CountVisible(now)),
              prices->MemoryBytes());

  // ---- Daily returns per stock via the time-series engine ----
  std::vector<TimeSeries> returns(kStocks);
  for (int s = 0; s < kStocks; ++s) {
    TimeSeries px = *SeriesFromTable(*prices, now, "day", "close", "stock", s);
    TimeSeries diff = Difference(px);
    for (size_t i = 0; i < diff.size(); ++i) {
      diff.values[i] /= px.values[i];  // relative return
    }
    returns[s] = std::move(diff);
  }

  // ---- Correlation matrix, stored as a relational triple table ----
  ColumnTable* corr_table = *db.CreateTable(
      "correlations", Schema({ColumnDef("r", DataType::kInt64),
                              ColumnDef("c", DataType::kInt64),
                              ColumnDef("v", DataType::kDouble)}));
  {
    auto txn = tm.Begin();
    for (int a = 0; a < kStocks; ++a) {
      for (int b = 0; b < kStocks; ++b) {
        double corr = a == b ? 1.0 : Correlation(returns[a], returns[b], 1);
        (void)tm.Insert(txn.get(), corr_table,
                        {Value::Int(a), Value::Int(b), Value::Dbl(corr)});
      }
    }
    (void)tm.Commit(txn.get());
  }
  std::printf("correlation matrix materialized as a %dx%d triple table\n", kStocks,
              kStocks);

  // ---- Scientific engine: dominant eigenvector = market mode ----
  CsrMatrix corr = *CsrMatrix::FromTable(*corr_table, tm.AutoCommitView(), "r", "c", "v");
  std::vector<double> mode;
  double lambda = *corr.PowerIteration(1000, 1e-10, &mode);
  std::printf("dominant eigenvalue %.2f (market mode explains %.0f%% of %d)\n", lambda,
              100.0 * lambda / kStocks, kStocks);
  std::printf("market-mode loadings: ");
  for (int s = 0; s < kStocks; ++s) std::printf("%s=%.2f ", tickers[s], mode[s]);
  std::printf("\n");

  // ---- The copy-out alternative the paper argues against ----
  ExternalAnalyticsProvider r_provider(100e6);  // 100 MB/s link to "R"
  std::vector<double> x(kStocks, 1.0);
  for (int iter = 0; iter < 1000; ++iter) {
    x = *r_provider.MultiplyVector(corr, x);  // each iteration re-ships data
    double norm = 0;
    for (double v : x) norm += v * v;
    for (double& v : x) v /= std::sqrt(norm);
  }
  std::printf("external provider would have shipped %llu bytes (%.1f ms of pure "
              "transfer) for the same iteration\n",
              static_cast<unsigned long long>(r_provider.bytes_transferred()),
              r_provider.transfer_seconds() * 1e3);

  // ---- News sentiment joined with the statistics ----
  struct News {
    int stock;
    const char* text;
  };
  News feed[] = {
      {0, "AAA reports excellent quarter, reliable growth and great outlook"},
      {2, "CCC hit by terrible supply problems, production broken for weeks"},
      {5, "FFF announces new product line"},
  };
  std::printf("\nnews desk:\n");
  for (const News& n : feed) {
    double sentiment = SentimentScore(n.text);
    const char* stance = sentiment > 0.2 ? "BUY" : sentiment < -0.2 ? "SELL" : "HOLD";
    std::printf("  %s: sentiment %+.2f, market beta %.2f -> %s\n", tickers[n.stock],
                sentiment, 0.5 + 0.15 * n.stock, stance);
  }

  std::printf("\nscenario complete: linear algebra + time series + text, one system.\n");
  return 0;
}
