// Reader-safe MVCC storage (DESIGN.md §12): deterministic unit tests for
// the epoch/chunk VersionStore and the chunked VALUE storage built on the
// same scheme, plus two seeded concurrent oracle harnesses — N writer
// threads vs M snapshot readers, where every reader observation must match
// a serial replay:
//   MvccOracle       — (snapshot_ts, visible_count) count equality
//   MvccValueOracle  — full visible-VALUE equality (sorted id sets) against
//                      ColumnTable, RowTable, and FlexibleTable
// Everything is seeded: a failure prints its seed and replays with
//   POLY_MVCC_SEED=17 ./tests/poly_tests --gtest_filter='MvccValueOracle.*'
// (same pattern as chaos_test.cpp). Runs under `ctest -L concurrency` and
// must stay TSan-clean — this file IS the regression gate for the old
// "version-vector growth is not reader-safe" finding AND for its §12.5
// sequel, "value reads during delta growth are not reader-safe", which the
// MvccValues suite (formerly disabled known-gap tests) now proves closed.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/random.h"
#include "docstore/flexible_table.h"
#include "storage/chunked_vector.h"
#include "storage/database.h"
#include "storage/epoch_gc.h"
#include "storage/row_table.h"
#include "storage/version_store.h"
#include "txn/transaction_manager.h"

namespace poly {
namespace {

// ---------------------------------------------------------------------------
// Deterministic single-threaded unit tests for the chunk directory.
// ---------------------------------------------------------------------------

TEST(VersionStore, ChunkBoundaryAppend) {
  VersionStore vs(/*chunk_rows=*/4);
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(vs.Append(/*cts=*/100 + i, /*dts=*/0), i);
  }
  EXPECT_EQ(vs.size(), 10u);
  EXPECT_EQ(vs.num_chunks(), 3u);  // 4 + 4 + 2 rows
  // Values survive the chunk boundaries, through both read paths.
  VersionStore::ReadGuard g = vs.Read();
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(g.cts(i), 100 + i);
    EXPECT_EQ(g.dts(i), 0u);
    EXPECT_EQ(vs.ReadCts(i), 100 + i);
  }
}

TEST(VersionStore, DirectoryGrowthPreservesStampsAndReclaims) {
  VersionStore vs(/*chunk_rows=*/4);
  // Initial directory: 4 chunk slots * 4 rows = 16 rows; push well past two
  // doublings.
  const uint64_t kRows = 4 * 4 * 8;
  for (uint64_t i = 0; i < kRows; ++i) vs.Append(i + 1, 0);
  EXPECT_GE(vs.directory_capacity(), kRows / 4);
  for (uint64_t i = 0; i < kRows; ++i) EXPECT_EQ(vs.ReadCts(i), i + 1);
  // No reader was pinned across growth, so every retired directory has been
  // reclaimed already (Grow retires then immediately reclaims).
  EXPECT_EQ(vs.retired_count(), 0u);
}

TEST(VersionStore, WatermarkPublicationOrdering) {
  VersionStore vs(/*chunk_rows=*/4);
  vs.Append(7, 0);
  VersionStore::ReadGuard before = vs.Read();
  EXPECT_EQ(before.size(), 1u);
  vs.Append(8, 0);
  // A guard taken before the append keeps its frozen watermark; a fresh
  // guard sees the published row.
  EXPECT_EQ(before.size(), 1u);
  VersionStore::ReadGuard after = vs.Read();
  EXPECT_EQ(after.size(), 2u);
  EXPECT_EQ(after.cts(1), 8u);
}

TEST(VersionStore, EpochRetireReclaimSequencing) {
  VersionStore vs(/*chunk_rows=*/4);
  for (uint64_t i = 0; i < 8; ++i) vs.Append(10 + i, i % 2 ? 99 : 0);

  auto* pinned = new VersionStore::ReadGuard(&vs);  // reader in flight
  EXPECT_EQ((*pinned).size(), 8u);

  // Rebuild (what Vacuum does): drop the odd rows, renumber.
  std::vector<std::pair<uint64_t, uint64_t>> survivors;
  for (uint64_t i = 0; i < 8; i += 2) survivors.emplace_back(10 + i, 0);
  vs.Rebuild(survivors);

  // The old chunks + directory are retired but NOT freed: the pinned guard
  // still reads the pre-rebuild history.
  EXPECT_GE(vs.retired_count(), 1u);
  EXPECT_EQ(vs.ReclaimExpired(), 0u);  // reclamation never frees pinned chunks
  EXPECT_GE(vs.retired_count(), 1u);
  EXPECT_EQ((*pinned).size(), 8u);
  for (uint64_t i = 0; i < 8; ++i) EXPECT_EQ((*pinned).cts(i), 10 + i);

  // New readers see the rebuilt, renumbered history immediately.
  EXPECT_EQ(vs.size(), 4u);
  EXPECT_EQ(vs.ReadCts(1), 12u);

  // Unpin; now the retired epoch is past every pinned epoch and frees run.
  delete pinned;
  EXPECT_GE(vs.ReclaimExpired(), 1u);
  EXPECT_EQ(vs.retired_count(), 0u);
}

TEST(VersionStore, ReclaimNeverFreesChunkPinnedAcrossManyRetires) {
  VersionStore vs(/*chunk_rows=*/4);
  for (uint64_t i = 0; i < 6; ++i) vs.Append(i + 1, 0);
  VersionStore::ReadGuard g = vs.Read();
  // Pile up several generations of retired memory under the live pin.
  for (int round = 0; round < 5; ++round) {
    std::vector<std::pair<uint64_t, uint64_t>> stamps;
    for (uint64_t i = 0; i < 6 + static_cast<uint64_t>(round); ++i) {
      stamps.emplace_back(1000 * (round + 1) + i, 0);
    }
    vs.Rebuild(stamps);
    vs.ReclaimExpired();
  }
  // Only the generations newer than the pin were freed; the pinned one
  // still answers with its original stamps (ASan would flag a freed read).
  EXPECT_GE(vs.retired_count(), 1u);
  for (uint64_t i = 0; i < 6; ++i) EXPECT_EQ(g.cts(i), i + 1);
}

TEST(VersionStore, WriterStoresVisibleThroughGuards) {
  VersionStore vs(/*chunk_rows=*/4);
  uint64_t r = vs.Append(kTxnBit | 5, 0);
  EXPECT_EQ(vs.WriterLoadCts(r), kTxnBit | 5);
  vs.WriterStoreCts(r, 42);  // commit resolution
  vs.WriterStoreDts(r, 77);
  VersionStore::ReadGuard g = vs.Read();
  EXPECT_EQ(g.cts(r), 42u);
  EXPECT_EQ(g.dts(r), 77u);
  EXPECT_EQ(vs.WriterLoadDts(r), 77u);
}

// ---------------------------------------------------------------------------
// Concurrent-visibility oracle harness.
// ---------------------------------------------------------------------------

Schema OrderSchema() {
  return Schema({ColumnDef("id", DataType::kInt64),
                 ColumnDef("amount", DataType::kDouble)});
}

struct CommitRecord {
  uint64_t commit_ts;
  int64_t delta;  // net visible-row change: inserts - deletes
};

struct ReaderSample {
  uint64_t snapshot_ts;
  uint64_t count;
};

/// One seeded oracle run: kWriters writer threads issue insert/update/delete
/// transactions through the TransactionManager while kReaders snapshot
/// readers hammer CountVisible. Afterward a serial replay — the sorted
/// (commit_ts, delta) log — predicts the exact visible count for every
/// snapshot timestamp any reader observed.
void RunMvccOracle(uint64_t seed, bool with_deletes) {
  SCOPED_TRACE("mvcc seed " + std::to_string(seed) +
               (with_deletes ? " mixed" : " insert-only") +
               " (replay: POLY_MVCC_SEED=" + std::to_string(seed) + ")");
  Database db;
  TransactionManager tm;
  ColumnTable* t = *db.CreateTable("t", OrderSchema());

  constexpr int kWriters = 3;
  constexpr int kReaders = 2;
  constexpr int kTxnsPerWriter = 60;

  std::atomic<int> writers_done{0};
  std::vector<std::vector<CommitRecord>> commits(kWriters);
  std::vector<std::vector<ReaderSample>> samples(kReaders);
  std::vector<std::thread> threads;

  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w]() {
      Random rng(Random::Mix(seed, 0x11 + w));
      std::vector<uint64_t> owned;  // committed live rows this writer owns
      for (int i = 0; i < kTxnsPerWriter; ++i) {
        auto txn = tm.Begin();
        int64_t delta = 0;
        std::vector<uint64_t> inserted;
        std::vector<size_t> deleted_idx;
        // Deletes/updates only target rows this writer inserted and
        // committed, so write-write conflicts cannot abort a transaction
        // the oracle expects to commit.
        int op = (with_deletes && !owned.empty()) ? static_cast<int>(rng.Uniform(3)) : 0;
        if (op == 0) {  // insert 1..3 rows
          int k = 1 + static_cast<int>(rng.Uniform(3));
          for (int j = 0; j < k; ++j) {
            ASSERT_TRUE(tm.Insert(txn.get(), t,
                                  {Value::Int(static_cast<int64_t>(w) * 1000000 + i),
                                   Value::Dbl(1.0)})
                            .ok());
            inserted.push_back(txn->last_write_row());
            ++delta;
          }
        } else if (op == 1) {  // delete one owned row
          size_t pick = rng.Uniform(owned.size());
          ASSERT_TRUE(tm.Delete(txn.get(), t, owned[pick]).ok());
          deleted_idx.push_back(pick);
          --delta;
        } else {  // update = delete old + insert new
          size_t pick = rng.Uniform(owned.size());
          ASSERT_TRUE(tm.Delete(txn.get(), t, owned[pick]).ok());
          deleted_idx.push_back(pick);
          ASSERT_TRUE(tm.Insert(txn.get(), t,
                                {Value::Int(static_cast<int64_t>(w) * 1000000 + i),
                                 Value::Dbl(2.0)})
                          .ok());
          inserted.push_back(txn->last_write_row());
        }
        if (rng.Bernoulli(0.12)) {  // exercise abort (ClearDeleteStamp path)
          ASSERT_TRUE(tm.Abort(txn.get()).ok());
          continue;  // no oracle entry, owned set unchanged
        }
        ASSERT_TRUE(tm.Commit(txn.get()).ok());
        commits[w].push_back({txn->commit_ts(), delta});
        for (size_t idx : deleted_idx) {
          owned[idx] = owned.back();
          owned.pop_back();
        }
        owned.insert(owned.end(), inserted.begin(), inserted.end());
      }
      writers_done.fetch_add(1, std::memory_order_release);
    });
  }

  for (int rd = 0; rd < kReaders; ++rd) {
    threads.emplace_back([&, rd]() {
      auto& out = samples[rd];
      while (writers_done.load(std::memory_order_acquire) < kWriters) {
        ReadView v = tm.AutoCommitView();
        out.push_back({v.snapshot_ts, t->CountVisible(v)});
      }
      // One final sample after all writers finished.
      ReadView v = tm.AutoCommitView();
      out.push_back({v.snapshot_ts, t->CountVisible(v)});
    });
  }

  for (auto& th : threads) th.join();

  // Serial replay oracle: prefix-sum the commit log by timestamp.
  std::map<uint64_t, int64_t> by_ts;
  for (const auto& wc : commits) {
    for (const CommitRecord& c : wc) by_ts[c.commit_ts] += c.delta;
  }
  std::vector<std::pair<uint64_t, uint64_t>> prefix;  // (ts, count at ts)
  int64_t running = 0;
  for (const auto& [ts, d] : by_ts) {
    running += d;
    ASSERT_GE(running, 0);
    prefix.emplace_back(ts, static_cast<uint64_t>(running));
  }
  auto expected_at = [&](uint64_t s) -> uint64_t {
    uint64_t e = 0;
    for (const auto& [ts, cnt] : prefix) {
      if (ts <= s) e = cnt;
      else break;
    }
    return e;
  };

  for (int rd = 0; rd < kReaders; ++rd) {
    uint64_t last_s = 0;
    uint64_t last_c = 0;
    for (const ReaderSample& smp : samples[rd]) {
      // Snapshot timestamps are non-decreasing within one reader, and in an
      // insert-only history the counts must be monotone too.
      ASSERT_GE(smp.snapshot_ts, last_s) << "reader " << rd;
      if (!with_deletes) {
        ASSERT_GE(smp.count, last_c)
            << "reader " << rd << " at snapshot " << smp.snapshot_ts;
      }
      ASSERT_EQ(smp.count, expected_at(smp.snapshot_ts))
          << "reader " << rd << " at snapshot " << smp.snapshot_ts
          << " (oracle mismatch)";
      last_s = smp.snapshot_ts;
      last_c = smp.count;
    }
    ASSERT_FALSE(samples[rd].empty());
    // The final sample ran after every commit: it must equal the full replay.
    EXPECT_EQ(samples[rd].back().count,
              prefix.empty() ? 0u : prefix.back().second);
  }
}

uint64_t kOracleSeeds() {
  return 50;  // acceptance: the oracle passes 50 seeds
}

TEST(MvccOracle, MixedWorkloadMatchesSerialReplay) {
  if (const char* env = std::getenv("POLY_MVCC_SEED")) {
    RunMvccOracle(std::strtoull(env, nullptr, 10), /*with_deletes=*/true);
    return;
  }
  for (uint64_t seed = 1; seed <= kOracleSeeds(); ++seed) {
    RunMvccOracle(seed, /*with_deletes=*/true);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(MvccOracle, InsertOnlyCountsMonotoneAndExact) {
  for (uint64_t seed = 101; seed <= 108; ++seed) {
    RunMvccOracle(seed, /*with_deletes=*/false);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// Vacuum under fire: readers hammer CountVisible while the single writer
// thread inserts, deletes, and vacuums in a loop. The retired version
// chunks must stay alive under every pinned guard (DESIGN.md §12.4) — this
// is the test that makes truncation/merge reclamation a gated property
// rather than a comment.
TEST(MvccOracle, CountVisibleSafeDuringVacuum) {
  Database db;
  TransactionManager tm;
  ColumnTable* t = *db.CreateTable("t", OrderSchema());
  constexpr int kRounds = 40;
  constexpr int kRowsPerRound = 16;

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int rd = 0; rd < 3; ++rd) {
    readers.emplace_back([&]() {
      while (!stop.load(std::memory_order_acquire)) {
        ReadView v = tm.AutoCommitView();
        uint64_t c = t->CountVisible(v);
        // Every round fully deletes what it inserted, so a reader can never
        // see more than one round's rows alive.
        ASSERT_LE(c, static_cast<uint64_t>(kRowsPerRound));
      }
    });
  }

  for (int round = 0; round < kRounds; ++round) {
    std::vector<uint64_t> rows;
    auto ins = tm.Begin();
    for (int i = 0; i < kRowsPerRound; ++i) {
      ASSERT_TRUE(tm.Insert(ins.get(), t, {Value::Int(i), Value::Dbl(1.0)}).ok());
      rows.push_back(ins->last_write_row());
    }
    ASSERT_TRUE(tm.Commit(ins.get()).ok());
    auto del = tm.Begin();
    for (uint64_t r : rows) ASSERT_TRUE(tm.Delete(del.get(), t, r).ok());
    ASSERT_TRUE(tm.Commit(del.get()).ok());
    // No registered snapshots are active (readers use auto-commit views), so
    // every deleted version is dead to the watermark and vacuums away while
    // readers stay pinned on the old chunks.
    ASSERT_EQ(t->Vacuum(tm.OldestActiveSnapshot()),
              static_cast<uint64_t>(kRowsPerRound));
  }
  stop.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();

  EXPECT_EQ(t->CountVisible(tm.AutoCommitView()), 0u);
  EXPECT_EQ(t->num_versions(), 0u);
}

// RowTable shares the same VersionStore, so its latch-free count path gets
// the same guarantee the ColumnTable regression covers.
TEST(MvccOracle, RowTableCountVisibleDuringWrites) {
  Database db;
  TransactionManager tm;
  RowTable* t = *db.CreateRowTable("r", OrderSchema());
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::thread reader([&]() {
    uint64_t last = 0;
    while (!stop.load(std::memory_order_acquire)) {
      uint64_t c = t->CountVisible(tm.AutoCommitView());
      if (c < last) violations.fetch_add(1);
      last = c;
    }
  });
  for (int i = 0; i < 400; ++i) {
    auto txn = tm.Begin();
    ASSERT_TRUE(tm.Insert(txn.get(), t, {Value::Int(i), Value::Dbl(1.0)}).ok());
    ASSERT_TRUE(tm.Commit(txn.get()).ok());
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(t->CountVisible(tm.AutoCommitView()), 400u);
}

// FlexibleTable::NumRecords is CountVisible underneath — safe against
// concurrent schema-extending inserts (writers still caller-serialized).
TEST(MvccOracle, FlexibleTableNumRecordsDuringInserts) {
  Database db;
  TransactionManager tm;
  ColumnTable* ct = *db.CreateTable("flex", Schema(std::vector<ColumnDef>{}));
  FlexibleTable flex(&tm, ct);
  std::atomic<bool> stop{false};
  std::thread reader([&]() {
    uint64_t last = 0;
    while (!stop.load(std::memory_order_acquire)) {
      uint64_t c = flex.NumRecords();
      ASSERT_GE(c, last);
      last = c;
    }
  });
  for (int i = 0; i < 150; ++i) {
    // Every 10th record introduces a fresh attribute: AddColumn growth runs
    // concurrently with the reader's stamp-only count.
    std::map<std::string, Value> rec{{"a", Value::Int(i)}};
    if (i % 10 == 0) rec["extra_" + std::to_string(i)] = Value::Int(i);
    ASSERT_TRUE(flex.Insert(rec).ok());
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(flex.NumRecords(), 150u);
}

// ---------------------------------------------------------------------------
// Deterministic unit tests for chunked VALUE storage (DESIGN.md §12.5): the
// ChunkedVector directory/watermark mechanics, and the never-frees-pinned
// property at the ColumnTable level across Merge and Vacuum.
// ---------------------------------------------------------------------------

TEST(ChunkedValues, ChunkBoundaryAppend) {
  ChunkedVector<Value> cv(/*gc=*/nullptr, /*chunk_rows=*/4);
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(cv.Append(Value::Int(static_cast<int64_t>(100 + i))), i);
  }
  EXPECT_EQ(cv.Size(), 10u);
  EXPECT_EQ(cv.num_chunks(), 3u);  // 4 + 4 + 2 elements
  // Values survive the chunk boundaries, through both read paths.
  ChunkedVector<Value>::Snapshot snap = cv.Snap();
  ASSERT_EQ(snap.size(), 10u);
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(snap[i].AsInt(), static_cast<int64_t>(100 + i));
    EXPECT_EQ(cv.At(i).AsInt(), static_cast<int64_t>(100 + i));
  }
}

TEST(ChunkedValues, DirectoryGrowthPreservesValuesUnderPin) {
  EpochGC gc;
  ChunkedVector<Value> cv(&gc, /*chunk_rows=*/4);
  for (uint64_t i = 0; i < 10; ++i) cv.Append(Value::Int(static_cast<int64_t>(i)));

  int slot = gc.Pin();  // reader in flight
  ChunkedVector<Value>::Snapshot snap = cv.Snap();

  // Push well past two directory doublings while the snapshot stays pinned.
  const uint64_t kRows = 4 * 4 * 8;
  for (uint64_t i = 10; i < kRows; ++i) cv.Append(Value::Int(static_cast<int64_t>(i)));
  EXPECT_GE(cv.directory_capacity(), kRows / 4);

  // The pinned snapshot still reads through its (retired) directory; the
  // chunks it points at were never retired at all — growth copies pointers.
  ASSERT_EQ(snap.size(), 10u);
  for (uint64_t i = 0; i < 10; ++i) EXPECT_EQ(snap[i].AsInt(), static_cast<int64_t>(i));

  // Retired directories cannot be freed under the pin.
  EXPECT_GE(gc.retired_count(), 1u);
  EXPECT_EQ(gc.ReclaimExpired(), 0u);

  gc.Unpin(slot);
  EXPECT_GE(gc.ReclaimExpired(), 1u);
  EXPECT_EQ(gc.retired_count(), 0u);

  // Fresh reads see every published element.
  for (uint64_t i = 0; i < kRows; ++i) {
    EXPECT_EQ(cv.At(i).AsInt(), static_cast<int64_t>(i));
  }
}

TEST(ChunkedValues, MergeAndVacuumNeverFreeValuesUnderPinnedGuard) {
  Database db;
  TransactionManager tm;
  ColumnTable* t = *db.CreateTable("t", OrderSchema());
  for (int i = 0; i < 10; ++i) {
    auto txn = tm.Begin();
    ASSERT_TRUE(tm.Insert(txn.get(), t, {Value::Int(i), Value::Dbl(1.0)}).ok());
    ASSERT_TRUE(tm.Commit(txn.get()).ok());
  }
  ReadView before = tm.AutoCommitView();
  auto* guard = new ColumnTable::ReadGuard(t);  // pin the pre-restructure state

  // Delete the first half, merge the delta into main, and vacuum the dead
  // versions away — each step retires reader-visible structures.
  {
    auto txn = tm.Begin();
    for (uint64_t r = 0; r < 5; ++r) ASSERT_TRUE(tm.Delete(txn.get(), t, r).ok());
    ASSERT_TRUE(tm.Commit(txn.get()).ok());
  }
  t->Merge();
  EXPECT_EQ(t->Vacuum(tm.OldestActiveSnapshot()), 5u);

  // Retired generations pile up but are NOT freed under the live pin.
  EXPECT_GE(t->retired_count(), 1u);
  EXPECT_EQ(t->ReclaimRetired(), 0u);

  // The pinned guard still reads the full pre-vacuum history: all ten rows
  // visible under the old snapshot, values intact and correctly numbered.
  ASSERT_EQ(guard->size(), 10u);
  uint64_t seen = 0;
  guard->ScanVisible(before, [&](uint64_t r) {
    EXPECT_EQ(guard->GetValue(r, 0).AsInt(), static_cast<int64_t>(r));
    ++seen;
  });
  EXPECT_EQ(seen, 10u);

  // A fresh guard sees the renumbered post-vacuum world.
  EXPECT_EQ(t->CountVisible(tm.AutoCommitView()), 5u);
  EXPECT_EQ(t->GetValue(0, 0).AsInt(), 5);

  // Unpin; now everything retired reclaims.
  delete guard;
  EXPECT_GE(t->ReclaimRetired(), 1u);
  EXPECT_EQ(t->retired_count(), 0u);
}

// ---------------------------------------------------------------------------
// Value reads racing writers (DESIGN.md §12.5). These are the formerly
// disabled MvccKnownGaps tests: reading column / row VALUES (not stamps)
// concurrently with appends used to be a true TSan finding. Chunked value
// storage closed the gap — the suite now runs enabled under
// scripts/run_tsan.sh, which also greps this file to ensure no test here is
// ever disabled again.
// ---------------------------------------------------------------------------

TEST(MvccValues, ColumnValueReadsDuringInserts) {
  Database db;
  TransactionManager tm;
  ColumnTable* t = *db.CreateTable("t", OrderSchema());
  {
    auto txn = tm.Begin();
    ASSERT_TRUE(tm.Insert(txn.get(), t, {Value::Int(0), Value::Dbl(0.0)}).ok());
    ASSERT_TRUE(tm.Commit(txn.get()).ok());
  }
  std::atomic<bool> stop{false};
  std::thread reader([&]() {
    while (!stop.load(std::memory_order_acquire)) {
      // View first, guard second: every commit at or before the snapshot is
      // inside the guard's watermark, so the visible prefix is exact.
      ReadView v = tm.AutoCommitView();
      ColumnTable::ReadGuard g(t);
      int64_t expect = 0;
      g.ScanVisible(v, [&](uint64_t r) {
        // Single-row commits in id order: visible ids are exactly 0..k.
        ASSERT_EQ(g.GetValue(r, 0).AsInt(), expect);
        // The per-call pin path must agree with the guard.
        ASSERT_EQ(t->GetValue(r, 0).AsInt(), expect);
        ++expect;
      });
    }
  });
  for (int i = 1; i < 2000; ++i) {
    auto txn = tm.Begin();
    ASSERT_TRUE(tm.Insert(txn.get(), t, {Value::Int(i), Value::Dbl(1.0)}).ok());
    ASSERT_TRUE(tm.Commit(txn.get()).ok());
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(t->CountVisible(tm.AutoCommitView()), 2000u);
}

TEST(MvccValues, RowTableValueReadsDuringInserts) {
  Database db;
  TransactionManager tm;
  RowTable* t = *db.CreateRowTable("r", OrderSchema());
  {
    auto txn = tm.Begin();
    ASSERT_TRUE(tm.Insert(txn.get(), t, {Value::Int(0), Value::Dbl(0.0)}).ok());
    ASSERT_TRUE(tm.Commit(txn.get()).ok());
  }
  std::atomic<bool> stop{false};
  std::thread reader([&]() {
    while (!stop.load(std::memory_order_acquire)) {
      ReadView v = tm.AutoCommitView();
      RowTable::ReadGuard g(t);
      int64_t expect = 0;
      g.ScanVisible(v, [&](uint64_t r) {
        ASSERT_EQ(g.GetValue(r, 0).AsInt(), expect);
        ASSERT_EQ(t->GetValue(r, 0).AsInt(), expect);  // row-chunk pin path
        ++expect;
      });
    }
  });
  for (int i = 1; i < 2000; ++i) {
    auto txn = tm.Begin();
    ASSERT_TRUE(tm.Insert(txn.get(), t, {Value::Int(i), Value::Dbl(1.0)}).ok());
    ASSERT_TRUE(tm.Commit(txn.get()).ok());
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(t->CountVisible(tm.AutoCommitView()), 2000u);
}

// AddColumn publishes a fresh TableState sharing columns and versions; a
// scan holding the previous generation's guard must never be invalidated,
// and a fresh guard must read every column — including ones added mid-scan
// (backfilled NULL for pre-existing rows).
TEST(MvccValues, FlexibleTableColumnGrowthDuringScan) {
  Database db;
  TransactionManager tm;
  ColumnTable* ct =
      *db.CreateTable("flex", Schema({ColumnDef("id", DataType::kInt64)}));
  FlexibleTable flex(&tm, ct);
  std::atomic<bool> stop{false};
  std::thread reader([&]() {
    while (!stop.load(std::memory_order_acquire)) {
      ReadView v = tm.AutoCommitView();
      ColumnTable::ReadGuard g(ct);
      int64_t expect = 0;
      g.ScanVisible(v, [&](uint64_t r) {
        // Touch EVERY column of the pinned generation, then check the id.
        for (size_t c = 0; c < g.num_columns(); ++c) (void)g.GetValue(r, c);
        ASSERT_EQ(g.GetValue(r, 0).AsInt(), expect);
        ++expect;
      });
    }
  });
  for (int i = 0; i < 300; ++i) {
    // Every 7th record introduces a fresh attribute: AddColumn's TableState
    // republication runs concurrently with full-width value scans.
    std::map<std::string, Value> rec{{"id", Value::Int(i)}};
    if (i % 7 == 0) rec["extra_" + std::to_string(i)] = Value::Int(i);
    ASSERT_TRUE(flex.Insert(rec).ok());
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(flex.NumRecords(), 300u);
  EXPECT_EQ(ct->schema().num_columns(), 1u + 300u / 7 + 1u);
}

// ---------------------------------------------------------------------------
// Value-level oracle (DESIGN.md §12.5): readers collect the actual VISIBLE
// VALUES — the sorted id column — concurrently with writers, and every
// sample must equal the serial replay of the commit log up to its snapshot.
// This is strictly stronger than the count oracle above: torn values, stale
// chunk directories, or watermark/value misordering all change the id set.
// ---------------------------------------------------------------------------

struct ValueCommit {
  uint64_t commit_ts = 0;
  std::vector<int64_t> added;    // ids inserted by this txn
  std::vector<int64_t> removed;  // ids deleted by this txn
};

struct ValueSample {
  uint64_t snapshot_ts = 0;
  std::vector<int64_t> ids;  // sorted ids visible under the snapshot
};

constexpr int kValueWriters = 3;
constexpr int kValueReaders = 2;

std::vector<ValueCommit> SortCommits(std::vector<std::vector<ValueCommit>> per_writer) {
  std::vector<ValueCommit> all;
  for (auto& wc : per_writer) {
    for (auto& c : wc) all.push_back(std::move(c));
  }
  std::sort(all.begin(), all.end(), [](const ValueCommit& a, const ValueCommit& b) {
    return a.commit_ts < b.commit_ts;
  });
  return all;
}

/// Serial replay for one reader: sweep the globally sorted commit log while
/// maintaining the live id set; every sample must match it exactly.
void CheckValueSamples(const std::vector<ValueCommit>& commits,
                       const std::vector<ValueSample>& samples, int rd) {
  ASSERT_FALSE(samples.empty());
  std::set<int64_t> live;
  size_t idx = 0;
  uint64_t last_ts = 0;
  for (const ValueSample& smp : samples) {
    ASSERT_GE(smp.snapshot_ts, last_ts) << "reader " << rd;
    last_ts = smp.snapshot_ts;
    while (idx < commits.size() && commits[idx].commit_ts <= smp.snapshot_ts) {
      for (int64_t id : commits[idx].removed) live.erase(id);
      for (int64_t id : commits[idx].added) live.insert(id);
      ++idx;
    }
    std::vector<int64_t> expect(live.begin(), live.end());
    ASSERT_EQ(smp.ids, expect)
        << "reader " << rd << " at snapshot " << smp.snapshot_ts
        << ": saw " << smp.ids.size() << " ids, replay expects " << expect.size();
  }
  // The final sample ran after every commit: it must equal the full replay.
  ASSERT_EQ(idx, commits.size()) << "reader " << rd;
}

/// One seeded value-oracle run against a ColumnTable or RowTable: the same
/// insert/delete/update mix as RunMvccOracle, but commits log the exact id
/// sets they add/remove and readers sample sorted visible ids through the
/// unified ReadGuard.
template <typename Table>
void RunValueOracle(uint64_t seed, TransactionManager* tm, Table* t) {
  constexpr int kTxnsPerWriter = 40;
  std::atomic<int> writers_done{0};
  std::vector<std::vector<ValueCommit>> commits(kValueWriters);
  std::vector<std::vector<ValueSample>> samples(kValueReaders);
  std::vector<std::thread> threads;

  for (int w = 0; w < kValueWriters; ++w) {
    threads.emplace_back([&, w]() {
      Random rng(Random::Mix(seed, 0x31 + w));
      struct Owned {
        uint64_t row;
        int64_t id;
      };
      std::vector<Owned> owned;  // committed live rows this writer owns
      int64_t next_id = static_cast<int64_t>(w) * 1000000;
      for (int i = 0; i < kTxnsPerWriter; ++i) {
        auto txn = tm->Begin();
        ValueCommit rec;
        std::vector<Owned> inserted;
        std::vector<size_t> deleted_idx;
        int op = owned.empty() ? 0 : static_cast<int>(rng.Uniform(3));
        if (op == 0) {  // insert 1..3 rows with globally unique ids
          int k = 1 + static_cast<int>(rng.Uniform(3));
          for (int j = 0; j < k; ++j) {
            int64_t id = next_id++;
            ASSERT_TRUE(
                tm->Insert(txn.get(), t, {Value::Int(id), Value::Dbl(1.0)}).ok());
            inserted.push_back({txn->last_write_row(), id});
            rec.added.push_back(id);
          }
        } else if (op == 1) {  // delete one owned row
          size_t pick = rng.Uniform(owned.size());
          ASSERT_TRUE(tm->Delete(txn.get(), t, owned[pick].row).ok());
          deleted_idx.push_back(pick);
          rec.removed.push_back(owned[pick].id);
        } else {  // update = delete old + insert new (fresh id)
          size_t pick = rng.Uniform(owned.size());
          ASSERT_TRUE(tm->Delete(txn.get(), t, owned[pick].row).ok());
          deleted_idx.push_back(pick);
          rec.removed.push_back(owned[pick].id);
          int64_t id = next_id++;
          ASSERT_TRUE(
              tm->Insert(txn.get(), t, {Value::Int(id), Value::Dbl(2.0)}).ok());
          inserted.push_back({txn->last_write_row(), id});
          rec.added.push_back(id);
        }
        if (rng.Bernoulli(0.12)) {  // exercise abort
          ASSERT_TRUE(tm->Abort(txn.get()).ok());
          continue;
        }
        ASSERT_TRUE(tm->Commit(txn.get()).ok());
        rec.commit_ts = txn->commit_ts();
        commits[w].push_back(std::move(rec));
        for (size_t di : deleted_idx) {
          owned[di] = owned.back();
          owned.pop_back();
        }
        owned.insert(owned.end(), inserted.begin(), inserted.end());
      }
      writers_done.fetch_add(1, std::memory_order_release);
    });
  }

  for (int rd = 0; rd < kValueReaders; ++rd) {
    threads.emplace_back([&, rd]() {
      auto& out = samples[rd];
      bool final_pass = false;
      while (!final_pass) {
        final_pass = writers_done.load(std::memory_order_acquire) == kValueWriters;
        // View FIRST, guard second: the guard's watermark then covers every
        // commit at or before the snapshot.
        ReadView v = tm->AutoCommitView();
        auto g = t->Read();
        ValueSample smp;
        smp.snapshot_ts = v.snapshot_ts;
        g.ScanVisible(v, [&](uint64_t r) {
          smp.ids.push_back(g.GetValue(r, 0).AsInt());
        });
        std::sort(smp.ids.begin(), smp.ids.end());
        out.push_back(std::move(smp));
      }
    });
  }

  for (auto& th : threads) th.join();
  std::vector<ValueCommit> sorted = SortCommits(std::move(commits));
  for (int rd = 0; rd < kValueReaders; ++rd) {
    CheckValueSamples(sorted, samples[rd], rd);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

void RunColumnValueOracle(uint64_t seed) {
  SCOPED_TRACE("column value oracle seed " + std::to_string(seed) +
               " (replay: POLY_MVCC_SEED=" + std::to_string(seed) + ")");
  Database db;
  TransactionManager tm;
  ColumnTable* t = *db.CreateTable("t", OrderSchema());
  RunValueOracle(seed, &tm, t);
}

void RunRowValueOracle(uint64_t seed) {
  SCOPED_TRACE("row value oracle seed " + std::to_string(seed) +
               " (replay: POLY_MVCC_SEED=" + std::to_string(seed) + ")");
  Database db;
  TransactionManager tm;
  RowTable* t = *db.CreateRowTable("r", OrderSchema());
  RunValueOracle(seed, &tm, t);
}

/// FlexibleTable variant: writers are caller-serialized (the FlexibleTable
/// contract) behind one mutex, and some records carry fresh attributes so
/// AddColumn republication runs inside the oracle. With the mutex held,
/// CurrentTimestamp() right after Insert returns IS that txn's commit
/// timestamp — only commits advance the clock.
void RunFlexValueOracle(uint64_t seed) {
  SCOPED_TRACE("flexible value oracle seed " + std::to_string(seed) +
               " (replay: POLY_MVCC_SEED=" + std::to_string(seed) + ")");
  constexpr int kTxnsPerWriter = 30;
  Database db;
  TransactionManager tm;
  ColumnTable* ct =
      *db.CreateTable("flex", Schema({ColumnDef("id", DataType::kInt64)}));
  FlexibleTable flex(&tm, ct);

  std::mutex write_mu;
  std::atomic<int> writers_done{0};
  std::vector<std::vector<ValueCommit>> commits(kValueWriters);
  std::vector<std::vector<ValueSample>> samples(kValueReaders);
  std::vector<std::thread> threads;

  for (int w = 0; w < kValueWriters; ++w) {
    threads.emplace_back([&, w]() {
      Random rng(Random::Mix(seed, 0x51 + w));
      for (int i = 0; i < kTxnsPerWriter; ++i) {
        int64_t id = static_cast<int64_t>(w) * 1000000 + i;
        std::map<std::string, Value> rec{{"id", Value::Int(id)}};
        if (rng.Bernoulli(0.2)) {  // implicit DDL mid-oracle
          rec["w" + std::to_string(w) + "_c" + std::to_string(i)] = Value::Int(i);
        }
        uint64_t commit_ts;
        {
          std::lock_guard<std::mutex> lk(write_mu);
          ASSERT_TRUE(flex.Insert(rec).ok());
          commit_ts = tm.CurrentTimestamp();
        }
        commits[w].push_back({commit_ts, {id}, {}});
      }
      writers_done.fetch_add(1, std::memory_order_release);
    });
  }

  for (int rd = 0; rd < kValueReaders; ++rd) {
    threads.emplace_back([&, rd]() {
      auto& out = samples[rd];
      bool final_pass = false;
      while (!final_pass) {
        final_pass = writers_done.load(std::memory_order_acquire) == kValueWriters;
        ReadView v = tm.AutoCommitView();
        ColumnTable::ReadGuard g(ct);
        ValueSample smp;
        smp.snapshot_ts = v.snapshot_ts;
        g.ScanVisible(v, [&](uint64_t r) {
          // Full-width read across whatever columns this generation has.
          for (size_t c = 1; c < g.num_columns(); ++c) (void)g.GetValue(r, c);
          smp.ids.push_back(g.GetValue(r, 0).AsInt());
        });
        std::sort(smp.ids.begin(), smp.ids.end());
        out.push_back(std::move(smp));
      }
    });
  }

  for (auto& th : threads) th.join();
  std::vector<ValueCommit> sorted = SortCommits(std::move(commits));
  for (int rd = 0; rd < kValueReaders; ++rd) {
    CheckValueSamples(sorted, samples[rd], rd);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(MvccValueOracle, ColumnTableMatchesSerialReplay) {
  if (const char* env = std::getenv("POLY_MVCC_SEED")) {
    RunColumnValueOracle(std::strtoull(env, nullptr, 10));
    return;
  }
  for (uint64_t seed = 1; seed <= kOracleSeeds(); ++seed) {
    RunColumnValueOracle(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(MvccValueOracle, RowTableMatchesSerialReplay) {
  if (const char* env = std::getenv("POLY_MVCC_SEED")) {
    RunRowValueOracle(std::strtoull(env, nullptr, 10));
    return;
  }
  for (uint64_t seed = 1; seed <= kOracleSeeds(); ++seed) {
    RunRowValueOracle(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(MvccValueOracle, FlexibleTableMatchesSerialReplay) {
  if (const char* env = std::getenv("POLY_MVCC_SEED")) {
    RunFlexValueOracle(std::strtoull(env, nullptr, 10));
    return;
  }
  for (uint64_t seed = 1; seed <= kOracleSeeds(); ++seed) {
    RunFlexValueOracle(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace poly
