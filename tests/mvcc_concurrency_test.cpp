// Reader-safe MVCC version storage (DESIGN.md §12): deterministic unit
// tests for the epoch/chunk VersionStore, and the seeded concurrent-
// visibility oracle harness — N writer threads vs M snapshot readers, where
// every reader-observed (snapshot_ts, visible_count) pair must match a
// serial replay oracle. Everything is seeded: a failure prints its seed and
// replays with
//   POLY_MVCC_SEED=17 ./tests/poly_tests --gtest_filter='MvccOracle.*'
// (same pattern as chaos_test.cpp). Runs under `ctest -L concurrency` and
// must stay TSan-clean — this file IS the regression gate for the old
// "version-vector growth is not reader-safe" finding.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <thread>
#include <vector>

#include "common/random.h"
#include "docstore/flexible_table.h"
#include "storage/database.h"
#include "storage/row_table.h"
#include "storage/version_store.h"
#include "txn/transaction_manager.h"

namespace poly {
namespace {

// ---------------------------------------------------------------------------
// Deterministic single-threaded unit tests for the chunk directory.
// ---------------------------------------------------------------------------

TEST(VersionStore, ChunkBoundaryAppend) {
  VersionStore vs(/*chunk_rows=*/4);
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(vs.Append(/*cts=*/100 + i, /*dts=*/0), i);
  }
  EXPECT_EQ(vs.size(), 10u);
  EXPECT_EQ(vs.num_chunks(), 3u);  // 4 + 4 + 2 rows
  // Values survive the chunk boundaries, through both read paths.
  VersionStore::ReadGuard g = vs.Read();
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(g.cts(i), 100 + i);
    EXPECT_EQ(g.dts(i), 0u);
    EXPECT_EQ(vs.ReadCts(i), 100 + i);
  }
}

TEST(VersionStore, DirectoryGrowthPreservesStampsAndReclaims) {
  VersionStore vs(/*chunk_rows=*/4);
  // Initial directory: 4 chunk slots * 4 rows = 16 rows; push well past two
  // doublings.
  const uint64_t kRows = 4 * 4 * 8;
  for (uint64_t i = 0; i < kRows; ++i) vs.Append(i + 1, 0);
  EXPECT_GE(vs.directory_capacity(), kRows / 4);
  for (uint64_t i = 0; i < kRows; ++i) EXPECT_EQ(vs.ReadCts(i), i + 1);
  // No reader was pinned across growth, so every retired directory has been
  // reclaimed already (Grow retires then immediately reclaims).
  EXPECT_EQ(vs.retired_count(), 0u);
}

TEST(VersionStore, WatermarkPublicationOrdering) {
  VersionStore vs(/*chunk_rows=*/4);
  vs.Append(7, 0);
  VersionStore::ReadGuard before = vs.Read();
  EXPECT_EQ(before.size(), 1u);
  vs.Append(8, 0);
  // A guard taken before the append keeps its frozen watermark; a fresh
  // guard sees the published row.
  EXPECT_EQ(before.size(), 1u);
  VersionStore::ReadGuard after = vs.Read();
  EXPECT_EQ(after.size(), 2u);
  EXPECT_EQ(after.cts(1), 8u);
}

TEST(VersionStore, EpochRetireReclaimSequencing) {
  VersionStore vs(/*chunk_rows=*/4);
  for (uint64_t i = 0; i < 8; ++i) vs.Append(10 + i, i % 2 ? 99 : 0);

  auto* pinned = new VersionStore::ReadGuard(&vs);  // reader in flight
  EXPECT_EQ((*pinned).size(), 8u);

  // Rebuild (what Vacuum does): drop the odd rows, renumber.
  std::vector<std::pair<uint64_t, uint64_t>> survivors;
  for (uint64_t i = 0; i < 8; i += 2) survivors.emplace_back(10 + i, 0);
  vs.Rebuild(survivors);

  // The old chunks + directory are retired but NOT freed: the pinned guard
  // still reads the pre-rebuild history.
  EXPECT_GE(vs.retired_count(), 1u);
  EXPECT_EQ(vs.ReclaimExpired(), 0u);  // reclamation never frees pinned chunks
  EXPECT_GE(vs.retired_count(), 1u);
  EXPECT_EQ((*pinned).size(), 8u);
  for (uint64_t i = 0; i < 8; ++i) EXPECT_EQ((*pinned).cts(i), 10 + i);

  // New readers see the rebuilt, renumbered history immediately.
  EXPECT_EQ(vs.size(), 4u);
  EXPECT_EQ(vs.ReadCts(1), 12u);

  // Unpin; now the retired epoch is past every pinned epoch and frees run.
  delete pinned;
  EXPECT_GE(vs.ReclaimExpired(), 1u);
  EXPECT_EQ(vs.retired_count(), 0u);
}

TEST(VersionStore, ReclaimNeverFreesChunkPinnedAcrossManyRetires) {
  VersionStore vs(/*chunk_rows=*/4);
  for (uint64_t i = 0; i < 6; ++i) vs.Append(i + 1, 0);
  VersionStore::ReadGuard g = vs.Read();
  // Pile up several generations of retired memory under the live pin.
  for (int round = 0; round < 5; ++round) {
    std::vector<std::pair<uint64_t, uint64_t>> stamps;
    for (uint64_t i = 0; i < 6 + static_cast<uint64_t>(round); ++i) {
      stamps.emplace_back(1000 * (round + 1) + i, 0);
    }
    vs.Rebuild(stamps);
    vs.ReclaimExpired();
  }
  // Only the generations newer than the pin were freed; the pinned one
  // still answers with its original stamps (ASan would flag a freed read).
  EXPECT_GE(vs.retired_count(), 1u);
  for (uint64_t i = 0; i < 6; ++i) EXPECT_EQ(g.cts(i), i + 1);
}

TEST(VersionStore, WriterStoresVisibleThroughGuards) {
  VersionStore vs(/*chunk_rows=*/4);
  uint64_t r = vs.Append(kTxnBit | 5, 0);
  EXPECT_EQ(vs.WriterLoadCts(r), kTxnBit | 5);
  vs.WriterStoreCts(r, 42);  // commit resolution
  vs.WriterStoreDts(r, 77);
  VersionStore::ReadGuard g = vs.Read();
  EXPECT_EQ(g.cts(r), 42u);
  EXPECT_EQ(g.dts(r), 77u);
  EXPECT_EQ(vs.WriterLoadDts(r), 77u);
}

// ---------------------------------------------------------------------------
// Concurrent-visibility oracle harness.
// ---------------------------------------------------------------------------

Schema OrderSchema() {
  return Schema({ColumnDef("id", DataType::kInt64),
                 ColumnDef("amount", DataType::kDouble)});
}

struct CommitRecord {
  uint64_t commit_ts;
  int64_t delta;  // net visible-row change: inserts - deletes
};

struct ReaderSample {
  uint64_t snapshot_ts;
  uint64_t count;
};

/// One seeded oracle run: kWriters writer threads issue insert/update/delete
/// transactions through the TransactionManager while kReaders snapshot
/// readers hammer CountVisible. Afterward a serial replay — the sorted
/// (commit_ts, delta) log — predicts the exact visible count for every
/// snapshot timestamp any reader observed.
void RunMvccOracle(uint64_t seed, bool with_deletes) {
  SCOPED_TRACE("mvcc seed " + std::to_string(seed) +
               (with_deletes ? " mixed" : " insert-only") +
               " (replay: POLY_MVCC_SEED=" + std::to_string(seed) + ")");
  Database db;
  TransactionManager tm;
  ColumnTable* t = *db.CreateTable("t", OrderSchema());

  constexpr int kWriters = 3;
  constexpr int kReaders = 2;
  constexpr int kTxnsPerWriter = 60;

  std::atomic<int> writers_done{0};
  std::vector<std::vector<CommitRecord>> commits(kWriters);
  std::vector<std::vector<ReaderSample>> samples(kReaders);
  std::vector<std::thread> threads;

  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w]() {
      Random rng(Random::Mix(seed, 0x11 + w));
      std::vector<uint64_t> owned;  // committed live rows this writer owns
      for (int i = 0; i < kTxnsPerWriter; ++i) {
        auto txn = tm.Begin();
        int64_t delta = 0;
        std::vector<uint64_t> inserted;
        std::vector<size_t> deleted_idx;
        // Deletes/updates only target rows this writer inserted and
        // committed, so write-write conflicts cannot abort a transaction
        // the oracle expects to commit.
        int op = (with_deletes && !owned.empty()) ? static_cast<int>(rng.Uniform(3)) : 0;
        if (op == 0) {  // insert 1..3 rows
          int k = 1 + static_cast<int>(rng.Uniform(3));
          for (int j = 0; j < k; ++j) {
            ASSERT_TRUE(tm.Insert(txn.get(), t,
                                  {Value::Int(static_cast<int64_t>(w) * 1000000 + i),
                                   Value::Dbl(1.0)})
                            .ok());
            inserted.push_back(txn->last_write_row());
            ++delta;
          }
        } else if (op == 1) {  // delete one owned row
          size_t pick = rng.Uniform(owned.size());
          ASSERT_TRUE(tm.Delete(txn.get(), t, owned[pick]).ok());
          deleted_idx.push_back(pick);
          --delta;
        } else {  // update = delete old + insert new
          size_t pick = rng.Uniform(owned.size());
          ASSERT_TRUE(tm.Delete(txn.get(), t, owned[pick]).ok());
          deleted_idx.push_back(pick);
          ASSERT_TRUE(tm.Insert(txn.get(), t,
                                {Value::Int(static_cast<int64_t>(w) * 1000000 + i),
                                 Value::Dbl(2.0)})
                          .ok());
          inserted.push_back(txn->last_write_row());
        }
        if (rng.Bernoulli(0.12)) {  // exercise abort (ClearDeleteStamp path)
          ASSERT_TRUE(tm.Abort(txn.get()).ok());
          continue;  // no oracle entry, owned set unchanged
        }
        ASSERT_TRUE(tm.Commit(txn.get()).ok());
        commits[w].push_back({txn->commit_ts(), delta});
        for (size_t idx : deleted_idx) {
          owned[idx] = owned.back();
          owned.pop_back();
        }
        owned.insert(owned.end(), inserted.begin(), inserted.end());
      }
      writers_done.fetch_add(1, std::memory_order_release);
    });
  }

  for (int rd = 0; rd < kReaders; ++rd) {
    threads.emplace_back([&, rd]() {
      auto& out = samples[rd];
      while (writers_done.load(std::memory_order_acquire) < kWriters) {
        ReadView v = tm.AutoCommitView();
        out.push_back({v.snapshot_ts, t->CountVisible(v)});
      }
      // One final sample after all writers finished.
      ReadView v = tm.AutoCommitView();
      out.push_back({v.snapshot_ts, t->CountVisible(v)});
    });
  }

  for (auto& th : threads) th.join();

  // Serial replay oracle: prefix-sum the commit log by timestamp.
  std::map<uint64_t, int64_t> by_ts;
  for (const auto& wc : commits) {
    for (const CommitRecord& c : wc) by_ts[c.commit_ts] += c.delta;
  }
  std::vector<std::pair<uint64_t, uint64_t>> prefix;  // (ts, count at ts)
  int64_t running = 0;
  for (const auto& [ts, d] : by_ts) {
    running += d;
    ASSERT_GE(running, 0);
    prefix.emplace_back(ts, static_cast<uint64_t>(running));
  }
  auto expected_at = [&](uint64_t s) -> uint64_t {
    uint64_t e = 0;
    for (const auto& [ts, cnt] : prefix) {
      if (ts <= s) e = cnt;
      else break;
    }
    return e;
  };

  for (int rd = 0; rd < kReaders; ++rd) {
    uint64_t last_s = 0;
    uint64_t last_c = 0;
    for (const ReaderSample& smp : samples[rd]) {
      // Snapshot timestamps are non-decreasing within one reader, and in an
      // insert-only history the counts must be monotone too.
      ASSERT_GE(smp.snapshot_ts, last_s) << "reader " << rd;
      if (!with_deletes) {
        ASSERT_GE(smp.count, last_c)
            << "reader " << rd << " at snapshot " << smp.snapshot_ts;
      }
      ASSERT_EQ(smp.count, expected_at(smp.snapshot_ts))
          << "reader " << rd << " at snapshot " << smp.snapshot_ts
          << " (oracle mismatch)";
      last_s = smp.snapshot_ts;
      last_c = smp.count;
    }
    ASSERT_FALSE(samples[rd].empty());
    // The final sample ran after every commit: it must equal the full replay.
    EXPECT_EQ(samples[rd].back().count,
              prefix.empty() ? 0u : prefix.back().second);
  }
}

uint64_t kOracleSeeds() {
  return 50;  // acceptance: the oracle passes 50 seeds
}

TEST(MvccOracle, MixedWorkloadMatchesSerialReplay) {
  if (const char* env = std::getenv("POLY_MVCC_SEED")) {
    RunMvccOracle(std::strtoull(env, nullptr, 10), /*with_deletes=*/true);
    return;
  }
  for (uint64_t seed = 1; seed <= kOracleSeeds(); ++seed) {
    RunMvccOracle(seed, /*with_deletes=*/true);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(MvccOracle, InsertOnlyCountsMonotoneAndExact) {
  for (uint64_t seed = 101; seed <= 108; ++seed) {
    RunMvccOracle(seed, /*with_deletes=*/false);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// Vacuum under fire: readers hammer CountVisible while the single writer
// thread inserts, deletes, and vacuums in a loop. The retired version
// chunks must stay alive under every pinned guard (DESIGN.md §12.4) — this
// is the test that makes truncation/merge reclamation a gated property
// rather than a comment.
TEST(MvccOracle, CountVisibleSafeDuringVacuum) {
  Database db;
  TransactionManager tm;
  ColumnTable* t = *db.CreateTable("t", OrderSchema());
  constexpr int kRounds = 40;
  constexpr int kRowsPerRound = 16;

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int rd = 0; rd < 3; ++rd) {
    readers.emplace_back([&]() {
      while (!stop.load(std::memory_order_acquire)) {
        ReadView v = tm.AutoCommitView();
        uint64_t c = t->CountVisible(v);
        // Every round fully deletes what it inserted, so a reader can never
        // see more than one round's rows alive.
        ASSERT_LE(c, static_cast<uint64_t>(kRowsPerRound));
      }
    });
  }

  for (int round = 0; round < kRounds; ++round) {
    std::vector<uint64_t> rows;
    auto ins = tm.Begin();
    for (int i = 0; i < kRowsPerRound; ++i) {
      ASSERT_TRUE(tm.Insert(ins.get(), t, {Value::Int(i), Value::Dbl(1.0)}).ok());
      rows.push_back(ins->last_write_row());
    }
    ASSERT_TRUE(tm.Commit(ins.get()).ok());
    auto del = tm.Begin();
    for (uint64_t r : rows) ASSERT_TRUE(tm.Delete(del.get(), t, r).ok());
    ASSERT_TRUE(tm.Commit(del.get()).ok());
    // No registered snapshots are active (readers use auto-commit views), so
    // every deleted version is dead to the watermark and vacuums away while
    // readers stay pinned on the old chunks.
    ASSERT_EQ(t->Vacuum(tm.OldestActiveSnapshot()),
              static_cast<uint64_t>(kRowsPerRound));
  }
  stop.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();

  EXPECT_EQ(t->CountVisible(tm.AutoCommitView()), 0u);
  EXPECT_EQ(t->num_versions(), 0u);
}

// RowTable shares the same VersionStore, so its latch-free count path gets
// the same guarantee the ColumnTable regression covers.
TEST(MvccOracle, RowTableCountVisibleDuringWrites) {
  Database db;
  TransactionManager tm;
  RowTable* t = *db.CreateRowTable("r", OrderSchema());
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::thread reader([&]() {
    uint64_t last = 0;
    while (!stop.load(std::memory_order_acquire)) {
      uint64_t c = t->CountVisible(tm.AutoCommitView());
      if (c < last) violations.fetch_add(1);
      last = c;
    }
  });
  for (int i = 0; i < 400; ++i) {
    auto txn = tm.Begin();
    ASSERT_TRUE(tm.Insert(txn.get(), t, {Value::Int(i), Value::Dbl(1.0)}).ok());
    ASSERT_TRUE(tm.Commit(txn.get()).ok());
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(t->CountVisible(tm.AutoCommitView()), 400u);
}

// FlexibleTable::NumRecords is CountVisible underneath — safe against
// concurrent schema-extending inserts (writers still caller-serialized).
TEST(MvccOracle, FlexibleTableNumRecordsDuringInserts) {
  Database db;
  TransactionManager tm;
  ColumnTable* ct = *db.CreateTable("flex", Schema(std::vector<ColumnDef>{}));
  FlexibleTable flex(&tm, ct);
  std::atomic<bool> stop{false};
  std::thread reader([&]() {
    uint64_t last = 0;
    while (!stop.load(std::memory_order_acquire)) {
      uint64_t c = flex.NumRecords();
      ASSERT_GE(c, last);
      last = c;
    }
  });
  for (int i = 0; i < 150; ++i) {
    // Every 10th record introduces a fresh attribute: AddColumn growth runs
    // concurrently with the reader's stamp-only count.
    std::map<std::string, Value> rec{{"a", Value::Int(i)}};
    if (i % 10 == 0) rec["extra_" + std::to_string(i)] = Value::Int(i);
    ASSERT_TRUE(flex.Insert(rec).ok());
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(flex.NumRecords(), 150u);
}

// ---------------------------------------------------------------------------
// Known remaining unguarded-growth shapes (DESIGN.md §12.5). These document
// the exact races a future chunked-column change must fix: reading column /
// row VALUES (not stamps) concurrently with appends. Disabled because they
// are true TSan findings by design; run them with
//   --gtest_also_run_disabled_tests under scripts/run_tsan.sh to reproduce.
// ---------------------------------------------------------------------------

TEST(MvccKnownGaps, DISABLED_ColumnValueReadsDuringInserts) {
  Database db;
  TransactionManager tm;
  ColumnTable* t = *db.CreateTable("t", OrderSchema());
  {
    auto txn = tm.Begin();
    ASSERT_TRUE(tm.Insert(txn.get(), t, {Value::Int(0), Value::Dbl(0.0)}).ok());
    ASSERT_TRUE(tm.Commit(txn.get()).ok());
  }
  std::atomic<bool> stop{false};
  std::thread reader([&]() {
    while (!stop.load(std::memory_order_acquire)) {
      ReadView v = tm.AutoCommitView();
      t->ScanVisible(v, [&](uint64_t r) {
        (void)t->GetValue(r, 0);  // races Column delta growth
      });
    }
  });
  for (int i = 1; i < 2000; ++i) {
    auto txn = tm.Begin();
    ASSERT_TRUE(tm.Insert(txn.get(), t, {Value::Int(i), Value::Dbl(1.0)}).ok());
    ASSERT_TRUE(tm.Commit(txn.get()).ok());
  }
  stop.store(true, std::memory_order_release);
  reader.join();
}

TEST(MvccKnownGaps, DISABLED_RowTableValueReadsDuringInserts) {
  Database db;
  TransactionManager tm;
  RowTable* t = *db.CreateRowTable("r", OrderSchema());
  {
    auto txn = tm.Begin();
    ASSERT_TRUE(tm.Insert(txn.get(), t, {Value::Int(0), Value::Dbl(0.0)}).ok());
    ASSERT_TRUE(tm.Commit(txn.get()).ok());
  }
  std::atomic<bool> stop{false};
  std::thread reader([&]() {
    while (!stop.load(std::memory_order_acquire)) {
      ReadView v = tm.AutoCommitView();
      t->ScanVisible(v, [&](uint64_t r) {
        (void)t->GetValue(r, 0);  // races rows_ reallocation
      });
    }
  });
  for (int i = 1; i < 2000; ++i) {
    auto txn = tm.Begin();
    ASSERT_TRUE(tm.Insert(txn.get(), t, {Value::Int(i), Value::Dbl(1.0)}).ok());
    ASSERT_TRUE(tm.Commit(txn.get()).ok());
  }
  stop.store(true, std::memory_order_release);
  reader.join();
}

}  // namespace
}  // namespace poly
