#include <gtest/gtest.h>

#include "common/random.h"
#include "engines/timeseries/ts_ops.h"
#include "streaming/streaming.h"

namespace poly {
namespace {

StreamEvent Ev(int64_t ts, int64_t key, double value) {
  return StreamEvent{ts, {Value::Int(key), Value::Dbl(value)}};
}

TEST(TumblingWindowTest, ClosesWindowsOnWatermark) {
  TumblingWindow w(/*window_micros=*/100, /*value_index=*/1);
  EXPECT_TRUE(w.OnEvent(Ev(10, 0, 1.0)).empty());
  EXPECT_TRUE(w.OnEvent(Ev(50, 0, 3.0)).empty());
  // Crossing into the next window closes [0, 100).
  auto closed = w.OnEvent(Ev(110, 0, 9.0));
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].window_start, 0);
  EXPECT_EQ(closed[0].count, 2u);
  EXPECT_EQ(closed[0].sum, 4.0);
  EXPECT_EQ(closed[0].min, 1.0);
  EXPECT_EQ(closed[0].max, 3.0);
  // Flush closes the remaining [100, 200).
  auto rest = w.Flush();
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].window_start, 100);
  EXPECT_EQ(rest[0].count, 1u);
}

TEST(TumblingWindowTest, GroupedByKey) {
  TumblingWindow w(100, 1, /*key_index=*/0);
  (void)w.OnEvent(Ev(10, 7, 1.0));
  (void)w.OnEvent(Ev(20, 8, 2.0));
  (void)w.OnEvent(Ev(30, 7, 3.0));
  auto closed = w.OnEvent(Ev(150, 7, 0.0));
  ASSERT_EQ(closed.size(), 2u);  // one result per key
  double sum7 = 0, sum8 = 0;
  for (const auto& r : closed) {
    if (r.key == Value::Int(7)) sum7 = r.sum;
    if (r.key == Value::Int(8)) sum8 = r.sum;
  }
  EXPECT_EQ(sum7, 4.0);
  EXPECT_EQ(sum8, 2.0);
}

TEST(TumblingWindowTest, AllowedLatenessAcceptsStragglers) {
  TumblingWindow strict(100, 1, -1, /*allowed_lateness=*/0);
  (void)strict.OnEvent(Ev(150, 0, 1.0));
  (void)strict.OnEvent(Ev(90, 0, 1.0));  // window [0,100) already past watermark
  EXPECT_EQ(strict.late_events(), 1u);

  TumblingWindow lenient(100, 1, -1, /*allowed_lateness=*/100);
  (void)lenient.OnEvent(Ev(150, 0, 1.0));
  (void)lenient.OnEvent(Ev(90, 0, 5.0));  // within lateness: accepted
  EXPECT_EQ(lenient.late_events(), 0u);
  auto closed = lenient.Flush();
  ASSERT_EQ(closed.size(), 2u);
  EXPECT_EQ(closed[0].window_start, 0);
  EXPECT_EQ(closed[0].sum, 5.0);
}

TEST(StreamPipelineTest, FilterMapWindowSink) {
  StreamPipeline pipeline;
  std::vector<WindowResult> windows;
  std::vector<StreamEvent> passed;
  pipeline
      .Filter([](const StreamEvent& e) { return e.values[1].NumericValue() >= 0; })
      .Map([](const StreamEvent& e) {
        StreamEvent out = e;
        out.values[1] = Value::Dbl(e.values[1].NumericValue() * 10);
        return out;
      })
      .Window(std::make_unique<TumblingWindow>(100, 1),
              [&](const WindowResult& r) { windows.push_back(r); })
      .Sink([&](const StreamEvent& e) { passed.push_back(e); });

  pipeline.PushBatch({Ev(10, 0, 1.0), Ev(20, 0, -5.0), Ev(30, 0, 2.0), Ev(120, 0, 4.0)});
  pipeline.Finish();

  EXPECT_EQ(pipeline.events_in(), 4u);
  EXPECT_EQ(pipeline.events_out(), 3u);  // one filtered out
  ASSERT_EQ(passed.size(), 3u);
  EXPECT_EQ(passed[0].values[1], Value::Dbl(10.0));
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].sum, 30.0);  // (1+2)*10 in [0,100)
  EXPECT_EQ(windows[1].sum, 40.0);
}

TEST(StreamPipelineTest, TableSinkLandsEventsInColumnStore) {
  Database db;
  TransactionManager tm;
  ColumnTable* readings = *db.CreateTable(
      "readings", Schema({ColumnDef("ts", DataType::kTimestamp),
                          ColumnDef("sensor", DataType::kInt64),
                          ColumnDef("value", DataType::kDouble)}));
  TableStreamSink sink(&tm, readings);
  StreamPipeline pipeline;
  pipeline
      .Filter([](const StreamEvent& e) { return e.values[0].AsInt() < 5; })
      .Sink(sink.AsSink());

  for (int i = 0; i < 20; ++i) {
    pipeline.Push(Ev(i * 1000, i % 10, 1.5 * i));
  }
  EXPECT_TRUE(sink.status().ok());
  EXPECT_EQ(sink.rows_written(), 10u);
  EXPECT_EQ(readings->CountVisible(tm.AutoCommitView()), 10u);

  // The landed stream is a first-class time series.
  auto series = SeriesFromTable(*readings, tm.AutoCommitView(), "ts", "value", "sensor", 1);
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series->size(), 2u);  // events 1 and 11
}

TEST(StreamPipelineTest, SinkSchemaMismatchSurfaces) {
  Database db;
  TransactionManager tm;
  ColumnTable* narrow = *db.CreateTable(
      "narrow", Schema({ColumnDef("ts", DataType::kTimestamp)}));
  TableStreamSink sink(&tm, narrow);
  StreamPipeline pipeline;
  pipeline.Sink(sink.AsSink());
  pipeline.Push(Ev(1, 2, 3.0));  // event has 2 extra values -> width mismatch
  EXPECT_FALSE(sink.status().ok());
  EXPECT_EQ(sink.rows_written(), 0u);
}

TEST(AnomalyTest, DetectsSpikes) {
  TimeSeries ts;
  Random rng(5);
  for (int i = 0; i < 500; ++i) {
    double v = 10.0 + rng.NextGaussian() * 0.1;
    if (i == 250 || i == 400) v += 5.0;  // injected spikes
    ts.Append(i, v);
  }
  auto anomalies = DetectAnomalies(ts, 50, 6.0);
  ASSERT_EQ(anomalies.size(), 2u);
  EXPECT_EQ(anomalies[0], 250u);
  EXPECT_EQ(anomalies[1], 400u);
  // Flat series with a tiny blip.
  TimeSeries flat;
  for (int i = 0; i < 100; ++i) flat.Append(i, 1.0);
  flat.values[80] = 1.5;
  auto blips = DetectAnomalies(flat, 20, 3.0);
  ASSERT_EQ(blips.size(), 1u);
  EXPECT_EQ(blips[0], 80u);
  EXPECT_TRUE(DetectAnomalies(flat, 1, 3.0).empty());  // degenerate window
}

}  // namespace
}  // namespace poly
