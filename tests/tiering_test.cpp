#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "aging/aging.h"
#include "aging/extended_storage.h"
#include "common/random.h"
#include "hadoop/dfs.h"
#include "hadoop/dfs_tier_store.h"
#include "query/compiled.h"
#include "query/executor.h"
#include "tiering/daemon.h"
#include "tiering/heat.h"
#include "tiering/policy.h"
#include "txn/transaction_manager.h"

namespace poly {
namespace {

using tiering::AccessHeatTracker;
using tiering::ColumnHeatSample;
using tiering::EpochReport;
using tiering::HeatSample;
using tiering::PartitionState;
using tiering::Residency;
using tiering::TierAction;
using tiering::TieringDaemon;
using tiering::TieringDecision;
using tiering::TieringPolicy;

AccessEvent Scan(const std::string& partition, uint64_t rows = 100) {
  AccessEvent e;
  e.partition = partition;
  e.rows_scanned = rows;
  e.bytes = rows * 8;
  return e;
}

AccessEvent PointRead(const std::string& partition) {
  AccessEvent e;
  e.partition = partition;
  e.rows_scanned = 1;
  e.bytes = 8;
  e.point_read = true;
  return e;
}

// ----------------------------------------------------------- heat tracker --

TEST(HeatTrackerTest, FoldsEpochCountsWithDecay) {
  AccessHeatTracker::Options opts;
  opts.decay = 0.5;
  opts.point_read_weight = 4.0;
  AccessHeatTracker tracker(opts);

  for (int i = 0; i < 3; ++i) tracker.OnAccess(Scan("p"));
  tracker.OnAccess(PointRead("p"));
  EXPECT_DOUBLE_EQ(tracker.HeatOf("p"), 0.0);  // raw counts fold at the epoch

  EXPECT_EQ(tracker.AdvanceEpoch(), 1u);
  EXPECT_DOUBLE_EQ(tracker.HeatOf("p"), 3.0 + 4.0);  // scans + weighted points

  // Idle epochs decay geometrically.
  tracker.AdvanceEpoch();
  EXPECT_DOUBLE_EQ(tracker.HeatOf("p"), 3.5);
  tracker.AdvanceEpoch();
  EXPECT_DOUBLE_EQ(tracker.HeatOf("p"), 1.75);
}

TEST(HeatTrackerTest, SnapshotSortedWithLifetimeTotals) {
  AccessHeatTracker tracker;
  tracker.OnAccess(Scan("b"));
  tracker.OnAccess(Scan("a"));
  tracker.OnAccess(PointRead("a"));
  tracker.AdvanceEpoch();
  tracker.OnAccess(Scan("a"));

  std::vector<HeatSample> snap = tracker.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].partition, "a");
  EXPECT_EQ(snap[1].partition, "b");
  EXPECT_EQ(snap[0].total_scans, 2u);       // never decayed
  EXPECT_EQ(snap[0].total_point_reads, 1u);
  EXPECT_EQ(snap[0].epoch_scans, 1u);       // since the last fold

  tracker.Forget("a");
  EXPECT_DOUBLE_EQ(tracker.HeatOf("a"), 0.0);
  EXPECT_EQ(tracker.Snapshot().size(), 1u);
}

TEST(HeatTrackerTest, ConcurrentObserversCountExactly) {
  AccessHeatTracker tracker;
  constexpr int kThreads = 8, kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracker] {
      for (int i = 0; i < kPerThread; ++i) tracker.OnAccess(Scan("shared"));
    });
  }
  for (auto& t : threads) t.join();
  tracker.AdvanceEpoch();
  EXPECT_DOUBLE_EQ(tracker.HeatOf("shared"),
                   static_cast<double>(kThreads * kPerThread));
}

TEST(HeatTrackerTest, ForgetWhileObserversRunIsSafe) {
  // Forget erases the map entry while reader threads are inside OnAccess;
  // the shared cell handle must keep their counts landing on live memory
  // (TSan/ASan guard the use-after-free this test exists for).
  AccessHeatTracker tracker;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&tracker, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        tracker.OnAccess(Scan("doomed"));
        tracker.OnAccess(PointRead("doomed"));
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    tracker.Forget("doomed");
    tracker.AdvanceEpoch();
  }
  stop.store(true);
  for (auto& t : threads) t.join();

  tracker.Forget("doomed");
  EXPECT_DOUBLE_EQ(tracker.HeatOf("doomed"), 0.0);
  EXPECT_TRUE(tracker.Snapshot().empty());
}

TEST(HeatTrackerTest, PerColumnCountersFoldIndependently) {
  AccessHeatTracker::Options opts;
  opts.decay = 0.5;
  opts.point_read_weight = 4.0;
  AccessHeatTracker tracker(opts);

  AccessEvent wide = Scan("p");
  wide.columns = {"a", "b"};
  tracker.OnAccess(wide);
  AccessEvent point = PointRead("p");
  point.columns = {"a"};
  tracker.OnAccess(point);

  tracker.AdvanceEpoch();
  EXPECT_DOUBLE_EQ(tracker.ColumnHeatOf("p", "a"), 1.0 + 4.0);
  EXPECT_DOUBLE_EQ(tracker.ColumnHeatOf("p", "b"), 1.0);
  EXPECT_DOUBLE_EQ(tracker.ColumnHeatOf("p", "never"), 0.0);
  // Column heat decays on the same cadence as partition heat.
  tracker.AdvanceEpoch();
  EXPECT_DOUBLE_EQ(tracker.ColumnHeatOf("p", "a"), 2.5);

  std::vector<ColumnHeatSample> cols = tracker.ColumnSnapshot("p");
  ASSERT_EQ(cols.size(), 2u);
  EXPECT_EQ(cols[0].column, "a");  // name-sorted
  EXPECT_EQ(cols[1].column, "b");
  EXPECT_EQ(cols[0].total_scans, 1u);
  EXPECT_EQ(cols[0].total_point_reads, 1u);
  EXPECT_EQ(cols[1].total_point_reads, 0u);

  // Forget drops the partition's column cells with it.
  tracker.Forget("p");
  EXPECT_TRUE(tracker.ColumnSnapshot("p").empty());
  EXPECT_DOUBLE_EQ(tracker.ColumnHeatOf("p", "a"), 0.0);
}

TEST(HeatTrackerTest, ColumnlessEventsStillHeatThePartition) {
  AccessHeatTracker tracker;
  tracker.OnAccess(Scan("p"));  // no columns named (e.g. older call sites)
  tracker.AdvanceEpoch();
  EXPECT_GT(tracker.HeatOf("p"), 0.0);
  EXPECT_TRUE(tracker.ColumnSnapshot("p").empty());
}

// ----------------------------------------------------------------- policy --

PartitionState State(const std::string& name, Residency residency, double heat,
                     uint64_t bytes = 1000, bool rule_aged = false,
                     uint64_t last_move = 0) {
  PartitionState s;
  s.partition = name;
  s.residency = residency;
  s.heat = heat;
  s.bytes = bytes;
  s.rule_aged = rule_aged;
  s.last_move_epoch = last_move;
  return s;
}

TieringPolicy::Options PolicyOpts() {
  TieringPolicy::Options o;
  o.promote_threshold = 8.0;
  o.demote_threshold = 2.0;
  o.aged_bias = 1.0;
  o.epoch_budget_bytes = 0;  // unlimited unless the test says otherwise
  o.cooldown_epochs = 0;
  return o;
}

const TieringDecision* FindDecision(const std::vector<TieringDecision>& ds,
                                    const std::string& name) {
  for (const auto& d : ds) {
    if (d.partition == name) return &d;
  }
  return nullptr;
}

TEST(TieringPolicyTest, HysteresisBandKeepsBothSides) {
  TieringPolicy policy(PolicyOpts());
  // Heat 5 sits inside the (2, 8) band: resident stays resident, demoted
  // stays demoted — no oscillation for mid-band partitions.
  auto ds = policy.Decide(1, {State("resident", Residency::kHot, 5.0),
                             State("demoted", Residency::kWarm, 5.0),
                             State("hot", Residency::kWarm, 9.0),
                             State("cold", Residency::kHot, 1.0)});
  EXPECT_EQ(FindDecision(ds, "resident")->action, TierAction::kKeep);
  EXPECT_EQ(FindDecision(ds, "demoted")->action, TierAction::kKeep);
  EXPECT_EQ(FindDecision(ds, "hot")->action, TierAction::kPromote);
  EXPECT_EQ(FindDecision(ds, "cold")->action, TierAction::kDemote);
}

TEST(TieringPolicyTest, AgedBiasRaisesTheBar) {
  TieringPolicy policy(PolicyOpts());
  // Effective heat = 8.5 - 1.0 = 7.5 < 8: the rule-aged partition misses
  // promotion where an unaged one at the same heat earns it.
  auto ds =
      policy.Decide(1, {State("aged", Residency::kWarm, 8.5, 1000, /*rule_aged=*/true),
                        State("plain", Residency::kWarm, 8.5)});
  EXPECT_EQ(FindDecision(ds, "aged")->action, TierAction::kKeep);
  EXPECT_EQ(FindDecision(ds, "plain")->action, TierAction::kPromote);
}

TEST(TieringPolicyTest, BudgetAdmitsMostValuableMovesFirst) {
  auto opts = PolicyOpts();
  opts.epoch_budget_bytes = 1500;
  TieringPolicy policy(opts);
  // Three hot promotions of 1000B each: only the hottest fits (1000), the
  // second needs 1000 > 500 left. Demotes come after promotes in the order.
  auto ds = policy.Decide(1, {State("warm1", Residency::kWarm, 10.0, 1000),
                             State("warm2", Residency::kWarm, 20.0, 1000),
                             State("warm3", Residency::kWarm, 15.0, 1000)});
  ASSERT_EQ(ds.size(), 3u);
  EXPECT_EQ(ds[0].partition, "warm2");  // hottest first
  EXPECT_EQ(ds[0].action, TierAction::kPromote);
  EXPECT_EQ(ds[1].partition, "warm3");
  EXPECT_EQ(ds[1].action, TierAction::kDeferredBudget);
  EXPECT_EQ(ds[2].partition, "warm1");
  EXPECT_EQ(ds[2].action, TierAction::kDeferredBudget);
}

TEST(TieringPolicyTest, CooldownDefersRecentMovers) {
  auto opts = PolicyOpts();
  opts.cooldown_epochs = 3;
  TieringPolicy policy(opts);
  // Moved at epoch 4; epochs 5 and 6 are inside the cooldown window,
  // epoch 7 is out.
  auto at = [&](uint64_t epoch) {
    return policy.Decide(epoch,
                         {State("p", Residency::kHot, 0.0, 1000, false, 4)})[0]
        .action;
  };
  EXPECT_EQ(at(5), TierAction::kDeferredCooldown);
  EXPECT_EQ(at(6), TierAction::kDeferredCooldown);
  EXPECT_EQ(at(7), TierAction::kDemote);
}

TEST(TieringPolicyTest, InvertedBandIsNormalizedInAllBuilds) {
  auto opts = PolicyOpts();
  opts.promote_threshold = 2.0;  // inverted: promote below demote
  opts.demote_threshold = 8.0;
  TieringPolicy policy(opts);
  // Normalized to a zero-width band at promote_threshold in every build —
  // an assert would vanish under NDEBUG and ship promote/demote thrash.
  EXPECT_DOUBLE_EQ(policy.options().demote_threshold, 2.0);

  // Heat 5 sat between the inverted thresholds: the raw options would
  // demote it while resident and promote it while demoted, every epoch.
  // After normalization it moves at most once and then stays put.
  auto resident = policy.Decide(1, {State("p", Residency::kHot, 5.0)});
  EXPECT_EQ(resident[0].action, TierAction::kKeep);
  auto demoted = policy.Decide(2, {State("p", Residency::kWarm, 5.0)});
  EXPECT_EQ(demoted[0].action, TierAction::kPromote);
}

TEST(TieringPolicyTest, DeterministicTieBreakByName) {
  TieringPolicy policy(PolicyOpts());
  auto ds = policy.Decide(1, {State("b", Residency::kHot, 0.0),
                             State("a", Residency::kHot, 0.0),
                             State("c", Residency::kWarm, 9.0)});
  // Promotes first, then demotes coldest-first with name tie-break.
  EXPECT_EQ(ds[0].partition, "c");
  EXPECT_EQ(ds[1].partition, "a");
  EXPECT_EQ(ds[2].partition, "b");
}

TEST(TieringPolicyTest, ThreeBandPlacementTable) {
  auto opts = PolicyOpts();  // bands: promote 8 / demote 2, cold 1 / 0.25
  TieringPolicy policy(opts);
  auto ds = policy.Decide(
      1, {State("warm_mid", Residency::kWarm, 5.0),    // inside hot/warm band
          State("warm_low", Residency::kWarm, 0.1),    // below cold-demote
          State("cold_mid", Residency::kCold, 0.5),    // inside warm/cold band
          State("cold_warming", Residency::kCold, 2.0),// re-crossed cold-promote
          State("cold_blazing", Residency::kCold, 9.0)});  // clears the HOT band
  EXPECT_EQ(FindDecision(ds, "warm_mid")->action, TierAction::kKeep);
  EXPECT_EQ(FindDecision(ds, "warm_low")->action, TierAction::kDemoteToCold);
  EXPECT_EQ(FindDecision(ds, "cold_mid")->action, TierAction::kKeep);
  EXPECT_EQ(FindDecision(ds, "cold_warming")->action, TierAction::kPromoteFromCold);
  // Hot enough to skip the warm stopover: cold -> hot directly.
  EXPECT_EQ(FindDecision(ds, "cold_blazing")->action, TierAction::kPromote);
  EXPECT_EQ(FindDecision(ds, "cold_blazing")->from, Residency::kCold);
}

TEST(TieringPolicyTest, SharedBudgetAdmitsPromotesBeforeColdEvictions) {
  auto opts = PolicyOpts();
  opts.epoch_budget_bytes = 1000;
  TieringPolicy policy(opts);
  // One warm->hot promotion and one warm->cold eviction, 1000B each, on a
  // budget that fits only one: the promote is admitted, the cold eviction
  // defers — hot data earns memory before cold data is evicted.
  auto ds = policy.Decide(1, {State("rising", Residency::kWarm, 10.0, 1000),
                             State("fading", Residency::kWarm, 0.1, 1000)});
  ASSERT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds[0].partition, "rising");  // promotes ordered first
  EXPECT_EQ(ds[0].action, TierAction::kPromote);
  EXPECT_EQ(ds[1].partition, "fading");
  EXPECT_EQ(ds[1].action, TierAction::kDeferredBudget);
}

TEST(TieringPolicyTest, ColdMovesPricedByCostFactor) {
  auto opts = PolicyOpts();
  opts.cold_move_cost_factor = 3.0;
  opts.epoch_budget_bytes = 2500;
  TieringPolicy policy(opts);

  EXPECT_EQ(policy.PricedBytes(1000, Residency::kHot, Residency::kWarm), 1000u);
  EXPECT_EQ(policy.PricedBytes(1000, Residency::kWarm, Residency::kCold), 3000u);
  EXPECT_EQ(policy.PricedBytes(1000, Residency::kCold, Residency::kHot), 3000u);

  // Both partitions want to move 1000 raw bytes down. The hot->warm demote
  // is priced 1000 and fits; the warm->cold demote is priced 3000 > 1500
  // left and defers, even though its raw bytes would have fit.
  auto ds = policy.Decide(1, {State("tepid", Residency::kHot, 0.0, 1000),
                             State("frozen", Residency::kWarm, 0.0, 1000)});
  const TieringDecision* tepid = FindDecision(ds, "tepid");
  const TieringDecision* frozen = FindDecision(ds, "frozen");
  EXPECT_EQ(tepid->action, TierAction::kDemote);
  EXPECT_EQ(tepid->priced_bytes, 1000u);
  EXPECT_EQ(frozen->action, TierAction::kDeferredBudget);
  EXPECT_NE(frozen->reason.find("priced move"), std::string::npos);
}

TEST(TieringPolicyTest, ColdBandCooldownOutlastsWarmCooldown) {
  auto opts = PolicyOpts();
  opts.cooldown_epochs = 2;
  opts.cold_cooldown_epochs = 4;
  TieringPolicy policy(opts);
  // Both moved at epoch 4 with heat 0. The hot partition (hot->warm, warm
  // band) frees up at epoch 6; the warm partition (warm->cold, cold band)
  // must wait until epoch 8 — a chain hot->warm->cold can never outrun the
  // cold band's cooldown.
  auto at = [&](uint64_t epoch, Residency res) {
    return policy.Decide(epoch, {State("p", res, 0.0, 1000, false, 4)})[0].action;
  };
  EXPECT_EQ(at(5, Residency::kHot), TierAction::kDeferredCooldown);
  EXPECT_EQ(at(6, Residency::kHot), TierAction::kDemote);
  EXPECT_EQ(at(6, Residency::kWarm), TierAction::kDeferredCooldown);
  EXPECT_EQ(at(7, Residency::kWarm), TierAction::kDeferredCooldown);
  EXPECT_EQ(at(8, Residency::kWarm), TierAction::kDemoteToCold);
}

TEST(TieringPolicyTest, InvertedColdBandIsNormalizedInAllBuilds) {
  auto opts = PolicyOpts();
  opts.cold_promote_threshold = 0.2;  // inverted: below cold_demote
  opts.cold_demote_threshold = 1.0;
  TieringPolicy policy(opts);
  // Same normalization as the hot/warm band: zero-width at cold_promote.
  EXPECT_DOUBLE_EQ(policy.options().cold_demote_threshold, 0.2);
  // Heat 0.5 sat between the inverted thresholds; normalized, a cold
  // partition promotes once and then keeps — no warm<->cold oscillation.
  auto cold = policy.Decide(1, {State("p", Residency::kCold, 0.5)});
  EXPECT_EQ(cold[0].action, TierAction::kPromoteFromCold);
  auto warm = policy.Decide(2, {State("p", Residency::kWarm, 0.5)});
  EXPECT_EQ(warm[0].action, TierAction::kKeep);
}

// ----------------------------------------------------------------- daemon --

class TieringDaemonFixture : public ::testing::Test {
 protected:
  static constexpr int kPartitions = 16;
  static constexpr int kRowsPerPartition = 64;

  void SetUp() override {
    for (int p = 0; p < kPartitions; ++p) {
      std::string name = PartName(p);
      ColumnTable* t = *db_.CreateTable(
          name, Schema({ColumnDef("id", DataType::kInt64),
                        ColumnDef("amount", DataType::kDouble)}));
      auto txn = tm_.Begin();
      for (int r = 0; r < kRowsPerPartition; ++r) {
        ASSERT_TRUE(tm_.Insert(txn.get(), t,
                               {Value::Int(p * 1000 + r), Value::Dbl(r * 1.5)})
                        .ok());
      }
      ASSERT_TRUE(tm_.Commit(txn.get()).ok());
    }
  }

  static std::string PartName(int p) {
    return "part" + std::string(p < 10 ? "0" : "") + std::to_string(p);
  }

  /// One foreground scan of a partition through the interpreted executor
  /// (drives the access observer exactly like production queries).
  Status QueryPartition(const std::string& name) {
    Executor exec(&db_, tm_.AutoCommitView());
    return exec.Execute(PlanBuilder::Scan(name).Build()).status();
  }

  TieringDaemon::Options DaemonOpts() {
    TieringDaemon::Options o;
    o.heat.decay = 0.5;
    o.policy.promote_threshold = 4.0;
    o.policy.demote_threshold = 1.0;
    o.policy.epoch_budget_bytes = 0;
    o.policy.cooldown_epochs = 0;
    return o;
  }

  Database db_;
  TransactionManager tm_;
  ExtendedStorage storage_;
  SimulatedDfs dfs_;
  DfsTierStore cold_{&dfs_};
};

TEST_F(TieringDaemonFixture, ConvergesOnSkewedWorkloadWithinKEpochs) {
  auto opts = DaemonOpts();
  // With 100 queries/epoch and decay 0.5, steady-state heat is ~2x the
  // per-epoch scan count: rank 0 of the Zipf (~30% of traffic) sits near 60,
  // the tail (a few percent each) well under 15.
  opts.policy.promote_threshold = 30.0;
  opts.policy.demote_threshold = 15.0;
  TieringDaemon daemon(&db_, &storage_, opts);
  for (int p = 0; p < kPartitions; ++p) daemon.Manage(PartName(p));

  // Seeded Zipf workload over the partitions: ranks 0-1 absorb most of the
  // skewed traffic (theta .99), the tail is nearly idle.
  ZipfGenerator zipf(kPartitions, 0.99, /*seed=*/7);
  constexpr int kEpochs = 4;  // "within K epochs"
  constexpr int kQueriesPerEpoch = 100;
  for (int e = 0; e < kEpochs; ++e) {
    for (int q = 0; q < kQueriesPerEpoch; ++q) {
      ASSERT_TRUE(QueryPartition(PartName(static_cast<int>(zipf.Next()))).ok());
    }
    auto report = daemon.RunEpoch();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
  }

  // The hot head of the Zipf distribution must still be resident; the cold
  // tail must have been demoted to warm storage.
  int resident = 0, demoted = 0;
  for (int p = 0; p < kPartitions; ++p) {
    if (db_.GetTable(PartName(p)).ok()) {
      ++resident;
    } else {
      EXPECT_TRUE(storage_.Contains(PartName(p))) << PartName(p);
      ++demoted;
    }
  }
  EXPECT_TRUE(db_.GetTable(PartName(0)).ok());  // hottest rank stays hot
  EXPECT_GE(demoted, kPartitions / 2) << "cold tail should be demoted";
  EXPECT_GE(resident, 1);

  // A query against a demoted partition is a hot-tier miss: the daemon
  // promotes it back on demand and the query succeeds.
  std::string cold;
  for (int p = kPartitions - 1; p >= 0; --p) {
    if (!db_.GetTable(PartName(p)).ok()) {
      cold = PartName(p);
      break;
    }
  }
  ASSERT_FALSE(cold.empty());
  ASSERT_TRUE(QueryPartition(cold).ok());
  EXPECT_TRUE(db_.GetTable(cold).ok());
  EXPECT_GE(metrics::Default().counter("tier.daemon.miss_promotes")->Value(), 1u);
}

TEST_F(TieringDaemonFixture, HysteresisPreventsOscillationInsideBand) {
  auto opts = DaemonOpts();
  opts.policy.promote_threshold = 8.0;
  opts.policy.demote_threshold = 2.0;
  TieringDaemon daemon(&db_, &storage_, opts);
  daemon.Manage(PartName(0));

  // Constant 3 scans/epoch with decay 0.5 converges to heat 6: always inside
  // the (2, 8) band, so the partition must never move in either direction.
  uint64_t moves = 0;
  for (int e = 0; e < 10; ++e) {
    for (int q = 0; q < 3; ++q) ASSERT_TRUE(QueryPartition(PartName(0)).ok());
    auto report = daemon.RunEpoch();
    ASSERT_TRUE(report.ok());
    moves += report->promotes + report->demotes;
    const TieringDecision* d = FindDecision(report->decisions, PartName(0));
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->action, TierAction::kKeep) << "epoch " << e << ": " << d->reason;
  }
  EXPECT_EQ(moves, 0u);
  EXPECT_TRUE(db_.GetTable(PartName(0)).ok());
}

TEST_F(TieringDaemonFixture, MigrationBudgetCapsPerEpochBytes) {
  auto opts = DaemonOpts();
  // Budget below two partitions' worth: every epoch moves at most that many
  // bytes, deferring the rest, and drains the cold set over several epochs.
  uint64_t one_partition = (*db_.GetTable(PartName(0)))->MemoryBytes();
  ASSERT_GT(one_partition, 0u);
  opts.policy.epoch_budget_bytes = one_partition + one_partition / 2;
  TieringDaemon daemon(&db_, &storage_, opts);
  for (int p = 0; p < 6; ++p) daemon.Manage(PartName(p));

  uint64_t total_demoted = 0;
  int epochs_with_deferrals = 0;
  for (int e = 0; e < 8 && total_demoted < 6; ++e) {
    auto report = daemon.RunEpoch();  // nothing queried: all six are cold
    ASSERT_TRUE(report.ok());
    EXPECT_LE(report->moved_bytes, opts.policy.epoch_budget_bytes)
        << "epoch " << e << " blew the migration budget";
    total_demoted += report->demotes;
    if (report->deferred_budget > 0) ++epochs_with_deferrals;
  }
  EXPECT_EQ(total_demoted, 6u) << "budget must rate-limit, not starve";
  EXPECT_GE(epochs_with_deferrals, 1);
}

TEST_F(TieringDaemonFixture, ExplainAndDecisionLogAnswerWhy) {
  TieringDaemon daemon(&db_, &storage_, DaemonOpts());
  daemon.Manage(PartName(3));

  std::string before = daemon.Explain(PartName(3));
  EXPECT_NE(before.find("tier=hot"), std::string::npos);
  EXPECT_NE(before.find("last decision: none"), std::string::npos);

  ASSERT_TRUE(daemon.RunEpoch().ok());  // cold partition: demoted

  std::string after = daemon.Explain(PartName(3));
  EXPECT_NE(after.find("tier=warm"), std::string::npos);
  EXPECT_NE(after.find("demote"), std::string::npos);
  EXPECT_NE(after.find("demote threshold"), std::string::npos);

  auto log = daemon.DecisionLog();
  ASSERT_FALSE(log.empty());
  EXPECT_EQ(log.back().partition, PartName(3));
  EXPECT_EQ(log.back().action, TierAction::kDemote);
}

TEST_F(TieringDaemonFixture, AgingRulesFeedTheDaemon) {
  // An aged partition created by the rule engine is discovered and managed
  // automatically; the rule_aged bias shows up in its decisions.
  ColumnTable* orders = *db_.CreateTable(
      "orders", Schema({ColumnDef("id", DataType::kInt64),
                        ColumnDef("year", DataType::kInt64)}));
  auto txn = tm_.Begin();
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(
        tm_.Insert(txn.get(), orders, {Value::Int(i), Value::Int(i < 24 ? 2020 : 2026)})
            .ok());
  }
  ASSERT_TRUE(tm_.Commit(txn.get()).ok());

  AgingManager aging(&db_, &tm_);
  AgingRule rule;
  rule.name = "orders_rule";
  rule.table = "orders";
  rule.predicate =
      Expr::Compare(CmpOp::kLt, Expr::Column(1), Expr::Literal(Value::Int(2026)));
  rule.guarantee = {"year", CmpOp::kLt, Value::Int(2026)};
  ASSERT_TRUE(aging.AddRule(rule).ok());

  auto opts = DaemonOpts();
  opts.run_aging = true;
  TieringDaemon daemon(&db_, &storage_, opts, &aging);

  auto report = daemon.RunEpoch();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->rows_aged, 24u);
  // The freshly created, untouched aged partition is cold -> demoted by the
  // same epoch's decision pass.
  ASSERT_NE(FindDecision(report->decisions, "orders$aged"), nullptr);
  EXPECT_EQ(FindDecision(report->decisions, "orders$aged")->action,
            TierAction::kDemote);
  EXPECT_FALSE(db_.GetTable("orders$aged").ok());
  EXPECT_TRUE(storage_.Contains("orders$aged"));
  EXPECT_TRUE(db_.GetTable("orders").ok());  // the hot base table never moves
}

TEST_F(TieringDaemonFixture, ConcurrentQueriesWhileDaemonMovesPartitions) {
  auto opts = DaemonOpts();
  opts.policy.promote_threshold = 4.0;
  opts.policy.demote_threshold = 3.0;
  TieringDaemon daemon(&db_, &storage_, opts);
  for (int p = 0; p < kPartitions; ++p) daemon.Manage(PartName(p));

  // Query threads hammer a mixed hot/cold partition set while epoch runs
  // demote and miss-promotes re-promote concurrently. Every query must
  // succeed (pinning + demand paging), and the tree must be TSan-clean.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([this, t, &stop, &failures] {
      Random rng(1000 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        int p = static_cast<int>(rng.Uniform(kPartitions));
        if (!QueryPartition(PartName(p)).ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int e = 0; e < 20; ++e) {
    auto report = daemon.RunEpoch();
    EXPECT_TRUE(report.ok()) << report.status().ToString();
  }
  stop.store(true);
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0u);

  // Quiesced: every partition is somewhere (hot or warm), none lost.
  for (int p = 0; p < kPartitions; ++p) {
    EXPECT_TRUE(db_.GetTable(PartName(p)).ok() || storage_.Contains(PartName(p)))
        << PartName(p);
  }
}

TEST_F(TieringDaemonFixture, ColdDemotionAndDemandPageIn) {
  auto opts = DaemonOpts();
  opts.policy.cold_promote_threshold = 0.5;
  opts.policy.cold_demote_threshold = 0.25;
  opts.policy.cold_cooldown_epochs = 0;
  TieringDaemon daemon(&db_, &storage_, &cold_, opts);
  daemon.Manage(PartName(0));

  // The cold cost factor was derived from the two cost models:
  // 2 * 10 ns/B (DFS read) / (2 + 4) ns/B (warm round trip) = 10/3.
  EXPECT_NEAR(daemon.policy().options().cold_move_cost_factor, 10.0 / 3.0, 1e-9);

  uint64_t page_ins_before =
      metrics::Default().counter("tier.cold.page_ins")->Value();

  // Never queried: epoch 1 demotes hot->warm, epoch 2 sinks warm->cold.
  auto r1 = daemon.RunEpoch();
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->demotes, 1u);
  ASSERT_TRUE(storage_.Contains(PartName(0)));
  auto r2 = daemon.RunEpoch();
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->cold_demotes, 1u);
  EXPECT_GT(r2->priced_bytes, r2->moved_bytes);  // cold move priced > raw
  EXPECT_FALSE(storage_.Contains(PartName(0)));
  EXPECT_TRUE(cold_.Contains(PartName(0)));
  EXPECT_TRUE(dfs_.Exists(ExtendedStorage::ColdPath(PartName(0))));

  std::string explain = daemon.Explain(PartName(0));
  EXPECT_NE(explain.find("tier=cold"), std::string::npos);
  EXPECT_NE(explain.find("demote-to-cold"), std::string::npos);

  // A query against the cold partition demand-pages it straight back to hot
  // with its MVCC stamps intact: every committed row is visible.
  Executor exec(&db_, tm_.AutoCommitView());
  auto rs = exec.Execute(PlanBuilder::Scan(PartName(0)).Build());
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->rows.size(), static_cast<size_t>(kRowsPerPartition));
  EXPECT_TRUE(db_.GetTable(PartName(0)).ok());
  // Moving out of the cold tier deletes the DFS file: residency stays
  // unambiguous.
  EXPECT_FALSE(cold_.Contains(PartName(0)));
  EXPECT_FALSE(dfs_.Exists(ExtendedStorage::ColdPath(PartName(0))));
  EXPECT_EQ(metrics::Default().counter("tier.cold.page_ins")->Value(),
            page_ins_before + 1);
  std::string after = daemon.Explain(PartName(0));
  EXPECT_NE(after.find("tier=hot"), std::string::npos);
  EXPECT_NE(after.find("demand-paged in from cold"), std::string::npos);
}

TEST_F(TieringDaemonFixture, ModerateHeatRaisesColdToWarmOnly) {
  auto opts = DaemonOpts();  // promote threshold 4.0
  opts.policy.cold_promote_threshold = 0.5;
  opts.policy.cold_demote_threshold = 0.25;
  opts.policy.cold_cooldown_epochs = 0;
  TieringDaemon daemon(&db_, &storage_, &cold_, opts);
  daemon.Manage(PartName(1));

  // Place the partition cold by hand, then warm it gently — one scan folds
  // to heat 1.0, above cold-promote (0.5) but far below promote (4.0).
  ASSERT_TRUE(storage_.Demote(&db_, PartName(1)).ok());
  ASSERT_TRUE(cold_.Sink(&storage_, PartName(1)).ok());
  daemon.heat().OnAccess(Scan(PartName(1)));

  auto report = daemon.RunEpoch();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->cold_promotes, 1u);
  EXPECT_EQ(report->promotes, 0u);  // warm stopover, not hot
  EXPECT_TRUE(storage_.Contains(PartName(1)));
  EXPECT_FALSE(cold_.Contains(PartName(1)));
  EXPECT_FALSE(db_.GetTable(PartName(1)).ok());
  const TieringDecision* d = FindDecision(report->decisions, PartName(1));
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->action, TierAction::kPromoteFromCold);
}

TEST_F(TieringDaemonFixture, WithoutColdStoreDaemonStaysTwoBand) {
  auto opts = DaemonOpts();
  // Thresholds that would sink everything to cold if the band were active.
  opts.policy.cold_promote_threshold = 5.0;
  opts.policy.cold_demote_threshold = 4.0;
  TieringDaemon daemon(&db_, &storage_, opts);  // no DfsTierStore attached
  daemon.Manage(PartName(2));

  ASSERT_TRUE(daemon.RunEpoch().ok());  // hot -> warm (heat 0)
  auto report = daemon.RunEpoch();      // would be warm -> cold, but disabled
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->cold_demotes, 0u);
  EXPECT_TRUE(storage_.Contains(PartName(2)));
  const TieringDecision* d = FindDecision(report->decisions, PartName(2));
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->action, TierAction::kKeep);
}

TEST_F(TieringDaemonFixture, ExecutorsFeedPerColumnHeat) {
  TieringDaemon daemon(&db_, &storage_, &cold_, DaemonOpts());

  // Interpreted executor materializes whole rows: both schema columns heat.
  ASSERT_TRUE(QueryPartition(PartName(1)).ok());
  // Compiled executor only touches its kernel's slots: SUM(amount) reads
  // "amount" but never "id".
  AggSpec total{AggFunc::kSum, Expr::Column(1), "total"};
  auto plan = PlanBuilder::Scan(PartName(2)).Aggregate({}, {total}).Build();
  QueryCompiler qc(&db_, tm_.AutoCommitView());
  ASSERT_TRUE(qc.CanCompile(plan));
  ASSERT_TRUE(qc.Execute(plan).ok());

  daemon.heat().AdvanceEpoch();
  EXPECT_GT(daemon.heat().ColumnHeatOf(PartName(1), "id"), 0.0);
  EXPECT_GT(daemon.heat().ColumnHeatOf(PartName(1), "amount"), 0.0);
  EXPECT_GT(daemon.heat().ColumnHeatOf(PartName(2), "amount"), 0.0);
  EXPECT_DOUBLE_EQ(daemon.heat().ColumnHeatOf(PartName(2), "id"), 0.0);

  std::string explain = daemon.Explain(PartName(1));
  EXPECT_NE(explain.find("column heat:"), std::string::npos);
  EXPECT_NE(explain.find("amount="), std::string::npos);
}

TEST_F(TieringDaemonFixture, ConcurrentScansSurviveColdDemotion) {
  // The §11.4/§12 safety argument, exercised across all THREE bands: query
  // threads hammer partitions while epochs demote hot->warm->cold and
  // misses demand-page cold->hot concurrently. Pinning + the movement lock
  // must keep every query succeeding, TSan-clean.
  auto opts = DaemonOpts();
  opts.policy.promote_threshold = 4.0;
  opts.policy.demote_threshold = 3.0;
  opts.policy.cold_promote_threshold = 2.0;
  opts.policy.cold_demote_threshold = 1.0;
  opts.policy.cold_cooldown_epochs = 0;
  TieringDaemon daemon(&db_, &storage_, &cold_, opts);
  for (int p = 0; p < kPartitions; ++p) daemon.Manage(PartName(p));

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([this, t, &stop, &failures] {
      Random rng(2000 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        int p = static_cast<int>(rng.Uniform(kPartitions));
        if (!QueryPartition(PartName(p)).ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int e = 0; e < 20; ++e) {
    auto report = daemon.RunEpoch();
    EXPECT_TRUE(report.ok()) << report.status().ToString();
  }
  stop.store(true);
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0u);

  // Quiesced: every partition is in exactly one tier, none lost.
  for (int p = 0; p < kPartitions; ++p) {
    int homes = (db_.GetTable(PartName(p)).ok() ? 1 : 0) +
                (storage_.Contains(PartName(p)) ? 1 : 0) +
                (cold_.Contains(PartName(p)) ? 1 : 0);
    EXPECT_EQ(homes, 1) << PartName(p);
  }

  // With queries gone, heat decays geometrically and everything must drain
  // hot -> warm -> cold: the full three-band descent for every partition.
  for (int e = 0; e < 40; ++e) {
    ASSERT_TRUE(daemon.RunEpoch().ok());
    bool all_cold = true;
    for (int p = 0; p < kPartitions; ++p) all_cold &= cold_.Contains(PartName(p));
    if (all_cold) break;
  }
  for (int p = 0; p < kPartitions; ++p) {
    EXPECT_TRUE(cold_.Contains(PartName(p))) << PartName(p);
  }
  // And a final query revives one straight from DFS.
  ASSERT_TRUE(QueryPartition(PartName(5)).ok());
  EXPECT_TRUE(db_.GetTable(PartName(5)).ok());
}

TEST_F(TieringDaemonFixture, BackgroundThreadStartStop) {
  TieringDaemon daemon(&db_, &storage_, DaemonOpts());
  daemon.Manage(PartName(0));
  EXPECT_FALSE(daemon.running());
  daemon.Start(std::chrono::milliseconds(1));
  EXPECT_TRUE(daemon.running());
  // Let a few wall-clock epochs fire, then stop; Stop must join cleanly and
  // be idempotent.
  for (int spins = 0; daemon.heat().epoch() < 3 && spins < 5000; ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  daemon.Stop();
  EXPECT_FALSE(daemon.running());
  daemon.Stop();  // idempotent
  EXPECT_GE(daemon.heat().epoch(), 3u);
}

}  // namespace
}  // namespace poly
