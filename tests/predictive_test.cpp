#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "engines/predictive/apriori.h"
#include "engines/predictive/forecast.h"
#include "engines/predictive/kmeans.h"

namespace poly {
namespace {

TEST(AprioriTest, FindsFrequentPairs) {
  // beer+diapers in 3 of 4 baskets.
  std::vector<std::vector<int64_t>> txns = {
      {1, 2, 3}, {1, 2}, {1, 2, 4}, {3, 4}};
  Apriori ap(0.5);
  auto itemsets = ap.FrequentItemsets(txns);
  bool pair12 = false;
  for (const auto& is : itemsets) {
    if (is.items == std::vector<int64_t>{1, 2}) {
      pair12 = true;
      EXPECT_EQ(is.support, 3u);
    }
  }
  EXPECT_TRUE(pair12);
}

TEST(AprioriTest, MinSupportPrunes) {
  std::vector<std::vector<int64_t>> txns = {{1, 2}, {1, 3}, {1, 4}, {1, 5}};
  Apriori strict(0.9);
  auto itemsets = strict.FrequentItemsets(txns);
  ASSERT_EQ(itemsets.size(), 1u);  // only {1}
  EXPECT_EQ(itemsets[0].items, std::vector<int64_t>{1});
}

TEST(AprioriTest, DuplicateItemsInBasketCountOnce) {
  std::vector<std::vector<int64_t>> txns = {{1, 1, 1}, {2}};
  Apriori ap(0.4);
  auto itemsets = ap.FrequentItemsets(txns);
  for (const auto& is : itemsets) {
    if (is.items == std::vector<int64_t>{1}) {
      EXPECT_EQ(is.support, 1u);
    }
  }
}

TEST(AprioriTest, TripleItemsets) {
  std::vector<std::vector<int64_t>> txns;
  for (int i = 0; i < 10; ++i) txns.push_back({1, 2, 3});
  txns.push_back({4});
  Apriori ap(0.5);
  auto itemsets = ap.FrequentItemsets(txns);
  bool triple = false;
  for (const auto& is : itemsets) {
    if (is.items == std::vector<int64_t>{1, 2, 3}) triple = true;
  }
  EXPECT_TRUE(triple);
}

TEST(AprioriTest, RulesHaveSaneMetrics) {
  std::vector<std::vector<int64_t>> txns = {
      {1, 2}, {1, 2}, {1, 2}, {1, 3}, {2, 3}};
  Apriori ap(0.2);
  auto rules = ap.Rules(txns, 0.7);
  ASSERT_FALSE(rules.empty());
  for (const auto& r : rules) {
    EXPECT_GE(r.confidence, 0.7);
    EXPECT_LE(r.confidence, 1.0);
    EXPECT_GT(r.support, 0);
    EXPECT_GT(r.lift, 0);
  }
  // 2 -> 1 has confidence 3/4.
  bool found = false;
  for (const auto& r : rules) {
    if (r.lhs == std::vector<int64_t>{2} && r.rhs == std::vector<int64_t>{1}) {
      EXPECT_NEAR(r.confidence, 0.75, 1e-9);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ForecastTest, SesFlatForecast) {
  auto f = SimpleExpSmoothing({10, 10, 10, 10}, 0.5, 3);
  ASSERT_TRUE(f.ok());
  for (double v : *f) EXPECT_NEAR(v, 10.0, 1e-9);
  EXPECT_FALSE(SimpleExpSmoothing({}, 0.5, 1).ok());
  EXPECT_FALSE(SimpleExpSmoothing({1}, 1.5, 1).ok());
}

TEST(ForecastTest, HoltTracksLinearTrend) {
  std::vector<double> series;
  for (int i = 0; i < 50; ++i) series.push_back(5.0 + 2.0 * i);
  auto f = HoltLinear(series, 0.8, 0.8, 3);
  ASSERT_TRUE(f.ok());
  EXPECT_NEAR((*f)[0], 5.0 + 2.0 * 50, 0.5);
  EXPECT_NEAR((*f)[2], 5.0 + 2.0 * 52, 0.5);
}

TEST(ForecastTest, HoltWintersCapturesSeasonality) {
  // Period-4 seasonal pattern on a mild upward trend.
  std::vector<double> season = {10, 20, 30, 15};
  std::vector<double> series;
  for (int cycle = 0; cycle < 8; ++cycle) {
    for (double s : season) series.push_back(s + cycle * 1.0);
  }
  auto f = HoltWinters(series, 4, 0.3, 0.1, 0.2, 4);
  ASSERT_TRUE(f.ok());
  // Forecast keeps the seasonal ordering: position 2 of the season is max.
  EXPECT_GT((*f)[2], (*f)[0]);
  EXPECT_GT((*f)[2], (*f)[3]);
  EXPECT_FALSE(HoltWinters(series, 4, 0.3, 0.1, 0.2, 4).status().ok() == false);
  EXPECT_FALSE(HoltWinters({1, 2, 3}, 4, 0.3, 0.1, 0.2, 1).ok());
}

TEST(ForecastTest, LinearFitRecoversLine) {
  std::vector<double> series;
  for (int i = 0; i < 20; ++i) series.push_back(3.0 - 0.5 * i);
  auto fit = FitLinearTrend(series);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->slope, -0.5, 1e-9);
  EXPECT_NEAR(fit->intercept, 3.0, 1e-9);
  EXPECT_NEAR(fit->r2, 1.0, 1e-9);
  auto constant = FitLinearTrend({5, 5, 5});
  ASSERT_TRUE(constant.ok());
  EXPECT_EQ(constant->slope, 0);
  EXPECT_EQ(constant->r2, 1.0);
}

TEST(ForecastTest, ErrorMetrics) {
  std::vector<double> actual = {1, 2, 3};
  std::vector<double> pred = {2, 2, 5};
  EXPECT_NEAR(MeanAbsoluteError(actual, pred), 1.0, 1e-9);
  EXPECT_NEAR(RootMeanSquaredError(actual, pred), std::sqrt(5.0 / 3), 1e-9);
}

TEST(KMeansTest, SeparatesObviousClusters) {
  Random rng(11);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 50; ++i) {
    points.push_back({rng.NextGaussian() * 0.1, rng.NextGaussian() * 0.1});
  }
  for (int i = 0; i < 50; ++i) {
    points.push_back({10 + rng.NextGaussian() * 0.1, 10 + rng.NextGaussian() * 0.1});
  }
  auto result = KMeans(points, 2, 100, 17);
  ASSERT_TRUE(result.ok());
  // All points in the first half share a cluster, second half the other.
  int c0 = result->assignments[0];
  for (int i = 1; i < 50; ++i) EXPECT_EQ(result->assignments[i], c0);
  int c1 = result->assignments[50];
  EXPECT_NE(c0, c1);
  for (int i = 51; i < 100; ++i) EXPECT_EQ(result->assignments[i], c1);
  EXPECT_LT(result->inertia, 10.0);
}

TEST(KMeansTest, Deterministic) {
  std::vector<std::vector<double>> points = {{1}, {2}, {10}, {11}, {20}, {21}};
  auto a = KMeans(points, 3, 50, 5);
  auto b = KMeans(points, 3, 50, 5);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->assignments, b->assignments);
  EXPECT_EQ(a->inertia, b->inertia);
}

TEST(KMeansTest, InvalidArguments) {
  EXPECT_FALSE(KMeans({{1}, {2}}, 0).ok());
  EXPECT_FALSE(KMeans({{1}}, 2).ok());
  EXPECT_FALSE(KMeans({{1, 2}, {1}}, 1).ok());
}

}  // namespace
}  // namespace poly
