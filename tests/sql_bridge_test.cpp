#include <gtest/gtest.h>

#include "soe/sql_bridge.h"

namespace poly {
namespace {

class SqlBridgeFixture : public ::testing::Test {
 protected:
  SqlBridgeFixture() : cluster_(MakeOptions()), bridge_(&cluster_) {
    Schema s({ColumnDef("sensor", DataType::kInt64),
              ColumnDef("site", DataType::kInt64),
              ColumnDef("value", DataType::kDouble)});
    (void)cluster_.CreateTable("readings", s, PartitionSpec::Hash("sensor", 6), 2);
    std::vector<Row> rows;
    for (int i = 0; i < 300; ++i) {
      rows.push_back({Value::Int(i % 30), Value::Int(i % 3), Value::Dbl(1.0 * i)});
    }
    (void)cluster_.CommitInserts("readings", rows);
  }

  static SoeCluster::Options MakeOptions() {
    SoeCluster::Options opts;
    opts.num_nodes = 3;
    return opts;
  }

  SoeCluster cluster_;
  SoeSqlBridge bridge_;
};

TEST_F(SqlBridgeFixture, GlobalAggregate) {
  auto rs = bridge_.Execute("SELECT COUNT(*) AS n, SUM(value) AS total FROM readings");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->num_rows(), 1u);
  EXPECT_EQ(rs->rows[0][0], Value::Int(300));
  EXPECT_DOUBLE_EQ(rs->rows[0][1].NumericValue(), 299.0 * 300 / 2);
}

TEST_F(SqlBridgeFixture, GroupByWithWhereOrderLimit) {
  auto rs = bridge_.Execute(
      "SELECT site, SUM(value) AS total FROM readings "
      "WHERE sensor < 10 GROUP BY site ORDER BY total DESC LIMIT 2");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->num_rows(), 2u);
  EXPECT_GE(rs->rows[0][1].NumericValue(), rs->rows[1][1].NumericValue());
  // Ground truth: rows with sensor < 10 are i%30 < 10.
  double per_site[3] = {0, 0, 0};
  for (int i = 0; i < 300; ++i) {
    if (i % 30 < 10) per_site[i % 3] += i;
  }
  std::sort(per_site, per_site + 3, std::greater<double>());
  EXPECT_DOUBLE_EQ(rs->rows[0][1].NumericValue(), per_site[0]);
  EXPECT_DOUBLE_EQ(rs->rows[1][1].NumericValue(), per_site[1]);
}

TEST_F(SqlBridgeFixture, DistributedScanThroughSql) {
  auto rs = bridge_.Execute("SELECT * FROM readings WHERE sensor = 7");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->num_rows(), 10u);
  for (const auto& row : rs->rows) EXPECT_EQ(row[0], Value::Int(7));
}

TEST_F(SqlBridgeFixture, ProjectionOverScan) {
  auto rs = bridge_.Execute(
      "SELECT value * 2 AS doubled FROM readings WHERE sensor = 0 "
      "ORDER BY doubled LIMIT 3");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->num_rows(), 3u);
  EXPECT_EQ(rs->column_names[0], "doubled");
  EXPECT_DOUBLE_EQ(rs->rows[0][0].NumericValue(), 0.0);
  EXPECT_DOUBLE_EQ(rs->rows[1][0].NumericValue(), 60.0);  // i=30
}

TEST_F(SqlBridgeFixture, SurvivesNodeFailure) {
  ASSERT_TRUE(cluster_.KillNode(0).ok());
  auto rs = bridge_.Execute("SELECT COUNT(*) AS n FROM readings");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->rows[0][0], Value::Int(300));
}

TEST_F(SqlBridgeFixture, DistributedJoinViaGatherAndExecute) {
  Schema s({ColumnDef("site_id", DataType::kInt64),
            ColumnDef("city", DataType::kString)});
  (void)cluster_.CreateTable("sites", s, PartitionSpec::Hash("site_id", 2));
  (void)cluster_.CommitInserts(
      "sites", {{Value::Int(0), Value::Str("walldorf")},
                {Value::Int(1), Value::Str("dresden")},
                {Value::Int(2), Value::Str("seoul")}});
  auto rs = bridge_.Execute(
      "SELECT city, SUM(value) AS total FROM readings "
      "JOIN sites ON site = site_id WHERE sensor < 3 "
      "GROUP BY city ORDER BY city");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->num_rows(), 3u);
  EXPECT_EQ(rs->rows[0][0], Value::Str("dresden"));
  // Ground truth.
  double per_site[3] = {0, 0, 0};
  for (int i = 0; i < 300; ++i) {
    if (i % 30 < 3) per_site[i % 3] += i;
  }
  // dresden=site1, seoul=site2, walldorf=site0 (alphabetical order).
  EXPECT_DOUBLE_EQ(rs->rows[0][1].NumericValue(), per_site[1]);
  EXPECT_DOUBLE_EQ(rs->rows[1][1].NumericValue(), per_site[2]);
  EXPECT_DOUBLE_EQ(rs->rows[2][1].NumericValue(), per_site[0]);
}

TEST_F(SqlBridgeFixture, ErrorsSurface) {
  auto bad = bridge_.Execute("SELECT missing FROM readings");
  EXPECT_FALSE(bad.ok());
  auto ghost = bridge_.Execute("SELECT * FROM ghost");
  EXPECT_FALSE(ghost.ok());
}

}  // namespace
}  // namespace poly
