#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <set>
#include <thread>

#include "common/thread_pool.h"

#include "storage/database.h"
#include "txn/redo_log.h"
#include "txn/transaction_manager.h"

namespace poly {
namespace {

Schema OrderSchema() {
  return Schema({ColumnDef("id", DataType::kInt64), ColumnDef("amount", DataType::kDouble)});
}

TEST(TxnTest, CommitMakesRowsVisible) {
  Database db;
  TransactionManager tm;
  ColumnTable* t = *db.CreateTable("orders", OrderSchema());

  auto txn = tm.Begin();
  ASSERT_TRUE(tm.Insert(txn.get(), t, {Value::Int(1), Value::Dbl(9.5)}).ok());

  // Not visible to a concurrent reader before commit.
  EXPECT_EQ(t->CountVisible(tm.AutoCommitView()), 0u);
  // Visible to itself.
  EXPECT_EQ(t->CountVisible(txn->View()), 1u);

  ASSERT_TRUE(tm.Commit(txn.get()).ok());
  EXPECT_EQ(t->CountVisible(tm.AutoCommitView()), 1u);
}

TEST(TxnTest, AbortHidesRowsForever) {
  Database db;
  TransactionManager tm;
  ColumnTable* t = *db.CreateTable("orders", OrderSchema());

  auto txn = tm.Begin();
  ASSERT_TRUE(tm.Insert(txn.get(), t, {Value::Int(1), Value::Dbl(1.0)}).ok());
  ASSERT_TRUE(tm.Abort(txn.get()).ok());
  EXPECT_EQ(t->CountVisible(tm.AutoCommitView()), 0u);
  EXPECT_EQ(t->num_versions(), 1u);  // version slot exists but is dead
}

TEST(TxnTest, SnapshotIsolationReadersDontSeeLaterCommits) {
  Database db;
  TransactionManager tm;
  ColumnTable* t = *db.CreateTable("orders", OrderSchema());

  auto w0 = tm.Begin();
  ASSERT_TRUE(tm.Insert(w0.get(), t, {Value::Int(1), Value::Dbl(1.0)}).ok());
  ASSERT_TRUE(tm.Commit(w0.get()).ok());

  auto reader = tm.Begin();  // snapshot: sees row 1

  auto w1 = tm.Begin();
  ASSERT_TRUE(tm.Insert(w1.get(), t, {Value::Int(2), Value::Dbl(2.0)}).ok());
  ASSERT_TRUE(tm.Commit(w1.get()).ok());

  EXPECT_EQ(t->CountVisible(reader->View()), 1u);
  EXPECT_EQ(t->CountVisible(tm.AutoCommitView()), 2u);
}

TEST(TxnTest, DeleteVisibilityAndConflict) {
  Database db;
  TransactionManager tm;
  ColumnTable* t = *db.CreateTable("orders", OrderSchema());

  auto w0 = tm.Begin();
  ASSERT_TRUE(tm.Insert(w0.get(), t, {Value::Int(1), Value::Dbl(1.0)}).ok());
  ASSERT_TRUE(tm.Commit(w0.get()).ok());

  auto d1 = tm.Begin();
  auto d2 = tm.Begin();
  ASSERT_TRUE(tm.Delete(d1.get(), t, 0).ok());
  // Concurrent delete of the same row conflicts (first-writer-wins).
  EXPECT_TRUE(tm.Delete(d2.get(), t, 0).IsAborted());
  ASSERT_TRUE(tm.Commit(d1.get()).ok());
  ASSERT_TRUE(tm.Abort(d2.get()).ok());
  EXPECT_EQ(t->CountVisible(tm.AutoCommitView()), 0u);
}

TEST(TxnTest, AbortedDeleteRestoresRow) {
  Database db;
  TransactionManager tm;
  ColumnTable* t = *db.CreateTable("orders", OrderSchema());
  auto w = tm.Begin();
  ASSERT_TRUE(tm.Insert(w.get(), t, {Value::Int(1), Value::Dbl(1.0)}).ok());
  ASSERT_TRUE(tm.Commit(w.get()).ok());

  auto d = tm.Begin();
  ASSERT_TRUE(tm.Delete(d.get(), t, 0).ok());
  ASSERT_TRUE(tm.Abort(d.get()).ok());
  EXPECT_EQ(t->CountVisible(tm.AutoCommitView()), 1u);
  // Row is deletable again after the abort.
  auto d2 = tm.Begin();
  EXPECT_TRUE(tm.Delete(d2.get(), t, 0).ok());
  ASSERT_TRUE(tm.Commit(d2.get()).ok());
}

TEST(TxnTest, UpdateReplacesVersion) {
  Database db;
  TransactionManager tm;
  ColumnTable* t = *db.CreateTable("orders", OrderSchema());
  auto w = tm.Begin();
  ASSERT_TRUE(tm.Insert(w.get(), t, {Value::Int(1), Value::Dbl(1.0)}).ok());
  ASSERT_TRUE(tm.Commit(w.get()).ok());

  auto u = tm.Begin();
  ASSERT_TRUE(tm.Update(u.get(), t, 0, {Value::Int(1), Value::Dbl(99.0)}).ok());
  ASSERT_TRUE(tm.Commit(u.get()).ok());

  ReadView now = tm.AutoCommitView();
  double amount = -1;
  t->ScanVisible(now, [&](uint64_t r) { amount = t->GetValue(r, 1).AsDouble(); });
  EXPECT_EQ(t->CountVisible(now), 1u);
  EXPECT_EQ(amount, 99.0);
}

TEST(TxnTest, OldestActiveSnapshotTracksReaders) {
  TransactionManager tm;
  uint64_t base = tm.CurrentTimestamp();
  auto t1 = tm.Begin();
  EXPECT_EQ(tm.OldestActiveSnapshot(), base);
  ASSERT_TRUE(tm.Commit(t1.get()).ok());
  EXPECT_GT(tm.OldestActiveSnapshot(), base);
}

TEST(TxnTest, RowTableWritesWork) {
  Database db;
  TransactionManager tm;
  RowTable* t = *db.CreateRowTable("r", OrderSchema());
  auto w = tm.Begin();
  ASSERT_TRUE(tm.Insert(w.get(), t, {Value::Int(1), Value::Dbl(5.0)}).ok());
  ASSERT_TRUE(tm.Commit(w.get()).ok());
  EXPECT_EQ(t->CountVisible(tm.AutoCommitView()), 1u);
  auto d = tm.Begin();
  ASSERT_TRUE(tm.Delete(d.get(), t, 0).ok());
  ASSERT_TRUE(tm.Commit(d.get()).ok());
  EXPECT_EQ(t->CountVisible(tm.AutoCommitView()), 0u);
}

TEST(TxnTest, ConcurrentWritersAllCommit) {
  Database db;
  TransactionManager tm;
  ColumnTable* t = *db.CreateTable("t", OrderSchema());
  const int kThreads = 8, kPerThread = 200;
  {
    ThreadPool pool(kThreads);
    std::atomic<int> failures{0};
    pool.ParallelFor(kThreads, [&](size_t worker) {
      for (int i = 0; i < kPerThread; ++i) {
        auto txn = tm.Begin();
        Status s = tm.Insert(txn.get(), t,
                             {Value::Int(static_cast<int64_t>(worker * 1000 + i)),
                              Value::Dbl(1.0)});
        if (!s.ok() || !tm.Commit(txn.get()).ok()) failures.fetch_add(1);
      }
    });
    EXPECT_EQ(failures.load(), 0);
  }
  EXPECT_EQ(t->CountVisible(tm.AutoCommitView()),
            static_cast<uint64_t>(kThreads * kPerThread));
  // All ids distinct -> no lost or duplicated writes.
  std::set<int64_t> ids;
  t->ScanVisible(tm.AutoCommitView(), [&](uint64_t r) {
    ids.insert(t->GetValue(r, 0).AsInt());
  });
  EXPECT_EQ(ids.size(), static_cast<size_t>(kThreads * kPerThread));
}

// Gated TSan regression for the epoch/chunk version store (DESIGN.md §12):
// CountVisible here races AppendVersion's growth, which used to be a real
// data race (vector push_back under readers). It now runs TSan-clean as part
// of the full-suite gate (scripts/run_tsan.sh, ctest -L tsan-full); the
// deeper oracle lives in tests/mvcc_concurrency_test.cpp.
TEST(TxnTest, ConcurrentReadersDuringWrites) {
  Database db;
  TransactionManager tm;
  ColumnTable* t = *db.CreateTable("t", OrderSchema());
  std::atomic<bool> stop{false};
  std::atomic<int> monotonic_violations{0};
  std::thread reader([&]() {
    uint64_t last = 0;
    while (!stop.load()) {
      uint64_t count = t->CountVisible(tm.AutoCommitView());
      if (count < last) monotonic_violations.fetch_add(1);
      last = count;
    }
  });
  for (int i = 0; i < 500; ++i) {
    auto txn = tm.Begin();
    ASSERT_TRUE(tm.Insert(txn.get(), t, {Value::Int(i), Value::Dbl(1.0)}).ok());
    ASSERT_TRUE(tm.Commit(txn.get()).ok());
  }
  stop.store(true);
  reader.join();
  // Insert-only history: visible count must never decrease.
  EXPECT_EQ(monotonic_violations.load(), 0);
  EXPECT_EQ(t->CountVisible(tm.AutoCommitView()), 500u);
}

TEST(RecoveryTest, ReplayRebuildsCommittedState) {
  RedoLog log;
  Database db;
  TransactionManager tm(&log);
  ASSERT_TRUE(tm.LogCreateTable("orders", OrderSchema()).ok());
  ColumnTable* t = *db.CreateTable("orders", OrderSchema());

  auto t1 = tm.Begin();
  ASSERT_TRUE(tm.Insert(t1.get(), t, {Value::Int(1), Value::Dbl(1.0)}).ok());
  ASSERT_TRUE(tm.Insert(t1.get(), t, {Value::Int(2), Value::Dbl(2.0)}).ok());
  ASSERT_TRUE(tm.Commit(t1.get()).ok());

  auto t2 = tm.Begin();  // uncommitted: must not survive recovery
  ASSERT_TRUE(tm.Insert(t2.get(), t, {Value::Int(3), Value::Dbl(3.0)}).ok());

  auto t3 = tm.Begin();
  ASSERT_TRUE(tm.Delete(t3.get(), t, 0).ok());
  ASSERT_TRUE(tm.Commit(t3.get()).ok());

  std::vector<std::string> records;
  ASSERT_TRUE(log.ForEach([&](const std::string& r) {
    records.push_back(r);
    return Status::OK();
  }).ok());

  Database recovered;
  ASSERT_TRUE(TransactionManager::Recover(records, &recovered).ok());
  ColumnTable* rt = *recovered.GetTable("orders");
  ReadView latest = LatestCommittedView();
  EXPECT_EQ(rt->CountVisible(latest), 1u);
  int64_t id = -1;
  rt->ScanVisible(latest, [&](uint64_t r) { id = rt->GetValue(r, 0).AsInt(); });
  EXPECT_EQ(id, 2);
}

TEST(RecoveryTest, FileBackedLogSurvivesReopen) {
  std::string path = testing::TempDir() + "/poly_redo_test.log";
  std::remove(path.c_str());
  {
    auto log = RedoLog::OpenFile(path);
    ASSERT_TRUE(log.ok());
    Database db;
    TransactionManager tm(log->get());
    ASSERT_TRUE(tm.LogCreateTable("t", OrderSchema()).ok());
    ColumnTable* t = *db.CreateTable("t", OrderSchema());
    auto txn = tm.Begin();
    ASSERT_TRUE(tm.Insert(txn.get(), t, {Value::Int(7), Value::Dbl(7.0)}).ok());
    ASSERT_TRUE(tm.Commit(txn.get()).ok());
  }
  auto records = RedoLog::ReadFile(path);
  ASSERT_TRUE(records.ok());
  Database recovered;
  ASSERT_TRUE(TransactionManager::Recover(*records, &recovered).ok());
  ColumnTable* t = *recovered.GetTable("t");
  EXPECT_EQ(t->CountVisible(LatestCommittedView()), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace poly
