// Deterministic fault injection and chaos-recovery suite for the SOE
// cluster (§IV: "individual node failures must not affect overall
// availability"). Everything here is seeded: any failure is reproducible
// by re-running with the seed printed in the failure message, e.g.
//   POLY_CHAOS_SEED=17 ./tests/poly_tests --gtest_filter='ChaosOracle.*'
// scripts/chaos_sweep.sh sweeps many seeds and prints failing ones.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <thread>

#include "soe/rdd.h"
#include "txn/redo_log.h"

namespace poly {
namespace {

// ---------- Fault fabric (SimulatedNetwork) ----------

TEST(FaultFabric, LossFreeByDefault) {
  SimulatedNetwork net;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(net.Send(kCoordinatorEndpoint, i % 4, 128).ok());
  }
  EXPECT_EQ(net.messages(), 100u);
  EXPECT_EQ(net.dropped(), 0u);
  EXPECT_EQ(net.duplicated(), 0u);
  EXPECT_GT(net.virtual_nanos(), 0u);
}

TEST(FaultFabric, DropRateIsSeededAndReproducible) {
  SimulatedNetwork::Options opts;
  opts.drop_probability = 0.3;
  opts.fault_seed = 99;
  auto run = [&] {
    SimulatedNetwork net(opts);
    std::vector<bool> outcomes;
    for (int i = 0; i < 200; ++i) outcomes.push_back(net.Send(0, 1, 64).ok());
    return outcomes;
  };
  std::vector<bool> a = run();
  std::vector<bool> b = run();
  EXPECT_EQ(a, b);  // identical seed -> identical drop pattern
  size_t drops = std::count(a.begin(), a.end(), false);
  EXPECT_GT(drops, 20u);  // ~60 expected at p=0.3
  EXPECT_LT(drops, 120u);
  opts.fault_seed = 100;
  SimulatedNetwork other(opts);
  std::vector<bool> c;
  for (int i = 0; i < 200; ++i) c.push_back(other.Send(0, 1, 64).ok());
  EXPECT_NE(a, c);  // different seed -> different pattern
}

TEST(FaultFabric, SymmetricAndAsymmetricPartitions) {
  SimulatedNetwork net;
  net.Partition(0, 1);
  EXPECT_FALSE(net.Send(0, 1, 8).ok());
  EXPECT_FALSE(net.Send(1, 0, 8).ok());
  EXPECT_TRUE(net.Send(0, 2, 8).ok());
  net.Heal(0, 1);
  EXPECT_TRUE(net.Send(0, 1, 8).ok());

  net.PartitionOneWay(2, 3);
  EXPECT_FALSE(net.Send(2, 3, 8).ok());
  EXPECT_TRUE(net.Send(3, 2, 8).ok());  // reverse direction still works
  net.HealAll();
  EXPECT_TRUE(net.Send(2, 3, 8).ok());

  net.SetEndpointDown(1, true);
  EXPECT_FALSE(net.Send(0, 1, 8).ok());
  EXPECT_FALSE(net.Send(1, 2, 8).ok());
  net.SetEndpointDown(1, false);
  EXPECT_TRUE(net.Send(0, 1, 8).ok());
}

TEST(FaultFabric, OptionsMutableAtRuntime) {
  SimulatedNetwork net;
  EXPECT_TRUE(net.Send(0, 1, 8).ok());
  SimulatedNetwork::Options opts = net.options();
  opts.drop_probability = 1.0;
  net.set_options(opts);
  EXPECT_FALSE(net.Send(0, 1, 8).ok());
  EXPECT_EQ(net.dropped(), 1u);
  opts.drop_probability = 0.0;
  net.set_options(opts);
  EXPECT_TRUE(net.Send(0, 1, 8).ok());
  net.Reset();
  EXPECT_EQ(net.messages(), 0u);
  EXPECT_EQ(net.dropped(), 0u);
  EXPECT_EQ(net.virtual_nanos(), 0u);
}

TEST(FaultFabric, DelayAndDuplicateAccounting) {
  SimulatedNetwork::Options opts;
  opts.duplicate_probability = 1.0;
  opts.delay_probability = 1.0;
  opts.max_delay_nanos = 1e6;
  SimulatedNetwork net(opts);
  ASSERT_TRUE(net.Send(0, 1, 100).ok());
  EXPECT_EQ(net.messages(), 2u);  // the duplicate copy is charged too
  EXPECT_EQ(net.bytes(), 200u);
  EXPECT_EQ(net.duplicated(), 1u);
  EXPECT_EQ(net.delayed(), 1u);
}

// ---------- Fault schedule ----------

TEST(FaultScheduleTest, FiresInVirtualTimeOrder) {
  SoeCluster::Options opts;
  opts.num_nodes = 3;
  SoeCluster cluster(opts);
  std::vector<FaultEvent> events;
  events.push_back({0, FaultEvent::Kind::kSetDropRate, -1, -1, 1.0});
  events.push_back({10ull * 1000 * 1000 * 1000, FaultEvent::Kind::kSetDropRate, -1, -1, 0.0});
  cluster.InstallFaultSchedule(FaultSchedule(std::vector<FaultEvent>(events)));

  cluster.PumpFaults();  // virtual time 0: first event fires, far one doesn't
  EXPECT_EQ(cluster.fault_events_fired(), 1u);
  EXPECT_DOUBLE_EQ(cluster.network().options().drop_probability, 1.0);

  cluster.network().AdvanceVirtualTime(10ull * 1000 * 1000 * 1000);
  cluster.PumpFaults();
  EXPECT_EQ(cluster.fault_events_fired(), 2u);
  EXPECT_DOUBLE_EQ(cluster.network().options().drop_probability, 0.0);
}

TEST(FaultScheduleTest, RandomScheduleIsReproducibleAndTransient) {
  FaultSchedule a = FaultSchedule::RandomSchedule(7, 4, 3, 1e9, 8);
  FaultSchedule b = FaultSchedule::RandomSchedule(7, 4, 3, 1e9, 8);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.size(), 16u);  // every disruption comes with its own heal
  while (!a.done() && !b.done()) {
    const FaultEvent* ea = a.Peek();
    const FaultEvent* eb = b.Peek();
    EXPECT_EQ(ea->at_virtual_nanos, eb->at_virtual_nanos);
    EXPECT_EQ(static_cast<int>(ea->kind), static_cast<int>(eb->kind));
    EXPECT_EQ(ea->a, eb->a);
    EXPECT_EQ(ea->b, eb->b);
    a.Pop();
    b.Pop();
  }
}

// ---------- Retry layer ----------

TEST(ChaosRetry, LossyNetworkQueriesStillExact) {
  SoeCluster::Options opts;
  opts.num_nodes = 4;
  opts.net.drop_probability = 0.25;
  opts.net.fault_seed = 5;
  opts.retry.max_attempts = 10;
  SoeCluster cluster(opts);
  Schema s({ColumnDef("k", DataType::kInt64), ColumnDef("v", DataType::kDouble)});
  ASSERT_TRUE(cluster.CreateTable("t", s, PartitionSpec::Hash("k", 8), 2).ok());
  std::vector<Row> rows;
  for (int i = 0; i < 200; ++i) rows.push_back({Value::Int(i), Value::Dbl(i)});
  ASSERT_TRUE(cluster.CommitInserts("t", rows).ok());

  AggSpec cnt{AggFunc::kCount, nullptr, "cnt"};
  for (int q = 0; q < 5; ++q) {
    auto rs = cluster.DistributedAggregate("t", nullptr, "", {cnt});
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
    EXPECT_EQ(rs->rows[0][0], Value::Int(200));  // exact despite 25% loss
  }
  EXPECT_GT(cluster.network().dropped(), 0u);
  EXPECT_GT(cluster.total_retries(), 0u);
}

TEST(ChaosRetry, TotalPartitionTimesOutWithBoundedAttempts) {
  SoeCluster::Options opts;
  opts.num_nodes = 2;
  opts.retry.max_attempts = 3;
  SoeCluster cluster(opts);
  Schema s({ColumnDef("k", DataType::kInt64)});
  ASSERT_TRUE(cluster.CreateTable("t", s, PartitionSpec::Hash("k", 2), 2).ok());
  ASSERT_TRUE(cluster.Insert("t", {Value::Int(1)}).ok());
  // Cut the coordinator off from every node: dispatch can never arrive.
  cluster.network().Partition(kCoordinatorEndpoint, 0);
  cluster.network().Partition(kCoordinatorEndpoint, 1);
  uint64_t retries_before = cluster.total_retries();
  auto rs = cluster.DistributedScan("t", nullptr);
  EXPECT_TRUE(rs.status().IsUnavailable());
  uint64_t attempts = cluster.total_retries() - retries_before;
  EXPECT_GT(attempts, 0u);
  EXPECT_LE(attempts, 3u);  // bounded, not infinite
  cluster.network().HealAll();
  EXPECT_TRUE(cluster.DistributedScan("t", nullptr).ok());
}

TEST(ChaosRetry, QueryFailsOverWhenPrimaryIsPartitioned) {
  SoeCluster::Options opts;
  opts.num_nodes = 2;
  SoeCluster cluster(opts);
  Schema s({ColumnDef("k", DataType::kInt64)});
  ASSERT_TRUE(cluster.CreateTable("t", s, PartitionSpec::Hash("k", 1), 2).ok());
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(cluster.Insert("t", {Value::Int(i)}).ok());
  auto info = cluster.catalog().Lookup("t");
  ASSERT_TRUE(info.ok());
  int primary = (*info)->placement[0][0];
  cluster.network().Partition(kCoordinatorEndpoint, primary);
  auto rs = cluster.DistributedScan("t", nullptr);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->num_rows(), 10u);
  EXPECT_EQ(cluster.last_query_stats().failovers, 1u);
}

// ---------- Targeted regressions ----------

// Crash during append: a fully unreachable replica set must not burn an
// offset — the log stays dense and replay can never stall on a hole.
TEST(ChaosRegression, CrashDuringAppendLeavesNoHole) {
  SimulatedNetwork::Options nopts;
  SimulatedNetwork net(nopts);
  SharedLog log(SharedLog::Options{3, 2}, &net);
  ASSERT_TRUE(log.Append("a").ok());

  SimulatedNetwork::Options lossy = net.options();
  lossy.drop_probability = 1.0;
  net.set_options(lossy);
  auto failed = log.Append("b");
  EXPECT_TRUE(failed.status().IsUnavailable());
  EXPECT_EQ(log.Tail(), 1u);  // no offset consumed

  lossy.drop_probability = 0.0;
  net.set_options(lossy);
  auto retried = log.Append("b");
  ASSERT_TRUE(retried.ok());
  EXPECT_EQ(*retried, 1u);  // dense: the retried record takes the next slot
  auto range = log.ReadRange(0, log.Tail());
  ASSERT_TRUE(range.ok());
  EXPECT_EQ((*range)[0], "a");
  EXPECT_EQ((*range)[1], "b");
}

// A log-unit crash between appends: surviving replicas keep every offset
// readable and ReReplicate restores the copy count.
TEST(ChaosRegression, LogUnitCrashMidStreamKeepsReplayIntact) {
  SimulatedNetwork net;
  SharedLog log(SharedLog::Options{3, 2}, &net);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(log.Append("r" + std::to_string(i)).ok());
  ASSERT_TRUE(log.KillUnit(0).ok());
  for (int i = 10; i < 20; ++i) ASSERT_TRUE(log.Append("r" + std::to_string(i)).ok());
  for (uint64_t off = 0; off < 20; ++off) {
    auto rec = log.Read(off);
    ASSERT_TRUE(rec.ok()) << "offset " << off << ": " << rec.status().ToString();
    EXPECT_EQ(*rec, "r" + std::to_string(off));
  }
  ASSERT_TRUE(log.ReviveUnit(0).ok());
  ASSERT_TRUE(log.ReReplicate().ok());
  ASSERT_TRUE(log.KillUnit(1).ok());  // survives a second, different failure
  for (uint64_t off = 0; off < 20; ++off) EXPECT_TRUE(log.Read(off).ok());
}

// Duplicate delivery is idempotent end-to-end: every message delivered
// twice must not double-store log records or double-apply rows.
TEST(ChaosRegression, DuplicateDeliveryIsIdempotent) {
  SoeCluster::Options opts;
  opts.num_nodes = 3;
  opts.net.duplicate_probability = 1.0;
  SoeCluster cluster(opts);
  Schema s({ColumnDef("k", DataType::kInt64), ColumnDef("v", DataType::kDouble)});
  ASSERT_TRUE(cluster.CreateTable("t", s, PartitionSpec::Hash("k", 4), 2).ok());
  std::vector<Row> rows;
  for (int i = 0; i < 100; ++i) rows.push_back({Value::Int(i), Value::Dbl(i)});
  ASSERT_TRUE(cluster.CommitInserts("t", rows).ok());
  EXPECT_GT(cluster.network().duplicated(), 0u);

  AggSpec cnt{AggFunc::kCount, nullptr, "cnt"};
  AggSpec sum{AggFunc::kSum, Expr::Column(1), "sum"};
  auto rs = cluster.DistributedAggregate("t", nullptr, "", {cnt, sum});
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->rows[0][0], Value::Int(100));  // not inflated
  EXPECT_DOUBLE_EQ(rs->rows[0][1].NumericValue(), 99.0 * 100 / 2);
}

// Partition during rebalance: a rebuild cut off from the log must fail
// cleanly, and the retried rebuild must resume from its watermark instead
// of double-applying replayed rows.
TEST(ChaosRegression, PartitionDuringRebalanceResumesWithoutDuplicates) {
  SoeCluster::Options opts;
  opts.num_nodes = 4;
  opts.retry.max_attempts = 2;  // fail fast while the cut is in place
  SoeCluster cluster(opts);
  Schema s({ColumnDef("k", DataType::kInt64), ColumnDef("v", DataType::kDouble)});
  ASSERT_TRUE(cluster.CreateTable("t", s, PartitionSpec::Hash("k", 8), 2).ok());
  std::vector<Row> rows;
  for (int i = 0; i < 300; ++i) rows.push_back({Value::Int(i), Value::Dbl(i)});
  ASSERT_TRUE(cluster.CommitInserts("t", rows).ok());

  ASSERT_TRUE(cluster.KillNode(0).ok());
  // Every live node loses its route to every log unit: backfills must fail.
  for (int n = 1; n < 4; ++n) {
    for (int u = 0; u < 3; ++u) cluster.network().Partition(n, LogUnitEndpoint(u));
  }
  EXPECT_TRUE(cluster.Rebalance().IsUnavailable());

  cluster.network().HealAll();
  ASSERT_TRUE(cluster.Rebalance().ok());
  ASSERT_TRUE(cluster.KillNode(1).ok());  // prove the rebuilt replicas serve
  AggSpec cnt{AggFunc::kCount, nullptr, "cnt"};
  AggSpec sum{AggFunc::kSum, Expr::Column(1), "sum"};
  auto rs = cluster.DistributedAggregate("t", nullptr, "", {cnt, sum});
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->rows[0][0], Value::Int(300));  // exact: no lost or doubled rows
  EXPECT_DOUBLE_EQ(rs->rows[0][1].NumericValue(), 299.0 * 300 / 2);
}

// RDD actions recompute lost partitions from the shared log (lineage),
// where the plain cluster API surfaces Unavailable.
TEST(ChaosRegression, RddRecomputesLostPartitionFromLineage) {
  SoeCluster::Options opts;
  opts.num_nodes = 2;
  SoeCluster cluster(opts);
  Schema s({ColumnDef("k", DataType::kInt64), ColumnDef("v", DataType::kDouble)});
  ASSERT_TRUE(cluster.CreateTable("t", s, PartitionSpec::Hash("k", 4), 1).ok());
  std::vector<Row> rows;
  for (int i = 0; i < 100; ++i) rows.push_back({Value::Int(i), Value::Dbl(i)});
  ASSERT_TRUE(cluster.CommitInserts("t", rows).ok());

  ASSERT_TRUE(cluster.KillNode(0).ok());
  AggSpec cnt{AggFunc::kCount, nullptr, "cnt"};
  EXPECT_TRUE(cluster.DistributedAggregate("t", nullptr, "", {cnt})
                  .status()
                  .IsUnavailable());  // unreplicated: cluster API fails

  auto count = SoeRdd::FromTable(&cluster, "t").Count();
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(*count, 100u);  // recomputed from the log onto the live node
}

// Single-node sibling: the redo log's IO-fault hook fails an append before
// any mutation, so a crashed append is invisible after recovery.
TEST(ChaosRegression, RedoLogFaultInjectorFailsCleanly) {
  RedoLog log;
  ASSERT_TRUE(log.Append("first").ok());
  int failures_left = 1;
  log.SetFaultInjector([&](const char* op) -> Status {
    if (std::string(op) == "append" && failures_left > 0) {
      --failures_left;
      return Status::IOError("injected disk failure");
    }
    return Status::OK();
  });
  EXPECT_EQ(log.Append("crashed").code(), StatusCode::kIOError);
  EXPECT_EQ(log.num_records(), 1u);  // nothing half-written
  EXPECT_TRUE(log.Append("second").ok());
  log.SetFaultInjector(nullptr);
  std::vector<std::string> replayed;
  ASSERT_TRUE(log.ForEach([&](const std::string& r) {
                   replayed.push_back(r);
                   return Status::OK();
                 })
                  .ok());
  EXPECT_EQ(replayed, (std::vector<std::string>{"first", "second"}));
}

// ---------- TSan target: the fabric + log under real concurrency ----------

TEST(ChaosConcurrency, FabricAndLogSurviveConcurrentChaos) {
  SimulatedNetwork::Options nopts;
  nopts.drop_probability = 0.1;
  SimulatedNetwork net(nopts);
  SharedLog log(SharedLog::Options{4, 2}, &net);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> appended{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 300; ++i) {
        if (log.Append("w" + std::to_string(t) + "-" + std::to_string(i)).ok()) {
          appended.fetch_add(1);
        }
      }
    });
  }
  threads.emplace_back([&] {  // reader tailing the log
    while (!stop.load()) {
      uint64_t tail = log.Tail();
      for (uint64_t off = 0; off < tail; ++off) (void)log.Read(off);
      std::this_thread::yield();
    }
  });
  threads.emplace_back([&] {  // chaos monkey: partitions + option flips
    for (int i = 0; i < 50; ++i) {
      net.Partition(i % 3, LogUnitEndpoint(i % 4));
      SimulatedNetwork::Options opts = net.options();
      opts.drop_probability = (i % 2) ? 0.3 : 0.05;
      net.set_options(opts);
      (void)net.CanReach(0, 1);
      net.Heal(i % 3, LogUnitEndpoint(i % 4));
      (void)log.records_stored(i % 4);
      std::this_thread::yield();
    }
    (void)log.ReReplicate();
  });
  for (int t = 0; t < 3; ++t) threads[t].join();
  stop.store(true);
  for (size_t t = 3; t < threads.size(); ++t) threads[t].join();

  net.HealAll();
  SimulatedNetwork::Options clean = net.options();
  clean.drop_probability = 0;
  net.set_options(clean);
  ASSERT_TRUE(log.ReReplicate().ok());
  EXPECT_EQ(log.Tail(), appended.load());  // dense: one offset per success
  for (uint64_t off = 0; off < log.Tail(); ++off) EXPECT_TRUE(log.Read(off).ok());
}

// ---------- The chaos oracle ----------

/// Sorts rows lexicographically so replica placement cannot affect the
/// comparison.
void SortRows(std::vector<Row>* rows) {
  std::sort(rows->begin(), rows->end(), [](const Row& a, const Row& b) {
    return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
  });
}

/// One seeded chaos run: the same workload drives a faulty cluster and a
/// fault-free reference cluster; after heal + replay, committed state must
/// be identical. Values are integral doubles so sums are exact in any
/// accumulation order.
void RunChaosOracle(uint64_t seed) {
  SCOPED_TRACE("chaos seed " + std::to_string(seed) +
               " (replay: POLY_CHAOS_SEED=" + std::to_string(seed) +
               " poly_tests --gtest_filter='ChaosOracle.*')");
  Random rng(Random::Mix(seed, 0xc0ffee));
  constexpr int kNodes = 5;
  constexpr size_t kPartitions = 8;

  SoeCluster::Options faulty_opts;
  faulty_opts.num_nodes = kNodes;
  faulty_opts.log_units = 3;
  faulty_opts.log_replication = 2;
  faulty_opts.net.drop_probability = 0.02 + 0.18 * rng.NextDouble();
  faulty_opts.net.duplicate_probability = 0.10 * rng.NextDouble();
  faulty_opts.net.delay_probability = 0.2;
  faulty_opts.net.max_delay_nanos = 200 * 1000;
  faulty_opts.net.fault_seed = Random::Mix(seed, 1);
  faulty_opts.fault_seed = Random::Mix(seed, 2);
  faulty_opts.retry.max_attempts = 8;
  SoeCluster faulty(faulty_opts);

  SoeCluster::Options ref_opts;  // identical topology, zero faults
  ref_opts.num_nodes = kNodes;
  ref_opts.log_units = 3;
  ref_opts.log_replication = 2;
  SoeCluster reference(ref_opts);

  Schema schema({ColumnDef("k", DataType::kInt64), ColumnDef("v", DataType::kDouble)});
  PartitionSpec spec = PartitionSpec::Hash("k", kPartitions);
  ASSERT_TRUE(faulty.CreateTable("t", schema, spec, 2).ok());
  ASSERT_TRUE(reference.CreateTable("t", schema, spec, 2).ok());

  // Scripted network chaos on top of the probabilistic faults: transient
  // partitions and lossy phases fired by virtual time.
  faulty.InstallFaultSchedule(FaultSchedule::RandomSchedule(
      Random::Mix(seed, 3), kNodes, 3, /*horizon_nanos=*/200ull * 1000 * 1000,
      /*num_disruptions=*/5));

  uint64_t commits_ok = 0, commits_failed = 0, queries_ok = 0, queries_failed = 0;
  int64_t next_key = 0;
  for (int step = 0; step < 40; ++step) {
    uint64_t dice = rng.Uniform(100);
    if (dice < 50) {  // batch insert
      std::vector<Row> rows;
      size_t n = 1 + rng.Uniform(16);
      for (size_t i = 0; i < n; ++i) {
        rows.push_back({Value::Int(next_key++),
                        Value::Dbl(static_cast<double>(rng.Uniform(1000)))});
      }
      auto committed = faulty.CommitInserts("t", rows);
      if (committed.ok()) {
        ++commits_ok;
        // Mirror exactly what the faulty cluster durably committed.
        ASSERT_TRUE(reference.CommitInserts("t", rows).ok());
      } else {
        ++commits_failed;  // record reached no log replica: not committed
      }
    } else if (dice < 70) {  // distributed aggregate, compared when served
      AggSpec cnt{AggFunc::kCount, nullptr, "cnt"};
      AggSpec sum{AggFunc::kSum, Expr::Column(1), "sum"};
      auto got = faulty.DistributedAggregate("t", nullptr, "", {cnt, sum});
      if (got.ok()) {
        ++queries_ok;
        auto want = reference.DistributedAggregate("t", nullptr, "", {cnt, sum});
        ASSERT_TRUE(want.ok());
        EXPECT_EQ(got->rows[0][0], want->rows[0][0]) << "mid-run count diverged";
        EXPECT_DOUBLE_EQ(got->rows[0][1].NumericValue(), want->rows[0][1].NumericValue())
            << "mid-run sum diverged";
      } else {
        ++queries_failed;  // availability may dip; consistency may not
      }
    } else if (dice < 80) {  // crash a node (faulty side only; data is in the log)
      if (faulty.discovery().LiveNodes().size() > 3) {
        std::vector<int> live = faulty.discovery().LiveNodes();
        ASSERT_TRUE(faulty.KillNode(live[rng.Uniform(live.size())]).ok());
      }
    } else if (dice < 90) {  // restart a crashed node
      for (int n : faulty.discovery().AllNodes()) {
        if (!faulty.discovery().IsAlive(n)) {
          ASSERT_TRUE(faulty.RestartNode(n).ok());
          break;
        }
      }
    } else if (dice < 95) {  // opportunistic re-replication
      (void)faulty.Rebalance();
    } else {  // poll a random node
      (void)faulty.PollNode(static_cast<int>(rng.Uniform(kNodes)));
    }
  }

  // ---- heal: stop the chaos, restart everything, repair, catch up ----
  SimulatedNetwork::Options clean = faulty.network().options();
  clean.drop_probability = 0;
  clean.duplicate_probability = 0;
  clean.delay_probability = 0;
  faulty.network().set_options(clean);  // runtime-mutable options end the storm
  faulty.network().HealAll();
  for (int n : faulty.discovery().AllNodes()) {
    if (!faulty.discovery().IsAlive(n)) {
      ASSERT_TRUE(faulty.RestartNode(n).ok());
    }
  }
  ASSERT_TRUE(faulty.log().ReReplicate().ok());
  ASSERT_TRUE(faulty.Rebalance().ok());
  for (int n = 0; n < kNodes; ++n) {
    ASSERT_TRUE(faulty.PollNode(n).ok());
    EXPECT_EQ(faulty.Staleness(n), 0u);
  }

  // ---- converge check: identical committed state ----
  ASSERT_EQ(faulty.log().Tail(), reference.log().Tail())
      << "faulty committed " << faulty.log().Tail() << " records, reference "
      << reference.log().Tail();

  auto got_rows = faulty.DistributedScan("t", nullptr);
  ASSERT_TRUE(got_rows.ok()) << got_rows.status().ToString();
  auto want_rows = reference.DistributedScan("t", nullptr);
  ASSERT_TRUE(want_rows.ok());
  SortRows(&got_rows->rows);
  SortRows(&want_rows->rows);
  ASSERT_EQ(got_rows->num_rows(), want_rows->num_rows());
  for (size_t i = 0; i < got_rows->num_rows(); ++i) {
    ASSERT_EQ(got_rows->rows[i], want_rows->rows[i]) << "row " << i << " diverged";
  }

  // Per-partition row counts agree on every replica of the faulty cluster.
  auto info = faulty.catalog().Lookup("t");
  ASSERT_TRUE(info.ok());
  auto ref_info = reference.catalog().Lookup("t");
  ASSERT_TRUE(ref_info.ok());
  for (size_t p = 0; p < kPartitions; ++p) {
    uint64_t want = *reference.node((*ref_info)->placement[p][0])
                         ->PartitionRowCount("t", p);
    for (int n : (*info)->placement[p]) {
      auto have = faulty.node(n)->PartitionRowCount("t", p);
      ASSERT_TRUE(have.ok());
      EXPECT_EQ(*have, want) << "partition " << p << " replica on node " << n;
    }
  }

  // The run must have actually exercised the machinery.
  EXPECT_GT(commits_ok, 0u);
  if (faulty_opts.net.drop_probability > 0.05) {
    EXPECT_GT(faulty.network().dropped(), 0u);
  }
  (void)queries_ok;
  (void)queries_failed;
  (void)commits_failed;
}

// ---------- Metrics under chaos (DESIGN.md §10) ----------

// The registry is instrumented inside the same code paths the legacy
// counters live in, so the two can never drift: retries observed by the
// cluster == retries counted in the registry, and the fabric's own fault
// counters == their soe.net.* mirrors.
TEST(ChaosMetrics, RegistryAgreesWithLegacyCounters) {
  SoeCluster::Options opts;
  opts.num_nodes = 4;
  opts.net.drop_probability = 0.25;
  opts.net.duplicate_probability = 0.1;
  opts.net.delay_probability = 0.1;
  opts.net.fault_seed = 5;
  opts.retry.max_attempts = 10;
  SoeCluster cluster(opts);
  Schema s({ColumnDef("k", DataType::kInt64), ColumnDef("v", DataType::kDouble)});
  ASSERT_TRUE(cluster.CreateTable("t", s, PartitionSpec::Hash("k", 8), 2).ok());
  std::vector<Row> rows;
  for (int i = 0; i < 200; ++i) rows.push_back({Value::Int(i), Value::Dbl(i)});
  ASSERT_TRUE(cluster.CommitInserts("t", rows).ok());
  AggSpec cnt{AggFunc::kCount, nullptr, "cnt"};
  for (int q = 0; q < 5; ++q) {
    ASSERT_TRUE(cluster.DistributedAggregate("t", nullptr, "", {cnt}).ok());
  }

  metrics::RegistrySnapshot snap = cluster.metrics().TakeSnapshot();
  EXPECT_GT(cluster.total_retries(), 0u);
  EXPECT_EQ(snap.counter("soe.retry.count"), cluster.total_retries());
  EXPECT_EQ(snap.counter("soe.net.messages"), cluster.network().messages());
  EXPECT_EQ(snap.counter("soe.net.bytes"), cluster.network().bytes());
  EXPECT_GT(cluster.network().dropped(), 0u);
  EXPECT_EQ(snap.counter("soe.net.dropped"), cluster.network().dropped());
  EXPECT_EQ(snap.counter("soe.net.duplicated"), cluster.network().duplicated());
  EXPECT_EQ(snap.counter("soe.net.delayed"), cluster.network().delayed());
  EXPECT_EQ(snap.counter("soe.dqp.queries"), 5u);
  EXPECT_EQ(snap.counter("soe.txn.commits"), 1u);
  EXPECT_EQ(snap.counter("soe.txn.rows_committed"), 200u);
  // Every commit durably appended exactly one log record.
  EXPECT_EQ(snap.counter("soe.log.appends"), cluster.log().Tail());
  // Backoff waits advanced the virtual clock; the histogram saw each wait.
  EXPECT_EQ(snap.histograms.at("soe.retry.backoff_wait_nanos").count,
            cluster.total_retries());
  EXPECT_GT(snap.counter("soe.retry.backoff_nanos"), 0u);
  // v2stats derives from the same registry: per-node RPC counters sum to
  // the tasks the statistics service recorded.
  uint64_t rpc_total = 0;
  uint64_t stats_queries = 0;
  for (int n = 0; n < cluster.num_nodes(); ++n) {
    rpc_total += snap.counter("soe.rpc.node." + std::to_string(n) + ".tasks");
    stats_queries += cluster.statistics().Stats(n).queries;
  }
  EXPECT_GT(rpc_total, 0u);
  EXPECT_EQ(rpc_total, stats_queries);
}

TEST(ChaosMetrics, FaultScheduleEventsAreCounted) {
  SoeCluster::Options opts;
  opts.num_nodes = 3;
  SoeCluster cluster(opts);
  Schema s({ColumnDef("k", DataType::kInt64)});
  ASSERT_TRUE(cluster.CreateTable("t", s, PartitionSpec::Hash("k", 3), 2).ok());
  for (int i = 0; i < 30; ++i) ASSERT_TRUE(cluster.Insert("t", {Value::Int(i)}).ok());

  cluster.InstallFaultSchedule(FaultSchedule(
      {FaultEvent{0, FaultEvent::Kind::kCrashNode, 0},
       FaultEvent{0, FaultEvent::Kind::kPartition, kCoordinatorEndpoint, 1},
       FaultEvent{1, FaultEvent::Kind::kHealAll}}));
  ASSERT_TRUE(cluster.DistributedScan("t", nullptr).ok());
  ASSERT_TRUE(cluster.Rebalance().ok());
  ASSERT_TRUE(cluster.RestartNode(0).ok());

  metrics::RegistrySnapshot snap = cluster.metrics().TakeSnapshot();
  EXPECT_EQ(snap.counter("soe.clustermgr.node_kills"), 1u);
  EXPECT_EQ(snap.counter("soe.clustermgr.node_restarts"), 1u);
  EXPECT_EQ(snap.counter("soe.net.partitions_installed"), 1u);
  EXPECT_GT(snap.counter("soe.clustermgr.partition_rebuilds"), 0u);
  // The cluster page renders every one of these without touching any
  // subsystem-private state.
  std::string page = cluster.metrics().TextPage();
  EXPECT_NE(page.find("soe_clustermgr_node_kills 1"), std::string::npos);
  EXPECT_NE(page.find("soe_net_messages"), std::string::npos);
}

TEST(ChaosOracle, FaultyAndReferenceClustersConverge) {
  if (const char* env = std::getenv("POLY_CHAOS_SEED")) {
    RunChaosOracle(static_cast<uint64_t>(std::strtoull(env, nullptr, 10)));
    return;
  }
  int seeds = 50;
  if (const char* env = std::getenv("POLY_CHAOS_SEEDS")) {
    seeds = std::max(1, std::atoi(env));
  }
  for (int seed = 1; seed <= seeds; ++seed) {
    RunChaosOracle(static_cast<uint64_t>(seed));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace poly
