// Concurrency-correctness harness for the morsel-driven executor: for every
// plan shape, parallel execution must be identical to serial — same rows,
// same order, same ExecStats totals — across thread counts and adversarial
// morsel sizes (1 row, partition-boundary-straddling, larger than the
// table). Runs under -fsanitize=thread via `ctest -L concurrency`.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "query/executor.h"
#include "txn/transaction_manager.h"

namespace poly {
namespace {

Schema OrdersSchema() {
  return Schema({ColumnDef("id", DataType::kInt64),
                 ColumnDef("region", DataType::kString),
                 ColumnDef("amount", DataType::kDouble),
                 ColumnDef("qty", DataType::kInt64)});
}

void ExpectSameResult(const ResultSet& serial, const ResultSet& parallel,
                      const std::string& ctx) {
  ASSERT_EQ(serial.column_names, parallel.column_names) << ctx;
  ASSERT_EQ(serial.num_rows(), parallel.num_rows()) << ctx;
  for (size_t r = 0; r < serial.num_rows(); ++r) {
    ASSERT_EQ(serial.rows[r], parallel.rows[r]) << ctx << " row " << r;
  }
}

void ExpectSameStats(const ExecStats& a, const ExecStats& b, const std::string& ctx) {
  EXPECT_EQ(a.rows_scanned, b.rows_scanned) << ctx;
  EXPECT_EQ(a.rows_materialized, b.rows_materialized) << ctx;
  EXPECT_EQ(a.id_range_scans, b.id_range_scans) << ctx;
  EXPECT_EQ(a.partitions_scanned, b.partitions_scanned) << ctx;
}

class ParallelExecutorTest : public ::testing::Test {
 protected:
  static constexpr int kRows = 1200;

  void SetUp() override {
    ColumnTable* orders = *db_.CreateTable("orders", OrdersSchema());
    // First half, then merge, then second half: scans straddle the
    // main/delta boundary (and the dictionary ID-range fast path only
    // covers the merged main part).
    InsertOrders(orders, 0, kRows / 2);
    orders->Merge();
    InsertOrders(orders, kRows / 2, kRows);
    // Committed deletes, plus an aborted delete and an aborted insert, so
    // visibility checks do real work in every morsel.
    auto del = tm_.Begin();
    for (uint64_t r = 0; r < orders->num_versions(); r += 13) {
      ASSERT_TRUE(tm_.Delete(del.get(), orders, r).ok());
    }
    ASSERT_TRUE(tm_.Commit(del.get()).ok());
    auto aborted = tm_.Begin();
    ASSERT_TRUE(tm_.Delete(aborted.get(), orders, 1).ok());
    ASSERT_TRUE(
        tm_.Insert(aborted.get(), orders,
                   {Value::Int(-1), Value::Str("ghost"), Value::Dbl(0), Value::Int(0)})
            .ok());
    ASSERT_TRUE(tm_.Abort(aborted.get()).ok());

    // Uneven partitions for multi-partition scans: morsel boundaries and
    // partition boundaries interleave adversarially.
    int sizes[] = {17, 100, 3};
    int next_id = 0;
    for (int p = 0; p < 3; ++p) {
      ColumnTable* part = *db_.CreateTable("p" + std::to_string(p), OrdersSchema());
      InsertOrders(part, next_id, next_id + sizes[p]);
      next_id += sizes[p];
      if (p % 2 == 0) part->Merge();
    }

    // Join dimension with a duplicated key so probes emit multiple matches.
    ColumnTable* regions = *db_.CreateTable(
        "regions", Schema({ColumnDef("region", DataType::kString),
                           ColumnDef("bonus", DataType::kInt64)}));
    auto txn = tm_.Begin();
    const char* names[] = {"east", "north", "south", "west", "east"};
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(
          tm_.Insert(txn.get(), regions, {Value::Str(names[i]), Value::Int(i * 10)})
              .ok());
    }
    ASSERT_TRUE(tm_.Commit(txn.get()).ok());
  }

  void InsertOrders(ColumnTable* t, int begin, int end) {
    static const char* kRegions[] = {"east", "north", "south", "west"};
    auto txn = tm_.Begin();
    for (int i = begin; i < end; ++i) {
      // amount is an exact multiple of 0.25 so floating-point sums are
      // exact and therefore order-independent (see DESIGN.md §5).
      ASSERT_TRUE(tm_.Insert(txn.get(), t,
                             {Value::Int(i), Value::Str(kRegions[i % 4]),
                              Value::Dbl((i % 97) * 0.25), Value::Int(i % 10)})
                      .ok());
    }
    ASSERT_TRUE(tm_.Commit(txn.get()).ok());
  }

  /// Runs `plan` serially and under every (threads, morsel_rows) combination,
  /// asserting identical results and stats everywhere.
  void CheckAllConfigurations(const PlanPtr& plan) {
    Executor serial(&db_, tm_.AutoCommitView());
    auto serial_rs = serial.Execute(plan);
    ASSERT_TRUE(serial_rs.ok()) << serial_rs.status().ToString();

    for (size_t threads : {1u, 2u, 4u, 8u}) {
      for (size_t morsel : {1u, 7u, 256u, 100000u}) {
        ExecOptions opts;
        opts.num_threads = threads;
        opts.morsel_rows = morsel;
        Executor parallel(&db_, tm_.AutoCommitView(), opts);
        auto rs = parallel.Execute(plan);
        std::string ctx =
            "threads=" + std::to_string(threads) + " morsel=" + std::to_string(morsel);
        ASSERT_TRUE(rs.ok()) << ctx << ": " << rs.status().ToString();
        ExpectSameResult(*serial_rs, *rs, ctx);
        ExpectSameStats(serial.stats(), parallel.stats(), ctx);
      }
    }
  }

  Database db_;
  TransactionManager tm_;
};

TEST_F(ParallelExecutorTest, FullScan) {
  CheckAllConfigurations(PlanBuilder::Scan("orders").Build());
}

TEST_F(ParallelExecutorTest, ScanWithPushedDownPredicate) {
  auto plan = PlanBuilder::Scan("orders").Build();
  plan->scan_predicate = Expr::Compare(CmpOp::kGt, Expr::Column(3),
                                       Expr::Literal(Value::Int(6)));
  CheckAllConfigurations(plan);
}

TEST_F(ParallelExecutorTest, ScanWithDictionaryIdRangePredicate) {
  // `id <= 400` over the merged main part takes the ID-range fast path for
  // main rows and evaluates the predicate for delta rows; the id_range_scans
  // counter must agree between serial and parallel.
  auto plan = PlanBuilder::Scan("orders").Build();
  plan->scan_predicate = Expr::Compare(CmpOp::kLe, Expr::Column(0),
                                       Expr::Literal(Value::Int(400)));
  CheckAllConfigurations(plan);
}

TEST_F(ParallelExecutorTest, MultiPartitionScan) {
  auto plan = PlanBuilder::Scan("p0").Build();
  plan->scan_partitions = {"p0", "p1", "p2"};
  plan->scan_predicate =
      Expr::Compare(CmpOp::kLt, Expr::Column(0), Expr::Literal(Value::Int(110)));
  CheckAllConfigurations(plan);
}

TEST_F(ParallelExecutorTest, FilterOperator) {
  CheckAllConfigurations(
      PlanBuilder::Scan("orders")
          .Filter(Expr::Compare(CmpOp::kLt, Expr::Column(2),
                                Expr::Literal(Value::Dbl(10.0))))
          .Build());
}

TEST_F(ParallelExecutorTest, ProjectOperator) {
  CheckAllConfigurations(
      PlanBuilder::Scan("orders")
          .Project({Expr::Arith(ArithOp::kMul, Expr::Column(2),
                                Expr::Literal(Value::Int(4))),
                    Expr::Column(1)},
                   {"amount4", "region"})
          .Build());
}

TEST_F(ParallelExecutorTest, GroupByAggregate) {
  AggSpec cnt{AggFunc::kCount, nullptr, "cnt"};
  AggSpec total{AggFunc::kSum, Expr::Column(2), "total"};
  AggSpec qty_sum{AggFunc::kSum, Expr::Column(3), "qty_sum"};
  AggSpec avg{AggFunc::kAvg, Expr::Column(2), "avg_amount"};
  AggSpec mn{AggFunc::kMin, Expr::Column(0), "min_id"};
  AggSpec mx{AggFunc::kMax, Expr::Column(0), "max_id"};
  CheckAllConfigurations(PlanBuilder::Scan("orders")
                             .Aggregate({1}, {cnt, total, qty_sum, avg, mn, mx})
                             .Build());
}

TEST_F(ParallelExecutorTest, GlobalAggregate) {
  AggSpec cnt{AggFunc::kCount, nullptr, "cnt"};
  AggSpec total{AggFunc::kSum, Expr::Column(2), "total"};
  CheckAllConfigurations(
      PlanBuilder::Scan("orders").Aggregate({}, {cnt, total}).Build());
}

TEST_F(ParallelExecutorTest, GlobalAggregateOverEmptyInput) {
  AggSpec cnt{AggFunc::kCount, nullptr, "cnt"};
  auto plan = PlanBuilder::Scan("orders")
                  .Filter(Expr::Compare(CmpOp::kGt, Expr::Column(0),
                                        Expr::Literal(Value::Int(1 << 20))))
                  .Aggregate({}, {cnt})
                  .Build();
  CheckAllConfigurations(plan);
}

TEST_F(ParallelExecutorTest, HashJoin) {
  CheckAllConfigurations(
      PlanBuilder::Scan("orders")
          .HashJoin(PlanBuilder::Scan("regions").Build(), /*left_key=*/1,
                    /*right_key=*/0)
          .Build());
}

TEST_F(ParallelExecutorTest, SortAndLimit) {
  CheckAllConfigurations(PlanBuilder::Scan("orders")
                             .Sort({{1, true}, {0, false}})
                             .Limit(57)
                             .Build());
}

TEST_F(ParallelExecutorTest, DatabaseDefaultOptionsUseSharedPool) {
  ExecOptions parallel_default;
  parallel_default.num_threads = 4;
  parallel_default.morsel_rows = 128;
  db_.set_exec_options(parallel_default);
  ASSERT_NE(db_.exec_pool(), nullptr);
  EXPECT_EQ(db_.exec_pool()->num_threads(), 3u);

  AggSpec total{AggFunc::kSum, Expr::Column(2), "total"};
  auto plan = PlanBuilder::Scan("orders").Aggregate({1}, {total}).Build();
  // Default-constructed executor picks up the database options + pool.
  Executor with_default(&db_, tm_.AutoCommitView());
  EXPECT_EQ(with_default.options().num_threads, 4u);
  auto rs_parallel = with_default.Execute(plan);
  ASSERT_TRUE(rs_parallel.ok());

  db_.set_exec_options(ExecOptions{});  // back to serial
  EXPECT_EQ(db_.exec_pool(), nullptr);
  Executor serial(&db_, tm_.AutoCommitView());
  auto rs_serial = serial.Execute(plan);
  ASSERT_TRUE(rs_serial.ok());
  ExpectSameResult(*rs_serial, *rs_parallel, "database-default options");
}

TEST_F(ParallelExecutorTest, ExternalPoolIsUsedAndNotOwned) {
  ThreadPool pool(3);
  ExecOptions opts;
  opts.num_threads = 4;
  opts.morsel_rows = 64;
  opts.pool = &pool;
  auto plan = PlanBuilder::Scan("orders").Build();
  Executor serial(&db_, tm_.AutoCommitView());
  auto rs_serial = serial.Execute(plan);
  ASSERT_TRUE(rs_serial.ok());
  for (int run = 0; run < 3; ++run) {
    Executor parallel(&db_, tm_.AutoCommitView(), opts);
    auto rs = parallel.Execute(plan);
    ASSERT_TRUE(rs.ok());
    ExpectSameResult(*rs_serial, *rs, "external pool run " + std::to_string(run));
  }
  // The external pool survives all executors and stays usable.
  std::atomic<int> probe{0};
  pool.ParallelFor(10, [&](size_t) { ++probe; });
  EXPECT_EQ(probe.load(), 10);
}

}  // namespace
}  // namespace poly
