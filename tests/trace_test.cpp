// Per-operator query tracing (EXPLAIN ANALYZE, DESIGN.md §10): span trees
// attached to results by both the interpreted executor and the compiled
// path. The load-bearing invariants: the root span's rows_out equals the
// query's row count, every inner span's rows_in equals the sum of its
// children's rows_out, and scan spans' rows_in equals the executor's
// rows_scanned — so the annotated plan always adds up to the result it
// annotates. ParallelExecutorTrace* runs under `ctest -L concurrency`.

#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "query/compiled.h"
#include "query/executor.h"
#include "query/optimizer.h"
#include "soe/sql_bridge.h"
#include "txn/transaction_manager.h"

namespace poly {
namespace {

Schema OrdersSchema() {
  return Schema({ColumnDef("o_id", DataType::kInt64),
                 ColumnDef("customer", DataType::kInt64),
                 ColumnDef("region", DataType::kString),
                 ColumnDef("amount", DataType::kDouble),
                 ColumnDef("qty", DataType::kInt64),
                 ColumnDef("year", DataType::kInt64)});
}

/// rows_in of every inner span must equal the sum of its children's
/// rows_out (leaves are checked by the caller against scan stats).
void CheckRowFlow(const OperatorSpan& span) {
  if (span.children.empty()) return;
  uint64_t from_children = 0;
  for (const OperatorSpan& child : span.children) {
    from_children += child.rows_out;
    CheckRowFlow(child);
  }
  EXPECT_EQ(span.rows_in, from_children) << "at span " << span.label;
}

class TraceTest : public ::testing::Test {
 protected:
  static constexpr int kRows = 500;

  void SetUp() override {
    ColumnTable* orders = *db_.CreateTable("orders", OrdersSchema());
    auto txn = tm_.Begin();
    static const char* kRegions[] = {"east", "north", "south", "west"};
    for (int i = 0; i < kRows; ++i) {
      ASSERT_TRUE(tm_.Insert(txn.get(), orders,
                             {Value::Int(i), Value::Int(i % 37),
                              Value::Str(kRegions[i % 4]),
                              Value::Dbl((i % 97) * 0.25), Value::Int(i % 50),
                              Value::Int(2020 + i % 7)})
                      .ok());
    }
    ASSERT_TRUE(tm_.Commit(txn.get()).ok());
    orders->Merge();
  }

  /// SELECT SUM(amount*qty) WHERE qty < 25 AND year >= 2023 (the E13
  /// Q6-shape query), optimized so it is also compilable.
  PlanPtr Q6Plan() {
    AggSpec revenue{AggFunc::kSum,
                    Expr::Arith(ArithOp::kMul, Expr::Column(3), Expr::Column(4)),
                    "revenue"};
    auto plan = PlanBuilder::Scan("orders")
                    .Filter(Expr::And(
                        Expr::Compare(CmpOp::kLt, Expr::Column(4),
                                      Expr::Literal(Value::Int(25))),
                        Expr::Compare(CmpOp::kGe, Expr::Column(5),
                                      Expr::Literal(Value::Int(2023)))))
                    .Aggregate({}, {revenue})
                    .Build();
    Optimizer opt;
    return opt.Optimize(plan);
  }

  Database db_;
  TransactionManager tm_;
};

TEST_F(TraceTest, OffByDefault) {
  Executor exec(&db_, tm_.AutoCommitView());
  auto rs = exec.Execute(PlanBuilder::Scan("orders").Build());
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->trace, nullptr);
  EXPECT_EQ(exec.trace(), nullptr);
  EXPECT_EQ(rs->AnnotatedPlan(), "");
}

TEST_F(TraceTest, InterpretedSpanTreeAddsUp) {
  ExecOptions opts;
  opts.trace = true;
  Executor exec(&db_, tm_.AutoCommitView(), opts);

  AggSpec cnt{AggFunc::kCount, nullptr, "cnt"};
  AggSpec sum{AggFunc::kSum, Expr::Column(3), "sum_amount"};
  auto plan = PlanBuilder::Scan("orders")
                  .Filter(Expr::Compare(CmpOp::kLt, Expr::Column(4),
                                        Expr::Literal(Value::Int(25))))
                  .Aggregate({2}, {cnt, sum})
                  .Build();
  auto rs = exec.Execute(plan);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_NE(rs->trace, nullptr);
  EXPECT_EQ(rs->trace.get(), exec.trace());

  const OperatorSpan& root = *rs->trace;
  EXPECT_EQ(root.rows_out, rs->num_rows());
  CheckRowFlow(root);

  // Walk to the scan leaf: its input is exactly what the executor scanned.
  const OperatorSpan* leaf = &root;
  while (!leaf->children.empty()) {
    ASSERT_EQ(leaf->children.size(), 1u);
    leaf = &leaf->children[0];
  }
  EXPECT_EQ(leaf->label.rfind("Scan(", 0), 0u) << leaf->label;
  EXPECT_EQ(leaf->rows_in, exec.stats().rows_scanned);
  EXPECT_GT(leaf->bytes_out, 0u);

  std::string annotated = rs->AnnotatedPlan();
  EXPECT_NE(annotated.find("Scan("), std::string::npos) << annotated;
  EXPECT_NE(annotated.find("rows="), std::string::npos) << annotated;
  EXPECT_NE(annotated.find("wall="), std::string::npos) << annotated;
}

TEST_F(TraceTest, CompiledSpanTreeAddsUp) {
  PlanPtr plan = Q6Plan();
  QueryCompiler qc(&db_, tm_.AutoCommitView());
  ASSERT_TRUE(qc.CanCompile(plan));
  qc.set_trace(true);
  auto rs = qc.Execute(plan);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_NE(rs->trace, nullptr);

  const OperatorSpan& root = *rs->trace;
  EXPECT_EQ(root.label.rfind("Compiled", 0), 0u) << root.label;
  EXPECT_EQ(root.rows_out, rs->num_rows());
  CheckRowFlow(root);
  ASSERT_EQ(root.children.size(), 1u);
  const OperatorSpan& fused = root.children[0];
  EXPECT_EQ(fused.label.rfind("FusedScan(", 0), 0u) << fused.label;
  // The fused kernel visits every row version; a selective predicate keeps
  // strictly fewer rows than it visits.
  EXPECT_EQ(fused.rows_in, static_cast<uint64_t>(kRows));
  EXPECT_LT(fused.rows_out, fused.rows_in);
  EXPECT_NE(rs->AnnotatedPlan().find("FusedScan("), std::string::npos);
}

TEST_F(TraceTest, CompiledMatchesInterpretedRowCounts) {
  PlanPtr plan = Q6Plan();

  ExecOptions opts;
  opts.trace = true;
  Executor exec(&db_, tm_.AutoCommitView(), opts);
  auto interpreted = exec.Execute(plan);
  ASSERT_TRUE(interpreted.ok());

  QueryCompiler qc(&db_, tm_.AutoCommitView());
  qc.set_trace(true);
  ASSERT_TRUE(qc.CanCompile(plan));
  auto compiled = qc.Execute(plan);
  ASSERT_TRUE(compiled.ok());

  ASSERT_NE(interpreted->trace, nullptr);
  ASSERT_NE(compiled->trace, nullptr);
  EXPECT_EQ(interpreted->trace->rows_out, compiled->trace->rows_out);
  EXPECT_DOUBLE_EQ(interpreted->rows[0][0].NumericValue(),
                   compiled->rows[0][0].NumericValue());
}

// Tracing must not perturb parallel execution: same rows, same span totals
// as the serial trace (runs under TSan via the concurrency label).
TEST(ParallelExecutorTrace, SerialAndParallelSpansAgree) {
  Database db;
  TransactionManager tm;
  ColumnTable* t = *db.CreateTable("orders", OrdersSchema());
  auto txn = tm.Begin();
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(tm.Insert(txn.get(), t,
                          {Value::Int(i), Value::Int(i % 11), Value::Str("r"),
                           Value::Dbl(i * 0.25), Value::Int(i % 50),
                           Value::Int(2020 + i % 7)})
                    .ok());
  }
  ASSERT_TRUE(tm.Commit(txn.get()).ok());

  auto plan = PlanBuilder::Scan("orders")
                  .Filter(Expr::Compare(CmpOp::kLt, Expr::Column(4),
                                        Expr::Literal(Value::Int(10))))
                  .Build();

  ExecOptions serial_opts;
  serial_opts.trace = true;
  Executor serial(&db, tm.AutoCommitView(), serial_opts);
  auto serial_rs = serial.Execute(plan);
  ASSERT_TRUE(serial_rs.ok());

  ExecOptions par_opts;
  par_opts.trace = true;
  par_opts.num_threads = 4;
  par_opts.morsel_rows = 7;
  Executor parallel(&db, tm.AutoCommitView(), par_opts);
  auto par_rs = parallel.Execute(plan);
  ASSERT_TRUE(par_rs.ok());

  ASSERT_NE(serial_rs->trace, nullptr);
  ASSERT_NE(par_rs->trace, nullptr);
  EXPECT_EQ(par_rs->trace->rows_out, par_rs->num_rows());
  EXPECT_EQ(serial_rs->trace->rows_out, par_rs->trace->rows_out);
  CheckRowFlow(*par_rs->trace);
  // The scan leaf saw every version in both modes (morsel merge keeps
  // stats identical to serial).
  const OperatorSpan* leaf = par_rs->trace.get();
  while (!leaf->children.empty()) leaf = &leaf->children[0];
  EXPECT_EQ(leaf->rows_in, parallel.stats().rows_scanned);
  EXPECT_EQ(parallel.stats().rows_scanned, serial.stats().rows_scanned);
}

// ------------------------------------------------ distributed (SOE) spans --

class SoeTraceTest : public ::testing::Test {
 protected:
  static constexpr int kRows = 240;
  static constexpr size_t kPartitions = 4;

  SoeTraceTest() : cluster_(MakeOptions()), bridge_(&cluster_) {
    Schema s({ColumnDef("sensor", DataType::kInt64),
              ColumnDef("site", DataType::kInt64),
              ColumnDef("value", DataType::kDouble)});
    (void)cluster_.CreateTable("readings", s,
                               PartitionSpec::Hash("sensor", kPartitions), 2);
    std::vector<Row> rows;
    for (int i = 0; i < kRows; ++i) {
      rows.push_back({Value::Int(i % 24), Value::Int(i % 3), Value::Dbl(1.0 * i)});
    }
    (void)cluster_.CommitInserts("readings", rows);
  }

  static SoeCluster::Options MakeOptions() {
    SoeCluster::Options opts;
    opts.num_nodes = 3;
    return opts;
  }

  SoeCluster cluster_;
  SoeSqlBridge bridge_;
};

TEST_F(SoeTraceTest, DistributedScanSpansOnePerPartitionTask) {
  cluster_.set_trace(true);
  auto rs = cluster_.DistributedScan("readings", nullptr);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_NE(rs->trace, nullptr);
  EXPECT_EQ(rs->trace, cluster_.last_trace());

  const OperatorSpan& root = *rs->trace;
  EXPECT_EQ(root.label, "DistributedScan(readings)");
  // One child task span per partition, nested under the coordinator span.
  ASSERT_EQ(root.children.size(), kPartitions);
  CheckRowFlow(root);  // root.rows_in == sum of task rows_out
  EXPECT_EQ(root.rows_in, static_cast<uint64_t>(kRows));
  EXPECT_EQ(root.rows_out, rs->num_rows());
  EXPECT_EQ(root.bytes_out, cluster_.last_query_stats().result_bytes_gathered);
  EXPECT_GT(root.wall_nanos, 0u);  // virtual network time, deterministic

  for (const OperatorSpan& task : root.children) {
    EXPECT_EQ(task.label.rfind("PartitionTask(readings#p", 0), 0u) << task.label;
    EXPECT_NE(task.label.find("@node"), std::string::npos) << task.label;
    EXPECT_GT(task.bytes_out, 0u);
    EXPECT_GT(task.wall_nanos, 0u);
  }
}

TEST_F(SoeTraceTest, DistributedAggregateSpansAndOffByDefault) {
  // Off by default: no span tree is built or attached.
  auto untraced = cluster_.DistributedAggregate(
      "readings", nullptr, "", {{AggFunc::kCount, nullptr, "n"}});
  ASSERT_TRUE(untraced.ok());
  EXPECT_EQ(untraced->trace, nullptr);
  EXPECT_EQ(cluster_.last_trace(), nullptr);

  cluster_.set_trace(true);
  auto rs = cluster_.DistributedAggregate(
      "readings", nullptr, "site",
      {{AggFunc::kSum, Expr::Column(2), "total"}});
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_NE(rs->trace, nullptr);

  const OperatorSpan& root = *rs->trace;
  EXPECT_EQ(root.label, "DistributedAggregate(readings)");
  ASSERT_EQ(root.children.size(), kPartitions);
  CheckRowFlow(root);
  // Partial aggregation: each task returns at most 3 site groups; the merged
  // result has exactly 3.
  EXPECT_LE(root.rows_in, kPartitions * 3);
  EXPECT_EQ(root.rows_out, 3u);
}

TEST_F(SoeTraceTest, BridgeCarriesTraceThroughResidualOperators) {
  bridge_.set_trace(true);
  // Residual projection + sort + limit run at the coordinator, on top of a
  // distributed scan; the span tree must survive them.
  auto rs = bridge_.Execute(
      "SELECT value * 2 AS doubled FROM readings WHERE sensor = 3 "
      "ORDER BY doubled DESC LIMIT 5");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_NE(rs->trace, nullptr);
  // SQL scans are lowered by the distributed planner into partition-sited
  // fragments; the coordinator span carries one child per fragment task.
  EXPECT_EQ(rs->trace->label, "DistributedQuery(scan)");
  EXPECT_FALSE(rs->trace->children.empty());
  // The trace describes the distributed stage: rows_out is the gathered
  // count, before the residual limit shrank the result.
  EXPECT_GE(rs->trace->rows_out, rs->num_rows());
  EXPECT_NE(rs->AnnotatedPlan().find("Fragment("), std::string::npos);
}

}  // namespace
}  // namespace poly
