#include <gtest/gtest.h>

#include "common/random.h"
#include "query/compiled.h"
#include "query/executor.h"
#include "query/optimizer.h"
#include "txn/transaction_manager.h"

namespace poly {
namespace {

// ---------- Expression tests ----------

TEST(ExprTest, LiteralAndColumn) {
  Row row = {Value::Int(5), Value::Str("x")};
  EXPECT_EQ(Expr::Literal(Value::Int(3))->Eval(row), Value::Int(3));
  EXPECT_EQ(Expr::Column(0)->Eval(row), Value::Int(5));
  EXPECT_EQ(Expr::Column(1)->Eval(row), Value::Str("x"));
  EXPECT_TRUE(Expr::Column(9)->Eval(row).is_null());
}

TEST(ExprTest, Comparisons) {
  Row row = {Value::Int(5)};
  auto cmp = [&](CmpOp op, int64_t rhs) {
    return Expr::Compare(op, Expr::Column(0), Expr::Literal(Value::Int(rhs)))
        ->EvalBool(row);
  };
  EXPECT_TRUE(cmp(CmpOp::kEq, 5));
  EXPECT_FALSE(cmp(CmpOp::kEq, 4));
  EXPECT_TRUE(cmp(CmpOp::kNe, 4));
  EXPECT_TRUE(cmp(CmpOp::kLt, 6));
  EXPECT_TRUE(cmp(CmpOp::kLe, 5));
  EXPECT_FALSE(cmp(CmpOp::kLt, 5));
  EXPECT_TRUE(cmp(CmpOp::kGt, 4));
  EXPECT_TRUE(cmp(CmpOp::kGe, 5));
}

TEST(ExprTest, CrossTypeNumericCompare) {
  Row row = {Value::Int(5), Value::Dbl(5.5)};
  EXPECT_TRUE(Expr::Compare(CmpOp::kLt, Expr::Column(0), Expr::Column(1))->EvalBool(row));
}

TEST(ExprTest, LogicalOps) {
  Row row;
  auto t = Expr::Literal(Value::Boolean(true));
  auto f = Expr::Literal(Value::Boolean(false));
  EXPECT_TRUE(Expr::And(t, t)->EvalBool(row));
  EXPECT_FALSE(Expr::And(t, f)->EvalBool(row));
  EXPECT_TRUE(Expr::Or(f, t)->EvalBool(row));
  EXPECT_FALSE(Expr::Or(f, f)->EvalBool(row));
  EXPECT_TRUE(Expr::Not(f)->EvalBool(row));
}

TEST(ExprTest, NullPropagation) {
  Row row = {Value::Null()};
  auto cmp = Expr::Compare(CmpOp::kEq, Expr::Column(0), Expr::Literal(Value::Int(1)));
  EXPECT_TRUE(cmp->Eval(row).is_null());
  EXPECT_FALSE(cmp->EvalBool(row));  // null collapses to false in predicates
  EXPECT_TRUE(Expr::IsNull(Expr::Column(0))->EvalBool(row));
}

TEST(ExprTest, Arithmetic) {
  Row row = {Value::Int(6), Value::Int(4), Value::Dbl(0.5)};
  EXPECT_EQ(Expr::Arith(ArithOp::kAdd, Expr::Column(0), Expr::Column(1))->Eval(row),
            Value::Int(10));
  EXPECT_EQ(Expr::Arith(ArithOp::kMul, Expr::Column(0), Expr::Column(2))->Eval(row),
            Value::Dbl(3.0));
  // Division always yields double; division by zero yields null.
  EXPECT_EQ(Expr::Arith(ArithOp::kDiv, Expr::Column(0), Expr::Column(1))->Eval(row),
            Value::Dbl(1.5));
  Row zero = {Value::Int(1), Value::Int(0)};
  EXPECT_TRUE(
      Expr::Arith(ArithOp::kDiv, Expr::Column(0), Expr::Column(1))->Eval(zero).is_null());
}

TEST(ExprTest, LikeAndIn) {
  Row row = {Value::Str("hello world")};
  EXPECT_TRUE(Expr::Like(Expr::Column(0), "hello%")->EvalBool(row));
  EXPECT_FALSE(Expr::Like(Expr::Column(0), "%mars")->EvalBool(row));
  EXPECT_TRUE(Expr::In(Expr::Column(0),
                       {Value::Str("a"), Value::Str("hello world")})->EvalBool(row));
  EXPECT_FALSE(Expr::In(Expr::Column(0), {Value::Str("a")})->EvalBool(row));
}

TEST(ExprTest, MaxColumnIndexAndToString) {
  auto e = Expr::And(
      Expr::Compare(CmpOp::kGt, Expr::Column(3), Expr::Literal(Value::Int(1))),
      Expr::Compare(CmpOp::kLt, Expr::Column(7), Expr::Literal(Value::Int(9))));
  EXPECT_EQ(e->MaxColumnIndex(), 7);
  EXPECT_NE(e->ToString().find("$7"), std::string::npos);
}

// ---------- Executor tests ----------

class QueryFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema orders({ColumnDef("o_id", DataType::kInt64),
                   ColumnDef("region", DataType::kString),
                   ColumnDef("amount", DataType::kDouble),
                   ColumnDef("qty", DataType::kInt64)});
    orders_ = *db_.CreateTable("orders", orders);
    Schema regions({ColumnDef("name", DataType::kString),
                    ColumnDef("manager", DataType::kString)});
    regions_ = *db_.CreateTable("regions", regions);

    const char* region_names[] = {"north", "south", "east", "west"};
    auto txn = tm_.Begin();
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(tm_.Insert(txn.get(), orders_,
                             {Value::Int(i), Value::Str(region_names[i % 4]),
                              Value::Dbl(i * 1.5), Value::Int(i % 10)})
                      .ok());
    }
    for (const char* r : region_names) {
      ASSERT_TRUE(
          tm_.Insert(txn.get(), regions_, {Value::Str(r), Value::Str(std::string("mgr_") + r)})
              .ok());
    }
    ASSERT_TRUE(tm_.Commit(txn.get()).ok());
  }

  ResultSet Run(const PlanPtr& plan) {
    Executor exec(&db_, tm_.AutoCommitView());
    auto result = exec.Execute(plan);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    last_stats_ = exec.stats();
    return result.ok() ? *std::move(result) : ResultSet{};
  }

  Database db_;
  TransactionManager tm_;
  ColumnTable* orders_ = nullptr;
  ColumnTable* regions_ = nullptr;
  ExecStats last_stats_;
};

TEST_F(QueryFixture, FullScan) {
  ResultSet rs = Run(PlanBuilder::Scan("orders").Build());
  EXPECT_EQ(rs.num_rows(), 100u);
  EXPECT_EQ(rs.num_columns(), 4u);
  EXPECT_EQ(rs.column_names[1], "region");
}

TEST_F(QueryFixture, ScanMissingTableFails) {
  Executor exec(&db_, tm_.AutoCommitView());
  EXPECT_FALSE(exec.Execute(PlanBuilder::Scan("nope").Build()).ok());
}

TEST_F(QueryFixture, FilterPredicate) {
  auto plan = PlanBuilder::Scan("orders")
                  .Filter(Expr::Compare(CmpOp::kEq, Expr::Column(1),
                                        Expr::Literal(Value::Str("north"))))
                  .Build();
  ResultSet rs = Run(plan);
  EXPECT_EQ(rs.num_rows(), 25u);
}

TEST_F(QueryFixture, ProjectComputesExpressions) {
  auto plan = PlanBuilder::Scan("orders")
                  .Project({Expr::Column(0),
                            Expr::Arith(ArithOp::kMul, Expr::Column(2),
                                        Expr::Literal(Value::Dbl(2.0)))},
                           {"id", "double_amount"})
                  .Build();
  ResultSet rs = Run(plan);
  EXPECT_EQ(rs.num_columns(), 2u);
  EXPECT_EQ(rs.rows[10][1], Value::Dbl(30.0));
}

TEST_F(QueryFixture, HashJoinMatchesRegions) {
  auto plan = PlanBuilder::Scan("orders")
                  .HashJoin(PlanBuilder::Scan("regions").Build(), 1, 0)
                  .Build();
  ResultSet rs = Run(plan);
  EXPECT_EQ(rs.num_rows(), 100u);   // every order joins exactly one region
  EXPECT_EQ(rs.num_columns(), 6u);  // 4 + 2
  int mgr_col = rs.ColumnIndex("manager");
  ASSERT_GE(mgr_col, 0);
  for (const auto& row : rs.rows) {
    EXPECT_EQ(row[static_cast<size_t>(mgr_col)].AsString(),
              "mgr_" + row[1].AsString());
  }
}

TEST_F(QueryFixture, GroupByAggregates) {
  AggSpec count{AggFunc::kCount, nullptr, "cnt"};
  AggSpec total{AggFunc::kSum, Expr::Column(2), "total"};
  AggSpec avg{AggFunc::kAvg, Expr::Column(3), "avg_qty"};
  auto plan = PlanBuilder::Scan("orders")
                  .Aggregate({1}, {count, total, avg})
                  .Sort({{0, true}})
                  .Build();
  ResultSet rs = Run(plan);
  ASSERT_EQ(rs.num_rows(), 4u);
  // Sorted by region name: east, north, south, west.
  EXPECT_EQ(rs.rows[0][0], Value::Str("east"));
  EXPECT_EQ(rs.rows[1][0], Value::Str("north"));
  // Each region has 25 orders.
  for (const auto& row : rs.rows) EXPECT_EQ(row[1], Value::Int(25));
  // north = ids 0,4,8,...,96 -> amounts 0,6,12,... = 1.5 * 4 * (0+1+..+24)
  EXPECT_EQ(rs.rows[1][2], Value::Dbl(1.5 * 4 * 300));
}

TEST_F(QueryFixture, GlobalAggregateOnEmptyInput) {
  AggSpec count{AggFunc::kCount, nullptr, "cnt"};
  auto plan = PlanBuilder::Scan("orders")
                  .Filter(Expr::Compare(CmpOp::kGt, Expr::Column(0),
                                        Expr::Literal(Value::Int(100000))))
                  .Aggregate({}, {count})
                  .Build();
  ResultSet rs = Run(plan);
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::Int(0));
}

TEST_F(QueryFixture, AggregateWithoutFunctionsDedupsRows) {
  // The DISTINCT lowering shape: group-by columns, no aggregate functions.
  // Output keeps the input column names and first-occurrence order.
  ResultSet rs = Run(PlanBuilder::Scan("orders").Aggregate({1, 3}, {}).Build());
  EXPECT_EQ(rs.num_rows(), 20u);  // (i%4, i%10) repeats with period lcm = 20
  ASSERT_EQ(rs.num_columns(), 2u);
  EXPECT_EQ(rs.column_names[0], "region");
  EXPECT_EQ(rs.column_names[1], "qty");
  EXPECT_EQ(rs.rows[0][0], Value::Str("north"));
  EXPECT_EQ(rs.rows[0][1], Value::Int(0));
  EXPECT_EQ(rs.rows[1][0], Value::Str("south"));  // row 1 seen before repeats
}

TEST_F(QueryFixture, DistinctSqlRoundTripThroughDatabaseExecute) {
  // Full-stack round trip: the parser lowers DISTINCT, the compiled path
  // declines the aggregate-free shape, the interpreted executor dedups.
  auto rs = db_.Execute("SELECT DISTINCT region FROM orders ORDER BY region");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->num_rows(), 4u);
  EXPECT_EQ(rs->rows[0][0], Value::Str("east"));
  EXPECT_EQ(rs->rows[3][0], Value::Str("west"));

  // Sanity: the same statement without DISTINCT returns every row.
  auto all = db_.Execute("SELECT region FROM orders");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->num_rows(), 100u);
}

TEST_F(QueryFixture, MinMax) {
  AggSpec mn{AggFunc::kMin, Expr::Column(2), "mn"};
  AggSpec mx{AggFunc::kMax, Expr::Column(2), "mx"};
  ResultSet rs = Run(PlanBuilder::Scan("orders").Aggregate({}, {mn, mx}).Build());
  EXPECT_EQ(rs.rows[0][0], Value::Dbl(0.0));
  EXPECT_EQ(rs.rows[0][1], Value::Dbl(99 * 1.5));
}

TEST_F(QueryFixture, SortAndLimit) {
  auto plan = PlanBuilder::Scan("orders")
                  .Sort({{2, false}})  // amount desc
                  .Limit(3)
                  .Build();
  ResultSet rs = Run(plan);
  ASSERT_EQ(rs.num_rows(), 3u);
  EXPECT_EQ(rs.rows[0][0], Value::Int(99));
  EXPECT_EQ(rs.rows[2][0], Value::Int(97));
}

TEST_F(QueryFixture, MultiKeySort) {
  auto plan = PlanBuilder::Scan("orders").Sort({{3, true}, {0, false}}).Build();
  ResultSet rs = Run(plan);
  // First block: qty=0, ids descending (90, 80, ...).
  EXPECT_EQ(rs.rows[0][3], Value::Int(0));
  EXPECT_EQ(rs.rows[0][0], Value::Int(90));
  EXPECT_EQ(rs.rows[1][0], Value::Int(80));
}

TEST_F(QueryFixture, ScanSeesOnlySnapshot) {
  auto txn = tm_.Begin();
  ASSERT_TRUE(tm_.Insert(txn.get(), orders_,
                         {Value::Int(1000), Value::Str("north"), Value::Dbl(1.0),
                          Value::Int(1)})
                  .ok());
  // Uncommitted row invisible to a fresh auto-commit view...
  ResultSet rs = Run(PlanBuilder::Scan("orders").Build());
  EXPECT_EQ(rs.num_rows(), 100u);
  // ...but visible inside the transaction.
  Executor exec(&db_, txn->View());
  auto inside = exec.Execute(PlanBuilder::Scan("orders").Build());
  ASSERT_TRUE(inside.ok());
  EXPECT_EQ(inside->num_rows(), 101u);
  ASSERT_TRUE(tm_.Abort(txn.get()).ok());
}

TEST_F(QueryFixture, IdRangeScanUsedAfterMerge) {
  orders_->Merge();
  auto plan = PlanBuilder::Scan("orders")
                  .Filter(Expr::Compare(CmpOp::kLt, Expr::Column(0),
                                        Expr::Literal(Value::Int(10))))
                  .Build();
  Optimizer opt;
  PlanPtr optimized = opt.Optimize(plan);
  ResultSet rs = Run(optimized);
  EXPECT_EQ(rs.num_rows(), 10u);
  EXPECT_EQ(last_stats_.id_range_scans, 1u);
}

// ---------- Optimizer tests ----------

TEST(OptimizerTest, PushesFilterIntoScan) {
  auto plan = PlanBuilder::Scan("t")
                  .Filter(Expr::Compare(CmpOp::kEq, Expr::Column(0),
                                        Expr::Literal(Value::Int(1))))
                  .Build();
  Optimizer opt;
  PlanPtr optimized = opt.Optimize(plan);
  EXPECT_EQ(optimized->kind, PlanKind::kScan);
  ASSERT_TRUE(optimized->scan_predicate != nullptr);
  EXPECT_EQ(opt.stats().filters_pushed, 1);
}

TEST(OptimizerTest, FoldsConstants) {
  Optimizer opt;
  auto e = Expr::Compare(CmpOp::kLt, Expr::Literal(Value::Int(1)),
                         Expr::Literal(Value::Int(2)));
  ExprPtr folded = opt.FoldConstants(e);
  EXPECT_EQ(folded->kind(), ExprKind::kLiteral);
  EXPECT_EQ(folded->literal(), Value::Boolean(true));
}

TEST(OptimizerTest, AndWithTrueSimplifies) {
  Optimizer opt;
  auto col_pred =
      Expr::Compare(CmpOp::kEq, Expr::Column(0), Expr::Literal(Value::Int(1)));
  auto e = Expr::And(Expr::Literal(Value::Boolean(true)), col_pred);
  ExprPtr folded = opt.FoldConstants(e);
  EXPECT_EQ(folded->kind(), ExprKind::kCompare);
}

TEST(OptimizerTest, TrueFilterEliminated) {
  auto plan =
      PlanBuilder::Scan("t").Filter(Expr::Literal(Value::Boolean(true))).Build();
  Optimizer opt;
  PlanPtr optimized = opt.Optimize(plan);
  EXPECT_EQ(optimized->kind, PlanKind::kScan);
  EXPECT_EQ(optimized->scan_predicate, nullptr);
}

TEST_F(QueryFixture, JoinConjunctPushdownPreservesResults) {
  // Mixed predicate: one left-only conjunct, one right-only, one spanning.
  auto predicate = Expr::And(
      Expr::And(
          Expr::Compare(CmpOp::kLt, Expr::Column(0), Expr::Literal(Value::Int(50))),
          Expr::Compare(CmpOp::kEq, Expr::Column(5),
                        Expr::Literal(Value::Str("mgr_north")))),
      Expr::Compare(CmpOp::kEq, Expr::Column(1), Expr::Column(4)));
  auto plan = PlanBuilder::Scan("orders")
                  .HashJoin(PlanBuilder::Scan("regions").Build(), 1, 0)
                  .Filter(predicate)
                  .Build();
  // Unoptimized reference.
  Executor ref_exec(&db_, tm_.AutoCommitView());
  auto ref = ref_exec.Execute(plan);
  ASSERT_TRUE(ref.ok());

  Optimizer opt(nullptr, &db_);
  PlanPtr optimized = opt.Optimize(plan);
  EXPECT_EQ(opt.stats().join_conjuncts_pushed, 2);
  Executor exec(&db_, tm_.AutoCommitView());
  auto rs = exec.Execute(optimized);
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->num_rows(), ref->num_rows());
  EXPECT_EQ(rs->num_rows(), 13u);  // ids 0,4,...,48 in north
  // Pushed conjuncts became scan predicates: the scans materialize less.
  EXPECT_LT(exec.stats().rows_materialized, ref_exec.stats().rows_materialized);
}

TEST_F(QueryFixture, JoinPushdownSkippedWithoutSchemaAccess) {
  auto plan = PlanBuilder::Scan("orders")
                  .HashJoin(PlanBuilder::Scan("regions").Build(), 1, 0)
                  .Filter(Expr::Compare(CmpOp::kLt, Expr::Column(0),
                                        Expr::Literal(Value::Int(5))))
                  .Build();
  Optimizer opt;  // no Database -> widths unknown -> rule must no-op safely
  PlanPtr optimized = opt.Optimize(plan);
  EXPECT_EQ(opt.stats().join_conjuncts_pushed, 0);
  Executor exec(&db_, tm_.AutoCommitView());
  auto rs = exec.Execute(optimized);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->num_rows(), 5u);
}

class FakePruner : public PartitionPruner {
 public:
  std::vector<std::string> Prune(const std::string& table,
                                 const ExprPtr&) const override {
    if (table == "orders") return {"orders_hot"};
    return {};
  }
};

TEST(OptimizerTest, PrunerInjectsPartitionList) {
  FakePruner pruner;
  Optimizer opt(&pruner);
  PlanPtr optimized = opt.Optimize(PlanBuilder::Scan("orders").Build());
  ASSERT_EQ(optimized->scan_partitions.size(), 1u);
  EXPECT_EQ(optimized->scan_partitions[0], "orders_hot");
}

// ---------- Compiled execution tests ----------

class CompiledFixture : public QueryFixture {};

TEST_F(CompiledFixture, GlobalSumMatchesInterpreter) {
  AggSpec revenue{AggFunc::kSum,
                  Expr::Arith(ArithOp::kMul, Expr::Column(2), Expr::Column(3)),
                  "revenue"};
  auto plan = PlanBuilder::Scan("orders")
                  .Filter(Expr::Compare(CmpOp::kGe, Expr::Column(0),
                                        Expr::Literal(Value::Int(20))))
                  .Aggregate({}, {revenue})
                  .Build();
  Optimizer opt;
  PlanPtr optimized = opt.Optimize(plan);

  ResultSet interp = Run(optimized);
  QueryCompiler qc(&db_, tm_.AutoCommitView());
  ASSERT_TRUE(qc.CanCompile(optimized));
  auto compiled = qc.Execute(optimized);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  ASSERT_EQ(compiled->num_rows(), 1u);
  EXPECT_DOUBLE_EQ(compiled->rows[0][0].NumericValue(),
                   interp.rows[0][0].NumericValue());
}

TEST_F(CompiledFixture, GroupBySumMatchesInterpreter) {
  AggSpec total{AggFunc::kSum, Expr::Column(2), "total"};
  AggSpec cnt{AggFunc::kCount, nullptr, "cnt"};
  auto plan =
      PlanBuilder::Scan("orders").Aggregate({1}, {total, cnt}).Build();

  ResultSet interp = Run(PlanBuilder::From(plan).Sort({{0, true}}).Build());
  QueryCompiler qc(&db_, tm_.AutoCommitView());
  ASSERT_TRUE(qc.CanCompile(plan));
  auto compiled_rs = qc.Execute(plan);
  ASSERT_TRUE(compiled_rs.ok());
  std::sort(compiled_rs->rows.begin(), compiled_rs->rows.end(),
            [](const Row& a, const Row& b) { return a[0] < b[0]; });
  ASSERT_EQ(compiled_rs->num_rows(), interp.num_rows());
  for (size_t i = 0; i < interp.num_rows(); ++i) {
    EXPECT_EQ(compiled_rs->rows[i][0], interp.rows[i][0]);
    EXPECT_DOUBLE_EQ(compiled_rs->rows[i][1].NumericValue(),
                     interp.rows[i][1].NumericValue());
    EXPECT_EQ(compiled_rs->rows[i][2].NumericValue(), interp.rows[i][2].NumericValue());
  }
}

TEST_F(CompiledFixture, RespectsMvccVisibility) {
  auto txn = tm_.Begin();
  ASSERT_TRUE(tm_.Insert(txn.get(), orders_,
                         {Value::Int(5000), Value::Str("north"), Value::Dbl(1e6),
                          Value::Int(1)})
                  .ok());
  AggSpec total{AggFunc::kSum, Expr::Column(2), "total"};
  auto plan = PlanBuilder::Scan("orders").Aggregate({}, {total}).Build();
  QueryCompiler qc(&db_, tm_.AutoCommitView());
  auto rs = qc.Execute(plan);
  ASSERT_TRUE(rs.ok());
  EXPECT_LT(rs->rows[0][0].NumericValue(), 1e6);
  ASSERT_TRUE(tm_.Abort(txn.get()).ok());
}

TEST_F(CompiledFixture, UnsupportedShapesRejected) {
  QueryCompiler qc(&db_, tm_.AutoCommitView());
  // Join is not compilable.
  auto join = PlanBuilder::Scan("orders")
                  .HashJoin(PlanBuilder::Scan("regions").Build(), 1, 0)
                  .Build();
  EXPECT_FALSE(qc.CanCompile(join));
  EXPECT_EQ(qc.Execute(join).status().code(), StatusCode::kNotImplemented);
  // LIKE predicate is not compilable.
  auto like = PlanBuilder::Scan("orders")
                  .Filter(Expr::Like(Expr::Column(1), "no%"))
                  .Aggregate({}, {AggSpec{AggFunc::kCount, nullptr, "c"}})
                  .Build();
  Optimizer opt;
  EXPECT_FALSE(qc.CanCompile(opt.Optimize(like)));
}

TEST_F(CompiledFixture, AccessTrackingHonorsExecOptions) {
  struct RecordingObserver : AccessObserver {
    void OnAccess(const AccessEvent& event) override { events.push_back(event); }
    std::vector<AccessEvent> events;
  } obs;
  db_.set_access_observer(&obs);

  AggSpec cnt{AggFunc::kCount, nullptr, "c"};
  auto sweep = PlanBuilder::Scan("orders").Aggregate({}, {cnt}).Build();
  Optimizer opt;
  PlanPtr point = opt.Optimize(PlanBuilder::Scan("orders")
                                   .Filter(Expr::Compare(CmpOp::kEq, Expr::Column(0),
                                                         Expr::Literal(Value::Int(20))))
                                   .Aggregate({}, {cnt})
                                   .Build());

  // Session default: tracking on, a full sweep is not a point read.
  QueryCompiler qc(&db_, tm_.AutoCommitView());
  ASSERT_TRUE(qc.Execute(sweep).ok());
  ASSERT_EQ(obs.events.size(), 1u);
  EXPECT_EQ(obs.events[0].partition, "orders");
  EXPECT_FALSE(obs.events[0].point_read);

  // A PK-shaped predicate is classified as a point read, exactly like the
  // interpreted scan's ID-range fast path (keeps the 4x heat weighting).
  ASSERT_TRUE(qc.CanCompile(point));
  ASSERT_TRUE(qc.Execute(point).ok());
  ASSERT_EQ(obs.events.size(), 2u);
  EXPECT_TRUE(obs.events[1].point_read);

  // Internal scans disable track_access to avoid perturbing heat; the
  // compiled path must honor that just like the interpreted executor.
  ExecOptions quiet;
  quiet.track_access = false;
  QueryCompiler internal(&db_, tm_.AutoCommitView(), quiet);
  ASSERT_TRUE(internal.Execute(sweep).ok());
  EXPECT_EQ(obs.events.size(), 2u);

  db_.set_access_observer(nullptr);
}

// Property sweep: compiled == interpreted over random data/predicates.
class CompiledEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(CompiledEquivalence, RandomWorkload) {
  int seed = GetParam();
  Random rng(seed);
  Database db;
  TransactionManager tm;
  Schema s({ColumnDef("k", DataType::kInt64), ColumnDef("g", DataType::kInt64),
            ColumnDef("x", DataType::kDouble)});
  ColumnTable* t = *db.CreateTable("t", s);
  auto txn = tm.Begin();
  int n = 200 + static_cast<int>(rng.Uniform(300));
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(tm.Insert(txn.get(), t,
                          {Value::Int(static_cast<int64_t>(rng.Uniform(1000))),
                           Value::Int(static_cast<int64_t>(rng.Uniform(7))),
                           Value::Dbl(rng.NextDouble() * 100)})
                    .ok());
  }
  ASSERT_TRUE(tm.Commit(txn.get()).ok());
  if (seed % 2 == 0) t->Merge();  // half the sweep exercises merged tables

  int64_t cut = static_cast<int64_t>(rng.Uniform(1000));
  auto plan =
      PlanBuilder::Scan("t")
          .Filter(Expr::Compare(CmpOp::kLt, Expr::Column(0),
                                Expr::Literal(Value::Int(cut))))
          .Aggregate({1}, {AggSpec{AggFunc::kSum, Expr::Column(2), "s"},
                           AggSpec{AggFunc::kCount, nullptr, "c"}})
          .Build();
  Optimizer opt;
  PlanPtr optimized = opt.Optimize(plan);

  Executor exec(&db, tm.AutoCommitView());
  auto interp = exec.Execute(optimized);
  ASSERT_TRUE(interp.ok());
  QueryCompiler qc(&db, tm.AutoCommitView());
  ASSERT_TRUE(qc.CanCompile(optimized));
  auto comp = qc.Execute(optimized);
  ASSERT_TRUE(comp.ok());

  auto sort_rows = [](ResultSet* rs) {
    std::sort(rs->rows.begin(), rs->rows.end(),
              [](const Row& a, const Row& b) { return a[0] < b[0]; });
  };
  sort_rows(&*interp);
  sort_rows(&*comp);
  ASSERT_EQ(interp->num_rows(), comp->num_rows()) << "seed=" << seed;
  for (size_t i = 0; i < interp->num_rows(); ++i) {
    EXPECT_EQ(interp->rows[i][0], comp->rows[i][0]);
    EXPECT_NEAR(interp->rows[i][1].NumericValue(), comp->rows[i][1].NumericValue(),
                1e-6);
    EXPECT_EQ(interp->rows[i][2].NumericValue(), comp->rows[i][2].NumericValue());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompiledEquivalence, ::testing::Range(1, 13));

}  // namespace
}  // namespace poly
