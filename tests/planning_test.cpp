#include <gtest/gtest.h>

#include <numeric>

#include "engines/planning/planning.h"
#include "storage/database.h"

namespace poly {
namespace {

TEST(DisaggregateTest, ProportionalSplit) {
  auto parts = Disaggregate(100, {1, 1, 2});
  ASSERT_TRUE(parts.ok());
  EXPECT_DOUBLE_EQ((*parts)[0], 25);
  EXPECT_DOUBLE_EQ((*parts)[1], 25);
  EXPECT_DOUBLE_EQ((*parts)[2], 50);
  EXPECT_FALSE(Disaggregate(100, {}).ok());
  EXPECT_FALSE(Disaggregate(100, {0, 0}).ok());
  EXPECT_FALSE(Disaggregate(100, {-1, 2}).ok());
}

TEST(DisaggregateTest, IntSplitSumsExactly) {
  auto parts = DisaggregateInt(100, {1, 1, 1});
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ(std::accumulate(parts->begin(), parts->end(), int64_t{0}), 100);
  // 33/33/33 + one largest-remainder unit.
  std::vector<int64_t> sorted = *parts;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted[0], 33);
  EXPECT_EQ(sorted[2], 34);
}

TEST(DisaggregateTest, IntSplitPropertySweep) {
  // Exact-sum invariant across many weight shapes.
  for (int64_t total : {1, 7, 99, 1000, 12345}) {
    for (const auto& weights : std::vector<std::vector<double>>{
             {1, 2, 3}, {0.1, 0.9}, {5, 5, 5, 5, 5}, {1e-6, 1}, {3, 0, 7}}) {
      auto parts = DisaggregateInt(total, weights);
      ASSERT_TRUE(parts.ok());
      EXPECT_EQ(std::accumulate(parts->begin(), parts->end(), int64_t{0}), total)
          << "total=" << total;
      for (int64_t p : *parts) EXPECT_GE(p, 0);
    }
  }
}

class PlanningFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema s({ColumnDef("version", DataType::kInt64), ColumnDef("key", DataType::kInt64),
              ColumnDef("value", DataType::kDouble)});
    table_ = *db_.CreateTable("plan", s);
    auto txn = tm_.Begin();
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(tm_.Insert(txn.get(), table_,
                             {Value::Int(1), Value::Int(i), Value::Dbl(100.0 * (i + 1))})
                      .ok());
    }
    ASSERT_TRUE(tm_.Commit(txn.get()).ok());
  }

  PlanningEngine MakeEngine() {
    auto e = PlanningEngine::Create(&tm_, table_);
    EXPECT_TRUE(e.ok());
    return *std::move(e);
  }

  Database db_;
  TransactionManager tm_;
  ColumnTable* table_ = nullptr;
};

TEST_F(PlanningFixture, CopyVersionScales) {
  PlanningEngine engine = MakeEngine();
  auto copied = engine.CopyVersion(1, 2, 1.05);
  ASSERT_TRUE(copied.ok());
  EXPECT_EQ(*copied, 4u);
  EXPECT_EQ(engine.VersionRowCount(2), 4u);
  EXPECT_NEAR(*engine.VersionTotal(2), 1000.0 * 1.05, 1e-9);
  // Source untouched.
  EXPECT_NEAR(*engine.VersionTotal(1), 1000.0, 1e-9);
  EXPECT_EQ(engine.Versions(), (std::vector<int64_t>{1, 2}));
}

TEST_F(PlanningFixture, CopyVersionGuards) {
  PlanningEngine engine = MakeEngine();
  ASSERT_TRUE(engine.CopyVersion(1, 2).ok());
  EXPECT_EQ(engine.CopyVersion(1, 2).status().code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(engine.CopyVersion(9, 3).status().code(), StatusCode::kNotFound);
}

TEST_F(PlanningFixture, DisaggregatePreservesProportions) {
  PlanningEngine engine = MakeEngine();
  // Version 1 values are 100, 200, 300, 400 (total 1000); retarget to 2000.
  ASSERT_TRUE(engine.DisaggregateVersion(1, 2000).ok());
  EXPECT_NEAR(*engine.VersionTotal(1), 2000.0, 1e-9);
  ReadView now = tm_.AutoCommitView();
  std::map<int64_t, double> by_key;
  table_->ScanVisible(now, [&](uint64_t r) {
    by_key[table_->GetValue(r, 1).AsInt()] = table_->GetValue(r, 2).AsDouble();
  });
  EXPECT_NEAR(by_key[0], 200.0, 1e-9);
  EXPECT_NEAR(by_key[3], 800.0, 1e-9);
}

TEST_F(PlanningFixture, SnapshotSemanticsViaMvcc) {
  PlanningEngine engine = MakeEngine();
  // A reader transaction opened before the disaggregation keeps the old plan.
  auto reader = tm_.Begin();
  ASSERT_TRUE(engine.DisaggregateVersion(1, 5000).ok());
  double old_total = 0;
  table_->ScanVisible(reader->View(), [&](uint64_t r) {
    old_total += table_->GetValue(r, 2).AsDouble();
  });
  EXPECT_NEAR(old_total, 1000.0, 1e-9);
  EXPECT_NEAR(*engine.VersionTotal(1), 5000.0, 1e-9);
  ASSERT_TRUE(tm_.Commit(reader.get()).ok());
}

TEST_F(PlanningFixture, CreateValidatesSchema) {
  Schema bad({ColumnDef("x", DataType::kInt64)});
  ColumnTable* t = *db_.CreateTable("bad", bad);
  EXPECT_FALSE(PlanningEngine::Create(&tm_, t).ok());
}

}  // namespace
}  // namespace poly
