#include <gtest/gtest.h>

#include "engines/graph/graph_view.h"
#include "engines/graph/hierarchy.h"
#include "storage/database.h"
#include "txn/transaction_manager.h"

namespace poly {
namespace {

class GraphFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema edges({ColumnDef("src", DataType::kInt64), ColumnDef("dst", DataType::kInt64),
                  ColumnDef("weight", DataType::kDouble)});
    edges_ = *db_.CreateTable("edges", edges);
  }

  void AddEdge(int64_t src, int64_t dst, double w) {
    auto txn = tm_.Begin();
    ASSERT_TRUE(
        tm_.Insert(txn.get(), edges_, {Value::Int(src), Value::Int(dst), Value::Dbl(w)})
            .ok());
    ASSERT_TRUE(tm_.Commit(txn.get()).ok());
  }

  GraphView BuildGraph(bool directed = true, bool weighted = true) {
    auto g = GraphView::Build(*edges_, tm_.AutoCommitView(), "src", "dst",
                              weighted ? "weight" : "", directed);
    EXPECT_TRUE(g.ok()) << g.status().ToString();
    return *std::move(g);
  }

  Database db_;
  TransactionManager tm_;
  ColumnTable* edges_ = nullptr;
};

TEST_F(GraphFixture, BuildCollectsNodesAndEdges) {
  AddEdge(1, 2, 1.0);
  AddEdge(2, 3, 2.0);
  GraphView g = BuildGraph();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.OutDegree(1), 1u);
  EXPECT_EQ(g.Neighbors(2), std::vector<int64_t>{3});
  EXPECT_TRUE(g.Neighbors(99).empty());
}

TEST_F(GraphFixture, UndirectedMirrorsEdges) {
  AddEdge(1, 2, 1.0);
  GraphView g = BuildGraph(/*directed=*/false);
  EXPECT_EQ(g.Neighbors(2), std::vector<int64_t>{1});
}

TEST_F(GraphFixture, BfsDistanceHops) {
  AddEdge(1, 2, 10);
  AddEdge(2, 3, 10);
  AddEdge(3, 4, 10);
  AddEdge(1, 4, 100);  // direct but heavy
  GraphView g = BuildGraph();
  EXPECT_EQ(g.BfsDistance(1, 4), 1);  // hops ignore weight
  EXPECT_EQ(g.BfsDistance(1, 3), 2);
  EXPECT_EQ(g.BfsDistance(1, 1), 0);
  EXPECT_EQ(g.BfsDistance(4, 1), -1);  // directed
  EXPECT_EQ(g.BfsDistance(1, 999), -1);
}

TEST_F(GraphFixture, DijkstraPrefersCheapPath) {
  AddEdge(1, 2, 1);
  AddEdge(2, 3, 1);
  AddEdge(1, 3, 5);
  GraphView g = BuildGraph();
  double cost = 0;
  auto path = g.ShortestPath(1, 3, &cost);
  EXPECT_EQ(path, (std::vector<int64_t>{1, 2, 3}));
  EXPECT_EQ(cost, 2.0);
}

TEST_F(GraphFixture, ShortestPathUnreachable) {
  AddEdge(1, 2, 1);
  AddEdge(3, 4, 1);
  GraphView g = BuildGraph();
  double cost = 0;
  EXPECT_TRUE(g.ShortestPath(1, 4, &cost).empty());
  EXPECT_EQ(cost, kUnreachable);
}

TEST_F(GraphFixture, DistancesAndRadius) {
  AddEdge(1, 2, 1);
  AddEdge(2, 3, 2);
  AddEdge(3, 4, 4);
  GraphView g = BuildGraph();
  auto dist = g.DistancesFrom(1);
  EXPECT_EQ(dist[4], 7.0);
  EXPECT_EQ(g.NodesWithinCost(1, 3.0), (std::vector<int64_t>{1, 2, 3}));
}

TEST_F(GraphFixture, ConnectedComponents) {
  AddEdge(1, 2, 1);
  AddEdge(2, 1, 1);
  AddEdge(3, 4, 1);
  GraphView g = BuildGraph();
  auto comp = g.ConnectedComponents();
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[1], comp[3]);
}

TEST_F(GraphFixture, MvccViewControlsGraphContents) {
  AddEdge(1, 2, 1);
  auto txn = tm_.Begin();
  ASSERT_TRUE(
      tm_.Insert(txn.get(), edges_, {Value::Int(2), Value::Int(3), Value::Dbl(1.0)}).ok());
  // Graph built before commit misses the in-flight edge.
  GraphView before = BuildGraph();
  EXPECT_EQ(before.num_edges(), 1u);
  ASSERT_TRUE(tm_.Commit(txn.get()).ok());
  GraphView after = BuildGraph();
  EXPECT_EQ(after.num_edges(), 2u);
}

TEST_F(GraphFixture, PageRankFavorsSinkOfAttention) {
  // Star: everyone links to node 1; node 1 links to node 2.
  for (int src : {3, 4, 5, 6}) AddEdge(src, 1, 1.0);
  AddEdge(1, 2, 1.0);
  GraphView g = BuildGraph();
  auto rank = g.PageRank();
  // Scores form a distribution.
  double total = 0;
  for (const auto& [_, score] : rank) total += score;
  EXPECT_NEAR(total, 1.0, 1e-6);
  // Node 2 is the terminal sink (absorbs all of 1's mass), node 1 collects
  // from the four leaves, leaves trail far behind.
  EXPECT_GT(rank[2], rank[1]);
  EXPECT_GT(rank[1], rank[3]);
  EXPECT_GT(rank[1], 4 * rank[3]);
}

TEST_F(GraphFixture, PageRankEmptyAndSingleEdge) {
  GraphView empty = BuildGraph();
  EXPECT_TRUE(empty.PageRank().empty());
  AddEdge(1, 2, 1.0);
  GraphView g = BuildGraph();
  auto rank = g.PageRank();
  EXPECT_EQ(rank.size(), 2u);
  EXPECT_GT(rank[2], rank[1]);
}

// ---------- Hierarchy ----------

class HierarchyFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema s({ColumnDef("id", DataType::kInt64), ColumnDef("parent", DataType::kInt64)});
    nodes_ = *db_.CreateTable("nodes", s);
  }

  void AddNode(int64_t id, Value parent) {
    auto txn = tm_.Begin();
    ASSERT_TRUE(tm_.Insert(txn.get(), nodes_, {Value::Int(id), parent}).ok());
    ASSERT_TRUE(tm_.Commit(txn.get()).ok());
  }

  HierarchyView BuildTree() {
    auto h = HierarchyView::Build(*nodes_, tm_.AutoCommitView(), "id", "parent");
    EXPECT_TRUE(h.ok()) << h.status().ToString();
    return *std::move(h);
  }

  //        1
  //      2   3      (children of 1)
  //    4  5    6    (4,5 under 2; 6 under 3)
  void BuildStandardTree() {
    AddNode(1, Value::Null());
    AddNode(2, Value::Int(1));
    AddNode(3, Value::Int(1));
    AddNode(4, Value::Int(2));
    AddNode(5, Value::Int(2));
    AddNode(6, Value::Int(3));
  }

  Database db_;
  TransactionManager tm_;
  ColumnTable* nodes_ = nullptr;
};

TEST_F(HierarchyFixture, DescendantQueriesAreIntervalBased) {
  BuildStandardTree();
  HierarchyView h = BuildTree();
  EXPECT_TRUE(h.IsDescendant(4, 1));
  EXPECT_TRUE(h.IsDescendant(4, 2));
  EXPECT_FALSE(h.IsDescendant(4, 3));
  EXPECT_FALSE(h.IsDescendant(1, 4));
  EXPECT_FALSE(h.IsDescendant(1, 1));  // strict
  EXPECT_EQ(*h.CountDescendants(1), 5);
  EXPECT_EQ(*h.CountDescendants(2), 2);
  EXPECT_EQ(*h.CountDescendants(6), 0);
  EXPECT_FALSE(h.CountDescendants(42).ok());
}

TEST_F(HierarchyFixture, IntervalInvariants) {
  BuildStandardTree();
  HierarchyView h = BuildTree();
  auto [pre1, post1] = *h.Interval(1);
  auto [pre2, post2] = *h.Interval(2);
  // Child interval nested in parent interval.
  EXPECT_GT(pre2, pre1);
  EXPECT_LE(post2, post1);
  // Subtree size = post - pre - 1.
  EXPECT_EQ(post1 - pre1 - 1, *h.CountDescendants(1));
}

TEST_F(HierarchyFixture, ChildrenSiblingsDepthPath) {
  BuildStandardTree();
  HierarchyView h = BuildTree();
  EXPECT_EQ(h.Children(1), (std::vector<int64_t>{2, 3}));
  EXPECT_EQ(h.Siblings(4), std::vector<int64_t>{5});
  EXPECT_EQ(h.Siblings(1), std::vector<int64_t>{});
  EXPECT_EQ(*h.Depth(1), 0);
  EXPECT_EQ(*h.Depth(4), 2);
  EXPECT_EQ(h.PathToRoot(5), (std::vector<int64_t>{1, 2, 5}));
  EXPECT_EQ(h.Descendants(2), (std::vector<int64_t>{4, 5}));
}

TEST_F(HierarchyFixture, ForestWithMultipleRoots) {
  AddNode(1, Value::Null());
  AddNode(2, Value::Int(2));  // self-parent also marks a root
  AddNode(3, Value::Int(1));
  HierarchyView h = BuildTree();
  EXPECT_EQ(h.Roots().size(), 2u);
  EXPECT_EQ(h.Siblings(1), std::vector<int64_t>{2});
}

TEST_F(HierarchyFixture, CycleRejected) {
  AddNode(1, Value::Int(2));
  AddNode(2, Value::Int(1));
  auto h = HierarchyView::Build(*nodes_, tm_.AutoCommitView(), "id", "parent");
  EXPECT_FALSE(h.ok());
  EXPECT_EQ(h.status().code(), StatusCode::kCorruption);
}

TEST_F(HierarchyFixture, DuplicateIdRejected) {
  AddNode(1, Value::Null());
  AddNode(1, Value::Null());
  auto h = HierarchyView::Build(*nodes_, tm_.AutoCommitView(), "id", "parent");
  EXPECT_FALSE(h.ok());
}

TEST_F(HierarchyFixture, VersionedSnapshotsAndDiff) {
  BuildStandardTree();
  VersionedHierarchy vh;
  ASSERT_TRUE(vh.Snapshot(1, *nodes_, tm_.AutoCommitView(), "id", "parent").ok());

  // Re-parent node 6 under 2 (update = delete + insert).
  ReadView now = tm_.AutoCommitView();
  uint64_t row6 = 0;
  nodes_->ScanVisible(now, [&](uint64_t r) {
    if (nodes_->GetValue(r, 0).AsInt() == 6) row6 = r;
  });
  auto txn = tm_.Begin();
  ASSERT_TRUE(tm_.Update(txn.get(), nodes_, row6, {Value::Int(6), Value::Int(2)}).ok());
  ASSERT_TRUE(tm_.Commit(txn.get()).ok());
  ASSERT_TRUE(vh.Snapshot(2, *nodes_, tm_.AutoCommitView(), "id", "parent").ok());

  EXPECT_EQ(vh.Versions(), (std::vector<int64_t>{1, 2}));
  const HierarchyView* v1 = *vh.Version(1);
  const HierarchyView* v2 = *vh.Version(2);
  EXPECT_TRUE(v1->IsDescendant(6, 3));
  EXPECT_TRUE(v2->IsDescendant(6, 2));
  auto changed = vh.ChangedNodes(1, 2);
  ASSERT_TRUE(changed.ok());
  EXPECT_EQ(*changed, std::vector<int64_t>{6});
  EXPECT_FALSE(vh.Version(9).ok());
}

}  // namespace
}  // namespace poly
