#include <gtest/gtest.h>

#include <cmath>

#include "engines/geo/geo.h"
#include "engines/geo/geo_index.h"
#include "storage/database.h"
#include "txn/transaction_manager.h"

namespace poly {
namespace {

TEST(GeoTest, HaversineKnownDistances) {
  GeoPointValue berlin{13.405, 52.52};
  GeoPointValue munich{11.582, 48.135};
  double d = HaversineMeters(berlin, munich);
  EXPECT_NEAR(d, 504000, 5000);  // ~504 km
  EXPECT_EQ(HaversineMeters(berlin, berlin), 0);
}

TEST(GeoTest, HaversineSymmetric) {
  GeoPointValue a{10, 50}, b{-70, -30};
  EXPECT_DOUBLE_EQ(HaversineMeters(a, b), HaversineMeters(b, a));
}

TEST(GeoTest, BBoxAroundCoversRadius) {
  GeoPointValue center{8.5, 49.3};
  GeoBBox box = BBoxAround(center, 10000);
  // Points just inside the radius are inside the box.
  GeoPointValue north{8.5, 49.3 + 0.089};  // ~9.9 km north
  EXPECT_TRUE(box.Contains(north));
  EXPECT_TRUE(box.Contains(center));
  GeoPointValue far{9.5, 49.3};
  EXPECT_FALSE(box.Contains(far));
}

TEST(GeoTest, PolygonContains) {
  GeoPolygon square({{0, 0}, {10, 0}, {10, 10}, {0, 10}});
  EXPECT_TRUE(square.Contains({5, 5}));
  EXPECT_TRUE(square.Contains({0.001, 0.001}));
  EXPECT_FALSE(square.Contains({15, 5}));
  EXPECT_FALSE(square.Contains({-1, 5}));
}

TEST(GeoTest, PolygonConcave) {
  // L-shape: the notch is outside.
  GeoPolygon ell({{0, 0}, {10, 0}, {10, 5}, {5, 5}, {5, 10}, {0, 10}});
  EXPECT_TRUE(ell.Contains({2, 8}));
  EXPECT_FALSE(ell.Contains({8, 8}));
}

TEST(GeoTest, AreaOfKnownSquare) {
  // 1x1 degree at the equator ~ 111.19 km per side.
  GeoPolygon square({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
  double side = kEarthRadiusMeters * M_PI / 180.0;
  EXPECT_NEAR(square.AreaSquareMeters(), side * side, side * side * 0.01);
  GeoPolygon degenerate({{0, 0}, {1, 1}});
  EXPECT_EQ(degenerate.AreaSquareMeters(), 0);
}

class GeoIndexFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema s({ColumnDef("id", DataType::kInt64),
              ColumnDef("location", DataType::kGeoPoint)});
    table_ = *db_.CreateTable("sites", s);
    auto txn = tm_.Begin();
    // Cluster around (8.5, 49.3) plus far-away outliers.
    for (int i = 0; i < 20; ++i) {
      double lon = 8.5 + (i % 5) * 0.01;  // ~0.7km steps
      double lat = 49.3 + (i / 5) * 0.01;
      ASSERT_TRUE(tm_.Insert(txn.get(), table_,
                             {Value::Int(i), Value::GeoPoint(lon, lat)}).ok());
    }
    ASSERT_TRUE(tm_.Insert(txn.get(), table_,
                           {Value::Int(100), Value::GeoPoint(100.0, 10.0)}).ok());
    ASSERT_TRUE(tm_.Commit(txn.get()).ok());
  }

  GeoIndex BuildIndex() {
    auto idx = GeoIndex::Build(*table_, tm_.AutoCommitView(), "location", 0.05);
    EXPECT_TRUE(idx.ok()) << idx.status().ToString();
    return *std::move(idx);
  }

  Database db_;
  TransactionManager tm_;
  ColumnTable* table_ = nullptr;
};

TEST_F(GeoIndexFixture, WithinDistanceMatchesBruteForce) {
  GeoIndex idx = BuildIndex();
  GeoPointValue center{8.52, 49.32};
  double radius = 2000;
  std::vector<uint64_t> expected;
  ReadView now = tm_.AutoCommitView();
  table_->ScanVisible(now, [&](uint64_t r) {
    GeoPointValue p = table_->GetValue(r, 1).AsGeoPoint();
    if (HaversineMeters(p, center) <= radius) expected.push_back(r);
  });
  EXPECT_EQ(idx.WithinDistance(center, radius), expected);
  EXPECT_FALSE(expected.empty());
}

TEST_F(GeoIndexFixture, WithinDistancePrunesCandidates) {
  GeoIndex idx = BuildIndex();
  idx.WithinDistance({8.52, 49.32}, 500);
  // The outlier at (100, 10) must not even be a candidate.
  EXPECT_LT(idx.last_candidates(), idx.num_points());
}

TEST_F(GeoIndexFixture, ContainedInPolygon) {
  GeoIndex idx = BuildIndex();
  GeoPolygon box({{8.495, 49.295}, {8.525, 49.295}, {8.525, 49.315}, {8.495, 49.315}});
  auto rows = idx.ContainedIn(box);
  EXPECT_FALSE(rows.empty());
  for (uint64_t r : rows) {
    EXPECT_TRUE(box.Contains(table_->GetValue(r, 1).AsGeoPoint()));
  }
}

TEST_F(GeoIndexFixture, NearestFindsClosest) {
  GeoIndex idx = BuildIndex();
  auto nearest = idx.Nearest({8.5005, 49.3005});
  ASSERT_TRUE(nearest.ok());
  EXPECT_EQ(table_->GetValue(*nearest, 0), Value::Int(0));
  auto far = idx.Nearest({100.01, 10.01});
  ASSERT_TRUE(far.ok());
  EXPECT_EQ(table_->GetValue(*far, 0), Value::Int(100));
}

TEST_F(GeoIndexFixture, KNearestOrderedByDistance) {
  GeoIndex idx = BuildIndex();
  GeoPointValue probe{8.5001, 49.3001};
  auto knn = idx.KNearest(probe, 4);
  ASSERT_EQ(knn.size(), 4u);
  double prev = -1;
  for (uint64_t r : knn) {
    double d = HaversineMeters(table_->GetValue(r, 1).AsGeoPoint(), probe);
    EXPECT_GE(d, prev);
    prev = d;
  }
  EXPECT_EQ(table_->GetValue(knn[0], 0), Value::Int(0));
  // k larger than the index returns everything.
  EXPECT_EQ(idx.KNearest(probe, 500).size(), idx.num_points());
  EXPECT_TRUE(idx.KNearest(probe, 0).empty());
}

TEST_F(GeoIndexFixture, RespectsVisibility) {
  auto txn = tm_.Begin();
  ASSERT_TRUE(tm_.Insert(txn.get(), table_,
                         {Value::Int(999), Value::GeoPoint(8.5, 49.3)}).ok());
  GeoIndex idx = BuildIndex();  // built on committed snapshot
  auto rows = idx.WithinDistance({8.5, 49.3}, 100);
  for (uint64_t r : rows) EXPECT_NE(table_->GetValue(r, 0), Value::Int(999));
  ASSERT_TRUE(tm_.Abort(txn.get()).ok());
}

TEST(GeoIndexTest, BuildRejectsWrongColumn) {
  Database db;
  Schema s({ColumnDef("id", DataType::kInt64)});
  ColumnTable* t = *db.CreateTable("t", s);
  EXPECT_FALSE(GeoIndex::Build(*t, LatestCommittedView(), "id").ok());
  EXPECT_FALSE(GeoIndex::Build(*t, LatestCommittedView(), "nope").ok());
}

TEST(GeoIndexTest, EmptyIndexNearestFails) {
  Database db;
  Schema s({ColumnDef("p", DataType::kGeoPoint)});
  ColumnTable* t = *db.CreateTable("t", s);
  auto idx = GeoIndex::Build(*t, LatestCommittedView(), "p");
  ASSERT_TRUE(idx.ok());
  EXPECT_FALSE(idx->Nearest({0, 0}).ok());
}

}  // namespace
}  // namespace poly
