// Cross-module integration tests: each test wires several subsystems
// together the way the paper's scenarios (§V) do, asserting end-to-end
// behaviour rather than per-module contracts.

#include <gtest/gtest.h>

#include "aging/aging.h"
#include "common/string_util.h"
#include "aging/extended_storage.h"
#include "bfl/business_functions.h"
#include "engines/geo/geo_index.h"
#include "engines/graph/graph_view.h"
#include "engines/text/text_engine.h"
#include "engines/timeseries/ts_ops.h"
#include "federation/federation.h"
#include "hadoop/mapreduce.h"
#include "hadoop/table_connector.h"
#include "query/compiled.h"
#include "query/executor.h"
#include "query/optimizer.h"
#include "soe/cluster.h"

namespace poly {
namespace {

// DFS file -> import -> column store -> query -> export -> re-import:
// the full data-refinement loop of Figure 1.
TEST(Integration, DfsImportQueryExportRoundTrip) {
  Database db;
  TransactionManager tm;
  SimulatedDfs dfs;
  DfsTableConnector conn(&dfs);

  std::string tsv = "sensor:INT64\tvalue:DOUBLE\n";
  for (int i = 0; i < 300; ++i) {
    tsv += std::to_string(i % 10) + "\t" + std::to_string(i * 0.5) + "\n";
  }
  ASSERT_TRUE(dfs.Write("/in.tsv", tsv).ok());
  ColumnTable* t = *conn.Import("/in.tsv", "readings", &db, &tm);

  // Aggregate in the engine.
  AggSpec avg{AggFunc::kAvg, Expr::Column(1), "avg_v"};
  auto plan = PlanBuilder::Scan("readings").Aggregate({0}, {avg}).Build();
  Executor exec(&db, tm.AutoCommitView());
  auto rs = exec.Execute(plan);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->num_rows(), 10u);

  // Export and re-import: same row count, same values.
  ASSERT_TRUE(conn.Export(*t, tm.AutoCommitView(), "/out.tsv").ok());
  ColumnTable* t2 = *conn.Import("/out.tsv", "readings2", &db, &tm);
  EXPECT_EQ(t2->CountVisible(tm.AutoCommitView()),
            t->CountVisible(tm.AutoCommitView()));
}

// Aging + extended storage + pruned queries: Fig. 1 top-to-bottom. Aged
// partition is demoted to warm storage; a recent-only query still works
// without it (pruned), and promoting it restores full-history queries.
TEST(Integration, AgeDowntierQueryPromote) {
  Database db;
  TransactionManager tm;
  ColumnTable* orders = *db.CreateTable(
      "orders", Schema({ColumnDef("id", DataType::kInt64),
                        ColumnDef("year", DataType::kInt64),
                        ColumnDef("open", DataType::kBool)}));
  auto txn = tm.Begin();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(tm.Insert(txn.get(), orders,
                          {Value::Int(i), Value::Int(i < 70 ? 2022 : 2026),
                           Value::Boolean(i >= 70)})
                    .ok());
  }
  ASSERT_TRUE(tm.Commit(txn.get()).ok());

  AgingManager aging(&db, &tm);
  AgingRule rule;
  rule.name = "r";
  rule.table = "orders";
  rule.predicate =
      Expr::Compare(CmpOp::kLt, Expr::Column(1), Expr::Literal(Value::Int(2026)));
  rule.guarantee = {"year", CmpOp::kLt, Value::Int(2026)};
  ASSERT_TRUE(aging.AddRule(rule).ok());
  auto stats = aging.RunAging();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rows_aged, 70u);

  ExtendedStorage warm;
  ASSERT_TRUE(warm.Demote(&db, "orders$aged").ok());

  // Recent-only query: pruner limits the scan to the hot partition, so the
  // demoted partition is never touched.
  Optimizer opt(&aging);
  auto recent = opt.Optimize(
      PlanBuilder::Scan("orders")
          .Filter(Expr::Compare(CmpOp::kGe, Expr::Column(1),
                                Expr::Literal(Value::Int(2026))))
          .Build());
  Executor exec(&db, tm.AutoCommitView());
  auto rs = exec.Execute(recent);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->num_rows(), 30u);

  // Full-history query needs the warm partition back.
  auto all = opt.Optimize(PlanBuilder::Scan("orders").Build());
  Executor exec_fail(&db, tm.AutoCommitView());
  EXPECT_FALSE(exec_fail.Execute(all).ok());  // aged partition not resident
  ASSERT_TRUE(warm.Promote(&db, "orders$aged").ok());
  Executor exec_ok(&db, tm.AutoCommitView());
  auto full = exec_ok.Execute(all);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->num_rows(), 100u);
}

// Text entities land in a relational table and join with master data.
TEST(Integration, TextEntitiesJoinMasterData) {
  Database db;
  TransactionManager tm;
  ColumnTable* notes = *db.CreateTable(
      "notes", Schema({ColumnDef("id", DataType::kInt64),
                       ColumnDef("body", DataType::kString)}));
  ColumnTable* entities = *db.CreateTable(
      "entities", Schema({ColumnDef("doc_row", DataType::kInt64),
                          ColumnDef("kind", DataType::kString),
                          ColumnDef("entity", DataType::kString)}));
  ColumnTable* companies = *db.CreateTable(
      "companies", Schema({ColumnDef("name", DataType::kString),
                           ColumnDef("segment", DataType::kString)}));
  auto txn = tm.Begin();
  ASSERT_TRUE(tm.Insert(txn.get(), notes,
                        {Value::Int(1),
                         Value::Str("meeting with Acme Corp about the new valves")})
                  .ok());
  ASSERT_TRUE(tm.Insert(txn.get(), companies,
                        {Value::Str("Acme Corp"), Value::Str("industrial")}).ok());
  ASSERT_TRUE(tm.Commit(txn.get()).ok());

  TextEngine engine = *TextEngine::Create(notes, "body");
  engine.Refresh();
  ASSERT_TRUE(engine.ExtractEntitiesTo(&tm, entities).ok());

  // Join extracted entity names against the company master table.
  auto plan = PlanBuilder::Scan("entities")
                  .Filter(Expr::Compare(CmpOp::kEq, Expr::Column(1),
                                        Expr::Literal(Value::Str("COMPANY"))))
                  .HashJoin(PlanBuilder::Scan("companies").Build(), 2, 0)
                  .Build();
  Executor exec(&db, tm.AutoCommitView());
  auto rs = exec.Execute(plan);
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->num_rows(), 1u);
  EXPECT_EQ(rs->rows[0][4], Value::Str("industrial"));
}

// SOE cluster fed from a DFS file through the connector path, then a
// distributed aggregate — the Figure 4 "deep integration" flow.
TEST(Integration, DfsToSoeDistributedQuery) {
  SimulatedDfs dfs;
  std::string tsv = "sensor:INT64\tvalue:DOUBLE\n";
  for (int i = 0; i < 400; ++i) {
    tsv += std::to_string(i % 20) + "\t" + std::to_string(1.0 * i) + "\n";
  }
  ASSERT_TRUE(dfs.Write("/lake/r.tsv", tsv).ok());
  auto parsed = DfsTableConnector::ParseTsv(*dfs.Read("/lake/r.tsv"));
  ASSERT_TRUE(parsed.ok());

  SoeCluster::Options opts;
  opts.num_nodes = 3;
  SoeCluster cluster(opts);
  ASSERT_TRUE(cluster.CreateTable("readings", parsed->first,
                                  PartitionSpec::Hash("sensor", 6), 2)
                  .ok());
  ASSERT_TRUE(cluster.CommitInserts("readings", parsed->second).ok());

  AggSpec cnt{AggFunc::kCount, nullptr, "cnt"};
  AggSpec sum{AggFunc::kSum, Expr::Column(1), "sum"};
  auto rs = cluster.DistributedAggregate("readings", nullptr, "", {cnt, sum});
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->rows[0][0], Value::Int(400));
  EXPECT_DOUBLE_EQ(rs->rows[0][1].NumericValue(), 399.0 * 400 / 2);

  // Node failure mid-flight: replicated table still answers.
  ASSERT_TRUE(cluster.KillNode(1).ok());
  auto rs2 = cluster.DistributedAggregate("readings", nullptr, "", {cnt});
  ASSERT_TRUE(rs2.ok());
  EXPECT_EQ(rs2->rows[0][0], Value::Int(400));
}

// Federation + currency conversion: remote sales in multiple currencies,
// pushdown-filtered, converted in the "hub" engine (SDA + BFL together).
TEST(Integration, FederatedSalesConvertedTotal) {
  Database remote_db;
  TransactionManager remote_tm;
  ColumnTable* sales = *remote_db.CreateTable(
      "sales", Schema({ColumnDef("amount", DataType::kDouble),
                       ColumnDef("currency", DataType::kString),
                       ColumnDef("year", DataType::kInt64)}));
  auto txn = remote_tm.Begin();
  ASSERT_TRUE(remote_tm.Insert(txn.get(), sales,
                               {Value::Dbl(100), Value::Str("USD"), Value::Int(2026)}).ok());
  ASSERT_TRUE(remote_tm.Insert(txn.get(), sales,
                               {Value::Dbl(50), Value::Str("EUR"), Value::Int(2026)}).ok());
  ASSERT_TRUE(remote_tm.Insert(txn.get(), sales,
                               {Value::Dbl(999), Value::Str("EUR"), Value::Int(2020)}).ok());
  ASSERT_TRUE(remote_tm.Commit(txn.get()).ok());

  FederationEngine fed;
  ASSERT_TRUE(fed.RegisterSource("v_sales",
                                 std::make_unique<RemoteTableSource>(
                                     &remote_db, &remote_tm, "sales", true))
                  .ok());
  auto rs = fed.ScanVirtual(
      "v_sales",
      Expr::Compare(CmpOp::kEq, Expr::Column(2), Expr::Literal(Value::Int(2026))));
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->num_rows(), 2u);

  CurrencyConverter fx;
  fx.AddRate("USD", "EUR", 0, 0.9);
  double total = 0;
  for (const Row& row : rs->rows) {
    total += *fx.Convert(row[0].AsDouble(), row[1].AsString(), "EUR", 1);
  }
  EXPECT_DOUBLE_EQ(total, 100 * 0.9 + 50);
}

// MapReduce output consumed by the time-series engine: the machine-
// maintenance pipeline in miniature.
TEST(Integration, MapReduceToTimeSeries) {
  SimulatedDfs dfs;
  ThreadPool pool(2);
  std::string raw;
  for (int minute = 0; minute < 600; ++minute) {
    raw += "m1\t" + std::to_string(minute) + "\t" +
           std::to_string(10.0 + minute * 0.01) + "\n";
  }
  ASSERT_TRUE(dfs.Write("/raw", raw).ok());
  MapReduceJob job(&dfs, &pool);
  auto stats = job.Run(
      "/raw", "/hourly",
      [](const std::string& line) {
        auto f = SplitString(line, '\t');
        std::vector<KeyValue> out;
        if (f.size() == 3) {
          out.push_back(KeyValue{std::to_string(std::stol(f[1]) / 60), f[2]});
        }
        return out;
      },
      [](const std::string& key, const std::vector<std::string>& values) {
        double sum = 0;
        for (const auto& v : values) sum += std::stod(v);
        return std::vector<std::string>{key + "\t" +
                                        std::to_string(sum / values.size())};
      });
  ASSERT_TRUE(stats.ok());

  TimeSeries hourly;
  std::vector<std::pair<int64_t, double>> points;
  for (const auto& line : SplitString(*dfs.Read("/hourly"), '\n')) {
    if (line.empty()) continue;
    auto kv = SplitString(line, '\t');
    points.emplace_back(std::stoll(kv[0]), std::stod(kv[1]));
  }
  std::sort(points.begin(), points.end());
  for (auto [t, v] : points) hourly.Append(t, v);
  ASSERT_EQ(hourly.size(), 10u);
  // The upward drift survives the two-stage aggregation.
  EXPECT_GT(hourly.values.back(), hourly.values.front());
  TimeSeries diff = Difference(hourly);
  for (double v : diff.values) EXPECT_GT(v, 0);
}

// Optimizer + compiled execution + aging pruning compose: a pruned,
// pushed-down aggregate still takes the fused-kernel path and matches the
// interpreted result.
TEST(Integration, CompiledQueryOverPrunedPartitions) {
  Database db;
  TransactionManager tm;
  ColumnTable* orders = *db.CreateTable(
      "orders", Schema({ColumnDef("id", DataType::kInt64),
                        ColumnDef("year", DataType::kInt64),
                        ColumnDef("amount", DataType::kDouble)}));
  auto txn = tm.Begin();
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(tm.Insert(txn.get(), orders,
                          {Value::Int(i), Value::Int(i < 150 ? 2021 : 2026),
                           Value::Dbl(1.0 * i)})
                    .ok());
  }
  ASSERT_TRUE(tm.Commit(txn.get()).ok());

  AgingManager aging(&db, &tm);
  AgingRule rule;
  rule.name = "r";
  rule.table = "orders";
  rule.predicate =
      Expr::Compare(CmpOp::kLt, Expr::Column(1), Expr::Literal(Value::Int(2026)));
  rule.guarantee = {"year", CmpOp::kLt, Value::Int(2026)};
  ASSERT_TRUE(aging.AddRule(rule).ok());
  ASSERT_TRUE(aging.RunAging().ok());

  AggSpec sum{AggFunc::kSum, Expr::Column(2), "s"};
  Optimizer opt(&aging);
  auto plan = opt.Optimize(
      PlanBuilder::Scan("orders")
          .Filter(Expr::Compare(CmpOp::kGe, Expr::Column(1),
                                Expr::Literal(Value::Int(2026))))
          .Aggregate({}, {sum})
          .Build());

  Executor exec(&db, tm.AutoCommitView());
  auto interp = exec.Execute(plan);
  ASSERT_TRUE(interp.ok());
  EXPECT_EQ(exec.stats().partitions_scanned, 1u);  // aged partition pruned

  QueryCompiler qc(&db, tm.AutoCommitView());
  ASSERT_TRUE(qc.CanCompile(plan));
  auto compiled = qc.Execute(plan);
  ASSERT_TRUE(compiled.ok());
  double expect = 0;
  for (int i = 150; i < 200; ++i) expect += i;
  EXPECT_DOUBLE_EQ(interp->rows[0][0].NumericValue(), expect);
  EXPECT_DOUBLE_EQ(compiled->rows[0][0].NumericValue(), expect);
}

// Graph + geo combined: route costs as a graph, positions filtered by a
// polygon (pipeline scenario shape).
TEST(Integration, GraphAndGeoCombine) {
  Database db;
  TransactionManager tm;
  ColumnTable* nodes = *db.CreateTable(
      "nodes", Schema({ColumnDef("id", DataType::kInt64),
                       ColumnDef("pos", DataType::kGeoPoint)}));
  ColumnTable* edges = *db.CreateTable(
      "edges", Schema({ColumnDef("src", DataType::kInt64),
                       ColumnDef("dst", DataType::kInt64),
                       ColumnDef("w", DataType::kDouble)}));
  auto txn = tm.Begin();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(tm.Insert(txn.get(), nodes,
                          {Value::Int(i), Value::GeoPoint(10.0 + i * 0.1, 50.0)}).ok());
    if (i > 0) {
      ASSERT_TRUE(tm.Insert(txn.get(), edges,
                            {Value::Int(i - 1), Value::Int(i), Value::Dbl(1.0)}).ok());
    }
  }
  ASSERT_TRUE(tm.Commit(txn.get()).ok());
  ReadView now = tm.AutoCommitView();
  GraphView g = *GraphView::Build(*edges, now, "src", "dst", "w");
  GeoIndex idx = *GeoIndex::Build(*nodes, now, "pos", 0.05);

  // Nodes inside the polygon AND within graph distance 3 of node 0.
  GeoPolygon area({{9.95, 49.9}, {10.45, 49.9}, {10.45, 50.1}, {9.95, 50.1}});
  auto in_area = idx.ContainedIn(area);                 // nodes 0..4 by lon
  auto reachable = g.NodesWithinCost(0, 3.0);           // nodes 0..3 by hops
  std::vector<int64_t> both;
  for (uint64_t row : in_area) {
    int64_t id = nodes->GetValue(row, 0).AsInt();
    if (std::find(reachable.begin(), reachable.end(), id) != reachable.end()) {
      both.push_back(id);
    }
  }
  EXPECT_EQ(both, (std::vector<int64_t>{0, 1, 2, 3}));
}

}  // namespace
}  // namespace poly
