#include <gtest/gtest.h>

#include "engines/text/text_engine.h"
#include "storage/database.h"
#include "txn/transaction_manager.h"

namespace poly {
namespace {

TEST(TokenizerTest, LowercasesAndSplits) {
  TokenizerOptions opts;
  opts.remove_stopwords = false;
  opts.stem = false;
  auto tokens = Tokenize("Hello, World! 42 times", opts);
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0], "hello");
  EXPECT_EQ(tokens[1], "world");
  EXPECT_EQ(tokens[2], "42");
}

TEST(TokenizerTest, RemovesStopwords) {
  auto tokens = Tokenize("the quick fox and the dog");
  for (const auto& t : tokens) {
    EXPECT_NE(t, "the");
    EXPECT_NE(t, "and");
  }
}

TEST(TokenizerTest, StemsSuffixFamilies) {
  EXPECT_EQ(StemWord("sensors"), "sensor");
  EXPECT_EQ(StemWord("companies"), "company");
  EXPECT_EQ(StemWord("classes"), "class");
  EXPECT_EQ(StemWord("planning"), "plan");
  EXPECT_EQ(StemWord("glass"), "glass");
  // Same stem across inflections is what search needs.
  EXPECT_EQ(StemWord("merged"), StemWord("merges"));
}

TEST(TokenizerTest, MinLengthFilter) {
  TokenizerOptions opts;
  opts.remove_stopwords = false;
  opts.stem = false;
  opts.min_token_length = 3;
  auto tokens = Tokenize("a bb ccc dddd", opts);
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "ccc");
}

TEST(InvertedIndexTest, SearchRanksRelevantDocsFirst) {
  InvertedIndex idx;
  idx.AddDocument(1, "the gas pipeline leaked near the station");
  idx.AddDocument(2, "pipeline pipeline pipeline maintenance schedule");
  idx.AddDocument(3, "quarterly financial report");
  auto hits = idx.Search("pipeline");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].doc_id, 2u);  // higher term frequency wins
  EXPECT_GT(hits[0].score, hits[1].score);
}

TEST(InvertedIndexTest, SearchAllRequiresEveryTerm) {
  InvertedIndex idx;
  idx.AddDocument(1, "sensor data from the dispenser");
  idx.AddDocument(2, "sensor calibration manual");
  auto hits = idx.SearchAll("sensor dispenser");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].doc_id, 1u);
  // A term absent from the corpus empties the conjunction.
  EXPECT_TRUE(idx.SearchAll("sensor unicorns").empty());
}

TEST(InvertedIndexTest, StemmingUnifiesQueryAndDocument) {
  InvertedIndex idx;
  idx.AddDocument(1, "we are merging the delta stores");
  auto hits = idx.Search("merge");
  ASSERT_EQ(hits.size(), 1u);
}

TEST(InvertedIndexTest, RemoveDocument) {
  InvertedIndex idx;
  idx.AddDocument(1, "alpha beta");
  idx.AddDocument(2, "alpha gamma");
  idx.RemoveDocument(1);
  auto hits = idx.Search("alpha");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].doc_id, 2u);
  EXPECT_TRUE(idx.Search("beta").empty());
}

TEST(InvertedIndexTest, ReAddReplaces) {
  InvertedIndex idx;
  idx.AddDocument(1, "old content here");
  idx.AddDocument(1, "fresh words");
  EXPECT_TRUE(idx.Search("old").empty());
  EXPECT_EQ(idx.Search("fresh").size(), 1u);
  EXPECT_EQ(idx.num_documents(), 1u);
}

TEST(InvertedIndexTest, TopKLimits) {
  InvertedIndex idx;
  for (uint64_t d = 0; d < 50; ++d) idx.AddDocument(d, "common term document");
  EXPECT_EQ(idx.Search("common", 7).size(), 7u);
}

TEST(InvertedIndexTest, PhraseSearchRequiresAdjacency) {
  InvertedIndex idx;
  idx.AddDocument(1, "the gas pipeline exploded near town");
  idx.AddDocument(2, "gas prices rose while the pipeline was idle");
  idx.AddDocument(3, "pipeline gas flows reversed");  // reversed order
  auto hits = idx.SearchPhrase("gas pipeline");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].doc_id, 1u);
  // Both words present but not adjacent -> no phrase hit for doc 2/3.
  EXPECT_EQ(idx.SearchAll("gas pipeline").size(), 3u);
}

TEST(InvertedIndexTest, PhraseSearchStopwordsAndStemming) {
  InvertedIndex idx;
  idx.AddDocument(1, "merging the delta stores nightly");
  // Stopword "the" is removed on both sides; stems align.
  auto hits = idx.SearchPhrase("merge the delta store");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_TRUE(idx.SearchPhrase("delta merge").empty());  // wrong order
  EXPECT_TRUE(idx.SearchPhrase("").empty());
  // Single-word phrase degrades to normal search.
  EXPECT_EQ(idx.SearchPhrase("nightly").size(), 1u);
}

TEST(EntityExtractionTest, FindsCompaniesAndNames) {
  auto entities = ExtractEntities(
      "yesterday Walldorf Systems GmbH signed with Jane Smith for 5000 EUR");
  bool company = false, person = false, money = false;
  for (const auto& e : entities) {
    if (e.kind == Entity::Kind::kCompany && e.text == "Walldorf Systems GmbH") {
      company = true;
    }
    if (e.kind == Entity::Kind::kPersonOrPlace && e.text == "Jane Smith") person = true;
    if (e.kind == Entity::Kind::kMoney && e.text == "5000") money = true;
  }
  EXPECT_TRUE(company);
  EXPECT_TRUE(person);
  EXPECT_TRUE(money);
}

TEST(EntityExtractionTest, FindsEmails) {
  auto entities = ExtractEntities("contact support at help.desk@example.com today");
  bool email = false;
  for (const auto& e : entities) {
    if (e.kind == Entity::Kind::kEmail) {
      EXPECT_EQ(e.text, "help.desk@example.com");
      email = true;
    }
  }
  EXPECT_TRUE(email);
}

TEST(SentimentTest, PolarityAndNegation) {
  EXPECT_GT(SentimentScore("this engine is great and reliable"), 0.5);
  EXPECT_LT(SentimentScore("terrible failure, everything is broken"), -0.5);
  EXPECT_LT(SentimentScore("this is not good"), 0);
  EXPECT_EQ(SentimentScore("neutral statement about tables"), 0);
}

TEST(NaiveBayesTest, LearnsSeparableClasses) {
  NaiveBayesClassifier clf;
  clf.Train("sports", "the team won the football match");
  clf.Train("sports", "great goal in the final game");
  clf.Train("tech", "the database engine compiles queries");
  clf.Train("tech", "in-memory column store performance");
  EXPECT_EQ(clf.Classify("column store queries"), "tech");
  EXPECT_EQ(clf.Classify("football final"), "sports");
  EXPECT_EQ(clf.num_labels(), 2u);
}

TEST(NaiveBayesTest, UntrainedReturnsEmpty) {
  NaiveBayesClassifier clf;
  EXPECT_EQ(clf.Classify("anything"), "");
}

TEST(TextEngineTest, RefreshIndexesNewRowsIncrementally) {
  Database db;
  TransactionManager tm;
  Schema s({ColumnDef("id", DataType::kInt64), ColumnDef("body", DataType::kString)});
  ColumnTable* docs = *db.CreateTable("docs", s);

  auto engine_or = TextEngine::Create(docs, "body");
  ASSERT_TRUE(engine_or.ok());
  TextEngine engine = *std::move(engine_or);

  auto t1 = tm.Begin();
  ASSERT_TRUE(tm.Insert(t1.get(), docs, {Value::Int(1), Value::Str("pump failure in hall A")}).ok());
  ASSERT_TRUE(tm.Commit(t1.get()).ok());
  EXPECT_EQ(engine.Refresh(), 1u);

  auto t2 = tm.Begin();
  ASSERT_TRUE(tm.Insert(t2.get(), docs, {Value::Int(2), Value::Str("pump maintenance done")}).ok());
  ASSERT_TRUE(tm.Commit(t2.get()).ok());
  EXPECT_EQ(engine.Refresh(), 1u);
  EXPECT_EQ(engine.Refresh(), 0u);  // nothing new

  auto hits = engine.Search("pump");
  EXPECT_EQ(hits.size(), 2u);
}

TEST(TextEngineTest, RejectsNonStringColumn) {
  Database db;
  Schema s({ColumnDef("id", DataType::kInt64)});
  ColumnTable* t = *db.CreateTable("t", s);
  EXPECT_FALSE(TextEngine::Create(t, "id").ok());
  EXPECT_FALSE(TextEngine::Create(t, "missing").ok());
}

TEST(TextEngineTest, EntityExtractionBridgesToRelational) {
  Database db;
  TransactionManager tm;
  Schema docs_schema({ColumnDef("id", DataType::kInt64), ColumnDef("body", DataType::kString)});
  ColumnTable* docs = *db.CreateTable("docs", docs_schema);
  Schema ent_schema({ColumnDef("doc_row", DataType::kInt64),
                     ColumnDef("kind", DataType::kString),
                     ColumnDef("entity", DataType::kString)});
  ColumnTable* entities = *db.CreateTable("entities", ent_schema);

  auto txn = tm.Begin();
  ASSERT_TRUE(tm.Insert(txn.get(), docs,
                        {Value::Int(1),
                         Value::Str("order from Acme Corp arrived in Hamburg today")})
                  .ok());
  ASSERT_TRUE(tm.Commit(txn.get()).ok());

  auto engine = TextEngine::Create(docs, "body");
  ASSERT_TRUE(engine.ok());
  engine->Refresh();
  auto written = engine->ExtractEntitiesTo(&tm, entities);
  ASSERT_TRUE(written.ok());
  EXPECT_GT(*written, 0u);
  // The structured side is now queryable like any other table.
  uint64_t company_rows = 0;
  ReadView now = tm.AutoCommitView();
  entities->ScanVisible(now, [&](uint64_t r) {
    if (entities->GetValue(r, 1).AsString() == "COMPANY") ++company_rows;
  });
  EXPECT_EQ(company_rows, 1u);
}

TEST(TextEngineTest, SentimentOfRow) {
  Database db;
  TransactionManager tm;
  Schema s({ColumnDef("body", DataType::kString)});
  ColumnTable* docs = *db.CreateTable("docs", s);
  auto txn = tm.Begin();
  ASSERT_TRUE(tm.Insert(txn.get(), docs, {Value::Str("excellent reliable service")}).ok());
  ASSERT_TRUE(tm.Commit(txn.get()).ok());
  auto engine = TextEngine::Create(docs, "body");
  ASSERT_TRUE(engine.ok());
  engine->Refresh();
  EXPECT_GT(engine->RowSentiment(0), 0.5);
}

}  // namespace
}  // namespace poly
