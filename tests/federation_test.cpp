#include <gtest/gtest.h>

#include "bfl/business_functions.h"
#include "federation/federation.h"
#include "hadoop/table_connector.h"

namespace poly {
namespace {

class FederationFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema s({ColumnDef("id", DataType::kInt64), ColumnDef("amount", DataType::kDouble)});
    remote_table_ = *remote_db_.CreateTable("sales", s);
    auto txn = remote_tm_.Begin();
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(remote_tm_.Insert(txn.get(), remote_table_,
                                    {Value::Int(i), Value::Dbl(i * 2.0)}).ok());
    }
    ASSERT_TRUE(remote_tm_.Commit(txn.get()).ok());
  }

  ExprPtr SmallIdPredicate() {
    return Expr::Compare(CmpOp::kLt, Expr::Column(0), Expr::Literal(Value::Int(10)));
  }

  Database remote_db_;
  TransactionManager remote_tm_;
  ColumnTable* remote_table_ = nullptr;
};

TEST_F(FederationFixture, PushdownShipsOnlyMatches) {
  FederationEngine fed;
  ASSERT_TRUE(fed.RegisterSource("v_sales",
                                 std::make_unique<RemoteTableSource>(
                                     &remote_db_, &remote_tm_, "sales", true))
                  .ok());
  auto rs = fed.ScanVirtual("v_sales", SmallIdPredicate());
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->num_rows(), 10u);
  ExternalSource* src = *fed.Source("v_sales");
  EXPECT_EQ(src->bytes_transferred(), 10u * 16u);  // 2 numeric cells/row
}

TEST_F(FederationFixture, NoPushdownShipsEverythingThenCompensates) {
  FederationEngine fed;
  ASSERT_TRUE(fed.RegisterSource("v_sales",
                                 std::make_unique<RemoteTableSource>(
                                     &remote_db_, &remote_tm_, "sales", false))
                  .ok());
  auto rs = fed.ScanVirtual("v_sales", SmallIdPredicate());
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->num_rows(), 10u);  // same answer...
  ExternalSource* src = *fed.Source("v_sales");
  EXPECT_EQ(src->bytes_transferred(), 100u * 16u);  // ...but 10x the traffic
}

TEST_F(FederationFixture, DfsFileSourceExposesTsvAsVirtualTable) {
  SimulatedDfs dfs;
  ASSERT_TRUE(dfs.Write("/ext/data.tsv", "k:INT64\tv:DOUBLE\n1\t1.5\n2\t2.5\n").ok());
  auto src = DfsFileSource::Open(&dfs, "/ext/data.tsv");
  ASSERT_TRUE(src.ok());
  FederationEngine fed;
  ASSERT_TRUE(fed.RegisterSource("v_ext", std::move(*src)).ok());
  auto all = fed.ScanVirtual("v_ext", nullptr);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->num_rows(), 2u);
  // Predicate is compensated locally (files can't push down).
  auto filtered = fed.ScanVirtual(
      "v_ext", Expr::Compare(CmpOp::kGt, Expr::Column(1), Expr::Literal(Value::Dbl(2.0))));
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(filtered->num_rows(), 1u);
}

TEST_F(FederationFixture, RegistryLifecycle) {
  FederationEngine fed;
  ASSERT_TRUE(fed.RegisterSource("a", std::make_unique<RemoteTableSource>(
                                          &remote_db_, &remote_tm_, "sales", true))
                  .ok());
  EXPECT_FALSE(fed.RegisterSource("a", std::make_unique<RemoteTableSource>(
                                           &remote_db_, &remote_tm_, "sales", true))
                   .ok());
  EXPECT_EQ(fed.SourceNames(), std::vector<std::string>{"a"});
  EXPECT_FALSE(fed.ScanVirtual("ghost", nullptr).ok());
  ASSERT_TRUE(fed.Unregister("a").ok());
  EXPECT_FALSE(fed.Unregister("a").ok());
}

// ---------- Business function library ----------

TEST(CurrencyTest, DirectInverseAndTriangulated) {
  CurrencyConverter fx;
  fx.AddRate("USD", "EUR", 0, 0.9);
  fx.AddRate("GBP", "EUR", 0, 1.2);
  EXPECT_DOUBLE_EQ(*fx.Convert(100, "USD", "EUR", 10), 90.0);
  // Inverse derived automatically.
  EXPECT_NEAR(*fx.Convert(90, "EUR", "USD", 10), 100.0, 1e-9);
  // USD -> GBP triangulates through EUR.
  EXPECT_NEAR(*fx.Convert(100, "USD", "GBP", 10), 100 * 0.9 / 1.2, 1e-9);
  EXPECT_DOUBLE_EQ(*fx.Convert(5, "EUR", "EUR", 10), 5.0);
  EXPECT_FALSE(fx.Convert(1, "USD", "JPY", 10).ok());
}

TEST(CurrencyTest, DateEffectiveRates) {
  CurrencyConverter fx;
  fx.AddRate("USD", "EUR", 100, 0.8);
  fx.AddRate("USD", "EUR", 200, 0.9);
  EXPECT_DOUBLE_EQ(*fx.Rate("USD", "EUR", 150, "EUR"), 0.8);
  EXPECT_DOUBLE_EQ(*fx.Rate("USD", "EUR", 200, "EUR"), 0.9);
  EXPECT_DOUBLE_EQ(*fx.Rate("USD", "EUR", 500, "EUR"), 0.9);
  EXPECT_FALSE(fx.Rate("USD", "EUR", 50, "EUR").ok());  // before first rate
}

TEST(CurrencyTest, ConvertedSumPushdown) {
  Database db;
  TransactionManager tm;
  Schema s({ColumnDef("amount", DataType::kDouble), ColumnDef("currency", DataType::kString)});
  ColumnTable* t = *db.CreateTable("orders", s);
  auto txn = tm.Begin();
  ASSERT_TRUE(tm.Insert(txn.get(), t, {Value::Dbl(100), Value::Str("USD")}).ok());
  ASSERT_TRUE(tm.Insert(txn.get(), t, {Value::Dbl(50), Value::Str("EUR")}).ok());
  ASSERT_TRUE(tm.Insert(txn.get(), t, {Value::Dbl(10), Value::Str("GBP")}).ok());
  ASSERT_TRUE(tm.Commit(txn.get()).ok());

  CurrencyConverter fx;
  fx.AddRate("USD", "EUR", 0, 0.9);
  fx.AddRate("GBP", "EUR", 0, 1.2);
  auto total = fx.ConvertedSum(*t, tm.AutoCommitView(), "amount", "currency", "EUR", 10);
  ASSERT_TRUE(total.ok());
  EXPECT_DOUBLE_EQ(*total, 100 * 0.9 + 50 + 10 * 1.2);
  // Unknown currency in the data surfaces as an error.
  auto txn2 = tm.Begin();
  ASSERT_TRUE(tm.Insert(txn2.get(), t, {Value::Dbl(1), Value::Str("XXX")}).ok());
  ASSERT_TRUE(tm.Commit(txn2.get()).ok());
  EXPECT_FALSE(fx.ConvertedSum(*t, tm.AutoCommitView(), "amount", "currency", "EUR", 10).ok());
}

TEST(UnitTest, ConversionsWithinDimension) {
  UnitConverter uc;
  uc.AddUnit("m", "m", 1);
  uc.AddUnit("km", "m", 1000);
  uc.AddUnit("cm", "m", 0.01);
  uc.AddUnit("kg", "kg", 1);
  EXPECT_DOUBLE_EQ(*uc.Convert(2, "km", "m"), 2000.0);
  EXPECT_DOUBLE_EQ(*uc.Convert(2000, "cm", "km"), 0.02);
  EXPECT_DOUBLE_EQ(*uc.Convert(5, "m", "m"), 5.0);
  EXPECT_FALSE(uc.Convert(1, "km", "kg").ok());  // different dimensions
  EXPECT_FALSE(uc.Convert(1, "mi", "m").ok());
}

TEST(FactoryCalendarTest, WorkingDays) {
  FactoryCalendar cal;
  // Day 0 = Thu 1970-01-01. Day 1 = Fri, 2 = Sat, 3 = Sun, 4 = Mon.
  EXPECT_TRUE(cal.IsWorkingDay(0));
  EXPECT_TRUE(cal.IsWorkingDay(1));
  EXPECT_FALSE(cal.IsWorkingDay(2));
  EXPECT_FALSE(cal.IsWorkingDay(3));
  EXPECT_TRUE(cal.IsWorkingDay(4));
  cal.AddHoliday(4);
  EXPECT_FALSE(cal.IsWorkingDay(4));
  // Next working day after Thu 0, skipping Fri-holiday? Add 1 working day
  // from day 1 (Fri): weekend + Monday holiday -> Tuesday (day 5).
  EXPECT_EQ(cal.AddWorkingDays(1, 1), 5);
  // Working days in the first week [0, 7): Thu, Fri, Tue(5), Wed(6) = 4
  // minus Monday holiday.
  EXPECT_EQ(cal.CountWorkingDays(0, 7), 4);
}

}  // namespace
}  // namespace poly
