#include <gtest/gtest.h>

#include <cstdio>
#include <map>

#include "soe/rdd.h"
#include "storage/backup.h"
#include "txn/transaction_manager.h"

namespace poly {
namespace {

class RddFixture : public ::testing::Test {
 protected:
  RddFixture() : cluster_(MakeOptions()) {
    Schema s({ColumnDef("sensor", DataType::kInt64),
              ColumnDef("value", DataType::kDouble)});
    (void)cluster_.CreateTable("readings", s, PartitionSpec::Hash("sensor", 4));
    std::vector<Row> rows;
    for (int i = 0; i < 100; ++i) {
      rows.push_back({Value::Int(i % 10), Value::Dbl(1.0 * i)});
    }
    (void)cluster_.CommitInserts("readings", rows);
  }

  static SoeCluster::Options MakeOptions() {
    SoeCluster::Options opts;
    opts.num_nodes = 2;
    return opts;
  }

  SoeCluster cluster_;
};

TEST_F(RddFixture, CollectAll) {
  auto rdd = SoeRdd::FromTable(&cluster_, "readings");
  auto rows = rdd.Collect();
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 100u);
  EXPECT_TRUE(rdd.FullyPushable());
}

TEST_F(RddFixture, WherePushedIntoScan) {
  auto rdd = SoeRdd::FromTable(&cluster_, "readings")
                 .Where(Expr::Compare(CmpOp::kLt, Expr::Column(0),
                                      Expr::Literal(Value::Int(3))));
  EXPECT_TRUE(rdd.FullyPushable());
  auto count = rdd.Count();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 30u);
}

TEST_F(RddFixture, FrameworkSideMapFilter) {
  auto rdd = SoeRdd::FromTable(&cluster_, "readings")
                 .Map([](const Row& r) {
                   return Row{r[0], Value::Dbl(r[1].NumericValue() * 2)};
                 })
                 .Filter([](const Row& r) { return r[1].NumericValue() >= 100; });
  EXPECT_FALSE(rdd.FullyPushable());
  auto rows = rdd.Collect();
  ASSERT_TRUE(rows.ok());
  // value*2 >= 100 -> original value >= 50 -> 50 rows.
  EXPECT_EQ(rows->size(), 50u);
  auto count = rdd.Count();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 50u);
}

TEST_F(RddFixture, WhereAfterMapStaysFrameworkSide) {
  auto rdd = SoeRdd::FromTable(&cluster_, "readings")
                 .Map([](const Row& r) { return r; })
                 .Where(Expr::Compare(CmpOp::kEq, Expr::Column(0),
                                      Expr::Literal(Value::Int(1))));
  EXPECT_FALSE(rdd.FullyPushable());
  auto count = rdd.Count();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 10u);
}

TEST_F(RddFixture, AggregatePushedVsFrameworkSideAgree) {
  AggSpec sum{AggFunc::kSum, Expr::Column(1), "sum"};
  AggSpec cnt{AggFunc::kCount, nullptr, "cnt"};

  auto pushed = SoeRdd::FromTable(&cluster_, "readings")
                    .AggregateByKey("sensor", {sum, cnt});
  ASSERT_TRUE(pushed.ok());

  // Identity map forces the framework-side path.
  auto framework = SoeRdd::FromTable(&cluster_, "readings")
                       .Map([](const Row& r) { return r; })
                       .AggregateByKey("sensor", {sum, cnt});
  ASSERT_TRUE(framework.ok());

  ASSERT_EQ(pushed->num_rows(), framework->num_rows());
  auto sort_rows = [](ResultSet* rs) {
    std::sort(rs->rows.begin(), rs->rows.end(),
              [](const Row& a, const Row& b) { return a[0] < b[0]; });
  };
  sort_rows(&*pushed);
  sort_rows(&*framework);
  for (size_t i = 0; i < pushed->num_rows(); ++i) {
    EXPECT_EQ(pushed->rows[i][0], framework->rows[i][0]);
    EXPECT_DOUBLE_EQ(pushed->rows[i][1].NumericValue(),
                     framework->rows[i][1].NumericValue());
    EXPECT_EQ(pushed->rows[i][2].NumericValue(), framework->rows[i][2].NumericValue());
  }
}

TEST(BackupTest, SnapshotRoundTrip) {
  Database db;
  TransactionManager tm;
  ColumnTable* a = *db.CreateTable(
      "a", Schema({ColumnDef("k", DataType::kInt64), ColumnDef("v", DataType::kString)}));
  ColumnTable* b = *db.CreateTable("b", Schema({ColumnDef("x", DataType::kDouble)}));
  auto txn = tm.Begin();
  ASSERT_TRUE(tm.Insert(txn.get(), a, {Value::Int(1), Value::Str("one")}).ok());
  ASSERT_TRUE(tm.Insert(txn.get(), a, {Value::Int(2), Value::Str("two")}).ok());
  ASSERT_TRUE(tm.Insert(txn.get(), b, {Value::Dbl(3.5)}).ok());
  ASSERT_TRUE(tm.Commit(txn.get()).ok());
  auto d = tm.Begin();
  ASSERT_TRUE(tm.Delete(d.get(), a, 0).ok());
  ASSERT_TRUE(tm.Commit(d.get()).ok());

  std::string snapshot = SerializeDatabase(db);
  Database restored;
  ASSERT_TRUE(DeserializeDatabase(snapshot, &restored).ok());
  ColumnTable* ra = *restored.GetTable("a");
  ColumnTable* rb = *restored.GetTable("b");
  // MVCC stamps preserved: deleted row stays deleted.
  EXPECT_EQ(ra->CountVisible(LatestCommittedView()), 1u);
  EXPECT_EQ(rb->CountVisible(LatestCommittedView()), 1u);
  int64_t k = 0;
  ra->ScanVisible(LatestCommittedView(), [&](uint64_t r) { k = ra->GetValue(r, 0).AsInt(); });
  EXPECT_EQ(k, 2);
}

TEST(BackupTest, FileRoundTripAndCorruptionDetected) {
  Database db;
  TransactionManager tm;
  ColumnTable* t = *db.CreateTable("t", Schema({ColumnDef("k", DataType::kInt64)}));
  auto txn = tm.Begin();
  ASSERT_TRUE(tm.Insert(txn.get(), t, {Value::Int(9)}).ok());
  ASSERT_TRUE(tm.Commit(txn.get()).ok());

  std::string path = testing::TempDir() + "/poly_backup_test.bin";
  ASSERT_TRUE(BackupDatabaseToFile(db, path).ok());
  Database restored;
  ASSERT_TRUE(RestoreDatabaseFromFile(path, &restored).ok());
  EXPECT_TRUE(restored.GetTable("t").ok());

  // Garbage file rejected.
  FILE* f = std::fopen(path.c_str(), "wb");
  std::fwrite("garbage", 1, 7, f);
  std::fclose(f);
  Database bad;
  EXPECT_FALSE(RestoreDatabaseFromFile(path, &bad).ok());
  std::remove(path.c_str());
}

// Backup -> inject faults -> restore: a snapshot taken before the chaos
// must restore to exactly the pre-fault state, untouched by the drops,
// crash, and extra commits that happen after it was taken.
TEST_F(RddFixture, BackupRestoreSurvivesFaultInjection) {
  const Database& db0 = cluster_.node(0)->db();
  auto fingerprint = [](const Database& db, const std::string& table) {
    ColumnTable* t = *db.GetTable(table);
    uint64_t count = 0;
    double sum = 0;
    t->ScanVisible(LatestCommittedView(), [&](uint64_t r) {
      ++count;
      sum += t->GetValue(r, 1).NumericValue();
    });
    return std::make_pair(count, sum);
  };
  std::map<std::string, std::pair<uint64_t, double>> pre_state;
  for (const auto& hosted : cluster_.node(0)->HostedPartitions()) {
    std::string pt = PartitionTableName(hosted.first, hosted.second);
    pre_state[pt] = fingerprint(db0, pt);
  }
  std::string path = testing::TempDir() + "/poly_chaos_backup.bin";
  ASSERT_TRUE(BackupDatabaseToFile(db0, path).ok());

  // Post-backup chaos: lossy network, more committed writes, a node crash.
  SimulatedNetwork::Options lossy = cluster_.network().options();
  lossy.drop_probability = 0.3;
  cluster_.network().set_options(lossy);
  std::vector<Row> more;
  for (int i = 0; i < 60; ++i) {
    more.push_back({Value::Int(i % 10), Value::Dbl(1000.0 + i)});
  }
  ASSERT_TRUE(cluster_.CommitInserts("readings", more).ok());
  ASSERT_TRUE(cluster_.KillNode(1).ok());
  lossy.drop_probability = 0;
  cluster_.network().set_options(lossy);
  cluster_.network().HealAll();
  ASSERT_TRUE(cluster_.RestartNode(1).ok());
  ASSERT_TRUE(cluster_.Rebalance().ok());

  Database restored;
  ASSERT_TRUE(RestoreDatabaseFromFile(path, &restored).ok());
  for (const auto& entry : pre_state) {
    ASSERT_TRUE(restored.GetTable(entry.first).ok()) << entry.first;
    // Counts and contents match the pre-fault snapshot exactly: nothing
    // from the faulty epoch leaked in.
    auto got = fingerprint(restored, entry.first);
    EXPECT_EQ(got.first, entry.second.first) << entry.first;
    EXPECT_DOUBLE_EQ(got.second, entry.second.second) << entry.first;
  }

  // Meanwhile the live cluster moved past the snapshot and healed fully.
  auto count = SoeRdd::FromTable(&cluster_, "readings").Count();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 160u);
  std::remove(path.c_str());
}

TEST(BackupTest, RestoreIntoConflictingDatabaseFails) {
  Database db;
  (void)db.CreateTable("t", Schema({ColumnDef("k", DataType::kInt64)}));
  std::string snapshot = SerializeDatabase(db);
  Database conflict;
  (void)conflict.CreateTable("t", Schema({ColumnDef("k", DataType::kInt64)}));
  EXPECT_EQ(DeserializeDatabase(snapshot, &conflict).code(), StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace poly
