// Concurrency harness for poly::ThreadPool: dispatch correctness, error
// propagation, shutdown draining, and the Submit/destructor wake-up
// protocol. Runs under -fsanitize=thread via `ctest -L concurrency`.

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace poly {
namespace {

TEST(ThreadPoolTest, ParallelForZeroIterationsReturnsImmediately) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  EXPECT_TRUE(pool.ParallelForStatus(0, [&](size_t) {
                    ++calls;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, ParallelForFewerIterationsThanThreads) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.ParallelFor(3, [&](size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForManyMoreIterationsThanThreads) {
  ThreadPool pool(2);
  constexpr size_t kN = 50000;
  std::vector<std::atomic<uint8_t>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForCustomGrainCoversEveryIndexOnce) {
  ThreadPool pool(3);
  for (size_t grain : {size_t{1}, size_t{7}, size_t{100000}}) {
    std::vector<std::atomic<uint8_t>> hits(1000);
    pool.ParallelFor(hits.size(), [&](size_t i) { ++hits[i]; }, grain);
    for (size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "grain " << grain << " index " << i;
    }
  }
}

TEST(ThreadPoolTest, TaskExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  EXPECT_THROW(pool.ParallelFor(1000,
                                [&](size_t i) {
                                  ++calls;
                                  if (i == 137) throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  EXPECT_GE(calls.load(), 1);
  // The pool survives the failed run and stays usable.
  std::atomic<int> after{0};
  pool.ParallelFor(64, [&](size_t) { ++after; });
  EXPECT_EQ(after.load(), 64);
}

TEST(ThreadPoolTest, ParallelForStatusSurfacesLowestFailingChunk) {
  ThreadPool pool(4);
  // Chunks are claimed in increasing order, so with grain=1 the error from
  // index 10 must win over the error from index 20, deterministically.
  Status s = pool.ParallelForStatus(
      64,
      [&](size_t i) {
        if (i == 10) return Status::Internal("error at 10");
        if (i == 20) return Status::Internal("error at 20");
        return Status::OK();
      },
      /*grain=*/1);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("error at 10"), std::string::npos) << s.ToString();
}

TEST(ThreadPoolTest, ParallelForStatusOkWhenAllChunksSucceed) {
  ThreadPool pool(4);
  std::atomic<size_t> sum{0};
  Status s = pool.ParallelForStatus(1000, [&](size_t i) {
    sum += i;
    return Status::OK();
  });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(sum.load(), 1000u * 999 / 2);
}

TEST(ThreadPoolTest, ParallelForFromInsideAPoolTaskDoesNotDeadlock) {
  // The calling thread participates as a runner, so a nested ParallelFor on
  // a fully-busy (even single-worker) pool still completes.
  ThreadPool pool(1);
  std::atomic<int> inner{0};
  auto fut = pool.Submit([&]() {
    pool.ParallelFor(100, [&](size_t) { ++inner; });
  });
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(30)), std::future_status::ready);
  fut.get();
  EXPECT_EQ(inner.load(), 100);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasksWithoutDeadlock) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 64; ++i) {
      (void)pool.Submit([&ran]() {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        ++ran;
      });
    }
    // Destruction begins with most tasks still queued; the drain protocol
    // runs every one of them before joining.
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, SingleWorkerExecutesFifo) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i) {
    futs.push_back(pool.Submit([&order, i]() { order.push_back(i); }));
  }
  for (auto& f : futs) f.get();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, SubmitUnderContentionKeepsFifoLiveness) {
  // Several submitter threads flood the queue; every task must complete
  // (FIFO dispatch cannot starve an early submission behind later ones).
  ThreadPool pool(2);
  constexpr int kSubmitters = 4;
  constexpr int kTasksEach = 200;
  std::atomic<int> done{0};
  std::vector<std::thread> submitters;
  std::vector<std::vector<std::future<void>>> futs(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s]() {
      for (int i = 0; i < kTasksEach; ++i) {
        futs[s].push_back(pool.Submit([&done]() { ++done; }));
      }
    });
  }
  for (auto& t : submitters) t.join();
  for (auto& per_thread : futs) {
    for (auto& f : per_thread) {
      ASSERT_EQ(f.wait_for(std::chrono::seconds(30)), std::future_status::ready);
    }
  }
  EXPECT_EQ(done.load(), kSubmitters * kTasksEach);
}

// Regression for the Submit/destruction wake-up race: a thread that
// observes a submitted task's side effects may destroy the pool while the
// submitting thread is still returning from Submit. Pre-fix, Submit called
// cv_.notify_one() after releasing the mutex, so the notify could land on
// a condition variable mid-destruction (use-after-free under TSan). The
// documented protocol (notify while holding mu_; the destructor acquires
// mu_ first) makes this loop race-free.
TEST(ThreadPoolTest, ConstructDestructLoopRacingSubmitTail) {
  for (int iter = 0; iter < 300; ++iter) {
    auto pool = std::make_unique<ThreadPool>(2);
    std::atomic<bool> task_ran{false};
    std::thread submitter([&]() {
      (void)pool->Submit([&task_ran]() { task_ran = true; });
    });
    // Destroy the pool the moment the task's side effect is visible — the
    // submitter may still be inside Submit's return path at this point.
    while (!task_ran.load()) std::this_thread::yield();
    pool.reset();
    submitter.join();
  }
}

}  // namespace
}  // namespace poly
