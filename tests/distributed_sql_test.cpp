#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "query/executor.h"
#include "query/optimizer.h"
#include "query/sql_parser.h"
#include "soe/sql_bridge.h"
#include "storage/mvcc.h"
#include "txn/transaction_manager.h"

namespace poly {
namespace {

// ---------- helpers ----------

/// Rows as a sorted multiset for order-insensitive comparison.
std::vector<Row> SortedRows(const ResultSet& rs) {
  std::vector<Row> rows = rs.rows;
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      if (a[i] < b[i]) return true;
      if (b[i] < a[i]) return false;
    }
    return a.size() < b.size();
  });
  return rows;
}

std::string RowsToString(const std::vector<Row>& rows, size_t max_rows = 8) {
  std::string out;
  for (size_t i = 0; i < rows.size() && i < max_rows; ++i) {
    out += "  [";
    for (size_t c = 0; c < rows[i].size(); ++c) {
      if (c) out += ", ";
      out += rows[i][c].ToString();
    }
    out += "]\n";
  }
  if (rows.size() > max_rows) out += "  ... (" + std::to_string(rows.size()) + " total)\n";
  return out;
}

// ---------- fixture: 4-node cluster + single-node mirror ----------

/// The oracle setup: every committed row goes both to the distributed
/// cluster and to a single-node mirror database, so any SQL statement can
/// be checked for row-set equality between the distributed execution and
/// the local executor over the union of the data. All value columns are
/// integers — partial-aggregate merging is then exact, so the comparison
/// is equality, not tolerance.
class DistributedSqlFixture : public ::testing::Test {
 protected:
  DistributedSqlFixture() : cluster_(MakeOptions()), bridge_(&cluster_) {}

  static SoeCluster::Options MakeOptions() {
    SoeCluster::Options opts;
    opts.num_nodes = 4;
    return opts;
  }

  void CreateBothTables(const std::string& name, const Schema& schema,
                        const PartitionSpec& spec, int replication) {
    ASSERT_TRUE(cluster_.CreateTable(name, schema, spec, replication).ok());
    ASSERT_TRUE(local_.CreateTable(name, schema).ok());
  }

  void CommitBoth(const std::string& table, const std::vector<Row>& rows) {
    ASSERT_TRUE(cluster_.CommitInserts(table, rows).ok());
    ColumnTable* t = *local_.GetTable(table);
    auto txn = tm_.Begin();
    for (const Row& row : rows) ASSERT_TRUE(tm_.Insert(txn.get(), t, row).ok());
    ASSERT_TRUE(tm_.Commit(txn.get()).ok());
  }

  /// fact(k1, k2, v): 1000 rows, k1 in [0,10), k2 in [0,20), v = i.
  /// dim(id, w): 20 rows covering every k2, w = id * 7.
  void LoadStarSchema(int replication = 2) {
    CreateBothTables("fact",
                     Schema({ColumnDef("k1", DataType::kInt64),
                             ColumnDef("k2", DataType::kInt64),
                             ColumnDef("v", DataType::kInt64)}),
                     PartitionSpec::Hash("k1", 8), replication);
    CreateBothTables("dim",
                     Schema({ColumnDef("id", DataType::kInt64),
                             ColumnDef("w", DataType::kInt64)}),
                     PartitionSpec::Hash("id", 4), replication);
    std::vector<Row> fact;
    for (int i = 0; i < 1000; ++i) {
      fact.push_back({Value::Int(i % 10), Value::Int(i % 20), Value::Int(i)});
    }
    CommitBoth("fact", fact);
    std::vector<Row> dim;
    for (int i = 0; i < 20; ++i) {
      dim.push_back({Value::Int(i), Value::Int(i * 7)});
    }
    CommitBoth("dim", dim);
  }

  /// Ground truth: the same SQL through parser + optimizer + the
  /// single-node executor over the mirror database.
  StatusOr<ResultSet> Local(const std::string& sql) {
    SqlParser parser(&local_);
    POLY_ASSIGN_OR_RETURN(PlanPtr plan, parser.Parse(sql));
    Optimizer opt(nullptr, &local_);
    plan = opt.Optimize(plan);
    Executor exec(&local_, tm_.AutoCommitView());
    return exec.Execute(plan);
  }

  void ExpectSameRows(const std::string& sql, const char* context) {
    auto dist = bridge_.Execute(sql);
    ASSERT_TRUE(dist.ok()) << context << ": " << sql << "\n"
                           << dist.status().ToString();
    auto base = Local(sql);
    ASSERT_TRUE(base.ok()) << context << ": " << sql << "\n"
                           << base.status().ToString();
    std::vector<Row> got = SortedRows(*dist);
    std::vector<Row> want = SortedRows(*base);
    ASSERT_EQ(got.size(), want.size())
        << context << ": " << sql << "\nplan:\n" << bridge_.AnnotatedPlan();
    EXPECT_EQ(got, want) << context << ": " << sql << "\ngot:\n"
                         << RowsToString(got) << "want:\n" << RowsToString(want)
                         << "plan:\n" << bridge_.AnnotatedPlan();
  }

  SoeCluster cluster_;
  SoeSqlBridge bridge_;
  Database local_;
  TransactionManager tm_;
};

// ---------- seeded oracle ----------

TEST_F(DistributedSqlFixture, DistributedSqlOracleFiftySeeds) {
  LoadStarSchema();
  // Half the seeds force the repartition path so both join strategies are
  // under oracle coverage (dim is small enough to broadcast by default).
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    std::mt19937_64 rng(seed);
    DistributedPlanner::Options popts;
    popts.broadcast_threshold_rows = (seed % 2 == 0) ? 0 : 2048;
    bridge_.set_planner_options(popts);
    int c = static_cast<int>(rng() % 1000);
    int k = static_cast<int>(rng() % 20);
    int k1 = static_cast<int>(rng() % 10);
    std::string sql;
    switch (rng() % 6) {
      case 0:
        sql = "SELECT k1, k2, SUM(v) AS s, COUNT(*) AS c FROM fact WHERE v < " +
              std::to_string(c) + " GROUP BY k1, k2";
        break;
      case 1:
        sql = "SELECT k1, SUM(v) AS s, AVG(v) AS a FROM fact WHERE k2 = " +
              std::to_string(k) + " GROUP BY k1";
        break;
      case 2:
        sql = "SELECT COUNT(*) AS c, SUM(v) AS s, MIN(v) AS lo, MAX(v) AS hi "
              "FROM fact WHERE k1 < " + std::to_string(k1);
        break;
      case 3:
        sql = "SELECT w, SUM(v) AS s, COUNT(*) AS c FROM fact "
              "JOIN dim ON k2 = id WHERE v < " + std::to_string(c) +
              " GROUP BY w";
        break;
      case 4:
        sql = "SELECT k1, w, v FROM fact JOIN dim ON k2 = id WHERE v < " +
              std::to_string(c % 100);
        break;
      default:
        sql = "SELECT k2, v FROM fact WHERE v >= " + std::to_string(c);
        break;
    }
    ExpectSameRows(sql, ("seed " + std::to_string(seed)).c_str());
  }
}

// ---------- strategy assertions (acceptance criteria) ----------

TEST_F(DistributedSqlFixture, TwoKeyGroupByRunsDistributed) {
  LoadStarSchema();
  ExpectSameRows(
      "SELECT k1, k2, SUM(v) AS s FROM fact GROUP BY k1, k2",
      "two-key group by");
  EXPECT_NE(bridge_.AnnotatedPlan().find("two-phase-aggregate"),
            std::string::npos)
      << bridge_.AnnotatedPlan();
  EXPECT_EQ(bridge_.AnnotatedPlan().find("strategy=gather"), std::string::npos)
      << bridge_.AnnotatedPlan();
  // The repartition stage really shuffled partials between nodes.
  EXPECT_GT(cluster_.last_query_stats().fragments, 0u);
}

TEST_F(DistributedSqlFixture, EquiJoinBroadcastsSmallSide) {
  LoadStarSchema();
  ExpectSameRows(
      "SELECT w, SUM(v) AS s FROM fact JOIN dim ON k2 = id GROUP BY w",
      "broadcast join");
  EXPECT_NE(bridge_.AnnotatedPlan().find("broadcast-join"), std::string::npos)
      << bridge_.AnnotatedPlan();
  EXPECT_EQ(bridge_.AnnotatedPlan().find("strategy=gather"), std::string::npos)
      << bridge_.AnnotatedPlan();
}

TEST_F(DistributedSqlFixture, EquiJoinShufflesWhenBothSidesLarge) {
  LoadStarSchema();
  DistributedPlanner::Options popts;
  popts.broadcast_threshold_rows = 0;  // force the repartition path
  bridge_.set_planner_options(popts);
  ExpectSameRows(
      "SELECT k1, w, v FROM fact JOIN dim ON k2 = id WHERE v < 50",
      "shuffle join");
  EXPECT_NE(bridge_.AnnotatedPlan().find("shuffle-join"), std::string::npos)
      << bridge_.AnnotatedPlan();
  EXPECT_GT(cluster_.last_query_stats().shuffle_bytes, 0u);
}

TEST_F(DistributedSqlFixture, ShuffledJoinMovesFewerCoordinatorBytesThanGather) {
  LoadStarSchema();
  metrics::Counter* gathered_bytes =
      cluster_.metrics().counter("soe.dqp.result_bytes");
  const std::string sql =
      "SELECT w, SUM(v) AS s FROM fact JOIN dim ON k2 = id GROUP BY w";

  uint64_t before = gathered_bytes->Value();
  ASSERT_TRUE(bridge_.Execute(sql).ok());
  uint64_t distributed = gathered_bytes->Value() - before;

  bridge_.set_force_gather(true);
  before = gathered_bytes->Value();
  ASSERT_TRUE(bridge_.Execute(sql).ok());
  uint64_t gather = gathered_bytes->Value() - before;
  bridge_.set_force_gather(false);

  // Distributed execution gathers 20 aggregate rows; gather-and-execute
  // ships all 1020 base rows to the coordinator.
  EXPECT_LT(distributed, gather)
      << "distributed=" << distributed << " gather=" << gather;
}

TEST_F(DistributedSqlFixture, AnnotatedPlanRecordsGatherFallback) {
  LoadStarSchema();
  // Three-way join: nested HashJoin input is beyond the planner's placeable
  // shapes, so the bridge must take (and record) the explicit last resort.
  auto rs = bridge_.Execute(
      "SELECT w FROM fact JOIN dim ON k2 = id JOIN dim ON k2 = id");
  if (rs.ok()) {
    EXPECT_NE(bridge_.AnnotatedPlan().find("strategy=gather"),
              std::string::npos)
        << bridge_.AnnotatedPlan();
  }
}

// ---------- satellite 1 regression: double-scan predicate pushdown ----------

TEST_F(DistributedSqlFixture, GatherOrCombinesPredicatesOfDoubleScans) {
  LoadStarSchema(/*replication=*/1);
  // Self-join beyond the SQL grammar: low rows joined to high rows on k1.
  // Before the fix, a table scanned twice was gathered UNFILTERED; now the
  // two scan predicates are OR-combined, each scan re-applies its own
  // predicate against the staged rows, and far fewer bytes move.
  ExprPtr low = Expr::Compare(CmpOp::kLt, Expr::Column(2), Expr::Literal(Value::Int(100)));
  ExprPtr high = Expr::Compare(CmpOp::kGe, Expr::Column(2), Expr::Literal(Value::Int(900)));
  PlanPtr left = PlanBuilder::Scan("fact").Build();
  left->scan_predicate = low;
  PlanPtr right = PlanBuilder::Scan("fact").Build();
  right->scan_predicate = high;
  PlanPtr join =
      PlanBuilder::From(std::move(left)).HashJoin(std::move(right), 0, 0).Build();

  metrics::Counter* gathered_bytes =
      cluster_.metrics().counter("soe.dqp.result_bytes");
  uint64_t before = gathered_bytes->Value();
  auto rs = bridge_.GatherAndExecute(join);
  uint64_t pushed = gathered_bytes->Value() - before;
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();

  // Ground truth on the mirror: 100 low rows x 10 high rows per k1 group.
  size_t expect = 0;
  for (int a = 0; a < 1000; ++a) {
    if (a >= 100) continue;
    for (int b = 900; b < 1000; ++b) {
      if (a % 10 == b % 10) ++expect;
    }
  }
  EXPECT_EQ(rs->num_rows(), expect);

  // An unfiltered gather of `fact` (what the old code shipped for every
  // multiply-scanned table) moves strictly more coordinator bytes.
  before = gathered_bytes->Value();
  ASSERT_TRUE(cluster_.DistributedScan("fact", nullptr).ok());
  uint64_t unfiltered = gathered_bytes->Value() - before;
  EXPECT_LT(pushed, unfiltered) << "pushed=" << pushed
                                << " unfiltered=" << unfiltered;
}

// ---------- chaos: node killed mid-shuffle ----------

TEST_F(DistributedSqlFixture, ChaosNodeKillMidShuffleStillMatchesOracle) {
  LoadStarSchema(/*replication=*/2);
  DistributedPlanner::Options popts;
  popts.broadcast_threshold_rows = 0;  // repartition path: real shuffles
  bridge_.set_planner_options(popts);

  // Schedule the kill a hair after the query starts: the clock only moves
  // with message traffic, so the crash fires at a task boundary in the
  // middle of the shuffle. Replication 2 keeps every partition readable;
  // per-task failover plus the bridge's re-plan must still produce the
  // oracle answer.
  uint64_t now = cluster_.network().virtual_nanos();
  cluster_.InstallFaultSchedule(FaultSchedule(
      {{now + 2000, FaultEvent::Kind::kCrashNode, 1, -1, 0.0}}));

  const std::string sql =
      "SELECT w, SUM(v) AS s, COUNT(*) AS c FROM fact JOIN dim ON k2 = id "
      "GROUP BY w";
  auto dist = bridge_.Execute(sql);
  ASSERT_TRUE(dist.ok()) << dist.status().ToString() << "\nplan:\n"
                         << bridge_.AnnotatedPlan();
  EXPECT_GT(cluster_.fault_events_fired(), 0u);

  auto base = Local(sql);
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(SortedRows(*dist), SortedRows(*base))
      << "plan:\n" << bridge_.AnnotatedPlan();
}

// ---------- executor unit tests: partial/final aggregate operators ----------

TEST(PartialAggExecutor, TwoPhaseMatchesDirectAggregate) {
  Database db;
  TransactionManager tm;
  ColumnTable* t = *db.CreateTable("t", Schema({ColumnDef("g", DataType::kInt64),
                                                ColumnDef("v", DataType::kInt64)}));
  auto txn = tm.Begin();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(tm.Insert(txn.get(), t, {Value::Int(i % 5), Value::Int(i)}).ok());
  }
  ASSERT_TRUE(tm.Commit(txn.get()).ok());

  std::vector<AggSpec> aggs = {{AggFunc::kSum, Expr::Column(1), "s"},
                               {AggFunc::kCount, nullptr, "c"},
                               {AggFunc::kAvg, Expr::Column(1), "a"},
                               {AggFunc::kMin, Expr::Column(1), "lo"},
                               {AggFunc::kMax, Expr::Column(1), "hi"}};
  Executor exec(&db, tm.AutoCommitView());
  auto direct = exec.Execute(
      PlanBuilder::Scan("t").Aggregate({0}, aggs).Build());
  ASSERT_TRUE(direct.ok());

  // Phase 1 (with a pass-through Exchange on top, as fragments carry it).
  auto partial = exec.Execute(PlanBuilder::Scan("t")
                                  .PartialAggregate({0}, aggs)
                                  .Exchange(ExchangeMode::kRepartition, {0})
                                  .Build());
  ASSERT_TRUE(partial.ok());
  PartialAggLayout layout = PartialAggLayout::For(aggs);
  ASSERT_EQ(partial->rows[0].size(), 1 + layout.num_slots());

  // Stage the partials (as ExecuteFragment would) and run phase 2.
  std::vector<ColumnDef> defs;
  for (size_t c = 0; c < 1 + layout.num_slots(); ++c) {
    defs.emplace_back("_c" + std::to_string(c), DataType::kInt64);
  }
  ColumnTable* stage = *db.CreateTable("stage", Schema(std::move(defs)));
  for (const Row& row : partial->rows) {
    ASSERT_TRUE(stage->AppendVersion(row, 1).ok());
  }
  Executor exec2(&db, LatestCommittedView());
  auto final_rs = exec2.Execute(
      PlanBuilder::Scan("stage").FinalAggregate({0}, aggs).Build());
  ASSERT_TRUE(final_rs.ok()) << final_rs.status().ToString();

  EXPECT_EQ(SortedRows(*direct), SortedRows(*final_rs));
  EXPECT_EQ(final_rs->column_names,
            (std::vector<std::string>{"_c0", "s", "c", "a", "lo", "hi"}));
}

TEST(PartialAggExecutor, GlobalAggregateOverEmptyInputFinalizesToNulls) {
  Database db;
  TransactionManager tm;
  (void)*db.CreateTable("t", Schema({ColumnDef("v", DataType::kInt64)}));

  std::vector<AggSpec> aggs = {{AggFunc::kSum, Expr::Column(0), "s"},
                               {AggFunc::kCount, nullptr, "c"},
                               {AggFunc::kAvg, Expr::Column(0), "a"}};
  Executor exec(&db, tm.AutoCommitView());
  auto partial =
      exec.Execute(PlanBuilder::Scan("t").PartialAggregate({}, aggs).Build());
  ASSERT_TRUE(partial.ok());
  ASSERT_EQ(partial->num_rows(), 1u);  // global aggregate: one row, even empty

  PartialAggLayout layout = PartialAggLayout::For(aggs);
  std::vector<ColumnDef> defs;
  for (size_t c = 0; c < layout.num_slots(); ++c) {
    defs.emplace_back("_c" + std::to_string(c), DataType::kInt64);
  }
  ColumnTable* stage = *db.CreateTable("stage", Schema(std::move(defs)));
  for (const Row& row : partial->rows) ASSERT_TRUE(stage->AppendVersion(row, 1).ok());
  Executor exec2(&db, LatestCommittedView());
  auto final_rs = exec2.Execute(
      PlanBuilder::Scan("stage").FinalAggregate({}, aggs).Build());
  ASSERT_TRUE(final_rs.ok()) << final_rs.status().ToString();
  ASSERT_EQ(final_rs->num_rows(), 1u);
  EXPECT_TRUE(final_rs->rows[0][0].is_null());      // SUM of nothing
  EXPECT_EQ(final_rs->rows[0][1], Value::Int(0));   // COUNT of nothing
  EXPECT_TRUE(final_rs->rows[0][2].is_null());      // AVG of nothing
}

TEST(PartialAggExecutor, ExchangeIsPassThrough) {
  Database db;
  TransactionManager tm;
  ColumnTable* t = *db.CreateTable("t", Schema({ColumnDef("v", DataType::kInt64)}));
  auto txn = tm.Begin();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(tm.Insert(txn.get(), t, {Value::Int(i)}).ok());
  }
  ASSERT_TRUE(tm.Commit(txn.get()).ok());
  Executor exec(&db, tm.AutoCommitView());
  auto rs = exec.Execute(
      PlanBuilder::Scan("t").Exchange(ExchangeMode::kBroadcast).Build());
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->num_rows(), 10u);
}

}  // namespace
}  // namespace poly
