#include <gtest/gtest.h>

#include "common/serializer.h"
#include "types/value_serde.h"
#include "storage/column.h"
#include "storage/column_table.h"
#include "storage/database.h"
#include "storage/dictionary.h"
#include "storage/row_table.h"

namespace poly {
namespace {

TEST(ValueSerdeTest, AllTypesRoundTrip) {
  std::vector<Value> values = {
      Value::Null(),
      Value::Int(-42),
      Value::Int(INT64_MAX),
      Value::Dbl(3.14159),
      Value::Dbl(-0.0),
      Value::Boolean(true),
      Value::Boolean(false),
      Value::Str(""),
      Value::Str("hello\tworld\n"),
      Value::Timestamp(1234567890123456),
      Value::GeoPoint(-122.42, 37.77),
      Value::Document(R"({"k":[1,2]})"),
  };
  Serializer s;
  for (const Value& v : values) WriteValue(&s, v);
  Deserializer d(s.data());
  for (const Value& v : values) {
    auto back = ReadValue(&d);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, v);
    EXPECT_EQ(back->type(), v.type());  // timestamp/document tags preserved
  }
  EXPECT_TRUE(d.AtEnd());
  // Truncated payload is an error, not UB.
  Deserializer trunc(s.data().data(), 3);
  (void)trunc.GetU8();
  EXPECT_FALSE(ReadValue(&trunc).ok() && false);  // just must not crash
}

TEST(SortedDictionaryTest, LookupAndBounds) {
  SortedDictionary d({Value::Int(1), Value::Int(5), Value::Int(9)});
  EXPECT_EQ(*d.Lookup(Value::Int(5)), 1u);
  EXPECT_FALSE(d.Lookup(Value::Int(4)).has_value());
  EXPECT_EQ(d.LowerBound(Value::Int(5)), 1u);
  EXPECT_EQ(d.UpperBound(Value::Int(5)), 2u);
  EXPECT_EQ(d.LowerBound(Value::Int(100)), 3u);
}

TEST(SortedDictionaryTest, AllGreaterThanMax) {
  SortedDictionary d({Value::Int(1), Value::Int(5)});
  EXPECT_TRUE(d.AllGreaterThanMax({Value::Int(6), Value::Int(7)}));
  EXPECT_FALSE(d.AllGreaterThanMax({Value::Int(5)}));
  EXPECT_FALSE(d.AllGreaterThanMax({Value::Int(3), Value::Int(10)}));
  SortedDictionary empty;
  EXPECT_TRUE(empty.AllGreaterThanMax({Value::Int(0)}));
}

TEST(DeltaDictionaryTest, FirstComeIds) {
  DeltaDictionary d;
  EXPECT_EQ(d.GetOrAdd(Value::Str("b")), 0u);
  EXPECT_EQ(d.GetOrAdd(Value::Str("a")), 1u);
  EXPECT_EQ(d.GetOrAdd(Value::Str("b")), 0u);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(*d.Lookup(Value::Str("a")), 1u);
  EXPECT_FALSE(d.Lookup(Value::Str("zzz")).has_value());
}

TEST(ColumnTest, AppendAndGetFromDelta) {
  Column col;
  col.Append(Value::Str("x"));
  col.Append(Value::Str("y"));
  col.Append(Value::Str("x"));
  EXPECT_EQ(col.size(), 3u);
  EXPECT_EQ(col.main_size(), 0u);
  EXPECT_EQ(col.Get(0), Value::Str("x"));
  EXPECT_EQ(col.Get(2), Value::Str("x"));
  // Two distinct values, three rows.
  EXPECT_EQ(col.delta_dictionary().size(), 2u);
}

TEST(ColumnTest, MergeMovesDeltaToSortedMain) {
  Column col;
  col.Append(Value::Str("banana"));
  col.Append(Value::Str("apple"));
  col.Append(Value::Str("cherry"));
  col.Append(Value::Str("apple"));
  ColumnMergeStats stats = col.Merge();
  EXPECT_FALSE(stats.fast_path);
  EXPECT_EQ(col.main_size(), 4u);
  EXPECT_EQ(col.delta_size(), 0u);
  // Rows preserved in order.
  EXPECT_EQ(col.Get(0), Value::Str("banana"));
  EXPECT_EQ(col.Get(1), Value::Str("apple"));
  EXPECT_EQ(col.Get(3), Value::Str("apple"));
  // Dictionary sorted: apple < banana < cherry.
  EXPECT_EQ(col.main_dictionary().At(0), Value::Str("apple"));
  EXPECT_EQ(col.main_dictionary().At(2), Value::Str("cherry"));
  // Sorted dictionary means ordered IDs.
  EXPECT_EQ(col.MainId(1), 0u);
  EXPECT_EQ(col.MainId(0), 1u);
}

TEST(ColumnTest, SecondMergeMixedValuesRemapsIds) {
  Column col;
  for (int v : {10, 30, 50}) col.Append(Value::Int(v));
  col.Merge();
  for (int v : {20, 40, 30}) col.Append(Value::Int(v));
  ColumnMergeStats stats = col.Merge();
  EXPECT_FALSE(stats.fast_path);
  EXPECT_EQ(stats.ids_reencoded, 3u);  // the three pre-existing main rows
  EXPECT_EQ(col.main_dictionary().size(), 5u);
  std::vector<int> expect = {10, 30, 50, 20, 40, 30};
  for (size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(col.Get(i), Value::Int(expect[i]));
  }
}

TEST(ColumnTest, GeneratedOrderFastPathSkipsReencode) {
  Column col;
  for (int v = 0; v < 100; ++v) col.Append(Value::Int(v));
  col.Merge();
  for (int v = 100; v < 200; ++v) col.Append(Value::Int(v));
  ColumnMergeStats stats = col.Merge(/*hint_generated_order=*/true);
  EXPECT_TRUE(stats.fast_path);
  EXPECT_EQ(stats.ids_reencoded, 0u);
  EXPECT_EQ(col.main_dictionary().size(), 200u);
  for (int v = 0; v < 200; ++v) EXPECT_EQ(col.Get(v), Value::Int(v));
}

TEST(ColumnTest, FastPathHintFallsBackWhenViolated) {
  Column col;
  for (int v = 0; v < 10; ++v) col.Append(Value::Int(v));
  col.Merge();
  col.Append(Value::Int(5));  // violates the "all greater" promise
  ColumnMergeStats stats = col.Merge(/*hint_generated_order=*/true);
  EXPECT_FALSE(stats.fast_path);  // must have taken the safe general path
  EXPECT_EQ(col.main_dictionary().size(), 10u);
  EXPECT_EQ(col.Get(10), Value::Int(5));
}

TEST(ColumnTest, UncompressedModeUses64BitIds) {
  Column packed(true), wide(false);
  for (int v = 0; v < 1000; ++v) {
    packed.Append(Value::Int(v % 4));
    wide.Append(Value::Int(v % 4));
  }
  packed.Merge();
  wide.Merge();
  EXPECT_LT(packed.MemoryBytes(), wide.MemoryBytes() / 4);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(packed.Get(i), wide.Get(i));
}

Schema TwoColSchema() {
  return Schema({ColumnDef("id", DataType::kInt64), ColumnDef("name", DataType::kString)});
}

TEST(ColumnTableTest, AppendAndRead) {
  ColumnTable t("t", TwoColSchema());
  ASSERT_TRUE(t.AppendVersion({Value::Int(1), Value::Str("a")}, 10).ok());
  ASSERT_TRUE(t.AppendVersion({Value::Int(2), Value::Str("b")}, 11).ok());
  EXPECT_EQ(t.num_versions(), 2u);
  Row row = t.GetRow(1);
  EXPECT_EQ(row[0], Value::Int(2));
  EXPECT_EQ(row[1], Value::Str("b"));
}

TEST(ColumnTableTest, WidthMismatchRejected) {
  ColumnTable t("t", TwoColSchema());
  EXPECT_FALSE(t.AppendVersion({Value::Int(1)}, 10).ok());
}

TEST(ColumnTableTest, NonNullableEnforced) {
  Schema s({ColumnDef("id", DataType::kInt64, /*null_ok=*/false)});
  ColumnTable t("t", s);
  EXPECT_FALSE(t.AppendVersion({Value::Null()}, 1).ok());
  EXPECT_TRUE(t.AppendVersion({Value::Int(1)}, 1).ok());
}

TEST(ColumnTableTest, MvccVisibility) {
  ColumnTable t("t", TwoColSchema());
  ASSERT_TRUE(t.AppendVersion({Value::Int(1), Value::Str("a")}, 5).ok());
  ASSERT_TRUE(t.AppendVersion({Value::Int(2), Value::Str("b")}, 9).ok());
  ASSERT_TRUE(t.SetDeleteStamp(0, 8).ok());

  ReadView early{4, 0};
  ReadView mid{7, 0};
  ReadView late{10, 0};
  EXPECT_EQ(t.CountVisible(early), 0u);
  EXPECT_EQ(t.CountVisible(mid), 1u);   // row0 alive, row1 not yet created
  EXPECT_EQ(t.CountVisible(late), 1u);  // row0 deleted, row1 alive
}

TEST(ColumnTableTest, UncommittedVisibleOnlyToOwner) {
  ColumnTable t("t", TwoColSchema());
  ASSERT_TRUE(t.AppendVersion({Value::Int(1), Value::Str("a")}, MakeTxnStamp(77)).ok());
  ReadView owner{100, 77};
  ReadView other{100, 78};
  EXPECT_EQ(t.CountVisible(owner), 1u);
  EXPECT_EQ(t.CountVisible(other), 0u);
}

TEST(ColumnTableTest, DoubleDeleteConflicts) {
  ColumnTable t("t", TwoColSchema());
  ASSERT_TRUE(t.AppendVersion({Value::Int(1), Value::Str("a")}, 1).ok());
  ASSERT_TRUE(t.SetDeleteStamp(0, MakeTxnStamp(5)).ok());
  Status st = t.SetDeleteStamp(0, MakeTxnStamp(6));
  EXPECT_TRUE(st.IsAborted());
}

TEST(ColumnTableTest, MergeKeepsMvccAndRowIds) {
  ColumnTable t("t", TwoColSchema());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(t.AppendVersion({Value::Int(i), Value::Str("n" + std::to_string(i % 5))},
                                5).ok());
  }
  ASSERT_TRUE(t.SetDeleteStamp(10, 6).ok());
  TableMergeStats stats = t.Merge();
  EXPECT_EQ(stats.columns_fast_path + stats.columns_general_path, 2u);
  EXPECT_EQ(t.column(0).delta_size(), 0u);
  EXPECT_EQ(t.GetRow(10)[0], Value::Int(10));
  ReadView view{100, 0};
  EXPECT_EQ(t.CountVisible(view), 49u);
}

TEST(ColumnTableTest, GeneratedKeyOrderSchemaFlagUsedByMerge) {
  Schema s;
  ColumnDef key("key", DataType::kInt64);
  key.generated_key_order = true;
  s.AddColumn(key);
  s.AddColumn(ColumnDef("val", DataType::kString));
  ColumnTable t("t", s);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(t.AppendVersion({Value::Int(i), Value::Str("x")}, 1).ok());
  }
  t.Merge();
  for (int i = 20; i < 40; ++i) {
    ASSERT_TRUE(t.AppendVersion({Value::Int(i), Value::Str("y")}, 2).ok());
  }
  TableMergeStats stats = t.Merge();
  EXPECT_EQ(stats.columns_fast_path, 1u);  // key column took the fast path
}

TEST(ColumnTableTest, SaveLoadRoundTrip) {
  ColumnTable t("orders", TwoColSchema());
  ASSERT_TRUE(t.AppendVersion({Value::Int(1), Value::Str("alpha")}, 3).ok());
  ASSERT_TRUE(t.AppendVersion({Value::Int(2), Value::Str("beta")}, 4).ok());
  ASSERT_TRUE(t.SetDeleteStamp(0, 9).ok());
  Serializer s;
  t.SaveTo(&s);
  Deserializer d(s.data());
  auto loaded = ColumnTable::LoadFrom(&d);
  ASSERT_TRUE(loaded.ok());
  ColumnTable* lt = loaded->get();
  EXPECT_EQ(lt->name(), "orders");
  EXPECT_EQ(lt->num_versions(), 2u);
  EXPECT_EQ(lt->GetRow(1)[1], Value::Str("beta"));
  EXPECT_EQ(lt->dts(0), 9u);
  EXPECT_EQ(lt->cts(1), 4u);
}

TEST(RowTableTest, MirrorsMvccSemantics) {
  RowTable t("r", TwoColSchema());
  ASSERT_TRUE(t.AppendVersion({Value::Int(1), Value::Str("a")}, 5).ok());
  ASSERT_TRUE(t.SetDeleteStamp(0, 8).ok());
  EXPECT_EQ(t.CountVisible(ReadView{6, 0}), 1u);
  EXPECT_EQ(t.CountVisible(ReadView{9, 0}), 0u);
  EXPECT_TRUE(t.SetDeleteStamp(0, 9).IsAborted());
}

TEST(DatabaseTest, CreateGetDrop) {
  Database db;
  auto t = db.CreateTable("a", TwoColSchema());
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(db.CreateTable("a", TwoColSchema()).status().code() ==
              StatusCode::kAlreadyExists);
  EXPECT_TRUE(db.GetTable("a").ok());
  EXPECT_FALSE(db.GetTable("b").ok());
  EXPECT_TRUE(db.DropTable("a").ok());
  EXPECT_FALSE(db.GetTable("a").ok());
}

TEST(DatabaseTest, RowAndColumnNamespacesShared) {
  Database db;
  ASSERT_TRUE(db.CreateRowTable("x", TwoColSchema()).ok());
  EXPECT_EQ(db.CreateTable("x", TwoColSchema()).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(db.TableNames().size(), 1u);
}

TEST(ColumnTableTest, VacuumRemovesDeadVersionsOnly) {
  ColumnTable t("t", TwoColSchema());
  // Rows: 0 alive, 1 deleted old (vacuumable), 2 deleted recently,
  // 3 delete-in-flight (uncommitted stamp), 4 alive.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(t.AppendVersion({Value::Int(i), Value::Str("r" + std::to_string(i))}, 2).ok());
  }
  ASSERT_TRUE(t.SetDeleteStamp(1, 5).ok());
  ASSERT_TRUE(t.SetDeleteStamp(2, 90).ok());
  ASSERT_TRUE(t.SetDeleteStamp(3, MakeTxnStamp(7)).ok());

  EXPECT_EQ(t.Vacuum(/*watermark=*/50), 1u);  // only row 1 is dead to all
  EXPECT_EQ(t.num_versions(), 4u);
  // Remaining rows keep their data and stamps (renumbered).
  std::vector<int64_t> ids;
  for (uint64_t r = 0; r < t.num_versions(); ++r) ids.push_back(t.GetValue(r, 0).AsInt());
  EXPECT_EQ(ids, (std::vector<int64_t>{0, 2, 3, 4}));
  EXPECT_EQ(t.dts(1), 90u);
  EXPECT_TRUE(StampIsUncommitted(t.dts(2)));
  // Visibility unchanged for a recent snapshot: rows 0 and 4 alive, row 2's
  // delete (ts 90) hasn't happened yet at 60, row 3's delete is in flight.
  EXPECT_EQ(t.CountVisible(ReadView{60, 0}), 4u);
  EXPECT_EQ(t.Vacuum(50), 0u);  // idempotent at same watermark
  EXPECT_EQ(t.Vacuum(100), 1u);  // row with dts=90 now collectable
}

TEST(ColumnTableTest, VacuumShrinksMemory) {
  ColumnTable t("t", TwoColSchema());
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(t.AppendVersion({Value::Int(i), Value::Str("x" + std::to_string(i))}, 1).ok());
  }
  for (int i = 0; i < 1900; ++i) {
    ASSERT_TRUE(t.SetDeleteStamp(i, 2).ok());
  }
  t.Merge();
  size_t before = t.MemoryBytes();
  EXPECT_EQ(t.Vacuum(10), 1900u);
  EXPECT_LT(t.MemoryBytes(), before / 4);
  EXPECT_EQ(t.CountVisible(ReadView{100, 0}), 100u);
}

TEST(CompressionClaim, ColumnStoreBeatsRowStoreOnRedundantData) {
  // E3 sanity: 20k rows, 50 distinct strings -> dictionary wins big.
  Schema s({ColumnDef("k", DataType::kInt64), ColumnDef("city", DataType::kString)});
  ColumnTable ct("c", s);
  RowTable rt("r", s);
  for (int i = 0; i < 20000; ++i) {
    Row row = {Value::Int(i % 1000), Value::Str("city_name_" + std::to_string(i % 50))};
    ASSERT_TRUE(ct.AppendVersion(row, 1).ok());
    ASSERT_TRUE(rt.AppendVersion(row, 1).ok());
  }
  ct.Merge();
  EXPECT_LT(ct.MemoryBytes() * 3, rt.MemoryBytes());
}

}  // namespace
}  // namespace poly
