#include <gtest/gtest.h>

#include "soe/cluster.h"

namespace poly {
namespace {

// ---------- Shared log ----------

TEST(SharedLogTest, AppendReadTail) {
  SharedLog log;
  EXPECT_EQ(log.Tail(), 0u);
  EXPECT_EQ(*log.Append("a"), 0u);
  EXPECT_EQ(*log.Append("b"), 1u);
  EXPECT_EQ(log.Tail(), 2u);
  EXPECT_EQ(*log.Read(0), "a");
  EXPECT_EQ(*log.Read(1), "b");
  EXPECT_EQ(log.Read(5).status().code(), StatusCode::kOutOfRange);
  auto range = log.ReadRange(0, 2);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->size(), 2u);
}

TEST(SharedLogTest, ReplicationSurvivesUnitFailure) {
  SharedLog log(SharedLog::Options{3, 2});
  for (int i = 0; i < 30; ++i) ASSERT_TRUE(log.Append("rec" + std::to_string(i)).ok());
  ASSERT_TRUE(log.KillUnit(1).ok());
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(*log.Read(i), "rec" + std::to_string(i));
  }
  // Heal and survive a second failure.
  ASSERT_TRUE(log.ReReplicate().ok());
  ASSERT_TRUE(log.KillUnit(0).ok());
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(*log.Read(i), "rec" + std::to_string(i));
  }
}

TEST(SharedLogTest, UnreplicatedLogLosesDataOnFailure) {
  SharedLog log(SharedLog::Options{2, 1});
  ASSERT_TRUE(log.Append("x").ok());  // offset 0 -> unit 0
  ASSERT_TRUE(log.KillUnit(0).ok());
  EXPECT_TRUE(log.Read(0).status().IsUnavailable());
  EXPECT_TRUE(log.ReReplicate().IsUnavailable());
}

TEST(SharedLogTest, AppendsDistributeAcrossUnits) {
  SharedLog log(SharedLog::Options{4, 1});
  for (int i = 0; i < 40; ++i) ASSERT_TRUE(log.Append("r").ok());
  for (int u = 0; u < 4; ++u) EXPECT_EQ(log.records_stored(u), 10u);
}

TEST(LogRecordTest, EncodeDecodeRoundTrip) {
  SoeLogRecord rec;
  rec.writes.push_back({"orders", 3, {Value::Int(1), Value::Str("x")}});
  rec.writes.push_back({"items", 0, {Value::Dbl(2.5)}});
  auto decoded = SoeLogRecord::Decode(rec.Encode());
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->writes.size(), 2u);
  EXPECT_EQ(decoded->writes[0].table, "orders");
  EXPECT_EQ(decoded->writes[0].partition, 3u);
  EXPECT_EQ(decoded->writes[0].row[1], Value::Str("x"));
  EXPECT_FALSE(SoeLogRecord::Decode("garbage that is way too short").ok());
}

// ---------- Partitioning ----------

TEST(PartitionTest, HashIsStableAndInRange) {
  PartitionSpec spec = PartitionSpec::Hash("k", 8);
  for (int i = 0; i < 100; ++i) {
    size_t p = PartitionOf(Value::Int(i), spec);
    EXPECT_LT(p, 8u);
    EXPECT_EQ(p, PartitionOf(Value::Int(i), spec));
  }
}

TEST(PartitionTest, RangeBoundaries) {
  PartitionSpec spec = PartitionSpec::Range("k", {Value::Int(10), Value::Int(20)});
  EXPECT_EQ(spec.num_partitions, 3u);
  EXPECT_EQ(PartitionOf(Value::Int(5), spec), 0u);
  EXPECT_EQ(PartitionOf(Value::Int(10), spec), 1u);  // bounds are inclusive-low
  EXPECT_EQ(PartitionOf(Value::Int(19), spec), 1u);
  EXPECT_EQ(PartitionOf(Value::Int(20), spec), 2u);
  EXPECT_EQ(PartitionOf(Value::Int(1000), spec), 2u);
}

// ---------- Services ----------

TEST(ServicesTest, DiscoveryAndAuth) {
  DiscoveryService disc;
  disc.RegisterNode(0);
  disc.RegisterNode(1);
  EXPECT_TRUE(disc.IsAlive(0));
  ASSERT_TRUE(disc.MarkDown(0).ok());
  EXPECT_FALSE(disc.IsAlive(0));
  EXPECT_EQ(disc.LiveNodes(), std::vector<int>{1});
  ASSERT_TRUE(disc.MarkUp(0).ok());
  EXPECT_EQ(disc.LiveNodes().size(), 2u);
  EXPECT_FALSE(disc.MarkDown(9).ok());

  disc.AddCredential("app", "secret");
  EXPECT_TRUE(disc.Authorize("app", "secret"));
  EXPECT_FALSE(disc.Authorize("app", "wrong"));
  EXPECT_FALSE(disc.Authorize("ghost", "secret"));
}

TEST(ServicesTest, StatisticsHotspot) {
  ClusterStatisticsService stats;
  stats.RecordQuery(0, 100, 5000);
  stats.RecordQuery(1, 900, 90000);
  stats.RecordApply(1, 10);
  EXPECT_EQ(stats.Stats(1).rows_scanned, 900u);
  EXPECT_EQ(stats.Stats(1).records_applied, 10u);
  EXPECT_EQ(stats.Hotspot(), 1);
}

// ---------- Cluster ----------

class SoeFixture : public ::testing::Test {
 protected:
  SoeFixture() : cluster_(MakeOptions()) {}

  static SoeCluster::Options MakeOptions() {
    SoeCluster::Options opts;
    opts.num_nodes = 4;
    opts.log_units = 3;
    opts.log_replication = 2;
    return opts;
  }

  Schema SensorSchema() {
    return Schema({ColumnDef("sensor", DataType::kInt64),
                   ColumnDef("value", DataType::kDouble)});
  }

  void LoadSensors(int n, int replication = 1) {
    ASSERT_TRUE(cluster_
                    .CreateTable("readings", SensorSchema(),
                                 PartitionSpec::Hash("sensor", 8), replication)
                    .ok());
    std::vector<Row> rows;
    for (int i = 0; i < n; ++i) {
      rows.push_back({Value::Int(i % 50), Value::Dbl(i * 1.0)});
    }
    ASSERT_TRUE(cluster_.CommitInserts("readings", rows).ok());
  }

  SoeCluster cluster_;
};

TEST_F(SoeFixture, InsertRoutesToPartitions) {
  LoadSensors(200);
  // Every row landed in exactly one partition; total across nodes == 200.
  uint64_t total = 0;
  for (size_t p = 0; p < 8; ++p) {
    auto info = cluster_.catalog().Lookup("readings");
    ASSERT_TRUE(info.ok());
    int owner = (*info)->placement[p][0];
    auto count = cluster_.node(owner)->PartitionRowCount("readings", p);
    ASSERT_TRUE(count.ok());
    total += *count;
  }
  EXPECT_EQ(total, 200u);
}

TEST_F(SoeFixture, DistributedAggregateMatchesGroundTruth) {
  LoadSensors(500);
  AggSpec cnt{AggFunc::kCount, nullptr, "cnt"};
  AggSpec sum{AggFunc::kSum, Expr::Column(1), "sum"};
  AggSpec avg{AggFunc::kAvg, Expr::Column(1), "avg"};
  auto rs = cluster_.DistributedAggregate("readings", nullptr, "", {cnt, sum, avg});
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->num_rows(), 1u);
  EXPECT_EQ(rs->rows[0][0], Value::Int(500));
  double expect_sum = 499.0 * 500 / 2;
  EXPECT_DOUBLE_EQ(rs->rows[0][1].NumericValue(), expect_sum);
  EXPECT_DOUBLE_EQ(rs->rows[0][2].NumericValue(), expect_sum / 500);
  EXPECT_EQ(cluster_.last_query_stats().partitions, 8u);
}

TEST_F(SoeFixture, DistributedAggregateWithPredicateAndGroups) {
  LoadSensors(500);
  auto predicate =
      Expr::Compare(CmpOp::kLt, Expr::Column(0), Expr::Literal(Value::Int(10)));
  AggSpec cnt{AggFunc::kCount, nullptr, "cnt"};
  auto rs = cluster_.DistributedAggregate("readings", predicate, "sensor", {cnt});
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->num_rows(), 10u);  // sensors 0..9
  for (const auto& row : rs->rows) EXPECT_EQ(row[1], Value::Int(10));  // 500/50
}

TEST_F(SoeFixture, DistributedScanGathersEverything) {
  LoadSensors(100);
  auto rs = cluster_.DistributedScan("readings", nullptr);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->num_rows(), 100u);
  EXPECT_GT(cluster_.last_query_stats().result_bytes_gathered, 0u);
  EXPECT_GT(cluster_.network().messages(), 0u);
}

TEST_F(SoeFixture, ReplicatedTableSurvivesNodeFailure) {
  LoadSensors(300, /*replication=*/2);
  AggSpec cnt{AggFunc::kCount, nullptr, "cnt"};
  ASSERT_TRUE(cluster_.KillNode(0).ok());
  auto rs = cluster_.DistributedAggregate("readings", nullptr, "", {cnt});
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->rows[0][0], Value::Int(300));
}

TEST_F(SoeFixture, UnreplicatedTableUnavailableAfterFailure) {
  LoadSensors(300, /*replication=*/1);
  ASSERT_TRUE(cluster_.KillNode(0).ok());
  AggSpec cnt{AggFunc::kCount, nullptr, "cnt"};
  auto rs = cluster_.DistributedAggregate("readings", nullptr, "", {cnt});
  EXPECT_TRUE(rs.status().IsUnavailable());
}

TEST_F(SoeFixture, RebalanceRestoresReplication) {
  LoadSensors(300, /*replication=*/2);
  ASSERT_TRUE(cluster_.KillNode(0).ok());
  ASSERT_TRUE(cluster_.Rebalance().ok());
  // Now even killing another node keeps all partitions answerable.
  ASSERT_TRUE(cluster_.KillNode(1).ok());
  AggSpec cnt{AggFunc::kCount, nullptr, "cnt"};
  auto rs = cluster_.DistributedAggregate("readings", nullptr, "", {cnt});
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->rows[0][0], Value::Int(300));
}

// Rebalance invariants: after a kill + rebalance, (a) every partition is
// back to full replica strength on live nodes, (b) every replica of a
// partition holds the same rows as it did before the failure, and (c) no
// row was lost or duplicated anywhere.
TEST_F(SoeFixture, RebalancePreservesPartitionInvariants) {
  LoadSensors(400, /*replication=*/2);
  auto info = cluster_.catalog().Lookup("readings");
  ASSERT_TRUE(info.ok());
  const size_t partitions = (*info)->spec.num_partitions;

  std::vector<uint64_t> pre_counts(partitions);
  uint64_t pre_total = 0;
  for (size_t p = 0; p < partitions; ++p) {
    pre_counts[p] =
        *cluster_.node((*info)->placement[p][0])->PartitionRowCount("readings", p);
    pre_total += pre_counts[p];
  }
  ASSERT_EQ(pre_total, 400u);

  ASSERT_TRUE(cluster_.KillNode(0).ok());
  ASSERT_TRUE(cluster_.Rebalance().ok());

  info = cluster_.catalog().Lookup("readings");
  ASSERT_TRUE(info.ok());
  uint64_t post_total = 0;
  for (size_t p = 0; p < partitions; ++p) {
    // (a) full replica strength on live, distinct nodes (the dead node keeps
    // its placement entry — it rejoins with its state on restart).
    std::set<int> live_replicas;
    for (int n : (*info)->placement[p]) {
      if (cluster_.discovery().IsAlive(n)) live_replicas.insert(n);
    }
    ASSERT_EQ(live_replicas.size(), 2u) << "partition " << p;
    for (int n : live_replicas) {
      // (b) every live replica agrees with the pre-failure row count.
      auto count = cluster_.node(n)->PartitionRowCount("readings", p);
      ASSERT_TRUE(count.ok()) << "partition " << p << " node " << n;
      EXPECT_EQ(*count, pre_counts[p]) << "partition " << p << " node " << n;
    }
    post_total += pre_counts[p];
  }
  // (c) nothing lost, nothing doubled.
  EXPECT_EQ(post_total, pre_total);
  AggSpec cnt{AggFunc::kCount, nullptr, "cnt"};
  auto rs = cluster_.DistributedAggregate("readings", nullptr, "", {cnt});
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->rows[0][0], Value::Int(400));
}

TEST_F(SoeFixture, OlapNodesLagUntilPolled) {
  ASSERT_TRUE(cluster_
                  .CreateTable("readings", SensorSchema(),
                               PartitionSpec::Hash("sensor", 4), /*replication=*/1)
                  .ok());
  // Make every node OLAP: writes go to the log but are not applied.
  for (int n = 0; n < cluster_.num_nodes(); ++n) {
    ASSERT_TRUE(cluster_.SetNodeMode(n, NodeMode::kOlap).ok());
  }
  std::vector<Row> rows;
  for (int i = 0; i < 50; ++i) rows.push_back({Value::Int(i), Value::Dbl(1.0)});
  ASSERT_TRUE(cluster_.CommitInserts("readings", rows).ok());

  // Stale reads: counts are 0 because nothing is applied yet.
  AggSpec cnt{AggFunc::kCount, nullptr, "cnt"};
  auto stale = cluster_.DistributedAggregate("readings", nullptr, "", {cnt});
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(stale->rows[0][0], Value::Int(0));
  EXPECT_GT(cluster_.Staleness(0), 0u);

  // Poll -> catch up -> fresh reads.
  for (int n = 0; n < cluster_.num_nodes(); ++n) {
    ASSERT_TRUE(cluster_.PollNode(n).ok());
    EXPECT_EQ(cluster_.Staleness(n), 0u);
  }
  auto fresh = cluster_.DistributedAggregate("readings", nullptr, "", {cnt});
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->rows[0][0], Value::Int(50));
}

TEST_F(SoeFixture, OltpNodesReadTheirWrites) {
  LoadSensors(10);  // default mode is OLTP
  AggSpec cnt{AggFunc::kCount, nullptr, "cnt"};
  auto rs = cluster_.DistributedAggregate("readings", nullptr, "", {cnt});
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows[0][0], Value::Int(10));  // immediately visible
}

TEST_F(SoeFixture, RangePartitioningRoutesByBounds) {
  Schema s({ColumnDef("year", DataType::kInt64), ColumnDef("v", DataType::kDouble)});
  ASSERT_TRUE(cluster_
                  .CreateTable("events", s,
                               PartitionSpec::Range("year", {Value::Int(2000),
                                                             Value::Int(2020)}),
                               1)
                  .ok());
  ASSERT_TRUE(cluster_.Insert("events", {Value::Int(1995), Value::Dbl(1)}).ok());
  ASSERT_TRUE(cluster_.Insert("events", {Value::Int(2010), Value::Dbl(1)}).ok());
  ASSERT_TRUE(cluster_.Insert("events", {Value::Int(2025), Value::Dbl(1)}).ok());
  auto info = cluster_.catalog().Lookup("events");
  ASSERT_TRUE(info.ok());
  for (size_t p = 0; p < 3; ++p) {
    int owner = (*info)->placement[p][0];
    EXPECT_EQ(*cluster_.node(owner)->PartitionRowCount("events", p), 1u);
  }
}

TEST_F(SoeFixture, CatalogRejectsBadTable) {
  Schema s({ColumnDef("k", DataType::kInt64)});
  EXPECT_FALSE(cluster_.CreateTable("t", s, PartitionSpec::Hash("missing", 2)).ok());
  ASSERT_TRUE(cluster_.CreateTable("t", s, PartitionSpec::Hash("k", 2)).ok());
  EXPECT_FALSE(cluster_.CreateTable("t", s, PartitionSpec::Hash("k", 2)).ok());
  EXPECT_FALSE(cluster_.CreateTable("u", s, PartitionSpec::Hash("k", 2), 99).ok());
  EXPECT_FALSE(cluster_.Insert("ghost", {Value::Int(1)}).ok());
  EXPECT_FALSE(cluster_.Insert("t", {Value::Int(1), Value::Int(2)}).ok());
}

}  // namespace
}  // namespace poly
