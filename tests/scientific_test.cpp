#include <gtest/gtest.h>

#include <cmath>

#include "engines/scientific/matrix.h"
#include "storage/database.h"
#include "txn/transaction_manager.h"

namespace poly {
namespace {

TEST(DenseMatrixTest, MultiplyKnownResult) {
  DenseMatrix a(2, 3), b(3, 2);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
  double av[] = {1, 2, 3, 4, 5, 6};
  double bv[] = {7, 8, 9, 10, 11, 12};
  for (size_t i = 0; i < 2; ++i)
    for (size_t j = 0; j < 3; ++j) a.At(i, j) = av[i * 3 + j];
  for (size_t i = 0; i < 3; ++i)
    for (size_t j = 0; j < 2; ++j) b.At(i, j) = bv[i * 2 + j];
  auto c = a.Multiply(b);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->At(0, 0), 58);
  EXPECT_EQ(c->At(0, 1), 64);
  EXPECT_EQ(c->At(1, 0), 139);
  EXPECT_EQ(c->At(1, 1), 154);
  EXPECT_FALSE(a.Multiply(a).ok());  // 2x3 * 2x3 mismatched
}

TEST(DenseMatrixTest, TransposeAndNorm) {
  DenseMatrix m(2, 2);
  m.At(0, 1) = 3;
  m.At(1, 0) = 4;
  DenseMatrix t = m.Transpose();
  EXPECT_EQ(t.At(1, 0), 3);
  EXPECT_EQ(t.At(0, 1), 4);
  EXPECT_NEAR(m.FrobeniusNorm(), 5.0, 1e-12);
}

TEST(CsrMatrixTest, FromTripletsSumsDuplicates) {
  CsrMatrix m = CsrMatrix::FromTriplets(
      3, 3, {{0, 0, 1.0}, {0, 0, 2.0}, {1, 2, 5.0}, {2, 1, -1.0}});
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_EQ(m.At(0, 0), 3.0);
  EXPECT_EQ(m.At(1, 2), 5.0);
  EXPECT_EQ(m.At(2, 1), -1.0);
  EXPECT_EQ(m.At(1, 1), 0.0);
}

TEST(CsrMatrixTest, SpmvMatchesDense) {
  CsrMatrix m = CsrMatrix::FromTriplets(
      2, 3, {{0, 0, 1}, {0, 2, 2}, {1, 1, 3}});
  auto y = m.MultiplyVector({1, 2, 3});
  ASSERT_TRUE(y.ok());
  EXPECT_EQ((*y)[0], 7.0);
  EXPECT_EQ((*y)[1], 6.0);
  auto dense_y = m.ToDense().MultiplyVector({1, 2, 3});
  ASSERT_TRUE(dense_y.ok());
  EXPECT_EQ(*y, *dense_y);
  EXPECT_FALSE(m.MultiplyVector({1, 2}).ok());
}

TEST(CsrMatrixTest, PowerIterationDiagonal) {
  // Diagonal (5, 2, 1): dominant eigenvalue 5, eigenvector e1.
  CsrMatrix m = CsrMatrix::FromTriplets(3, 3, {{0, 0, 5}, {1, 1, 2}, {2, 2, 1}});
  std::vector<double> vec;
  auto lambda = m.PowerIteration(500, 1e-12, &vec);
  ASSERT_TRUE(lambda.ok());
  EXPECT_NEAR(*lambda, 5.0, 1e-6);
  EXPECT_NEAR(std::abs(vec[0]), 1.0, 1e-3);
  // Non-square fails.
  CsrMatrix rect = CsrMatrix::FromTriplets(2, 3, {{0, 0, 1}});
  EXPECT_FALSE(rect.PowerIteration().ok());
}

TEST(CsrMatrixTest, PowerIterationSymmetric) {
  // [[2,1],[1,2]] -> eigenvalues 3 and 1.
  CsrMatrix m =
      CsrMatrix::FromTriplets(2, 2, {{0, 0, 2}, {0, 1, 1}, {1, 0, 1}, {1, 1, 2}});
  auto lambda = m.PowerIteration();
  ASSERT_TRUE(lambda.ok());
  EXPECT_NEAR(*lambda, 3.0, 1e-6);
}

TEST(CsrMatrixTest, FromTableBuildsMatrix) {
  Database db;
  TransactionManager tm;
  Schema s({ColumnDef("r", DataType::kInt64), ColumnDef("c", DataType::kInt64),
            ColumnDef("v", DataType::kDouble)});
  ColumnTable* t = *db.CreateTable("matrix", s);
  auto txn = tm.Begin();
  ASSERT_TRUE(tm.Insert(txn.get(), t, {Value::Int(0), Value::Int(0), Value::Dbl(4)}).ok());
  ASSERT_TRUE(tm.Insert(txn.get(), t, {Value::Int(1), Value::Int(1), Value::Dbl(9)}).ok());
  ASSERT_TRUE(tm.Commit(txn.get()).ok());
  // An uncommitted entry must not appear in the matrix view.
  auto txn2 = tm.Begin();
  ASSERT_TRUE(tm.Insert(txn2.get(), t, {Value::Int(0), Value::Int(1), Value::Dbl(99)}).ok());

  auto m = CsrMatrix::FromTable(*t, tm.AutoCommitView(), "r", "c", "v");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->rows(), 2u);
  EXPECT_EQ(m->At(0, 0), 4.0);
  EXPECT_EQ(m->At(0, 1), 0.0);
  ASSERT_TRUE(tm.Abort(txn2.get()).ok());
  EXPECT_FALSE(CsrMatrix::FromTable(*t, tm.AutoCommitView(), "r", "c", "nope").ok());
}

TEST(CsrMatrixTest, ConjugateGradientSolvesSpdSystem) {
  // A = [[4,1],[1,3]], b = [1,2] -> x = [1/11, 7/11].
  CsrMatrix a =
      CsrMatrix::FromTriplets(2, 2, {{0, 0, 4}, {0, 1, 1}, {1, 0, 1}, {1, 1, 3}});
  auto x = a.SolveConjugateGradient({1, 2});
  ASSERT_TRUE(x.ok()) << x.status().ToString();
  EXPECT_NEAR((*x)[0], 1.0 / 11, 1e-8);
  EXPECT_NEAR((*x)[1], 7.0 / 11, 1e-8);
  // Residual check: A x == b.
  auto ax = a.MultiplyVector(*x);
  EXPECT_NEAR((*ax)[0], 1.0, 1e-8);
  EXPECT_NEAR((*ax)[1], 2.0, 1e-8);
}

TEST(CsrMatrixTest, ConjugateGradientGuards) {
  CsrMatrix rect = CsrMatrix::FromTriplets(2, 3, {{0, 0, 1}});
  EXPECT_FALSE(rect.SolveConjugateGradient({1, 2}).ok());
  CsrMatrix a = CsrMatrix::FromTriplets(2, 2, {{0, 0, 1}, {1, 1, 1}});
  EXPECT_FALSE(a.SolveConjugateGradient({1}).ok());  // rhs length
  // Indefinite matrix rejected.
  CsrMatrix indef = CsrMatrix::FromTriplets(2, 2, {{0, 0, 1}, {1, 1, -1}});
  EXPECT_EQ(indef.SolveConjugateGradient({1, 1}).status().code(), StatusCode::kAborted);
}

TEST(CsrMatrixTest, ConjugateGradientLargerSystem) {
  // SPD tridiagonal system of size 50.
  std::vector<CsrMatrix::Triplet> t;
  const size_t n = 50;
  for (size_t i = 0; i < n; ++i) {
    t.push_back({i, i, 2.0});
    if (i + 1 < n) {
      t.push_back({i, i + 1, -1.0});
      t.push_back({i + 1, i, -1.0});
    }
  }
  CsrMatrix a = CsrMatrix::FromTriplets(n, n, t);
  std::vector<double> b(n, 1.0);
  auto x = a.SolveConjugateGradient(b, 500, 1e-12);
  ASSERT_TRUE(x.ok());
  auto ax = a.MultiplyVector(*x);
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR((*ax)[i], 1.0, 1e-6);
}

TEST(ExternalProviderTest, ChargesTransferCost) {
  CsrMatrix m = CsrMatrix::FromTriplets(100, 100, [] {
    std::vector<CsrMatrix::Triplet> t;
    for (uint64_t i = 0; i < 100; ++i) t.push_back({i, i, 2.0});
    return t;
  }());
  ExternalAnalyticsProvider provider(1e6);  // 1 MB/s channel
  std::vector<double> x(100, 1.0);
  auto y = provider.MultiplyVector(m, x);
  ASSERT_TRUE(y.ok());
  EXPECT_EQ((*y)[0], 2.0);
  // 100 triplets * 24B + 100*8 in + 100*8 out = 4000B -> 4ms at 1MB/s.
  EXPECT_EQ(provider.bytes_transferred(), 4000u);
  EXPECT_NEAR(provider.transfer_seconds(), 0.004, 1e-9);
  // Second call accumulates.
  ASSERT_TRUE(provider.MultiplyVector(m, x).ok());
  EXPECT_EQ(provider.bytes_transferred(), 8000u);
}

}  // namespace
}  // namespace poly
