// Correctness harness for the observability substrate (DESIGN.md §10):
// counters/gauges/histograms, registry get-or-create semantics, snapshot
// determinism, the Prometheus-style text page, and exact counting under
// concurrent writers. The Metrics* suites run under -fsanitize=thread via
// `ctest -L concurrency`.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"

namespace poly {
namespace metrics {
namespace {

TEST(MetricsCounter, AddValueReset) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(MetricsGauge, SetAdd) {
  Gauge g;
  g.Set(10);
  g.Add(-25);
  EXPECT_EQ(g.Value(), -15);
}

TEST(MetricsHistogram, LogScaleBuckets) {
  Histogram h;
  for (uint64_t v : {0ull, 1ull, 2ull, 3ull, 1000ull, 1000000ull}) h.Observe(v);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 6u);
  EXPECT_EQ(s.sum, 0u + 1 + 2 + 3 + 1000 + 1000000);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 1000000u);
  // bucket[i] = values with bit_width == i: 0 -> bucket 0, 1 -> bucket 1,
  // 2 and 3 -> bucket 2, 1000 -> bucket 10, 1000000 -> bucket 20.
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[1], 1u);
  EXPECT_EQ(s.buckets[2], 2u);
  EXPECT_EQ(s.buckets[10], 1u);
  EXPECT_EQ(s.buckets[20], 1u);
  EXPECT_DOUBLE_EQ(s.Mean(), s.sum / 6.0);
  // Median lands in bucket 2 whose upper bound is 3.
  EXPECT_EQ(s.Quantile(0.5), 3u);
  EXPECT_EQ(s.Quantile(1.0), (1ull << 20) - 1);
}

TEST(MetricsHistogram, SnapshotPrecomputesQuantiles) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Observe(v);
  HistogramSnapshot s = h.Snapshot();
  // Log-scale quantiles are bucket upper bounds (exact to a factor of 2):
  // rank 499 of 1000 lands in bucket 9 (values 256..511), rank 899 and 989
  // in bucket 10 (512..1023).
  EXPECT_EQ(s.p50, s.Quantile(0.50));
  EXPECT_EQ(s.p50, 511u);
  EXPECT_EQ(s.p90, 1023u);
  EXPECT_EQ(s.p99, 1023u);

  // Empty histogram: quantiles are 0, not garbage.
  Histogram empty;
  HistogramSnapshot e = empty.Snapshot();
  EXPECT_EQ(e.p50, 0u);
  EXPECT_EQ(e.p99, 0u);
}

TEST(MetricsRegistry, TextPageExportsQuantileSeries) {
  Registry reg;
  Histogram* h = reg.histogram("soe.dqp.task_virtual_nanos");
  for (uint64_t v = 1; v <= 100; ++v) h->Observe(v);
  std::string page = reg.TextPage();
  EXPECT_NE(page.find("soe_dqp_task_virtual_nanos_p50 63"), std::string::npos);
  EXPECT_NE(page.find("soe_dqp_task_virtual_nanos_p90 127"), std::string::npos);
  EXPECT_NE(page.find("soe_dqp_task_virtual_nanos_p99 127"), std::string::npos);
}

TEST(MetricsRegistry, GetOrCreateReturnsStablePointers) {
  Registry reg;
  Counter* a = reg.counter("soe.net.messages");
  Counter* b = reg.counter("soe.net.messages");
  EXPECT_EQ(a, b);
  EXPECT_NE(reg.counter("soe.net.bytes"), a);
  EXPECT_EQ(reg.gauge("g"), reg.gauge("g"));
  EXPECT_EQ(reg.histogram("h"), reg.histogram("h"));
  a->Add(7);
  EXPECT_EQ(reg.counter("soe.net.messages")->Value(), 7u);
}

TEST(MetricsRegistry, SnapshotIsSortedAndDeterministic) {
  Registry reg;
  reg.counter("z.last")->Add(1);
  reg.counter("a.first")->Add(2);
  reg.gauge("m.gauge")->Set(-3);
  reg.histogram("h.lat")->Observe(100);

  RegistrySnapshot s1 = reg.TakeSnapshot();
  RegistrySnapshot s2 = reg.TakeSnapshot();
  EXPECT_EQ(s1.counters, s2.counters);
  EXPECT_EQ(s1.gauges, s2.gauges);
  EXPECT_EQ(s1.counter("a.first"), 2u);
  EXPECT_EQ(s1.counter("z.last"), 1u);
  EXPECT_EQ(s1.counter("missing"), 0u);
  EXPECT_EQ(s1.gauges.at("m.gauge"), -3);
  EXPECT_EQ(s1.histograms.at("h.lat").count, 1u);
  // std::map iteration is name-sorted: "a.first" precedes "z.last".
  EXPECT_EQ(s1.counters.begin()->first, "a.first");
}

TEST(MetricsRegistry, TextPageExposition) {
  Registry reg;
  reg.counter("soe.net.dropped")->Add(5);
  reg.gauge("cluster.live_nodes")->Set(4);
  reg.histogram("soe.dqp.task_virtual_nanos")->Observe(1000);
  std::string page = reg.TextPage();
  EXPECT_NE(page.find("# TYPE soe_net_dropped counter"), std::string::npos);
  EXPECT_NE(page.find("soe_net_dropped 5"), std::string::npos);
  EXPECT_NE(page.find("cluster_live_nodes 4"), std::string::npos);
  EXPECT_NE(page.find("soe_dqp_task_virtual_nanos_count 1"), std::string::npos);
  EXPECT_NE(page.find("_bucket{le="), std::string::npos);
}

TEST(MetricsRegistry, ResetZeroesEverything) {
  Registry reg;
  reg.counter("c")->Add(9);
  reg.histogram("h")->Observe(9);
  reg.Reset();
  EXPECT_EQ(reg.counter("c")->Value(), 0u);
  EXPECT_EQ(reg.histogram("h")->Count(), 0u);
}

TEST(MetricsNaming, JoinName) {
  EXPECT_EQ(JoinName("soe.node.3", "busy_nanos"), "soe.node.3.busy_nanos");
}

// The property the sharded hot path must preserve: counts are exact (never
// sampled or lossy) no matter how many threads hammer one counter.
TEST(MetricsConcurrency, CounterIsExactUnderContention) {
  Registry reg;
  Counter* c = reg.counter("contended");
  Histogram* h = reg.histogram("contended_lat");
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kAddsPerThread; ++i) {
        c->Add(1);
        h->Observe(static_cast<uint64_t>(t));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c->Value(), static_cast<uint64_t>(kThreads) * kAddsPerThread);
  EXPECT_EQ(h->Count(), static_cast<uint64_t>(kThreads) * kAddsPerThread);
}

// Creation races: many threads get-or-create overlapping names; all callers
// for one name must agree on the pointer and no adds may be lost.
TEST(MetricsConcurrency, RegistryGetOrCreateRace) {
  Registry reg;
  constexpr int kThreads = 8;
  constexpr int kNames = 16;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int n = 0; n < kNames; ++n) {
        reg.counter("race." + std::to_string(n))->Add(1);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  RegistrySnapshot snap = reg.TakeSnapshot();
  for (int n = 0; n < kNames; ++n) {
    EXPECT_EQ(snap.counter("race." + std::to_string(n)),
              static_cast<uint64_t>(kThreads));
  }
}

}  // namespace
}  // namespace metrics
}  // namespace poly
