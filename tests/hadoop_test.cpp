#include <gtest/gtest.h>

#include "common/random.h"
#include "hadoop/dfs.h"
#include "hadoop/mapreduce.h"
#include "hadoop/table_connector.h"
#include "common/string_util.h"
#include "storage/database.h"

namespace poly {
namespace {

TEST(DfsTest, WriteReadRoundTrip) {
  SimulatedDfs dfs;
  std::string data(10000, 'x');
  ASSERT_TRUE(dfs.Write("/a/b.txt", data).ok());
  auto read = dfs.Read("/a/b.txt");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
  EXPECT_TRUE(dfs.Exists("/a/b.txt"));
  EXPECT_FALSE(dfs.Exists("/nope"));
  EXPECT_FALSE(dfs.Read("/nope").ok());
}

TEST(DfsTest, BlockSplitAndBlockRead) {
  SimulatedDfs::Options opts;
  opts.block_size = 100;
  SimulatedDfs dfs(opts);
  std::string data(250, 'y');
  ASSERT_TRUE(dfs.Write("/f", data).ok());
  EXPECT_EQ(*dfs.NumBlocks("/f"), 3u);
  EXPECT_EQ(*dfs.FileSize("/f"), 250u);
  EXPECT_EQ(dfs.ReadBlock("/f", 0)->size(), 100u);
  EXPECT_EQ(dfs.ReadBlock("/f", 2)->size(), 50u);
  EXPECT_FALSE(dfs.ReadBlock("/f", 3).ok());
}

TEST(DfsTest, AppendGrowsFile) {
  SimulatedDfs dfs;
  ASSERT_TRUE(dfs.Append("/log", "one\n").ok());
  ASSERT_TRUE(dfs.Append("/log", "two\n").ok());
  EXPECT_EQ(*dfs.Read("/log"), "one\ntwo\n");
}

TEST(DfsTest, ListAndDelete) {
  SimulatedDfs dfs;
  ASSERT_TRUE(dfs.Write("/data/a", "1").ok());
  ASSERT_TRUE(dfs.Write("/data/b", "2").ok());
  ASSERT_TRUE(dfs.Write("/other", "3").ok());
  EXPECT_EQ(dfs.ListFiles("/data/").size(), 2u);
  EXPECT_EQ(dfs.ListFiles().size(), 3u);
  ASSERT_TRUE(dfs.Delete("/data/a").ok());
  EXPECT_FALSE(dfs.Exists("/data/a"));
  EXPECT_FALSE(dfs.Delete("/data/a").ok());
}

TEST(DfsTest, ReplicationSurvivesNodeFailure) {
  SimulatedDfs::Options opts;
  opts.num_data_nodes = 3;
  opts.replication = 2;
  opts.block_size = 64;
  SimulatedDfs dfs(opts);
  Random rng(1);
  std::string data = rng.NextString(1000);
  ASSERT_TRUE(dfs.Write("/f", data).ok());
  ASSERT_TRUE(dfs.KillDataNode(1).ok());
  // Every block still has a live replica.
  EXPECT_EQ(*dfs.Read("/f"), data);
  ASSERT_TRUE(dfs.ReReplicate().ok());
  // After re-replication, killing another node is still survivable.
  ASSERT_TRUE(dfs.KillDataNode(0).ok());
  EXPECT_EQ(*dfs.Read("/f"), data);
}

TEST(DfsTest, AllReplicasDownIsUnavailable) {
  SimulatedDfs::Options opts;
  opts.num_data_nodes = 2;
  opts.replication = 1;
  SimulatedDfs dfs(opts);
  ASSERT_TRUE(dfs.Write("/f", "data").ok());
  ASSERT_TRUE(dfs.KillDataNode(0).ok());
  ASSERT_TRUE(dfs.KillDataNode(1).ok());
  EXPECT_TRUE(dfs.Read("/f").status().IsUnavailable());
}

TEST(DfsTest, ReadChargesSimulatedCost) {
  SimulatedDfs dfs;
  ASSERT_TRUE(dfs.Write("/f", std::string(5000, 'z')).ok());
  double before = dfs.simulated_read_nanos();
  ASSERT_TRUE(dfs.Read("/f").ok());
  EXPECT_GT(dfs.simulated_read_nanos(), before);
  EXPECT_EQ(dfs.bytes_read(), 5000u);
}

TEST(MapReduceTest, WordCount) {
  SimulatedDfs::Options opts;
  opts.block_size = 64;
  SimulatedDfs dfs(opts);
  ThreadPool pool(4);
  std::string input;
  for (int i = 0; i < 30; ++i) {
    input += (i % 3 == 0 ? "alpha" : (i % 3 == 1 ? "beta" : "gamma"));
    input += "\textra\n";
  }
  ASSERT_TRUE(dfs.Write("/in", input).ok());
  auto stats = RunWordCount(&dfs, &pool, "/in", "/out");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->map_tasks, 1u);  // multiple blocks -> multiple map tasks
  EXPECT_EQ(stats->map_output_pairs, 30u);

  auto out = dfs.Read("/out");
  ASSERT_TRUE(out.ok());
  std::map<std::string, int> counts;
  for (const auto& line : SplitString(*out, '\n')) {
    if (line.empty()) continue;
    auto parts = SplitString(line, '\t');
    counts[parts[0]] = std::stoi(parts[1]);
  }
  EXPECT_EQ(counts["alpha"], 10);
  EXPECT_EQ(counts["beta"], 10);
  EXPECT_EQ(counts["gamma"], 10);
}

TEST(MapReduceTest, CustomJobAggregates) {
  SimulatedDfs dfs;
  ThreadPool pool(2);
  // sensor_id \t value
  std::string input = "s1\t10\ns2\t20\ns1\t30\ns2\t40\n";
  ASSERT_TRUE(dfs.Write("/readings", input).ok());
  MapReduceJob job(&dfs, &pool);
  auto stats = job.Run(
      "/readings", "/sums",
      [](const std::string& line) {
        auto f = SplitString(line, '\t');
        std::vector<KeyValue> out;
        out.push_back({f[0], f[1]});
        return out;
      },
      [](const std::string& key, const std::vector<std::string>& values) {
        long sum = 0;
        for (const auto& v : values) sum += std::stol(v);
        return std::vector<std::string>{key + "\t" + std::to_string(sum)};
      },
      /*num_reducers=*/2);
  ASSERT_TRUE(stats.ok());
  auto out = dfs.Read("/sums");
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("s1\t40"), std::string::npos);
  EXPECT_NE(out->find("s2\t60"), std::string::npos);
}

TEST(MapReduceTest, EmptyInput) {
  SimulatedDfs dfs;
  ThreadPool pool(2);
  ASSERT_TRUE(dfs.Write("/empty", "").ok());
  auto stats = RunWordCount(&dfs, &pool, "/empty", "/out");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->map_output_pairs, 0u);
  EXPECT_EQ(*dfs.Read("/out"), "");
}

TEST(TableConnectorTest, ExportImportRoundTrip) {
  Database db;
  TransactionManager tm;
  SimulatedDfs dfs;
  DfsTableConnector conn(&dfs);
  Schema s({ColumnDef("id", DataType::kInt64), ColumnDef("name", DataType::kString),
            ColumnDef("score", DataType::kDouble), ColumnDef("loc", DataType::kGeoPoint)});
  ColumnTable* t = *db.CreateTable("src", s);
  auto txn = tm.Begin();
  ASSERT_TRUE(tm.Insert(txn.get(), t,
                        {Value::Int(1), Value::Str("ann"), Value::Dbl(2.5),
                         Value::GeoPoint(8.5, 49.3)}).ok());
  ASSERT_TRUE(tm.Insert(txn.get(), t,
                        {Value::Int(2), Value::Null(), Value::Dbl(-1.0),
                         Value::GeoPoint(0, 0)}).ok());
  ASSERT_TRUE(tm.Commit(txn.get()).ok());

  ASSERT_TRUE(conn.Export(*t, tm.AutoCommitView(), "/tables/src.tsv").ok());
  auto imported = conn.Import("/tables/src.tsv", "dst", &db, &tm);
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();
  ColumnTable* dst = *imported;
  EXPECT_EQ(dst->CountVisible(tm.AutoCommitView()), 2u);
  EXPECT_EQ(dst->GetValue(0, 1), Value::Str("ann"));
  EXPECT_TRUE(dst->GetValue(1, 1).is_null());
  EXPECT_EQ(dst->GetValue(0, 3).AsGeoPoint().lat, 49.3);
}

TEST(TableConnectorTest, AppendToExisting) {
  Database db;
  TransactionManager tm;
  SimulatedDfs dfs;
  DfsTableConnector conn(&dfs);
  Schema s({ColumnDef("k", DataType::kInt64)});
  ColumnTable* t = *db.CreateTable("t", s);
  ASSERT_TRUE(dfs.Write("/more.tsv", "k:INT64\n5\n6\n").ok());
  auto n = conn.AppendTo("/more.tsv", t, &tm);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2u);
  EXPECT_EQ(t->CountVisible(tm.AutoCommitView()), 2u);
}

TEST(TableConnectorTest, MalformedTsvRejected) {
  auto bad_header = DfsTableConnector::ParseTsv("id\n1\n");
  EXPECT_FALSE(bad_header.ok());
  auto bad_width = DfsTableConnector::ParseTsv("id:INT64\tx:INT64\n1\n");
  EXPECT_FALSE(bad_width.ok());
  auto bad_type = DfsTableConnector::ParseTsv("id:WAT\n1\n");
  EXPECT_FALSE(bad_type.ok());
}

}  // namespace
}  // namespace poly
