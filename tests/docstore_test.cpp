#include <gtest/gtest.h>

#include "docstore/doc_query.h"
#include "docstore/flexible_table.h"
#include "docstore/json.h"
#include "docstore/object_index.h"
#include "storage/database.h"

namespace poly {
namespace {

TEST(JsonTest, ParsePrimitives) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_EQ(ParseJson("true")->AsBool(), true);
  EXPECT_EQ(ParseJson("42")->AsNumber(), 42.0);
  EXPECT_EQ(ParseJson("-3.5")->AsNumber(), -3.5);
  EXPECT_EQ(ParseJson("\"hi\"")->AsString(), "hi");
}

TEST(JsonTest, ParseNested) {
  auto doc = ParseJson(R"({"a": [1, 2, {"b": "x"}], "c": {"d": null}})");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* a = doc->Field("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->AsArray().size(), 3u);
  EXPECT_EQ(a->Item(2)->Field("b")->AsString(), "x");
  EXPECT_TRUE(doc->Field("c")->Field("d")->is_null());
  EXPECT_EQ(doc->Field("zz"), nullptr);
  EXPECT_EQ(a->Item(9), nullptr);
}

TEST(JsonTest, ParseErrors) {
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
  EXPECT_FALSE(ParseJson("1 trailing").ok());
  EXPECT_FALSE(ParseJson("nope").ok());
}

TEST(JsonTest, SerializeRoundTrip) {
  std::string text = R"({"arr":[1,2.5,"s"],"esc":"a\"b\nc","n":null,"t":true})";
  auto doc = ParseJson(text);
  ASSERT_TRUE(doc.ok());
  auto again = ParseJson(doc->Serialize());
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(*doc == *again);
}

TEST(DocPathTest, ParseAndEvaluate) {
  auto doc = ParseJson(R"({"items":[{"sku":"a","qty":2},{"sku":"b","qty":7}]})");
  ASSERT_TRUE(doc.ok());
  auto path = DocPath::Parse("$.items[*].sku");
  ASSERT_TRUE(path.ok());
  auto matches = path->Evaluate(*doc);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0]->AsString(), "a");
  EXPECT_EQ(matches[1]->AsString(), "b");

  auto idx = DocPath::Parse("$.items[1].qty");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(idx->First(*doc)->AsNumber(), 7.0);
  EXPECT_EQ(idx->ToString(), "$.items[1].qty");

  auto missing = DocPath::Parse("$.nope.deep");
  ASSERT_TRUE(missing.ok());
  EXPECT_TRUE(missing->Evaluate(*doc).empty());
}

TEST(DocPathTest, ParseErrors) {
  EXPECT_FALSE(DocPath::Parse("$.").ok());
  EXPECT_FALSE(DocPath::Parse("$[x]").ok());
  EXPECT_FALSE(DocPath::Parse("$.a[").ok());
  EXPECT_FALSE(DocPath::Parse("$+").ok());
}

TEST(JsonCompareTest, Semantics) {
  EXPECT_TRUE(JsonCompare(CmpOp::kLt, JsonValue::Number(1), JsonValue::Number(2)));
  EXPECT_TRUE(JsonCompare(CmpOp::kEq, JsonValue::Str("a"), JsonValue::Str("a")));
  EXPECT_TRUE(JsonCompare(CmpOp::kGt, JsonValue::Str("b"), JsonValue::Str("a")));
  // Mixed kinds only equal/unequal.
  EXPECT_TRUE(JsonCompare(CmpOp::kNe, JsonValue::Number(1), JsonValue::Str("1")));
  EXPECT_FALSE(JsonCompare(CmpOp::kLt, JsonValue::Number(1), JsonValue::Str("1")));
}

class DocQueryFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema s({ColumnDef("id", DataType::kInt64), ColumnDef("doc", DataType::kDocument)});
    table_ = *db_.CreateTable("orders", s);
    auto txn = tm_.Begin();
    auto add = [&](int64_t id, const std::string& json) {
      ASSERT_TRUE(tm_.Insert(txn.get(), table_, {Value::Int(id), Value::Document(json)}).ok());
    };
    add(1, R"({"customer":"acme","total":100,"items":[{"sku":"x","qty":1}]})");
    add(2, R"({"customer":"globex","total":250,"items":[{"sku":"y","qty":9}]})");
    add(3, R"({"customer":"acme","total":70})");
    ASSERT_TRUE(tm_.Commit(txn.get()).ok());
  }

  Database db_;
  TransactionManager tm_;
  ColumnTable* table_ = nullptr;
};

TEST_F(DocQueryFixture, SelectWhereOnPath) {
  auto q = DocQuery::Create(table_, "doc");
  ASSERT_TRUE(q.ok());
  auto rows = q->SelectWhere(tm_.AutoCommitView(), "$.customer", CmpOp::kEq,
                             JsonValue::Str("acme"));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, (std::vector<uint64_t>{0, 2}));
  auto big = q->SelectWhere(tm_.AutoCommitView(), "$.total", CmpOp::kGt,
                            JsonValue::Number(90));
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(*big, (std::vector<uint64_t>{0, 1}));
}

TEST_F(DocQueryFixture, SelectWhereInsideArray) {
  auto q = DocQuery::Create(table_, "doc");
  ASSERT_TRUE(q.ok());
  auto rows = q->SelectWhere(tm_.AutoCommitView(), "$.items[*].qty", CmpOp::kGe,
                             JsonValue::Number(5));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, std::vector<uint64_t>{1});
}

TEST_F(DocQueryFixture, SelectExistsAndExtract) {
  auto q = DocQuery::Create(table_, "doc");
  ASSERT_TRUE(q.ok());
  auto has_items = q->SelectExists(tm_.AutoCommitView(), "$.items");
  ASSERT_TRUE(has_items.ok());
  EXPECT_EQ(*has_items, (std::vector<uint64_t>{0, 1}));
  auto totals = q->Extract(tm_.AutoCommitView(), "$.total");
  ASSERT_TRUE(totals.ok());
  ASSERT_EQ(totals->size(), 3u);
  EXPECT_EQ((*totals)[2].second.AsNumber(), 70.0);
}

TEST_F(DocQueryFixture, CreateRejectsNonDocumentColumn) {
  EXPECT_FALSE(DocQuery::Create(table_, "id").ok());
}

TEST(FlexibleTableTest, ImplicitColumnsOnInsert) {
  Database db;
  TransactionManager tm;
  ColumnTable* t = *db.CreateTable("flex", Schema());
  FlexibleTable flex(&tm, t);

  ASSERT_TRUE(flex.Insert({{"name", Value::Str("a")}, {"qty", Value::Int(3)}}).ok());
  ASSERT_TRUE(flex.Insert({{"name", Value::Str("b")}, {"color", Value::Str("red")}}).ok());
  EXPECT_EQ(t->schema().num_columns(), 3u);
  EXPECT_EQ(flex.NumRecords(), 2u);

  // Row 0 has no "color": reads NULL.
  size_t color = *t->schema().IndexOf("color");
  EXPECT_TRUE(t->GetValue(0, color).is_null());
  EXPECT_EQ(t->GetValue(1, color), Value::Str("red"));
  // Row 1 has no "qty".
  size_t qty = *t->schema().IndexOf("qty");
  EXPECT_TRUE(t->GetValue(1, qty).is_null());
}

TEST(FlexibleTableTest, TypeConflictRejected) {
  Database db;
  TransactionManager tm;
  ColumnTable* t = *db.CreateTable("flex", Schema());
  FlexibleTable flex(&tm, t);
  ASSERT_TRUE(flex.Insert({{"qty", Value::Int(3)}}).ok());
  EXPECT_FALSE(flex.Insert({{"qty", Value::Str("three")}}).ok());
  // Null is compatible with any column type.
  EXPECT_TRUE(flex.Insert({{"qty", Value::Null()}}).ok());
}

TEST(FlexibleTableTest, SparseColumnsStayCheap) {
  Database db;
  TransactionManager tm;
  ColumnTable* t = *db.CreateTable("flex", Schema());
  FlexibleTable flex(&tm, t);
  // 500 rows, 20 rare columns each set on a single row.
  for (int i = 0; i < 500; ++i) {
    std::map<std::string, Value> record = {{"common", Value::Int(i)}};
    if (i % 25 == 0) record["rare_" + std::to_string(i / 25)] = Value::Int(i);
    ASSERT_TRUE(flex.Insert(record).ok());
  }
  EXPECT_EQ(t->schema().num_columns(), 21u);
  t->Merge();
  // The 20 rare columns (1 value + 499 NULLs each) must together cost a
  // small fraction of the dense common column: the dictionary layer packs
  // a mostly-NULL column to ~1 bit per row.
  size_t common_bytes = t->column(0).MemoryBytes();
  size_t rare_bytes = 0;
  for (size_t c = 1; c < t->num_columns(); ++c) rare_bytes += t->column(c).MemoryBytes();
  EXPECT_LT(rare_bytes, common_bytes / 2);
}

TEST(ObjectIndexTest, MaterializeAndLookup) {
  Database db;
  TransactionManager tm;
  ColumnTable* header = *db.CreateTable(
      "hdr", Schema({ColumnDef("key", DataType::kInt64), ColumnDef("who", DataType::kString)}));
  ColumnTable* items = *db.CreateTable(
      "itm", Schema({ColumnDef("hdr_key", DataType::kInt64), ColumnDef("sku", DataType::kString)}));
  ColumnTable* target = *db.CreateTable(
      "objs", Schema({ColumnDef("key", DataType::kInt64), ColumnDef("doc", DataType::kDocument)}));

  auto txn = tm.Begin();
  ASSERT_TRUE(tm.Insert(txn.get(), header, {Value::Int(1), Value::Str("ann")}).ok());
  ASSERT_TRUE(tm.Insert(txn.get(), header, {Value::Int(2), Value::Str("bob")}).ok());
  ASSERT_TRUE(tm.Insert(txn.get(), items, {Value::Int(1), Value::Str("x")}).ok());
  ASSERT_TRUE(tm.Insert(txn.get(), items, {Value::Int(1), Value::Str("y")}).ok());
  ASSERT_TRUE(tm.Commit(txn.get()).ok());

  auto written = ObjectJoinIndex::Materialize(&tm, *header, "key", *items, "hdr_key", target);
  ASSERT_TRUE(written.ok()) << written.status().ToString();
  EXPECT_EQ(*written, 2u);

  auto obj = ObjectJoinIndex::Lookup(*target, tm.AutoCommitView(), 1);
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ(obj->Field("header")->Field("who")->AsString(), "ann");
  EXPECT_EQ(obj->Field("items")->AsArray().size(), 2u);
  // Header without items gets an empty array.
  auto obj2 = ObjectJoinIndex::Lookup(*target, tm.AutoCommitView(), 2);
  ASSERT_TRUE(obj2.ok());
  EXPECT_TRUE(obj2->Field("items")->AsArray().empty());
  EXPECT_FALSE(ObjectJoinIndex::Lookup(*target, tm.AutoCommitView(), 99).ok());
}

}  // namespace
}  // namespace poly
