#include <gtest/gtest.h>

#include "query/compiled.h"
#include "query/executor.h"
#include "query/optimizer.h"
#include "query/sql_parser.h"
#include "txn/transaction_manager.h"

namespace poly {
namespace {

class SqlFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    orders_ = *db_.CreateTable(
        "orders", Schema({ColumnDef("o_id", DataType::kInt64),
                          ColumnDef("region", DataType::kString),
                          ColumnDef("amount", DataType::kDouble),
                          ColumnDef("qty", DataType::kInt64)}));
    regions_ = *db_.CreateTable(
        "regions", Schema({ColumnDef("name", DataType::kString),
                           ColumnDef("manager", DataType::kString)}));
    const char* names[] = {"north", "south", "east", "west"};
    auto txn = tm_.Begin();
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(tm_.Insert(txn.get(), orders_,
                             {Value::Int(i), Value::Str(names[i % 4]),
                              Value::Dbl(i * 2.5), Value::Int(i % 7)})
                      .ok());
    }
    for (const char* n : names) {
      ASSERT_TRUE(
          tm_.Insert(txn.get(), regions_, {Value::Str(n), Value::Str(std::string("mgr_") + n)})
              .ok());
    }
    ASSERT_TRUE(tm_.Commit(txn.get()).ok());
  }

  ResultSet Run(const std::string& sql) {
    SqlParser parser(&db_);
    auto plan = parser.Parse(sql);
    EXPECT_TRUE(plan.ok()) << sql << " -> " << plan.status().ToString();
    if (!plan.ok()) return {};
    Optimizer opt;
    Executor exec(&db_, tm_.AutoCommitView());
    auto rs = exec.Execute(opt.Optimize(*plan));
    EXPECT_TRUE(rs.ok()) << sql << " -> " << rs.status().ToString();
    return rs.ok() ? *std::move(rs) : ResultSet{};
  }

  Status ParseError(const std::string& sql) {
    SqlParser parser(&db_);
    auto plan = parser.Parse(sql);
    EXPECT_FALSE(plan.ok()) << sql;
    return plan.status();
  }

  Database db_;
  TransactionManager tm_;
  ColumnTable* orders_ = nullptr;
  ColumnTable* regions_ = nullptr;
};

TEST_F(SqlFixture, SelectStar) {
  ResultSet rs = Run("SELECT * FROM orders");
  EXPECT_EQ(rs.num_rows(), 40u);
  EXPECT_EQ(rs.num_columns(), 4u);
}

TEST_F(SqlFixture, ProjectionWithAliasAndArithmetic) {
  ResultSet rs = Run("SELECT o_id, amount * 2 AS double_amount FROM orders LIMIT 3");
  ASSERT_EQ(rs.num_rows(), 3u);
  EXPECT_EQ(rs.column_names[1], "double_amount");
  EXPECT_EQ(rs.rows[2][1], Value::Dbl(10.0));
}

TEST_F(SqlFixture, WhereWithAndOrParens) {
  ResultSet rs = Run(
      "SELECT o_id FROM orders WHERE (region = 'north' OR region = 'south') "
      "AND amount >= 50.0");
  // region north/south = even ids; amount >= 50 -> id >= 20.
  EXPECT_EQ(rs.num_rows(), 10u);
}

TEST_F(SqlFixture, WhereLikeInIsNull) {
  EXPECT_EQ(Run("SELECT o_id FROM orders WHERE region LIKE 'no%'").num_rows(), 10u);
  EXPECT_EQ(Run("SELECT o_id FROM orders WHERE qty IN (0, 1)").num_rows(), 12u);
  EXPECT_EQ(Run("SELECT o_id FROM orders WHERE region IS NULL").num_rows(), 0u);
  EXPECT_EQ(Run("SELECT o_id FROM orders WHERE region IS NOT NULL").num_rows(), 40u);
  EXPECT_EQ(Run("SELECT o_id FROM orders WHERE NOT region = 'north'").num_rows(), 30u);
}

TEST_F(SqlFixture, GroupByWithAggregates) {
  ResultSet rs = Run(
      "SELECT region, COUNT(*) AS cnt, SUM(amount) AS total, AVG(qty) AS aq "
      "FROM orders GROUP BY region ORDER BY region");
  ASSERT_EQ(rs.num_rows(), 4u);
  EXPECT_EQ(rs.column_names, (std::vector<std::string>{"region", "cnt", "total", "aq"}));
  EXPECT_EQ(rs.rows[0][0], Value::Str("east"));
  for (const auto& row : rs.rows) EXPECT_EQ(row[1], Value::Int(10));
}

TEST_F(SqlFixture, HavingOnAggregateAlias) {
  // Region sums: north 450, south 475, east 500, west 525.
  ResultSet rs = Run(
      "SELECT region, SUM(amount) AS total FROM orders "
      "GROUP BY region HAVING total > 480 ORDER BY total DESC");
  ASSERT_EQ(rs.num_rows(), 2u);
  EXPECT_EQ(rs.column_names, (std::vector<std::string>{"region", "total"}));
  EXPECT_EQ(rs.rows[0][0], Value::Str("west"));
  EXPECT_EQ(rs.rows[0][1], Value::Dbl(525.0));
  EXPECT_EQ(rs.rows[1][0], Value::Str("east"));
}

TEST_F(SqlFixture, HavingOnAggregateCallMatchesSelectList) {
  // The HAVING aggregate structurally matches a select-list aggregate, so
  // it reuses that slot instead of computing a hidden one.
  ResultSet rs = Run(
      "SELECT region, SUM(amount) AS total FROM orders "
      "GROUP BY region HAVING SUM(amount) > 480 ORDER BY region");
  ASSERT_EQ(rs.num_rows(), 2u);
  EXPECT_EQ(rs.rows[0][0], Value::Str("east"));
  EXPECT_EQ(rs.rows[1][0], Value::Str("west"));
}

TEST_F(SqlFixture, HavingHiddenAggregateDroppedFromOutput) {
  // COUNT(*) appears only in HAVING: computed as a hidden slot, filtered
  // on, then projected away — the output has just the group column.
  ResultSet rs = Run(
      "SELECT region FROM orders GROUP BY region HAVING COUNT(*) > 5 "
      "ORDER BY region");
  ASSERT_EQ(rs.num_rows(), 4u);
  EXPECT_EQ(rs.column_names, (std::vector<std::string>{"region"}));
  ASSERT_EQ(rs.rows[0].size(), 1u);

  // And a selective hidden aggregate: only west's SUM clears 510.
  ResultSet top = Run(
      "SELECT region FROM orders GROUP BY region HAVING SUM(amount) > 510");
  ASSERT_EQ(top.num_rows(), 1u);
  EXPECT_EQ(top.rows[0][0], Value::Str("west"));
}

TEST_F(SqlFixture, HavingOnGroupByColumnAndCompoundPredicate) {
  ResultSet rs = Run(
      "SELECT region, COUNT(*) AS c FROM orders "
      "GROUP BY region HAVING region = 'north' AND c > 5");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::Str("north"));
  EXPECT_EQ(rs.rows[0][1], Value::Int(10));
}

TEST_F(SqlFixture, HavingOnGlobalAggregate) {
  // Aggregate select list without GROUP BY: HAVING filters the single row.
  EXPECT_EQ(Run("SELECT COUNT(*) AS n FROM orders HAVING n > 10").num_rows(), 1u);
  EXPECT_EQ(Run("SELECT COUNT(*) AS n FROM orders HAVING n > 100").num_rows(), 0u);
}

TEST_F(SqlFixture, HavingErrors) {
  // HAVING needs an aggregate context.
  Status s = ParseError("SELECT o_id FROM orders HAVING o_id > 3");
  EXPECT_TRUE(s.IsInvalidArgument());
  // A raw (non-grouped, non-aggregated) column is not in scope.
  s = ParseError(
      "SELECT region, COUNT(*) AS c FROM orders GROUP BY region "
      "HAVING amount > 3");
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.ToString().find("neither a GROUP BY column"), std::string::npos);
  // Dangling HAVING expression.
  EXPECT_FALSE(ParseError("SELECT region, COUNT(*) AS c FROM orders "
                          "GROUP BY region HAVING")
                   .ok());
}

TEST_F(SqlFixture, SelectOrderReorderedVsAggregateOutput) {
  // Aggregate node emits [group, aggs]; SELECT asks aggs first.
  ResultSet rs = Run(
      "SELECT COUNT(*) AS cnt, region FROM orders GROUP BY region ORDER BY region DESC");
  ASSERT_EQ(rs.num_rows(), 4u);
  EXPECT_EQ(rs.column_names[0], "cnt");
  EXPECT_EQ(rs.rows[0][1], Value::Str("west"));
  EXPECT_EQ(rs.rows[0][0], Value::Int(10));
}

TEST_F(SqlFixture, GlobalAggregatesWithoutGroupBy) {
  ResultSet rs = Run("SELECT COUNT(*) AS n, MIN(amount) AS lo, MAX(amount) AS hi FROM orders");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::Int(40));
  EXPECT_EQ(rs.rows[0][1], Value::Dbl(0.0));
  EXPECT_EQ(rs.rows[0][2], Value::Dbl(39 * 2.5));
}

TEST_F(SqlFixture, JoinWithQualifiedColumns) {
  ResultSet rs = Run(
      "SELECT orders.o_id, regions.manager FROM orders "
      "JOIN regions ON orders.region = regions.name "
      "WHERE regions.manager = 'mgr_east' ORDER BY o_id LIMIT 2");
  ASSERT_EQ(rs.num_rows(), 2u);
  EXPECT_EQ(rs.rows[0][0], Value::Int(2));
  EXPECT_EQ(rs.rows[1][0], Value::Int(6));
}

TEST_F(SqlFixture, JoinGroupByAggregate) {
  ResultSet rs = Run(
      "SELECT manager, SUM(amount) AS revenue FROM orders "
      "JOIN regions ON region = name GROUP BY manager ORDER BY revenue DESC");
  ASSERT_EQ(rs.num_rows(), 4u);
  // West has ids 3,7,...,39 -> the largest amounts.
  EXPECT_EQ(rs.rows[0][0], Value::Str("mgr_west"));
}

TEST_F(SqlFixture, OrderByMultipleKeysAndLimit) {
  ResultSet rs = Run(
      "SELECT qty, o_id FROM orders ORDER BY qty ASC, o_id DESC LIMIT 3");
  ASSERT_EQ(rs.num_rows(), 3u);
  EXPECT_EQ(rs.rows[0][0], Value::Int(0));
  EXPECT_EQ(rs.rows[0][1], Value::Int(35));
  EXPECT_EQ(rs.rows[1][1], Value::Int(28));
}

TEST_F(SqlFixture, ParsedPlanIsCompilable) {
  SqlParser parser(&db_);
  auto plan = parser.Parse(
      "SELECT SUM(amount * qty) AS revenue FROM orders WHERE qty < 5");
  ASSERT_TRUE(plan.ok());
  Optimizer opt;
  PlanPtr optimized = opt.Optimize(*plan);
  // The projection on top of the aggregate is trivial, but compilation
  // targets the aggregate; verify interpreted execution instead and that
  // the aggregate child alone compiles.
  Executor exec(&db_, tm_.AutoCommitView());
  auto rs = exec.Execute(optimized);
  ASSERT_TRUE(rs.ok());
  QueryCompiler qc(&db_, tm_.AutoCommitView());
  ASSERT_EQ(optimized->kind, PlanKind::kProject);
  ASSERT_TRUE(qc.CanCompile(optimized->children[0]));
  auto compiled = qc.Execute(optimized->children[0]);
  ASSERT_TRUE(compiled.ok());
  EXPECT_DOUBLE_EQ(compiled->rows[0][0].NumericValue(), rs->rows[0][0].NumericValue());
}

TEST_F(SqlFixture, UsefulErrors) {
  EXPECT_EQ(ParseError("SELECT * FROM ghosts").code(), StatusCode::kNotFound);
  EXPECT_EQ(ParseError("SELECT nope FROM orders").code(), StatusCode::kNotFound);
  EXPECT_FALSE(ParseError("SELECT FROM orders").ok());
  EXPECT_FALSE(ParseError("SELECT * orders").ok());
  EXPECT_FALSE(ParseError("SELECT region, COUNT(*) FROM orders").ok());  // missing GROUP BY
  EXPECT_FALSE(ParseError("SELECT * FROM orders WHERE amount >").ok());
  EXPECT_FALSE(ParseError("SELECT * FROM orders ORDER BY missing_col").ok());
  EXPECT_FALSE(ParseError("SELECT * FROM orders LIMIT abc").ok());
  EXPECT_FALSE(ParseError("SELECT * FROM orders trailing junk").ok());
  EXPECT_FALSE(
      ParseError("SELECT o_id FROM orders JOIN regions ON o_id = qty").ok());
}

TEST_F(SqlFixture, AmbiguousColumnNeedsQualifier) {
  // Create a second table sharing a column name with orders.
  ASSERT_TRUE(db_.CreateTable("dupes", Schema({ColumnDef("o_id", DataType::kInt64),
                                               ColumnDef("region", DataType::kString)}))
                  .ok());
  Status s = ParseError(
      "SELECT o_id FROM orders JOIN dupes ON orders.region = dupes.region "
      "WHERE o_id = 1");
  EXPECT_TRUE(s.IsInvalidArgument());
}

TEST_F(SqlFixture, TrailingSemicolonAccepted) {
  EXPECT_EQ(Run("SELECT * FROM orders LIMIT 1;").num_rows(), 1u);
}

TEST_F(SqlFixture, DistinctDedupsProjectedRows) {
  // 40 orders over 4 regions: DISTINCT collapses to the 4 region names, in
  // first-occurrence order (the scan order of the base table).
  ResultSet rs = Run("SELECT DISTINCT region FROM orders");
  ASSERT_EQ(rs.num_rows(), 4u);
  EXPECT_EQ(rs.column_names[0], "region");
  EXPECT_EQ(rs.rows[0][0], Value::Str("north"));
  EXPECT_EQ(rs.rows[1][0], Value::Str("south"));
  EXPECT_EQ(rs.rows[2][0], Value::Str("east"));
  EXPECT_EQ(rs.rows[3][0], Value::Str("west"));
}

TEST_F(SqlFixture, DistinctOverMultipleColumnsAndExpressions) {
  // (region, qty % 7) has 4 * 7 = 28 combinations among 40 rows.
  ResultSet rs = Run("SELECT DISTINCT region, qty FROM orders");
  EXPECT_EQ(rs.num_rows(), 28u);
  EXPECT_EQ(rs.num_columns(), 2u);

  // DISTINCT applies to the projected expression, not the base column.
  ResultSet doubled = Run("SELECT DISTINCT qty * 2 AS qty2 FROM orders");
  EXPECT_EQ(doubled.num_rows(), 7u);
  EXPECT_EQ(doubled.column_names[0], "qty2");
}

TEST_F(SqlFixture, DistinctComposesWithWhereOrderByLimit) {
  // Dedup happens before ORDER BY/LIMIT: the limit applies to distinct rows.
  ResultSet rs = Run(
      "SELECT DISTINCT region FROM orders WHERE amount >= 10.0 "
      "ORDER BY region DESC LIMIT 2");
  ASSERT_EQ(rs.num_rows(), 2u);
  EXPECT_EQ(rs.rows[0][0], Value::Str("west"));
  EXPECT_EQ(rs.rows[1][0], Value::Str("south"));
}

TEST_F(SqlFixture, DistinctLowersToAggregateAndFallsBackFromCompilation) {
  SqlParser parser(&db_);
  auto plan = parser.Parse("SELECT DISTINCT qty FROM orders");
  ASSERT_TRUE(plan.ok());
  Optimizer opt;
  PlanPtr optimized = opt.Optimize(*plan);
  // The DISTINCT wrapper is an aggregate with group-by columns only — the
  // compiled path must decline it (Database::Execute then falls back to the
  // interpreted executor).
  QueryCompiler qc(&db_, tm_.AutoCommitView());
  EXPECT_FALSE(qc.CanCompile(optimized));

  // Database::Execute round trip exercises that fallback end to end.
  auto rs = db_.Execute("SELECT DISTINCT qty FROM orders");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->num_rows(), 7u);
}

}  // namespace
}  // namespace poly
