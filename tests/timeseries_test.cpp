#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "engines/timeseries/ts_codec.h"
#include "engines/timeseries/ts_ops.h"
#include "storage/database.h"
#include "txn/transaction_manager.h"

namespace poly {
namespace {

TEST(BitIoTest, RoundTrip) {
  BitWriter w;
  w.WriteBit(true);
  w.WriteBits(0b1011, 4);
  w.WriteBits(12345678901234ULL, 64);
  BitReader r(w.data());
  EXPECT_TRUE(*r.ReadBit());
  EXPECT_EQ(*r.ReadBits(4), 0b1011u);
  EXPECT_EQ(*r.ReadBits(64), 12345678901234ULL);
}

TEST(BitIoTest, UnderflowIsError) {
  BitWriter w;
  w.WriteBit(true);
  BitReader r(w.data());
  ASSERT_TRUE(r.ReadBits(8).ok());  // padding bits of the same byte are readable
  EXPECT_FALSE(r.ReadBits(8).ok());
}

TEST(TsCodecTest, RoundTripRegularSeries) {
  CompressedSeries c;
  for (int i = 0; i < 1000; ++i) {
    c.Append(1000000LL * i, 20.0 + (i % 7) * 0.5);
  }
  auto ts = c.Decompress();
  ASSERT_TRUE(ts.ok());
  ASSERT_EQ(ts->size(), 1000u);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(ts->timestamps[i], 1000000LL * i);
    EXPECT_EQ(ts->values[i], 20.0 + (i % 7) * 0.5);
  }
}

TEST(TsCodecTest, RoundTripIrregularSeries) {
  Random rng(7);
  TimeSeries original;
  int64_t t = 0;
  for (int i = 0; i < 500; ++i) {
    t += 1 + static_cast<int64_t>(rng.Uniform(100000));
    original.Append(t, rng.NextGaussian() * 1e6);
  }
  CompressedSeries c = CompressedSeries::FromSeries(original);
  auto decoded = c.Decompress();
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(decoded->timestamps[i], original.timestamps[i]);
    EXPECT_EQ(decoded->values[i], original.values[i]);  // bit-exact
  }
}

TEST(TsCodecTest, SensorDataCompressesWell) {
  // Regular sampling + slowly drifting values: the §II-F sensor shape.
  CompressedSeries c;
  double v = 21.5;
  Random rng(3);
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.05)) v += 0.25;  // occasional step
    c.Append(1000000LL * i, v);
  }
  EXPECT_GT(c.CompressionRatio(), 10.0);
}

TEST(TsCodecTest, EmptyAndSingle) {
  CompressedSeries c;
  auto empty = c.Decompress();
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  c.Append(42, 3.14);
  auto one = c.Decompress();
  ASSERT_TRUE(one.ok());
  ASSERT_EQ(one->size(), 1u);
  EXPECT_EQ(one->timestamps[0], 42);
  EXPECT_EQ(one->values[0], 3.14);
}

TEST(TsOpsTest, ResampleAggregations) {
  TimeSeries ts;
  // Two buckets of width 10: [0..9] has 1,3 ; [10..19] has 5.
  ts.Append(2, 1);
  ts.Append(7, 3);
  ts.Append(12, 5);
  TimeSeries mean = Resample(ts, 10, ResampleAgg::kMean);
  ASSERT_EQ(mean.size(), 2u);
  EXPECT_EQ(mean.timestamps[0], 0);
  EXPECT_EQ(mean.values[0], 2.0);
  EXPECT_EQ(mean.values[1], 5.0);
  EXPECT_EQ(Resample(ts, 10, ResampleAgg::kSum).values[0], 4.0);
  EXPECT_EQ(Resample(ts, 10, ResampleAgg::kMin).values[0], 1.0);
  EXPECT_EQ(Resample(ts, 10, ResampleAgg::kMax).values[0], 3.0);
  EXPECT_EQ(Resample(ts, 10, ResampleAgg::kLast).values[0], 3.0);
  EXPECT_EQ(Resample(ts, 10, ResampleAgg::kCount).values[0], 2.0);
}

TEST(TsOpsTest, CorrelationDetectsRelationship) {
  TimeSeries a, b, noise;
  Random rng(5);
  for (int i = 0; i < 200; ++i) {
    double x = std::sin(i * 0.1);
    a.Append(i * 100, x);
    b.Append(i * 100, 2 * x + 1);  // perfectly correlated
    noise.Append(i * 100, rng.NextGaussian());
  }
  EXPECT_NEAR(Correlation(a, b, 100), 1.0, 1e-9);
  EXPECT_LT(std::abs(Correlation(a, noise, 100)), 0.3);
  // Anti-correlation.
  TimeSeries neg;
  for (int i = 0; i < 200; ++i) neg.Append(i * 100, -std::sin(i * 0.1));
  EXPECT_NEAR(Correlation(a, neg, 100), -1.0, 1e-9);
}

TEST(TsOpsTest, CorrelationHandlesMisalignedSeries) {
  TimeSeries a, b;
  for (int i = 0; i < 100; ++i) a.Append(i * 10, i);
  for (int i = 50; i < 150; ++i) b.Append(i * 10, i);
  double c = Correlation(a, b, 10);  // overlap = [50, 100)
  EXPECT_NEAR(c, 1.0, 1e-9);
  TimeSeries empty;
  EXPECT_EQ(Correlation(a, empty, 10), 0);
}

TEST(TsOpsTest, MovingAverageAndDifference) {
  TimeSeries ts;
  for (int i = 1; i <= 5; ++i) ts.Append(i, i);  // 1..5
  TimeSeries ma = MovingAverage(ts, 3);
  ASSERT_EQ(ma.size(), 3u);
  EXPECT_EQ(ma.values[0], 2.0);  // (1+2+3)/3
  EXPECT_EQ(ma.values[2], 4.0);
  TimeSeries d = Difference(ts);
  ASSERT_EQ(d.size(), 4u);
  for (double v : d.values) EXPECT_EQ(v, 1.0);
}

TEST(TsOpsTest, NormalizeAndSliceAndStats) {
  TimeSeries ts;
  ts.Append(0, 10);
  ts.Append(10, 20);
  ts.Append(20, 30);
  TimeSeries n = Normalize(ts);
  EXPECT_EQ(n.values[0], 0.0);
  EXPECT_EQ(n.values[2], 1.0);
  TimeSeries s = Slice(ts, 5, 25);
  ASSERT_EQ(s.size(), 2u);
  SeriesStats st = ComputeStats(ts);
  EXPECT_EQ(st.count, 3u);
  EXPECT_EQ(st.mean, 20.0);
  EXPECT_EQ(st.min, 10.0);
  EXPECT_EQ(st.max, 30.0);
  EXPECT_NEAR(st.stddev, std::sqrt(200.0 / 3), 1e-9);
}

TEST(TsOpsTest, SeriesFromTableFiltersByKeyAndSorts) {
  Database db;
  TransactionManager tm;
  Schema s({ColumnDef("sensor", DataType::kInt64), ColumnDef("ts", DataType::kTimestamp),
            ColumnDef("value", DataType::kDouble)});
  ColumnTable* t = *db.CreateTable("readings", s);
  auto txn = tm.Begin();
  // Interleaved sensors, out of time order.
  ASSERT_TRUE(tm.Insert(txn.get(), t, {Value::Int(1), Value::Timestamp(30), Value::Dbl(3)}).ok());
  ASSERT_TRUE(tm.Insert(txn.get(), t, {Value::Int(2), Value::Timestamp(10), Value::Dbl(9)}).ok());
  ASSERT_TRUE(tm.Insert(txn.get(), t, {Value::Int(1), Value::Timestamp(10), Value::Dbl(1)}).ok());
  ASSERT_TRUE(tm.Insert(txn.get(), t, {Value::Int(1), Value::Timestamp(20), Value::Dbl(2)}).ok());
  ASSERT_TRUE(tm.Commit(txn.get()).ok());

  auto series = SeriesFromTable(*t, tm.AutoCommitView(), "ts", "value", "sensor", 1);
  ASSERT_TRUE(series.ok());
  ASSERT_EQ(series->size(), 3u);
  EXPECT_EQ(series->timestamps, (std::vector<int64_t>{10, 20, 30}));
  EXPECT_EQ(series->values, (std::vector<double>{1, 2, 3}));
  EXPECT_FALSE(SeriesFromTable(*t, tm.AutoCommitView(), "nope", "value").ok());
}

}  // namespace
}  // namespace poly
