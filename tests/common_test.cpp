#include <cstring>
#include <set>

#include <gtest/gtest.h>

#include "common/arena.h"
#include "common/bitpack.h"
#include "common/random.h"
#include "common/serializer.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace poly {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kAborted), "Aborted");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "Unavailable");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIOError), "IOError");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> r = Status::InvalidArgument("bad");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  POLY_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalf(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_FALSE(UseHalf(7, &out).ok());
}

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena arena(128);
  std::set<void*> seen;
  for (int i = 0; i < 100; ++i) {
    void* p = arena.Allocate(24, 8);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 8, 0u);
    EXPECT_TRUE(seen.insert(p).second);
  }
  EXPECT_GE(arena.BytesAllocated(), 2400u);
}

TEST(ArenaTest, CopyBytesRoundTrips) {
  Arena arena;
  const char* msg = "hello column store";
  char* copy = arena.CopyBytes(msg, strlen(msg) + 1);
  EXPECT_STREQ(copy, msg);
}

TEST(ArenaTest, ResetRecyclesMemory) {
  Arena arena(1024);
  arena.Allocate(100);   // first (recycled) block
  arena.Allocate(5000);  // forces a second, large block
  size_t reserved = arena.BytesReserved();
  EXPECT_GT(reserved, 5000u);
  arena.Reset();
  EXPECT_EQ(arena.BytesAllocated(), 0u);
  EXPECT_LT(arena.BytesReserved(), reserved);
}

TEST(RandomTest, Deterministic) {
  Random a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, UniformInRange) {
  Random r(1);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = r.Uniform(10);
    EXPECT_LT(v, 10u);
  }
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RandomTest, GaussianRoughlyCentered) {
  Random r(3);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.NextGaussian();
  EXPECT_NEAR(sum / n, 0.0, 0.05);
}

TEST(ZipfTest, SkewsTowardsSmallKeys) {
  ZipfGenerator zipf(1000, 0.99, 11);
  int head = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Next() < 10) ++head;
  }
  // With theta=0.99 the top-10 of 1000 keys should absorb a large share.
  EXPECT_GT(head, n / 10);
}

TEST(ZipfTest, StaysInRange) {
  ZipfGenerator zipf(50, 0.5, 2);
  for (int i = 0; i < 5000; ++i) EXPECT_LT(zipf.Next(), 50u);
}

TEST(BitPackTest, BitsFor) {
  EXPECT_EQ(BitsFor(0), 1);
  EXPECT_EQ(BitsFor(1), 1);
  EXPECT_EQ(BitsFor(2), 2);
  EXPECT_EQ(BitsFor(255), 8);
  EXPECT_EQ(BitsFor(256), 9);
  EXPECT_EQ(BitsFor(~0ULL), 64);
}

TEST(BitPackTest, AppendGetRoundTrip) {
  for (int bits : {1, 3, 7, 8, 13, 31, 33, 64}) {
    BitPackedVector v(bits);
    Random r(bits);
    std::vector<uint64_t> expect;
    uint64_t mask = bits == 64 ? ~0ULL : (1ULL << bits) - 1;
    for (int i = 0; i < 500; ++i) {
      uint64_t val = r.Next() & mask;
      v.Append(val);
      expect.push_back(val);
    }
    ASSERT_EQ(v.size(), expect.size());
    for (size_t i = 0; i < expect.size(); ++i) {
      EXPECT_EQ(v.Get(i), expect[i]) << "bits=" << bits << " i=" << i;
    }
  }
}

TEST(BitPackTest, SetOverwrites) {
  BitPackedVector v(5);
  for (uint64_t i = 0; i < 40; ++i) v.Append(i % 32);
  v.Set(7, 31);
  v.Set(8, 0);
  EXPECT_EQ(v.Get(7), 31u);
  EXPECT_EQ(v.Get(8), 0u);
  EXPECT_EQ(v.Get(6), 6u);
  EXPECT_EQ(v.Get(9), 9u);
}

TEST(BitPackTest, RepackPreservesValues) {
  BitPackedVector v(4);
  for (uint64_t i = 0; i < 16; ++i) v.Append(i);
  BitPackedVector w = v.Repack(9);
  ASSERT_EQ(w.size(), v.size());
  EXPECT_EQ(w.bits(), 9);
  for (size_t i = 0; i < v.size(); ++i) EXPECT_EQ(w.Get(i), v.Get(i));
}

TEST(BitPackTest, CompressionIsReal) {
  BitPackedVector v(3);
  for (uint64_t i = 0; i < 10000; ++i) v.Append(i % 8);
  // 10000 * 3 bits ~= 3750 bytes, far below 10000 * 8 bytes.
  EXPECT_LT(v.MemoryBytes(), 5000u);
}

TEST(SerializerTest, PrimitivesRoundTrip) {
  Serializer s;
  s.PutU8(7);
  s.PutU32(123456);
  s.PutU64(~0ULL - 3);
  s.PutI64(-9999);
  s.PutDouble(3.25);
  s.PutVarint(300);
  s.PutString("abc");
  Deserializer d(s.data());
  EXPECT_EQ(*d.GetU8(), 7);
  EXPECT_EQ(*d.GetU32(), 123456u);
  EXPECT_EQ(*d.GetU64(), ~0ULL - 3);
  EXPECT_EQ(*d.GetI64(), -9999);
  EXPECT_EQ(*d.GetDouble(), 3.25);
  EXPECT_EQ(*d.GetVarint(), 300u);
  EXPECT_EQ(*d.GetString(), "abc");
  EXPECT_TRUE(d.AtEnd());
}

TEST(SerializerTest, UnderflowIsCorruption) {
  Serializer s;
  s.PutU8(1);
  Deserializer d(s.data());
  EXPECT_TRUE(d.GetU8().ok());
  EXPECT_EQ(d.GetU64().status().code(), StatusCode::kCorruption);
}

TEST(SerializerTest, VarintBoundaries) {
  for (uint64_t v : {0ULL, 127ULL, 128ULL, 16383ULL, 16384ULL, ~0ULL}) {
    Serializer s;
    s.PutVarint(v);
    Deserializer d(s.data());
    EXPECT_EQ(*d.GetVarint(), v);
  }
}

TEST(StringUtilTest, Split) {
  auto parts = SplitString("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(StringUtilTest, JoinAndLowerAndTrim) {
  EXPECT_EQ(JoinStrings({"x", "y"}, "-"), "x-y");
  EXPECT_EQ(ToLower("HeLLo"), "hello");
  EXPECT_EQ(TrimWhitespace("  hi \t"), "hi");
}

TEST(StringUtilTest, LikeMatch) {
  EXPECT_TRUE(LikeMatch("hello world", "hello%"));
  EXPECT_TRUE(LikeMatch("hello world", "%world"));
  EXPECT_TRUE(LikeMatch("hello world", "%lo wo%"));
  EXPECT_TRUE(LikeMatch("cat", "c_t"));
  EXPECT_FALSE(LikeMatch("cat", "c_tt"));
  EXPECT_FALSE(LikeMatch("hello", "world%"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_TRUE(LikeMatch("anything", "%%"));
}

TEST(ThreadPoolTest, SubmitReturnsValues) {
  ThreadPool pool(4);
  auto f1 = pool.Submit([] { return 21 * 2; });
  auto f2 = pool.Submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmpty) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

}  // namespace
}  // namespace poly
