#include <gtest/gtest.h>

#include "aging/aging.h"
#include "aging/extended_storage.h"
#include "query/executor.h"

namespace poly {
namespace {

class AgingFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    // orders(id, year, open); invoices(id, order_id, year, paid)
    orders_ = *db_.CreateTable(
        "orders", Schema({ColumnDef("id", DataType::kInt64),
                          ColumnDef("year", DataType::kInt64),
                          ColumnDef("open", DataType::kBool)}));
    invoices_ = *db_.CreateTable(
        "invoices", Schema({ColumnDef("id", DataType::kInt64),
                            ColumnDef("order_id", DataType::kInt64),
                            ColumnDef("year", DataType::kInt64),
                            ColumnDef("paid", DataType::kBool)}));
    auto txn = tm_.Begin();
    // Orders 1-4 from 2024 closed, 5 from 2024 OPEN, 6-10 from 2026 mixed.
    for (int i = 1; i <= 10; ++i) {
      int year = i <= 5 ? 2024 : 2026;
      bool open = (i == 5) || (i > 8);
      ASSERT_TRUE(tm_.Insert(txn.get(), orders_,
                             {Value::Int(i), Value::Int(year), Value::Boolean(open)})
                      .ok());
      // One invoice per order, paid unless order open.
      ASSERT_TRUE(tm_.Insert(txn.get(), invoices_,
                             {Value::Int(100 + i), Value::Int(i), Value::Int(year),
                              Value::Boolean(!open)})
                      .ok());
    }
    ASSERT_TRUE(tm_.Commit(txn.get()).ok());
  }

  /// "age closed orders older than 2026" with guarantee year < 2026.
  AgingRule OrderRule() {
    AgingRule rule;
    rule.name = "orders_rule";
    rule.table = "orders";
    rule.predicate = Expr::And(
        Expr::Compare(CmpOp::kLt, Expr::Column(1), Expr::Literal(Value::Int(2026))),
        Expr::Compare(CmpOp::kEq, Expr::Column(2), Expr::Literal(Value::Boolean(false))));
    rule.guarantee = {"year", CmpOp::kLt, Value::Int(2026)};
    return rule;
  }

  /// invoices age when paid & old & their order is aged (dependency!).
  AgingRule InvoiceRule() {
    AgingRule rule;
    rule.name = "invoices_rule";
    rule.table = "invoices";
    rule.predicate = Expr::And(
        Expr::Compare(CmpOp::kLt, Expr::Column(2), Expr::Literal(Value::Int(2026))),
        Expr::Compare(CmpOp::kEq, Expr::Column(3), Expr::Literal(Value::Boolean(true))));
    rule.guarantee = {"year", CmpOp::kLt, Value::Int(2026)};
    rule.guard = JoinGuard{"order_id", "orders", "id"};
    rule.depends_on = {"orders_rule"};
    return rule;
  }

  Database db_;
  TransactionManager tm_;
  ColumnTable* orders_ = nullptr;
  ColumnTable* invoices_ = nullptr;
};

TEST_F(AgingFixture, RunAgingMovesMatchingRows) {
  AgingManager mgr(&db_, &tm_);
  ASSERT_TRUE(mgr.AddRule(OrderRule()).ok());
  auto stats = mgr.RunAging();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->rows_aged, 4u);  // orders 1-4 (5 is open)
  ReadView now = tm_.AutoCommitView();
  EXPECT_EQ(orders_->CountVisible(now), 6u);
  ColumnTable* aged = *db_.GetTable("orders$aged");
  EXPECT_EQ(aged->CountVisible(now), 4u);
}

TEST_F(AgingFixture, DependencyGuardBlocksUntilParentAged) {
  AgingManager mgr(&db_, &tm_);
  ASSERT_TRUE(mgr.AddRule(InvoiceRule()).ok());
  ASSERT_TRUE(mgr.AddRule(OrderRule()).ok());
  // Dependency order respected even though invoice rule was added first:
  // orders age in the same pass, so invoices with aged orders age too.
  auto stats = mgr.RunAging();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rows_aged, 8u);  // 4 orders + 4 invoices
  ReadView now = tm_.AutoCommitView();
  ColumnTable* aged_inv = *db_.GetTable("invoices$aged");
  EXPECT_EQ(aged_inv->CountVisible(now), 4u);
  // Invoice of order 5 (open, not aged) stayed hot despite being old+paid?
  // Order 5 is open so its invoice is unpaid -> predicate already false;
  // the guard counter counts rows matching predicate but blocked. Here 0.
  EXPECT_EQ(stats->rows_blocked_by_guard, 0u);
}

TEST_F(AgingFixture, GuardCountsBlockedRows) {
  // Make invoice 105 paid although its order is open -> predicate true but
  // guard blocks (order 5 never ages).
  ReadView now = tm_.AutoCommitView();
  uint64_t row105 = 0;
  invoices_->ScanVisible(now, [&](uint64_t r) {
    if (invoices_->GetValue(r, 0).AsInt() == 105) row105 = r;
  });
  auto txn = tm_.Begin();
  ASSERT_TRUE(tm_.Update(txn.get(), invoices_, row105,
                         {Value::Int(105), Value::Int(5), Value::Int(2024),
                          Value::Boolean(true)})
                  .ok());
  ASSERT_TRUE(tm_.Commit(txn.get()).ok());

  AgingManager mgr(&db_, &tm_);
  ASSERT_TRUE(mgr.AddRule(OrderRule()).ok());
  ASSERT_TRUE(mgr.AddRule(InvoiceRule()).ok());
  auto stats = mgr.RunAging();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rows_blocked_by_guard, 1u);
}

TEST_F(AgingFixture, CycleInDependenciesRejected) {
  AgingManager mgr(&db_, &tm_);
  AgingRule a = OrderRule();
  a.depends_on = {"invoices_rule"};
  AgingRule b = InvoiceRule();  // depends on orders_rule
  ASSERT_TRUE(mgr.AddRule(a).ok());
  EXPECT_FALSE(mgr.AddRule(b).ok());  // closes the cycle
}

TEST_F(AgingFixture, UnknownDependencyFailsAtRun) {
  AgingManager mgr(&db_, &tm_);
  AgingRule r = OrderRule();
  r.depends_on = {"ghost"};
  ASSERT_TRUE(mgr.AddRule(r).ok());
  EXPECT_FALSE(mgr.RunAging().ok());
}

TEST_F(AgingFixture, SemanticPruningSkipsAgedPartition) {
  AgingManager mgr(&db_, &tm_);
  ASSERT_TRUE(mgr.AddRule(OrderRule()).ok());
  ASSERT_TRUE(mgr.RunAging().ok());

  // Query: year >= 2026 -> guarantee year < 2026 contradicts -> hot only.
  auto recent = Expr::Compare(CmpOp::kGe, Expr::Column(1), Expr::Literal(Value::Int(2026)));
  EXPECT_EQ(mgr.Prune("orders", recent), std::vector<std::string>{"orders"});

  // Query: year >= 2020 -> may hit aged rows -> both partitions.
  auto old = Expr::Compare(CmpOp::kGe, Expr::Column(1), Expr::Literal(Value::Int(2020)));
  EXPECT_EQ(mgr.Prune("orders", old),
            (std::vector<std::string>{"orders", "orders$aged"}));

  // Unmanaged tables are not touched.
  EXPECT_TRUE(mgr.Prune("invoices", recent).empty());
}

TEST_F(AgingFixture, EqualityGuaranteePrunesEqualityPredicate) {
  // Regression: kEq guarantee vs kEq query atom must terminate and prune.
  AgingManager mgr(&db_, &tm_);
  AgingRule rule = OrderRule();
  rule.guarantee = {"open", CmpOp::kEq, Value::Boolean(false)};
  ASSERT_TRUE(mgr.AddRule(rule).ok());
  ASSERT_TRUE(mgr.RunAging().ok());

  auto open_query =
      Expr::Compare(CmpOp::kEq, Expr::Column(2), Expr::Literal(Value::Boolean(true)));
  EXPECT_EQ(mgr.Prune("orders", open_query), std::vector<std::string>{"orders"});
  auto closed_query =
      Expr::Compare(CmpOp::kEq, Expr::Column(2), Expr::Literal(Value::Boolean(false)));
  EXPECT_EQ(mgr.Prune("orders", closed_query).size(), 2u);
}

TEST_F(AgingFixture, PrunedQueryThroughOptimizerAndExecutor) {
  AgingManager mgr(&db_, &tm_);
  ASSERT_TRUE(mgr.AddRule(OrderRule()).ok());
  ASSERT_TRUE(mgr.RunAging().ok());

  Optimizer opt(&mgr);
  // Count all orders ever (must include aged partition).
  auto all = opt.Optimize(PlanBuilder::Scan("orders").Build());
  Executor exec(&db_, tm_.AutoCommitView());
  auto rs = exec.Execute(all);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->num_rows(), 10u);
  EXPECT_EQ(exec.stats().partitions_scanned, 2u);

  // Recent-only query scans one partition.
  auto recent_plan = opt.Optimize(
      PlanBuilder::Scan("orders")
          .Filter(Expr::Compare(CmpOp::kGe, Expr::Column(1),
                                Expr::Literal(Value::Int(2026))))
          .Build());
  Executor exec2(&db_, tm_.AutoCommitView());
  auto rs2 = exec2.Execute(recent_plan);
  ASSERT_TRUE(rs2.ok());
  EXPECT_EQ(rs2->num_rows(), 5u);
  EXPECT_EQ(exec2.stats().partitions_scanned, 1u);
}

TEST_F(AgingFixture, StatsPrunerWeakerThanSemanticRules) {
  AgingManager mgr(&db_, &tm_);
  ASSERT_TRUE(mgr.AddRule(OrderRule()).ok());
  ASSERT_TRUE(mgr.RunAging().ok());

  StatsPruner stats(&db_, &tm_);
  ASSERT_TRUE(stats.Analyze("orders", {"orders", "orders$aged"}, "year").ok());

  // year >= 2026: aged max year is 2024 -> stats CAN prune here.
  auto recent = Expr::Compare(CmpOp::kGe, Expr::Column(1), Expr::Literal(Value::Int(2026)));
  EXPECT_EQ(stats.Prune("orders", recent), std::vector<std::string>{"orders"});

  // But after ONE old open order stays hot, hot min==2024 too, so for a
  // "year <= 2024" query stats must scan both while the semantic rule knows
  // open orders never age -> an open-orders query (open == true) cannot be
  // pruned by stats at all since `open` has both values everywhere.
  auto old = Expr::Compare(CmpOp::kLe, Expr::Column(1), Expr::Literal(Value::Int(2024)));
  EXPECT_EQ(stats.Prune("orders", old).size(), 2u);
}

TEST(ExtendedStorageTest, DemotePromoteRoundTrip) {
  Database db;
  TransactionManager tm;
  ColumnTable* t = *db.CreateTable(
      "warmme", Schema({ColumnDef("id", DataType::kInt64)}));
  auto txn = tm.Begin();
  ASSERT_TRUE(tm.Insert(txn.get(), t, {Value::Int(7)}).ok());
  ASSERT_TRUE(tm.Commit(txn.get()).ok());

  ExtendedStorage storage;
  ASSERT_TRUE(storage.Demote(&db, "warmme").ok());
  EXPECT_FALSE(db.GetTable("warmme").ok());  // out of main memory
  EXPECT_TRUE(storage.Contains("warmme"));
  EXPECT_GT(storage.bytes_stored(), 0u);
  EXPECT_GT(storage.simulated_nanos(), 0.0);

  auto back = storage.Promote(&db, "warmme");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)->CountVisible(LatestCommittedView()), 1u);
  // Promote MOVES: no warm residue, or a later cold demotion could sink a
  // stale copy while the real partition is hot (three-band invariant).
  EXPECT_FALSE(storage.Contains("warmme"));
  EXPECT_EQ(storage.bytes_stored(), 0u);
  EXPECT_FALSE(storage.Promote(&db, "never").ok());

  // A failed promote must not lose the only copy: demote again, shadow the
  // name in the hot catalog so AdoptTable refuses, and check the payload
  // is rolled back into the warm store.
  ASSERT_TRUE(storage.Demote(&db, "warmme").ok());
  ASSERT_TRUE(db.CreateTable("warmme", Schema({ColumnDef("id", DataType::kInt64)})).ok());
  EXPECT_FALSE(storage.Promote(&db, "warmme").ok());
  EXPECT_TRUE(storage.Contains("warmme"));
}

TEST(ExtendedStorageTest, ColdTierViaDfs) {
  Database db;
  TransactionManager tm;
  SimulatedDfs dfs;
  ColumnTable* t = *db.CreateTable("cold", Schema({ColumnDef("id", DataType::kInt64)}));
  auto txn = tm.Begin();
  ASSERT_TRUE(tm.Insert(txn.get(), t, {Value::Int(1)}).ok());
  ASSERT_TRUE(tm.Commit(txn.get()).ok());

  ExtendedStorage storage;
  ASSERT_TRUE(storage.Demote(&db, "cold").ok());
  ASSERT_TRUE(storage.DemoteToCold("cold", &dfs).ok());
  EXPECT_FALSE(storage.Contains("cold"));  // moved on from warm tier
  EXPECT_TRUE(dfs.Exists(ExtendedStorage::ColdPath("cold")));

  auto back = storage.PromoteFromCold(&db, "cold", &dfs);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)->CountVisible(LatestCommittedView()), 1u);
}

}  // namespace
}  // namespace poly
