#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "soe/cluster.h"
#include "soe/partition.h"
#include "soe/shared_log.h"

namespace poly {
namespace {

/// Fresh per-test directory under gtest's temp root. Unit files are
/// truncated up front so a rerun never replays a previous run's log.
std::string FreshLogDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/" + name;
  for (int u = 0; u < 8; ++u) {
    std::remove((dir + "/unit" + std::to_string(u) + ".log").c_str());
  }
  return dir;
}

// The ChaosDurableLog suite rides the existing `ctest -L chaos` label (the
// chaos test target filters on Chaos*): crash-recovery belongs with the
// other kill/heal scenarios.

TEST(ChaosDurableLog, LogSurvivesReopen) {
  std::string dir = FreshLogDir("poly_durable_log_reopen");
  SharedLog::Options opts;
  opts.num_log_units = 3;
  opts.replication = 2;
  opts.durable_dir = dir;

  {
    SharedLog log(opts);
    for (int i = 0; i < 20; ++i) {
      auto off = log.Append("record-" + std::to_string(i));
      ASSERT_TRUE(off.ok());
      EXPECT_EQ(*off, static_cast<uint64_t>(i));
    }
  }  // "crash": the process state is gone, only unit files remain

  SharedLog recovered(opts);
  EXPECT_EQ(recovered.Tail(), 20u);
  for (int i = 0; i < 20; ++i) {
    auto rec = recovered.Read(i);
    ASSERT_TRUE(rec.ok()) << "offset " << i;
    EXPECT_EQ(*rec, "record-" + std::to_string(i));
  }

  // The sequencer resumed past the recovered tail: new appends extend, not
  // overwrite.
  auto off = recovered.Append("after-crash");
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(*off, 20u);
  EXPECT_EQ(*recovered.Read(20), "after-crash");
}

TEST(ChaosDurableLog, TruncatedTailFrameIsDiscarded) {
  std::string dir = FreshLogDir("poly_durable_log_torn");
  SharedLog::Options opts;
  opts.num_log_units = 2;
  opts.replication = 2;  // every record on both units
  opts.durable_dir = dir;

  {
    SharedLog log(opts);
    ASSERT_TRUE(log.Append("alpha").ok());
    ASSERT_TRUE(log.Append("beta").ok());
  }

  // Simulate a crash mid-write: append a torn frame (header promising more
  // payload than exists) to one unit file.
  {
    std::FILE* f = std::fopen((dir + "/unit0.log").c_str(), "ab");
    ASSERT_NE(f, nullptr);
    uint64_t offset = 2, len = 1000;
    std::fwrite(&offset, sizeof(offset), 1, f);
    std::fwrite(&len, sizeof(len), 1, f);
    std::fwrite("xx", 1, 2, f);  // far short of len
    std::fclose(f);
  }

  SharedLog recovered(opts);
  EXPECT_EQ(recovered.Tail(), 2u);  // the torn frame never happened
  EXPECT_EQ(*recovered.Read(0), "alpha");
  EXPECT_EQ(*recovered.Read(1), "beta");
  auto off = recovered.Append("gamma");
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(*off, 2u);
}

TEST(ChaosDurableLog, AppendAfterTornTailSurvivesSecondCrash) {
  std::string dir = FreshLogDir("poly_durable_log_torn_append");
  SharedLog::Options opts;
  opts.num_log_units = 1;  // one unit: recovery depends on this exact file
  opts.replication = 1;
  opts.durable_dir = dir;

  {
    SharedLog log(opts);
    ASSERT_TRUE(log.Append("alpha").ok());
    ASSERT_TRUE(log.Append("beta").ok());
  }

  // Crash mid-write: a torn frame at the tail of the only unit file.
  {
    std::FILE* f = std::fopen((dir + "/unit0.log").c_str(), "ab");
    ASSERT_NE(f, nullptr);
    uint64_t offset = 2, len = 1000;
    std::fwrite(&offset, sizeof(offset), 1, f);
    std::fwrite(&len, sizeof(len), 1, f);
    std::fwrite("xx", 1, 2, f);  // far short of len
    std::fclose(f);
  }

  // First recovery must not just skip the torn frame in memory — it must
  // truncate it, or the next append lands after the garbage bytes and the
  // SECOND recovery's frame reader silently drops it (a committed, fsynced
  // record lost across crash -> recover -> append -> crash).
  {
    SharedLog log(opts);
    ASSERT_EQ(log.Tail(), 2u);
    auto off = log.Append("gamma");
    ASSERT_TRUE(off.ok());
    EXPECT_EQ(*off, 2u);
  }

  SharedLog recovered(opts);
  EXPECT_EQ(recovered.Tail(), 3u);
  EXPECT_EQ(*recovered.Read(0), "alpha");
  EXPECT_EQ(*recovered.Read(1), "beta");
  EXPECT_EQ(*recovered.Read(2), "gamma");
}

TEST(ChaosDurableLog, FreshClusterRecoversCommittedWrites) {
  std::string dir = FreshLogDir("poly_durable_log_cluster");
  Schema schema({ColumnDef("id", DataType::kInt64),
                 ColumnDef("amount", DataType::kInt64)});
  PartitionSpec spec = PartitionSpec::Hash("id", 4);

  SoeCluster::Options opts;
  opts.num_nodes = 4;
  opts.log_durable_dir = dir;

  uint64_t committed_tail = 0;
  {
    SoeCluster cluster(opts);
    ASSERT_TRUE(cluster.CreateTable("orders", schema, spec, /*replication=*/2).ok());
    for (int i = 0; i < 50; ++i) {
      auto off = cluster.CommitInserts(
          "orders", {{Value::Int(i), Value::Int(i * 10)}});
      ASSERT_TRUE(off.ok());
    }
    committed_tail = cluster.log().Tail();
    ASSERT_EQ(committed_tail, 50u);
  }  // whole-cluster "crash": every node object and the in-memory log die

  // A brand-new cluster pointed at the same log directory. DDL is not
  // logged (the catalog is a service, not a log consumer), so the operator
  // re-issues CreateTable; the *data* then comes back from the durable log
  // when reads sync nodes up to the recovered tail.
  SoeCluster cluster(opts);
  EXPECT_EQ(cluster.log().Tail(), committed_tail);
  ASSERT_TRUE(cluster.CreateTable("orders", schema, spec, /*replication=*/2).ok());

  auto rows = cluster.DistributedScan("orders", nullptr);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->rows.size(), 50u);
  int64_t sum = 0;
  for (const Row& r : rows->rows) sum += r[1].AsInt();
  EXPECT_EQ(sum, 10 * (49 * 50) / 2);

  // And the recovered cluster keeps working: new commits land after the
  // recovered tail and are immediately visible.
  ASSERT_TRUE(cluster.Insert("orders", {Value::Int(100), Value::Int(7)}).ok());
  EXPECT_EQ(cluster.log().Tail(), committed_tail + 1);
  auto again = cluster.DistributedScan("orders", nullptr);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->rows.size(), 51u);
}

}  // namespace
}  // namespace poly
