// Property-style parameterized sweeps over module invariants.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "aging/aging.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "docstore/json.h"
#include "engines/graph/hierarchy.h"
#include "engines/planning/planning.h"
#include "engines/timeseries/ts_codec.h"
#include "query/executor.h"
#include "query/optimizer.h"
#include "soe/log_record.h"
#include "storage/column_table.h"
#include "txn/transaction_manager.h"

namespace poly {
namespace {

// ---------- Column merge preserves logical content ----------

class MergeInvariants : public ::testing::TestWithParam<int> {};

TEST_P(MergeInvariants, RowsUnchangedDictionarySorted) {
  Random rng(GetParam());
  Column col;
  std::vector<Value> expect;
  // Several interleaved append/merge rounds.
  int rounds = 2 + static_cast<int>(rng.Uniform(4));
  for (int round = 0; round < rounds; ++round) {
    int appends = 1 + static_cast<int>(rng.Uniform(200));
    for (int i = 0; i < appends; ++i) {
      Value v = rng.Bernoulli(0.5)
                    ? Value::Int(static_cast<int64_t>(rng.Uniform(50)))
                    : Value::Int(static_cast<int64_t>(1000 + rng.Uniform(50)));
      col.Append(v);
      expect.push_back(v);
    }
    col.Merge(rng.Bernoulli(0.5));  // hint sometimes on; must never corrupt
    // Invariant 1: every row reads back unchanged.
    ASSERT_EQ(col.size(), expect.size());
    for (size_t r = 0; r < expect.size(); ++r) {
      ASSERT_EQ(col.Get(r), expect[r]) << "seed=" << GetParam() << " round=" << round;
    }
    // Invariant 2: the main dictionary is strictly sorted and minimal.
    const auto& dict = col.main_dictionary();
    for (uint64_t i = 1; i < dict.size(); ++i) {
      ASSERT_TRUE(dict.At(i - 1) < dict.At(i));
    }
    // Invariant 3: delta is empty after a merge.
    ASSERT_EQ(col.delta_size(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergeInvariants, ::testing::Range(1, 11));

// ---------- MVCC: concurrent histories keep counts consistent ----------

class MvccHistories : public ::testing::TestWithParam<int> {};

TEST_P(MvccHistories, VisibleCountMatchesOracle) {
  Random rng(GetParam());
  Database db;
  TransactionManager tm;
  ColumnTable* t = *db.CreateTable("t", Schema({ColumnDef("v", DataType::kInt64)}));

  // Oracle: set of live row ids maintained alongside committed operations.
  std::vector<uint64_t> live;
  for (int step = 0; step < 150; ++step) {
    double action = rng.NextDouble();
    if (action < 0.55 || live.empty()) {
      auto txn = tm.Begin();
      ASSERT_TRUE(tm.Insert(txn.get(), t, {Value::Int(step)}).ok());
      if (rng.Bernoulli(0.8)) {
        ASSERT_TRUE(tm.Commit(txn.get()).ok());
        live.push_back(t->num_versions() - 1);
      } else {
        ASSERT_TRUE(tm.Abort(txn.get()).ok());
      }
    } else {
      size_t pick = rng.Uniform(live.size());
      auto txn = tm.Begin();
      Status s = tm.Delete(txn.get(), t, live[pick]);
      ASSERT_TRUE(s.ok());
      if (rng.Bernoulli(0.8)) {
        ASSERT_TRUE(tm.Commit(txn.get()).ok());
        live.erase(live.begin() + static_cast<long>(pick));
      } else {
        ASSERT_TRUE(tm.Abort(txn.get()).ok());
      }
    }
    ASSERT_EQ(t->CountVisible(tm.AutoCommitView()), live.size())
        << "seed=" << GetParam() << " step=" << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MvccHistories, ::testing::Range(1, 9));

// ---------- Gorilla codec: lossless on arbitrary walks ----------

class CodecRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(CodecRoundTrip, Lossless) {
  Random rng(GetParam());
  TimeSeries ts;
  int64_t t = static_cast<int64_t>(rng.Uniform(1000000));
  int n = 100 + static_cast<int>(rng.Uniform(2000));
  for (int i = 0; i < n; ++i) {
    // Mix of regular/irregular cadence and smooth/jumpy values.
    t += rng.Bernoulli(0.8) ? 1000 : static_cast<int64_t>(rng.Uniform(1000000));
    double v = rng.Bernoulli(0.7) ? 20.0 + (i % 5) : rng.NextGaussian() * 1e9;
    ts.Append(t, v);
  }
  CompressedSeries c = CompressedSeries::FromSeries(ts);
  auto back = c.Decompress();
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), ts.size());
  for (size_t i = 0; i < ts.size(); ++i) {
    ASSERT_EQ(back->timestamps[i], ts.timestamps[i]) << "seed=" << GetParam();
    ASSERT_EQ(back->values[i], ts.values[i]) << "seed=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecRoundTrip, ::testing::Range(1, 13));

// ---------- JSON: parse(serialize(x)) == x on generated documents ----------

class JsonRoundTrip : public ::testing::TestWithParam<int> {};

JsonValue RandomJson(Random* rng, int depth) {
  double pick = rng->NextDouble();
  if (depth <= 0 || pick < 0.3) {
    switch (rng->Uniform(4)) {
      case 0: return JsonValue::Null();
      case 1: return JsonValue::Bool(rng->Bernoulli(0.5));
      case 2: return JsonValue::Number(static_cast<double>(rng->UniformRange(-1000, 1000)));
      default: return JsonValue::Str(rng->NextString(rng->Uniform(10)));
    }
  }
  if (pick < 0.65) {
    std::vector<JsonValue> items;
    for (uint64_t i = 0; i < rng->Uniform(5); ++i) {
      items.push_back(RandomJson(rng, depth - 1));
    }
    return JsonValue::Array(std::move(items));
  }
  std::map<std::string, JsonValue> fields;
  for (uint64_t i = 0; i < rng->Uniform(5); ++i) {
    fields["k" + std::to_string(i)] = RandomJson(rng, depth - 1);
  }
  return JsonValue::Object(std::move(fields));
}

TEST_P(JsonRoundTrip, ParseSerializeIdentity) {
  Random rng(GetParam());
  for (int i = 0; i < 30; ++i) {
    JsonValue doc = RandomJson(&rng, 4);
    auto parsed = ParseJson(doc.Serialize());
    ASSERT_TRUE(parsed.ok()) << doc.Serialize();
    ASSERT_TRUE(*parsed == doc) << doc.Serialize();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonRoundTrip, ::testing::Range(1, 7));

// ---------- Hierarchy: labels agree with a reference reachability ----------

class HierarchyInvariants : public ::testing::TestWithParam<int> {};

TEST_P(HierarchyInvariants, IntervalsMatchBruteForce) {
  Random rng(GetParam());
  Database db;
  TransactionManager tm;
  ColumnTable* t = *db.CreateTable(
      "n", Schema({ColumnDef("id", DataType::kInt64),
                   ColumnDef("parent", DataType::kInt64)}));
  int n = 30 + static_cast<int>(rng.Uniform(100));
  std::vector<int64_t> parent(n, -1);
  auto txn = tm.Begin();
  ASSERT_TRUE(tm.Insert(txn.get(), t, {Value::Int(0), Value::Null()}).ok());
  for (int i = 1; i < n; ++i) {
    parent[i] = static_cast<int64_t>(rng.Uniform(i));
    ASSERT_TRUE(tm.Insert(txn.get(), t, {Value::Int(i), Value::Int(parent[i])}).ok());
  }
  ASSERT_TRUE(tm.Commit(txn.get()).ok());
  HierarchyView h = *HierarchyView::Build(*t, tm.AutoCommitView(), "id", "parent");

  auto is_ancestor = [&](int64_t anc, int64_t node) {
    for (int64_t cur = node; cur != -1; cur = cur == 0 ? -1 : parent[cur]) {
      if (cur == anc && cur != node) return true;
    }
    return false;
  };
  Random probe(GetParam() + 100);
  for (int trial = 0; trial < 200; ++trial) {
    int64_t a = static_cast<int64_t>(probe.Uniform(n));
    int64_t b = static_cast<int64_t>(probe.Uniform(n));
    ASSERT_EQ(h.IsDescendant(b, a), is_ancestor(a, b))
        << "seed=" << GetParam() << " a=" << a << " b=" << b;
  }
  // Subtree sizes sum: root's descendants = n - 1.
  ASSERT_EQ(*h.CountDescendants(0), n - 1);
  // Descendants list length always equals CountDescendants.
  for (int i = 0; i < n; ++i) {
    ASSERT_EQ(static_cast<int64_t>(h.Descendants(i).size()), *h.CountDescendants(i));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HierarchyInvariants, ::testing::Range(1, 9));

// ---------- Disaggregation: exact-sum + proportionality bounds ----------

class DisaggregateProps : public ::testing::TestWithParam<int> {};

TEST_P(DisaggregateProps, SumExactAndNearProportional) {
  Random rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    int cells = 1 + static_cast<int>(rng.Uniform(20));
    std::vector<double> weights(cells);
    for (double& w : weights) w = rng.NextDouble() + 0.001;
    int64_t total = static_cast<int64_t>(rng.Uniform(100000));
    auto parts = DisaggregateInt(total, weights);
    ASSERT_TRUE(parts.ok());
    ASSERT_EQ(std::accumulate(parts->begin(), parts->end(), int64_t{0}), total);
    double wsum = std::accumulate(weights.begin(), weights.end(), 0.0);
    for (int i = 0; i < cells; ++i) {
      double exact = total * weights[i] / wsum;
      // Largest-remainder never deviates more than 1 unit from the floor.
      ASSERT_GE((*parts)[i], static_cast<int64_t>(std::floor(exact)));
      ASSERT_LE((*parts)[i], static_cast<int64_t>(std::floor(exact)) + 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DisaggregateProps, ::testing::Range(1, 6));

// ---------- Optimizer: rewritten plans produce identical results ----------

class OptimizerEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(OptimizerEquivalence, OptimizedPlanSameResult) {
  Random rng(GetParam());
  Database db;
  TransactionManager tm;
  ColumnTable* t = *db.CreateTable(
      "t", Schema({ColumnDef("a", DataType::kInt64), ColumnDef("b", DataType::kInt64)}));
  auto txn = tm.Begin();
  int n = 100 + static_cast<int>(rng.Uniform(400));
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(tm.Insert(txn.get(), t,
                          {Value::Int(static_cast<int64_t>(rng.Uniform(100))),
                           Value::Int(static_cast<int64_t>(rng.Uniform(100)))})
                    .ok());
  }
  ASSERT_TRUE(tm.Commit(txn.get()).ok());
  if (GetParam() % 2 == 0) t->Merge();

  int64_t x = static_cast<int64_t>(rng.Uniform(100));
  int64_t y = static_cast<int64_t>(rng.Uniform(100));
  // Filter chain with a constant subexpression thrown in.
  auto plan =
      PlanBuilder::Scan("t")
          .Filter(Expr::And(
              Expr::Compare(CmpOp::kGe, Expr::Column(0), Expr::Literal(Value::Int(x))),
              Expr::Literal(Value::Boolean(true))))
          .Filter(Expr::Compare(CmpOp::kLt, Expr::Column(1), Expr::Literal(Value::Int(y))))
          .Sort({{0, true}, {1, true}})
          .Build();
  Optimizer opt;
  PlanPtr optimized = opt.Optimize(plan);

  Executor e1(&db, tm.AutoCommitView());
  Executor e2(&db, tm.AutoCommitView());
  auto r1 = e1.Execute(plan);
  auto r2 = e2.Execute(optimized);
  ASSERT_TRUE(r1.ok() && r2.ok());
  ASSERT_EQ(r1->num_rows(), r2->num_rows()) << "seed=" << GetParam();
  for (size_t i = 0; i < r1->num_rows(); ++i) {
    ASSERT_EQ(r1->rows[i], r2->rows[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerEquivalence, ::testing::Range(1, 9));

// ---------- Pruning soundness: pruned plans return identical results ----------

class PruningSoundness : public ::testing::TestWithParam<int> {};

TEST_P(PruningSoundness, SemanticAndStatsPrunersNeverChangeAnswers) {
  Random rng(GetParam());
  Database db;
  TransactionManager tm;
  ColumnTable* orders = *db.CreateTable(
      "orders", Schema({ColumnDef("id", DataType::kInt64),
                        ColumnDef("year", DataType::kInt64),
                        ColumnDef("open", DataType::kBool)}));
  int n = 300 + static_cast<int>(rng.Uniform(700));
  auto txn = tm.Begin();
  for (int i = 0; i < n; ++i) {
    bool old = rng.Bernoulli(0.7);
    int64_t year = old ? 2019 + static_cast<int64_t>(rng.Uniform(7)) : 2026;
    bool open = rng.Bernoulli(old ? 0.02 : 0.5);
    ASSERT_TRUE(tm.Insert(txn.get(), orders,
                          {Value::Int(i), Value::Int(year), Value::Boolean(open)})
                    .ok());
  }
  ASSERT_TRUE(tm.Commit(txn.get()).ok());

  AgingManager aging(&db, &tm);
  AgingRule rule;
  rule.name = "r";
  rule.table = "orders";
  rule.predicate = Expr::And(
      Expr::Compare(CmpOp::kLt, Expr::Column(1), Expr::Literal(Value::Int(2026))),
      Expr::Compare(CmpOp::kEq, Expr::Column(2), Expr::Literal(Value::Boolean(false))));
  rule.guarantee = {"year", CmpOp::kLt, Value::Int(2026)};
  ASSERT_TRUE(aging.AddRule(rule).ok());
  ASSERT_TRUE(aging.RunAging().ok());
  StatsPruner stats(&db, &tm);
  ASSERT_TRUE(stats.Analyze("orders", aging.Partitions("orders"), "year").ok());

  // Random predicates over year/open; every pruner must agree with the
  // unpruned union of all partitions.
  for (int trial = 0; trial < 20; ++trial) {
    int64_t y = 2018 + static_cast<int64_t>(rng.Uniform(10));
    CmpOp ops[] = {CmpOp::kLt, CmpOp::kLe, CmpOp::kGt, CmpOp::kGe, CmpOp::kEq};
    ExprPtr predicate = Expr::Compare(ops[rng.Uniform(5)], Expr::Column(1),
                                      Expr::Literal(Value::Int(y)));
    if (rng.Bernoulli(0.5)) {
      predicate = Expr::And(
          predicate, Expr::Compare(CmpOp::kEq, Expr::Column(2),
                                   Expr::Literal(Value::Boolean(rng.Bernoulli(0.5)))));
    }
    auto base_plan = PlanBuilder::Scan("orders").Filter(predicate).Build();

    // Reference: scan every partition explicitly, no pruner.
    auto all = std::make_shared<PlanNode>(*base_plan);
    Optimizer no_pruner;
    PlanPtr reference_plan = no_pruner.Optimize(base_plan);
    reference_plan = std::make_shared<PlanNode>(*reference_plan);
    reference_plan->scan_partitions = aging.Partitions("orders");
    Executor ref_exec(&db, tm.AutoCommitView());
    auto reference = ref_exec.Execute(reference_plan);
    ASSERT_TRUE(reference.ok());

    for (const PartitionPruner* pruner :
         {static_cast<const PartitionPruner*>(&aging),
          static_cast<const PartitionPruner*>(&stats)}) {
      Optimizer opt(pruner);
      Executor exec(&db, tm.AutoCommitView());
      auto rs = exec.Execute(opt.Optimize(base_plan));
      ASSERT_TRUE(rs.ok());
      ASSERT_EQ(rs->num_rows(), reference->num_rows())
          << "seed=" << GetParam() << " trial=" << trial
          << " predicate=" << predicate->ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PruningSoundness, ::testing::Range(1, 7));

// ---------- Parallel executor: random plans agree with the serial oracle ----------

class ParallelOracle : public ::testing::TestWithParam<int> {};

TEST_P(ParallelOracle, RandomPlansSerialVsParallel) {
  // 8 seeds x 25 trials = 200 random (table, plan, parallel-config) triples.
  // Every failure message carries seed + trial for exact reproduction.
  Random rng(GetParam() * 7919);
  ThreadPool pool(3);
  for (int trial = 0; trial < 25; ++trial) {
    std::string ctx = "seed=" + std::to_string(GetParam()) +
                      " trial=" + std::to_string(trial);
    Database db;
    TransactionManager tm;
    ColumnTable* t = *db.CreateTable(
        "t", Schema({ColumnDef("a", DataType::kInt64),
                     ColumnDef("b", DataType::kInt64),
                     ColumnDef("c", DataType::kDouble)}));
    int n = static_cast<int>(rng.Uniform(400));
    auto txn = tm.Begin();
    for (int i = 0; i < n; ++i) {
      // c is an exact multiple of 0.25, so parallel FP sums are exact.
      ASSERT_TRUE(tm.Insert(txn.get(), t,
                            {Value::Int(static_cast<int64_t>(rng.Uniform(20))),
                             Value::Int(static_cast<int64_t>(rng.Uniform(1000))),
                             Value::Dbl(static_cast<double>(rng.Uniform(4000)) * 0.25)})
                      .ok());
    }
    ASSERT_TRUE(tm.Commit(txn.get()).ok());
    if (rng.Bernoulli(0.5)) t->Merge();
    if (n > 0 && rng.Bernoulli(0.5)) {
      auto del = tm.Begin();
      for (int d = 0; d < 10; ++d) {
        (void)tm.Delete(del.get(), t, rng.Uniform(static_cast<uint64_t>(n)));
      }
      ASSERT_TRUE(tm.Commit(del.get()).ok());
    }
    ColumnTable* dim = *db.CreateTable(
        "dim", Schema({ColumnDef("k", DataType::kInt64),
                       ColumnDef("payload", DataType::kInt64)}));
    auto dtxn = tm.Begin();
    for (int i = 0; i < 30; ++i) {
      ASSERT_TRUE(tm.Insert(dtxn.get(), dim,
                            {Value::Int(static_cast<int64_t>(rng.Uniform(20))),
                             Value::Int(i)})
                      .ok());
    }
    ASSERT_TRUE(tm.Commit(dtxn.get()).ok());

    // Random plan: scan [+ pushed predicate] [+ filter] then one of
    // {nothing, join, aggregate, sort+limit}.
    PlanBuilder builder = PlanBuilder::Scan("t");
    PlanPtr scan = std::move(builder).Build();
    if (rng.Bernoulli(0.5)) {
      CmpOp ops[] = {CmpOp::kLt, CmpOp::kLe, CmpOp::kGt, CmpOp::kGe, CmpOp::kEq};
      scan->scan_predicate =
          Expr::Compare(ops[rng.Uniform(5)], Expr::Column(rng.Uniform(2)),
                        Expr::Literal(Value::Int(static_cast<int64_t>(
                            rng.Uniform(rng.Bernoulli(0.5) ? 20 : 1000)))));
    }
    PlanBuilder chain = PlanBuilder::From(scan);
    if (rng.Bernoulli(0.4)) {
      chain = std::move(chain).Filter(
          Expr::Compare(CmpOp::kGe, Expr::Column(2),
                        Expr::Literal(Value::Dbl(rng.Uniform(1000) * 0.25))));
    }
    switch (rng.Uniform(4)) {
      case 0:
        break;
      case 1:
        chain = std::move(chain).HashJoin(PlanBuilder::Scan("dim").Build(),
                                          /*left_key=*/0, /*right_key=*/0);
        break;
      case 2: {
        std::vector<AggSpec> aggs;
        aggs.push_back({AggFunc::kCount, nullptr, "cnt"});
        aggs.push_back({AggFunc::kSum, Expr::Column(2), "sum_c"});
        aggs.push_back({AggFunc::kMin, Expr::Column(1), "min_b"});
        aggs.push_back({AggFunc::kMax, Expr::Column(2), "max_c"});
        if (rng.Bernoulli(0.5)) aggs.push_back({AggFunc::kAvg, Expr::Column(2), "avg_c"});
        std::vector<size_t> group_by;
        if (rng.Bernoulli(0.7)) group_by.push_back(0);
        chain = std::move(chain).Aggregate(group_by, aggs);
        break;
      }
      default:
        chain = std::move(chain)
                    .Sort({{rng.Uniform(3), rng.Bernoulli(0.5)}})
                    .Limit(1 + rng.Uniform(200));
    }
    PlanPtr plan = std::move(chain).Build();

    Executor serial(&db, tm.AutoCommitView());
    auto expect = serial.Execute(plan);
    ASSERT_TRUE(expect.ok()) << ctx << ": " << expect.status().ToString();

    ExecOptions opts;
    opts.num_threads = 2 + rng.Uniform(7);
    opts.morsel_rows = 1 + rng.Uniform(static_cast<uint64_t>(n) + 8);
    opts.pool = &pool;
    Executor parallel(&db, tm.AutoCommitView(), opts);
    auto got = parallel.Execute(plan);
    ASSERT_TRUE(got.ok()) << ctx << ": " << got.status().ToString();

    // Canonical comparison: the morsel merge is deterministic, so row
    // content AND order must match the serial oracle exactly.
    ASSERT_EQ(expect->num_rows(), got->num_rows())
        << ctx << " threads=" << opts.num_threads << " morsel=" << opts.morsel_rows
        << "\nplan:\n" << plan->ToString();
    for (size_t r = 0; r < expect->num_rows(); ++r) {
      ASSERT_EQ(expect->rows[r], got->rows[r])
          << ctx << " row=" << r << " threads=" << opts.num_threads
          << " morsel=" << opts.morsel_rows << "\nplan:\n" << plan->ToString();
    }
    EXPECT_EQ(serial.stats().rows_scanned, parallel.stats().rows_scanned) << ctx;
    EXPECT_EQ(serial.stats().rows_materialized, parallel.stats().rows_materialized)
        << ctx;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelOracle, ::testing::Range(1, 9));

// ---------- SOE log record encode/decode fuzz ----------

class LogRecordFuzz : public ::testing::TestWithParam<int> {};

TEST_P(LogRecordFuzz, RoundTripAndGarbageRejection) {
  Random rng(GetParam());
  SoeLogRecord rec;
  int writes = static_cast<int>(rng.Uniform(6));
  for (int w = 0; w < writes; ++w) {
    SoeWrite write;
    write.table = rng.NextString(1 + rng.Uniform(12));
    write.partition = rng.Uniform(64);
    int cols = static_cast<int>(rng.Uniform(5));
    for (int c = 0; c < cols; ++c) {
      switch (rng.Uniform(4)) {
        case 0: write.row.push_back(Value::Int(rng.UniformRange(-1000, 1000))); break;
        case 1: write.row.push_back(Value::Dbl(rng.NextGaussian())); break;
        case 2: write.row.push_back(Value::Str(rng.NextString(8))); break;
        default: write.row.push_back(Value::Null());
      }
    }
    rec.writes.push_back(std::move(write));
  }
  std::string encoded = rec.Encode();
  auto decoded = SoeLogRecord::Decode(encoded);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->writes.size(), rec.writes.size());
  for (size_t w = 0; w < rec.writes.size(); ++w) {
    EXPECT_EQ(decoded->writes[w].table, rec.writes[w].table);
    EXPECT_EQ(decoded->writes[w].partition, rec.writes[w].partition);
    EXPECT_EQ(decoded->writes[w].row, rec.writes[w].row);
  }
  // Truncations must fail cleanly, never crash.
  for (size_t cut = 0; cut < encoded.size(); cut += 1 + encoded.size() / 17) {
    auto truncated = SoeLogRecord::Decode(encoded.substr(0, cut));
    if (truncated.ok()) {
      // A prefix can only decode successfully if it encodes fewer writes.
      EXPECT_LE(truncated->writes.size(), rec.writes.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LogRecordFuzz, ::testing::Range(1, 9));

}  // namespace
}  // namespace poly
