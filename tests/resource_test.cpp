// Workload management (DESIGN.md §13): hierarchical memory budget,
// admission control with queueing/timeouts, and the pressure broker that
// turns high-water crossings into tiering spills. The load-bearing
// invariant is *balance*: every byte charged against the budget tree is
// released by the time its query (or table) dies — on success, on
// ResourceExhausted, on queue timeout. The ResourceBalance* oracle runs a
// seeded mixed workload and asserts the whole tree drains to zero.
// Admission*/Pressure* concurrency tests run under `ctest -L resource`
// and the whole-suite TSan gate.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <random>
#include <thread>
#include <vector>

#include "aging/extended_storage.h"
#include "hadoop/dfs.h"
#include "hadoop/dfs_tier_store.h"
#include "query/executor.h"
#include "resource/governor.h"
#include "tiering/daemon.h"
#include "txn/transaction_manager.h"

namespace poly {
namespace {

using resource::AdmissionController;
using resource::AdmissionTicket;
using resource::BudgetNode;
using resource::MemoryBudget;
using resource::PressureBroker;
using resource::Reservation;
using resource::ResourceGovernor;

// ------------------------------------------------------------ budget tree --

TEST(MemoryBudgetTest, ChargesRollUpToEveryAncestor) {
  metrics::Registry reg;
  MemoryBudget budget({/*total_limit_bytes=*/1024}, &reg);
  BudgetNode* cls = budget.GetOrCreateClass("olap", 512);
  std::unique_ptr<BudgetNode> query = budget.NewQueryNode(cls, 256, "olap/q0");

  ASSERT_TRUE(query->TryCharge(100).ok());
  EXPECT_EQ(query->used(), 100u);
  EXPECT_EQ(cls->used(), 100u);
  EXPECT_EQ(budget.root()->used(), 100u);
  EXPECT_EQ(reg.gauge("resource.used_bytes")->Value(), 100);
  EXPECT_EQ(reg.gauge("resource.class.olap.used_bytes")->Value(), 100);

  query->Release(100);
  EXPECT_EQ(query->used(), 0u);
  EXPECT_EQ(cls->used(), 0u);
  EXPECT_EQ(budget.root()->used(), 0u);
  EXPECT_EQ(reg.gauge("resource.used_bytes")->Value(), 0);
}

TEST(MemoryBudgetTest, OverLimitChargeRollsBackAtEveryLevel) {
  metrics::Registry reg;
  MemoryBudget budget({1024}, &reg);
  BudgetNode* cls = budget.GetOrCreateClass("olap", 512);
  std::unique_ptr<BudgetNode> query = budget.NewQueryNode(cls, 0, "olap/q0");

  ASSERT_TRUE(query->TryCharge(400).ok());
  // 400 + 200 > 512 trips the *class* limit after the query level already
  // charged: the rollback must restore both, and leave the gauges exact.
  Status st = query->TryCharge(200);
  ASSERT_TRUE(st.IsResourceExhausted()) << st.ToString();
  EXPECT_NE(st.message().find("olap"), std::string::npos) << st.message();
  EXPECT_EQ(query->used(), 400u);
  EXPECT_EQ(cls->used(), 400u);
  EXPECT_EQ(budget.root()->used(), 400u);
  EXPECT_EQ(reg.gauge("resource.used_bytes")->Value(), 400);
  EXPECT_EQ(reg.gauge("resource.class.olap.used_bytes")->Value(), 400);
  EXPECT_EQ(reg.counter("resource.denied")->Value(), 1u);
  query->Release(400);
}

TEST(MemoryBudgetTest, ForceChargeIgnoresLimits) {
  metrics::Registry reg;
  MemoryBudget budget({100}, &reg);
  BudgetNode* storage = budget.GetOrCreateClass("storage", 0);
  storage->ForceCharge(1000);  // storage can't unwind; never rejected
  EXPECT_EQ(budget.root()->used(), 1000u);
  EXPECT_TRUE(budget.above_high_water());
  storage->Release(1000);
  EXPECT_FALSE(budget.above_low_water());
}

TEST(MemoryBudgetTest, ReservationReleasesOnEveryPath) {
  metrics::Registry reg;
  MemoryBudget budget({0}, &reg);  // unlimited: accounting only
  BudgetNode* cls = budget.GetOrCreateClass("oltp", 0);
  {
    Reservation r(cls);
    ASSERT_TRUE(r.Grow(64).ok());
    ASSERT_TRUE(r.Grow(36).ok());
    EXPECT_EQ(r.held_bytes(), 100u);
    r.Shrink(30);
    EXPECT_EQ(r.held_bytes(), 70u);
    EXPECT_EQ(cls->used(), 70u);

    Reservation moved = std::move(r);
    EXPECT_EQ(moved.held_bytes(), 70u);
    EXPECT_EQ(r.held_bytes(), 0u);  // NOLINT(bugprone-use-after-move)
  }  // destructor of `moved` releases
  EXPECT_EQ(cls->used(), 0u);
  EXPECT_EQ(budget.root()->used(), 0u);

  // Unbound reservations are no-ops so executors can charge unconditionally.
  Reservation unbound;
  EXPECT_TRUE(unbound.Grow(1 << 20).ok());
}

TEST(MemoryBudgetTest, HighWaterCrossingNotifiesListener) {
  struct Recorder : resource::PressureListener {
    std::atomic<int> calls{0};
    std::atomic<uint64_t> last_used{0};
    void OnPressure(uint64_t used, uint64_t) override {
      calls.fetch_add(1);
      last_used.store(used);
    }
  };
  metrics::Registry reg;
  MemoryBudget budget({1000, /*high_water=*/0.8, /*low_water=*/0.5}, &reg);
  Recorder recorder;
  budget.set_pressure_listener(&recorder);

  BudgetNode* cls = budget.GetOrCreateClass("olap", 0);
  ASSERT_TRUE(cls->TryCharge(700).ok());
  EXPECT_EQ(recorder.calls.load(), 0);  // below 800: quiet
  ASSERT_TRUE(cls->TryCharge(150).ok());
  EXPECT_EQ(recorder.calls.load(), 1);
  EXPECT_EQ(recorder.last_used.load(), 850u);
  EXPECT_TRUE(budget.above_high_water());
  EXPECT_GE(reg.counter("resource.pressure.signals")->Value(), 1u);
  cls->Release(850);
}

TEST(MemoryBudgetTest, SnapshotListsRootAndClasses) {
  metrics::Registry reg;
  MemoryBudget budget({0}, &reg);
  budget.GetOrCreateClass("oltp", 0)->ForceCharge(10);
  auto snap = budget.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, "global");
  EXPECT_EQ(snap[0].second, 10u);
  EXPECT_EQ(snap[1].first, "oltp");
  EXPECT_EQ(snap[1].second, 10u);
  budget.GetOrCreateClass("oltp", 0)->Release(10);
}

// -------------------------------------------------------------- admission --

class AdmissionTest : public ::testing::Test {
 protected:
  AdmissionTest() : budget_({0}, &reg_), controller_(&budget_, &reg_) {}

  AdmissionController::ClassOptions Small(size_t slots, size_t queue,
                                          std::chrono::milliseconds timeout) {
    AdmissionController::ClassOptions o;
    o.max_concurrent = slots;
    o.max_queued = queue;
    o.queue_timeout = timeout;
    return o;
  }

  metrics::Registry reg_;
  MemoryBudget budget_;
  AdmissionController controller_;
};

TEST_F(AdmissionTest, GrantsSlotsUpToLimitThenTimesOut) {
  controller_.DefineClass("olap", Small(2, 4, std::chrono::milliseconds(30)));

  auto t1 = controller_.Admit("olap");
  auto t2 = controller_.Admit("olap");
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(controller_.active("olap"), 2u);

  // Saturated, nobody releases: the third queues and times out.
  auto t3 = controller_.Admit("olap");
  ASSERT_FALSE(t3.ok());
  EXPECT_TRUE(t3.status().IsResourceExhausted()) << t3.status().ToString();
  EXPECT_NE(t3.status().message().find("timeout"), std::string::npos);
  EXPECT_EQ(reg_.counter("resource.admission.olap.timeouts")->Value(), 1u);

  t1->Release();
  EXPECT_EQ(controller_.active("olap"), 1u);
}

TEST_F(AdmissionTest, ReleaseWakesQueuedQuery) {
  controller_.DefineClass("olap", Small(1, 4, std::chrono::seconds(10)));
  auto held = controller_.Admit("olap");
  ASSERT_TRUE(held.ok());

  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    auto t = controller_.Admit("olap");
    EXPECT_TRUE(t.ok()) << t.status().ToString();
    admitted.store(true);
  });
  // Let the waiter reach the queue, then free the slot.
  while (controller_.queued("olap") == 0) std::this_thread::yield();
  EXPECT_FALSE(admitted.load());
  held->Release();
  waiter.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(reg_.counter("resource.admission.olap.admitted")->Value(), 2u);
  EXPECT_EQ(reg_.counter("resource.admission.olap.queued")->Value(), 1u);
}

TEST_F(AdmissionTest, FailFastAndFullQueueRejectImmediately) {
  auto fail_fast = Small(1, 16, std::chrono::seconds(10));
  fail_fast.fail_fast = true;
  controller_.DefineClass("batch", fail_fast);
  controller_.DefineClass("olap", Small(1, 0, std::chrono::seconds(10)));

  auto b1 = controller_.Admit("batch");
  ASSERT_TRUE(b1.ok());
  auto b2 = controller_.Admit("batch");
  ASSERT_FALSE(b2.ok());
  EXPECT_TRUE(b2.status().IsResourceExhausted());

  auto o1 = controller_.Admit("olap");
  ASSERT_TRUE(o1.ok());
  auto o2 = controller_.Admit("olap");  // queue bound 0: reject, don't wait
  ASSERT_FALSE(o2.ok());
  EXPECT_TRUE(o2.status().IsResourceExhausted());
  EXPECT_EQ(reg_.counter("resource.admission.olap.rejected")->Value(), 1u);
}

TEST_F(AdmissionTest, UnknownClassFallsBackToDefault) {
  controller_.DefineClass("oltp", Small(4, 4, std::chrono::milliseconds(50)));
  auto t = controller_.Admit("no-such-class");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->workload_class(), "oltp");
  auto empty = controller_.Admit("");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->workload_class(), "oltp");
}

TEST_F(AdmissionTest, TicketBudgetEnforcesPerQueryLimit) {
  auto opts = Small(2, 2, std::chrono::milliseconds(50));
  opts.per_query_limit_bytes = 128;
  controller_.DefineClass("olap", opts);

  auto t = controller_.Admit("olap");
  ASSERT_TRUE(t.ok());
  ASSERT_NE(t->budget(), nullptr);
  Reservation r(t->budget());
  EXPECT_TRUE(r.Grow(100).ok());
  Status st = r.Grow(100);
  EXPECT_TRUE(st.IsResourceExhausted()) << st.ToString();
  r.ReleaseAll();  // ticket destruction asserts the query node is balanced
}

// --------------------------------------------------------------- pressure --

TEST(PressureBrokerTest, RunOnceSpillsUntilBelowLowWater) {
  metrics::Registry reg;
  MemoryBudget budget({1000, 0.8, 0.5}, &reg);
  BudgetNode* storage = budget.GetOrCreateClass("storage", 0);
  storage->ForceCharge(900);

  PressureBroker broker(&budget);
  uint64_t asked = 0;
  broker.set_spill([&](uint64_t bytes) -> uint64_t {
    asked += bytes;
    uint64_t chunk = std::min<uint64_t>(storage->used(), 200);
    storage->Release(chunk);
    return chunk;
  });

  uint64_t freed = broker.RunOnce();
  EXPECT_GE(freed, 400u);  // 900 -> at or below 500
  EXPECT_FALSE(budget.above_low_water());
  EXPECT_GT(asked, 0u);
  EXPECT_GE(reg.counter("resource.pressure.events")->Value(), 1u);
  EXPECT_EQ(reg.counter("resource.pressure.spilled_bytes")->Value(), freed);
  storage->Release(storage->used());
}

TEST(PressureBrokerTest, StopsWhenSpillIsExhausted) {
  metrics::Registry reg;
  MemoryBudget budget({1000, 0.8, 0.5}, &reg);
  BudgetNode* storage = budget.GetOrCreateClass("storage", 0);
  storage->ForceCharge(900);

  PressureBroker broker(&budget);
  broker.set_spill([](uint64_t) -> uint64_t { return 0; });  // nothing evictable
  EXPECT_EQ(broker.RunOnce(), 0u);
  EXPECT_TRUE(budget.above_high_water());  // still under pressure, but no spin
  EXPECT_GE(reg.counter("resource.pressure.exhausted")->Value(), 1u);
  storage->Release(900);
}

TEST(PressureBrokerTest, BackgroundThreadReactsToHighWaterSignal) {
  metrics::Registry reg;
  MemoryBudget budget({1 << 20, 0.5, 0.25}, &reg);
  BudgetNode* storage = budget.GetOrCreateClass("storage", 0);

  PressureBroker::Options opts;
  opts.poll_period = std::chrono::milliseconds(5);
  PressureBroker broker(&budget, opts);
  std::mutex mu;
  uint64_t outstanding = 0;
  broker.set_spill([&](uint64_t bytes) -> uint64_t {
    std::lock_guard<std::mutex> lock(mu);
    uint64_t take = std::min(outstanding, bytes);
    storage->Release(take);
    outstanding -= take;
    return take;
  });
  broker.Start();
  ASSERT_TRUE(broker.running());

  // Charge first, record the spillable ballast second: the broker may only
  // ever release bytes that have already landed on the node.
  storage->ForceCharge(768 * 1024);  // 75% of the limit: over high water
  {
    std::lock_guard<std::mutex> lock(mu);
    outstanding = 768 * 1024;
  }

  // The broker thread must bring usage below low water on its own.
  for (int i = 0; i < 2000 && budget.above_low_water(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(budget.above_low_water());
  broker.Stop();
  EXPECT_FALSE(broker.running());
  std::lock_guard<std::mutex> lock(mu);
  storage->Release(outstanding);
  outstanding = 0;
}

/// End-to-end pressure -> spill-to-cold: a governed Database whose table
/// bytes push the budget over high water; the broker (bound to the tiering
/// daemon) demotes the coldest partitions straight through to the DFS cold
/// tier until the budget is back below low water.
TEST(PressureSpillTest, PressureDemotesColdestPartitionsToColdTier) {
  metrics::Registry reg;
  Database db;
  db.set_metrics_registry(&reg);
  TransactionManager tm;

  Schema schema({ColumnDef("id", DataType::kInt64),
                 ColumnDef("payload", DataType::kDouble)});
  auto seed_partition = [&](const std::string& name) {
    ColumnTable* t = *db.CreateTable(name, schema);
    auto txn = tm.Begin();
    for (int r = 0; r < 256; ++r) {
      ASSERT_TRUE(
          tm.Insert(txn.get(), t, {Value::Int(r), Value::Dbl(r * 0.5)}).ok());
    }
    ASSERT_TRUE(tm.Commit(txn.get()).ok());
  };
  constexpr int kPartitions = 12;
  for (int p = 0; p < kPartitions; ++p) {
    seed_partition("part" + std::to_string(p));
  }
  uint64_t per_partition = (*db.GetTable("part0"))->MemoryBytes();
  ASSERT_GT(per_partition, 0u);

  // Budget sized so the 12 loaded partitions sit at 100% of the limit:
  // decisively over high water the moment they are bound.
  ResourceGovernor::Options gopts;
  gopts.budget.total_limit_bytes = per_partition * kPartitions;
  gopts.budget.high_water = 0.6;
  gopts.budget.low_water = 0.4;
  gopts.pressure.min_spill_bytes = 1024;  // small scale: modest hysteresis
  ResourceGovernor gov(gopts, &reg);
  for (int p = 0; p < kPartitions; ++p) {
    (*db.GetTable("part" + std::to_string(p)))
        ->BindMemoryBudget(gov.storage_node());
  }
  ASSERT_TRUE(gov.budget().above_high_water())
      << gov.budget().used_bytes() << " / " << gopts.budget.total_limit_bytes;

  ExtendedStorage warm;
  SimulatedDfs dfs;
  DfsTierStore cold(&dfs);
  tiering::TieringDaemon daemon(&db, &warm, &cold, {});
  for (int p = 0; p < kPartitions; ++p) daemon.Manage("part" + std::to_string(p));
  // Heat up a couple of partitions so the spill has a "coldest first" order
  // to respect: the hot ones must survive.
  Executor exec(&db, tm.AutoCommitView());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(exec.Execute(PlanBuilder::Scan("part0").Build()).ok());
    ASSERT_TRUE(exec.Execute(PlanBuilder::Scan("part1").Build()).ok());
  }
  daemon.heat().AdvanceEpoch();

  daemon.BindPressureBroker(&gov.pressure());
  uint64_t freed = gov.pressure().RunOnce();
  EXPECT_GT(freed, 0u);
  EXPECT_FALSE(gov.budget().above_low_water())
      << gov.budget().used_bytes() << " used";

  // Spilled partitions went all the way to the cold tier; hot ones survive.
  EXPECT_TRUE(db.GetTable("part0").ok());
  EXPECT_TRUE(db.GetTable("part1").ok());
  int spilled = 0;
  for (int p = 0; p < kPartitions; ++p) {
    std::string name = "part" + std::to_string(p);
    if (!db.GetTable(name).ok()) {
      EXPECT_TRUE(cold.Contains(name)) << name << " must be in the cold tier";
      ++spilled;
    }
  }
  EXPECT_GE(spilled, 1);
  EXPECT_GE(reg.counter("tier.daemon.cold_demotes")->Value(),
            static_cast<uint64_t>(spilled));
  EXPECT_GE(reg.counter("tier.daemon.pressure_spills")->Value(), 1u);
  EXPECT_GE(reg.counter("resource.pressure.spilled_bytes")->Value(), freed);

  gov.pressure().Stop();
  // Drop the surviving bound tables before the governor (declared after the
  // db) is destroyed, and verify storage accounting drains to zero with them.
  for (int p = 0; p < kPartitions; ++p) {
    (void)db.DropTable("part" + std::to_string(p));
  }
  EXPECT_EQ(gov.storage_node()->used(), 0u);
}

// ---------------------------------------------------------------- governor --

TEST(GovernorTest, DatabaseExecuteRoutesThroughAdmission) {
  metrics::Registry reg;
  Database db;
  db.set_metrics_registry(&reg);
  TransactionManager tm;
  ColumnTable* t = *db.CreateTable(
      "kv", Schema({ColumnDef("k", DataType::kInt64),
                    ColumnDef("v", DataType::kInt64)}));
  auto txn = tm.Begin();
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(tm.Insert(txn.get(), t, {Value::Int(i), Value::Int(i * i)}).ok());
  }
  ASSERT_TRUE(tm.Commit(txn.get()).ok());

  ResourceGovernor::Options gopts;
  gopts.budget.total_limit_bytes = 64 << 20;
  ResourceGovernor gov(gopts, &reg);
  db.set_resource_governor(&gov);

  ExecOptions opts;
  opts.workload_class = "olap";
  auto rs = db.Execute("SELECT COUNT(*) AS n FROM kv", opts);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->rows[0][0], Value::Int(32));
  EXPECT_EQ(reg.counter("resource.admission.olap.admitted")->Value(), 1u);

  // Unnamed work lands in the default class.
  ASSERT_TRUE(db.Execute("SELECT * FROM kv").ok());
  EXPECT_EQ(reg.counter("resource.admission.oltp.admitted")->Value(), 1u);

  // After both queries every class is balanced.
  for (const auto& [name, used] : gov.budget().Snapshot()) {
    if (name == "global" || name == "storage") continue;
    EXPECT_EQ(used, 0u) << name;
  }
  db.set_resource_governor(nullptr);
}

TEST(GovernorTest, OverBudgetQueryFailsWithResourceExhaustedNotOom) {
  metrics::Registry reg;
  Database db;
  db.set_metrics_registry(&reg);
  TransactionManager tm;
  ColumnTable* t = *db.CreateTable(
      "big", Schema({ColumnDef("k", DataType::kInt64),
                     ColumnDef("v", DataType::kDouble)}));
  auto txn = tm.Begin();
  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE(tm.Insert(txn.get(), t, {Value::Int(i), Value::Dbl(i * 1.0)}).ok());
  }
  ASSERT_TRUE(tm.Commit(txn.get()).ok());

  ResourceGovernor::Options gopts;
  gopts.budget.total_limit_bytes = 64 << 20;
  AdmissionController::ClassOptions olap;
  olap.max_concurrent = 2;
  olap.per_query_limit_bytes = 4 * 1024;  // far below a full-table result
  AdmissionController::ClassOptions oltp;
  oltp.max_concurrent = 8;
  gopts.classes = {{"olap", olap}, {"oltp", oltp}};
  gopts.default_class = "oltp";
  ResourceGovernor gov(gopts, &reg);
  db.set_resource_governor(&gov);

  ExecOptions opts;
  opts.workload_class = "olap";
  auto rs = db.Execute("SELECT * FROM big", opts);
  ASSERT_FALSE(rs.ok());
  EXPECT_TRUE(rs.status().IsResourceExhausted()) << rs.status().ToString();

  // The failure path released everything it had charged.
  for (const auto& [name, used] : gov.budget().Snapshot()) {
    if (name == "storage" || name == "global") continue;
    EXPECT_EQ(used, 0u) << name;
  }
  // A selective query in the same class still fits: predicate pushdown
  // means the scan materializes one row, not four thousand.
  auto small = db.Execute("SELECT v FROM big WHERE k = 17", opts);
  ASSERT_TRUE(small.ok()) << small.status().ToString();
  ASSERT_EQ(small->rows.size(), 1u);
  EXPECT_EQ(small->rows[0][0], Value::Dbl(17.0));
  db.set_resource_governor(nullptr);
}

TEST(GovernorTest, PerDatabaseRegistriesStayIsolated) {
  metrics::Registry reg_a, reg_b;
  // Governors before the Databases: bound tables must release into a live
  // governor at teardown.
  ResourceGovernor gov_a({}, &reg_a);
  ResourceGovernor gov_b({}, &reg_b);
  Database a, b;
  a.set_metrics_registry(&reg_a);
  b.set_metrics_registry(&reg_b);
  a.set_resource_governor(&gov_a);
  b.set_resource_governor(&gov_b);

  TransactionManager tm;
  ColumnTable* t = *a.CreateTable("only_a", Schema({ColumnDef("k", DataType::kInt64)}));
  auto txn = tm.Begin();
  ASSERT_TRUE(tm.Insert(txn.get(), t, {Value::Int(1)}).ok());
  ASSERT_TRUE(tm.Commit(txn.get()).ok());
  ASSERT_TRUE(a.Execute("SELECT * FROM only_a").ok());

  EXPECT_EQ(reg_a.counter("resource.admission.oltp.admitted")->Value(), 1u);
  EXPECT_EQ(reg_b.counter("resource.admission.oltp.admitted")->Value(), 0u);
  EXPECT_GT(reg_a.gauge("resource.class.storage.used_bytes")->Value(), 0);
  EXPECT_EQ(reg_b.gauge("resource.class.storage.used_bytes")->Value(), 0);
  a.set_resource_governor(nullptr);
  b.set_resource_governor(nullptr);
}

// ---------------------------------------------------------- balance oracle --

/// Seeded mixed-workload stress: OLTP point reads, OLAP scans that blow
/// their per-query budget, fail-fast batch work, and queue timeouts, all
/// racing across threads. Afterwards the budget tree must be exactly
/// balanced: every class at zero, the root holding only storage bytes.
TEST(ResourceBalanceOracle, MixedWorkloadDrainsToZero) {
  metrics::Registry reg;
  ResourceGovernor::Options gopts;
  gopts.budget.total_limit_bytes = 64 << 20;
  AdmissionController::ClassOptions oltp;
  oltp.max_concurrent = 8;
  oltp.queue_timeout = std::chrono::milliseconds(100);
  AdmissionController::ClassOptions olap;
  olap.max_concurrent = 2;
  olap.max_queued = 2;
  olap.queue_timeout = std::chrono::milliseconds(20);
  olap.per_query_limit_bytes = 16 * 1024;  // full scans of `big` must fail
  AdmissionController::ClassOptions batch;
  batch.max_concurrent = 1;
  batch.fail_fast = true;
  gopts.classes = {{"oltp", oltp}, {"olap", olap}, {"batch", batch}};
  gopts.default_class = "oltp";
  // The governor outlives the Database: bound tables release their storage
  // charges into it when the db (declared after) is destroyed first.
  ResourceGovernor gov(gopts, &reg);
  Database db;
  db.set_metrics_registry(&reg);
  db.set_resource_governor(&gov);  // before DDL: tables charge storage
  TransactionManager tm;

  Schema schema({ColumnDef("k", DataType::kInt64),
                 ColumnDef("v", DataType::kDouble)});
  ColumnTable* small = *db.CreateTable("small", schema);
  ColumnTable* big = *db.CreateTable("big", schema);
  auto txn = tm.Begin();
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(tm.Insert(txn.get(), small, {Value::Int(i), Value::Dbl(i * 1.0)}).ok());
  }
  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE(tm.Insert(txn.get(), big, {Value::Int(i), Value::Dbl(i * 1.0)}).ok());
  }
  ASSERT_TRUE(tm.Commit(txn.get()).ok());

  constexpr int kThreads = 6;
  constexpr int kQueriesPerThread = 30;
  std::atomic<int> ok_count{0}, exhausted{0}, other_errors{0};
  std::vector<std::thread> threads;
  for (int thread_id = 0; thread_id < kThreads; ++thread_id) {
    threads.emplace_back([&, thread_id] {
      std::mt19937 rng(1234 + thread_id);  // seeded: failures replay exactly
      for (int q = 0; q < kQueriesPerThread; ++q) {
        ExecOptions opts;
        std::string sql;
        switch (rng() % 4) {
          case 0:
            opts.workload_class = "oltp";
            sql = "SELECT v FROM small WHERE k = " + std::to_string(rng() % 64);
            break;
          case 1:
            opts.workload_class = "olap";
            sql = "SELECT * FROM big";  // over the per-query budget
            break;
          case 2:
            opts.workload_class = "olap";
            sql = "SELECT COUNT(*) AS n, SUM(v) AS s FROM big";
            break;
          default:
            opts.workload_class = "batch";
            sql = "SELECT SUM(v) AS s FROM small";
            break;
        }
        auto rs = db.Execute(sql, opts);
        if (rs.ok()) {
          ok_count.fetch_add(1);
        } else if (rs.status().IsResourceExhausted()) {
          exhausted.fetch_add(1);
        } else {
          other_errors.fetch_add(1);
          ADD_FAILURE() << sql << " -> " << rs.status().ToString();
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_GT(ok_count.load(), 0);
  EXPECT_GT(exhausted.load(), 0) << "workload must exercise the denial paths";
  EXPECT_EQ(other_errors.load(), 0);

  // The oracle: everything charged during the workload was released —
  // success paths, ResourceExhausted paths, and timeout paths alike.
  uint64_t storage_used = 0, root_used = 0;
  for (const auto& [name, used] : gov.budget().Snapshot()) {
    if (name == "global") {
      root_used = used;
    } else if (name == "storage") {
      storage_used = used;
      EXPECT_GT(used, 0u) << "tables stay charged while alive";
    } else {
      EXPECT_EQ(used, 0u) << "class '" << name << "' leaked bytes";
    }
  }
  EXPECT_EQ(root_used, storage_used) << "root must hold only storage bytes";
  EXPECT_EQ(reg.gauge("resource.used_bytes")->Value(),
            static_cast<int64_t>(storage_used));
  db.set_resource_governor(nullptr);
}

/// Concurrent admission under TSan: OLTP keeps flowing at full rate while
/// an over-subscribed OLAP class queues/times out and the pressure broker
/// spills storage ballast in the background — the three moving parts of the
/// governor exercised against each other (part of `ctest -L resource`,
/// whole-suite TSan gate).
TEST(AdmissionConcurrencyTest, OltpFlowsWhileOlapQueuesAndBrokerSpills) {
  metrics::Registry reg;
  ResourceGovernor::Options gopts;
  gopts.budget.total_limit_bytes = 1 << 20;
  gopts.budget.high_water = 0.5;
  gopts.budget.low_water = 0.25;
  AdmissionController::ClassOptions oltp;
  oltp.max_concurrent = 8;
  oltp.queue_timeout = std::chrono::milliseconds(500);
  AdmissionController::ClassOptions olap;
  olap.max_concurrent = 1;
  olap.max_queued = 1;
  olap.queue_timeout = std::chrono::milliseconds(2);
  gopts.classes = {{"oltp", oltp}, {"olap", olap}};
  gopts.default_class = "oltp";
  ResourceGovernor gov(gopts, &reg);

  // Spillable ballast on the storage node, drained by the broker thread.
  BudgetNode* storage = gov.storage_node();
  std::mutex ballast_mu;
  uint64_t ballast = 0;
  gov.pressure().set_spill([&](uint64_t bytes) -> uint64_t {
    std::lock_guard<std::mutex> lock(ballast_mu);
    uint64_t take = std::min(ballast, bytes);
    storage->Release(take);
    ballast -= take;
    return take;
  });
  gov.pressure().Start();

  std::atomic<int> oltp_denied{0}, olap_denied{0}, olap_ok{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) {
    threads.emplace_back([&] {  // flowing OLTP
      for (int q = 0; q < 200; ++q) {
        auto t = gov.AdmitQuery("oltp");
        if (!t.ok()) {
          oltp_denied.fetch_add(1);
          continue;
        }
        Reservation r(t->budget());
        ASSERT_TRUE(r.Grow(512).ok());
      }
    });
  }
  for (int i = 0; i < 3; ++i) {
    threads.emplace_back([&] {  // over-subscribed OLAP: queues, times out
      for (int q = 0; q < 50; ++q) {
        auto t = gov.AdmitQuery("olap");
        if (!t.ok()) {
          EXPECT_TRUE(t.status().IsResourceExhausted());
          olap_denied.fetch_add(1);
          continue;
        }
        olap_ok.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }
  threads.emplace_back([&] {  // storage churn crossing high water
    for (int i = 0; i < 20; ++i) {
      // Charge before recording as spillable: the broker must never release
      // bytes that have not landed on the node yet.
      storage->ForceCharge(64 * 1024);
      {
        std::lock_guard<std::mutex> lock(ballast_mu);
        ballast += 64 * 1024;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (auto& t : threads) t.join();

  // OLTP never hit its 8-slot ceiling; OLAP both flowed and was denied.
  EXPECT_EQ(oltp_denied.load(), 0);
  EXPECT_GT(olap_ok.load(), 0);
  EXPECT_GT(olap_denied.load(), 0);

  // The run can end inside the hysteresis band (above low, below high),
  // where the broker correctly stays idle. Push one more ballast slab to
  // force a high-water crossing; the pass it triggers must then drain all
  // the way below LOW water, not merely below high.
  storage->ForceCharge(600 * 1024);
  {
    std::lock_guard<std::mutex> lock(ballast_mu);
    ballast += 600 * 1024;
  }
  for (int i = 0; i < 2000 && gov.budget().above_low_water(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(gov.budget().above_low_water());
  gov.pressure().Stop();
  {
    std::lock_guard<std::mutex> lock(ballast_mu);
    storage->Release(ballast);
    ballast = 0;
  }
  for (const auto& [name, used] : gov.budget().Snapshot()) {
    EXPECT_EQ(used, 0u) << name;
  }
}

TEST(GovernorTest, AdHocExecutorMintsAdmissionTicket) {
  metrics::Registry reg;
  Database db;
  db.set_metrics_registry(&reg);
  TransactionManager tm;
  ColumnTable* t =
      *db.CreateTable("kv", Schema({ColumnDef("k", DataType::kInt64)}));
  auto txn = tm.Begin();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(tm.Insert(txn.get(), t, {Value::Int(i)}).ok());
  }
  ASSERT_TRUE(tm.Commit(txn.get()).ok());

  ResourceGovernor::Options gopts;
  gopts.budget.total_limit_bytes = 64 << 20;
  ResourceGovernor gov(gopts, &reg);
  db.set_resource_governor(&gov);

  // The ad-hoc Executor entry point (the path SOE fragment execution takes
  // on a governed node) admits through the governor like Database::Execute
  // — DESIGN.md §13.2's deliberate bypass is retired.
  ExecOptions opts;
  opts.workload_class = "olap";
  Executor exec(&db, tm.AutoCommitView(), opts);
  auto rs = exec.Execute(PlanBuilder::Scan("kv").Build());
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->num_rows(), 8u);
  EXPECT_EQ(reg.counter("resource.admission.olap.admitted")->Value(), 1u);

  // The per-call ticket died with Execute: nothing stays charged, and a
  // second call admits again instead of reusing a stale budget.
  for (const auto& [name, used] : gov.budget().Snapshot()) {
    if (name == "global" || name == "storage") continue;
    EXPECT_EQ(used, 0u) << name;
  }
  ASSERT_TRUE(exec.Execute(PlanBuilder::Scan("kv").Build()).ok());
  EXPECT_EQ(reg.counter("resource.admission.olap.admitted")->Value(), 2u);
  db.set_resource_governor(nullptr);
}

}  // namespace
}  // namespace poly
