// E21 (DESIGN.md §10): cost of the observability layer. Per-operator
// tracing is priced on the E13 Q6-shape scan+aggregate so the overhead is
// measured against real work, not an empty loop; the metrics hot paths
// (sharded counter add, log-scale histogram observe) are priced raw.
//
// Rows reproduced:
//   Observability_Q6like_{TraceOff,TraceOn}/<rows>  - tracing overhead (<3% target)
//   Observability_CounterAdd                        - one sharded atomic add
//   Observability_HistogramObserve                  - bit_width bucket + CAS min/max
//   Observability_TextPage/<metrics>                - full exposition render
// Expected shape: TraceOn within a few percent of TraceOff (spans are
// per-operator, never per-row); counter adds in the few-ns range.

#include <benchmark/benchmark.h>

#include "common/metrics.h"
#include "query/executor.h"
#include "query/optimizer.h"
#include "workloads.h"

namespace poly {
namespace {

PlanPtr Q6Like() {
  // SELECT SUM(amount * qty) WHERE qty < 25 AND year >= 2023
  AggSpec revenue{AggFunc::kSum,
                  Expr::Arith(ArithOp::kMul, Expr::Column(3), Expr::Column(4)),
                  "revenue"};
  auto plan =
      PlanBuilder::Scan("orders")
          .Filter(Expr::And(
              Expr::Compare(CmpOp::kLt, Expr::Column(4), Expr::Literal(Value::Int(25))),
              Expr::Compare(CmpOp::kGe, Expr::Column(5),
                            Expr::Literal(Value::Int(2023)))))
          .Aggregate({}, {revenue})
          .Build();
  Optimizer opt;
  return opt.Optimize(plan);
}

struct ObservabilityFixture : benchmark::Fixture {
  void SetUp(const benchmark::State& state) override {
    db = std::make_unique<Database>();
    tm = std::make_unique<TransactionManager>();
    bench::LoadOrders(db.get(), tm.get(), "orders", static_cast<int>(state.range(0)));
  }
  void TearDown(const benchmark::State&) override {
    db.reset();
    tm.reset();
  }
  std::unique_ptr<Database> db;
  std::unique_ptr<TransactionManager> tm;
};

BENCHMARK_DEFINE_F(ObservabilityFixture, Q6like_TraceOff)(benchmark::State& state) {
  PlanPtr plan = Q6Like();
  for (auto _ : state) {
    Executor exec(db.get(), tm->AutoCommitView());
    benchmark::DoNotOptimize(exec.Execute(plan)->rows[0][0].NumericValue());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK_REGISTER_F(ObservabilityFixture, Q6like_TraceOff)->Arg(50000)->Arg(200000);

BENCHMARK_DEFINE_F(ObservabilityFixture, Q6like_TraceOn)(benchmark::State& state) {
  PlanPtr plan = Q6Like();
  ExecOptions opts;
  opts.trace = true;
  for (auto _ : state) {
    Executor exec(db.get(), tm->AutoCommitView(), opts);
    auto rs = exec.Execute(plan);
    benchmark::DoNotOptimize(rs->rows[0][0].NumericValue());
    benchmark::DoNotOptimize(rs->trace.get());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK_REGISTER_F(ObservabilityFixture, Q6like_TraceOn)->Arg(50000)->Arg(200000);

void Observability_CounterAdd(benchmark::State& state) {
  metrics::Registry reg;
  metrics::Counter* c = reg.counter("bench.counter");
  for (auto _ : state) {
    c->Add(1);
  }
  benchmark::DoNotOptimize(c->Value());
}
BENCHMARK(Observability_CounterAdd);

void Observability_HistogramObserve(benchmark::State& state) {
  metrics::Registry reg;
  metrics::Histogram* h = reg.histogram("bench.hist");
  uint64_t v = 1;
  for (auto _ : state) {
    h->Observe(v);
    v = v * 2862933555777941757ull + 3037000493ull;  // cheap LCG spread
  }
  benchmark::DoNotOptimize(h->Count());
}
BENCHMARK(Observability_HistogramObserve);

void Observability_TextPage(benchmark::State& state) {
  metrics::Registry reg;
  for (int i = 0; i < state.range(0); ++i) {
    reg.counter("bench.c." + std::to_string(i))->Add(i);
    reg.histogram("bench.h." + std::to_string(i))->Observe(i * 1000);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.TextPage());
  }
}
BENCHMARK(Observability_TextPage)->Arg(64);

}  // namespace
}  // namespace poly
