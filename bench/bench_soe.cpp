// E14 (§IV-B, Figure 3): the scale-out extension. "These plans can lead to
// strong speedup results compared to single machine execution" [13];
// CORFU-style shared log [15]; OLTP vs OLAP node consistency.
//
// Rows reproduced:
//   Soe_ScaleOut/<nodes>          - same distributed aggregate over 1..8
//     nodes; counter makespan_ms models the parallel cluster (max per-node
//     work), wall time on one core is the serial sum
//   Soe_SharedLogAppend/<units>   - log append throughput vs replication
//   Soe_InsertCommit              - end-to-end commit through the broker
//   Soe_OlapStaleness             - staleness (log offsets) an OLAP node
//     accumulates under write load, and the Poll cost to catch up
//
// E20 (fault model, DESIGN.md §9): availability and recovery under chaos.
//   Soe_ChaosAvailability/<drop%> - distributed aggregates on a cluster
//     whose fabric drops <drop%> of messages; counters report the fraction
//     of queries that still succeed, the retry volume paying for it, and
//     the modeled (virtual-clock) latency per query
//   Soe_ChaosRecovery             - kill a node, Rebalance (log replay onto
//     the survivors), then prove the cluster answers — the timed region is
//     the whole crash-to-served-query recovery

#include <benchmark/benchmark.h>

#include "soe/cluster.h"
#include "workloads.h"

namespace poly {
namespace {

Schema ReadingsSchema() {
  return Schema({ColumnDef("sensor", DataType::kInt64),
                 ColumnDef("value", DataType::kDouble)});
}

void Soe_ScaleOut(benchmark::State& state) {
  int nodes = static_cast<int>(state.range(0));
  SoeCluster::Options opts;
  opts.num_nodes = nodes;
  opts.log_units = 3;
  opts.log_replication = 1;
  SoeCluster cluster(opts);
  // Partitions = 2 per node so placement is balanced.
  (void)cluster.CreateTable("readings", ReadingsSchema(),
                            PartitionSpec::Hash("sensor", nodes * 2));
  const int kRows = 200000;
  std::vector<Row> rows;
  rows.reserve(kRows);
  Random rng(3);
  for (int i = 0; i < kRows; ++i) {
    rows.push_back({Value::Int(static_cast<int64_t>(rng.Uniform(100000))),
                    Value::Dbl(rng.NextDouble() * 100)});
  }
  (void)cluster.CommitInserts("readings", rows);

  AggSpec cnt{AggFunc::kCount, nullptr, "cnt"};
  AggSpec sum{AggFunc::kSum, Expr::Column(1), "sum"};
  uint64_t makespan = 0;
  for (auto _ : state) {
    auto rs = cluster.DistributedAggregate("readings", nullptr, "", {cnt, sum});
    makespan = cluster.last_query_stats().makespan_nanos;
    benchmark::DoNotOptimize(rs->rows[0][1].NumericValue());
  }
  state.counters["makespan_ms"] = static_cast<double>(makespan) / 1e6;
  state.counters["modeled_speedup_vs_serial"] =
      static_cast<double>(cluster.last_query_stats().total_exec_nanos) /
      static_cast<double>(makespan == 0 ? 1 : makespan);
  state.counters["network_msgs"] = static_cast<double>(cluster.network().messages());
}
BENCHMARK(Soe_ScaleOut)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void Soe_SharedLogAppend(benchmark::State& state) {
  SharedLog log(SharedLog::Options{4, static_cast<int>(state.range(0))});
  std::string record(128, 'r');
  for (auto _ : state) {
    benchmark::DoNotOptimize(*log.Append(record));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["replication"] = static_cast<double>(state.range(0));
}
BENCHMARK(Soe_SharedLogAppend)->Arg(1)->Arg(2)->Arg(4);

void Soe_InsertCommit(benchmark::State& state) {
  SoeCluster::Options opts;
  opts.num_nodes = 4;
  SoeCluster cluster(opts);
  (void)cluster.CreateTable("readings", ReadingsSchema(),
                            PartitionSpec::Hash("sensor", 8), /*replication=*/2);
  Random rng(3);
  for (auto _ : state) {
    Row row = {Value::Int(static_cast<int64_t>(rng.Uniform(100000))),
               Value::Dbl(rng.NextDouble())};
    benchmark::DoNotOptimize(*cluster.Insert("readings", row));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(Soe_InsertCommit);

void Soe_OlapStaleness(benchmark::State& state) {
  SoeCluster::Options opts;
  opts.num_nodes = 2;
  opts.default_mode = NodeMode::kOlap;
  SoeCluster cluster(opts);
  (void)cluster.CreateTable("readings", ReadingsSchema(),
                            PartitionSpec::Hash("sensor", 4));
  Random rng(3);
  uint64_t max_staleness = 0;
  for (auto _ : state) {
    // A burst of 100 commits lands in the log without touching the nodes...
    for (int i = 0; i < 100; ++i) {
      (void)cluster.Insert("readings",
                           {Value::Int(static_cast<int64_t>(rng.Uniform(1000))),
                            Value::Dbl(1.0)});
    }
    max_staleness = std::max(max_staleness, cluster.Staleness(0));
    // ...then the OLAP node polls and catches up (the timed portion is the
    // full produce+poll cycle).
    (void)cluster.PollNode(0);
    (void)cluster.PollNode(1);
  }
  state.counters["max_staleness_offsets"] = static_cast<double>(max_staleness);
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(Soe_OlapStaleness);

void Soe_ChaosAvailability(benchmark::State& state) {
  SoeCluster::Options opts;
  opts.num_nodes = 4;
  opts.net.drop_probability = static_cast<double>(state.range(0)) / 100.0;
  opts.net.delay_probability = 0.2;
  opts.retry.max_attempts = 6;
  SoeCluster cluster(opts);
  (void)cluster.CreateTable("readings", ReadingsSchema(),
                            PartitionSpec::Hash("sensor", 8), /*replication=*/2);
  std::vector<Row> rows;
  Random rng(3);
  for (int i = 0; i < 20000; ++i) {
    rows.push_back({Value::Int(static_cast<int64_t>(rng.Uniform(100000))),
                    Value::Dbl(rng.NextDouble() * 100)});
  }
  (void)cluster.CommitInserts("readings", rows);

  AggSpec cnt{AggFunc::kCount, nullptr, "cnt"};
  AggSpec sum{AggFunc::kSum, Expr::Column(1), "sum"};
  uint64_t served = 0, failed = 0;
  uint64_t virtual_start = cluster.network().virtual_nanos();
  uint64_t retries_start = cluster.total_retries();
  for (auto _ : state) {
    auto rs = cluster.DistributedAggregate("readings", nullptr, "", {cnt, sum});
    if (rs.ok()) {
      ++served;
      benchmark::DoNotOptimize(rs->rows[0][1].NumericValue());
    } else {
      ++failed;
    }
  }
  double queries = static_cast<double>(served + failed);
  state.counters["drop_pct"] = static_cast<double>(state.range(0));
  state.counters["availability"] = queries == 0 ? 0 : static_cast<double>(served) / queries;
  state.counters["retries_per_query"] =
      queries == 0 ? 0
                   : static_cast<double>(cluster.total_retries() - retries_start) / queries;
  state.counters["virtual_us_per_query"] =
      queries == 0
          ? 0
          : static_cast<double>(cluster.network().virtual_nanos() - virtual_start) /
                queries / 1e3;
  state.counters["dropped_msgs"] = static_cast<double>(cluster.network().dropped());
}
BENCHMARK(Soe_ChaosAvailability)->Arg(0)->Arg(5)->Arg(10)->Arg(25);

void Soe_ChaosRecovery(benchmark::State& state) {
  AggSpec cnt{AggFunc::kCount, nullptr, "cnt"};
  uint64_t replayed = 0;
  for (auto _ : state) {
    state.PauseTiming();  // cluster + data setup is not part of recovery
    SoeCluster::Options opts;
    opts.num_nodes = 4;
    SoeCluster cluster(opts);
    (void)cluster.CreateTable("readings", ReadingsSchema(),
                              PartitionSpec::Hash("sensor", 8), /*replication=*/2);
    Random rng(3);
    for (int batch = 0; batch < 200; ++batch) {  // 200 commits of 100 rows
      std::vector<Row> rows;
      for (int i = 0; i < 100; ++i) {
        rows.push_back({Value::Int(static_cast<int64_t>(rng.Uniform(100000))),
                        Value::Dbl(rng.NextDouble())});
      }
      (void)cluster.CommitInserts("readings", rows);
    }
    state.ResumeTiming();

    // Crash-to-served-query: kill, rebuild replicas from the log, answer.
    (void)cluster.KillNode(0);
    (void)cluster.Rebalance();
    auto rs = cluster.DistributedAggregate("readings", nullptr, "", {cnt});
    benchmark::DoNotOptimize(rs->rows[0][0]);
    replayed = cluster.log().Tail();
  }
  state.counters["log_records_replayed"] = static_cast<double>(replayed);
}
BENCHMARK(Soe_ChaosRecovery)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace poly
