// E1 (Figure 1): the data-temperature pyramid — hot in-memory, warm
// extended storage, cold DFS — "transactional data may age and [be] moved
// to extended storage and potentially into HDFS-based systems".
//
// Rows reproduced (same aggregate query against the same data per tier):
//   Tier_Hot_InMemory       - query the resident column table
//   Tier_Warm_Extended      - promote from extended storage, then query
//     (counter modeled_disk_ms: the simulated disk cost)
//   Tier_Cold_Dfs           - promote from the DFS cold store, then query
//     (counter modeled_dfs_ms: simulated cold-storage cost)
// Expected shape: orders of magnitude between tiers on the modeled
// counters; real time also rises with the deserialize work.

#include <benchmark/benchmark.h>

#include "aging/extended_storage.h"
#include "query/executor.h"
#include "workloads.h"

namespace poly {
namespace {

PlanPtr SumPlan(const std::string& table) {
  AggSpec sum{AggFunc::kSum, Expr::Column(3), "revenue"};
  return PlanBuilder::Scan(table).Aggregate({}, {sum}).Build();
}

void Tier_Hot_InMemory(benchmark::State& state) {
  Database db;
  TransactionManager tm;
  bench::LoadOrders(&db, &tm, "orders", static_cast<int>(state.range(0)));
  PlanPtr plan = SumPlan("orders");
  for (auto _ : state) {
    Executor exec(&db, tm.AutoCommitView());
    benchmark::DoNotOptimize(exec.Execute(plan)->rows[0][0].NumericValue());
  }
  state.counters["modeled_storage_ms"] = 0;
}
BENCHMARK(Tier_Hot_InMemory)->Arg(50000)->Unit(benchmark::kMillisecond);

void Tier_Warm_Extended(benchmark::State& state) {
  Database db;
  TransactionManager tm;
  bench::LoadOrders(&db, &tm, "orders", static_cast<int>(state.range(0)));
  ExtendedStorage warm;
  (void)warm.Demote(&db, "orders");
  PlanPtr plan = SumPlan("orders");
  double storage_nanos = 0;
  for (auto _ : state) {
    double before = warm.simulated_nanos();
    ColumnTable* t = *warm.Promote(&db, "orders");
    (void)t;
    storage_nanos += warm.simulated_nanos() - before;
    Executor exec(&db, tm.AutoCommitView());
    benchmark::DoNotOptimize(exec.Execute(plan)->rows[0][0].NumericValue());
    // Promote moves (no warm copy stays behind), so demote for the next
    // round; its write cost lands outside the measured promote window.
    (void)warm.Demote(&db, "orders");
  }
  state.counters["modeled_storage_ms"] = storage_nanos / 1e6 / state.iterations();
}
BENCHMARK(Tier_Warm_Extended)->Arg(50000)->Unit(benchmark::kMillisecond);

void Tier_Cold_Dfs(benchmark::State& state) {
  Database db;
  TransactionManager tm;
  bench::LoadOrders(&db, &tm, "orders", static_cast<int>(state.range(0)));
  SimulatedDfs::Options dfs_opts;
  dfs_opts.block_size = 256 * 1024;
  SimulatedDfs dfs(dfs_opts);
  ExtendedStorage warm;
  (void)warm.Demote(&db, "orders");
  (void)warm.DemoteToCold("orders", &dfs);
  PlanPtr plan = SumPlan("orders");
  double dfs_nanos = 0;
  for (auto _ : state) {
    double before = dfs.simulated_read_nanos();
    ColumnTable* t = *warm.PromoteFromCold(&db, "orders", &dfs);
    (void)t;
    dfs_nanos += dfs.simulated_read_nanos() - before;
    Executor exec(&db, tm.AutoCommitView());
    benchmark::DoNotOptimize(exec.Execute(plan)->rows[0][0].NumericValue());
    (void)db.DropTable("orders");
  }
  state.counters["modeled_storage_ms"] = dfs_nanos / 1e6 / state.iterations();
}
BENCHMARK(Tier_Cold_Dfs)->Arg(50000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace poly
