// E26 (§VI "single point of entry"; DESIGN.md §14): the distributed query
// planner. One SQL string against the SOE lowers into per-node fragments —
// the claim under test is that distributed join/aggregate execution moves
// radically fewer bytes to the coordinator than gather-and-execute (ship
// every base table, run the plan at the entry point), at comparable or
// better latency.
//
// Rows reproduced:
//   DistributedSql_ShuffledJoin   - repartition-hash join + group-by, both
//     sides shuffled by join key (broadcast threshold forced to 0);
//     coordinator_kb is what reaches the entry point (final aggregates
//     only), shuffle_kb the node-to-node staged traffic paying for it
//   DistributedSql_BroadcastJoin  - same query, catalog stats pick the
//     broadcast strategy (small dim side replicated to the fact partitions)
//   DistributedSql_GatherJoin     - the old path, forced: every base row
//     of both tables ships to the coordinator before the join runs
//   DistributedSql_TwoKeyGroupBy  - GROUP BY k1, k2 as partial-per-node ->
//     repartition-by-key -> final (multi-key aggregates never gather raw rows)

#include <benchmark/benchmark.h>

#include "soe/sql_bridge.h"

namespace poly {
namespace {

constexpr int kFactRows = 20000;
constexpr int kDimRows = 1000;
const char kJoinAgg[] =
    "SELECT w, SUM(v) AS s, COUNT(*) AS c FROM fact JOIN dim ON k2 = id "
    "GROUP BY w";

SoeCluster::Options ClusterOpts() {
  SoeCluster::Options opts;
  opts.num_nodes = 4;
  return opts;
}

void LoadStar(SoeCluster* cluster) {
  (void)cluster->CreateTable("fact",
                             Schema({ColumnDef("k1", DataType::kInt64),
                                     ColumnDef("k2", DataType::kInt64),
                                     ColumnDef("v", DataType::kInt64)}),
                             PartitionSpec::Hash("k1", 8), 2);
  (void)cluster->CreateTable("dim",
                             Schema({ColumnDef("id", DataType::kInt64),
                                     ColumnDef("w", DataType::kInt64)}),
                             PartitionSpec::Hash("id", 4), 2);
  std::vector<Row> fact;
  fact.reserve(kFactRows);
  for (int i = 0; i < kFactRows; ++i) {
    fact.push_back({Value::Int(i % 64), Value::Int(i % kDimRows), Value::Int(i)});
  }
  (void)cluster->CommitInserts("fact", fact);
  std::vector<Row> dim;
  dim.reserve(kDimRows);
  for (int i = 0; i < kDimRows; ++i) {
    dim.push_back({Value::Int(i), Value::Int(i * 7)});
  }
  (void)cluster->CommitInserts("dim", dim);
}

/// Runs `sql` through the bridge for every bench iteration and reports the
/// per-query coordinator / shuffle byte counters.
void RunSqlBench(benchmark::State& state, SoeSqlBridge* bridge,
                 SoeCluster* cluster, const std::string& sql) {
  metrics::Counter* coord = cluster->metrics().counter("soe.dqp.result_bytes");
  metrics::Counter* shuffle = cluster->metrics().counter("soe.dqp.shuffle_bytes");
  metrics::Counter* fragments = cluster->metrics().counter("soe.dqp.fragments");
  uint64_t coord0 = coord->Value();
  uint64_t shuffle0 = shuffle->Value();
  uint64_t fragments0 = fragments->Value();
  uint64_t iters = 0;
  for (auto _ : state) {
    auto rs = bridge->Execute(sql);
    if (!rs.ok()) {
      state.SkipWithError(rs.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(rs->rows.size());
    ++iters;
  }
  if (iters == 0) return;
  state.counters["coordinator_kb"] =
      static_cast<double>(coord->Value() - coord0) / 1024.0 / iters;
  state.counters["shuffle_kb"] =
      static_cast<double>(shuffle->Value() - shuffle0) / 1024.0 / iters;
  state.counters["fragments"] =
      static_cast<double>(fragments->Value() - fragments0) / iters;
}

void DistributedSql_ShuffledJoin(benchmark::State& state) {
  SoeCluster cluster(ClusterOpts());
  LoadStar(&cluster);
  SoeSqlBridge bridge(&cluster);
  DistributedPlanner::Options popts;
  popts.broadcast_threshold_rows = 0;  // force the repartition path
  bridge.set_planner_options(popts);
  RunSqlBench(state, &bridge, &cluster, kJoinAgg);
}
BENCHMARK(DistributedSql_ShuffledJoin)->Unit(benchmark::kMillisecond);

void DistributedSql_BroadcastJoin(benchmark::State& state) {
  SoeCluster cluster(ClusterOpts());
  LoadStar(&cluster);
  SoeSqlBridge bridge(&cluster);  // dim is under the broadcast threshold
  RunSqlBench(state, &bridge, &cluster, kJoinAgg);
}
BENCHMARK(DistributedSql_BroadcastJoin)->Unit(benchmark::kMillisecond);

void DistributedSql_GatherJoin(benchmark::State& state) {
  SoeCluster cluster(ClusterOpts());
  LoadStar(&cluster);
  SoeSqlBridge bridge(&cluster);
  bridge.set_force_gather(true);  // the pre-planner behavior, as baseline
  RunSqlBench(state, &bridge, &cluster, kJoinAgg);
}
BENCHMARK(DistributedSql_GatherJoin)->Unit(benchmark::kMillisecond);

void DistributedSql_TwoKeyGroupBy(benchmark::State& state) {
  SoeCluster cluster(ClusterOpts());
  LoadStar(&cluster);
  SoeSqlBridge bridge(&cluster);
  RunSqlBench(state, &bridge, &cluster,
              "SELECT k1, k2, SUM(v) AS s FROM fact GROUP BY k1, k2");
}
BENCHMARK(DistributedSql_TwoKeyGroupBy)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace poly
