// E9 (§II-H): flexible tables with sparse columns, document path queries,
// and the materialized "object" join index.
//
// Rows reproduced:
//   Doc_SparseColumnBytes            - bytes/row of a 1%-dense flexible
//     column vs a dense one (the "very sparse columns" compression claim)
//   Doc_PathQuery/<docs>             - JSON path predicate over a document
//     column
//   Doc_WholeObject_JoinIndex/<hdrs> - header+items fetched through the
//     materialized JSON object
//   Doc_WholeObject_RelationalJoin/<hdrs> - same object assembled by a
//     hash join at query time

#include <benchmark/benchmark.h>

#include "docstore/doc_query.h"
#include "docstore/flexible_table.h"
#include "docstore/object_index.h"
#include "query/executor.h"
#include "workloads.h"

namespace poly {
namespace {

void Doc_SparseColumnBytes(benchmark::State& state) {
  const int kRows = 50000;
  ColumnTable t("flex", Schema());
  (void)t.AddColumn(ColumnDef("dense", DataType::kInt64));
  (void)t.AddColumn(ColumnDef("sparse", DataType::kInt64));
  Random rng(3);
  for (int i = 0; i < kRows; ++i) {
    Row row = {Value::Int(static_cast<int64_t>(rng.Uniform(1000))),
               rng.Bernoulli(0.01) ? Value::Int(static_cast<int64_t>(rng.Uniform(50)))
                                   : Value::Null()};
    (void)t.AppendVersion(row, 1);
  }
  t.Merge();
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.MemoryBytes());
  }
  state.counters["dense_bytes_per_row"] =
      static_cast<double>(t.column(0).MemoryBytes()) / kRows;
  state.counters["sparse_bytes_per_row"] =
      static_cast<double>(t.column(1).MemoryBytes()) / kRows;
}
BENCHMARK(Doc_SparseColumnBytes);

struct DocSetup {
  Database db;
  TransactionManager tm;
  ColumnTable* docs;

  explicit DocSetup(int n) {
    docs = *db.CreateTable("docs", Schema({ColumnDef("id", DataType::kInt64),
                                           ColumnDef("doc", DataType::kDocument)}));
    Random rng(8);
    auto txn = tm.Begin();
    for (int i = 0; i < n; ++i) {
      std::string items;
      int item_count = 1 + static_cast<int>(rng.Uniform(5));
      for (int k = 0; k < item_count; ++k) {
        if (k) items += ",";
        items += R"({"sku":)" + std::to_string(rng.Uniform(1000)) + R"(,"qty":)" +
                 std::to_string(1 + rng.Uniform(20)) + "}";
      }
      std::string doc = R"({"customer":)" + std::to_string(rng.Uniform(500)) +
                        R"(,"total":)" + std::to_string(rng.Uniform(10000)) +
                        R"(,"items":[)" + items + "]}";
      (void)tm.Insert(txn.get(), docs, {Value::Int(i), Value::Document(doc)});
    }
    (void)tm.Commit(txn.get());
    docs->Merge();
  }
};

void Doc_PathQuery(benchmark::State& state) {
  DocSetup setup(static_cast<int>(state.range(0)));
  DocQuery q = *DocQuery::Create(setup.docs, "doc");
  size_t hits = 0;
  for (auto _ : state) {
    auto rows = q.SelectWhere(setup.tm.AutoCommitView(), "$.items[*].qty", CmpOp::kGe,
                              JsonValue::Number(18));
    hits = rows->size();
    benchmark::DoNotOptimize(hits);
  }
  state.counters["hits"] = static_cast<double>(hits);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(Doc_PathQuery)->Arg(5000)->Arg(20000)->Unit(benchmark::kMillisecond);

struct ObjectSetup {
  Database db;
  TransactionManager tm;
  ColumnTable* header;
  ColumnTable* items;
  ColumnTable* objects;
  int n;

  explicit ObjectSetup(int headers) : n(headers) {
    header = *db.CreateTable("hdr", Schema({ColumnDef("key", DataType::kInt64),
                                            ColumnDef("who", DataType::kString)}));
    items = *db.CreateTable("itm", Schema({ColumnDef("hdr_key", DataType::kInt64),
                                           ColumnDef("sku", DataType::kInt64),
                                           ColumnDef("qty", DataType::kInt64)}));
    objects = *db.CreateTable("objs", Schema({ColumnDef("key", DataType::kInt64),
                                              ColumnDef("doc", DataType::kDocument)}));
    Random rng(15);
    auto txn = tm.Begin();
    for (int i = 0; i < headers; ++i) {
      (void)tm.Insert(txn.get(), header,
                      {Value::Int(i), Value::Str("cust_" + std::to_string(i % 100))});
      int k = 1 + static_cast<int>(rng.Uniform(8));
      for (int j = 0; j < k; ++j) {
        (void)tm.Insert(txn.get(), items,
                        {Value::Int(i), Value::Int(static_cast<int64_t>(rng.Uniform(1000))),
                         Value::Int(1 + static_cast<int64_t>(rng.Uniform(9)))});
      }
    }
    (void)tm.Commit(txn.get());
    header->Merge();
    items->Merge();
    (void)ObjectJoinIndex::Materialize(&tm, *header, "key", *items, "hdr_key", objects);
    objects->Merge();
  }
};

void Doc_WholeObject_JoinIndex(benchmark::State& state) {
  ObjectSetup setup(static_cast<int>(state.range(0)));
  Random rng(1);
  for (auto _ : state) {
    int64_t key = static_cast<int64_t>(rng.Uniform(setup.n));
    auto obj = ObjectJoinIndex::Lookup(*setup.objects, setup.tm.AutoCommitView(), key);
    benchmark::DoNotOptimize(obj->Field("items")->AsArray().size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(Doc_WholeObject_JoinIndex)->Arg(2000)->Unit(benchmark::kMicrosecond);

void Doc_WholeObject_RelationalJoin(benchmark::State& state) {
  ObjectSetup setup(static_cast<int>(state.range(0)));
  Random rng(1);
  for (auto _ : state) {
    int64_t key = static_cast<int64_t>(rng.Uniform(setup.n));
    auto plan = PlanBuilder::Scan("hdr")
                    .Filter(Expr::Compare(CmpOp::kEq, Expr::Column(0),
                                          Expr::Literal(Value::Int(key))))
                    .HashJoin(PlanBuilder::Scan("itm").Build(), 0, 0)
                    .Build();
    Executor exec(&setup.db, setup.tm.AutoCommitView());
    auto rs = exec.Execute(plan);
    benchmark::DoNotOptimize(rs->num_rows());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(Doc_WholeObject_RelationalJoin)->Arg(2000)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace poly
