// E6 (§II-F): the SQL surface operators WithinDistance / Contains served by
// an engine-native geo index vs the scan-everything baseline.
//
// Rows reproduced:
//   Geo_WithinDistance_FullScan/<points>   - haversine over every row
//   Geo_WithinDistance_GridIndex/<points>  - grid cells prefilter
//     (counter: candidate_fraction — share of points even considered)
//   Geo_PolygonContains_GridIndex/<points> - Contains() with bbox prefilter
//   Geo_IndexBuild/<points>                - index construction cost

#include <benchmark/benchmark.h>

#include "engines/geo/geo_index.h"
#include "workloads.h"

namespace poly {
namespace {

struct GeoSetup {
  Database db;
  TransactionManager tm;
  ColumnTable* sites;

  explicit GeoSetup(int n) {
    sites = *db.CreateTable("sites", Schema({ColumnDef("id", DataType::kInt64),
                                             ColumnDef("pos", DataType::kGeoPoint)}));
    Random rng(41);
    auto txn = tm.Begin();
    for (int i = 0; i < n; ++i) {
      // Continental spread: lon [-10, 30], lat [35, 65].
      double lon = -10 + rng.NextDouble() * 40;
      double lat = 35 + rng.NextDouble() * 30;
      (void)tm.Insert(txn.get(), sites, {Value::Int(i), Value::GeoPoint(lon, lat)});
    }
    (void)tm.Commit(txn.get());
    sites->Merge();
  }
};

void Geo_WithinDistance_FullScan(benchmark::State& state) {
  GeoSetup setup(static_cast<int>(state.range(0)));
  Random rng(2);
  size_t hits = 0;
  for (auto _ : state) {
    GeoPointValue center{-10 + rng.NextDouble() * 40, 35 + rng.NextDouble() * 30};
    size_t count = 0;
    ReadView now = setup.tm.AutoCommitView();
    setup.sites->ScanVisible(now, [&](uint64_t r) {
      if (HaversineMeters(setup.sites->GetValue(r, 1).AsGeoPoint(), center) <= 50000) {
        ++count;
      }
    });
    hits = count;
    benchmark::DoNotOptimize(hits);
  }
  state.counters["candidate_fraction"] = 1.0;
}
BENCHMARK(Geo_WithinDistance_FullScan)->Arg(20000)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

void Geo_WithinDistance_GridIndex(benchmark::State& state) {
  GeoSetup setup(static_cast<int>(state.range(0)));
  GeoIndex idx = *GeoIndex::Build(*setup.sites, setup.tm.AutoCommitView(), "pos", 0.5);
  Random rng(2);
  size_t hits = 0;
  uint64_t candidates = 0;
  uint64_t queries = 0;
  for (auto _ : state) {
    GeoPointValue center{-10 + rng.NextDouble() * 40, 35 + rng.NextDouble() * 30};
    hits = idx.WithinDistance(center, 50000).size();
    candidates += idx.last_candidates();
    ++queries;
    benchmark::DoNotOptimize(hits);
  }
  state.counters["candidate_fraction"] =
      static_cast<double>(candidates) / queries / static_cast<double>(idx.num_points());
}
BENCHMARK(Geo_WithinDistance_GridIndex)->Arg(20000)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

void Geo_PolygonContains_GridIndex(benchmark::State& state) {
  GeoSetup setup(static_cast<int>(state.range(0)));
  GeoIndex idx = *GeoIndex::Build(*setup.sites, setup.tm.AutoCommitView(), "pos", 0.5);
  // A lightning-bolt shaped sales territory.
  GeoPolygon territory({{5, 45}, {12, 45}, {10, 50}, {15, 50}, {8, 58}, {9, 51}, {4, 51}});
  size_t hits = 0;
  for (auto _ : state) {
    hits = idx.ContainedIn(territory).size();
    benchmark::DoNotOptimize(hits);
  }
  state.counters["hits"] = static_cast<double>(hits);
}
BENCHMARK(Geo_PolygonContains_GridIndex)->Arg(100000)->Unit(benchmark::kMicrosecond);

void Geo_IndexBuild(benchmark::State& state) {
  GeoSetup setup(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto idx = GeoIndex::Build(*setup.sites, setup.tm.AutoCommitView(), "pos", 0.5);
    benchmark::DoNotOptimize(idx->num_points());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(Geo_IndexBuild)->Arg(100000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace poly
