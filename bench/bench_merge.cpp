// E11 (§III): "By knowing the mechanism of how the keys are generated, the
// dictionary maintenance and merging can be done much simpler and more
// efficiently. Incorporating application knowledge, a stable sort order
// without resorting can be achieved."
//
// Rows reproduced:
//   Merge_GeneralResort/<main_rows>   - delta merge with full dictionary
//                                       rebuild + re-encode of all main IDs
//   Merge_GeneratedOrder/<main_rows>  - same merge with the application
//                                       hint: append-only dictionary, no
//                                       re-encode
// Expected shape: general-path cost grows with MAIN size (it rewrites all
// existing IDs); fast path cost depends only on DELTA size.

#include <benchmark/benchmark.h>

#include "storage/column_table.h"
#include "workloads.h"

namespace poly {
namespace {

// Keys generated as "<context> + incremental counter" (the paper's
// example): lexically increasing strings.
std::string GeneratedKey(int64_t counter) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "DOC2026-%010lld", static_cast<long long>(counter));
  return buf;
}

void RunMergeBench(benchmark::State& state, bool hint) {
  int64_t main_rows = state.range(0);
  const int kDeltaRows = 10000;
  uint64_t total_reencoded = 0;
  uint64_t fast_path_merges = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Schema schema;
    ColumnDef key("key", DataType::kString);
    key.generated_key_order = hint;
    schema.AddColumn(key);
    ColumnTable t("t", schema);
    int64_t counter = 0;
    for (int64_t i = 0; i < main_rows; ++i) {
      (void)t.AppendVersion({Value::Str(GeneratedKey(counter++))}, 1);
    }
    t.Merge();  // establish the main store
    for (int i = 0; i < kDeltaRows; ++i) {
      (void)t.AppendVersion({Value::Str(GeneratedKey(counter++))}, 1);
    }
    state.ResumeTiming();

    TableMergeStats stats = t.Merge();
    total_reencoded += stats.ids_reencoded;
    fast_path_merges += stats.columns_fast_path;
    benchmark::DoNotOptimize(stats);
  }
  state.counters["ids_reencoded_per_merge"] =
      static_cast<double>(total_reencoded) / state.iterations();
  state.counters["fast_path"] = fast_path_merges > 0 ? 1 : 0;
  state.SetItemsProcessed(state.iterations() * kDeltaRows);
}

void Merge_GeneralResort(benchmark::State& state) { RunMergeBench(state, false); }
BENCHMARK(Merge_GeneralResort)->Arg(20000)->Arg(100000)->Arg(400000)
    ->Unit(benchmark::kMillisecond);

void Merge_GeneratedOrder(benchmark::State& state) { RunMergeBench(state, true); }
BENCHMARK(Merge_GeneratedOrder)->Arg(20000)->Arg(100000)->Arg(400000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace poly
