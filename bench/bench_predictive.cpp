// E16 (§II-B): "distributed basket analysis and a variety of forecasting
// algorithms" embedded in the engine (supports scenario V-2/V-3).
//
// Rows reproduced:
//   Pred_AprioriItemsets/<txns>  - frequent-itemset mining throughput
//   Pred_AprioriRules/<txns>     - rule derivation
//   Pred_HoltWinters/<points>    - seasonal forecast fit+predict
//   Pred_KMeans/<points>         - clustering (customer segmentation)

#include <benchmark/benchmark.h>

#include <cmath>

#include "engines/predictive/apriori.h"
#include "engines/predictive/forecast.h"
#include "engines/predictive/kmeans.h"
#include "workloads.h"

namespace poly {
namespace {

std::vector<std::vector<int64_t>> MakeBaskets(int n, uint64_t seed) {
  Random rng(seed);
  ZipfGenerator items(200, 0.8, seed + 1);
  std::vector<std::vector<int64_t>> baskets(n);
  for (auto& basket : baskets) {
    int k = 2 + static_cast<int>(rng.Uniform(6));
    for (int i = 0; i < k; ++i) {
      basket.push_back(static_cast<int64_t>(items.Next()));
    }
    // Planted association: item 0 implies item 1 most of the time.
    if (!basket.empty() && basket[0] == 0 && rng.Bernoulli(0.8)) basket.push_back(1);
  }
  return baskets;
}

void Pred_AprioriItemsets(benchmark::State& state) {
  auto baskets = MakeBaskets(static_cast<int>(state.range(0)), 3);
  Apriori ap(0.02, 3);
  size_t found = 0;
  for (auto _ : state) {
    found = ap.FrequentItemsets(baskets).size();
    benchmark::DoNotOptimize(found);
  }
  state.counters["itemsets"] = static_cast<double>(found);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(Pred_AprioriItemsets)->Arg(2000)->Arg(10000)->Unit(benchmark::kMillisecond);

void Pred_AprioriRules(benchmark::State& state) {
  auto baskets = MakeBaskets(static_cast<int>(state.range(0)), 3);
  Apriori ap(0.02, 3);
  size_t rules = 0;
  for (auto _ : state) {
    rules = ap.Rules(baskets, 0.25).size();
    benchmark::DoNotOptimize(rules);
  }
  state.counters["rules"] = static_cast<double>(rules);
}
BENCHMARK(Pred_AprioriRules)->Arg(5000)->Unit(benchmark::kMillisecond);

void Pred_HoltWinters(benchmark::State& state) {
  Random rng(4);
  std::vector<double> series;
  int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    series.push_back(100 + 0.05 * i + 20 * std::sin(i * 2 * M_PI / 24) +
                     rng.NextGaussian());
  }
  for (auto _ : state) {
    auto f = HoltWinters(series, 24, 0.3, 0.05, 0.2, 48);
    benchmark::DoNotOptimize((*f)[0]);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(Pred_HoltWinters)->Arg(10000)->Arg(100000);

void Pred_KMeans(benchmark::State& state) {
  Random rng(6);
  int n = static_cast<int>(state.range(0));
  std::vector<std::vector<double>> points;
  points.reserve(n);
  for (int i = 0; i < n; ++i) {
    int cluster = static_cast<int>(rng.Uniform(5));
    points.push_back({cluster * 10 + rng.NextGaussian(),
                      cluster * 7 + rng.NextGaussian(),
                      rng.NextGaussian()});
  }
  for (auto _ : state) {
    auto result = KMeans(points, 5, 50, 9);
    benchmark::DoNotOptimize(result->inertia);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(Pred_KMeans)->Arg(20000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace poly
