// E2 (§II-A): "the main memory column store is also used for heavy
// transactional load [...] The combination of both workloads in one system
// allows to avoid the expensive replication costs between OLTP and OLAP
// systems and provides access for all analytic questions in real time."
//
// Rows reproduced:
//   HTAP_OltpInsert/{column,row}       - write path on both engines
//   HTAP_OlapQuery/{column,row}        - analytics on both engines
//   HTAP_TwoSystems_WithReplication    - classic row-OLTP + replicate +
//                                        column-OLAP pipeline (the baseline
//                                        the paper retires)
//   HTAP_SingleSystem_Mixed            - same mixed load on one column store
// Expected shape: column OLAP >> row OLAP; single system avoids the
// replication cost entirely and serves fresh data.

#include <benchmark/benchmark.h>

#include "query/executor.h"
#include "types/value_serde.h"
#include "query/optimizer.h"
#include "workloads.h"

namespace poly {
namespace {

PlanPtr RevenueByRegionPlan(const std::string& table) {
  AggSpec cnt{AggFunc::kCount, nullptr, "cnt"};
  AggSpec sum{AggFunc::kSum, Expr::Column(3), "revenue"};
  return PlanBuilder::Scan(table).Aggregate({2}, {cnt, sum}).Build();
}

void HTAP_OltpInsert_Column(benchmark::State& state) {
  Database db;
  TransactionManager tm;
  ColumnTable* t = *db.CreateTable("orders", bench::OrdersSchema());
  Random rng(1);
  ZipfGenerator customers(10000, 0.99, 2);
  int64_t id = 0;
  for (auto _ : state) {
    auto txn = tm.Begin();
    benchmark::DoNotOptimize(tm.Insert(txn.get(), t, bench::MakeOrder(id++, &rng, &customers)));
    (void)tm.Commit(txn.get());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(HTAP_OltpInsert_Column);

void HTAP_OltpInsert_Row(benchmark::State& state) {
  Database db;
  TransactionManager tm;
  RowTable* t = *db.CreateRowTable("orders", bench::OrdersSchema());
  Random rng(1);
  ZipfGenerator customers(10000, 0.99, 2);
  int64_t id = 0;
  for (auto _ : state) {
    auto txn = tm.Begin();
    benchmark::DoNotOptimize(tm.Insert(txn.get(), t, bench::MakeOrder(id++, &rng, &customers)));
    (void)tm.Commit(txn.get());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(HTAP_OltpInsert_Row);

void HTAP_OlapQuery_Column(benchmark::State& state) {
  Database db;
  TransactionManager tm;
  bench::LoadOrders(&db, &tm, "orders", static_cast<int>(state.range(0)));
  PlanPtr plan = RevenueByRegionPlan("orders");
  for (auto _ : state) {
    Executor exec(&db, tm.AutoCommitView());
    auto rs = exec.Execute(plan);
    benchmark::DoNotOptimize(rs->num_rows());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(HTAP_OlapQuery_Column)->Arg(20000)->Arg(100000);

void HTAP_OlapQuery_Row(benchmark::State& state) {
  Database db;
  TransactionManager tm;
  RowTable* t = *db.CreateRowTable("orders", bench::OrdersSchema());
  Random rng(42);
  ZipfGenerator customers(10000, 0.99, 43);
  auto txn = tm.Begin();
  for (int i = 0; i < state.range(0); ++i) {
    (void)tm.Insert(txn.get(), t, bench::MakeOrder(i, &rng, &customers));
  }
  (void)tm.Commit(txn.get());
  // Row-store OLAP baseline: manual scan + group-by over full rows.
  for (auto _ : state) {
    std::unordered_map<std::string, std::pair<int64_t, double>> groups;
    ReadView now = tm.AutoCommitView();
    t->ScanVisible(now, [&](uint64_t r) {
      const Row& row = t->GetRow(r);
      auto& g = groups[row[2].AsString()];
      g.first += 1;
      g.second += row[3].AsDouble();
    });
    benchmark::DoNotOptimize(groups.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(HTAP_OlapQuery_Row)->Arg(20000)->Arg(100000);

// The two-architecture comparison: each "tick" is a batch of 500 inserts
// followed by one analytic query.
void HTAP_TwoSystems_WithReplication(benchmark::State& state) {
  Database db;
  TransactionManager tm;
  RowTable* oltp = *db.CreateRowTable("oltp", bench::OrdersSchema());
  ColumnTable* olap = *db.CreateTable("olap", bench::OrdersSchema());
  Random rng(5);
  ZipfGenerator customers(10000, 0.99, 6);
  int64_t id = 0;
  PlanPtr plan = RevenueByRegionPlan("olap");
  uint64_t replicated_rows = 0;
  for (auto _ : state) {
    // OLTP side.
    auto txn = tm.Begin();
    uint64_t first_new = oltp->num_versions();
    for (int i = 0; i < 500; ++i) {
      (void)tm.Insert(txn.get(), oltp, bench::MakeOrder(id++, &rng, &customers));
    }
    (void)tm.Commit(txn.get());
    // ETL replication to the OLAP system (the cost the paper eliminates).
    // Real replication crosses a process boundary: rows serialize out of
    // the OLTP store and deserialize into the OLAP store.
    auto repl = tm.Begin();
    for (uint64_t r = first_new; r < oltp->num_versions(); ++r) {
      Serializer wire;
      Row row = oltp->GetRow(r);
      wire.PutVarint(row.size());
      for (const Value& v : row) WriteValue(&wire, v);
      Deserializer rd(wire.data());
      uint64_t width = *rd.GetVarint();
      Row decoded;
      decoded.reserve(width);
      for (uint64_t c = 0; c < width; ++c) decoded.push_back(*ReadValue(&rd));
      (void)tm.Insert(repl.get(), olap, decoded);
      ++replicated_rows;
    }
    (void)tm.Commit(repl.get());
    // OLAP side.
    Executor exec(&db, tm.AutoCommitView());
    benchmark::DoNotOptimize(exec.Execute(plan)->num_rows());
  }
  state.counters["replicated_rows"] = static_cast<double>(replicated_rows);
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(HTAP_TwoSystems_WithReplication);

void HTAP_SingleSystem_Mixed(benchmark::State& state) {
  Database db;
  TransactionManager tm;
  ColumnTable* t = *db.CreateTable("orders", bench::OrdersSchema());
  Random rng(5);
  ZipfGenerator customers(10000, 0.99, 6);
  int64_t id = 0;
  PlanPtr plan = RevenueByRegionPlan("orders");
  for (auto _ : state) {
    auto txn = tm.Begin();
    for (int i = 0; i < 500; ++i) {
      (void)tm.Insert(txn.get(), t, bench::MakeOrder(id++, &rng, &customers));
    }
    (void)tm.Commit(txn.get());
    Executor exec(&db, tm.AutoCommitView());
    benchmark::DoNotOptimize(exec.Execute(plan)->num_rows());
  }
  state.counters["replicated_rows"] = 0;  // the point of the architecture
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(HTAP_SingleSystem_Mixed);

// Morsel-driven parallel executor: the same analytic plans, dispatched over
// a thread pool in fixed-size row ranges. Arg is the thread count; Arg(1)
// is the serial baseline, so `benchmark_filter=HTAP_Parallel` prints the
// per-thread-count speedup directly. Results are bit-identical to serial
// (fragments merge in morsel order), so only time should move.
struct ParallelFixture {
  Database db;
  TransactionManager tm;
  ParallelFixture() {
    bench::LoadOrders(&db, &tm, "orders", 1000000);
  }
  static ParallelFixture& Get() {
    static ParallelFixture f;
    return f;
  }
};

void HTAP_ParallelScan(benchmark::State& state) {
  ParallelFixture& f = ParallelFixture::Get();
  ExecOptions opts;
  opts.num_threads = static_cast<size_t>(state.range(0));
  opts.morsel_rows = 65536;
  // region == "east" with a pushed-down predicate: the scan is the work.
  PlanPtr plan = PlanBuilder::Scan("orders")
                     .Filter(Expr::Compare(CmpOp::kEq, Expr::Column(2),
                                           Expr::Literal(Value::Str("east"))))
                     .Build();
  for (auto _ : state) {
    Executor exec(&f.db, f.tm.AutoCommitView(), opts);
    auto rs = exec.Execute(plan);
    benchmark::DoNotOptimize(rs->num_rows());
  }
  state.SetItemsProcessed(state.iterations() * 1000000);
}
BENCHMARK(HTAP_ParallelScan)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void HTAP_ParallelAggregate(benchmark::State& state) {
  ParallelFixture& f = ParallelFixture::Get();
  ExecOptions opts;
  opts.num_threads = static_cast<size_t>(state.range(0));
  opts.morsel_rows = 65536;
  PlanPtr plan = RevenueByRegionPlan("orders");
  for (auto _ : state) {
    Executor exec(&f.db, f.tm.AutoCommitView(), opts);
    auto rs = exec.Execute(plan);
    benchmark::DoNotOptimize(rs->num_rows());
  }
  state.SetItemsProcessed(state.iterations() * 1000000);
}
BENCHMARK(HTAP_ParallelAggregate)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace poly
