// E8 (§II-G, [6]): "no redundant copying from other data sources to
// external libraries is needed" — linear algebra inside the engine vs the
// export-to-R round trip.
//
// Rows reproduced:
//   Sci_PowerIteration_InEngine/<n>   - eigenvalue on the in-database CSR
//   Sci_PowerIteration_External/<n>   - same, but every multiply ships the
//     matrix to the external provider (counters: mb_shipped,
//     modeled_transfer_ms — the copy-out tax at 100 MB/s)
//   Sci_SpMV/<n>                      - raw SpMV throughput
//   Sci_MatrixFromTable/<n>           - building the matrix from the
//     relational triple table

#include <benchmark/benchmark.h>

#include <cmath>

#include "engines/scientific/matrix.h"
#include "workloads.h"

namespace poly {
namespace {

CsrMatrix RandomSymmetric(size_t n, int per_row, uint64_t seed) {
  Random rng(seed);
  std::vector<CsrMatrix::Triplet> triplets;
  for (size_t i = 0; i < n; ++i) {
    triplets.push_back({i, i, 2.0 + rng.NextDouble()});
    for (int k = 0; k < per_row; ++k) {
      size_t j = rng.Uniform(n);
      double v = rng.NextDouble();
      triplets.push_back({i, j, v});
      triplets.push_back({j, i, v});
    }
  }
  return CsrMatrix::FromTriplets(n, n, std::move(triplets));
}

void Sci_PowerIteration_InEngine(benchmark::State& state) {
  CsrMatrix m = RandomSymmetric(state.range(0), 4, 3);
  for (auto _ : state) {
    auto lambda = m.PowerIteration(100, 1e-9);
    benchmark::DoNotOptimize(*lambda);
  }
  state.counters["mb_shipped"] = 0;
  state.counters["modeled_transfer_ms"] = 0;
}
BENCHMARK(Sci_PowerIteration_InEngine)->Arg(2000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void Sci_PowerIteration_External(benchmark::State& state) {
  CsrMatrix m = RandomSymmetric(state.range(0), 4, 3);
  ExternalAnalyticsProvider provider(100e6);  // 100 MB/s DB<->R link
  for (auto _ : state) {
    // The analyst's loop: each iteration is an external call that re-ships
    // the matrix (no state is kept in "R" between calls).
    std::vector<double> v(m.rows(), 1.0);
    for (int it = 0; it < 100; ++it) {
      v = *provider.MultiplyVector(m, v);
      double norm = 0;
      for (double x : v) norm += x * x;
      norm = std::sqrt(norm);
      for (double& x : v) x /= norm;
    }
    benchmark::DoNotOptimize(v[0]);
  }
  state.counters["mb_shipped"] =
      static_cast<double>(provider.bytes_transferred()) / 1e6 / state.iterations();
  state.counters["modeled_transfer_ms"] =
      provider.transfer_seconds() * 1e3 / state.iterations();
}
BENCHMARK(Sci_PowerIteration_External)->Arg(2000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void Sci_SpMV(benchmark::State& state) {
  CsrMatrix m = RandomSymmetric(state.range(0), 4, 3);
  std::vector<double> x(m.cols(), 1.0);
  for (auto _ : state) {
    auto y = m.MultiplyVector(x);
    benchmark::DoNotOptimize((*y)[0]);
  }
  state.SetItemsProcessed(state.iterations() * m.nnz());
}
BENCHMARK(Sci_SpMV)->Arg(10000)->Arg(50000);

void Sci_MatrixFromTable(benchmark::State& state) {
  Database db;
  TransactionManager tm;
  size_t n = state.range(0);
  ColumnTable* t = *db.CreateTable(
      "m", Schema({ColumnDef("r", DataType::kInt64), ColumnDef("c", DataType::kInt64),
                   ColumnDef("v", DataType::kDouble)}));
  Random rng(5);
  auto txn = tm.Begin();
  for (size_t i = 0; i < n; ++i) {
    for (int k = 0; k < 4; ++k) {
      (void)tm.Insert(txn.get(), t,
                      {Value::Int(static_cast<int64_t>(i)),
                       Value::Int(static_cast<int64_t>(rng.Uniform(n))),
                       Value::Dbl(rng.NextDouble())});
    }
  }
  (void)tm.Commit(txn.get());
  t->Merge();
  for (auto _ : state) {
    auto m = CsrMatrix::FromTable(*t, tm.AutoCommitView(), "r", "c", "v");
    benchmark::DoNotOptimize(m->nnz());
  }
  state.SetItemsProcessed(state.iterations() * n * 4);
}
BENCHMARK(Sci_MatrixFromTable)->Arg(10000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace poly
