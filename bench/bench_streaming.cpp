// Figure 4's "HANA Streaming Engine (ESP)" box and Figure 1's streaming
// ingestion edge: high-throughput event streams are windowed/filtered on
// the way into the in-memory store.
//
// Rows reproduced:
//   Stream_WindowedAggregation/<keys> - events/s through a grouped
//     tumbling-window pipeline (counter: windows_emitted)
//   Stream_FilteredIngestToTable      - filter + land in the column store
//   Stream_RawIngestToTable           - no filter baseline (ingest cost)

#include <benchmark/benchmark.h>

#include "streaming/streaming.h"
#include "workloads.h"

namespace poly {
namespace {

void Stream_WindowedAggregation(benchmark::State& state) {
  int keys = static_cast<int>(state.range(0));
  Random rng(9);
  // Pre-generate one second of events at 1 kHz per key.
  std::vector<StreamEvent> events;
  const int kEvents = 100000;
  events.reserve(kEvents);
  for (int i = 0; i < kEvents; ++i) {
    events.push_back({static_cast<int64_t>(i) * 10,
                      {Value::Int(static_cast<int64_t>(rng.Uniform(keys))),
                       Value::Dbl(rng.NextDouble())}});
  }
  uint64_t windows_emitted = 0;
  for (auto _ : state) {
    uint64_t emitted = 0;
    StreamPipeline pipeline;
    pipeline.Window(std::make_unique<TumblingWindow>(100000, 1, 0),
                    [&](const WindowResult&) { ++emitted; });
    pipeline.PushBatch(events);
    pipeline.Finish();
    windows_emitted = emitted;
    benchmark::DoNotOptimize(emitted);
  }
  state.counters["windows_emitted"] = static_cast<double>(windows_emitted);
  state.SetItemsProcessed(state.iterations() * kEvents);
}
BENCHMARK(Stream_WindowedAggregation)->Arg(1)->Arg(100)->Unit(benchmark::kMillisecond);

void IngestBench(benchmark::State& state, bool with_filter) {
  Random rng(9);
  std::vector<StreamEvent> events;
  const int kEvents = 20000;
  for (int i = 0; i < kEvents; ++i) {
    events.push_back({static_cast<int64_t>(i) * 10,
                      {Value::Int(static_cast<int64_t>(rng.Uniform(100))),
                       Value::Dbl(rng.NextDouble())}});
  }
  int round = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Database db;
    TransactionManager tm;
    ColumnTable* t = *db.CreateTable(
        "readings_" + std::to_string(round++),
        Schema({ColumnDef("ts", DataType::kTimestamp),
                ColumnDef("sensor", DataType::kInt64),
                ColumnDef("value", DataType::kDouble)}));
    TableStreamSink sink(&tm, t);
    StreamPipeline pipeline;
    if (with_filter) {
      pipeline.Filter(
          [](const StreamEvent& e) { return e.values[0].AsInt() < 10; });
    }
    pipeline.Sink(sink.AsSink());
    state.ResumeTiming();

    pipeline.PushBatch(events);
    benchmark::DoNotOptimize(sink.rows_written());
  }
  state.SetItemsProcessed(state.iterations() * kEvents);
}

void Stream_FilteredIngestToTable(benchmark::State& state) { IngestBench(state, true); }
BENCHMARK(Stream_FilteredIngestToTable)->Unit(benchmark::kMillisecond);

void Stream_RawIngestToTable(benchmark::State& state) { IngestBench(state, false); }
BENCHMARK(Stream_RawIngestToTable)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace poly
