#ifndef POLY_BENCH_WORKLOADS_H_
#define POLY_BENCH_WORKLOADS_H_

// Shared synthetic workload generators for the experiment benches (E1-E17).
// The paper evaluates on proprietary enterprise data; these generators are
// the documented substitution (DESIGN.md §6): Zipf-skewed order data,
// drifting sensor walks, and a small document corpus exercising the same
// skew/sparsity/selectivity code paths.

#include <string>
#include <vector>

#include "common/random.h"
#include "storage/database.h"
#include "txn/transaction_manager.h"

namespace poly {
namespace bench {

inline Schema OrdersSchema() {
  return Schema({ColumnDef("o_id", DataType::kInt64),
                 ColumnDef("customer", DataType::kInt64),
                 ColumnDef("region", DataType::kString),
                 ColumnDef("amount", DataType::kDouble),
                 ColumnDef("qty", DataType::kInt64),
                 ColumnDef("year", DataType::kInt64)});
}

inline Row MakeOrder(int64_t id, Random* rng, ZipfGenerator* customers) {
  static const char* kRegions[] = {"north", "south", "east", "west",
                                   "center", "overseas"};
  return {Value::Int(id),
          Value::Int(static_cast<int64_t>(customers->Next())),
          Value::Str(kRegions[rng->Uniform(6)]),
          Value::Dbl(1.0 + rng->NextDouble() * 999.0),
          Value::Int(static_cast<int64_t>(1 + rng->Uniform(50))),
          Value::Int(static_cast<int64_t>(2020 + rng->Uniform(7)))};
}

/// Bulk-loads `n` orders into a fresh column table and merges it.
inline ColumnTable* LoadOrders(Database* db, TransactionManager* tm,
                               const std::string& name, int n, uint64_t seed = 42,
                               bool merge = true) {
  ColumnTable* t = *db->CreateTable(name, OrdersSchema());
  Random rng(seed);
  ZipfGenerator customers(10000, 0.99, seed + 1);
  auto txn = tm->Begin();
  for (int i = 0; i < n; ++i) {
    (void)tm->Insert(txn.get(), t, MakeOrder(i, &rng, &customers));
  }
  (void)tm->Commit(txn.get());
  if (merge) t->Merge();
  return t;
}

/// Sensor random walk: `points` readings at fixed cadence.
inline std::vector<std::pair<int64_t, double>> SensorWalk(int points, uint64_t seed,
                                                          double step_prob = 0.05) {
  Random rng(seed);
  std::vector<std::pair<int64_t, double>> out;
  out.reserve(points);
  double v = 20.0;
  for (int i = 0; i < points; ++i) {
    if (rng.Bernoulli(step_prob)) v += rng.NextGaussian() * 0.5;
    out.emplace_back(1000000LL * i, v);
  }
  return out;
}

/// Small deterministic document corpus (IoT maintenance notes style).
inline std::vector<std::string> DocumentCorpus(int n, uint64_t seed) {
  static const char* kSubjects[] = {"pump", "valve", "dispenser", "sensor", "pipeline"};
  static const char* kVerbs[] = {"failed", "repaired", "inspected", "replaced",
                                 "calibrated"};
  static const char* kPlaces[] = {"hall", "station", "plant", "depot"};
  Random rng(seed);
  std::vector<std::string> docs;
  docs.reserve(n);
  for (int i = 0; i < n; ++i) {
    std::string doc;
    int sentences = 3 + static_cast<int>(rng.Uniform(5));
    for (int s = 0; s < sentences; ++s) {
      doc += std::string("the ") + kSubjects[rng.Uniform(5)] + " was " +
             kVerbs[rng.Uniform(5)] + " at " + kPlaces[rng.Uniform(4)] + " " +
             std::to_string(rng.Uniform(20)) + ". ";
    }
    docs.push_back(std::move(doc));
  }
  return docs;
}

}  // namespace bench
}  // namespace poly

#endif  // POLY_BENCH_WORKLOADS_H_
