// E25: workload management under over-subscription (DESIGN.md §13) — the
// same mixed OLTP + OLAP workload with and without the resource governor,
// plus the cost of a pressure-driven spill cycle.
//
// Rows reproduced:
//   Resource_PointReadNoGovernor / Resource_PointReadGoverned - the
//     per-statement cost of admission: one ticket (slot + per-query budget
//     node) minted and released around a single-row point read. The delta
//     between the rows is the whole foreground price of the governor on the
//     OLTP path.
//   Resource_MixedUngoverned - two OLAP threads loop a full-scan group-by
//     against the timed OLTP loop (200 point reads per iteration) on one
//     Database with no governor. A metering-only budget node records
//     materialized bytes; peak_mb is the budget's exact high-water mark
//     of concurrent query materialization — the memory an unprotected
//     system must absorb (both scans in flight at once), i.e. the OOM
//     exposure.
//   Resource_MixedGoverned - identical workload routed through
//     Database::Execute workload classes: oltp (8 slots) vs olap (1 slot,
//     1 queue entry, 2 ms queue deadline). The second concurrent scan
//     queues briefly and then fails fast with ResourceExhausted
//     (olap_rejected) instead of piling on memory, so peak_mb drops to
//     one scan's footprint while olap_ok keeps flowing and the OLTP
//     iteration time stays in the ungoverned row's band. (Tables load
//     before the governor attaches, so both mixed rows meter query
//     materialization only, not resident table bytes.)
//   Resource_PressureSpillCycle - the timed region is one broker pass over
//     a store sitting at 100% of its budget: 12 bound partitions, high
//     water 0.6 / low water 0.4, TieringDaemon::SpillForPressure as the
//     spill target. The pass demotes coldest-first into the DFS cold tier
//     until usage is below LOW water (cold_demotes, spilled_mb); the two
//     heated partitions always survive.
//
// Expected shape: the governed point read pays a small constant admission
// fee (a mutex + two budget-node hops); the mixed rows show peak_mb halved
// under the governor (one scan in flight instead of two) with
// olap_rejected > 0 and OLTP time unchanged; the spill cycle frees >half
// its budget in single-digit milliseconds.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "aging/extended_storage.h"
#include "hadoop/dfs.h"
#include "hadoop/dfs_tier_store.h"
#include "query/executor.h"
#include "resource/governor.h"
#include "tiering/daemon.h"
#include "workloads.h"

namespace poly {
namespace {

using resource::AdmissionController;
using resource::ResourceGovernor;

constexpr int kBigRows = 40000;    // OLAP scan target
constexpr int kPointRows = 4096;   // OLTP point-read target
constexpr int kOltpPerIter = 200;  // timed point reads per iteration

// Scan + group-by, never compiled (the SQL Project wrapper): the scan's
// ~3 MB materialization charge is held for the whole aggregation, which is
// the window both the peak sampler and a real OOM see.
constexpr const char* kOlapQuery =
    "SELECT region, SUM(amount) AS revenue FROM big GROUP BY region";

void LoadTables(Database* db, TransactionManager* tm) {
  bench::LoadOrders(db, tm, "big", kBigRows, /*seed=*/7);
  bench::LoadOrders(db, tm, "kv", kPointRows, /*seed=*/11);
}

std::string PointRead(int i) {
  return "SELECT amount FROM kv WHERE o_id = " + std::to_string(i % kPointRows);
}

/// Baseline: Database::Execute with no governor attached — the admission
/// branch is a single null check.
void Resource_PointReadNoGovernor(benchmark::State& state) {
  Database db;
  TransactionManager tm;
  LoadTables(&db, &tm);
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.Execute(PointRead(i++))->num_rows());
  }
}
BENCHMARK(Resource_PointReadNoGovernor)->Unit(benchmark::kMicrosecond);

/// Same statement through a fully configured governor (default classes,
/// 256 MB budget): every query mints and releases an AdmissionTicket and
/// charges its materializations against the per-query budget node.
void Resource_PointReadGoverned(benchmark::State& state) {
  metrics::Registry reg;
  ResourceGovernor::Options gopts;
  gopts.budget.total_limit_bytes = 256ull << 20;
  ResourceGovernor gov(gopts, &reg);
  Database db;
  db.set_metrics_registry(&reg);
  db.set_resource_governor(&gov);
  TransactionManager tm;
  LoadTables(&db, &tm);
  ExecOptions opts;
  opts.workload_class = "oltp";
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.Execute(PointRead(i++), opts)->num_rows());
  }
  db.set_resource_governor(nullptr);
}
BENCHMARK(Resource_PointReadGoverned)->Unit(benchmark::kMicrosecond);

/// Shared tallies for the two mixed rows: 2 OLAP threads loop scan+group-by
/// queries while the timed loop runs kOltpPerIter point reads. Peak memory
/// comes from the budget's own exact high-water mark (BudgetNode::peak),
/// not from sampling.
struct MixedCounters {
  std::atomic<uint64_t> olap_ok{0};
  std::atomic<uint64_t> olap_rejected{0};
  std::atomic<bool> stop{false};
};

void Resource_MixedUngoverned(benchmark::State& state) {
  metrics::Registry reg;
  resource::MemoryBudget meter({/*total_limit_bytes=*/0}, &reg);
  resource::BudgetNode* node = meter.GetOrCreateClass("meter", 0);
  Database db;
  TransactionManager tm;
  LoadTables(&db, &tm);

  MixedCounters c;
  ExecOptions metered;
  metered.budget = node;
  std::vector<std::thread> background;
  for (int t = 0; t < 2; ++t) {
    background.emplace_back([&] {
      while (!c.stop.load(std::memory_order_relaxed)) {
        auto rs = db.Execute(kOlapQuery, metered);
        if (rs.ok()) c.olap_ok.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    });
  }

  int i = 0;
  for (auto _ : state) {
    for (int q = 0; q < kOltpPerIter; ++q) {
      benchmark::DoNotOptimize(db.Execute(PointRead(i++), metered)->num_rows());
    }
  }
  c.stop.store(true);
  for (auto& t : background) t.join();
  state.counters["peak_mb"] = static_cast<double>(meter.peak_bytes()) / 1e6;
  state.counters["olap_ok"] = static_cast<double>(c.olap_ok.load());
  state.counters["olap_rejected"] = 0;
}
BENCHMARK(Resource_MixedUngoverned)->Unit(benchmark::kMillisecond);

void Resource_MixedGoverned(benchmark::State& state) {
  metrics::Registry reg;
  ResourceGovernor::Options gopts;
  gopts.budget.total_limit_bytes = 64ull << 20;
  gopts.budget.high_water = 0.95;  // admission bounds memory; no broker here
  AdmissionController::ClassOptions oltp;
  oltp.max_concurrent = 8;
  oltp.queue_timeout = std::chrono::milliseconds(100);
  AdmissionController::ClassOptions olap;
  olap.max_concurrent = 1;  // one scan materializes at a time
  olap.max_queued = 1;
  olap.queue_timeout = std::chrono::milliseconds(2);
  gopts.classes = {{"oltp", oltp}, {"olap", olap}};
  gopts.default_class = "oltp";
  ResourceGovernor gov(gopts, &reg);
  Database db;
  db.set_metrics_registry(&reg);
  TransactionManager tm;
  LoadTables(&db, &tm);
  // Attach the governor only after loading: tables created under a governor
  // bind to its storage node, and this row meters *query* materialization —
  // the same thing the ungoverned meter node sees — not resident data
  // (that's E24's and the spill row's subject).
  db.set_resource_governor(&gov);

  MixedCounters c;
  ExecOptions oltp_opts;
  oltp_opts.workload_class = "oltp";
  ExecOptions olap_opts;
  olap_opts.workload_class = "olap";
  std::vector<std::thread> background;
  for (int t = 0; t < 2; ++t) {
    background.emplace_back([&] {
      while (!c.stop.load(std::memory_order_relaxed)) {
        auto rs = db.Execute(kOlapQuery, olap_opts);
        if (rs.ok()) {
          c.olap_ok.fetch_add(1);
        } else if (rs.status().IsResourceExhausted()) {
          c.olap_rejected.fetch_add(1);
        }
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    });
  }

  int i = 0;
  for (auto _ : state) {
    for (int q = 0; q < kOltpPerIter; ++q) {
      benchmark::DoNotOptimize(db.Execute(PointRead(i++), oltp_opts)->num_rows());
    }
  }
  c.stop.store(true);
  for (auto& t : background) t.join();
  state.counters["peak_mb"] =
      static_cast<double>(gov.budget().peak_bytes()) / 1e6;
  state.counters["olap_ok"] = static_cast<double>(c.olap_ok.load());
  state.counters["olap_rejected"] = static_cast<double>(c.olap_rejected.load());
  db.set_resource_governor(nullptr);
}
BENCHMARK(Resource_MixedGoverned)->Unit(benchmark::kMillisecond);

/// One full pressure pass, timed in isolation: a store at 100% of its
/// budget must drain below LOW water (0.4) by demoting coldest-first into
/// the DFS cold tier. Setup and teardown run with the timer paused.
void Resource_PressureSpillCycle(benchmark::State& state) {
  constexpr int kPartitions = 12;
  constexpr int kRowsPerPartition = 2000;
  uint64_t cold_demotes = 0, spilled_bytes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    {
      metrics::Registry reg;
      Database db;
      db.set_metrics_registry(&reg);
      TransactionManager tm;
      for (int p = 0; p < kPartitions; ++p) {
        bench::LoadOrders(&db, &tm, "part" + std::to_string(p),
                          kRowsPerPartition, /*seed=*/100 + p);
      }
      uint64_t per_partition = (*db.GetTable("part0"))->MemoryBytes();

      ResourceGovernor::Options gopts;
      gopts.budget.total_limit_bytes = per_partition * kPartitions;
      gopts.budget.high_water = 0.6;
      gopts.budget.low_water = 0.4;
      gopts.pressure.min_spill_bytes = 64 * 1024;
      ResourceGovernor gov(gopts, &reg);
      for (int p = 0; p < kPartitions; ++p) {
        (*db.GetTable("part" + std::to_string(p)))
            ->BindMemoryBudget(gov.storage_node());
      }

      ExtendedStorage warm;
      SimulatedDfs dfs;
      DfsTierStore cold(&dfs);
      tiering::TieringDaemon daemon(&db, &warm, &cold, {});
      for (int p = 0; p < kPartitions; ++p) {
        daemon.Manage("part" + std::to_string(p));
      }
      // Heat two partitions so the pass has a coldest-first order to respect.
      Executor exec(&db, tm.AutoCommitView());
      for (int i = 0; i < 8; ++i) {
        benchmark::DoNotOptimize(exec.Execute(PlanBuilder::Scan("part0").Build()));
        benchmark::DoNotOptimize(exec.Execute(PlanBuilder::Scan("part1").Build()));
      }
      daemon.heat().AdvanceEpoch();
      daemon.BindPressureBroker(&gov.pressure());

      state.ResumeTiming();
      uint64_t freed = gov.pressure().RunOnce();
      state.PauseTiming();

      spilled_bytes += freed;
      cold_demotes += reg.counter("tier.daemon.cold_demotes")->Value();
      // Bound tables must be dropped before the governor goes away.
      for (int p = 0; p < kPartitions; ++p) {
        (void)db.DropTable("part" + std::to_string(p));
      }
    }
    state.ResumeTiming();
  }
  state.counters["cold_demotes"] =
      static_cast<double>(cold_demotes) / state.iterations();
  state.counters["spilled_mb"] =
      static_cast<double>(spilled_bytes) / 1e6 / state.iterations();
}
BENCHMARK(Resource_PressureSpillCycle)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace poly
