// E13 (§IV-A, [11][12]): "during runtime the engine compiles the SQL
// statement into C code and translates it into an executable binary format
// [...] there are significant performance advantages with this approach."
//
// Rows reproduced (TPC-H-shaped, per DESIGN.md the compiler substitution is
// plan-time specialized fused kernels):
//   Compiled_Q6like_{Interpreted,Compiled}/<rows>  - selective scan+sum
//   Compiled_Q1like_{Interpreted,Compiled}/<rows>  - group-by aggregation
// Expected shape: compiled wins by a large factor, growing with row count.

#include <benchmark/benchmark.h>

#include "query/compiled.h"
#include "query/executor.h"
#include "query/optimizer.h"
#include "workloads.h"

namespace poly {
namespace {

PlanPtr Q6Like() {
  // SELECT SUM(amount * qty) WHERE qty < 25 AND year >= 2023
  AggSpec revenue{AggFunc::kSum,
                  Expr::Arith(ArithOp::kMul, Expr::Column(3), Expr::Column(4)),
                  "revenue"};
  auto plan =
      PlanBuilder::Scan("orders")
          .Filter(Expr::And(
              Expr::Compare(CmpOp::kLt, Expr::Column(4), Expr::Literal(Value::Int(25))),
              Expr::Compare(CmpOp::kGe, Expr::Column(5),
                            Expr::Literal(Value::Int(2023)))))
          .Aggregate({}, {revenue})
          .Build();
  Optimizer opt;
  return opt.Optimize(plan);
}

PlanPtr Q1Like() {
  // SELECT customer%..., actually: group by qty (50 groups), several aggs.
  AggSpec cnt{AggFunc::kCount, nullptr, "cnt"};
  AggSpec sum{AggFunc::kSum, Expr::Column(3), "sum_amount"};
  AggSpec avg{AggFunc::kAvg, Expr::Column(3), "avg_amount"};
  AggSpec mx{AggFunc::kMax, Expr::Column(3), "max_amount"};
  return PlanBuilder::Scan("orders").Aggregate({4}, {cnt, sum, avg, mx}).Build();
}

struct CompiledFixture : benchmark::Fixture {
  void SetUp(const benchmark::State& state) override {
    db = std::make_unique<Database>();
    tm = std::make_unique<TransactionManager>();
    bench::LoadOrders(db.get(), tm.get(), "orders", static_cast<int>(state.range(0)));
  }
  void TearDown(const benchmark::State&) override {
    db.reset();
    tm.reset();
  }
  std::unique_ptr<Database> db;
  std::unique_ptr<TransactionManager> tm;
};

BENCHMARK_DEFINE_F(CompiledFixture, Q6like_Interpreted)(benchmark::State& state) {
  PlanPtr plan = Q6Like();
  for (auto _ : state) {
    Executor exec(db.get(), tm->AutoCommitView());
    benchmark::DoNotOptimize(exec.Execute(plan)->rows[0][0].NumericValue());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK_REGISTER_F(CompiledFixture, Q6like_Interpreted)->Arg(50000)->Arg(200000);

BENCHMARK_DEFINE_F(CompiledFixture, Q6like_Compiled)(benchmark::State& state) {
  PlanPtr plan = Q6Like();
  QueryCompiler qc(db.get(), tm->AutoCommitView());
  if (!qc.CanCompile(plan)) {
    state.SkipWithError("plan not compilable");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(qc.Execute(plan)->rows[0][0].NumericValue());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK_REGISTER_F(CompiledFixture, Q6like_Compiled)->Arg(50000)->Arg(200000);

BENCHMARK_DEFINE_F(CompiledFixture, Q1like_Interpreted)(benchmark::State& state) {
  PlanPtr plan = Q1Like();
  for (auto _ : state) {
    Executor exec(db.get(), tm->AutoCommitView());
    benchmark::DoNotOptimize(exec.Execute(plan)->num_rows());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK_REGISTER_F(CompiledFixture, Q1like_Interpreted)->Arg(50000)->Arg(200000);

BENCHMARK_DEFINE_F(CompiledFixture, Q1like_Compiled)(benchmark::State& state) {
  PlanPtr plan = Q1Like();
  QueryCompiler qc(db.get(), tm->AutoCommitView());
  if (!qc.CanCompile(plan)) {
    state.SkipWithError("plan not compilable");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(qc.Execute(plan)->num_rows());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK_REGISTER_F(CompiledFixture, Q1like_Compiled)->Arg(50000)->Arg(200000);

}  // namespace
}  // namespace poly
