// E12 (§III): "By letting the application define the aging rules [...] the
// aging mechanism acquires a semantic meaning which allows for much better
// partition pruning than any approach purely based on access statistics."
//
// Setup reproduces the paper's orders/invoices story: most old orders are
// closed and aged, but a handful of old OPEN orders stay hot. Statistics
// then see overlapping year ranges in both partitions; the semantic rule
// still knows aged rows are all closed and old.
//
// Rows reproduced (query: "open orders of the current year"):
//   Aging_NoPruning        - scans hot + aged
//   Aging_StatsPruning     - min/max statistics pruner
//   Aging_SemanticPruning  - rule-based pruner
// Counters: partitions_scanned, rows_scanned.

#include <benchmark/benchmark.h>

#include "aging/aging.h"
#include "query/executor.h"
#include "workloads.h"

namespace poly {
namespace {

struct AgingSetup {
  Database db;
  TransactionManager tm;
  AgingManager aging{&db, &tm};
  StatsPruner stats{&db, &tm};

  explicit AgingSetup(int rows) {
    ColumnTable* orders = *db.CreateTable(
        "orders", Schema({ColumnDef("id", DataType::kInt64),
                          ColumnDef("year", DataType::kInt64),
                          ColumnDef("open", DataType::kBool)}));
    Random rng(17);
    auto txn = tm.Begin();
    for (int i = 0; i < rows; ++i) {
      // 80% old orders; old orders are open with 1% probability (the
      // stragglers that poison the statistics).
      bool old = rng.Bernoulli(0.8);
      int64_t year = old ? 2020 + static_cast<int64_t>(rng.Uniform(6)) : 2026;
      bool open = old ? rng.Bernoulli(0.01) : rng.Bernoulli(0.5);
      (void)tm.Insert(txn.get(), orders,
                      {Value::Int(i), Value::Int(year), Value::Boolean(open)});
    }
    (void)tm.Commit(txn.get());

    AgingRule rule;
    rule.name = "orders_rule";
    rule.table = "orders";
    rule.predicate = Expr::And(
        Expr::Compare(CmpOp::kLt, Expr::Column(1), Expr::Literal(Value::Int(2026))),
        Expr::Compare(CmpOp::kEq, Expr::Column(2), Expr::Literal(Value::Boolean(false))));
    // The semantic guarantee the application can make and statistics cannot
    // derive: every aged order is CLOSED.
    rule.guarantee = {"open", CmpOp::kEq, Value::Boolean(false)};
    (void)aging.AddRule(rule);
    (void)aging.RunAging();
    (*db.GetTable("orders"))->Merge();
    (*db.GetTable("orders$aged"))->Merge();
    (void)stats.Analyze("orders", {"orders", "orders$aged"}, "year");
  }

  PlanPtr Query() {
    // "All open orders since 2020" — the year range overlaps BOTH
    // partitions (old open stragglers stay hot), so min/max statistics on
    // year cannot prune; only the semantic rule knows aged rows are closed.
    return PlanBuilder::Scan("orders")
        .Filter(Expr::And(
            Expr::Compare(CmpOp::kGe, Expr::Column(1), Expr::Literal(Value::Int(2020))),
            Expr::Compare(CmpOp::kEq, Expr::Column(2),
                          Expr::Literal(Value::Boolean(true)))))
        .Build();
  }
};

void RunWithPruner(benchmark::State& state, AgingSetup* setup,
                   const PartitionPruner* pruner, bool scan_all) {
  Optimizer opt(pruner);
  PlanPtr plan = opt.Optimize(setup->Query());
  if (scan_all && plan->kind == PlanKind::kScan && plan->scan_partitions.empty()) {
    plan->scan_partitions = {"orders", "orders$aged"};  // no-pruning baseline
  }
  uint64_t partitions = 0, rows_scanned = 0, result_rows = 0;
  for (auto _ : state) {
    Executor exec(&setup->db, setup->tm.AutoCommitView());
    auto rs = exec.Execute(plan);
    result_rows = rs->num_rows();
    partitions = exec.stats().partitions_scanned;
    rows_scanned = exec.stats().rows_scanned;
    benchmark::DoNotOptimize(result_rows);
  }
  state.counters["partitions_scanned"] = static_cast<double>(partitions);
  state.counters["rows_scanned"] = static_cast<double>(rows_scanned);
  state.counters["result_rows"] = static_cast<double>(result_rows);
}

AgingSetup* SharedSetup(int rows) {
  // One shared setup per process: construction (load + age + merge) is
  // expensive and identical across the three benchmarks.
  static AgingSetup* setup = new AgingSetup(rows);
  return setup;
}

void Aging_NoPruning(benchmark::State& state) {
  RunWithPruner(state, SharedSetup(static_cast<int>(state.range(0))), nullptr,
                /*scan_all=*/true);
}
BENCHMARK(Aging_NoPruning)->Arg(100000)->Unit(benchmark::kMillisecond);

void Aging_StatsPruning(benchmark::State& state) {
  AgingSetup* setup = SharedSetup(static_cast<int>(state.range(0)));
  RunWithPruner(state, setup, &setup->stats, false);
}
BENCHMARK(Aging_StatsPruning)->Arg(100000)->Unit(benchmark::kMillisecond);

void Aging_SemanticPruning(benchmark::State& state) {
  AgingSetup* setup = SharedSetup(static_cast<int>(state.range(0)));
  RunWithPruner(state, setup, &setup->aging, false);
}
BENCHMARK(Aging_SemanticPruning)->Arg(100000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace poly
