// E7 (§II-F): time-series "provide large compression factors [and]
// functionality like resolution adoption, comparison functions,
// correlation, transformations".
//
// Rows reproduced:
//   Ts_CompressionRatio/<step_pct>  - Gorilla codec vs raw 16 B/point on
//     sensor walks of varying volatility (counter: compression_ratio)
//   Ts_Compress / Ts_Decompress     - codec throughput
//   Ts_Resample                     - resolution adoption throughput
//   Ts_Correlation                  - correlation of two 1M-point series

#include <benchmark/benchmark.h>

#include "engines/timeseries/ts_codec.h"
#include "engines/timeseries/ts_ops.h"
#include "workloads.h"

namespace poly {
namespace {

TimeSeries MakeWalk(int points, double step_prob, uint64_t seed) {
  TimeSeries ts;
  for (auto [t, v] : bench::SensorWalk(points, seed, step_prob)) ts.Append(t, v);
  return ts;
}

void Ts_CompressionRatio(benchmark::State& state) {
  double step_prob = static_cast<double>(state.range(0)) / 100.0;
  TimeSeries ts = MakeWalk(100000, step_prob, 13);
  double ratio = 0;
  for (auto _ : state) {
    CompressedSeries c = CompressedSeries::FromSeries(ts);
    ratio = c.CompressionRatio();
    benchmark::DoNotOptimize(ratio);
  }
  state.counters["compression_ratio"] = ratio;
  state.counters["bytes_per_point"] = 16.0 / ratio;
}
BENCHMARK(Ts_CompressionRatio)->Arg(0)->Arg(5)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);

void Ts_Compress(benchmark::State& state) {
  TimeSeries ts = MakeWalk(static_cast<int>(state.range(0)), 0.05, 13);
  for (auto _ : state) {
    CompressedSeries c = CompressedSeries::FromSeries(ts);
    benchmark::DoNotOptimize(c.SizeBytes());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(Ts_Compress)->Arg(100000)->Unit(benchmark::kMillisecond);

void Ts_Decompress(benchmark::State& state) {
  TimeSeries ts = MakeWalk(static_cast<int>(state.range(0)), 0.05, 13);
  CompressedSeries c = CompressedSeries::FromSeries(ts);
  for (auto _ : state) {
    auto out = c.Decompress();
    benchmark::DoNotOptimize(out->size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(Ts_Decompress)->Arg(100000)->Unit(benchmark::kMillisecond);

void Ts_Resample(benchmark::State& state) {
  TimeSeries ts = MakeWalk(static_cast<int>(state.range(0)), 0.05, 13);
  for (auto _ : state) {
    TimeSeries hourly = Resample(ts, 3600LL * 1000000, ResampleAgg::kMean);
    benchmark::DoNotOptimize(hourly.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(Ts_Resample)->Arg(1000000)->Unit(benchmark::kMillisecond);

void Ts_Correlation(benchmark::State& state) {
  TimeSeries a = MakeWalk(static_cast<int>(state.range(0)), 0.05, 13);
  TimeSeries b = MakeWalk(static_cast<int>(state.range(0)), 0.05, 14);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Correlation(a, b, 60LL * 1000000));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(Ts_Correlation)->Arg(1000000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace poly
