// E22: workload-driven adaptive tiering (the daemon closing Fig. 1's loop)
// vs static rule-based placement, under a seeded Zipf workload over 16
// partition tables whose access skew does NOT line up with their age.
//
// Rows reproduced:
//   Adaptive_StaticRules   - age-based placement fixed up front (the older
//     half lives in warm storage). Every query to a warm partition pays a
//     promote+demote round trip (counter modeled_storage_ms); hot_hit_rate
//     is the fraction of queries that found their partition resident.
//   Adaptive_Daemon        - same initial placement, but the TieringDaemon
//     observes the queries and runs an epoch every 200 of them: hot
//     partitions promoted (and kept), cold ones demoted. Hit rate climbs to
//     ~the Zipf head mass and modeled storage time collapses after the
//     first epochs. moved_mb meters the migration traffic.
//   Tiering_ScanNoTracker / Tiering_ScanWithTracker - foreground scan cost
//     without and with the access-heat observer attached (the <3% overhead
//     budget of DESIGN.md §11: one virtual call + a few relaxed atomic adds
//     per (query, partition)).
//
// Expected shape: the daemon beats static rules by a wide margin on
// hot_hit_rate (it places by observed heat, the static rule by age) at the
// cost of bounded early migration traffic; the two Tiering_Scan* rows are
// within noise of each other.
//
// E24 adds the third band (DFS cold tier, DESIGN.md §11.4):
//   Adaptive_ThreeBand_TwoBandBaseline - the same Zipf workload on a daemon
//     WITHOUT a cold store: the idle tail piles up in warm storage forever.
//   Adaptive_ThreeBand_Daemon          - cold store attached: the tail sinks
//     on to DFS (cold_demotes), rare tail queries demand-page back
//     (cold_reads), and the budget prices those moves by the DFS cost model.
// Expected shape: hot_hit_rate within noise of the two-band baseline (the
// Zipf head never leaves memory, so the cold band must not cost hits) and
// hot_mb identical, while warm_mb collapses toward zero as the tail drains
// to cold_mb.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "aging/extended_storage.h"
#include "common/random.h"
#include "hadoop/dfs.h"
#include "hadoop/dfs_tier_store.h"
#include "query/executor.h"
#include "tiering/daemon.h"
#include "workloads.h"

namespace poly {
namespace {

constexpr int kPartitions = 16;
constexpr int kRowsPerPartition = 2000;
constexpr int kQueriesPerBatch = 2000;
constexpr int kEpochEvery = 200;  // daemon cadence, in queries

std::string PartName(int p) {
  return "orders_p" + std::string(p < 10 ? "0" : "") + std::to_string(p);
}

void LoadPartitions(Database* db, TransactionManager* tm) {
  for (int p = 0; p < kPartitions; ++p) {
    bench::LoadOrders(db, tm, PartName(p), kRowsPerPartition,
                      /*seed=*/100 + p);
  }
}

/// Rank -> partition mapping that decorrelates Zipf hotness from partition
/// age (a fixed Fisher-Yates shuffle): rank 0's traffic lands on an "old"
/// partition the static rule keeps in warm storage.
std::vector<int> RankToPartition() {
  std::vector<int> perm(kPartitions);
  for (int i = 0; i < kPartitions; ++i) perm[i] = i;
  Random rng(1234);
  for (int i = kPartitions - 1; i > 0; --i) {
    std::swap(perm[i], perm[rng.Uniform(static_cast<uint64_t>(i + 1))]);
  }
  return perm;
}

PlanPtr SumPlan(const std::string& table) {
  AggSpec sum{AggFunc::kSum, Expr::Column(3), "revenue"};
  return PlanBuilder::Scan(table).Aggregate({}, {sum}).Build();
}

/// Static rule-based placement: the "older" half (p >= 8) is demoted once
/// and placement never changes. A query to a warm partition promotes it,
/// runs, and demotes it back — the rule says it does not belong in memory.
void Adaptive_StaticRules(benchmark::State& state) {
  Database db;
  TransactionManager tm;
  ExtendedStorage warm;
  LoadPartitions(&db, &tm);
  for (int p = kPartitions / 2; p < kPartitions; ++p) {
    (void)warm.Demote(&db, PartName(p));
  }
  std::vector<int> perm = RankToPartition();
  std::vector<PlanPtr> plans;
  for (int p = 0; p < kPartitions; ++p) plans.push_back(SumPlan(PartName(p)));

  uint64_t hits = 0, queries = 0;
  double storage_nanos = 0;
  ZipfGenerator zipf(kPartitions, 0.99, /*seed=*/7);
  for (auto _ : state) {
    for (int q = 0; q < kQueriesPerBatch; ++q) {
      int p = perm[zipf.Next()];
      ++queries;
      bool resident = db.GetTable(PartName(p)).ok();
      if (resident) {
        ++hits;
      } else {
        double before = warm.simulated_nanos();
        (void)*warm.Promote(&db, PartName(p));
        storage_nanos += warm.simulated_nanos() - before;
      }
      Executor exec(&db, tm.AutoCommitView());
      benchmark::DoNotOptimize(exec.Execute(plans[p])->rows[0][0].NumericValue());
      if (!resident) (void)warm.Demote(&db, PartName(p));  // rule says: warm
    }
  }
  state.counters["hot_hit_rate"] = static_cast<double>(hits) / queries;
  state.counters["modeled_storage_ms"] =
      storage_nanos / 1e6 / state.iterations();
}
BENCHMARK(Adaptive_StaticRules)->Unit(benchmark::kMillisecond);

/// Daemon-driven placement: same initial age-based demotion, but the daemon
/// watches the workload and re-places partitions every kEpochEvery queries.
/// Hot-tier misses promote on demand (and stay until the policy cools them).
void Adaptive_Daemon(benchmark::State& state) {
  Database db;
  TransactionManager tm;
  ExtendedStorage warm;
  LoadPartitions(&db, &tm);
  for (int p = kPartitions / 2; p < kPartitions; ++p) {
    (void)warm.Demote(&db, PartName(p));
  }
  tiering::TieringDaemon::Options opts;
  opts.heat.decay = 0.5;
  // kEpochEvery Zipf(0.99) queries/epoch: the head ranks see dozens of
  // scans, the tail single digits; the band splits them.
  opts.policy.promote_threshold = 30.0;
  opts.policy.demote_threshold = 15.0;
  opts.policy.cooldown_epochs = 1;
  tiering::TieringDaemon daemon(&db, &warm, opts);
  for (int p = 0; p < kPartitions; ++p) daemon.Manage(PartName(p));
  std::vector<int> perm = RankToPartition();
  std::vector<PlanPtr> plans;
  for (int p = 0; p < kPartitions; ++p) plans.push_back(SumPlan(PartName(p)));

  uint64_t hits = 0, queries = 0, moved_bytes = 0;
  double storage_nanos = 0;
  ZipfGenerator zipf(kPartitions, 0.99, /*seed=*/7);
  for (auto _ : state) {
    for (int q = 0; q < kQueriesPerBatch; ++q) {
      int p = perm[zipf.Next()];
      ++queries;
      if (db.GetTable(PartName(p)).ok()) ++hits;
      double before = warm.simulated_nanos();
      Executor exec(&db, tm.AutoCommitView());
      // A miss is resolved inside the executor (hot-tier miss -> promote).
      benchmark::DoNotOptimize(exec.Execute(plans[p])->rows[0][0].NumericValue());
      storage_nanos += warm.simulated_nanos() - before;
      if (queries % kEpochEvery == 0) {
        auto report = daemon.RunEpoch();
        if (report.ok()) moved_bytes += report->moved_bytes;
      }
    }
  }
  state.counters["hot_hit_rate"] = static_cast<double>(hits) / queries;
  state.counters["modeled_storage_ms"] =
      storage_nanos / 1e6 / state.iterations();
  state.counters["moved_mb"] =
      static_cast<double>(moved_bytes) / 1e6 / state.iterations();
}
BENCHMARK(Adaptive_Daemon)->Unit(benchmark::kMillisecond);

/// E24 core: the Adaptive_Daemon workload plus kHistory aged "history"
/// partitions the Zipf never touches — only a rare audit query (1 in
/// kAuditEvery) reads one. With a cold store the idle history drains to DFS
/// and audits demand-page it back; without one (the two-band baseline,
/// identical loop and thresholds otherwise) it squats in warm storage
/// forever.
constexpr int kHistory = 8;
constexpr int kAuditEvery = 400;

void ThreeBandRun(benchmark::State& state, bool with_cold) {
  Database db;
  TransactionManager tm;
  ExtendedStorage warm;
  SimulatedDfs dfs;
  DfsTierStore cold(&dfs);
  LoadPartitions(&db, &tm);
  for (int p = kPartitions; p < kPartitions + kHistory; ++p) {
    bench::LoadOrders(&db, &tm, PartName(p), kRowsPerPartition, /*seed=*/100 + p);
  }
  // Age-based initial placement: the older active half AND all history
  // partitions start warm.
  for (int p = kPartitions / 2; p < kPartitions + kHistory; ++p) {
    (void)warm.Demote(&db, PartName(p));
  }
  tiering::TieringDaemon::Options opts;
  opts.heat.decay = 0.5;
  opts.policy.promote_threshold = 30.0;
  opts.policy.demote_threshold = 15.0;
  // Active-tail partitions hold steady-state heat ~8 (a few Zipf-tail scans
  // per epoch) and stay warm; history decays toward 0, falls through the
  // (2, 4) band, and sinks to DFS.
  opts.policy.cold_promote_threshold = 4.0;
  opts.policy.cold_demote_threshold = 2.0;
  opts.policy.cooldown_epochs = 1;
  opts.policy.cold_cooldown_epochs = 2;
  tiering::TieringDaemon daemon(&db, &warm, with_cold ? &cold : nullptr, opts);
  for (int p = 0; p < kPartitions + kHistory; ++p) daemon.Manage(PartName(p));
  std::vector<int> perm = RankToPartition();
  std::vector<PlanPtr> plans;
  for (int p = 0; p < kPartitions + kHistory; ++p) {
    plans.push_back(SumPlan(PartName(p)));
  }

  uint64_t hits = 0, queries = 0, moved_bytes = 0, priced_bytes = 0;
  uint64_t cold_demotes = 0, cold_promotes = 0, cold_reads = 0;
  ZipfGenerator zipf(kPartitions, 0.99, /*seed=*/7);
  Random audit_rng(99);
  for (auto _ : state) {
    for (int q = 0; q < kQueriesPerBatch; ++q) {
      ++queries;
      int p = queries % kAuditEvery == 0
                  ? kPartitions + static_cast<int>(audit_rng.Uniform(kHistory))
                  : perm[zipf.Next()];
      if (db.GetTable(PartName(p)).ok()) {
        ++hits;
      } else if (cold.Contains(PartName(p))) {
        ++cold_reads;  // this miss will demand-page from DFS
      }
      Executor exec(&db, tm.AutoCommitView());
      benchmark::DoNotOptimize(exec.Execute(plans[p])->rows[0][0].NumericValue());
      if (queries % kEpochEvery == 0) {
        auto report = daemon.RunEpoch();
        if (report.ok()) {
          moved_bytes += report->moved_bytes;
          priced_bytes += report->priced_bytes;
          cold_demotes += report->cold_demotes;
          cold_promotes += report->cold_promotes;
        }
      }
    }
  }

  uint64_t hot_bytes = 0;
  int cold_parts = 0;
  for (int p = 0; p < kPartitions + kHistory; ++p) {
    if (auto t = db.GetTable(PartName(p)); t.ok()) hot_bytes += (*t)->MemoryBytes();
    if (cold.Contains(PartName(p))) ++cold_parts;
  }
  state.counters["hot_hit_rate"] = static_cast<double>(hits) / queries;
  state.counters["hot_mb"] = static_cast<double>(hot_bytes) / 1e6;
  state.counters["warm_mb"] = static_cast<double>(warm.bytes_stored()) / 1e6;
  state.counters["cold_mb"] = static_cast<double>(cold.bytes_stored()) / 1e6;
  state.counters["cold_parts"] = cold_parts;
  state.counters["cold_reads"] = static_cast<double>(cold_reads);
  state.counters["cold_demotes"] = static_cast<double>(cold_demotes);
  state.counters["cold_promotes"] = static_cast<double>(cold_promotes);
  state.counters["moved_mb"] =
      static_cast<double>(moved_bytes) / 1e6 / state.iterations();
  state.counters["priced_mb"] =
      static_cast<double>(priced_bytes) / 1e6 / state.iterations();
}

void Adaptive_ThreeBand_TwoBandBaseline(benchmark::State& state) {
  ThreeBandRun(state, /*with_cold=*/false);
}
BENCHMARK(Adaptive_ThreeBand_TwoBandBaseline)->Unit(benchmark::kMillisecond);

void Adaptive_ThreeBand_Daemon(benchmark::State& state) {
  ThreeBandRun(state, /*with_cold=*/true);
}
BENCHMARK(Adaptive_ThreeBand_Daemon)->Unit(benchmark::kMillisecond);

/// Foreground scan, no observer attached: the AccessEvent branch in the
/// executor short-circuits on a null observer pointer.
void Tiering_ScanNoTracker(benchmark::State& state) {
  Database db;
  TransactionManager tm;
  bench::LoadOrders(&db, &tm, "orders", 50000);
  PlanPtr plan = SumPlan("orders");
  for (auto _ : state) {
    Executor exec(&db, tm.AutoCommitView());
    benchmark::DoNotOptimize(exec.Execute(plan)->rows[0][0].NumericValue());
  }
}
BENCHMARK(Tiering_ScanNoTracker)->Unit(benchmark::kMicrosecond);

/// Same scan with the daemon's heat tracker observing every access: the
/// delta against Tiering_ScanNoTracker is the whole foreground cost of the
/// tiering subsystem (budget: <3%).
void Tiering_ScanWithTracker(benchmark::State& state) {
  Database db;
  TransactionManager tm;
  ExtendedStorage warm;
  bench::LoadOrders(&db, &tm, "orders", 50000);
  tiering::TieringDaemon daemon(&db, &warm);  // attaches the observer
  daemon.Manage("orders");
  PlanPtr plan = SumPlan("orders");
  for (auto _ : state) {
    Executor exec(&db, tm.AutoCommitView());
    benchmark::DoNotOptimize(exec.Execute(plan)->rows[0][0].NumericValue());
  }
}
BENCHMARK(Tiering_ScanWithTracker)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace poly
