// E4 (§II-C): text search "we all know from web search engines" deep in the
// engine, plus the combination of text hits with structured predicates.
//
// Rows reproduced:
//   Text_FullScanLike/<docs>      - relational baseline: LIKE '%pump%'
//   Text_InvertedIndex/<docs>     - BM25 search over the same corpus
//   Text_IndexBuild/<docs>        - indexing throughput (the "automatic
//                                   trigger" cost on document ingest)
//   Text_CombinedQuery/<docs>     - text hits joined with a structured
//                                   predicate (site id range)
// Expected shape: index search beats LIKE by orders of magnitude; combined
// query stays near index-search cost.

#include <benchmark/benchmark.h>

#include "engines/text/text_engine.h"
#include "query/executor.h"
#include "workloads.h"

namespace poly {
namespace {

struct TextSetup {
  Database db;
  TransactionManager tm;
  ColumnTable* docs;

  explicit TextSetup(int n) {
    docs = *db.CreateTable("docs", Schema({ColumnDef("id", DataType::kInt64),
                                           ColumnDef("site", DataType::kInt64),
                                           ColumnDef("body", DataType::kString)}));
    auto corpus = bench::DocumentCorpus(n, 23);
    auto txn = tm.Begin();
    Random rng(29);
    for (int i = 0; i < n; ++i) {
      (void)tm.Insert(txn.get(), docs,
                      {Value::Int(i), Value::Int(static_cast<int64_t>(rng.Uniform(100))),
                       Value::Str(corpus[i])});
    }
    (void)tm.Commit(txn.get());
    docs->Merge();
  }
};

void Text_FullScanLike(benchmark::State& state) {
  TextSetup setup(static_cast<int>(state.range(0)));
  auto plan = PlanBuilder::Scan("docs")
                  .Filter(Expr::Like(Expr::Column(2), "%pump%"))
                  .Build();
  size_t hits = 0;
  for (auto _ : state) {
    Executor exec(&setup.db, setup.tm.AutoCommitView());
    hits = exec.Execute(plan)->num_rows();
    benchmark::DoNotOptimize(hits);
  }
  state.counters["hits"] = static_cast<double>(hits);
}
BENCHMARK(Text_FullScanLike)->Arg(2000)->Arg(20000)->Unit(benchmark::kMicrosecond);

void Text_InvertedIndex(benchmark::State& state) {
  TextSetup setup(static_cast<int>(state.range(0)));
  TextEngine engine = *TextEngine::Create(setup.docs, "body");
  engine.Refresh();
  size_t hits = 0;
  for (auto _ : state) {
    hits = engine.Search("pump", 1u << 30).size();
    benchmark::DoNotOptimize(hits);
  }
  state.counters["hits"] = static_cast<double>(hits);
}
BENCHMARK(Text_InvertedIndex)->Arg(2000)->Arg(20000)->Unit(benchmark::kMicrosecond);

void Text_IndexBuild(benchmark::State& state) {
  TextSetup setup(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    TextEngine engine = *TextEngine::Create(setup.docs, "body");
    benchmark::DoNotOptimize(engine.Refresh());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(Text_IndexBuild)->Arg(2000)->Arg(20000)->Unit(benchmark::kMillisecond);

void Text_CombinedQuery(benchmark::State& state) {
  // "results of text analytics can now be combined with structured data":
  // pump-failure docs from low-numbered sites.
  TextSetup setup(static_cast<int>(state.range(0)));
  TextEngine engine = *TextEngine::Create(setup.docs, "body");
  engine.Refresh();
  size_t hits = 0;
  for (auto _ : state) {
    size_t count = 0;
    ReadView now = setup.tm.AutoCommitView();
    for (const SearchHit& hit : engine.SearchAll("pump failed", 1u << 30)) {
      if (!now.RowVisible(setup.docs->cts(hit.doc_id), setup.docs->dts(hit.doc_id))) {
        continue;
      }
      if (setup.docs->GetValue(hit.doc_id, 1).AsInt() < 20) ++count;
    }
    hits = count;
    benchmark::DoNotOptimize(hits);
  }
  state.counters["hits"] = static_cast<double>(hits);
}
BENCHMARK(Text_CombinedQuery)->Arg(20000)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace poly
