// E5 (§II-E + §III): graph views and hierarchies in the engine vs the
// application-layer patterns the paper criticizes.
//
// Rows reproduced:
//   Hierarchy_CountDescendants_Interval/<nodes> - O(1) interval-label count
//     ("only the number of nodes needs to be communicated")
//   Hierarchy_CountDescendants_AppLayer/<nodes> - the paper's anti-pattern:
//     "the whole subtree [...] has to be moved from the database to the
//     application" (counter: rows_transferred)
//   Graph_ShortestPath_View/<nodes>             - Dijkstra on the graph view
//   Graph_Reachability_SelfJoins/<nodes>        - BFS emulated by iterated
//     relational self-joins (what SQL without a graph engine does)
//   Hierarchy_Build/<nodes>                     - labeling cost

#include <benchmark/benchmark.h>

#include <deque>

#include "engines/graph/graph_view.h"
#include "engines/graph/hierarchy.h"
#include "query/executor.h"
#include "workloads.h"

namespace poly {
namespace {

/// Random tree with `n` nodes (node 0 = root), fan-out ~4.
void LoadTree(Database* db, TransactionManager* tm, int n, uint64_t seed) {
  ColumnTable* t = *db->CreateTable(
      "nodes", Schema({ColumnDef("id", DataType::kInt64),
                       ColumnDef("parent", DataType::kInt64)}));
  Random rng(seed);
  auto txn = tm->Begin();
  (void)tm->Insert(txn.get(), t, {Value::Int(0), Value::Null()});
  for (int i = 1; i < n; ++i) {
    // Attach to a recent node for depth, or anywhere for bushiness.
    int64_t parent = rng.Bernoulli(0.3) ? (i > 10 ? i - 1 - rng.Uniform(10) : 0)
                                        : static_cast<int64_t>(rng.Uniform(i));
    (void)tm->Insert(txn.get(), t, {Value::Int(i), Value::Int(parent)});
  }
  (void)tm->Commit(txn.get());
  t->Merge();
}

void Hierarchy_Build(benchmark::State& state) {
  Database db;
  TransactionManager tm;
  LoadTree(&db, &tm, static_cast<int>(state.range(0)), 31);
  ColumnTable* t = *db.GetTable("nodes");
  for (auto _ : state) {
    auto h = HierarchyView::Build(*t, tm.AutoCommitView(), "id", "parent");
    benchmark::DoNotOptimize(h->num_nodes());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(Hierarchy_Build)->Arg(10000)->Arg(100000)->Unit(benchmark::kMillisecond);

void Hierarchy_CountDescendants_Interval(benchmark::State& state) {
  Database db;
  TransactionManager tm;
  int n = static_cast<int>(state.range(0));
  LoadTree(&db, &tm, n, 31);
  ColumnTable* t = *db.GetTable("nodes");
  HierarchyView h = *HierarchyView::Build(*t, tm.AutoCommitView(), "id", "parent");
  Random rng(5);
  int64_t total = 0;
  for (auto _ : state) {
    int64_t node = static_cast<int64_t>(rng.Uniform(n));
    total += *h.CountDescendants(node);
    benchmark::DoNotOptimize(total);
  }
  state.counters["rows_transferred"] = 1;  // just the count
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(Hierarchy_CountDescendants_Interval)->Arg(100000);

void Hierarchy_CountDescendants_AppLayer(benchmark::State& state) {
  Database db;
  TransactionManager tm;
  int n = static_cast<int>(state.range(0));
  LoadTree(&db, &tm, n, 31);
  // Application-side adjacency fetch: children discovered by repeated
  // "SELECT id WHERE parent = x" queries (each transfers rows out).
  Random rng(5);
  uint64_t rows_transferred = 0;
  int64_t total = 0;
  for (auto _ : state) {
    int64_t start = static_cast<int64_t>(rng.Uniform(n));
    std::deque<int64_t> frontier = {start};
    int64_t count = -1;  // exclude self
    while (!frontier.empty()) {
      int64_t node = frontier.front();
      frontier.pop_front();
      ++count;
      Executor exec(&db, tm.AutoCommitView());
      auto rs = exec.Execute(
          PlanBuilder::Scan("nodes")
              .Filter(Expr::Compare(CmpOp::kEq, Expr::Column(1),
                                    Expr::Literal(Value::Int(node))))
              .Build());
      rows_transferred += rs->num_rows();
      for (const Row& row : rs->rows) frontier.push_back(row[0].AsInt());
    }
    total += count;
    benchmark::DoNotOptimize(total);
  }
  state.counters["rows_transferred"] =
      static_cast<double>(rows_transferred) / state.iterations();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(Hierarchy_CountDescendants_AppLayer)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

/// Random sparse digraph as an edge table.
void LoadGraph(Database* db, TransactionManager* tm, int n, int degree, uint64_t seed) {
  ColumnTable* t = *db->CreateTable(
      "edges", Schema({ColumnDef("src", DataType::kInt64),
                       ColumnDef("dst", DataType::kInt64),
                       ColumnDef("w", DataType::kDouble)}));
  Random rng(seed);
  auto txn = tm->Begin();
  for (int i = 0; i < n; ++i) {
    for (int d = 0; d < degree; ++d) {
      (void)tm->Insert(txn.get(), t,
                       {Value::Int(i), Value::Int(static_cast<int64_t>(rng.Uniform(n))),
                        Value::Dbl(1 + rng.NextDouble() * 9)});
    }
  }
  (void)tm->Commit(txn.get());
  t->Merge();
}

void Graph_ShortestPath_View(benchmark::State& state) {
  Database db;
  TransactionManager tm;
  int n = static_cast<int>(state.range(0));
  LoadGraph(&db, &tm, n, 4, 77);
  ColumnTable* t = *db.GetTable("edges");
  GraphView g = *GraphView::Build(*t, tm.AutoCommitView(), "src", "dst", "w");
  Random rng(9);
  for (auto _ : state) {
    double cost;
    auto path = g.ShortestPath(static_cast<int64_t>(rng.Uniform(n)),
                               static_cast<int64_t>(rng.Uniform(n)), &cost);
    benchmark::DoNotOptimize(path.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(Graph_ShortestPath_View)->Arg(10000)->Arg(50000)
    ->Unit(benchmark::kMicrosecond);

void Graph_Reachability_SelfJoins(benchmark::State& state) {
  // The relational anti-pattern: k-hop reachability by k hash self-joins.
  Database db;
  TransactionManager tm;
  int n = static_cast<int>(state.range(0));
  LoadGraph(&db, &tm, n, 4, 77);
  Random rng(9);
  const int kHops = 3;
  for (auto _ : state) {
    int64_t start = static_cast<int64_t>(rng.Uniform(n));
    PlanPtr frontier = PlanBuilder::Scan("edges")
                           .Filter(Expr::Compare(CmpOp::kEq, Expr::Column(0),
                                                 Expr::Literal(Value::Int(start))))
                           .Project({Expr::Column(1)}, {"node"})
                           .Build();
    for (int hop = 1; hop < kHops; ++hop) {
      frontier = PlanBuilder::From(frontier)
                     .HashJoin(PlanBuilder::Scan("edges").Build(), 0, 0)
                     .Project({Expr::Column(2)}, {"node"})
                     .Build();
    }
    Executor exec(&db, tm.AutoCommitView());
    auto rs = exec.Execute(frontier);
    benchmark::DoNotOptimize(rs->num_rows());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(Graph_Reachability_SelfJoins)->Arg(10000)->Unit(benchmark::kMillisecond);

void Graph_ReachabilityBfs_View(benchmark::State& state) {
  // Same 3-hop question answered by the graph engine.
  Database db;
  TransactionManager tm;
  int n = static_cast<int>(state.range(0));
  LoadGraph(&db, &tm, n, 4, 77);
  ColumnTable* t = *db.GetTable("edges");
  GraphView g = *GraphView::Build(*t, tm.AutoCommitView(), "src", "dst", "");
  Random rng(9);
  const int kHops = 3;
  for (auto _ : state) {
    int64_t start = static_cast<int64_t>(rng.Uniform(n));
    std::vector<int64_t> frontier = {start};
    for (int hop = 0; hop < kHops - 1; ++hop) {
      std::vector<int64_t> next;
      for (int64_t node : frontier) {
        auto nbrs = g.Neighbors(node);
        next.insert(next.end(), nbrs.begin(), nbrs.end());
      }
      frontier = std::move(next);
    }
    benchmark::DoNotOptimize(frontier.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(Graph_ReachabilityBfs_View)->Arg(10000)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace poly
