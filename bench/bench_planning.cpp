// E17 (§II-D): "the planning process requires heavy CPU based database
// functionality like disaggregation or copy processes, providing logical
// snapshots or versioning [...] integrated directly into the relational
// engine".
//
// Rows reproduced:
//   Plan_CopyVersion/<rows>          - the in-engine copy operator (one
//     transaction, whole version)
//   Plan_CopyVersion_RowAtATime/<rows> - app-layer pattern: one transaction
//     per row (what a client driving the copy remotely pays)
//   Plan_DisaggregateVersion/<rows>  - retarget a version total in place
//   Plan_DisaggregateKernel/<cells>  - raw largest-remainder disaggregation

#include <benchmark/benchmark.h>

#include "engines/planning/planning.h"
#include "workloads.h"

namespace poly {
namespace {

Schema PlanSchema() {
  return Schema({ColumnDef("version", DataType::kInt64),
                 ColumnDef("key", DataType::kInt64),
                 ColumnDef("value", DataType::kDouble)});
}

ColumnTable* LoadPlan(Database* db, TransactionManager* tm, int rows) {
  ColumnTable* t = *db->CreateTable("plan", PlanSchema());
  Random rng(12);
  auto txn = tm->Begin();
  for (int i = 0; i < rows; ++i) {
    (void)tm->Insert(txn.get(), t,
                     {Value::Int(1), Value::Int(i), Value::Dbl(rng.NextDouble() * 100)});
  }
  (void)tm->Commit(txn.get());
  return t;
}

void Plan_CopyVersion(benchmark::State& state) {
  int rows = static_cast<int>(state.range(0));
  int64_t next_version = 2;
  Database db;
  TransactionManager tm;
  LoadPlan(&db, &tm, rows);
  PlanningEngine engine = *PlanningEngine::Create(&tm, *db.GetTable("plan"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(*engine.CopyVersion(1, next_version++, 1.05));
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(Plan_CopyVersion)->Arg(5000)->Unit(benchmark::kMillisecond);

void Plan_CopyVersion_RowAtATime(benchmark::State& state) {
  int rows = static_cast<int>(state.range(0));
  int64_t next_version = 2;
  Database db;
  TransactionManager tm;
  ColumnTable* t = LoadPlan(&db, &tm, rows);
  for (auto _ : state) {
    // Client-driven copy: read each row "out", write it back one commit at
    // a time (round trips modeled by the per-row transaction overhead).
    std::vector<Row> source;
    ReadView now = tm.AutoCommitView();
    t->ScanVisible(now, [&](uint64_t r) {
      Row row = t->GetRow(r);
      if (row[0].AsInt() == 1) source.push_back(std::move(row));
    });
    for (Row& row : source) {
      row[0] = Value::Int(next_version);
      row[2] = Value::Dbl(row[2].AsDouble() * 1.05);
      auto txn = tm.Begin();
      (void)tm.Insert(txn.get(), t, row);
      (void)tm.Commit(txn.get());
    }
    ++next_version;
    benchmark::DoNotOptimize(source.size());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(Plan_CopyVersion_RowAtATime)->Arg(5000)->Unit(benchmark::kMillisecond);

void Plan_DisaggregateVersion(benchmark::State& state) {
  int rows = static_cast<int>(state.range(0));
  Database db;
  TransactionManager tm;
  LoadPlan(&db, &tm, rows);
  PlanningEngine engine = *PlanningEngine::Create(&tm, *db.GetTable("plan"));
  double target = 1e6;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.DisaggregateVersion(1, target).ok());
    target *= 1.01;
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(Plan_DisaggregateVersion)->Arg(5000)->Unit(benchmark::kMillisecond);

void Plan_DisaggregateKernel(benchmark::State& state) {
  int cells = static_cast<int>(state.range(0));
  Random rng(8);
  std::vector<double> weights(cells);
  for (double& w : weights) w = rng.NextDouble();
  for (auto _ : state) {
    auto parts = DisaggregateInt(1000000, weights);
    benchmark::DoNotOptimize((*parts)[0]);
  }
  state.SetItemsProcessed(state.iterations() * cells);
}
BENCHMARK(Plan_DisaggregateKernel)->Arg(100000);

}  // namespace
}  // namespace poly
