// E3 (§II-A): "applying multiple compression techniques" — dictionary
// encoding + bit-packed value IDs vs a row store, and the SOE's relaxed
// reference compression (§IV-A) as the third point.
//
// Rows reproduced:
//   Compression_MemoryFootprint/<distinct>  - bytes/row column vs row store
//     (counters: col_bytes_per_row, row_bytes_per_row, ratio)
//   Compression_Scan_{Packed,Relaxed}       - scan speed of compressed vs
//     relaxed (64-bit) references: the energy/DRAM-traffic trade the SOE
//     makes the other way.

#include <benchmark/benchmark.h>

#include "workloads.h"

namespace poly {
namespace {

void Compression_MemoryFootprint(benchmark::State& state) {
  int64_t distinct = state.range(0);
  const int kRows = 50000;
  Database db;
  TransactionManager tm;
  ColumnTable* col = *db.CreateTable(
      "col", Schema({ColumnDef("city", DataType::kString)}));
  RowTable* row = *db.CreateRowTable(
      "row", Schema({ColumnDef("city", DataType::kString)}));
  Random rng(3);
  auto txn = tm.Begin();
  for (int i = 0; i < kRows; ++i) {
    Row r = {Value::Str("city_of_somewhere_" + std::to_string(rng.Uniform(distinct)))};
    (void)tm.Insert(txn.get(), col, r);
    (void)tm.Insert(txn.get(), row, r);
  }
  (void)tm.Commit(txn.get());
  col->Merge();

  for (auto _ : state) {
    benchmark::DoNotOptimize(col->MemoryBytes());
  }
  double col_bytes = static_cast<double>(col->MemoryBytes());
  double row_bytes = static_cast<double>(row->MemoryBytes());
  state.counters["col_bytes_per_row"] = col_bytes / kRows;
  state.counters["row_bytes_per_row"] = row_bytes / kRows;
  state.counters["compression_ratio"] = row_bytes / col_bytes;
}
BENCHMARK(Compression_MemoryFootprint)->Arg(16)->Arg(256)->Arg(4096)->Arg(50000);

void ScanBenchmark(benchmark::State& state, bool compress_main) {
  const int kRows = 200000;
  ColumnTable t("t", Schema({ColumnDef("v", DataType::kInt64)}), compress_main);
  Random rng(7);
  for (int i = 0; i < kRows; ++i) {
    (void)t.AppendVersion({Value::Int(static_cast<int64_t>(rng.Uniform(1024)))}, 1);
  }
  t.Merge();
  const Column& col = t.column(0);
  std::vector<uint64_t> buffer(4096);
  for (auto _ : state) {
    uint64_t sum = 0;
    for (uint64_t begin = 0; begin < col.main_size(); begin += buffer.size()) {
      uint64_t end = std::min<uint64_t>(col.main_size(), begin + buffer.size());
      col.DecodeMainIds(begin, end, buffer.data());
      for (uint64_t i = 0; i < end - begin; ++i) sum += buffer[i];
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kRows);
  state.counters["bytes_per_row"] =
      static_cast<double>(t.MemoryBytes()) / kRows;
}

void Compression_Scan_Packed(benchmark::State& state) {
  ScanBenchmark(state, /*compress_main=*/true);
}
BENCHMARK(Compression_Scan_Packed);

void Compression_Scan_Relaxed(benchmark::State& state) {
  ScanBenchmark(state, /*compress_main=*/false);  // the SOE trade (§IV-A)
}
BENCHMARK(Compression_Scan_Relaxed);

}  // namespace
}  // namespace poly
