// E15 (§IV-C, Figure 4): Hadoop integration. "The most simple way of
// integration is a federated approach which is pushing down SQL statements
// [...] the scale-out option provides a significantly deeper integration."
//
// Rows reproduced:
//   Hadoop_Federated_PullAll/<rows>   - raw-file federation: the whole DFS
//     file ships to the engine, filter runs locally (counter: mb_shipped)
//   Hadoop_Federated_Pushdown/<rows>  - pushdown-capable remote source:
//     only matches ship
//   Hadoop_MapReduceLocal/<rows>      - the deep integration: the job runs
//     next to the data, only aggregates leave
//   Hadoop_ImportToEngine/<rows>      - bulk load DFS -> column store

#include <benchmark/benchmark.h>

#include "common/string_util.h"
#include "federation/federation.h"
#include "hadoop/mapreduce.h"
#include "hadoop/table_connector.h"
#include "workloads.h"

namespace poly {
namespace {

/// Writes `rows` sensor readings to the DFS as TSV and mirrors them in a
/// "remote" engine for the pushdown variant.
struct HadoopSetup {
  SimulatedDfs dfs;
  Database remote_db;
  TransactionManager remote_tm;
  std::string path = "/lake/readings.tsv";

  explicit HadoopSetup(int rows) {
    ColumnTable* t = *remote_db.CreateTable(
        "readings", Schema({ColumnDef("sensor", DataType::kInt64),
                            ColumnDef("value", DataType::kDouble)}));
    Random rng(21);
    auto txn = remote_tm.Begin();
    std::string tsv = "sensor:INT64\tvalue:DOUBLE\n";
    for (int i = 0; i < rows; ++i) {
      int64_t sensor = static_cast<int64_t>(rng.Uniform(1000));
      double value = rng.NextDouble() * 100;
      (void)remote_tm.Insert(txn.get(), t, {Value::Int(sensor), Value::Dbl(value)});
      tsv += std::to_string(sensor) + "\t" + std::to_string(value) + "\n";
    }
    (void)remote_tm.Commit(txn.get());
    t->Merge();
    (void)dfs.Write(path, tsv);
  }

  ExprPtr HotSensorPredicate() {  // ~1% selectivity
    return Expr::Compare(CmpOp::kLt, Expr::Column(0), Expr::Literal(Value::Int(10)));
  }
};

void Hadoop_Federated_PullAll(benchmark::State& state) {
  HadoopSetup setup(static_cast<int>(state.range(0)));
  FederationEngine fed;
  auto src = DfsFileSource::Open(&setup.dfs, setup.path);
  (void)fed.RegisterSource("v", std::move(src.value()));
  size_t hits = 0;
  for (auto _ : state) {
    auto rs = fed.ScanVirtual("v", setup.HotSensorPredicate());
    hits = rs->num_rows();
    benchmark::DoNotOptimize(hits);
  }
  state.counters["mb_shipped"] =
      static_cast<double>((*fed.Source("v"))->bytes_transferred()) / 1e6 /
      state.iterations();
  state.counters["hits"] = static_cast<double>(hits);
}
BENCHMARK(Hadoop_Federated_PullAll)->Arg(100000)->Unit(benchmark::kMillisecond);

void Hadoop_Federated_Pushdown(benchmark::State& state) {
  HadoopSetup setup(static_cast<int>(state.range(0)));
  FederationEngine fed;
  (void)fed.RegisterSource("v", std::make_unique<RemoteTableSource>(
                                    &setup.remote_db, &setup.remote_tm, "readings",
                                    /*supports_pushdown=*/true));
  size_t hits = 0;
  for (auto _ : state) {
    auto rs = fed.ScanVirtual("v", setup.HotSensorPredicate());
    hits = rs->num_rows();
    benchmark::DoNotOptimize(hits);
  }
  state.counters["mb_shipped"] =
      static_cast<double>((*fed.Source("v"))->bytes_transferred()) / 1e6 /
      state.iterations();
  state.counters["hits"] = static_cast<double>(hits);
}
BENCHMARK(Hadoop_Federated_Pushdown)->Arg(100000)->Unit(benchmark::kMillisecond);

void Hadoop_MapReduceLocal(benchmark::State& state) {
  HadoopSetup setup(static_cast<int>(state.range(0)));
  ThreadPool pool(4);
  MapReduceJob job(&setup.dfs, &pool);
  for (auto _ : state) {
    auto stats = job.Run(
        setup.path, "/lake/out",
        [](const std::string& line) {
          std::vector<KeyValue> out;
          auto f = SplitString(line, '\t');
          if (f.size() == 2 && f[0] != "sensor:INT64" && std::stol(f[0]) < 10) {
            out.push_back(KeyValue{f[0], f[1]});
          }
          return out;
        },
        [](const std::string& key, const std::vector<std::string>& values) {
          double sum = 0;
          for (const auto& v : values) sum += std::stod(v);
          return std::vector<std::string>{key + "\t" + std::to_string(sum)};
        });
    benchmark::DoNotOptimize(stats->map_output_pairs);
  }
  // Only the per-sensor aggregates cross the boundary (10 lines).
  state.counters["mb_shipped"] =
      static_cast<double>(*setup.dfs.FileSize("/lake/out")) / 1e6;
}
BENCHMARK(Hadoop_MapReduceLocal)->Arg(100000)->Unit(benchmark::kMillisecond);

void Hadoop_ImportToEngine(benchmark::State& state) {
  HadoopSetup setup(static_cast<int>(state.range(0)));
  DfsTableConnector conn(&setup.dfs);
  int round = 0;
  for (auto _ : state) {
    Database db;
    TransactionManager tm;
    auto t = conn.Import(setup.path, "local_" + std::to_string(round++), &db, &tm);
    benchmark::DoNotOptimize((*t)->num_versions());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(Hadoop_ImportToEngine)->Arg(100000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace poly
