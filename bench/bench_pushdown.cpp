// E10 (§III): "if currency conversion is implemented on application level,
// analytic queries have [to] include the currency field in the 'group by'
// list [...] this can multiply the data to be transferred between the
// layers." The paper pushes the conversion into the database instead.
//
// Rows reproduced:
//   Pushdown_AppLayerConversion/<rows>  - DB ships (currency, amount) rows
//     out; the "application" converts and sums. Counter: rows_transferred.
//   Pushdown_InDatabaseConversion/<rows> - CurrencyConverter::ConvertedSum
//     runs inside the engine; one scalar crosses the boundary.
// Expected shape: identical answers; transferred volume collapses from
// O(rows) to O(1) and wall time follows.

#include <benchmark/benchmark.h>

#include "bfl/business_functions.h"
#include "query/executor.h"
#include "workloads.h"

namespace poly {
namespace {

Schema SalesSchema() {
  return Schema({ColumnDef("id", DataType::kInt64),
                 ColumnDef("amount", DataType::kDouble),
                 ColumnDef("currency", DataType::kString)});
}

ColumnTable* LoadSales(Database* db, TransactionManager* tm, int n) {
  static const char* kCurrencies[] = {"EUR", "USD", "GBP", "JPY", "CHF"};
  ColumnTable* t = *db->CreateTable("sales", SalesSchema());
  Random rng(11);
  auto txn = tm->Begin();
  for (int i = 0; i < n; ++i) {
    (void)tm->Insert(txn.get(), t,
                     {Value::Int(i), Value::Dbl(1 + rng.NextDouble() * 100),
                      Value::Str(kCurrencies[rng.Uniform(5)])});
  }
  (void)tm->Commit(txn.get());
  t->Merge();
  return t;
}

CurrencyConverter MakeConverter() {
  CurrencyConverter fx;
  fx.AddRate("USD", "EUR", 0, 0.92);
  fx.AddRate("GBP", "EUR", 0, 1.17);
  fx.AddRate("JPY", "EUR", 0, 0.0061);
  fx.AddRate("CHF", "EUR", 0, 1.04);
  return fx;
}

void Pushdown_AppLayerConversion(benchmark::State& state) {
  Database db;
  TransactionManager tm;
  ColumnTable* t = LoadSales(&db, &tm, static_cast<int>(state.range(0)));
  (void)t;
  CurrencyConverter fx = MakeConverter();
  uint64_t rows_transferred = 0;
  double result = 0;
  for (auto _ : state) {
    // The application-layer pattern: the DB must return every (currency,
    // amount) pair (or at best one row per currency per group-by cell);
    // here the worst but common case — detail rows cross the boundary.
    Executor exec(&db, tm.AutoCommitView());
    auto rs = exec.Execute(
        PlanBuilder::Scan("sales")
            .Project({Expr::Column(1), Expr::Column(2)}, {"amount", "currency"})
            .Build());
    rows_transferred += rs->num_rows();
    double total = 0;
    for (const Row& row : rs->rows) {  // "application code"
      total += *fx.Convert(row[0].AsDouble(), row[1].AsString(), "EUR", 1);
    }
    result = total;
    benchmark::DoNotOptimize(result);
  }
  state.counters["rows_transferred"] =
      static_cast<double>(rows_transferred) / state.iterations();
  state.counters["total_eur"] = result;
}
BENCHMARK(Pushdown_AppLayerConversion)->Arg(20000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void Pushdown_InDatabaseConversion(benchmark::State& state) {
  Database db;
  TransactionManager tm;
  ColumnTable* t = LoadSales(&db, &tm, static_cast<int>(state.range(0)));
  CurrencyConverter fx = MakeConverter();
  double result = 0;
  for (auto _ : state) {
    result = *fx.ConvertedSum(*t, tm.AutoCommitView(), "amount", "currency", "EUR", 1);
    benchmark::DoNotOptimize(result);
  }
  state.counters["rows_transferred"] = 1;  // one scalar
  state.counters["total_eur"] = result;
}
BENCHMARK(Pushdown_InDatabaseConversion)->Arg(20000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// Serial-vs-parallel projection scan over the sales table: the same
// app-layer-shaped query as above, executed morsel-parallel. Arg is the
// thread count (Arg(1) = serial baseline); output is merged in morsel
// order, so row order and content are identical across all thread counts.
void Pushdown_ParallelScan(benchmark::State& state) {
  Database db;
  TransactionManager tm;
  (void)LoadSales(&db, &tm, 1000000);
  ExecOptions opts;
  opts.num_threads = static_cast<size_t>(state.range(0));
  opts.morsel_rows = 65536;
  PlanPtr plan =
      PlanBuilder::Scan("sales")
          .Project({Expr::Column(1), Expr::Column(2)}, {"amount", "currency"})
          .Build();
  for (auto _ : state) {
    Executor exec(&db, tm.AutoCommitView(), opts);
    auto rs = exec.Execute(plan);
    benchmark::DoNotOptimize(rs->num_rows());
  }
  state.SetItemsProcessed(state.iterations() * 1000000);
}
BENCHMARK(Pushdown_ParallelScan)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace poly
