// DESIGN.md §12.5: chunked value storage makes ALL reads — stamps and
// values — latch-free against writers. The write path pays for that by
// appending into preallocated fixed-size chunks behind an RCU-published
// directory instead of growable vectors. These rows quantify that cost and
// the guarded read path:
//   Mvcc_AppendThroughput_Column/N  - raw ColumnTable::AppendVersion
//   Mvcc_AppendThroughput_Row/N     - raw RowTable::AppendVersion
//   Mvcc_GuardedScanValues_Column/N - value scan through one unified guard
// Expected shape: append throughput within noise of the pre-chunking design
// (E23 compares against the seed via HTAP_OltpInsert), because the chunk
// math is shift/mask and growth copies only directory pointers, never rows.

#include <benchmark/benchmark.h>

#include <memory>

#include "storage/column_table.h"
#include "storage/mvcc.h"
#include "storage/row_table.h"

namespace poly {
namespace {

Schema TwoColSchema() {
  return Schema({ColumnDef("id", DataType::kInt64),
                 ColumnDef("amount", DataType::kDouble)});
}

void Mvcc_AppendThroughput_Column(benchmark::State& state) {
  const int64_t kRows = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    auto t = std::make_unique<ColumnTable>("orders", TwoColSchema());
    state.ResumeTiming();
    for (int64_t i = 0; i < kRows; ++i) {
      benchmark::DoNotOptimize(
          t->AppendVersion({Value::Int(i), Value::Dbl(1.0)}, /*cts_stamp=*/1));
    }
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(Mvcc_AppendThroughput_Column)->Arg(100000);

void Mvcc_AppendThroughput_Row(benchmark::State& state) {
  const int64_t kRows = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    auto t = std::make_unique<RowTable>("orders", TwoColSchema());
    state.ResumeTiming();
    for (int64_t i = 0; i < kRows; ++i) {
      benchmark::DoNotOptimize(
          t->AppendVersion({Value::Int(i), Value::Dbl(1.0)}, /*cts_stamp=*/1));
    }
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(Mvcc_AppendThroughput_Row)->Arg(100000);

void Mvcc_GuardedScanValues_Column(benchmark::State& state) {
  const int64_t kRows = state.range(0);
  ColumnTable t("orders", TwoColSchema());
  for (int64_t i = 0; i < kRows; ++i) {
    (void)t.AppendVersion({Value::Int(i), Value::Dbl(1.0)}, /*cts_stamp=*/1);
  }
  ReadView v{/*snapshot_ts=*/2, /*txn_id=*/0};
  for (auto _ : state) {
    ColumnTable::ReadGuard g(&t);
    int64_t sum = 0;
    g.ScanVisible(v, [&](uint64_t r) { sum += g.GetValue(r, 0).AsInt(); });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(Mvcc_GuardedScanValues_Column)->Arg(100000);

}  // namespace
}  // namespace poly
