#include "hadoop/dfs_tier_store.h"

#include <algorithm>

#include "common/metrics.h"
#include "common/serializer.h"

namespace poly {

namespace {

/// Tier-movement counters in the default registry (DESIGN.md §10:
/// `tier.<temperature>.<direction>` plus byte volumes). Same names the
/// ExtendedStorage cold hops use, so dashboards see one cold boundary no
/// matter which component crossed it.
void CountTierMove(const char* counter_name, const char* bytes_name,
                   uint64_t bytes) {
  metrics::Registry& reg = metrics::Default();
  reg.counter(counter_name)->Add(1);
  reg.counter(bytes_name)->Add(bytes);
}

}  // namespace

Status DfsTierStore::Sink(ExtendedStorage* warm, const std::string& table) {
  POLY_ASSIGN_OR_RETURN(std::string payload, warm->TakePayload(table));
  uint64_t bytes = payload.size();
  Status s = dfs_->Write(ExtendedStorage::ColdPath(table), payload);
  if (!s.ok()) {
    // Put the payload back: a failed sink must not lose the only copy.
    (void)warm->AdoptPayload(table, std::move(payload));
    return s;
  }
  CountTierMove("tier.cold.demotes", "tier.cold.demote_bytes", bytes);
  std::lock_guard<std::mutex> lock(mu_);
  catalog_[table] = bytes;
  return Status::OK();
}

Status DfsTierStore::Raise(ExtendedStorage* warm, const std::string& table) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (catalog_.find(table) == catalog_.end()) {
      return Status::NotFound("no cold table '" + table + "'");
    }
  }
  std::string path = ExtendedStorage::ColdPath(table);
  POLY_ASSIGN_OR_RETURN(std::string payload, dfs_->Read(path));
  uint64_t bytes = payload.size();
  POLY_RETURN_IF_ERROR(warm->AdoptPayload(table, std::move(payload)));
  CountTierMove("tier.cold.promotes", "tier.cold.promote_bytes", bytes);
  (void)dfs_->Delete(path);
  std::lock_guard<std::mutex> lock(mu_);
  catalog_.erase(table);
  return Status::OK();
}

StatusOr<ColumnTable*> DfsTierStore::PageIn(Database* db, const std::string& table) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (catalog_.find(table) == catalog_.end()) {
      return Status::NotFound("no cold table '" + table + "'");
    }
  }
  std::string path = ExtendedStorage::ColdPath(table);
  POLY_ASSIGN_OR_RETURN(std::string payload, dfs_->Read(path));
  Deserializer d(payload);
  POLY_ASSIGN_OR_RETURN(auto loaded, ColumnTable::LoadFrom(&d));
  ColumnTable* ptr = loaded.get();
  POLY_RETURN_IF_ERROR(db->AdoptTable(std::move(loaded)));
  CountTierMove("tier.cold.promotes", "tier.cold.promote_bytes", payload.size());
  metrics::Default().counter("tier.cold.page_ins")->Add(1);
  (void)dfs_->Delete(path);
  std::lock_guard<std::mutex> lock(mu_);
  catalog_.erase(table);
  return ptr;
}

bool DfsTierStore::Contains(const std::string& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  return catalog_.count(table) > 0;
}

uint64_t DfsTierStore::BytesOf(const std::string& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = catalog_.find(table);
  return it == catalog_.end() ? 0 : it->second;
}

std::vector<std::string> DfsTierStore::ColdTables() const {
  std::vector<std::string> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(catalog_.size());
    for (const auto& [name, _] : catalog_) out.push_back(name);
  }
  return out;  // std::map iterates sorted
}

uint64_t DfsTierStore::bytes_stored() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [_, bytes] : catalog_) total += bytes;
  return total;
}

double DfsTierStore::CostFactorVersus(const ExtendedStorage::Options& warm) const {
  double warm_round_trip = warm.read_nanos_per_byte + warm.write_nanos_per_byte;
  if (warm_round_trip <= 0.0) return 1.0;
  double factor = 2.0 * dfs_->options().read_nanos_per_byte / warm_round_trip;
  return std::max(factor, 1.0);
}

}  // namespace poly
