#include "hadoop/dfs.h"

#include <algorithm>

namespace poly {

SimulatedDfs::SimulatedDfs() : SimulatedDfs(Options()) {}

SimulatedDfs::SimulatedDfs(Options options) : options_(options) {
  if (options_.num_data_nodes < 1) options_.num_data_nodes = 1;
  if (options_.replication < 1) options_.replication = 1;
  if (options_.replication > options_.num_data_nodes) {
    options_.replication = options_.num_data_nodes;
  }
  nodes_alive_.assign(options_.num_data_nodes, true);
}

StatusOr<std::vector<int>> SimulatedDfs::PickNodes() {
  std::vector<int> live;
  for (int n = 0; n < static_cast<int>(nodes_alive_.size()); ++n) {
    if (nodes_alive_[n]) live.push_back(n);
  }
  if (live.empty()) return Status::Unavailable("no live data nodes");
  int replication = std::min<int>(options_.replication, static_cast<int>(live.size()));
  std::vector<int> chosen;
  for (int i = 0; i < replication; ++i) {
    chosen.push_back(live[(next_node_rr_ + i) % live.size()]);
  }
  next_node_rr_ = (next_node_rr_ + 1) % static_cast<int>(live.size());
  return chosen;
}

Status SimulatedDfs::WriteLocked(const std::string& path, const std::string& data) {
  FileEntry entry;
  entry.size = data.size();
  for (size_t off = 0; off < data.size() || (off == 0 && data.empty());
       off += options_.block_size) {
    Block block;
    block.id = next_block_id_++;
    block.data = data.substr(off, options_.block_size);
    POLY_ASSIGN_OR_RETURN(block.replicas, PickNodes());
    entry.blocks.push_back(block.id);
    blocks_.emplace(block.id, std::move(block));
    if (data.empty()) break;
  }
  // Drop old blocks on overwrite.
  auto it = files_.find(path);
  if (it != files_.end()) {
    for (uint64_t b : it->second.blocks) blocks_.erase(b);
  }
  files_[path] = std::move(entry);
  return Status::OK();
}

Status SimulatedDfs::Write(const std::string& path, const std::string& data) {
  std::lock_guard<std::mutex> lock(mu_);
  return WriteLocked(path, data);
}

Status SimulatedDfs::Append(const std::string& path, const std::string& data) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return WriteLocked(path, data);
  // Rewrite = read old + concat (simple but preserves block invariants).
  std::string full;
  full.reserve(it->second.size + data.size());
  for (uint64_t b : it->second.blocks) full += blocks_.at(b).data;
  full += data;
  return WriteLocked(path, full);
}

void SimulatedDfs::ChargeRead(size_t bytes, size_t blocks) {
  simulated_read_nanos_ += static_cast<double>(bytes) * options_.read_nanos_per_byte +
                           static_cast<double>(blocks) * options_.seek_nanos_per_block;
  bytes_read_ += bytes;
}

StatusOr<std::string> SimulatedDfs::Read(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no DFS file " + path);
  std::string out;
  out.reserve(it->second.size);
  for (uint64_t id : it->second.blocks) {
    const Block& block = blocks_.at(id);
    bool available = false;
    for (int n : block.replicas) available |= nodes_alive_[n];
    if (!available) {
      return Status::Unavailable("all replicas of a block of " + path + " are down");
    }
    out += block.data;
  }
  ChargeRead(out.size(), it->second.blocks.size());
  return out;
}

StatusOr<std::string> SimulatedDfs::ReadBlock(const std::string& path,
                                              size_t block_index) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no DFS file " + path);
  if (block_index >= it->second.blocks.size()) {
    return Status::OutOfRange("block index out of range");
  }
  const Block& block = blocks_.at(it->second.blocks[block_index]);
  bool available = false;
  for (int n : block.replicas) available |= nodes_alive_[n];
  if (!available) return Status::Unavailable("block replicas down");
  ChargeRead(block.data.size(), 1);
  return block.data;
}

Status SimulatedDfs::Delete(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no DFS file " + path);
  for (uint64_t b : it->second.blocks) blocks_.erase(b);
  files_.erase(it);
  return Status::OK();
}

bool SimulatedDfs::Exists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) > 0;
}

std::vector<std::string> SimulatedDfs::ListFiles(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [path, _] : files_) {
    if (path.compare(0, prefix.size(), prefix) == 0) out.push_back(path);
  }
  return out;
}

StatusOr<size_t> SimulatedDfs::FileSize(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no DFS file " + path);
  return it->second.size;
}

StatusOr<size_t> SimulatedDfs::NumBlocks(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no DFS file " + path);
  return it->second.blocks.size();
}

StatusOr<std::vector<int>> SimulatedDfs::BlockLocations(const std::string& path,
                                                        size_t block_index) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no DFS file " + path);
  if (block_index >= it->second.blocks.size()) {
    return Status::OutOfRange("block index out of range");
  }
  const Block& block = blocks_.at(it->second.blocks[block_index]);
  std::vector<int> live;
  for (int n : block.replicas) {
    if (nodes_alive_[n]) live.push_back(n);
  }
  return live;
}

Status SimulatedDfs::KillDataNode(int node) {
  std::lock_guard<std::mutex> lock(mu_);
  if (node < 0 || node >= static_cast<int>(nodes_alive_.size())) {
    return Status::InvalidArgument("no data node " + std::to_string(node));
  }
  nodes_alive_[node] = false;
  return Status::OK();
}

Status SimulatedDfs::ReReplicate() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, block] : blocks_) {
    std::vector<int> live;
    for (int n : block.replicas) {
      if (nodes_alive_[n]) live.push_back(n);
    }
    if (live.empty()) {
      return Status::Unavailable("block " + std::to_string(id) + " lost all replicas");
    }
    while (static_cast<int>(live.size()) < options_.replication) {
      // Find a live node not already holding the block.
      int candidate = -1;
      for (int n = 0; n < static_cast<int>(nodes_alive_.size()); ++n) {
        if (!nodes_alive_[n]) continue;
        if (std::find(live.begin(), live.end(), n) == live.end()) {
          candidate = n;
          break;
        }
      }
      if (candidate < 0) break;  // not enough live nodes for full replication
      live.push_back(candidate);
    }
    block.replicas = live;
  }
  return Status::OK();
}

}  // namespace poly
