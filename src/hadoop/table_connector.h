#ifndef POLY_HADOOP_TABLE_CONNECTOR_H_
#define POLY_HADOOP_TABLE_CONNECTOR_H_

#include <string>

#include "hadoop/dfs.h"
#include "storage/column_table.h"
#include "txn/transaction_manager.h"

namespace poly {

/// File-based connector between the relational engine and the DFS (§IV-C:
/// "As standard we provide a file-based connector [...] data from local
/// HDFS nodes can be loaded into the local SAP HANA SOE nodes").
///
/// Format: tab-separated lines; first line is "name:TYPE" headers. NULLs
/// are the literal \N.
class DfsTableConnector {
 public:
  explicit DfsTableConnector(SimulatedDfs* dfs) : dfs_(dfs) {}

  /// Exports the visible rows of `table` to a DFS file.
  Status Export(const ColumnTable& table, const ReadView& view, const std::string& path);

  /// Imports a DFS file into a new table owned by `db`. Rows are stamped
  /// committed-at-load (bulk load, like the paper's data refinement flow).
  StatusOr<ColumnTable*> Import(const std::string& path, const std::string& table_name,
                                Database* db, TransactionManager* tm);

  /// Appends the file's rows into an existing compatible table.
  StatusOr<uint64_t> AppendTo(const std::string& path, ColumnTable* table,
                              TransactionManager* tm);

  /// Parses a header-bearing TSV payload into (schema, rows) — shared by
  /// Import and the federation CSV source.
  static StatusOr<std::pair<Schema, std::vector<Row>>> ParseTsv(const std::string& data);
  /// Renders rows to the TSV format.
  static std::string RenderTsv(const Schema& schema, const std::vector<Row>& rows);

 private:
  SimulatedDfs* dfs_;
};

}  // namespace poly

#endif  // POLY_HADOOP_TABLE_CONNECTOR_H_
