#ifndef POLY_HADOOP_DFS_TIER_STORE_H_
#define POLY_HADOOP_DFS_TIER_STORE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "aging/extended_storage.h"
#include "common/status.h"
#include "hadoop/dfs.h"
#include "storage/database.h"

namespace poly {

/// Cold tier of Figure 1's temperature pyramid: partition tables serialized
/// onto the SimulatedDfs ("HDFS is used as an aging store for HANA", §IV-C),
/// with a catalog of what lives there so residency stays unambiguous — a
/// table is cold iff this store lists it, and every move OUT of the cold
/// tier deletes the DFS file.
///
/// The on-DFS format is the binary serializer payload (ColumnTable::SaveTo),
/// the same bytes ExtendedStorage holds for the warm tier — NOT the TSV of
/// hadoop/table_connector. The connector re-stamps rows as committed-at-load
/// (right for federated interchange, E15), which would break the pinned-scan
/// protocol: a reader pinned on a pre-demotion table must see the same MVCC
/// stamps if the partition pages back in mid-scan. DESIGN.md §11.4.
///
/// Thread-safe; the daemon calls it under its movement lock but tests may
/// poke it directly.
class DfsTierStore {
 public:
  explicit DfsTierStore(SimulatedDfs* dfs) : dfs_(dfs) {}

  DfsTierStore(const DfsTierStore&) = delete;
  DfsTierStore& operator=(const DfsTierStore&) = delete;

  /// warm -> cold: takes the serialized payload out of `warm` and writes it
  /// to DFS. Counts tier.cold.demotes / tier.cold.demote_bytes.
  Status Sink(ExtendedStorage* warm, const std::string& table);

  /// cold -> warm: reads the payload back from DFS (charging the simulated
  /// cold read cost), hands it to `warm`, and deletes the DFS file. Counts
  /// tier.cold.promotes / tier.cold.promote_bytes.
  Status Raise(ExtendedStorage* warm, const std::string& table);

  /// cold -> hot directly: deserializes the payload straight into `db`
  /// (skipping the warm stopover) and deletes the DFS file. Used both by
  /// policy-driven cold->hot promotion and by demand paging on a scan miss.
  /// Counts tier.cold.promotes / tier.cold.promote_bytes and
  /// tier.cold.page_ins.
  StatusOr<ColumnTable*> PageIn(Database* db, const std::string& table);

  bool Contains(const std::string& table) const;

  /// Serialized size of a cold table; 0 if absent. The unit the policy's
  /// migration budget prices (times the cold cost factor).
  uint64_t BytesOf(const std::string& table) const;

  /// Names of all cold tables, sorted.
  std::vector<std::string> ColdTables() const;

  uint64_t bytes_stored() const;

  /// How much more a cold byte costs than a warm byte, from the two cost
  /// models: dfs reads are charged once on the way out AND the payload is
  /// re-written on the way back in, so the round trip is priced against the
  /// warm tier's read+write. Defaults (10 ns/B cold read vs 2+4 ns/B warm
  /// round trip) give ~3.33. Always >= 1: the cold tier is never priced
  /// cheaper than warm.
  double CostFactorVersus(const ExtendedStorage::Options& warm) const;

  SimulatedDfs* dfs() const { return dfs_; }

 private:
  SimulatedDfs* dfs_;
  mutable std::mutex mu_;
  std::map<std::string, uint64_t> catalog_;  // table -> payload bytes
};

}  // namespace poly

#endif  // POLY_HADOOP_DFS_TIER_STORE_H_
