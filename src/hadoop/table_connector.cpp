#include "hadoop/table_connector.h"

#include "common/string_util.h"

namespace poly {

namespace {

std::string RenderValue(const Value& v) {
  if (v.is_null()) return "\\N";
  if (v.type() == DataType::kGeoPoint) {
    // lon;lat keeps the TSV single-field.
    const auto& g = v.AsGeoPoint();
    return std::to_string(g.lon) + ";" + std::to_string(g.lat);
  }
  return v.ToString();
}

StatusOr<Value> ParseValue(const std::string& text, DataType type) {
  if (text == "\\N") return Value::Null();
  switch (type) {
    case DataType::kInt64:
      return Value::Int(std::stoll(text));
    case DataType::kTimestamp:
      return Value::Timestamp(std::stoll(text));
    case DataType::kDouble:
      return Value::Dbl(std::stod(text));
    case DataType::kBool:
      return Value::Boolean(text == "true" || text == "1");
    case DataType::kString:
      return Value::Str(text);
    case DataType::kDocument:
      return Value::Document(text);
    case DataType::kGeoPoint: {
      auto parts = SplitString(text, ';');
      if (parts.size() != 2) return Status::Corruption("bad geo point: " + text);
      return Value::GeoPoint(std::stod(parts[0]), std::stod(parts[1]));
    }
    case DataType::kNull:
      return Value::Null();
  }
  return Status::Corruption("unknown type in TSV");
}

StatusOr<DataType> TypeFromName(const std::string& name) {
  for (DataType t : {DataType::kInt64, DataType::kDouble, DataType::kString,
                     DataType::kBool, DataType::kTimestamp, DataType::kGeoPoint,
                     DataType::kDocument}) {
    if (name == DataTypeName(t)) return t;
  }
  return Status::Corruption("unknown column type '" + name + "'");
}

}  // namespace

std::string DfsTableConnector::RenderTsv(const Schema& schema,
                                         const std::vector<Row>& rows) {
  std::string out;
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (c) out += '\t';
    out += schema.column(c).name;
    out += ':';
    out += DataTypeName(schema.column(c).type);
  }
  out += '\n';
  for (const Row& row : rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) out += '\t';
      out += RenderValue(row[c]);
    }
    out += '\n';
  }
  return out;
}

StatusOr<std::pair<Schema, std::vector<Row>>> DfsTableConnector::ParseTsv(
    const std::string& data) {
  std::vector<std::string> lines = SplitString(data, '\n');
  if (!lines.empty() && lines.back().empty()) lines.pop_back();
  if (lines.empty()) return Status::Corruption("empty TSV payload");
  Schema schema;
  for (const std::string& header : SplitString(lines[0], '\t')) {
    auto parts = SplitString(header, ':');
    if (parts.size() != 2) return Status::Corruption("bad TSV header '" + header + "'");
    POLY_ASSIGN_OR_RETURN(DataType type, TypeFromName(parts[1]));
    schema.AddColumn(ColumnDef(parts[0], type));
  }
  std::vector<Row> rows;
  rows.reserve(lines.size() - 1);
  for (size_t i = 1; i < lines.size(); ++i) {
    auto fields = SplitString(lines[i], '\t');
    if (fields.size() != schema.num_columns()) {
      return Status::Corruption("TSV row width mismatch at line " + std::to_string(i));
    }
    Row row;
    row.reserve(fields.size());
    for (size_t c = 0; c < fields.size(); ++c) {
      POLY_ASSIGN_OR_RETURN(Value v, ParseValue(fields[c], schema.column(c).type));
      row.push_back(std::move(v));
    }
    rows.push_back(std::move(row));
  }
  return std::make_pair(std::move(schema), std::move(rows));
}

Status DfsTableConnector::Export(const ColumnTable& table, const ReadView& view,
                                 const std::string& path) {
  std::vector<Row> rows;
  table.ScanVisible(view, [&](uint64_t r) { rows.push_back(table.GetRow(r)); });
  return dfs_->Write(path, RenderTsv(table.schema(), rows));
}

StatusOr<ColumnTable*> DfsTableConnector::Import(const std::string& path,
                                                 const std::string& table_name,
                                                 Database* db, TransactionManager* tm) {
  POLY_ASSIGN_OR_RETURN(std::string data, dfs_->Read(path));
  POLY_ASSIGN_OR_RETURN(auto parsed, ParseTsv(data));
  POLY_ASSIGN_OR_RETURN(ColumnTable * table,
                        db->CreateTable(table_name, std::move(parsed.first)));
  auto txn = tm->Begin();
  for (const Row& row : parsed.second) {
    POLY_RETURN_IF_ERROR(tm->Insert(txn.get(), table, row));
  }
  POLY_RETURN_IF_ERROR(tm->Commit(txn.get()));
  return table;
}

StatusOr<uint64_t> DfsTableConnector::AppendTo(const std::string& path, ColumnTable* table,
                                               TransactionManager* tm) {
  POLY_ASSIGN_OR_RETURN(std::string data, dfs_->Read(path));
  POLY_ASSIGN_OR_RETURN(auto parsed, ParseTsv(data));
  if (parsed.first.num_columns() != table->schema().num_columns()) {
    return Status::InvalidArgument("TSV schema width does not match table " +
                                   table->name());
  }
  auto txn = tm->Begin();
  for (const Row& row : parsed.second) {
    POLY_RETURN_IF_ERROR(tm->Insert(txn.get(), table, row));
  }
  POLY_RETURN_IF_ERROR(tm->Commit(txn.get()));
  return parsed.second.size();
}

}  // namespace poly
