#ifndef POLY_HADOOP_MAPREDUCE_H_
#define POLY_HADOOP_MAPREDUCE_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "hadoop/dfs.h"

namespace poly {

/// Key/value pair flowing between map and reduce.
struct KeyValue {
  std::string key;
  std::string value;
};

/// Map task: one input line -> zero or more key/value pairs.
using MapFn = std::function<std::vector<KeyValue>(const std::string& line)>;
/// Reduce task: key + all values -> zero or more output lines.
using ReduceFn = std::function<std::vector<std::string>(
    const std::string& key, const std::vector<std::string>& values)>;

/// Per-job execution metrics.
struct MapReduceStats {
  size_t map_tasks = 0;
  size_t reduce_tasks = 0;
  uint64_t map_output_pairs = 0;
  uint64_t input_bytes = 0;
};

/// Line-oriented MapReduce over SimulatedDfs files (§IV-C substitution for
/// the Hadoop runtime): one map task per DFS block, hash shuffle, parallel
/// reducers, output written back to the DFS.
class MapReduceJob {
 public:
  MapReduceJob(SimulatedDfs* dfs, ThreadPool* pool) : dfs_(dfs), pool_(pool) {}

  /// Runs map/shuffle/reduce over `input_path`, writes sorted "key\tvalue"
  /// lines to `output_path`. `num_reducers` partitions the shuffle.
  StatusOr<MapReduceStats> Run(const std::string& input_path,
                               const std::string& output_path, const MapFn& map_fn,
                               const ReduceFn& reduce_fn, size_t num_reducers = 4);

 private:
  SimulatedDfs* dfs_;
  ThreadPool* pool_;
};

/// Convenience: word-count style counting of the first tab-field.
StatusOr<MapReduceStats> RunWordCount(SimulatedDfs* dfs, ThreadPool* pool,
                                      const std::string& input_path,
                                      const std::string& output_path);

}  // namespace poly

#endif  // POLY_HADOOP_MAPREDUCE_H_
