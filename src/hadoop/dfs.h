#ifndef POLY_HADOOP_DFS_H_
#define POLY_HADOOP_DFS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace poly {

/// Simulated HDFS (§IV-C substitution): a namenode-style catalog of files
/// split into fixed-size blocks, each replicated across simulated data
/// nodes. "Reads" charge a configurable cold-storage cost so the tiering
/// and federation experiments (E1, E15) see a realistic hot/cold gap.
class SimulatedDfs {
 public:
  struct Options {
    size_t block_size = 4 * 1024;      ///< bytes per block
    int num_data_nodes = 4;
    int replication = 2;
    /// Simulated cost accounting (no real sleeping): ns charged per byte
    /// read + flat ns per block access. Exposed via simulated_read_nanos().
    double read_nanos_per_byte = 10.0;  ///< ~100 MB/s "disk"
    double seek_nanos_per_block = 5e6;  ///< 5 ms per block "seek"
  };

  SimulatedDfs();
  explicit SimulatedDfs(Options options);

  /// Creates/overwrites a file.
  Status Write(const std::string& path, const std::string& data);
  /// Appends to an existing file (creates it if absent).
  Status Append(const std::string& path, const std::string& data);
  /// Reads a whole file (charges simulated cost).
  StatusOr<std::string> Read(const std::string& path);
  /// Reads one block of a file by index (charges simulated cost).
  StatusOr<std::string> ReadBlock(const std::string& path, size_t block_index);

  Status Delete(const std::string& path);
  bool Exists(const std::string& path) const;
  std::vector<std::string> ListFiles(const std::string& prefix = "") const;

  StatusOr<size_t> FileSize(const std::string& path) const;
  StatusOr<size_t> NumBlocks(const std::string& path) const;
  /// Data nodes holding a given block (for locality-aware MapReduce).
  StatusOr<std::vector<int>> BlockLocations(const std::string& path,
                                            size_t block_index) const;

  /// Marks a data node dead; its replicas become unavailable.
  Status KillDataNode(int node);
  /// Re-replicates under-replicated blocks onto surviving nodes.
  Status ReReplicate();

  int num_data_nodes() const { return static_cast<int>(nodes_alive_.size()); }
  size_t block_size() const { return options_.block_size; }
  /// Cost-model knobs, exposed so the tiering daemon can price cold moves
  /// relative to the warm tier (DfsTierStore::CostFactorVersus).
  const Options& options() const { return options_; }
  /// Total simulated read cost accrued (nanoseconds).
  double simulated_read_nanos() const { return simulated_read_nanos_; }
  uint64_t bytes_read() const { return bytes_read_; }

 private:
  struct Block {
    uint64_t id;
    std::string data;
    std::vector<int> replicas;  ///< data node ids
  };
  struct FileEntry {
    std::vector<uint64_t> blocks;
    size_t size = 0;
  };

  /// Picks `replication` distinct live nodes round-robin.
  StatusOr<std::vector<int>> PickNodes();
  Status WriteLocked(const std::string& path, const std::string& data);
  void ChargeRead(size_t bytes, size_t blocks);

  Options options_;
  mutable std::mutex mu_;
  std::map<std::string, FileEntry> files_;
  std::unordered_map<uint64_t, Block> blocks_;
  std::vector<bool> nodes_alive_;
  uint64_t next_block_id_ = 1;
  int next_node_rr_ = 0;
  double simulated_read_nanos_ = 0;
  uint64_t bytes_read_ = 0;
};

}  // namespace poly

#endif  // POLY_HADOOP_DFS_H_
