#include "hadoop/mapreduce.h"

#include <map>

#include "common/string_util.h"

namespace poly {

StatusOr<MapReduceStats> MapReduceJob::Run(const std::string& input_path,
                                           const std::string& output_path,
                                           const MapFn& map_fn, const ReduceFn& reduce_fn,
                                           size_t num_reducers) {
  if (num_reducers == 0) return Status::InvalidArgument("need >= 1 reducer");
  MapReduceStats stats;
  // Input split: one map task per DFS block. Records (lines) may straddle
  // block boundaries, so the split is done on the line-merged file while
  // the task count and read cost still follow the physical blocks.
  POLY_ASSIGN_OR_RETURN(std::string data, dfs_->Read(input_path));
  POLY_ASSIGN_OR_RETURN(size_t num_blocks, dfs_->NumBlocks(input_path));
  stats.input_bytes = data.size();
  std::vector<std::string> lines = SplitString(data, '\n');
  if (!lines.empty() && lines.back().empty()) lines.pop_back();

  size_t num_map_tasks = std::max<size_t>(1, num_blocks);
  size_t lines_per_task = (lines.size() + num_map_tasks - 1) / num_map_tasks;
  if (lines_per_task == 0) lines_per_task = 1;
  num_map_tasks = lines.empty() ? 0 : (lines.size() + lines_per_task - 1) / lines_per_task;
  stats.map_tasks = num_map_tasks;

  // Map phase.
  std::vector<std::vector<KeyValue>> map_outputs(num_map_tasks);
  pool_->ParallelFor(num_map_tasks, [&](size_t task) {
    size_t begin = task * lines_per_task;
    size_t end = std::min(lines.size(), begin + lines_per_task);
    std::vector<KeyValue>& out = map_outputs[task];
    for (size_t i = begin; i < end; ++i) {
      std::vector<KeyValue> pairs = map_fn(lines[i]);
      out.insert(out.end(), std::make_move_iterator(pairs.begin()),
                 std::make_move_iterator(pairs.end()));
    }
  });

  // Shuffle: hash-partition keys across reducers.
  std::vector<std::map<std::string, std::vector<std::string>>> partitions(num_reducers);
  std::hash<std::string> hasher;
  for (auto& out : map_outputs) {
    stats.map_output_pairs += out.size();
    for (auto& kv : out) {
      partitions[hasher(kv.key) % num_reducers][kv.key].push_back(std::move(kv.value));
    }
  }
  stats.reduce_tasks = num_reducers;

  // Reduce phase.
  std::vector<std::string> reducer_outputs(num_reducers);
  pool_->ParallelFor(num_reducers, [&](size_t r) {
    std::string& out = reducer_outputs[r];
    for (const auto& [key, values] : partitions[r]) {
      for (const std::string& line : reduce_fn(key, values)) {
        out += line;
        out += '\n';
      }
    }
  });

  std::string output;
  for (const auto& part : reducer_outputs) output += part;
  POLY_RETURN_IF_ERROR(dfs_->Write(output_path, output));
  return stats;
}

StatusOr<MapReduceStats> RunWordCount(SimulatedDfs* dfs, ThreadPool* pool,
                                      const std::string& input_path,
                                      const std::string& output_path) {
  MapReduceJob job(dfs, pool);
  MapFn map_fn = [](const std::string& line) {
    std::vector<KeyValue> out;
    auto fields = SplitString(line, '\t');
    if (!fields.empty() && !fields[0].empty()) out.push_back({fields[0], "1"});
    return out;
  };
  ReduceFn reduce_fn = [](const std::string& key, const std::vector<std::string>& values) {
    return std::vector<std::string>{key + "\t" + std::to_string(values.size())};
  };
  return job.Run(input_path, output_path, map_fn, reduce_fn);
}

}  // namespace poly
