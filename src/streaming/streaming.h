#ifndef POLY_STREAMING_STREAMING_H_
#define POLY_STREAMING_STREAMING_H_

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/column_table.h"
#include "txn/transaction_manager.h"

namespace poly {

/// Streaming engine (Figure 4: "HANA Streaming Engine (ESP)"; Figure 1's
/// "Streaming" ingestion edge): events flow through a small operator
/// pipeline — filter, transform, windowed aggregation — and land in column
/// tables, which is how high-throughput sensor/twitter-style feeds reach
/// the relational world.
///
/// An event is a Row tagged with an event timestamp (microseconds).
struct StreamEvent {
  int64_t timestamp = 0;
  Row values;
};

/// Result of a closed window.
struct WindowResult {
  int64_t window_start = 0;  ///< inclusive, aligned to window size
  Value key;                 ///< group key (Null when ungrouped)
  uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
};

/// Tumbling-window aggregator over one numeric field, optionally grouped by
/// a key field. Events may arrive slightly out of order within
/// `allowed_lateness`; windows close when the watermark (max event time -
/// lateness) passes their end, which is when results are emitted.
class TumblingWindow {
 public:
  /// `value_index`: row position of the aggregated numeric field;
  /// `key_index`: row position of the group key, or -1 for one global group.
  TumblingWindow(int64_t window_micros, size_t value_index, int key_index = -1,
                 int64_t allowed_lateness = 0);

  /// Feeds one event; returns any windows that closed as a consequence.
  std::vector<WindowResult> OnEvent(const StreamEvent& event);

  /// Closes every open window regardless of watermark (end of stream).
  std::vector<WindowResult> Flush();

  /// Events that arrived behind the watermark and were dropped.
  uint64_t late_events() const { return late_events_; }

 private:
  struct Accum {
    uint64_t count = 0;
    double sum = 0, min = 0, max = 0;
  };

  std::vector<WindowResult> CloseThrough(int64_t watermark);

  int64_t window_micros_;
  size_t value_index_;
  int key_index_;
  int64_t lateness_;
  int64_t max_event_time_ = INT64_MIN;
  uint64_t late_events_ = 0;
  // window start -> key -> accumulator (std::map: windows close in order).
  std::map<int64_t, std::map<Value, Accum>> open_;
};

/// A push-based stream pipeline: source -> stages -> sinks. Stages run in
/// arrival order; sinks receive what survives. Not thread-safe (one
/// ingestion thread, like one ESP project stream).
class StreamPipeline {
 public:
  using EventPredicate = std::function<bool(const StreamEvent&)>;
  using EventMapper = std::function<StreamEvent(const StreamEvent&)>;
  using EventSink = std::function<void(const StreamEvent&)>;
  using WindowSink = std::function<void(const WindowResult&)>;

  StreamPipeline& Filter(EventPredicate predicate);
  StreamPipeline& Map(EventMapper mapper);
  /// Adds a windowed aggregation; closed windows go to `sink`.
  StreamPipeline& Window(std::unique_ptr<TumblingWindow> window, WindowSink sink);
  /// Raw event sink (e.g. append to a table).
  StreamPipeline& Sink(EventSink sink);

  /// Pushes one event through the pipeline.
  void Push(const StreamEvent& event);
  /// Pushes a batch (events are processed in the given order).
  void PushBatch(const std::vector<StreamEvent>& events);
  /// End of stream: flushes all windows into their sinks.
  void Finish();

  uint64_t events_in() const { return events_in_; }
  uint64_t events_out() const { return events_out_; }

 private:
  struct WindowStage {
    std::unique_ptr<TumblingWindow> window;
    WindowSink sink;
  };
  struct Stage {
    EventPredicate filter;  // exactly one member set
    EventMapper mapper;
    int window_index = -1;
  };

  std::vector<Stage> stages_;
  std::vector<WindowStage> windows_;
  std::vector<EventSink> sinks_;
  uint64_t events_in_ = 0;
  uint64_t events_out_ = 0;
};

/// Sink adaptor: appends surviving events into a column table as committed
/// rows (timestamp column first, then the event values). The table schema
/// must be (ts TIMESTAMP, ...event columns). This is the Figure 1
/// streaming-to-store ingestion edge.
class TableStreamSink {
 public:
  TableStreamSink(TransactionManager* tm, ColumnTable* table) : tm_(tm), table_(table) {}

  StreamPipeline::EventSink AsSink();
  uint64_t rows_written() const { return rows_written_; }
  /// First error encountered while writing, if any.
  const Status& status() const { return status_; }

 private:
  TransactionManager* tm_;
  ColumnTable* table_;
  uint64_t rows_written_ = 0;
  Status status_;
};

}  // namespace poly

#endif  // POLY_STREAMING_STREAMING_H_
