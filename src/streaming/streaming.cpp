#include "streaming/streaming.h"

#include <algorithm>

namespace poly {

TumblingWindow::TumblingWindow(int64_t window_micros, size_t value_index, int key_index,
                               int64_t allowed_lateness)
    : window_micros_(window_micros > 0 ? window_micros : 1),
      value_index_(value_index),
      key_index_(key_index),
      lateness_(allowed_lateness) {}

std::vector<WindowResult> TumblingWindow::CloseThrough(int64_t watermark) {
  std::vector<WindowResult> out;
  while (!open_.empty()) {
    auto it = open_.begin();
    int64_t window_end = it->first + window_micros_;
    if (window_end > watermark) break;
    for (const auto& [key, acc] : it->second) {
      WindowResult r;
      r.window_start = it->first;
      r.key = key;
      r.count = acc.count;
      r.sum = acc.sum;
      r.min = acc.min;
      r.max = acc.max;
      out.push_back(std::move(r));
    }
    open_.erase(it);
  }
  return out;
}

std::vector<WindowResult> TumblingWindow::OnEvent(const StreamEvent& event) {
  int64_t watermark =
      max_event_time_ == INT64_MIN ? INT64_MIN : max_event_time_ - lateness_;
  if (event.timestamp < watermark &&
      event.timestamp / window_micros_ * window_micros_ + window_micros_ <= watermark) {
    // The window this event belongs to has already been emitted.
    ++late_events_;
    return {};
  }
  max_event_time_ = std::max(max_event_time_, event.timestamp);

  int64_t start = event.timestamp / window_micros_ * window_micros_;
  if (event.timestamp < 0 && event.timestamp % window_micros_ != 0) {
    start -= window_micros_;  // floor division for negative timestamps
  }
  Value key = key_index_ >= 0 && static_cast<size_t>(key_index_) < event.values.size()
                  ? event.values[key_index_]
                  : Value::Null();
  double v = value_index_ < event.values.size()
                 ? event.values[value_index_].NumericValue()
                 : 0.0;
  Accum& acc = open_[start][key];
  if (acc.count == 0) {
    acc.min = acc.max = v;
  } else {
    acc.min = std::min(acc.min, v);
    acc.max = std::max(acc.max, v);
  }
  ++acc.count;
  acc.sum += v;

  return CloseThrough(max_event_time_ - lateness_);
}

std::vector<WindowResult> TumblingWindow::Flush() {
  return CloseThrough(INT64_MAX);
}

StreamPipeline& StreamPipeline::Filter(EventPredicate predicate) {
  Stage s;
  s.filter = std::move(predicate);
  stages_.push_back(std::move(s));
  return *this;
}

StreamPipeline& StreamPipeline::Map(EventMapper mapper) {
  Stage s;
  s.mapper = std::move(mapper);
  stages_.push_back(std::move(s));
  return *this;
}

StreamPipeline& StreamPipeline::Window(std::unique_ptr<TumblingWindow> window,
                                       WindowSink sink) {
  Stage s;
  s.window_index = static_cast<int>(windows_.size());
  windows_.push_back({std::move(window), std::move(sink)});
  stages_.push_back(std::move(s));
  return *this;
}

StreamPipeline& StreamPipeline::Sink(EventSink sink) {
  sinks_.push_back(std::move(sink));
  return *this;
}

void StreamPipeline::Push(const StreamEvent& event) {
  ++events_in_;
  StreamEvent current = event;
  for (const Stage& stage : stages_) {
    if (stage.filter) {
      if (!stage.filter(current)) return;
    } else if (stage.mapper) {
      current = stage.mapper(current);
    } else {
      WindowStage& ws = windows_[static_cast<size_t>(stage.window_index)];
      for (const WindowResult& result : ws.window->OnEvent(current)) {
        ws.sink(result);
      }
    }
  }
  ++events_out_;
  for (const EventSink& sink : sinks_) sink(current);
}

void StreamPipeline::PushBatch(const std::vector<StreamEvent>& events) {
  for (const StreamEvent& e : events) Push(e);
}

void StreamPipeline::Finish() {
  for (WindowStage& ws : windows_) {
    for (const WindowResult& result : ws.window->Flush()) ws.sink(result);
  }
}

StreamPipeline::EventSink TableStreamSink::AsSink() {
  return [this](const StreamEvent& event) {
    if (!status_.ok()) return;
    Row row;
    row.reserve(event.values.size() + 1);
    row.push_back(Value::Timestamp(event.timestamp));
    row.insert(row.end(), event.values.begin(), event.values.end());
    auto txn = tm_->Begin();
    Status s = tm_->Insert(txn.get(), table_, row);
    if (s.ok()) s = tm_->Commit(txn.get());
    if (!s.ok()) {
      status_ = s;
      return;
    }
    ++rows_written_;
  };
}

}  // namespace poly
