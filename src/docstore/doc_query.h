#ifndef POLY_DOCSTORE_DOC_QUERY_H_
#define POLY_DOCSTORE_DOC_QUERY_H_

#include <string>
#include <vector>

#include "docstore/json.h"
#include "query/expr.h"
#include "storage/column_table.h"

namespace poly {

/// Path into a JSON document — the compact core of the §II-H "XQuery like
/// language which is embedded into the SQL statement". Grammar:
///   $            root
///   .name        object field
///   [3]          array index
///   [*]          every array element
/// e.g. "$.items[*].sku", "$.customer.address.city".
class DocPath {
 public:
  static StatusOr<DocPath> Parse(const std::string& text);

  /// All values reached by the path (empty if none).
  std::vector<const JsonValue*> Evaluate(const JsonValue& root) const;

  /// First match or null.
  const JsonValue* First(const JsonValue& root) const;

  std::string ToString() const;

 private:
  struct Segment {
    enum class Kind { kField, kIndex, kWildcard } kind = Kind::kField;
    std::string field;
    size_t index = 0;
  };
  std::vector<Segment> segments_;
};

/// Queries over a DOCUMENT column of a relational table: "the outcome of a
/// 'document' query is a set of rows of the table which contains the
/// document as a cell".
class DocQuery {
 public:
  /// `column` must have DataType::kDocument.
  static StatusOr<DocQuery> Create(const ColumnTable* table, const std::string& column);

  /// Rows whose document has >= 1 value at `path` satisfying `op` against
  /// `literal` (numbers compare numerically, strings lexically).
  StatusOr<std::vector<uint64_t>> SelectWhere(const ReadView& view, const std::string& path,
                                              CmpOp op, const JsonValue& literal) const;

  /// Rows where the path exists at all.
  StatusOr<std::vector<uint64_t>> SelectExists(const ReadView& view,
                                               const std::string& path) const;

  /// Extracts the first path match per row as (row, value) pairs.
  StatusOr<std::vector<std::pair<uint64_t, JsonValue>>> Extract(
      const ReadView& view, const std::string& path) const;

 private:
  DocQuery(const ColumnTable* table, size_t column) : table_(table), column_(column) {}

  const ColumnTable* table_;
  size_t column_;
};

/// True when `lhs <op> rhs` under JSON comparison semantics (numbers
/// numerically, strings lexically, bools as 0/1; mixed kinds only for Eq/Ne).
bool JsonCompare(CmpOp op, const JsonValue& lhs, const JsonValue& rhs);

}  // namespace poly

#endif  // POLY_DOCSTORE_DOC_QUERY_H_
