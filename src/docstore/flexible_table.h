#ifndef POLY_DOCSTORE_FLEXIBLE_TABLE_H_
#define POLY_DOCSTORE_FLEXIBLE_TABLE_H_

#include <map>
#include <string>

#include "storage/column_table.h"
#include "txn/transaction_manager.h"

namespace poly {

/// Flexible table (§II-H): "column definition is not a DDL but implicitly
/// triggered via a DML operation". Inserts are attribute maps; unseen
/// attribute names implicitly extend the schema (nullable columns), and
/// absent attributes read NULL. The dictionary layer keeps very sparse
/// columns cheap — E9 measures that.
class FlexibleTable {
 public:
  /// Wraps a (possibly empty) column table; `table` and `tm` must outlive
  /// the wrapper. Writers must be serialized by the caller.
  FlexibleTable(TransactionManager* tm, ColumnTable* table) : tm_(tm), table_(table) {}

  /// Inserts one record; missing columns are created with the type of the
  /// first value seen for them. Fails if a value's type contradicts an
  /// existing column's type.
  Status Insert(const std::map<std::string, Value>& record);

  /// Number of (visible) records under a fresh snapshot.
  uint64_t NumRecords() const;

  ColumnTable* table() { return table_; }

 private:
  TransactionManager* tm_;
  ColumnTable* table_;
};

}  // namespace poly

#endif  // POLY_DOCSTORE_FLEXIBLE_TABLE_H_
