#ifndef POLY_DOCSTORE_OBJECT_INDEX_H_
#define POLY_DOCSTORE_OBJECT_INDEX_H_

#include <string>

#include "docstore/json.h"
#include "storage/column_table.h"
#include "txn/transaction_manager.h"

namespace poly {

/// The §II-H "object" join index: a header–item structure with 1:N
/// cardinality whose instances are always written and read as a whole can
/// be materialized as one JSON document per header — "a kind of
/// materialized index on top of the relational data [...] transparently
/// exploited by the retrieval process". E9 measures whole-object retrieval
/// through this index vs. the header⋈item join.
class ObjectJoinIndex {
 public:
  /// Builds documents of the form
  ///   {"header": {col: value...}, "items": [{col: value...}, ...]}
  /// for every visible header row, keyed by `header_key_column` ==
  /// `item_fk_column`, into `target` with schema (key INT64, doc DOCUMENT).
  static StatusOr<uint64_t> Materialize(TransactionManager* tm,
                                        const ColumnTable& header,
                                        const std::string& header_key_column,
                                        const ColumnTable& items,
                                        const std::string& item_fk_column,
                                        ColumnTable* target);

  /// Fetches the materialized object for a key (parsed document), or
  /// NotFound. This is the fast path the paper describes.
  static StatusOr<JsonValue> Lookup(const ColumnTable& target, const ReadView& view,
                                    int64_t key);
};

}  // namespace poly

#endif  // POLY_DOCSTORE_OBJECT_INDEX_H_
