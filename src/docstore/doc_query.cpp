#include "docstore/doc_query.h"

#include <cctype>

namespace poly {

StatusOr<DocPath> DocPath::Parse(const std::string& text) {
  DocPath path;
  size_t i = 0;
  if (i < text.size() && text[i] == '$') ++i;
  while (i < text.size()) {
    if (text[i] == '.') {
      ++i;
      size_t start = i;
      while (i < text.size() && text[i] != '.' && text[i] != '[') ++i;
      if (start == i) return Status::InvalidArgument("empty field in path " + text);
      Segment s;
      s.kind = Segment::Kind::kField;
      s.field = text.substr(start, i - start);
      path.segments_.push_back(std::move(s));
    } else if (text[i] == '[') {
      ++i;
      if (i < text.size() && text[i] == '*') {
        ++i;
        if (i >= text.size() || text[i] != ']') {
          return Status::InvalidArgument("expected ']' in path " + text);
        }
        ++i;
        Segment s;
        s.kind = Segment::Kind::kWildcard;
        path.segments_.push_back(s);
      } else {
        size_t start = i;
        while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) ++i;
        if (start == i || i >= text.size() || text[i] != ']') {
          return Status::InvalidArgument("bad index in path " + text);
        }
        Segment s;
        s.kind = Segment::Kind::kIndex;
        s.index = std::stoul(text.substr(start, i - start));
        ++i;
        path.segments_.push_back(s);
      }
    } else {
      return Status::InvalidArgument("unexpected '" + std::string(1, text[i]) +
                                     "' in path " + text);
    }
  }
  return path;
}

std::vector<const JsonValue*> DocPath::Evaluate(const JsonValue& root) const {
  std::vector<const JsonValue*> current = {&root};
  for (const Segment& seg : segments_) {
    std::vector<const JsonValue*> next;
    for (const JsonValue* v : current) {
      switch (seg.kind) {
        case Segment::Kind::kField: {
          const JsonValue* f = v->Field(seg.field);
          if (f) next.push_back(f);
          break;
        }
        case Segment::Kind::kIndex: {
          const JsonValue* item = v->Item(seg.index);
          if (item) next.push_back(item);
          break;
        }
        case Segment::Kind::kWildcard: {
          if (v->kind() == JsonValue::Kind::kArray) {
            for (const JsonValue& item : v->AsArray()) next.push_back(&item);
          }
          break;
        }
      }
    }
    current = std::move(next);
    if (current.empty()) break;
  }
  return current;
}

const JsonValue* DocPath::First(const JsonValue& root) const {
  auto matches = Evaluate(root);
  return matches.empty() ? nullptr : matches[0];
}

std::string DocPath::ToString() const {
  std::string out = "$";
  for (const Segment& s : segments_) {
    switch (s.kind) {
      case Segment::Kind::kField: out += "." + s.field; break;
      case Segment::Kind::kIndex: out += "[" + std::to_string(s.index) + "]"; break;
      case Segment::Kind::kWildcard: out += "[*]"; break;
    }
  }
  return out;
}

bool JsonCompare(CmpOp op, const JsonValue& lhs, const JsonValue& rhs) {
  using Kind = JsonValue::Kind;
  if (lhs.kind() != rhs.kind()) {
    if (op == CmpOp::kNe) return true;
    return false;
  }
  int cmp = 0;
  switch (lhs.kind()) {
    case Kind::kNumber:
      cmp = lhs.AsNumber() < rhs.AsNumber() ? -1 : (lhs.AsNumber() > rhs.AsNumber() ? 1 : 0);
      break;
    case Kind::kString:
      cmp = lhs.AsString().compare(rhs.AsString());
      cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
      break;
    case Kind::kBool:
      cmp = static_cast<int>(lhs.AsBool()) - static_cast<int>(rhs.AsBool());
      break;
    default:
      // Arrays/objects/null: only equality semantics.
      cmp = lhs == rhs ? 0 : 2;
  }
  switch (op) {
    case CmpOp::kEq: return cmp == 0;
    case CmpOp::kNe: return cmp != 0;
    case CmpOp::kLt: return cmp == -1;
    case CmpOp::kLe: return cmp == -1 || cmp == 0;
    case CmpOp::kGt: return cmp == 1;
    case CmpOp::kGe: return cmp == 1 || cmp == 0;
  }
  return false;
}

StatusOr<DocQuery> DocQuery::Create(const ColumnTable* table, const std::string& column) {
  POLY_ASSIGN_OR_RETURN(size_t col, table->schema().IndexOf(column));
  if (table->schema().column(col).type != DataType::kDocument) {
    return Status::InvalidArgument("column " + column + " is not DOCUMENT");
  }
  return DocQuery(table, col);
}

StatusOr<std::vector<uint64_t>> DocQuery::SelectWhere(const ReadView& view,
                                                      const std::string& path, CmpOp op,
                                                      const JsonValue& literal) const {
  POLY_ASSIGN_OR_RETURN(DocPath parsed, DocPath::Parse(path));
  std::vector<uint64_t> rows;
  Status status = Status::OK();
  table_->ScanVisible(view, [&](uint64_t r) {
    if (!status.ok()) return;
    Value cell = table_->GetValue(r, column_);
    if (cell.is_null()) return;
    auto doc = ParseJson(cell.AsString());
    if (!doc.ok()) {
      status = doc.status();
      return;
    }
    for (const JsonValue* v : parsed.Evaluate(*doc)) {
      if (JsonCompare(op, *v, literal)) {
        rows.push_back(r);
        break;
      }
    }
  });
  POLY_RETURN_IF_ERROR(status);
  return rows;
}

StatusOr<std::vector<uint64_t>> DocQuery::SelectExists(const ReadView& view,
                                                       const std::string& path) const {
  POLY_ASSIGN_OR_RETURN(DocPath parsed, DocPath::Parse(path));
  std::vector<uint64_t> rows;
  Status status = Status::OK();
  table_->ScanVisible(view, [&](uint64_t r) {
    if (!status.ok()) return;
    Value cell = table_->GetValue(r, column_);
    if (cell.is_null()) return;
    auto doc = ParseJson(cell.AsString());
    if (!doc.ok()) {
      status = doc.status();
      return;
    }
    if (!parsed.Evaluate(*doc).empty()) rows.push_back(r);
  });
  POLY_RETURN_IF_ERROR(status);
  return rows;
}

StatusOr<std::vector<std::pair<uint64_t, JsonValue>>> DocQuery::Extract(
    const ReadView& view, const std::string& path) const {
  POLY_ASSIGN_OR_RETURN(DocPath parsed, DocPath::Parse(path));
  std::vector<std::pair<uint64_t, JsonValue>> out;
  Status status = Status::OK();
  table_->ScanVisible(view, [&](uint64_t r) {
    if (!status.ok()) return;
    Value cell = table_->GetValue(r, column_);
    if (cell.is_null()) return;
    auto doc = ParseJson(cell.AsString());
    if (!doc.ok()) {
      status = doc.status();
      return;
    }
    const JsonValue* v = parsed.First(*doc);
    if (v) out.emplace_back(r, *v);
  });
  POLY_RETURN_IF_ERROR(status);
  return out;
}

}  // namespace poly
