#include "docstore/object_index.h"

#include <map>
#include <unordered_map>
#include <vector>

namespace poly {

namespace {

JsonValue RowToJson(const ColumnTable& table, uint64_t row) {
  std::map<std::string, JsonValue> fields;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const std::string& name = table.schema().column(c).name;
    Value v = table.GetValue(row, c);
    switch (v.type()) {
      case DataType::kNull:
        fields[name] = JsonValue::Null();
        break;
      case DataType::kInt64:
      case DataType::kTimestamp:
      case DataType::kDouble:
        fields[name] = JsonValue::Number(v.NumericValue());
        break;
      case DataType::kBool:
        fields[name] = JsonValue::Bool(v.AsBool());
        break;
      default:
        fields[name] = JsonValue::Str(v.ToString());
    }
  }
  return JsonValue::Object(std::move(fields));
}

}  // namespace

StatusOr<uint64_t> ObjectJoinIndex::Materialize(TransactionManager* tm,
                                                const ColumnTable& header,
                                                const std::string& header_key_column,
                                                const ColumnTable& items,
                                                const std::string& item_fk_column,
                                                ColumnTable* target) {
  POLY_ASSIGN_OR_RETURN(size_t hk, header.schema().IndexOf(header_key_column));
  POLY_ASSIGN_OR_RETURN(size_t fk, items.schema().IndexOf(item_fk_column));
  if (target->schema().num_columns() != 2 ||
      target->schema().column(1).type != DataType::kDocument) {
    return Status::InvalidArgument("object index target must be (key, doc DOCUMENT)");
  }
  ReadView view = tm->AutoCommitView();

  std::unordered_map<int64_t, std::vector<JsonValue>> items_by_key;
  items.ScanVisible(view, [&](uint64_t r) {
    Value key = items.GetValue(r, fk);
    if (key.is_null()) return;
    items_by_key[key.AsInt()].push_back(RowToJson(items, r));
  });

  auto txn = tm->Begin();
  uint64_t written = 0;
  Status status = Status::OK();
  header.ScanVisible(view, [&](uint64_t r) {
    if (!status.ok()) return;
    Value key = header.GetValue(r, hk);
    if (key.is_null()) return;
    std::map<std::string, JsonValue> object;
    object["header"] = RowToJson(header, r);
    auto it = items_by_key.find(key.AsInt());
    object["items"] = JsonValue::Array(
        it == items_by_key.end() ? std::vector<JsonValue>{} : it->second);
    std::string doc = JsonValue::Object(std::move(object)).Serialize();
    status = tm->Insert(txn.get(), target,
                        {Value::Int(key.AsInt()), Value::Document(std::move(doc))});
    if (status.ok()) ++written;
  });
  POLY_RETURN_IF_ERROR(status);
  POLY_RETURN_IF_ERROR(tm->Commit(txn.get()));
  return written;
}

StatusOr<JsonValue> ObjectJoinIndex::Lookup(const ColumnTable& target,
                                            const ReadView& view, int64_t key) {
  StatusOr<JsonValue> result = Status::NotFound("no object for key " + std::to_string(key));
  target.ScanVisible(view, [&](uint64_t r) {
    if (result.ok()) return;
    Value k = target.GetValue(r, 0);
    if (!k.is_null() && k.AsInt() == key) {
      Value doc = target.GetValue(r, 1);
      if (!doc.is_null()) result = ParseJson(doc.AsString());
    }
  });
  return result;
}

}  // namespace poly
