#include "docstore/flexible_table.h"

namespace poly {

Status FlexibleTable::Insert(const std::map<std::string, Value>& record) {
  // Implicit DDL: create any unseen columns first.
  for (const auto& [name, value] : record) {
    if (table_->schema().Contains(name)) {
      size_t idx = *table_->schema().IndexOf(name);
      DataType existing = table_->schema().column(idx).type;
      if (!value.is_null() && value.type() != existing) {
        return Status::InvalidArgument(
            "type conflict for flexible column '" + name + "': column is " +
            DataTypeName(existing) + ", value is " + DataTypeName(value.type()));
      }
    } else {
      DataType type = value.is_null() ? DataType::kString : value.type();
      POLY_RETURN_IF_ERROR(table_->AddColumn(ColumnDef(name, type, /*null_ok=*/true)));
    }
  }
  Row row(table_->schema().num_columns(), Value::Null());
  for (const auto& [name, value] : record) {
    row[*table_->schema().IndexOf(name)] = value;
  }
  auto txn = tm_->Begin();
  POLY_RETURN_IF_ERROR(tm_->Insert(txn.get(), table_, row));
  return tm_->Commit(txn.get());
}

uint64_t FlexibleTable::NumRecords() const {
  return table_->CountVisible(tm_->AutoCommitView());
}

}  // namespace poly
