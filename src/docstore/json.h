#ifndef POLY_DOCSTORE_JSON_H_
#define POLY_DOCSTORE_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace poly {

/// JSON document model backing the §II-H "document" column type: "the
/// content (the document) is structured in an arbitrary JSON format".
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double n);
  static JsonValue Str(std::string s);
  static JsonValue Array(std::vector<JsonValue> items);
  static JsonValue Object(std::map<std::string, JsonValue> fields);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }
  const std::vector<JsonValue>& AsArray() const { return array_; }
  const std::map<std::string, JsonValue>& AsObject() const { return object_; }

  /// Object field pointer or nullptr.
  const JsonValue* Field(const std::string& name) const;
  /// Array element pointer or nullptr.
  const JsonValue* Item(size_t index) const;

  /// Compact JSON text.
  std::string Serialize() const;

  bool operator==(const JsonValue& o) const;

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Recursive-descent JSON parser; Corruption on malformed input.
StatusOr<JsonValue> ParseJson(const std::string& text);

}  // namespace poly

#endif  // POLY_DOCSTORE_JSON_H_
