#include "docstore/json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <sstream>

namespace poly {

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double n) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::Str(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::Object(std::map<std::string, JsonValue> fields) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(fields);
  return v;
}

const JsonValue* JsonValue::Field(const std::string& name) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = object_.find(name);
  return it == object_.end() ? nullptr : &it->second;
}

const JsonValue* JsonValue::Item(size_t index) const {
  if (kind_ != Kind::kArray || index >= array_.size()) return nullptr;
  return &array_[index];
}

bool JsonValue::operator==(const JsonValue& o) const {
  if (kind_ != o.kind_) return false;
  switch (kind_) {
    case Kind::kNull: return true;
    case Kind::kBool: return bool_ == o.bool_;
    case Kind::kNumber: return number_ == o.number_;
    case Kind::kString: return string_ == o.string_;
    case Kind::kArray: return array_ == o.array_;
    case Kind::kObject: return object_ == o.object_;
  }
  return false;
}

namespace {

void EscapeTo(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default: out->push_back(c);
    }
  }
  out->push_back('"');
}

}  // namespace

std::string JsonValue::Serialize() const {
  std::string out;
  switch (kind_) {
    case Kind::kNull:
      out = "null";
      break;
    case Kind::kBool:
      out = bool_ ? "true" : "false";
      break;
    case Kind::kNumber: {
      if (number_ == std::floor(number_) && std::abs(number_) < 1e15) {
        out = std::to_string(static_cast<long long>(number_));
      } else {
        std::ostringstream os;
        os << number_;
        out = os.str();
      }
      break;
    }
    case Kind::kString:
      EscapeTo(string_, &out);
      break;
    case Kind::kArray: {
      out = "[";
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i) out += ",";
        out += array_[i].Serialize();
      }
      out += "]";
      break;
    }
    case Kind::kObject: {
      out = "{";
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) out += ",";
        first = false;
        EscapeTo(k, &out);
        out += ":";
        out += v.Serialize();
      }
      out += "}";
      break;
    }
  }
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    POLY_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
    SkipWs();
    if (pos_ != text_.size()) return Err("trailing characters");
    return v;
  }

 private:
  Status Err(const std::string& what) {
    return Status::Corruption("JSON error at " + std::to_string(pos_) + ": " + what);
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  StatusOr<JsonValue> ParseValue() {
    SkipWs();
    if (pos_ >= text_.size()) return Err("unexpected end");
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      POLY_ASSIGN_OR_RETURN(std::string s, ParseString());
      return JsonValue::Str(std::move(s));
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return JsonValue::Null();
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return JsonValue::Bool(true);
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return JsonValue::Bool(false);
    }
    return ParseNumber();
  }

  StatusOr<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool digits = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      if (std::isdigit(static_cast<unsigned char>(text_[pos_]))) digits = true;
      ++pos_;
    }
    if (!digits) return Err("invalid number");
    return JsonValue::Number(std::strtod(text_.substr(start, pos_ - start).c_str(),
                                         nullptr));
  }

  StatusOr<std::string> ParseString() {
    if (text_[pos_] != '"') return Err("expected string");
    ++pos_;
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return Err("bad escape");
        char esc = text_[pos_++];
        switch (esc) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          default: return Err("unsupported escape");
        }
      } else {
        out += c;
      }
    }
    if (pos_ >= text_.size()) return Err("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  StatusOr<JsonValue> ParseArray() {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    SkipWs();
    if (Consume(']')) return JsonValue::Array(std::move(items));
    for (;;) {
      POLY_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
      items.push_back(std::move(v));
      if (Consume(']')) break;
      if (!Consume(',')) return Err("expected ',' or ']'");
    }
    return JsonValue::Array(std::move(items));
  }

  StatusOr<JsonValue> ParseObject() {
    ++pos_;  // '{'
    std::map<std::string, JsonValue> fields;
    SkipWs();
    if (Consume('}')) return JsonValue::Object(std::move(fields));
    for (;;) {
      SkipWs();
      POLY_ASSIGN_OR_RETURN(std::string key, ParseString());
      if (!Consume(':')) return Err("expected ':'");
      POLY_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
      fields.emplace(std::move(key), std::move(v));
      if (Consume('}')) break;
      if (!Consume(',')) return Err("expected ',' or '}'");
    }
    return JsonValue::Object(std::move(fields));
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<JsonValue> ParseJson(const std::string& text) { return Parser(text).Parse(); }

}  // namespace poly
