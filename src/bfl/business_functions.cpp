#include "bfl/business_functions.h"

namespace poly {

void CurrencyConverter::AddRate(const std::string& from, const std::string& to,
                                int64_t valid_from, double rate) {
  rates_[{from, to}][valid_from] = rate;
}

StatusOr<double> CurrencyConverter::DirectRate(const std::string& from,
                                               const std::string& to,
                                               int64_t date) const {
  auto it = rates_.find({from, to});
  if (it == rates_.end()) return Status::NotFound("no rate " + from + "->" + to);
  // Latest entry with valid_from <= date.
  auto rate_it = it->second.upper_bound(date);
  if (rate_it == it->second.begin()) {
    return Status::NotFound("no rate " + from + "->" + to + " valid at date " +
                            std::to_string(date));
  }
  --rate_it;
  return rate_it->second;
}

StatusOr<double> CurrencyConverter::Rate(const std::string& from, const std::string& to,
                                         int64_t date, const std::string& reference) const {
  if (from == to) return 1.0;
  auto direct = DirectRate(from, to, date);
  if (direct.ok()) return direct;
  // Inverse.
  auto inverse = DirectRate(to, from, date);
  if (inverse.ok() && *inverse != 0) return 1.0 / *inverse;
  // Triangulate through the reference currency.
  if (from != reference && to != reference) {
    auto leg1 = Rate(from, reference, date, reference);
    auto leg2 = Rate(reference, to, date, reference);
    if (leg1.ok() && leg2.ok()) return *leg1 * *leg2;
  }
  return Status::NotFound("no conversion path " + from + "->" + to);
}

StatusOr<double> CurrencyConverter::Convert(double amount, const std::string& from,
                                            const std::string& to, int64_t date) const {
  POLY_ASSIGN_OR_RETURN(double rate, Rate(from, to, date));
  return amount * rate;
}

StatusOr<double> CurrencyConverter::ConvertedSum(const ColumnTable& table,
                                                 const ReadView& view,
                                                 const std::string& amount_column,
                                                 const std::string& currency_column,
                                                 const std::string& target,
                                                 int64_t date) const {
  POLY_ASSIGN_OR_RETURN(size_t amount_col, table.schema().IndexOf(amount_column));
  POLY_ASSIGN_OR_RETURN(size_t currency_col, table.schema().IndexOf(currency_column));
  // Rates resolved once per distinct currency, not once per row.
  std::map<std::string, double> rate_cache;
  double total = 0;
  Status status = Status::OK();
  table.ScanVisible(view, [&](uint64_t r) {
    if (!status.ok()) return;
    Value amount = table.GetValue(r, amount_col);
    Value currency = table.GetValue(r, currency_col);
    if (amount.is_null() || currency.is_null()) return;
    const std::string& code = currency.AsString();
    auto it = rate_cache.find(code);
    if (it == rate_cache.end()) {
      auto rate = Rate(code, target, date);
      if (!rate.ok()) {
        status = rate.status();
        return;
      }
      it = rate_cache.emplace(code, *rate).first;
    }
    total += amount.NumericValue() * it->second;
  });
  POLY_RETURN_IF_ERROR(status);
  return total;
}

void UnitConverter::AddUnit(const std::string& unit, const std::string& base_unit,
                            double factor) {
  units_[unit] = {base_unit, factor};
}

StatusOr<double> UnitConverter::Convert(double quantity, const std::string& from,
                                        const std::string& to) const {
  if (from == to) return quantity;
  auto f = units_.find(from);
  auto t = units_.find(to);
  if (f == units_.end()) return Status::NotFound("unknown unit " + from);
  if (t == units_.end()) return Status::NotFound("unknown unit " + to);
  if (f->second.base != t->second.base) {
    return Status::InvalidArgument("units " + from + " and " + to +
                                   " measure different dimensions");
  }
  return quantity * f->second.factor / t->second.factor;
}

bool FactoryCalendar::IsWorkingDay(int64_t day) const {
  // Day 0 = Thursday; weekday index with Monday = 0.
  int64_t weekday = ((day + 3) % 7 + 7) % 7;
  if (weekday >= 5) return false;  // Sat/Sun
  return holidays_.count(day) == 0;
}

int64_t FactoryCalendar::AddWorkingDays(int64_t day, int n) const {
  int64_t current = day;
  while (n > 0) {
    ++current;
    if (IsWorkingDay(current)) --n;
  }
  return current;
}

int64_t FactoryCalendar::CountWorkingDays(int64_t from, int64_t to) const {
  int64_t count = 0;
  for (int64_t d = from; d < to; ++d) {
    if (IsWorkingDay(d)) ++count;
  }
  return count;
}

}  // namespace poly
