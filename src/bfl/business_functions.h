#ifndef POLY_BFL_BUSINESS_FUNCTIONS_H_
#define POLY_BFL_BUSINESS_FUNCTIONS_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/result.h"
#include "storage/column_table.h"

namespace poly {

/// Business function library (§III): "with HANA we started to
/// systematically push functionality down into the database and build
/// business application specific libraries/extensions in the DB layer".
/// Currency conversion is the paper's flagship example ("100s of lines of
/// code" in real systems; this is the faithful-in-behaviour core).

/// Date-effective currency conversion rates.
class CurrencyConverter {
 public:
  /// Registers a rate valid from `valid_from` (days since epoch) onward.
  void AddRate(const std::string& from, const std::string& to, int64_t valid_from,
               double rate);

  /// Latest rate at `date`; falls back to inverting the opposite direction,
  /// then to triangulating through `reference` (e.g. EUR).
  StatusOr<double> Rate(const std::string& from, const std::string& to, int64_t date,
                        const std::string& reference = "EUR") const;

  StatusOr<double> Convert(double amount, const std::string& from, const std::string& to,
                           int64_t date) const;

  /// The §III in-database operator: converts `amount_column` of every
  /// visible row into `target` currency using `currency_column`, returning
  /// one converted value per row — the application receives aggregated or
  /// converted data, not raw rows (E10).
  StatusOr<double> ConvertedSum(const ColumnTable& table, const ReadView& view,
                                const std::string& amount_column,
                                const std::string& currency_column,
                                const std::string& target, int64_t date) const;

 private:
  StatusOr<double> DirectRate(const std::string& from, const std::string& to,
                              int64_t date) const;

  // (from, to) -> valid_from -> rate
  std::map<std::pair<std::string, std::string>, std::map<int64_t, double>> rates_;
};

/// Unit-of-measure conversion via factors to a base unit per dimension.
class UnitConverter {
 public:
  /// Declares `unit` = `factor` * `base_unit` (base declares itself: 1.0).
  void AddUnit(const std::string& unit, const std::string& base_unit, double factor);

  StatusOr<double> Convert(double quantity, const std::string& from,
                           const std::string& to) const;

 private:
  struct UnitDef {
    std::string base;
    double factor;
  };
  std::map<std::string, UnitDef> units_;
};

/// Manufacturing calendar (§III "manufacturing calendar support"): working
/// days are Mon–Fri minus explicit holidays. Dates are days since epoch
/// with day 0 = Thursday 1970-01-01.
class FactoryCalendar {
 public:
  void AddHoliday(int64_t day) { holidays_.insert(day); }

  bool IsWorkingDay(int64_t day) const;
  /// The n-th working day strictly after `day` (n >= 1).
  int64_t AddWorkingDays(int64_t day, int n) const;
  /// Working days in [from, to).
  int64_t CountWorkingDays(int64_t from, int64_t to) const;

 private:
  std::set<int64_t> holidays_;
};

}  // namespace poly

#endif  // POLY_BFL_BUSINESS_FUNCTIONS_H_
