#ifndef POLY_STORAGE_VERSION_STORE_H_
#define POLY_STORAGE_VERSION_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "storage/epoch_gc.h"

namespace poly {

/// Reader-safe MVCC version-stamp storage (DESIGN.md §12).
///
/// Replaces the growable cts/dts vectors that made latch-free readers race
/// against writer growth: stamps live in preallocated fixed-size chunks of
/// atomics that never move once published, a chunk *directory* (an array of
/// atomic chunk pointers) is republished RCU-style when it fills, and the
/// number of fully-written rows is an atomically published *watermark* that
/// readers bound their scans by. Directories and chunks retired by growth,
/// Vacuum, or Rebuild are reclaimed with an epoch scheme (EpochGC): a reader
/// pins an epoch slot for the duration of a ReadGuard, and retired memory is
/// freed only once every pinned epoch has moved past the retirement epoch —
/// so reclamation never frees a chunk a reader still holds.
///
/// The epoch machinery lives in EpochGC and may be *shared*: a table passes
/// its own gc so one pin covers stamps AND value chunks (DESIGN.md §12.5);
/// standalone VersionStores (unit tests) default to an internally owned gc.
///
/// Thread model:
///  - any number of concurrent readers, latch-free (ReadGuard / size() /
///    ReadCts() / ReadDts()); a reader never takes a mutex;
///  - exactly one logical writer at a time (Append / WriterStore* / Rebuild);
///    callers serialize writers externally (the TransactionManager's write
///    latch, or single-threaded load/merge phases);
///  - readers may overlap *any* writer operation, including Rebuild.
class VersionStore {
 public:
  static constexpr uint64_t kDefaultChunkRows = 1024;  // power of two
  static constexpr uint64_t kIdleEpoch = EpochGC::kIdleEpoch;
  static constexpr int kReaderSlots = EpochGC::kReaderSlots;
  static constexpr uint64_t kInitialDirectoryChunks = 4;

  /// `chunk_rows` must be a power of two; small values are for tests that
  /// want to cross chunk and directory boundaries cheaply. A null `gc`
  /// means "own one" (standalone use); a table passes its shared gc.
  explicit VersionStore(uint64_t chunk_rows = kDefaultChunkRows,
                        EpochGC* gc = nullptr);
  ~VersionStore();
  VersionStore(const VersionStore&) = delete;
  VersionStore& operator=(const VersionStore&) = delete;

 private:
  /// One row version's stamps. Atomics so the commit-time in-place rewrite
  /// (txn stamp -> commit ts) is race-free against readers.
  struct Stamp {
    std::atomic<uint64_t> cts{0};
    std::atomic<uint64_t> dts{0};
  };

  /// The chunk directory. `chunks[i]` points at a preallocated array of
  /// `chunk_rows` Stamps; `watermark` is the number of fully-written rows
  /// *under this directory*. The watermark lives inside the directory so a
  /// reader always pairs a directory with a watermark that is consistent
  /// with it (a reader holding a just-replaced directory sees its frozen
  /// watermark, never the successor's larger one).
  struct Directory {
    explicit Directory(uint64_t cap)
        : capacity(cap), chunks(new std::atomic<Stamp*>[cap]) {
      for (uint64_t i = 0; i < cap; ++i)
        chunks[i].store(nullptr, std::memory_order_relaxed);
    }
    const uint64_t capacity;  // chunk slots
    std::atomic<uint64_t> watermark{0};
    std::unique_ptr<std::atomic<Stamp*>[]> chunks;
  };

 public:
  /// A pin-free stamp view: directory + watermark snapshot. The caller must
  /// hold a pin on the associated EpochGC for as long as the Snapshot is
  /// used (a table's unified ReadGuard pins once and snapshots stamps and
  /// every value structure under it). Copyable, no mutable cache — safe to
  /// share across the morsel fan-out.
  class Snapshot {
   public:
    Snapshot() = default;

    uint64_t size() const { return size_; }
    uint64_t cts(uint64_t row) const {
      return StampAt(row)->cts.load(std::memory_order_relaxed);
    }
    uint64_t dts(uint64_t row) const {
      return StampAt(row)->dts.load(std::memory_order_relaxed);
    }

   private:
    friend class VersionStore;
    Snapshot(const Directory* dir, uint64_t shift, uint64_t mask)
        : dir_(dir),
          size_(dir->watermark.load(std::memory_order_acquire)),
          shift_(shift),
          mask_(mask) {}

    const Stamp* StampAt(uint64_t row) const {
      return dir_->chunks[row >> shift_].load(std::memory_order_acquire) +
             (row & mask_);
    }

    const Directory* dir_ = nullptr;
    uint64_t size_ = 0;
    uint64_t shift_ = 0;
    uint64_t mask_ = 0;
  };

  /// Caller must already hold a pin on the shared gc.
  Snapshot SnapUnderPin() const {
    return Snapshot(dir_.load(std::memory_order_seq_cst), chunk_shift_,
                    chunk_mask_);
  }

  /// Pins an epoch slot and snapshots the directory + watermark. All reads
  /// through one guard see a consistent prefix of the version history; the
  /// guard must not outlive the VersionStore. Cheap: one CAS to pin, one
  /// store to unpin.
  class ReadGuard {
   public:
    explicit ReadGuard(const VersionStore* vs) : vs_(vs) {
      slot_ = vs_->gc_->Pin();
      // seq_cst pairs with the seq_cst directory publish + slot scan in the
      // writer (see DESIGN.md §12.3): a reader whose pin the reclaimer did
      // not observe is guaranteed to load the *new* directory here.
      dir_ = vs_->dir_.load(std::memory_order_seq_cst);
      size_ = dir_->watermark.load(std::memory_order_acquire);
    }
    ~ReadGuard() { vs_->gc_->Unpin(slot_); }
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;

    /// Number of rows this guard may read: the watermark at pin time.
    uint64_t size() const { return size_; }
    uint64_t cts(uint64_t row) const {
      return StampAt(row)->cts.load(std::memory_order_relaxed);
    }
    uint64_t dts(uint64_t row) const {
      return StampAt(row)->dts.load(std::memory_order_relaxed);
    }

   private:
    friend class VersionStore;

    const Stamp* StampAt(uint64_t row) const {
      uint64_t ci = row >> vs_->chunk_shift_;
      if (ci != cached_index_) {
        cached_chunk_ = dir_->chunks[ci].load(std::memory_order_acquire);
        cached_index_ = ci;
      }
      return cached_chunk_ + (row & vs_->chunk_mask_);
    }

    const VersionStore* vs_;
    const Directory* dir_;
    int slot_;
    uint64_t size_;
    mutable uint64_t cached_index_ = ~0ull;
    mutable const Stamp* cached_chunk_ = nullptr;
  };

  ReadGuard Read() const { return ReadGuard(this); }

  /// Published row count (latch-free; pins briefly).
  uint64_t size() const { return ReadGuard(this).size(); }
  /// Single-stamp latch-free reads (row must be < size()).
  uint64_t ReadCts(uint64_t row) const { return ReadGuard(this).cts(row); }
  uint64_t ReadDts(uint64_t row) const { return ReadGuard(this).dts(row); }

  // ---- writer API: callers must serialize externally ---------------------

  /// Appends one version and publishes the watermark (release) so readers
  /// that observe the new size also observe the stamps. Returns the row id.
  uint64_t Append(uint64_t cts, uint64_t dts);

  /// In-place stamp rewrites (commit/abort resolution, recovery). Visibility
  /// to snapshot readers piggybacks on the TransactionManager's clock
  /// publish; see DESIGN.md §12.2.
  void WriterStoreCts(uint64_t row, uint64_t v);
  void WriterStoreDts(uint64_t row, uint64_t v);
  uint64_t WriterLoadCts(uint64_t row) const;
  uint64_t WriterLoadDts(uint64_t row) const;
  /// Row count as the writer knows it (== size(); no pin needed because the
  /// caller holds the write latch).
  uint64_t WriterSize() const { return size_; }

  /// Replaces the whole store with `stamps` (Vacuum's renumbering). The old
  /// directory and all its chunks are retired, not freed: a concurrent
  /// ReadGuard keeps reading the pre-rebuild history until it unpins.
  void Rebuild(const std::vector<std::pair<uint64_t, uint64_t>>& stamps);

  /// Frees retired directories/chunks whose retirement epoch every pinned
  /// reader has moved past (forwards to the shared EpochGC — with a shared
  /// gc this reclaims table-wide). Returns the number of entries freed.
  size_t ReclaimExpired();

  // ---- introspection -----------------------------------------------------
  /// Pending entries on the shared gc (table-wide when the gc is shared).
  size_t retired_count() const;
  uint64_t num_chunks() const { return num_chunks_.load(std::memory_order_relaxed); }
  uint64_t directory_capacity() const;
  uint64_t chunk_rows() const { return chunk_rows_; }
  size_t MemoryBytes() const;

 private:
  Directory* Grow(Directory* old);

  uint64_t chunk_rows_;
  uint64_t chunk_shift_;
  uint64_t chunk_mask_;

  // Declared before dir_ so an owned gc outlives the directory teardown; no
  // free_fn ever calls back into the gc, so destruction order is otherwise
  // free.
  std::unique_ptr<EpochGC> owned_gc_;
  EpochGC* gc_;  // never null

  std::atomic<Directory*> dir_;
  uint64_t size_ = 0;  // writer-private logical size (== published watermark)
  std::atomic<uint64_t> num_chunks_{0};
};

}  // namespace poly

#endif  // POLY_STORAGE_VERSION_STORE_H_
