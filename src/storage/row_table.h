#ifndef POLY_STORAGE_ROW_TABLE_H_
#define POLY_STORAGE_ROW_TABLE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/chunked_vector.h"
#include "storage/epoch_gc.h"
#include "storage/mvcc.h"
#include "storage/version_store.h"
#include "types/schema.h"

namespace poly {

/// Row-oriented table with the same MVCC protocol as ColumnTable. This is
/// the baseline for experiments E2/E3: the paper's §II-A claim is that one
/// column store can carry *both* workloads that traditionally needed a row
/// OLTP store plus a replicated column OLAP store.
///
/// Thread model mirrors ColumnTable: writers caller-serialized; ALL reads —
/// stamps and row values — are latch-free against writers (DESIGN.md
/// §12.5): rows live in a ChunkedVector whose chunks never move once
/// published, stamps and rows share one EpochGC, and the unified ReadGuard
/// pins once for both. The writer stores the row before appending the
/// version, so the stamp watermark bounds fully-written rows.
class RowTable {
 public:
  RowTable(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}
  RowTable(const RowTable&) = delete;
  RowTable& operator=(const RowTable&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// The unified guard: one pin, a stamp snapshot, and — taken after it, so
  /// every stamped row is covered — a row snapshot. Immutable; shareable
  /// across threads.
  class ReadGuard {
   public:
    explicit ReadGuard(const RowTable* t) : gc_(&t->gc_), slot_(gc_->Pin()) {
      stamps_ = t->versions_.SnapUnderPin();
      rows_ = t->rows_.Snap();
    }
    ~ReadGuard() { gc_->Unpin(slot_); }
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;

    uint64_t size() const { return stamps_.size(); }
    uint64_t cts(uint64_t row) const { return stamps_.cts(row); }
    uint64_t dts(uint64_t row) const { return stamps_.dts(row); }
    const Row& row(uint64_t r) const { return rows_[r]; }
    Value GetValue(uint64_t r, size_t col) const { return rows_[r][col]; }

    template <typename F>
    void ScanVisibleRange(const ReadView& view, uint64_t begin, uint64_t end,
                          F&& fn) const {
      if (end > stamps_.size()) end = stamps_.size();
      for (uint64_t r = begin; r < end; ++r) {
        if (view.RowVisible(stamps_.cts(r), stamps_.dts(r))) fn(r);
      }
    }
    template <typename F>
    void ScanVisible(const ReadView& view, F&& fn) const {
      ScanVisibleRange(view, 0, ~0ull, std::forward<F>(fn));
    }

   private:
    const EpochGC* gc_;
    int slot_;
    VersionStore::Snapshot stamps_;
    ChunkedVector<Row>::Snapshot rows_;
  };

  ReadGuard Read() const { return ReadGuard(this); }

  StatusOr<uint64_t> AppendVersion(const Row& values, uint64_t cts_stamp);
  Status SetDeleteStamp(uint64_t row, uint64_t stamp);
  void ResolveCreateStamp(uint64_t row, uint64_t commit_ts) {
    versions_.WriterStoreCts(row, commit_ts);
  }
  void ResolveDeleteStamp(uint64_t row, uint64_t commit_ts) {
    versions_.WriterStoreDts(row, commit_ts);
  }
  void ClearDeleteStamp(uint64_t row) { versions_.WriterStoreDts(row, kNoStamp); }

  uint64_t cts(uint64_t row) const { return versions_.ReadCts(row); }
  uint64_t dts(uint64_t row) const { return versions_.ReadDts(row); }
  uint64_t num_versions() const { return versions_.size(); }

  /// Latch-free single-row reads (briefly pin). The reference stays valid
  /// for the table's lifetime — row chunks are never freed before the
  /// destructor — but hot loops should take Read() once instead.
  const Row& GetRow(uint64_t row) const {
    EpochPin pin(&gc_);
    return rows_.At(row);
  }
  Value GetValue(uint64_t row, size_t col) const { return GetRow(row)[col]; }

  template <typename F>
  void ScanVisible(const ReadView& view, F&& fn) const {
    EpochPin pin(&gc_);
    VersionStore::Snapshot stamps = versions_.SnapUnderPin();
    for (uint64_t r = 0; r < stamps.size(); ++r) {
      if (view.RowVisible(stamps.cts(r), stamps.dts(r))) fn(r);
    }
  }

  uint64_t CountVisible(const ReadView& view) const {
    uint64_t n = 0;
    ScanVisible(view, [&](uint64_t) { ++n; });
    return n;
  }

  size_t MemoryBytes() const;

 private:
  std::string name_;
  Schema schema_;
  // gc_ first: the version store and row storage both retire into it; their
  // destructors never call back into it.
  EpochGC gc_;
  VersionStore versions_{VersionStore::kDefaultChunkRows, &gc_};
  ChunkedVector<Row> rows_{&gc_, 256};
};

}  // namespace poly

#endif  // POLY_STORAGE_ROW_TABLE_H_
