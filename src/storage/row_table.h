#ifndef POLY_STORAGE_ROW_TABLE_H_
#define POLY_STORAGE_ROW_TABLE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/mvcc.h"
#include "storage/version_store.h"
#include "types/schema.h"

namespace poly {

/// Row-oriented table with the same MVCC protocol as ColumnTable. This is
/// the baseline for experiments E2/E3: the paper's §II-A claim is that one
/// column store can carry *both* workloads that traditionally needed a row
/// OLTP store plus a replicated column OLAP store.
///
/// Thread model mirrors ColumnTable: writers caller-serialized; version-
/// stamp readers (ScanVisible row ids, CountVisible, num_versions, cts/dts)
/// are latch-free against writers via the shared VersionStore (DESIGN.md
/// §12). Reading row *values* (GetRow/GetValue) concurrently with writers
/// is still unsafe — rows_ may reallocate on append (see §12.5).
class RowTable {
 public:
  RowTable(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  StatusOr<uint64_t> AppendVersion(const Row& values, uint64_t cts_stamp);
  Status SetDeleteStamp(uint64_t row, uint64_t stamp);
  void ResolveCreateStamp(uint64_t row, uint64_t commit_ts) {
    versions_.WriterStoreCts(row, commit_ts);
  }
  void ResolveDeleteStamp(uint64_t row, uint64_t commit_ts) {
    versions_.WriterStoreDts(row, commit_ts);
  }
  void ClearDeleteStamp(uint64_t row) { versions_.WriterStoreDts(row, kNoStamp); }

  uint64_t cts(uint64_t row) const { return versions_.ReadCts(row); }
  uint64_t dts(uint64_t row) const { return versions_.ReadDts(row); }
  uint64_t num_versions() const { return versions_.size(); }

  const Row& GetRow(uint64_t row) const { return rows_[row]; }
  Value GetValue(uint64_t row, size_t col) const { return rows_[row][col]; }

  template <typename F>
  void ScanVisible(const ReadView& view, F&& fn) const {
    VersionStore::ReadGuard stamps = versions_.Read();
    for (uint64_t r = 0; r < stamps.size(); ++r) {
      if (view.RowVisible(stamps.cts(r), stamps.dts(r))) fn(r);
    }
  }

  uint64_t CountVisible(const ReadView& view) const {
    uint64_t n = 0;
    ScanVisible(view, [&](uint64_t) { ++n; });
    return n;
  }

  size_t MemoryBytes() const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
  VersionStore versions_;
};

}  // namespace poly

#endif  // POLY_STORAGE_ROW_TABLE_H_
