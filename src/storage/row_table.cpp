#include "storage/row_table.h"

namespace poly {

StatusOr<uint64_t> RowTable::AppendVersion(const Row& values, uint64_t cts_stamp) {
  if (values.size() != schema_.num_columns()) {
    return Status::InvalidArgument("row width mismatch for table " + name_);
  }
  rows_.Append(values);
  // Row data lands (and its chunk watermark is release-published) before
  // the version watermark publish inside Append, so any reader bounded by
  // the stamp watermark sees fully-written rows.
  return versions_.Append(cts_stamp, kNoStamp);
}

Status RowTable::SetDeleteStamp(uint64_t row, uint64_t stamp) {
  if (row >= versions_.WriterSize()) return Status::OutOfRange("row out of range");
  if (versions_.WriterLoadDts(row) != kNoStamp) {
    return Status::Aborted("write-write conflict on " + name_ + " row " +
                           std::to_string(row));
  }
  versions_.WriterStoreDts(row, stamp);
  return Status::OK();
}

size_t RowTable::MemoryBytes() const {
  size_t bytes = versions_.MemoryBytes() + rows_.MemoryBytes();
  for (uint64_t r = 0; r < rows_.WriterSize(); ++r) {
    const Row& row = rows_.WriterAt(r);
    bytes += row.capacity() * sizeof(Value);
    for (const auto& v : row) {
      if (v.type() == DataType::kString || v.type() == DataType::kDocument) {
        bytes += v.AsString().capacity();
      }
    }
  }
  return bytes;
}

}  // namespace poly
