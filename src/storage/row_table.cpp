#include "storage/row_table.h"

namespace poly {

StatusOr<uint64_t> RowTable::AppendVersion(const Row& values, uint64_t cts_stamp) {
  if (values.size() != schema_.num_columns()) {
    return Status::InvalidArgument("row width mismatch for table " + name_);
  }
  rows_.push_back(values);
  cts_.push_back(cts_stamp);
  dts_.push_back(kNoStamp);
  return rows_.size() - 1;
}

Status RowTable::SetDeleteStamp(uint64_t row, uint64_t stamp) {
  if (row >= dts_.size()) return Status::OutOfRange("row out of range");
  if (dts_[row] != kNoStamp) {
    return Status::Aborted("write-write conflict on " + name_ + " row " +
                           std::to_string(row));
  }
  dts_[row] = stamp;
  return Status::OK();
}

size_t RowTable::MemoryBytes() const {
  size_t bytes = cts_.capacity() * sizeof(uint64_t) * 2 + rows_.capacity() * sizeof(Row);
  for (const auto& row : rows_) {
    bytes += row.capacity() * sizeof(Value);
    for (const auto& v : row) {
      if (v.type() == DataType::kString || v.type() == DataType::kDocument) {
        bytes += v.AsString().capacity();
      }
    }
  }
  return bytes;
}

}  // namespace poly
