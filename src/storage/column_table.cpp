#include "storage/column_table.h"

#include "common/metrics.h"
#include "types/value_serde.h"

namespace poly {

ColumnTable::ColumnTable(std::string name, Schema schema, bool compress_main)
    : name_(std::move(name)), compress_main_(compress_main) {
  auto* st = new TableState;
  st->schema = std::move(schema);
  st->cols.reserve(st->schema.num_columns());
  for (size_t i = 0; i < st->schema.num_columns(); ++i) {
    st->cols.push_back(std::make_shared<Column>(compress_main_, &gc_));
  }
  st->versions =
      std::make_shared<VersionStore>(VersionStore::kDefaultChunkRows, &gc_);
  state_.store(st, std::memory_order_release);
}

ColumnTable::~ColumnTable() {
  // Return every byte this table charged (bind-time footprint + per-append
  // estimates). This is what makes pressure-driven spill observable in the
  // budget: demoting a partition destroys the hot copy, and usage drops.
  if (auto* budget = budget_.load(std::memory_order_acquire)) {
    budget->Release(budget_charged_.load(std::memory_order_relaxed));
  }
  // Contract: no live guards. The current state is freed here; retired
  // generations (and their columns/version stores, via shared_ptr) are
  // freed by gc_'s destructor, which runs after this body.
  delete state_.load(std::memory_order_relaxed);
}

void ColumnTable::BindMemoryBudget(resource::BudgetNode* node) {
  if (node == nullptr) return;
  uint64_t current = MemoryBytes();
  budget_charged_.fetch_add(current, std::memory_order_relaxed);
  node->ForceCharge(current);
  budget_.store(node, std::memory_order_release);
}

namespace {

/// Cheap per-append footprint estimate: value payloads plus the two MVCC
/// stamps. Deliberately an estimate — exact delta bytes would need a column
/// walk; the budget meters growth, it is not an allocator.
uint64_t EstimateRowBytes(const Row& values) {
  uint64_t bytes = 16;  // cts + dts stamps
  for (const Value& v : values) {
    bytes += 8;
    if (!v.is_null() && v.type() == DataType::kString) {
      bytes += v.AsString().size();
    }
  }
  return bytes;
}

}  // namespace

StatusOr<uint64_t> ColumnTable::AppendVersion(const Row& values, uint64_t cts_stamp) {
  TableState* st = state_.load(std::memory_order_relaxed);
  if (values.size() != st->cols.size()) {
    return Status::InvalidArgument("row width " + std::to_string(values.size()) +
                                   " != schema width " +
                                   std::to_string(st->cols.size()) + " for table " +
                                   name_);
  }
  for (size_t c = 0; c < st->cols.size(); ++c) {
    if (values[c].is_null() && !st->schema.column(c).nullable) {
      return Status::InvalidArgument("null in non-nullable column " +
                                     st->schema.column(c).name);
    }
    st->cols[c]->Append(values[c]);
  }
  // Delta growth is force-charged (never rejected): an insert halfway
  // through its columns cannot unwind. Overcommit is handled by the
  // pressure broker spilling cold partitions, not by failing writers.
  if (auto* budget = budget_.load(std::memory_order_acquire)) {
    uint64_t row_bytes = EstimateRowBytes(values);
    budget_charged_.fetch_add(row_bytes, std::memory_order_relaxed);
    budget->ForceCharge(row_bytes);
  }
  // Column values (and any new delta-dictionary entries) are fully written
  // and release-published before the version store publishes the new
  // watermark, so a reader that observes the row also observes its values
  // (DESIGN.md §12.5).
  return st->versions->Append(cts_stamp, kNoStamp);
}

Status ColumnTable::SetDeleteStamp(uint64_t row, uint64_t stamp) {
  VersionStore* vs = state_.load(std::memory_order_relaxed)->versions.get();
  if (row >= vs->WriterSize()) return Status::OutOfRange("row out of range");
  if (vs->WriterLoadDts(row) != kNoStamp) {
    return Status::Aborted("write-write conflict on " + name_ + " row " +
                           std::to_string(row));
  }
  vs->WriterStoreDts(row, stamp);
  return Status::OK();
}

void ColumnTable::ResolveCreateStamp(uint64_t row, uint64_t commit_ts) {
  state_.load(std::memory_order_relaxed)->versions->WriterStoreCts(row, commit_ts);
}

void ColumnTable::ResolveDeleteStamp(uint64_t row, uint64_t commit_ts) {
  state_.load(std::memory_order_relaxed)->versions->WriterStoreDts(row, commit_ts);
}

void ColumnTable::ClearDeleteStamp(uint64_t row) {
  state_.load(std::memory_order_relaxed)->versions->WriterStoreDts(row, kNoStamp);
}

uint64_t ColumnTable::cts(uint64_t row) const {
  EpochPin pin(&gc_);
  const TableState* st = state_.load(std::memory_order_seq_cst);
  return st->versions->SnapUnderPin().cts(row);
}

uint64_t ColumnTable::dts(uint64_t row) const {
  EpochPin pin(&gc_);
  const TableState* st = state_.load(std::memory_order_seq_cst);
  return st->versions->SnapUnderPin().dts(row);
}

uint64_t ColumnTable::num_versions() const {
  EpochPin pin(&gc_);
  const TableState* st = state_.load(std::memory_order_seq_cst);
  return st->versions->SnapUnderPin().size();
}

size_t ColumnTable::num_columns() const {
  EpochPin pin(&gc_);
  return state_.load(std::memory_order_seq_cst)->cols.size();
}

Value ColumnTable::GetValue(uint64_t row, size_t col) const {
  EpochPin pin(&gc_);
  const TableState* st = state_.load(std::memory_order_seq_cst);
  return Column::Reader(st->cols[col].get()).Get(row);
}

Row ColumnTable::GetRow(uint64_t row) const {
  ReadGuard g(this);
  return g.GetRow(row);
}

uint64_t ColumnTable::CountVisible(const ReadView& view) const {
  return CountVisibleRange(view, 0, ~0ull);
}

uint64_t ColumnTable::CountVisibleRange(const ReadView& view, uint64_t begin,
                                        uint64_t end) const {
  uint64_t count = 0;
  ScanVisibleRange(view, begin, end, [&](uint64_t) { ++count; });
  return count;
}

Status ColumnTable::AddColumn(ColumnDef def) {
  TableState* st = state_.load(std::memory_order_relaxed);
  if (st->schema.Contains(def.name)) {
    return Status::AlreadyExists("column '" + def.name + "' exists in " + name_);
  }
  if (!def.nullable) {
    return Status::InvalidArgument("late-added columns must be nullable");
  }
  auto col = std::make_shared<Column>(compress_main_, &gc_);
  for (uint64_t r = 0; r < st->versions->WriterSize(); ++r) {
    col->Append(Value::Null());
  }
  // Publish a fresh state that SHARES the existing columns and version
  // store; only the column-list vector and schema are new. An in-flight
  // guard keeps the old state (old column count) until it unpins — adding
  // a column never invalidates a running scan (DESIGN.md §12.5).
  auto* fresh = new TableState;
  fresh->schema = st->schema;
  fresh->schema.AddColumn(std::move(def));
  fresh->cols = st->cols;
  fresh->cols.push_back(std::move(col));
  fresh->versions = st->versions;
  state_.store(fresh, std::memory_order_seq_cst);
  gc_.Retire([st] { delete st; });
  gc_.ReclaimExpired();
  return Status::OK();
}

TableMergeStats ColumnTable::Merge() {
  TableState* st = state_.load(std::memory_order_relaxed);
  TableMergeStats stats;
  for (size_t c = 0; c < st->cols.size(); ++c) {
    stats.rows_moved = std::max(stats.rows_moved, st->cols[c]->delta_size());
    ColumnMergeStats cs =
        st->cols[c]->Merge(st->schema.column(c).generated_key_order);
    if (cs.fast_path) {
      ++stats.columns_fast_path;
    } else {
      ++stats.columns_general_path;
    }
    stats.ids_reencoded += cs.ids_reencoded;
  }
  metrics::Registry& reg = metrics::Default();
  reg.counter("storage.merge.count")->Add(1);
  reg.counter("storage.merge.rows_moved")->Add(stats.rows_moved);
  reg.counter("storage.merge.columns_fast_path")->Add(stats.columns_fast_path);
  reg.counter("storage.merge.ids_reencoded")->Add(stats.ids_reencoded);
  return stats;
}

uint64_t ColumnTable::Vacuum(uint64_t watermark) {
  TableState* st = state_.load(std::memory_order_relaxed);
  // Writer-side stamp walk: Vacuum runs under the write latch, so the
  // writer view of the version store is stable.
  VersionStore* vs = st->versions.get();
  uint64_t n = vs->WriterSize();
  std::vector<uint64_t> survivors;
  std::vector<std::pair<uint64_t, uint64_t>> surviving_stamps;
  survivors.reserve(n);
  for (uint64_t r = 0; r < n; ++r) {
    uint64_t dts = vs->WriterLoadDts(r);
    bool dead = dts != kNoStamp && !StampIsUncommitted(dts) && dts <= watermark;
    if (!dead) {
      survivors.push_back(r);
      surviving_stamps.emplace_back(vs->WriterLoadCts(r), dts);
    }
  }
  uint64_t removed = n - survivors.size();
  if (removed == 0) return 0;

  // Build a completely fresh generation: renumbered values AND renumbered
  // stamps travel in ONE TableState, published with one atomic store — a
  // reader can never pair post-vacuum stamps with pre-vacuum values or
  // vice versa. The old generation is retired; a pinned guard keeps it.
  auto* fresh = new TableState;
  fresh->schema = st->schema;
  fresh->cols.reserve(st->cols.size());
  for (size_t c = 0; c < st->cols.size(); ++c) {
    auto col = std::make_shared<Column>(compress_main_, &gc_);
    for (uint64_t r : survivors) col->Append(st->cols[c]->Get(r));
    col->Merge(st->schema.column(c).generated_key_order);
    fresh->cols.push_back(std::move(col));
  }
  fresh->versions =
      std::make_shared<VersionStore>(VersionStore::kDefaultChunkRows, &gc_);
  for (const auto& [cts, dts] : surviving_stamps) {
    fresh->versions->Append(cts, dts);
  }
  state_.store(fresh, std::memory_order_seq_cst);
  gc_.Retire([st] { delete st; });
  gc_.ReclaimExpired();
  return removed;
}

size_t ColumnTable::MemoryBytes() const {
  EpochPin pin(&gc_);
  const TableState* st = state_.load(std::memory_order_seq_cst);
  size_t bytes = st->versions->MemoryBytes();
  for (const auto& col : st->cols) bytes += col->MemoryBytes();
  return bytes;
}

void ColumnTable::SaveTo(Serializer* out) const {
  ReadGuard g(this);
  out->PutString(name_);
  out->PutVarint(g.schema().num_columns());
  for (size_t c = 0; c < g.schema().num_columns(); ++c) {
    const ColumnDef& def = g.schema().column(c);
    out->PutString(def.name);
    out->PutU8(static_cast<uint8_t>(def.type));
    out->PutU8(def.nullable ? 1 : 0);
    out->PutU8(def.generated_key_order ? 1 : 0);
  }
  out->PutVarint(g.size());
  for (uint64_t r = 0; r < g.size(); ++r) {
    out->PutU64(g.cts(r));
    out->PutU64(g.dts(r));
    for (size_t c = 0; c < g.num_columns(); ++c) {
      WriteValue(out, g.GetValue(r, c));
    }
  }
}

StatusOr<std::unique_ptr<ColumnTable>> ColumnTable::LoadFrom(Deserializer* in) {
  POLY_ASSIGN_OR_RETURN(std::string name, in->GetString());
  POLY_ASSIGN_OR_RETURN(uint64_t ncols, in->GetVarint());
  Schema schema;
  for (uint64_t c = 0; c < ncols; ++c) {
    ColumnDef def;
    POLY_ASSIGN_OR_RETURN(def.name, in->GetString());
    POLY_ASSIGN_OR_RETURN(uint8_t type, in->GetU8());
    def.type = static_cast<DataType>(type);
    POLY_ASSIGN_OR_RETURN(uint8_t nullable, in->GetU8());
    def.nullable = nullable != 0;
    POLY_ASSIGN_OR_RETURN(uint8_t gko, in->GetU8());
    def.generated_key_order = gko != 0;
    schema.AddColumn(std::move(def));
  }
  auto table = std::make_unique<ColumnTable>(std::move(name), std::move(schema));
  POLY_ASSIGN_OR_RETURN(uint64_t nrows, in->GetVarint());
  for (uint64_t r = 0; r < nrows; ++r) {
    POLY_ASSIGN_OR_RETURN(uint64_t cts, in->GetU64());
    POLY_ASSIGN_OR_RETURN(uint64_t dts, in->GetU64());
    Row row;
    row.reserve(ncols);
    for (uint64_t c = 0; c < ncols; ++c) {
      POLY_ASSIGN_OR_RETURN(Value v, ReadValue(in));
      row.push_back(std::move(v));
    }
    POLY_ASSIGN_OR_RETURN(uint64_t rid, table->AppendVersion(row, cts));
    if (dts != kNoStamp) table->ResolveDeleteStamp(rid, dts);
  }
  return table;
}

}  // namespace poly
