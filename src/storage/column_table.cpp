#include "storage/column_table.h"

#include "common/metrics.h"
#include "types/value_serde.h"

namespace poly {

ColumnTable::ColumnTable(std::string name, Schema schema, bool compress_main)
    : name_(std::move(name)), schema_(std::move(schema)), compress_main_(compress_main) {
  columns_.reserve(schema_.num_columns());
  for (size_t i = 0; i < schema_.num_columns(); ++i) {
    columns_.emplace_back(compress_main_);
  }
}

StatusOr<uint64_t> ColumnTable::AppendVersion(const Row& values, uint64_t cts_stamp) {
  if (values.size() != columns_.size()) {
    return Status::InvalidArgument("row width " + std::to_string(values.size()) +
                                   " != schema width " +
                                   std::to_string(columns_.size()) + " for table " +
                                   name_);
  }
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (values[c].is_null() && !schema_.column(c).nullable) {
      return Status::InvalidArgument("null in non-nullable column " +
                                     schema_.column(c).name);
    }
    columns_[c].Append(values[c]);
  }
  // Column data is fully written before the version store publishes the new
  // watermark, so a reader that observes the row also observes its values
  // (modulo the column-growth caveat in the class comment).
  return versions_.Append(cts_stamp, kNoStamp);
}

Status ColumnTable::SetDeleteStamp(uint64_t row, uint64_t stamp) {
  if (row >= versions_.WriterSize()) return Status::OutOfRange("row out of range");
  if (versions_.WriterLoadDts(row) != kNoStamp) {
    return Status::Aborted("write-write conflict on " + name_ + " row " +
                           std::to_string(row));
  }
  versions_.WriterStoreDts(row, stamp);
  return Status::OK();
}

void ColumnTable::ResolveCreateStamp(uint64_t row, uint64_t commit_ts) {
  versions_.WriterStoreCts(row, commit_ts);
}

void ColumnTable::ResolveDeleteStamp(uint64_t row, uint64_t commit_ts) {
  versions_.WriterStoreDts(row, commit_ts);
}

void ColumnTable::ClearDeleteStamp(uint64_t row) {
  versions_.WriterStoreDts(row, kNoStamp);
}

Row ColumnTable::GetRow(uint64_t row) const {
  Row out;
  out.reserve(columns_.size());
  for (const auto& col : columns_) out.push_back(col.Get(row));
  return out;
}

uint64_t ColumnTable::CountVisible(const ReadView& view) const {
  return CountVisibleRange(view, 0, ~0ull);
}

uint64_t ColumnTable::CountVisibleRange(const ReadView& view, uint64_t begin,
                                        uint64_t end) const {
  uint64_t count = 0;
  ScanVisibleRange(view, begin, end, [&](uint64_t) { ++count; });
  return count;
}

Status ColumnTable::AddColumn(ColumnDef def) {
  if (schema_.Contains(def.name)) {
    return Status::AlreadyExists("column '" + def.name + "' exists in " + name_);
  }
  if (!def.nullable) {
    return Status::InvalidArgument("late-added columns must be nullable");
  }
  Column col(compress_main_);
  for (uint64_t r = 0; r < versions_.WriterSize(); ++r) col.Append(Value::Null());
  columns_.push_back(std::move(col));
  schema_.AddColumn(std::move(def));
  return Status::OK();
}

TableMergeStats ColumnTable::Merge() {
  TableMergeStats stats;
  for (size_t c = 0; c < columns_.size(); ++c) {
    stats.rows_moved = std::max(stats.rows_moved, columns_[c].delta_size());
    ColumnMergeStats cs = columns_[c].Merge(schema_.column(c).generated_key_order);
    if (cs.fast_path) {
      ++stats.columns_fast_path;
    } else {
      ++stats.columns_general_path;
    }
    stats.ids_reencoded += cs.ids_reencoded;
  }
  metrics::Registry& reg = metrics::Default();
  reg.counter("storage.merge.count")->Add(1);
  reg.counter("storage.merge.rows_moved")->Add(stats.rows_moved);
  reg.counter("storage.merge.columns_fast_path")->Add(stats.columns_fast_path);
  reg.counter("storage.merge.ids_reencoded")->Add(stats.ids_reencoded);
  return stats;
}

uint64_t ColumnTable::Vacuum(uint64_t watermark) {
  std::vector<uint64_t> survivors;
  std::vector<std::pair<uint64_t, uint64_t>> surviving_stamps;
  uint64_t n;
  {
    VersionStore::ReadGuard stamps = versions_.Read();
    n = stamps.size();
    survivors.reserve(n);
    for (uint64_t r = 0; r < n; ++r) {
      uint64_t dts = stamps.dts(r);
      bool dead = dts != kNoStamp && !StampIsUncommitted(dts) && dts <= watermark;
      if (!dead) {
        survivors.push_back(r);
        surviving_stamps.emplace_back(stamps.cts(r), dts);
      }
    }
  }
  uint64_t removed = n - survivors.size();
  if (removed == 0) return 0;

  std::vector<Column> new_columns;
  new_columns.reserve(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    Column col(compress_main_);
    for (uint64_t r : survivors) col.Append(columns_[c].Get(r));
    col.Merge(schema_.column(c).generated_key_order);
    new_columns.push_back(std::move(col));
  }
  columns_ = std::move(new_columns);
  // Publishes the renumbered stamps and epoch-retires the old chunks; a
  // concurrent stamp reader keeps its pinned pre-vacuum view until it unpins.
  versions_.Rebuild(surviving_stamps);
  return removed;
}

size_t ColumnTable::MemoryBytes() const {
  size_t bytes = versions_.MemoryBytes();
  for (const auto& col : columns_) bytes += col.MemoryBytes();
  return bytes;
}

void ColumnTable::SaveTo(Serializer* out) const {
  out->PutString(name_);
  out->PutVarint(schema_.num_columns());
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    const ColumnDef& def = schema_.column(c);
    out->PutString(def.name);
    out->PutU8(static_cast<uint8_t>(def.type));
    out->PutU8(def.nullable ? 1 : 0);
    out->PutU8(def.generated_key_order ? 1 : 0);
  }
  VersionStore::ReadGuard stamps = versions_.Read();
  out->PutVarint(stamps.size());
  for (uint64_t r = 0; r < stamps.size(); ++r) {
    out->PutU64(stamps.cts(r));
    out->PutU64(stamps.dts(r));
    for (const auto& col : columns_) {
      WriteValue(out, col.Get(r));
    }
  }
}

StatusOr<std::unique_ptr<ColumnTable>> ColumnTable::LoadFrom(Deserializer* in) {
  POLY_ASSIGN_OR_RETURN(std::string name, in->GetString());
  POLY_ASSIGN_OR_RETURN(uint64_t ncols, in->GetVarint());
  Schema schema;
  for (uint64_t c = 0; c < ncols; ++c) {
    ColumnDef def;
    POLY_ASSIGN_OR_RETURN(def.name, in->GetString());
    POLY_ASSIGN_OR_RETURN(uint8_t type, in->GetU8());
    def.type = static_cast<DataType>(type);
    POLY_ASSIGN_OR_RETURN(uint8_t nullable, in->GetU8());
    def.nullable = nullable != 0;
    POLY_ASSIGN_OR_RETURN(uint8_t gko, in->GetU8());
    def.generated_key_order = gko != 0;
    schema.AddColumn(std::move(def));
  }
  auto table = std::make_unique<ColumnTable>(std::move(name), std::move(schema));
  POLY_ASSIGN_OR_RETURN(uint64_t nrows, in->GetVarint());
  for (uint64_t r = 0; r < nrows; ++r) {
    POLY_ASSIGN_OR_RETURN(uint64_t cts, in->GetU64());
    POLY_ASSIGN_OR_RETURN(uint64_t dts, in->GetU64());
    Row row;
    row.reserve(ncols);
    for (uint64_t c = 0; c < ncols; ++c) {
      POLY_ASSIGN_OR_RETURN(Value v, ReadValue(in));
      row.push_back(std::move(v));
    }
    POLY_ASSIGN_OR_RETURN(uint64_t rid, table->AppendVersion(row, cts));
    if (dts != kNoStamp) table->versions_.WriterStoreDts(rid, dts);
  }
  return table;
}

}  // namespace poly
