#include "storage/column_table.h"

#include "common/metrics.h"
#include "types/value_serde.h"

namespace poly {

ColumnTable::ColumnTable(std::string name, Schema schema, bool compress_main)
    : name_(std::move(name)), schema_(std::move(schema)), compress_main_(compress_main) {
  columns_.reserve(schema_.num_columns());
  for (size_t i = 0; i < schema_.num_columns(); ++i) {
    columns_.emplace_back(compress_main_);
  }
}

StatusOr<uint64_t> ColumnTable::AppendVersion(const Row& values, uint64_t cts_stamp) {
  if (values.size() != columns_.size()) {
    return Status::InvalidArgument("row width " + std::to_string(values.size()) +
                                   " != schema width " +
                                   std::to_string(columns_.size()) + " for table " +
                                   name_);
  }
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (values[c].is_null() && !schema_.column(c).nullable) {
      return Status::InvalidArgument("null in non-nullable column " +
                                     schema_.column(c).name);
    }
    columns_[c].Append(values[c]);
  }
  cts_.push_back(cts_stamp);
  dts_.push_back(kNoStamp);
  return cts_.size() - 1;
}

Status ColumnTable::SetDeleteStamp(uint64_t row, uint64_t stamp) {
  if (row >= dts_.size()) return Status::OutOfRange("row out of range");
  if (dts_[row] != kNoStamp) {
    return Status::Aborted("write-write conflict on " + name_ + " row " +
                           std::to_string(row));
  }
  dts_[row] = stamp;
  return Status::OK();
}

void ColumnTable::ResolveCreateStamp(uint64_t row, uint64_t commit_ts) {
  cts_[row] = commit_ts;
}

void ColumnTable::ResolveDeleteStamp(uint64_t row, uint64_t commit_ts) {
  dts_[row] = commit_ts;
}

void ColumnTable::ClearDeleteStamp(uint64_t row) { dts_[row] = kNoStamp; }

Row ColumnTable::GetRow(uint64_t row) const {
  Row out;
  out.reserve(columns_.size());
  for (const auto& col : columns_) out.push_back(col.Get(row));
  return out;
}

uint64_t ColumnTable::CountVisible(const ReadView& view) const {
  return CountVisibleRange(view, 0, cts_.size());
}

uint64_t ColumnTable::CountVisibleRange(const ReadView& view, uint64_t begin,
                                        uint64_t end) const {
  uint64_t count = 0;
  ScanVisibleRange(view, begin, end, [&](uint64_t) { ++count; });
  return count;
}

Status ColumnTable::AddColumn(ColumnDef def) {
  if (schema_.Contains(def.name)) {
    return Status::AlreadyExists("column '" + def.name + "' exists in " + name_);
  }
  if (!def.nullable) {
    return Status::InvalidArgument("late-added columns must be nullable");
  }
  Column col(compress_main_);
  for (uint64_t r = 0; r < cts_.size(); ++r) col.Append(Value::Null());
  columns_.push_back(std::move(col));
  schema_.AddColumn(std::move(def));
  return Status::OK();
}

TableMergeStats ColumnTable::Merge() {
  TableMergeStats stats;
  for (size_t c = 0; c < columns_.size(); ++c) {
    stats.rows_moved = std::max(stats.rows_moved, columns_[c].delta_size());
    ColumnMergeStats cs = columns_[c].Merge(schema_.column(c).generated_key_order);
    if (cs.fast_path) {
      ++stats.columns_fast_path;
    } else {
      ++stats.columns_general_path;
    }
    stats.ids_reencoded += cs.ids_reencoded;
  }
  metrics::Registry& reg = metrics::Default();
  reg.counter("storage.merge.count")->Add(1);
  reg.counter("storage.merge.rows_moved")->Add(stats.rows_moved);
  reg.counter("storage.merge.columns_fast_path")->Add(stats.columns_fast_path);
  reg.counter("storage.merge.ids_reencoded")->Add(stats.ids_reencoded);
  return stats;
}

uint64_t ColumnTable::Vacuum(uint64_t watermark) {
  std::vector<uint64_t> survivors;
  survivors.reserve(cts_.size());
  for (uint64_t r = 0; r < cts_.size(); ++r) {
    bool dead = dts_[r] != kNoStamp && !StampIsUncommitted(dts_[r]) &&
                dts_[r] <= watermark;
    if (!dead) survivors.push_back(r);
  }
  uint64_t removed = cts_.size() - survivors.size();
  if (removed == 0) return 0;

  std::vector<Column> new_columns;
  new_columns.reserve(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    Column col(compress_main_);
    for (uint64_t r : survivors) col.Append(columns_[c].Get(r));
    col.Merge(schema_.column(c).generated_key_order);
    new_columns.push_back(std::move(col));
  }
  std::vector<uint64_t> new_cts, new_dts;
  new_cts.reserve(survivors.size());
  new_dts.reserve(survivors.size());
  for (uint64_t r : survivors) {
    new_cts.push_back(cts_[r]);
    new_dts.push_back(dts_[r]);
  }
  columns_ = std::move(new_columns);
  cts_ = std::move(new_cts);
  dts_ = std::move(new_dts);
  return removed;
}

size_t ColumnTable::MemoryBytes() const {
  size_t bytes = cts_.capacity() * sizeof(uint64_t) * 2;
  for (const auto& col : columns_) bytes += col.MemoryBytes();
  return bytes;
}

void ColumnTable::SaveTo(Serializer* out) const {
  out->PutString(name_);
  out->PutVarint(schema_.num_columns());
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    const ColumnDef& def = schema_.column(c);
    out->PutString(def.name);
    out->PutU8(static_cast<uint8_t>(def.type));
    out->PutU8(def.nullable ? 1 : 0);
    out->PutU8(def.generated_key_order ? 1 : 0);
  }
  out->PutVarint(cts_.size());
  for (uint64_t r = 0; r < cts_.size(); ++r) {
    out->PutU64(cts_[r]);
    out->PutU64(dts_[r]);
    for (const auto& col : columns_) {
      WriteValue(out, col.Get(r));
    }
  }
}

StatusOr<std::unique_ptr<ColumnTable>> ColumnTable::LoadFrom(Deserializer* in) {
  POLY_ASSIGN_OR_RETURN(std::string name, in->GetString());
  POLY_ASSIGN_OR_RETURN(uint64_t ncols, in->GetVarint());
  Schema schema;
  for (uint64_t c = 0; c < ncols; ++c) {
    ColumnDef def;
    POLY_ASSIGN_OR_RETURN(def.name, in->GetString());
    POLY_ASSIGN_OR_RETURN(uint8_t type, in->GetU8());
    def.type = static_cast<DataType>(type);
    POLY_ASSIGN_OR_RETURN(uint8_t nullable, in->GetU8());
    def.nullable = nullable != 0;
    POLY_ASSIGN_OR_RETURN(uint8_t gko, in->GetU8());
    def.generated_key_order = gko != 0;
    schema.AddColumn(std::move(def));
  }
  auto table = std::make_unique<ColumnTable>(std::move(name), std::move(schema));
  POLY_ASSIGN_OR_RETURN(uint64_t nrows, in->GetVarint());
  for (uint64_t r = 0; r < nrows; ++r) {
    POLY_ASSIGN_OR_RETURN(uint64_t cts, in->GetU64());
    POLY_ASSIGN_OR_RETURN(uint64_t dts, in->GetU64());
    Row row;
    row.reserve(ncols);
    for (uint64_t c = 0; c < ncols; ++c) {
      POLY_ASSIGN_OR_RETURN(Value v, ReadValue(in));
      row.push_back(std::move(v));
    }
    POLY_ASSIGN_OR_RETURN(uint64_t rid, table->AppendVersion(row, cts));
    if (dts != kNoStamp) table->dts_[rid] = dts;
  }
  return table;
}

}  // namespace poly
