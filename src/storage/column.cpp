#include "storage/column.h"

#include <algorithm>
#include <map>

namespace poly {

uint64_t Column::Append(const Value& v) {
  uint64_t id = delta_dict_.GetOrAdd(v);
  delta_ids_.push_back(id);
  return main_ids_.size() + delta_ids_.size() - 1;
}

Value Column::Get(uint64_t row) const {
  if (row < main_ids_.size()) {
    return main_dict_.At(main_ids_.Get(row));
  }
  return delta_dict_.At(delta_ids_[row - main_ids_.size()]);
}

ColumnMergeStats Column::Merge(bool hint_generated_order) {
  ColumnMergeStats stats;
  if (delta_ids_.empty() && delta_dict_.size() == 0) return stats;

  // Sort the delta's distinct values and remember old-delta-ID -> rank.
  std::vector<uint64_t> order(delta_dict_.size());
  for (uint64_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](uint64_t a, uint64_t b) {
    return delta_dict_.At(a) < delta_dict_.At(b);
  });
  std::vector<Value> sorted_delta_values;
  sorted_delta_values.reserve(order.size());
  // Old delta id -> position in sorted_delta_values.
  std::vector<uint64_t> delta_rank(order.size());
  for (uint64_t rank = 0; rank < order.size(); ++rank) {
    sorted_delta_values.push_back(delta_dict_.At(order[rank]));
    delta_rank[order[rank]] = rank;
  }

  // Delta values already present in main must not be duplicated; compute,
  // for each sorted delta value, either its existing main ID or its slot in
  // the merged dictionary.
  bool disjoint_and_greater =
      hint_generated_order && main_dict_.AllGreaterThanMax(sorted_delta_values);

  if (disjoint_and_greater) {
    // Fast path (§III / E11): append to the dictionary; existing main value
    // IDs stay valid, so only the (cheap) width check can force a repack.
    uint64_t old_dict_size = main_dict_.size();
    main_dict_.AppendGreater(sorted_delta_values);
    int needed_bits = BitsFor(main_dict_.size() == 0 ? 0 : main_dict_.size() - 1);
    int width = compress_main_ ? needed_bits : 64;
    if (width != main_ids_.bits()) {
      main_ids_ = main_ids_.Repack(width);
    }
    for (uint64_t delta_id : delta_ids_) {
      main_ids_.Append(old_dict_size + delta_rank[delta_id]);
    }
    stats.fast_path = true;
    stats.dict_entries_moved = sorted_delta_values.size();
  } else {
    // General path: two-way merge of old dictionary and sorted delta values,
    // then re-encode every existing main ID through the remap table.
    const std::vector<Value>& old_values = main_dict_.values();
    std::vector<Value> merged;
    merged.reserve(old_values.size() + sorted_delta_values.size());
    std::vector<uint64_t> old_remap(old_values.size());
    std::vector<uint64_t> delta_remap(sorted_delta_values.size());
    size_t i = 0, j = 0;
    while (i < old_values.size() || j < sorted_delta_values.size()) {
      bool take_old;
      bool equal = false;
      if (i >= old_values.size()) {
        take_old = false;
      } else if (j >= sorted_delta_values.size()) {
        take_old = true;
      } else if (old_values[i] < sorted_delta_values[j]) {
        take_old = true;
      } else if (sorted_delta_values[j] < old_values[i]) {
        take_old = false;
      } else {
        take_old = true;
        equal = true;
      }
      uint64_t new_id = merged.size();
      if (take_old) {
        merged.push_back(old_values[i]);
        old_remap[i++] = new_id;
        if (equal) delta_remap[j++] = new_id;
      } else {
        merged.push_back(sorted_delta_values[j]);
        delta_remap[j++] = new_id;
      }
    }
    int needed_bits = BitsFor(merged.empty() ? 0 : merged.size() - 1);
    int width = compress_main_ ? needed_bits : 64;
    BitPackedVector new_ids(width);
    new_ids.Reserve(main_ids_.size() + delta_ids_.size());
    for (uint64_t r = 0; r < main_ids_.size(); ++r) {
      new_ids.Append(old_remap[main_ids_.Get(r)]);
      ++stats.ids_reencoded;
    }
    for (uint64_t delta_id : delta_ids_) {
      new_ids.Append(delta_remap[delta_rank[delta_id]]);
    }
    main_dict_ = SortedDictionary(std::move(merged));
    main_ids_ = std::move(new_ids);
    stats.dict_entries_moved = main_dict_.size();
  }

  delta_dict_.Clear();
  delta_ids_.clear();
  delta_ids_.shrink_to_fit();
  return stats;
}

size_t Column::MemoryBytes() const {
  return main_dict_.MemoryBytes() + main_ids_.MemoryBytes() +
         delta_dict_.MemoryBytes() + delta_ids_.capacity() * sizeof(uint64_t);
}

}  // namespace poly
