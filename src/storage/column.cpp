#include "storage/column.h"

#include <algorithm>

namespace poly {

Column::Column(bool compress_main, EpochGC* gc)
    : compress_main_(compress_main),
      owned_gc_(gc == nullptr ? std::make_unique<EpochGC>() : nullptr),
      gc_(gc == nullptr ? owned_gc_.get() : gc),
      state_(new State(gc_, kDeltaChunkRows)) {}

Column::~Column() {
  // Contract: no live Readers. States retired by Merge are freed by the gc
  // (the owned one's destructor runs right after this member teardown, a
  // shared one when its table tears down).
  delete state_.load(std::memory_order_relaxed);
}

uint64_t Column::Append(const Value& v) {
  State* st = state_.load(std::memory_order_relaxed);
  // Dictionary first: its value store is published (release) before the row
  // id below, so any reader whose snapshot includes the id resolves it.
  uint64_t id = st->delta_dict.GetOrAdd(v);
  st->delta_ids.Append(id);
  return st->main_ids.size() + st->delta_ids.WriterSize() - 1;
}

Value Column::Get(uint64_t row) const {
  const State* st = state_.load(std::memory_order_acquire);
  if (row < st->main_ids.size()) {
    return st->main_dict.At(st->main_ids.Get(row));
  }
  return st->delta_dict.At(st->delta_ids.WriterAt(row - st->main_ids.size()));
}

uint64_t Column::size() const {
  const State* st = state_.load(std::memory_order_acquire);
  return st->main_ids.size() + st->delta_ids.WriterSize();
}

uint64_t Column::main_size() const {
  return state_.load(std::memory_order_acquire)->main_ids.size();
}

uint64_t Column::delta_size() const {
  return state_.load(std::memory_order_acquire)->delta_ids.WriterSize();
}

const SortedDictionary& Column::main_dictionary() const {
  return state_.load(std::memory_order_acquire)->main_dict;
}

const DeltaDictionary& Column::delta_dictionary() const {
  return state_.load(std::memory_order_acquire)->delta_dict;
}

uint64_t Column::MainId(uint64_t row) const {
  return state_.load(std::memory_order_acquire)->main_ids.Get(row);
}

uint64_t Column::DeltaId(uint64_t i) const {
  return state_.load(std::memory_order_acquire)->delta_ids.WriterAt(i);
}

void Column::DecodeMainIds(uint64_t begin, uint64_t end, uint64_t* out) const {
  state_.load(std::memory_order_acquire)->main_ids.Decode(begin, end, out);
}

ColumnMergeStats Column::Merge(bool hint_generated_order) {
  ColumnMergeStats stats;
  State* st = state_.load(std::memory_order_relaxed);
  uint64_t delta_n = st->delta_ids.WriterSize();
  if (delta_n == 0 && st->delta_dict.size() == 0) return stats;

  // Sort the delta's distinct values and remember old-delta-ID -> rank.
  std::vector<uint64_t> order(st->delta_dict.size());
  for (uint64_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](uint64_t a, uint64_t b) {
    return st->delta_dict.At(a) < st->delta_dict.At(b);
  });
  std::vector<Value> sorted_delta_values;
  sorted_delta_values.reserve(order.size());
  // Old delta id -> position in sorted_delta_values.
  std::vector<uint64_t> delta_rank(order.size());
  for (uint64_t rank = 0; rank < order.size(); ++rank) {
    sorted_delta_values.push_back(st->delta_dict.At(order[rank]));
    delta_rank[order[rank]] = rank;
  }

  // Delta values already present in main must not be duplicated; compute,
  // for each sorted delta value, either its existing main ID or its slot in
  // the merged dictionary. Everything is assembled in a FRESH State — the
  // published one stays untouched until the single pointer swap below, so
  // pinned readers are never exposed to a half-merged column.
  bool disjoint_and_greater =
      hint_generated_order &&
      st->main_dict.AllGreaterThanMax(sorted_delta_values);

  auto* fresh = new State(gc_, kDeltaChunkRows);
  if (disjoint_and_greater) {
    // Fast path (§III / E11): append to the dictionary; existing main value
    // IDs stay valid, so only the (cheap) width check can force a repack.
    uint64_t old_dict_size = st->main_dict.size();
    fresh->main_dict = st->main_dict;
    fresh->main_dict.AppendGreater(sorted_delta_values);
    int needed_bits =
        BitsFor(fresh->main_dict.size() == 0 ? 0 : fresh->main_dict.size() - 1);
    int width = compress_main_ ? needed_bits : 64;
    fresh->main_ids =
        width != st->main_ids.bits() ? st->main_ids.Repack(width) : st->main_ids;
    for (uint64_t r = 0; r < delta_n; ++r) {
      fresh->main_ids.Append(old_dict_size + delta_rank[st->delta_ids.WriterAt(r)]);
    }
    stats.fast_path = true;
    stats.dict_entries_moved = sorted_delta_values.size();
  } else {
    // General path: two-way merge of old dictionary and sorted delta values,
    // then re-encode every existing main ID through the remap table.
    const std::vector<Value>& old_values = st->main_dict.values();
    std::vector<Value> merged;
    merged.reserve(old_values.size() + sorted_delta_values.size());
    std::vector<uint64_t> old_remap(old_values.size());
    std::vector<uint64_t> delta_remap(sorted_delta_values.size());
    size_t i = 0, j = 0;
    while (i < old_values.size() || j < sorted_delta_values.size()) {
      bool take_old;
      bool equal = false;
      if (i >= old_values.size()) {
        take_old = false;
      } else if (j >= sorted_delta_values.size()) {
        take_old = true;
      } else if (old_values[i] < sorted_delta_values[j]) {
        take_old = true;
      } else if (sorted_delta_values[j] < old_values[i]) {
        take_old = false;
      } else {
        take_old = true;
        equal = true;
      }
      uint64_t new_id = merged.size();
      if (take_old) {
        merged.push_back(old_values[i]);
        old_remap[i++] = new_id;
        if (equal) delta_remap[j++] = new_id;
      } else {
        merged.push_back(sorted_delta_values[j]);
        delta_remap[j++] = new_id;
      }
    }
    int needed_bits = BitsFor(merged.empty() ? 0 : merged.size() - 1);
    int width = compress_main_ ? needed_bits : 64;
    BitPackedVector new_ids(width);
    new_ids.Reserve(st->main_ids.size() + delta_n);
    for (uint64_t r = 0; r < st->main_ids.size(); ++r) {
      new_ids.Append(old_remap[st->main_ids.Get(r)]);
      ++stats.ids_reencoded;
    }
    for (uint64_t r = 0; r < delta_n; ++r) {
      new_ids.Append(delta_remap[delta_rank[st->delta_ids.WriterAt(r)]]);
    }
    fresh->main_dict = SortedDictionary(std::move(merged));
    fresh->main_ids = std::move(new_ids);
    stats.dict_entries_moved = fresh->main_dict.size();
  }

  // seq_cst publish pairs with Reader's pin + state load; the old state is
  // retired, never freed in place — a reader pinned before this swap keeps
  // reading the pre-merge delta until it unpins (DESIGN.md §12.5).
  state_.store(fresh, std::memory_order_seq_cst);
  gc_->Retire([st] { delete st; });
  gc_->ReclaimExpired();
  return stats;
}

size_t Column::MemoryBytes() const {
  const State* st = state_.load(std::memory_order_acquire);
  return st->main_dict.MemoryBytes() + st->main_ids.MemoryBytes() +
         st->delta_dict.MemoryBytes() + st->delta_ids.MemoryBytes();
}

}  // namespace poly
