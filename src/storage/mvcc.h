#ifndef POLY_STORAGE_MVCC_H_
#define POLY_STORAGE_MVCC_H_

#include <cstdint>

namespace poly {

/// MVCC stamp encoding. A row version carries a create stamp (CTS) and a
/// delete stamp (DTS). While the writing transaction is in flight the stamp
/// is kTxnBit | txn_id; commit rewrites it in place to the commit timestamp,
/// so a stamp with kTxnBit set is always uncommitted.
constexpr uint64_t kTxnBit = 1ULL << 63;
constexpr uint64_t kNoStamp = 0;  ///< DTS value meaning "never deleted"

inline bool StampIsUncommitted(uint64_t stamp) { return (stamp & kTxnBit) != 0; }
inline uint64_t StampTxnId(uint64_t stamp) { return stamp & ~kTxnBit; }
inline uint64_t MakeTxnStamp(uint64_t txn_id) { return kTxnBit | txn_id; }

/// Snapshot-isolation read view: what a statement running in transaction
/// `txn_id` with snapshot `snapshot_ts` is allowed to see.
struct ReadView {
  uint64_t snapshot_ts = 0;
  uint64_t txn_id = 0;

  /// A committed stamp is visible if it happened at or before the snapshot;
  /// an uncommitted stamp is visible only to its own transaction.
  bool StampVisible(uint64_t stamp) const {
    if (stamp == kNoStamp) return false;
    if (StampIsUncommitted(stamp)) return StampTxnId(stamp) == txn_id;
    return stamp <= snapshot_ts;
  }

  /// Row version with (cts, dts) is alive for this view.
  bool RowVisible(uint64_t cts, uint64_t dts) const {
    return StampVisible(cts) && !StampVisible(dts);
  }
};

/// A view that sees every committed version regardless of age and no
/// uncommitted ones — used by merge and by OLAP nodes applying the log.
inline ReadView LatestCommittedView() {
  return ReadView{~kTxnBit, /*txn_id=*/0};
}

}  // namespace poly

#endif  // POLY_STORAGE_MVCC_H_
