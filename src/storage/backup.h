#ifndef POLY_STORAGE_BACKUP_H_
#define POLY_STORAGE_BACKUP_H_

#include <string>

#include "storage/database.h"

namespace poly {

/// Whole-database snapshot backup/restore (§II: "all the state of the art
/// capabilities like backup, recovery" [1]). The snapshot captures every
/// column table with full MVCC stamps; combined with the redo log it gives
/// the classic snapshot+log recovery pair.

/// Serializes all column tables of `db` into one buffer.
std::string SerializeDatabase(const Database& db);

/// Rebuilds a database from a snapshot buffer into `out` (must be empty of
/// conflicting table names).
Status DeserializeDatabase(const std::string& snapshot, Database* out);

/// File-based convenience wrappers.
Status BackupDatabaseToFile(const Database& db, const std::string& path);
Status RestoreDatabaseFromFile(const std::string& path, Database* out);

}  // namespace poly

#endif  // POLY_STORAGE_BACKUP_H_
