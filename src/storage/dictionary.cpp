#include "storage/dictionary.h"

#include <algorithm>
#include <cassert>

namespace poly {

SortedDictionary::SortedDictionary(std::vector<Value> sorted_distinct)
    : values_(std::move(sorted_distinct)) {
#ifndef NDEBUG
  for (size_t i = 1; i < values_.size(); ++i) assert(values_[i - 1] < values_[i]);
#endif
}

std::optional<uint64_t> SortedDictionary::Lookup(const Value& v) const {
  auto it = std::lower_bound(values_.begin(), values_.end(), v);
  if (it != values_.end() && *it == v) {
    return static_cast<uint64_t>(it - values_.begin());
  }
  return std::nullopt;
}

uint64_t SortedDictionary::LowerBound(const Value& v) const {
  return static_cast<uint64_t>(
      std::lower_bound(values_.begin(), values_.end(), v) - values_.begin());
}

uint64_t SortedDictionary::UpperBound(const Value& v) const {
  return static_cast<uint64_t>(
      std::upper_bound(values_.begin(), values_.end(), v) - values_.begin());
}

bool SortedDictionary::AllGreaterThanMax(const std::vector<Value>& other_sorted) const {
  if (other_sorted.empty()) return true;
  if (values_.empty()) return true;
  return values_.back() < other_sorted.front();
}

void SortedDictionary::AppendGreater(const std::vector<Value>& sorted_values) {
  assert(AllGreaterThanMax(sorted_values));
  values_.insert(values_.end(), sorted_values.begin(), sorted_values.end());
}

size_t SortedDictionary::MemoryBytes() const {
  size_t bytes = values_.capacity() * sizeof(Value);
  for (const auto& v : values_) {
    if (v.type() == DataType::kString || v.type() == DataType::kDocument) {
      bytes += v.AsString().capacity();
    }
  }
  return bytes;
}

uint64_t DeltaDictionary::GetOrAdd(const Value& v) {
  auto it = index_.find(v);
  if (it != index_.end()) return it->second;
  // The value store (with its release watermark publish) happens-before the
  // caller's row-id append, so any reader that sees the id sees the value.
  uint64_t id = values_.Append(v);
  index_.emplace(v, id);
  return id;
}

std::optional<uint64_t> DeltaDictionary::Lookup(const Value& v) const {
  auto it = index_.find(v);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

size_t DeltaDictionary::MemoryBytes() const {
  size_t bytes = values_.MemoryBytes() +
                 index_.size() * (sizeof(Value) + sizeof(uint64_t) + 16);
  for (uint64_t i = 0; i < values_.WriterSize(); ++i) {
    const Value& v = values_.WriterAt(i);
    if (v.type() == DataType::kString || v.type() == DataType::kDocument) {
      bytes += v.AsString().capacity();
    }
  }
  return bytes;
}

}  // namespace poly
