#ifndef POLY_STORAGE_DICTIONARY_H_
#define POLY_STORAGE_DICTIONARY_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "storage/chunked_vector.h"
#include "types/value.h"

namespace poly {

/// Sorted domain dictionary of a main-store column (§III): all distinct
/// values in sort order; the column itself stores bit-packed indexes
/// ("value IDs") into this dictionary. Sortedness makes range predicates a
/// pair of binary searches over value IDs.
///
/// A SortedDictionary is immutable once its owning column state is
/// published (merge builds a NEW state rather than mutating in place, see
/// DESIGN.md §12.5), so plain vectors are fine here.
class SortedDictionary {
 public:
  SortedDictionary() = default;
  /// Builds from values that are already sorted and distinct.
  explicit SortedDictionary(std::vector<Value> sorted_distinct);

  /// Value ID of `v` if present.
  std::optional<uint64_t> Lookup(const Value& v) const;
  /// First value ID whose value is >= v (may equal size()).
  uint64_t LowerBound(const Value& v) const;
  /// First value ID whose value is > v (may equal size()).
  uint64_t UpperBound(const Value& v) const;

  const Value& At(uint64_t id) const { return values_[id]; }
  uint64_t size() const { return values_.size(); }
  const std::vector<Value>& values() const { return values_; }

  /// True if every value in `other_sorted` is strictly greater than our max.
  /// This is the §III "generated key order" merge fast path test: when it
  /// holds, the merged dictionary is simply this dictionary + the new values
  /// appended, and no existing value ID changes.
  bool AllGreaterThanMax(const std::vector<Value>& other_sorted) const;

  /// Appends values that are sorted and all greater than the current max.
  void AppendGreater(const std::vector<Value>& sorted_values);

  size_t MemoryBytes() const;

 private:
  std::vector<Value> values_;
};

/// Unsorted append dictionary of a delta-store column: first-come IDs with a
/// hash lookup, so inserts never shift existing IDs (writes stay cheap; the
/// merge pays the sorting cost instead, §III).
///
/// Values live in a ChunkedVector so readers may resolve any *published* ID
/// concurrently with writer inserts (DESIGN.md §12.5): the hash index stays
/// writer-private, but the id->value direction is reader-safe under an
/// EpochGC pin. Happens-before for a reader that learned an ID from a
/// published delta row chains through the row-id watermark: the writer
/// stores the dictionary value BEFORE appending the id, so the id publish
/// covers the value store.
class DeltaDictionary {
 public:
  /// A null `gc` means single-threaded standalone use (tests).
  explicit DeltaDictionary(EpochGC* gc = nullptr, uint64_t chunk_rows = 256)
      : values_(gc, chunk_rows) {}

  /// Returns the ID of v, inserting it if new. Writer-only.
  uint64_t GetOrAdd(const Value& v);
  /// Writer-only (walks the writer-private hash index).
  std::optional<uint64_t> Lookup(const Value& v) const;

  /// Safe for any published id under a pin; the reference stays valid for
  /// the dictionary's lifetime (chunks never move).
  const Value& At(uint64_t id) const { return values_.At(id); }
  /// Writer-side entry count.
  uint64_t size() const { return values_.WriterSize(); }

  /// Reader snapshot of the value store (take AFTER the row-id snapshot
  /// whose ids it must cover; see Column::Reader).
  ChunkedVector<Value>::Snapshot Snap() const { return values_.Snap(); }

  size_t MemoryBytes() const;

 private:
  struct ValueHash {
    size_t operator()(const Value& v) const { return v.Hash(); }
  };
  ChunkedVector<Value> values_;
  std::unordered_map<Value, uint64_t, ValueHash> index_;  // writer-private
};

}  // namespace poly

#endif  // POLY_STORAGE_DICTIONARY_H_
