#ifndef POLY_STORAGE_COLUMN_TABLE_H_
#define POLY_STORAGE_COLUMN_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/serializer.h"
#include "common/status.h"
#include "storage/column.h"
#include "storage/mvcc.h"
#include "storage/version_store.h"
#include "types/schema.h"

namespace poly {

/// Aggregate result of merging every column of a table.
struct TableMergeStats {
  uint64_t rows_moved = 0;
  uint64_t columns_fast_path = 0;
  uint64_t columns_general_path = 0;
  uint64_t ids_reencoded = 0;
};

/// A main-memory column-store table (§II-A): one Column per schema column
/// plus a reader-safe MVCC version store (DESIGN.md §12). Row versions are
/// append-only; an UPDATE is a delete-stamp on the old version plus a new
/// version.
///
/// Thread model: writers must be serialized by the caller (the
/// TransactionManager holds a table write latch). Version-stamp readers —
/// ScanVisible/ScanVisibleRange row-id iteration, CountVisible,
/// num_versions(), cts()/dts() — are latch-free and safe against concurrent
/// writers and Vacuum: scans are bounded by the version store's published
/// watermark and pinned via epoch guards. Reading column *values* (GetRow/
/// GetValue/column()) concurrently with writers is still unsafe — Column's
/// delta vectors may reallocate on append (the remaining unguarded-growth
/// shape; see DESIGN.md §12.5). Merge requires a quiesced table.
class ColumnTable {
 public:
  ColumnTable(std::string name, Schema schema, bool compress_main = true);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Appends a new row version stamped with `cts_stamp` (an in-flight txn
  /// stamp or, for bulk loads, a committed timestamp). Returns the row ID.
  /// Row width must match the schema.
  StatusOr<uint64_t> AppendVersion(const Row& values, uint64_t cts_stamp);

  /// Marks a row version deleted with `stamp`. Fails with Aborted if the
  /// version already carries any delete stamp (first-writer-wins conflict).
  Status SetDeleteStamp(uint64_t row, uint64_t stamp);

  /// Commit/abort support: rewrite an in-flight stamp.
  void ResolveCreateStamp(uint64_t row, uint64_t commit_ts);
  void ResolveDeleteStamp(uint64_t row, uint64_t commit_ts);
  void ClearDeleteStamp(uint64_t row);

  /// Latch-free single-stamp reads (briefly pin an epoch slot). Hot loops
  /// should take ReadStamps() once instead.
  uint64_t cts(uint64_t row) const { return versions_.ReadCts(row); }
  uint64_t dts(uint64_t row) const { return versions_.ReadDts(row); }

  /// Total published row versions (visible or not) — the version store's
  /// watermark, so concurrent readers never see a partially-written row.
  uint64_t num_versions() const { return versions_.size(); }
  uint64_t num_columns() const { return columns_.size(); }

  /// Pins the version store for a batch of stamp reads (the compiled
  /// executor's fused loop holds one across its whole kernel).
  VersionStore::ReadGuard ReadStamps() const { return versions_.Read(); }

  Value GetValue(uint64_t row, size_t col) const { return columns_[col].Get(row); }
  Row GetRow(uint64_t row) const;

  const Column& column(size_t col) const { return columns_[col]; }
  Column& mutable_column(size_t col) { return columns_[col]; }

  /// Invokes fn(row_id) for every version visible in `view`.
  template <typename F>
  void ScanVisible(const ReadView& view, F&& fn) const {
    ScanVisibleRange(view, 0, ~0ull, std::forward<F>(fn));
  }

  /// Chunked read API for morsel-driven scans: invokes fn(row_id) for every
  /// version in [begin, end) visible in `view`, in ascending row order.
  /// `end` is clamped to the published watermark. Latch-free and safe
  /// against concurrent writers (one epoch pin per call, DESIGN.md §12);
  /// morsels over disjoint ranges cover exactly the rows a full ScanVisible
  /// would.
  template <typename F>
  void ScanVisibleRange(const ReadView& view, uint64_t begin, uint64_t end,
                        F&& fn) const {
    VersionStore::ReadGuard stamps = versions_.Read();
    if (end > stamps.size()) end = stamps.size();
    for (uint64_t r = begin; r < end; ++r) {
      if (view.RowVisible(stamps.cts(r), stamps.dts(r))) fn(r);
    }
  }

  /// Number of versions visible in `view`.
  uint64_t CountVisible(const ReadView& view) const;

  /// Number of versions in [begin, end) visible in `view`.
  uint64_t CountVisibleRange(const ReadView& view, uint64_t begin,
                             uint64_t end) const;

  /// Appends a new column; existing row versions read NULL in it. This is
  /// the §II-H flexible-table mechanism: "metadata about unknown columns
  /// are automatically created as soon as records with values for new
  /// columns are inserted".
  Status AddColumn(ColumnDef def);

  /// Merges every column's delta into its main part. Columns flagged
  /// generated_key_order in the schema attempt the append fast path.
  /// Caller must guarantee no concurrent writers.
  TableMergeStats Merge();

  /// Garbage-collects row versions that are invisible to every snapshot at
  /// or after `watermark` (the TransactionManager's OldestActiveSnapshot):
  /// versions with a committed delete stamp <= watermark. Returns the number
  /// of versions removed. WARNING: surviving rows are renumbered — external
  /// row IDs (indexes, graph views) must be rebuilt. Caller must guarantee
  /// no concurrent writers or column-value readers; concurrent *stamp*
  /// readers (CountVisible etc.) are safe — the replaced version chunks are
  /// epoch-retired, never freed under a live reader (DESIGN.md §12.4).
  uint64_t Vacuum(uint64_t watermark);

  /// Bytes across all columns plus MVCC vectors.
  size_t MemoryBytes() const;

  /// Serializes schema + all row versions with stamps (for the extended
  /// storage tier, DFS export, and recovery snapshots).
  void SaveTo(Serializer* out) const;
  static StatusOr<std::unique_ptr<ColumnTable>> LoadFrom(Deserializer* in);

 private:
  std::string name_;
  Schema schema_;
  bool compress_main_;
  std::vector<Column> columns_;
  VersionStore versions_;
};

}  // namespace poly

#endif  // POLY_STORAGE_COLUMN_TABLE_H_
