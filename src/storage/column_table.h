#ifndef POLY_STORAGE_COLUMN_TABLE_H_
#define POLY_STORAGE_COLUMN_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/serializer.h"
#include "common/status.h"
#include "resource/memory_budget.h"
#include "storage/column.h"
#include "storage/epoch_gc.h"
#include "storage/mvcc.h"
#include "storage/version_store.h"
#include "types/schema.h"

namespace poly {

/// Aggregate result of merging every column of a table.
struct TableMergeStats {
  uint64_t rows_moved = 0;
  uint64_t columns_fast_path = 0;
  uint64_t columns_general_path = 0;
  uint64_t ids_reencoded = 0;
};

/// A main-memory column-store table (§II-A): one Column per schema column
/// plus a reader-safe MVCC version store (DESIGN.md §12). Row versions are
/// append-only; an UPDATE is a delete-stamp on the old version plus a new
/// version.
///
/// Thread model: writers must be serialized by the caller (the
/// TransactionManager holds a table write latch). ALL reads — stamps AND
/// values — are latch-free and safe against concurrent AppendVersion,
/// AddColumn, Merge, and Vacuum (DESIGN.md §12.5): the schema, column list,
/// and version store hang off one atomically published TableState, values
/// live in chunked storage that never moves published elements, and a
/// unified ReadGuard pins the table's EpochGC once so nothing it snapshots
/// is freed underneath it. AddColumn/Vacuum republish a fresh TableState
/// and retire the old one; a pinned reader keeps its generation.
class ColumnTable {
 public:
  ColumnTable(std::string name, Schema schema, bool compress_main = true);
  ~ColumnTable();
  ColumnTable(const ColumnTable&) = delete;
  ColumnTable& operator=(const ColumnTable&) = delete;

 private:
  /// Everything a reader needs, behind ONE atomic root: a reader that loads
  /// the state under a pin gets a schema, column list, and version store
  /// that belong together. Columns and the version store are shared_ptr so
  /// successive generations can share them (AddColumn keeps both; Vacuum
  /// replaces both — which is exactly why they must travel together: a
  /// post-vacuum version watermark must never be paired with pre-vacuum,
  /// differently-numbered values).
  struct TableState {
    Schema schema;
    std::vector<std::shared_ptr<Column>> cols;
    std::shared_ptr<VersionStore> versions;
  };

 public:
  const std::string& name() const { return name_; }
  /// Writer-consistent schema view (stable reference; the Schema object a
  /// reader should use together with row data comes from ReadGuard).
  const Schema& schema() const {
    return state_.load(std::memory_order_acquire)->schema;
  }

  /// The unified read guard (DESIGN.md §12.5): ONE epoch pin covering the
  /// table state, the version-stamp snapshot, and a value snapshot of every
  /// column. Immutable after construction — a single guard may be shared by
  /// all threads of a morsel fan-out. Order matters inside: stamps are
  /// snapshotted BEFORE column readers, so the row bound never exceeds any
  /// column's published values (the writer appends values first, then the
  /// version).
  class ReadGuard {
   public:
    explicit ReadGuard(const ColumnTable* t) : gc_(&t->gc_), slot_(gc_->Pin()) {
      state_ = t->state_.load(std::memory_order_seq_cst);
      stamps_ = state_->versions->SnapUnderPin();
      readers_.reserve(state_->cols.size());
      for (const auto& c : state_->cols) readers_.emplace_back(c.get());
    }
    ~ReadGuard() { gc_->Unpin(slot_); }
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;

    /// Number of row versions this guard may read.
    uint64_t size() const { return stamps_.size(); }
    uint64_t cts(uint64_t row) const { return stamps_.cts(row); }
    uint64_t dts(uint64_t row) const { return stamps_.dts(row); }

    const Schema& schema() const { return state_->schema; }
    size_t num_columns() const { return readers_.size(); }
    const Column::Reader& col(size_t c) const { return readers_[c]; }

    Value GetValue(uint64_t row, size_t c) const { return readers_[c].Get(row); }
    Row GetRow(uint64_t row) const {
      Row out;
      out.reserve(readers_.size());
      for (const auto& r : readers_) out.push_back(r.Get(row));
      return out;
    }

    /// Invokes fn(row_id) for every version in [begin, end) visible in
    /// `view`, in ascending row order; `end` clamps to the watermark.
    template <typename F>
    void ScanVisibleRange(const ReadView& view, uint64_t begin, uint64_t end,
                          F&& fn) const {
      if (end > stamps_.size()) end = stamps_.size();
      for (uint64_t r = begin; r < end; ++r) {
        if (view.RowVisible(stamps_.cts(r), stamps_.dts(r))) fn(r);
      }
    }
    template <typename F>
    void ScanVisible(const ReadView& view, F&& fn) const {
      ScanVisibleRange(view, 0, ~0ull, std::forward<F>(fn));
    }

   private:
    const EpochGC* gc_;
    int slot_;
    const TableState* state_;
    VersionStore::Snapshot stamps_;
    std::vector<Column::Reader> readers_;
  };

  ReadGuard Read() const { return ReadGuard(this); }

  /// Appends a new row version stamped with `cts_stamp` (an in-flight txn
  /// stamp or, for bulk loads, a committed timestamp). Returns the row ID.
  /// Row width must match the schema.
  StatusOr<uint64_t> AppendVersion(const Row& values, uint64_t cts_stamp);

  /// Marks a row version deleted with `stamp`. Fails with Aborted if the
  /// version already carries any delete stamp (first-writer-wins conflict).
  Status SetDeleteStamp(uint64_t row, uint64_t stamp);

  /// Commit/abort support: rewrite an in-flight stamp.
  void ResolveCreateStamp(uint64_t row, uint64_t commit_ts);
  void ResolveDeleteStamp(uint64_t row, uint64_t commit_ts);
  void ClearDeleteStamp(uint64_t row);

  /// Latch-free single-stamp reads (briefly pin an epoch slot). Hot loops
  /// should take Read() once instead.
  uint64_t cts(uint64_t row) const;
  uint64_t dts(uint64_t row) const;

  /// Total published row versions (visible or not) — the version store's
  /// watermark, so concurrent readers never see a partially-written row.
  uint64_t num_versions() const;
  size_t num_columns() const;

  /// Latch-free single-value reads (briefly pin an epoch slot). Hot loops
  /// should take Read() once instead.
  Value GetValue(uint64_t row, size_t col) const;
  Row GetRow(uint64_t row) const;

  /// Writer-consistent column access (quiesced callers: tests, benches,
  /// single-threaded load phases). Concurrent readers use Read().col().
  const Column& column(size_t col) const {
    return *state_.load(std::memory_order_acquire)->cols[col];
  }

  /// Invokes fn(row_id) for every version visible in `view`.
  template <typename F>
  void ScanVisible(const ReadView& view, F&& fn) const {
    ScanVisibleRange(view, 0, ~0ull, std::forward<F>(fn));
  }

  /// Chunked read API for morsel-driven scans: invokes fn(row_id) for every
  /// version in [begin, end) visible in `view`, in ascending row order.
  /// `end` is clamped to the published watermark. Latch-free and safe
  /// against concurrent writers (one epoch pin per call, DESIGN.md §12);
  /// morsels over disjoint ranges cover exactly the rows a full ScanVisible
  /// would. Stamp-only — callers that also read values take one ReadGuard
  /// and use its ScanVisibleRange instead.
  template <typename F>
  void ScanVisibleRange(const ReadView& view, uint64_t begin, uint64_t end,
                        F&& fn) const {
    EpochPin pin(&gc_);
    const TableState* st = state_.load(std::memory_order_seq_cst);
    VersionStore::Snapshot stamps = st->versions->SnapUnderPin();
    if (end > stamps.size()) end = stamps.size();
    for (uint64_t r = begin; r < end; ++r) {
      if (view.RowVisible(stamps.cts(r), stamps.dts(r))) fn(r);
    }
  }

  /// Number of versions visible in `view`.
  uint64_t CountVisible(const ReadView& view) const;

  /// Number of versions in [begin, end) visible in `view`.
  uint64_t CountVisibleRange(const ReadView& view, uint64_t begin,
                             uint64_t end) const;

  /// Appends a new column; existing row versions read NULL in it. This is
  /// the §II-H flexible-table mechanism: "metadata about unknown columns
  /// are automatically created as soon as records with values for new
  /// columns are inserted". Publishes a fresh TableState sharing the
  /// existing columns and version store, so an in-flight scan keeps its
  /// pinned column list and is never invalidated.
  Status AddColumn(ColumnDef def);

  /// Merges every column's delta into its main part. Columns flagged
  /// generated_key_order in the schema attempt the append fast path.
  /// Caller must serialize against writers; concurrent readers are safe
  /// (each column republishes its state atomically, and merge preserves
  /// row numbering).
  TableMergeStats Merge();

  /// Garbage-collects row versions that are invisible to every snapshot at
  /// or after `watermark` (the TransactionManager's OldestActiveSnapshot):
  /// versions with a committed delete stamp <= watermark. Returns the number
  /// of versions removed. WARNING: surviving rows are renumbered — external
  /// row IDs (indexes, graph views) must be rebuilt. Caller must guarantee
  /// no concurrent writers; concurrent readers (stamps AND values) are safe:
  /// the renumbered rows live in a fresh TableState published atomically,
  /// and the old generation is epoch-retired, never freed under a live
  /// guard (DESIGN.md §12.4/§12.5).
  uint64_t Vacuum(uint64_t watermark);

  /// Bytes across all columns plus MVCC storage.
  size_t MemoryBytes() const;

  /// Binds this table's footprint to a memory-budget node (normally the
  /// governor's storage node). Charges the current MemoryBytes()
  /// immediately — adoption after a tier page-in charges the paged-in
  /// bytes — then every AppendVersion force-charges a per-row estimate, and
  /// the destructor releases the running total. Call once, before
  /// concurrent traffic; the node must outlive the table.
  void BindMemoryBudget(resource::BudgetNode* node);
  resource::BudgetNode* memory_budget() const {
    return budget_.load(std::memory_order_acquire);
  }

  /// Serializes schema + all row versions with stamps (for the extended
  /// storage tier, DFS export, and recovery snapshots).
  void SaveTo(Serializer* out) const;
  static StatusOr<std::unique_ptr<ColumnTable>> LoadFrom(Deserializer* in);

  // ---- reclamation introspection (tests) ---------------------------------
  size_t retired_count() const { return gc_.retired_count(); }
  size_t ReclaimRetired() { return gc_.ReclaimExpired(); }

 private:
  std::string name_;
  bool compress_main_;
  // gc_ declared before state_: retired generations are freed by gc_'s
  // destructor, after the explicit teardown of the current state in
  // ~ColumnTable; no free_fn calls back into the gc.
  EpochGC gc_;
  std::atomic<TableState*> state_;
  // Budget accounting (DESIGN.md §13.1): the node is written once at bind
  // time; budget_charged_ tracks what this table owes so the destructor
  // can release exactly that (MemoryBytes() drifts with vacuum/compress).
  std::atomic<resource::BudgetNode*> budget_{nullptr};
  std::atomic<uint64_t> budget_charged_{0};
};

}  // namespace poly

#endif  // POLY_STORAGE_COLUMN_TABLE_H_
