#include "storage/epoch_gc.h"

#include <thread>

#include "common/metrics.h"

namespace poly {

EpochGC::~EpochGC() {
  // Contract: no live pins, so every retired entry is reclaimable. Free
  // functions may destroy structures that point into OTHER retired entries'
  // memory (e.g. a retired TableState owning a VersionStore whose old
  // directories were retired separately) — none of them call back into this
  // EpochGC, so a plain sweep is safe.
  std::lock_guard<std::mutex> lock(retire_mu_);
  for (auto& e : retired_) e.free_fn();
  retired_.clear();
}

int EpochGC::Pin() const {
  uint64_t e = epoch_.load(std::memory_order_acquire);
  size_t start =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kReaderSlots;
  for (;;) {
    for (int i = 0; i < kReaderSlots; ++i) {
      size_t s = (start + i) % kReaderSlots;
      uint64_t idle = kIdleEpoch;
      // seq_cst: the pin must be totally ordered against the reclaimer's
      // slot scan — if the scan missed this pin, our subsequent directory
      // load is ordered after the directory republish and cannot return
      // the retired pointer.
      if (slots_[s].epoch.compare_exchange_strong(idle, e,
                                                  std::memory_order_seq_cst)) {
        return static_cast<int>(s);
      }
    }
    // All slots busy (> kReaderSlots concurrent guards): wait for one.
    std::this_thread::yield();
    e = epoch_.load(std::memory_order_acquire);
  }
}

void EpochGC::Unpin(int slot) const {
  // release: everything this reader did with pinned memory happens-before
  // a reclaimer that acquires the idle value and frees it.
  slots_[slot].epoch.store(kIdleEpoch, std::memory_order_release);
}

void EpochGC::Retire(std::function<void()> free_fn) {
  uint64_t e = epoch_.fetch_add(1, std::memory_order_seq_cst);
  std::lock_guard<std::mutex> lock(retire_mu_);
  retired_.push_back({e, std::move(free_fn)});
  metrics::Default().counter("storage.mvcc.retired")->Add(1);
}

size_t EpochGC::ReclaimExpired() {
  std::lock_guard<std::mutex> lock(retire_mu_);
  uint64_t min_active = kIdleEpoch;
  for (const Slot& s : slots_) {
    // seq_cst scan paired with the reader's seq_cst pin; acquire semantics
    // make an unpinned reader's accesses happen-before the frees below.
    uint64_t e = s.epoch.load(std::memory_order_seq_cst);
    if (e < min_active) min_active = e;
  }
  size_t freed = 0;
  for (size_t i = 0; i < retired_.size();) {
    if (retired_[i].epoch < min_active) {
      retired_[i].free_fn();
      retired_[i] = std::move(retired_.back());
      retired_.pop_back();
      ++freed;
    } else {
      ++i;
    }
  }
  if (freed > 0) {
    metrics::Default().counter("storage.mvcc.reclaimed")->Add(freed);
  }
  return freed;
}

size_t EpochGC::retired_count() const {
  std::lock_guard<std::mutex> lock(retire_mu_);
  return retired_.size();
}

}  // namespace poly
