#ifndef POLY_STORAGE_DATABASE_H_
#define POLY_STORAGE_DATABASE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/exec_options.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "query/result.h"
#include "storage/access_hooks.h"
#include "storage/column_table.h"
#include "storage/row_table.h"

namespace poly {

namespace resource {
class ResourceGovernor;
}  // namespace resource

/// In-memory catalog of column tables (plus row-store baselines for the
/// experiments). The single-node analogue of the SOE catalog service.
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates a column table; fails with AlreadyExists on a name clash.
  StatusOr<ColumnTable*> CreateTable(const std::string& name, Schema schema,
                                     bool compress_main = true);
  /// Creates a row-store table (baseline engine).
  StatusOr<RowTable*> CreateRowTable(const std::string& name, Schema schema);

  StatusOr<ColumnTable*> GetTable(const std::string& name) const;
  StatusOr<RowTable*> GetRowTable(const std::string& name) const;

  /// Like GetTable but returns a shared handle that keeps the table alive
  /// even if a concurrent DropTable (e.g. the tiering daemon demoting the
  /// partition) removes it from the catalog mid-scan. Readers that may race
  /// tier movement must pin; the raw-pointer GetTable stays valid for
  /// callers that own the table lifecycle.
  StatusOr<std::shared_ptr<ColumnTable>> PinTable(const std::string& name) const;

  Status DropTable(const std::string& name);

  /// Adopts an externally built table (used by recovery and tier movement).
  Status AdoptTable(std::unique_ptr<ColumnTable> table);

  std::vector<std::string> TableNames() const;
  size_t MemoryBytes() const;

  /// Default execution options handed to every Executor constructed without
  /// explicit options. Changing them drops the shared pool (rebuilt on
  /// demand at the new width); do not call concurrently with running
  /// queries.
  void set_exec_options(const ExecOptions& opts);
  ExecOptions exec_options() const;

  /// Shared worker pool for parallel query execution, created on demand
  /// with exec_options().num_threads - 1 workers (the query's calling
  /// thread is the remaining runner). Null while the default is serial.
  ThreadPool* exec_pool() const;

  /// Access observer fed by the executors after every partition scan (when
  /// ExecOptions::track_access is on). Null by default; set by the tiering
  /// daemon. The observer must outlive the queries that see it — detach
  /// (set nullptr) and quiesce before destroying it.
  void set_access_observer(AccessObserver* observer) {
    access_observer_.store(observer, std::memory_order_release);
  }
  AccessObserver* access_observer() const {
    return access_observer_.load(std::memory_order_acquire);
  }

  /// Demand-paging resolver consulted by the executors when a scan hits a
  /// partition missing from the catalog (demoted). Same lifetime rules as
  /// the observer.
  void set_tier_resolver(TierResolver* resolver) {
    tier_resolver_.store(resolver, std::memory_order_release);
  }
  TierResolver* tier_resolver() const {
    return tier_resolver_.load(std::memory_order_acquire);
  }

  /// Metric registry this instance reports to. Defaults to the process-wide
  /// metrics::Default(); standalone instances in tests pass their own so
  /// tiering/resource counters don't cross-pollute. Set before attaching
  /// daemons or governors — they cache metric pointers at construction.
  void set_metrics_registry(metrics::Registry* registry) {
    metrics_.store(registry, std::memory_order_release);
  }
  metrics::Registry* metrics() const {
    return metrics_.load(std::memory_order_acquire);
  }

  /// Workload governor consulted by Execute (admission + per-query memory
  /// budget, DESIGN.md §13). Null by default: Execute then parses and runs
  /// unmetered. Tables created/adopted while a governor is attached charge
  /// their bytes to its storage budget node. Same lifetime rules as the
  /// access observer: the governor must outlive every table bound to it.
  void set_resource_governor(resource::ResourceGovernor* governor) {
    governor_.store(governor, std::memory_order_release);
  }
  resource::ResourceGovernor* resource_governor() const {
    return governor_.load(std::memory_order_acquire);
  }

  /// One-stop SQL entry point: parse -> optimize -> admission (when a
  /// governor is attached) -> compiled engine when eligible, interpreted
  /// executor otherwise. Reads at the latest committed snapshot unless a
  /// view is given. ExecOptions::workload_class routes admission;
  /// ResourceExhausted from admission or the query budget surfaces here.
  StatusOr<ResultSet> Execute(const std::string& sql);
  StatusOr<ResultSet> Execute(const std::string& sql, const ExecOptions& opts);
  StatusOr<ResultSet> Execute(const std::string& sql, ReadView view,
                              const ExecOptions& opts);

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<ColumnTable>> tables_;
  std::unordered_map<std::string, std::unique_ptr<RowTable>> row_tables_;
  ExecOptions exec_options_;
  mutable std::unique_ptr<ThreadPool> exec_pool_;
  std::atomic<AccessObserver*> access_observer_{nullptr};
  std::atomic<TierResolver*> tier_resolver_{nullptr};
  std::atomic<metrics::Registry*> metrics_{&metrics::Default()};
  std::atomic<resource::ResourceGovernor*> governor_{nullptr};
};

}  // namespace poly

#endif  // POLY_STORAGE_DATABASE_H_
