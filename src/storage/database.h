#ifndef POLY_STORAGE_DATABASE_H_
#define POLY_STORAGE_DATABASE_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/column_table.h"
#include "storage/row_table.h"

namespace poly {

/// In-memory catalog of column tables (plus row-store baselines for the
/// experiments). The single-node analogue of the SOE catalog service.
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates a column table; fails with AlreadyExists on a name clash.
  StatusOr<ColumnTable*> CreateTable(const std::string& name, Schema schema,
                                     bool compress_main = true);
  /// Creates a row-store table (baseline engine).
  StatusOr<RowTable*> CreateRowTable(const std::string& name, Schema schema);

  StatusOr<ColumnTable*> GetTable(const std::string& name) const;
  StatusOr<RowTable*> GetRowTable(const std::string& name) const;

  Status DropTable(const std::string& name);

  /// Adopts an externally built table (used by recovery and tier movement).
  Status AdoptTable(std::unique_ptr<ColumnTable> table);

  std::vector<std::string> TableNames() const;
  size_t MemoryBytes() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<ColumnTable>> tables_;
  std::unordered_map<std::string, std::unique_ptr<RowTable>> row_tables_;
};

}  // namespace poly

#endif  // POLY_STORAGE_DATABASE_H_
