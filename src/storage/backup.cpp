#include "storage/backup.h"

#include <cstdio>

#include "common/serializer.h"

namespace poly {

namespace {
constexpr uint32_t kSnapshotMagic = 0x504F4C59;  // "POLY"
}

std::string SerializeDatabase(const Database& db) {
  Serializer s;
  s.PutU32(kSnapshotMagic);
  std::vector<std::string> names = db.TableNames();
  // Row tables are baseline-only fixtures; snapshot covers column tables.
  std::vector<ColumnTable*> tables;
  for (const auto& name : names) {
    auto t = db.GetTable(name);
    if (t.ok()) tables.push_back(*t);
  }
  s.PutVarint(tables.size());
  for (ColumnTable* t : tables) t->SaveTo(&s);
  return s.Release();
}

Status DeserializeDatabase(const std::string& snapshot, Database* out) {
  Deserializer d(snapshot);
  POLY_ASSIGN_OR_RETURN(uint32_t magic, d.GetU32());
  if (magic != kSnapshotMagic) return Status::Corruption("not a polyphony snapshot");
  POLY_ASSIGN_OR_RETURN(uint64_t count, d.GetVarint());
  for (uint64_t i = 0; i < count; ++i) {
    POLY_ASSIGN_OR_RETURN(auto table, ColumnTable::LoadFrom(&d));
    POLY_RETURN_IF_ERROR(out->AdoptTable(std::move(table)));
  }
  return Status::OK();
}

Status BackupDatabaseToFile(const Database& db, const std::string& path) {
  std::string snapshot = SerializeDatabase(db);
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + path + " for backup");
  size_t written = std::fwrite(snapshot.data(), 1, snapshot.size(), f);
  std::fclose(f);
  if (written != snapshot.size()) return Status::IOError("short write to " + path);
  return Status::OK();
}

Status RestoreDatabaseFromFile(const std::string& path, Database* out) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open backup " + path);
  std::string data;
  char buf[1 << 16];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, got);
  std::fclose(f);
  return DeserializeDatabase(data, out);
}

}  // namespace poly
