#ifndef POLY_STORAGE_EPOCH_GC_H_
#define POLY_STORAGE_EPOCH_GC_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

namespace poly {

/// Epoch-based reclamation shared by every chunked, RCU-published structure
/// of a table: version stamps, column delta ids, delta-dictionary values,
/// row chunks, and the table state itself (DESIGN.md §12.3/§12.4).
/// Extracted from VersionStore so stamps and values share ONE pin: a reader
/// pins once, and every directory it snapshots under that pin is protected
/// together — this is what makes the unified table ReadGuard possible.
///
/// Thread model: any number of concurrent Pin/Unpin callers; Retire and
/// ReclaimExpired may run concurrently with each other and with readers
/// (the retired list is mutex-guarded; pins never take the mutex).
class EpochGC {
 public:
  static constexpr uint64_t kIdleEpoch = ~0ull;
  static constexpr int kReaderSlots = 64;

  EpochGC() = default;
  /// Contract: no live pins at destruction; every queued free_fn runs.
  ~EpochGC();
  EpochGC(const EpochGC&) = delete;
  EpochGC& operator=(const EpochGC&) = delete;

  /// Claims an epoch slot with a seq_cst CAS and returns its index. The
  /// seq_cst pin totally orders against the reclaimer's slot scan: if the
  /// scan missed this pin, the pinner's subsequent seq_cst load of any
  /// published directory is guaranteed to return the *new* pointer, never
  /// the retired one (DESIGN.md §12.3).
  int Pin() const;
  /// Release store: everything the reader did with pinned memory
  /// happens-before a reclaimer that observes the idle slot and frees it.
  void Unpin(int slot) const;

  /// Queues free_fn stamped with a fresh epoch. Callers publish the
  /// replacement pointer (seq_cst) BEFORE retiring the old one; the epoch
  /// bump here is seq_cst so the §12.4 ordering argument holds.
  void Retire(std::function<void()> free_fn);

  /// Frees retired entries whose epoch every pinned reader has moved past.
  /// Returns the number of entries freed.
  size_t ReclaimExpired();

  size_t retired_count() const;

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> epoch{kIdleEpoch};
  };

  mutable std::array<Slot, kReaderSlots> slots_;
  std::atomic<uint64_t> epoch_{1};
  struct RetiredEntry {
    uint64_t epoch;
    std::function<void()> free_fn;
  };
  mutable std::mutex retire_mu_;
  std::vector<RetiredEntry> retired_;  // guarded by retire_mu_
};

/// RAII pin on an EpochGC.
class EpochPin {
 public:
  explicit EpochPin(const EpochGC* gc) : gc_(gc), slot_(gc->Pin()) {}
  ~EpochPin() { gc_->Unpin(slot_); }
  EpochPin(const EpochPin&) = delete;
  EpochPin& operator=(const EpochPin&) = delete;

 private:
  const EpochGC* gc_;
  int slot_;
};

}  // namespace poly

#endif  // POLY_STORAGE_EPOCH_GC_H_
