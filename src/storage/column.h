#ifndef POLY_STORAGE_COLUMN_H_
#define POLY_STORAGE_COLUMN_H_

#include <cstdint>
#include <vector>

#include "common/bitpack.h"
#include "storage/dictionary.h"
#include "types/value.h"

namespace poly {

/// Statistics about one delta→main merge of a single column, reported so
/// experiment E11 can compare the generated-key-order fast path with the
/// general re-encode path.
struct ColumnMergeStats {
  bool fast_path = false;       ///< dictionary appended, main IDs untouched
  uint64_t ids_reencoded = 0;   ///< how many existing main IDs were rewritten
  uint64_t dict_entries_moved = 0;
};

/// One column of a column-store table: an immutable, dictionary-compressed
/// main part plus a write-optimized delta part (§II-A, §III, [8]).
///
/// Physical layout:
///   main  = SortedDictionary + bit-packed value-ID vector
///   delta = DeltaDictionary (insertion order) + plain value-ID vector
/// Row position r < main_size() reads from main, else from delta.
class Column {
 public:
  /// `compress_main`: SOE nodes relax reference compression for cheaper
  /// (more energy-efficient) decoding (§IV-A); false stores 64-bit IDs.
  explicit Column(bool compress_main = true) : compress_main_(compress_main) {}

  /// Appends a value to the delta; returns the global row position.
  uint64_t Append(const Value& v);

  /// Value at global row position.
  Value Get(uint64_t row) const;

  uint64_t size() const { return main_ids_.size() + delta_ids_.size(); }
  uint64_t main_size() const { return main_ids_.size(); }
  uint64_t delta_size() const { return delta_ids_.size(); }

  const SortedDictionary& main_dictionary() const { return main_dict_; }
  const DeltaDictionary& delta_dictionary() const { return delta_dict_; }

  /// Raw main value ID (row < main_size()).
  uint64_t MainId(uint64_t row) const { return main_ids_.Get(row); }
  /// Raw delta value ID (index into delta rows).
  uint64_t DeltaId(uint64_t i) const { return delta_ids_[i]; }

  /// Decodes main value IDs [begin, end) into `out`.
  void DecodeMainIds(uint64_t begin, uint64_t end, uint64_t* out) const {
    main_ids_.Decode(begin, end, out);
  }

  /// Merges delta into main, rebuilding or appending to the dictionary.
  /// `hint_generated_order` declares the §III application knowledge that new
  /// keys sort after all existing ones; the merge verifies the hint and
  /// falls back to the general path if it does not hold.
  ColumnMergeStats Merge(bool hint_generated_order = false);

  /// Approximate heap bytes of dictionary + ID storage.
  size_t MemoryBytes() const;

 private:
  bool compress_main_;
  SortedDictionary main_dict_;
  BitPackedVector main_ids_{1};
  DeltaDictionary delta_dict_;
  std::vector<uint64_t> delta_ids_;
};

}  // namespace poly

#endif  // POLY_STORAGE_COLUMN_H_
