#ifndef POLY_STORAGE_COLUMN_H_
#define POLY_STORAGE_COLUMN_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/bitpack.h"
#include "storage/chunked_vector.h"
#include "storage/dictionary.h"
#include "types/value.h"

namespace poly {

/// Statistics about one delta→main merge of a single column, reported so
/// experiment E11 can compare the generated-key-order fast path with the
/// general re-encode path.
struct ColumnMergeStats {
  bool fast_path = false;       ///< dictionary appended, main IDs untouched
  uint64_t ids_reencoded = 0;   ///< how many existing main IDs were rewritten
  uint64_t dict_entries_moved = 0;
};

/// One column of a column-store table: an immutable, dictionary-compressed
/// main part plus a write-optimized delta part (§II-A, §III, [8]).
///
/// Physical layout:
///   main  = SortedDictionary + bit-packed value-ID vector
///   delta = DeltaDictionary (insertion order) + chunked value-ID vector
/// Row position r < main_size() reads from main, else from delta.
///
/// Reader safety (DESIGN.md §12.5): the whole layout hangs off one
/// atomically published State. Appends go to chunked delta storage that
/// never moves published elements; Merge builds a NEW State (fresh main,
/// empty delta) and republishes it RCU-style, retiring the old one through
/// the shared EpochGC — so a reader that pinned before the merge keeps a
/// fully consistent pre-merge column, and row ids mean the same thing in
/// both generations (merge preserves row order).
class Column {
 public:
  /// `compress_main`: SOE nodes relax reference compression for cheaper
  /// (more energy-efficient) decoding (§IV-A); false stores 64-bit IDs.
  /// A null `gc` means single-threaded standalone use (tests): the column
  /// owns a private gc.
  explicit Column(bool compress_main = true, EpochGC* gc = nullptr);
  ~Column();
  Column(const Column&) = delete;
  Column& operator=(const Column&) = delete;

 private:
  struct State {
    State(EpochGC* gc, uint64_t delta_chunk_rows)
        : main_ids(1), delta_dict(gc, delta_chunk_rows),
          delta_ids(gc, delta_chunk_rows) {}
    SortedDictionary main_dict;
    BitPackedVector main_ids;
    DeltaDictionary delta_dict;
    ChunkedVector<uint64_t> delta_ids;
  };

 public:
  /// Appends a value to the delta; returns the global row position. Writer
  /// order matters: the dictionary value is published before the row id, so
  /// a reader that sees the id (bounded by its snapshot watermark) can
  /// resolve it.
  uint64_t Append(const Value& v);

  /// A consistent view of the column taken under an EpochGC pin: the state
  /// pointer (seq_cst, pairs with Merge's republish), a delta row-id
  /// snapshot, and — taken after it — a delta dictionary snapshot covering
  /// every id the row snapshot can yield. No mutable cache: one Reader may
  /// be shared by all threads of a morsel fan-out.
  class Reader {
   public:
    Reader() = default;
    explicit Reader(const Column* c) {
      st_ = c->state_.load(std::memory_order_seq_cst);
      delta_ids_ = st_->delta_ids.Snap();
      delta_vals_ = st_->delta_dict.Snap();
      main_n_ = st_->main_ids.size();
    }

    uint64_t size() const { return main_n_ + delta_ids_.size(); }
    uint64_t main_size() const { return main_n_; }
    uint64_t delta_size() const { return delta_ids_.size(); }

    Value Get(uint64_t row) const {
      if (row < main_n_) return st_->main_dict.At(st_->main_ids.Get(row));
      return delta_vals_[delta_ids_[row - main_n_]];
    }

    const SortedDictionary& main_dictionary() const { return st_->main_dict; }
    uint64_t MainId(uint64_t row) const { return st_->main_ids.Get(row); }
    uint64_t DeltaId(uint64_t i) const { return delta_ids_[i]; }
    /// Number of delta-dictionary entries this snapshot can resolve.
    uint64_t delta_dict_size() const { return delta_vals_.size(); }
    const Value& DeltaDictValue(uint64_t id) const { return delta_vals_[id]; }
    void DecodeMainIds(uint64_t begin, uint64_t end, uint64_t* out) const {
      st_->main_ids.Decode(begin, end, out);
    }

   private:
    const State* st_ = nullptr;
    ChunkedVector<uint64_t>::Snapshot delta_ids_;
    ChunkedVector<Value>::Snapshot delta_vals_;
    uint64_t main_n_ = 0;
  };

  /// Caller must hold a pin on the shared gc (a table ReadGuard does).
  Reader SnapshotForRead() const { return Reader(this); }

  // ---- writer-consistent accessors ---------------------------------------
  // Safe from the writer or when the column is quiesced (single-threaded
  // tests, load/merge phases). Concurrent readers use a Reader instead.

  /// Value at global row position.
  Value Get(uint64_t row) const;

  uint64_t size() const;
  uint64_t main_size() const;
  uint64_t delta_size() const;

  const SortedDictionary& main_dictionary() const;
  const DeltaDictionary& delta_dictionary() const;

  /// Raw main value ID (row < main_size()).
  uint64_t MainId(uint64_t row) const;
  /// Raw delta value ID (index into delta rows).
  uint64_t DeltaId(uint64_t i) const;

  /// Decodes main value IDs [begin, end) into `out`.
  void DecodeMainIds(uint64_t begin, uint64_t end, uint64_t* out) const;

  /// Merges delta into main by building and atomically publishing a fresh
  /// State (old one retired through the gc — a pinned reader keeps it).
  /// `hint_generated_order` declares the §III application knowledge that new
  /// keys sort after all existing ones; the merge verifies the hint and
  /// falls back to the general path if it does not hold.
  ColumnMergeStats Merge(bool hint_generated_order = false);

  /// Approximate heap bytes of dictionary + ID storage.
  size_t MemoryBytes() const;

 private:
  static constexpr uint64_t kDeltaChunkRows = 256;

  bool compress_main_;
  // Declared before state_ so the owned gc (when present) is destroyed
  // after the current state; retired states are freed by the gc destructor.
  std::unique_ptr<EpochGC> owned_gc_;
  EpochGC* gc_;  // never null
  std::atomic<State*> state_;
};

}  // namespace poly

#endif  // POLY_STORAGE_COLUMN_H_
