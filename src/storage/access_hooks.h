#ifndef POLY_STORAGE_ACCESS_HOOKS_H_
#define POLY_STORAGE_ACCESS_HOOKS_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace poly {

class ColumnTable;

/// One scan's worth of access against a single partition table, reported by
/// the executors after the partition finishes. Aggregated, not per-row: the
/// observer fires once per (query, partition) pair, so observation cost is
/// bounded by plan shape, never by data volume.
struct AccessEvent {
  /// Partition table name as stored in the catalog (e.g. "orders" or
  /// "orders$aged").
  std::string partition;
  /// Rows the scan actually visited (post-pruning, pre-filter).
  uint64_t rows_scanned = 0;
  /// Bytes touched, using the executors' column-width accounting.
  uint64_t bytes = 0;
  /// True when the scan was served by the primary-key fast path
  /// (TryIdRangePredicate) — the OLTP-shaped "point read" signal, weighted
  /// separately from analytic sweeps by the heat tracker.
  bool point_read = false;
  /// Names of the columns the scan actually read, for per-column heat on
  /// wide tables. The interpreted executor materializes whole rows and so
  /// reports every schema column (the truth of that path); the compiled
  /// executor reports exactly the slots its fused kernel touched. Empty is
  /// valid: observers then attribute the access to the partition only.
  std::vector<std::string> columns;
};

/// Sink for AccessEvents. Implementations must be thread-safe: both
/// executors call OnAccess concurrently from query threads. The storage
/// layer depends only on this interface, never on src/tiering.
class AccessObserver {
 public:
  virtual ~AccessObserver() = default;
  virtual void OnAccess(const AccessEvent& event) = 0;
};

/// Demand-paging hook: when a scan asks the catalog for a partition that is
/// not resident (demoted to warm/cold), the executor offers the miss to the
/// resolver before failing. A tiering daemon implements this by promoting
/// the partition back from ExtendedStorage ("hot-tier miss"). Returning
/// NotFound means "not mine" and the original error propagates, so databases
/// without a resolver behave exactly as before.
///
/// The success value is a *pinned* table reference taken while the resolver
/// still holds its movement lock: the caller can scan it even if the daemon
/// demotes the partition again immediately after — re-looking the name up in
/// the catalog instead would reopen that race.
class TierResolver {
 public:
  virtual ~TierResolver() = default;
  virtual StatusOr<std::shared_ptr<ColumnTable>> ResolveMissing(
      const std::string& table) = 0;
};

}  // namespace poly

#endif  // POLY_STORAGE_ACCESS_HOOKS_H_
