#include "storage/version_store.h"

#include <algorithm>

namespace poly {

namespace {
uint64_t ShiftFor(uint64_t pow2) {
  uint64_t s = 0;
  while ((1ull << s) < pow2) ++s;
  return s;
}
}  // namespace

VersionStore::VersionStore(uint64_t chunk_rows, EpochGC* gc)
    : chunk_rows_(chunk_rows),
      chunk_shift_(ShiftFor(chunk_rows)),
      chunk_mask_(chunk_rows - 1),
      owned_gc_(gc == nullptr ? std::make_unique<EpochGC>() : nullptr),
      gc_(gc == nullptr ? owned_gc_.get() : gc),
      dir_(new Directory(kInitialDirectoryChunks)) {}

VersionStore::~VersionStore() {
  // Contract: no live ReadGuards at destruction. Entries this store retired
  // are freed by the gc (the owned one's destructor runs right after this,
  // a shared one when its table tears down); the current directory and its
  // chunks are freed here.
  Directory* dir = dir_.load(std::memory_order_relaxed);
  for (uint64_t i = 0; i < dir->capacity; ++i) {
    delete[] dir->chunks[i].load(std::memory_order_relaxed);
  }
  delete dir;
}

uint64_t VersionStore::Append(uint64_t cts, uint64_t dts) {
  uint64_t row = size_;
  uint64_t ci = row >> chunk_shift_;
  Directory* dir = dir_.load(std::memory_order_relaxed);
  if (ci >= dir->capacity) dir = Grow(dir);
  Stamp* chunk = dir->chunks[ci].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new Stamp[chunk_rows_];
    dir->chunks[ci].store(chunk, std::memory_order_release);
    num_chunks_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t off = row & chunk_mask_;
  chunk[off].cts.store(cts, std::memory_order_relaxed);
  chunk[off].dts.store(dts, std::memory_order_relaxed);
  ++size_;
  // The publish: a reader that acquires the new watermark observes the
  // chunk pointer, both stamp stores above, AND every value-chunk store the
  // writer sequenced before this call (the table appends values first, then
  // the version — see DESIGN.md §12.5).
  dir->watermark.store(size_, std::memory_order_release);
  return row;
}

VersionStore::Directory* VersionStore::Grow(Directory* old) {
  auto* bigger = new Directory(old->capacity * 2);
  for (uint64_t i = 0; i < old->capacity; ++i) {
    bigger->chunks[i].store(old->chunks[i].load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
  }
  bigger->watermark.store(size_, std::memory_order_relaxed);
  // seq_cst publish: pairs with the reader's pin + directory load.
  dir_.store(bigger, std::memory_order_seq_cst);
  // Only the pointer array is retired — the chunks are shared with the new
  // directory and live on.
  gc_->Retire([old] { delete old; });
  gc_->ReclaimExpired();
  return bigger;
}

void VersionStore::WriterStoreCts(uint64_t row, uint64_t v) {
  Directory* dir = dir_.load(std::memory_order_relaxed);
  dir->chunks[row >> chunk_shift_]
      .load(std::memory_order_relaxed)[row & chunk_mask_]
      .cts.store(v, std::memory_order_relaxed);
}

void VersionStore::WriterStoreDts(uint64_t row, uint64_t v) {
  Directory* dir = dir_.load(std::memory_order_relaxed);
  dir->chunks[row >> chunk_shift_]
      .load(std::memory_order_relaxed)[row & chunk_mask_]
      .dts.store(v, std::memory_order_relaxed);
}

uint64_t VersionStore::WriterLoadCts(uint64_t row) const {
  Directory* dir = dir_.load(std::memory_order_relaxed);
  return dir->chunks[row >> chunk_shift_]
      .load(std::memory_order_relaxed)[row & chunk_mask_]
      .cts.load(std::memory_order_relaxed);
}

uint64_t VersionStore::WriterLoadDts(uint64_t row) const {
  Directory* dir = dir_.load(std::memory_order_relaxed);
  return dir->chunks[row >> chunk_shift_]
      .load(std::memory_order_relaxed)[row & chunk_mask_]
      .dts.load(std::memory_order_relaxed);
}

void VersionStore::Rebuild(const std::vector<std::pair<uint64_t, uint64_t>>& stamps) {
  uint64_t n = stamps.size();
  uint64_t chunks_needed = (n + chunk_rows_ - 1) >> chunk_shift_;
  uint64_t cap = kInitialDirectoryChunks;
  while (cap < chunks_needed) cap *= 2;
  auto* fresh = new Directory(cap);
  for (uint64_t ci = 0; ci < chunks_needed; ++ci) {
    Stamp* chunk = new Stamp[chunk_rows_];
    uint64_t base = ci << chunk_shift_;
    uint64_t limit = std::min(n - base, chunk_rows_);
    for (uint64_t off = 0; off < limit; ++off) {
      chunk[off].cts.store(stamps[base + off].first, std::memory_order_relaxed);
      chunk[off].dts.store(stamps[base + off].second, std::memory_order_relaxed);
    }
    fresh->chunks[ci].store(chunk, std::memory_order_relaxed);
  }
  fresh->watermark.store(n, std::memory_order_relaxed);

  Directory* old = dir_.load(std::memory_order_relaxed);
  dir_.store(fresh, std::memory_order_seq_cst);
  size_ = n;
  num_chunks_.store(chunks_needed, std::memory_order_relaxed);

  std::vector<Stamp*> old_chunks;
  for (uint64_t i = 0; i < old->capacity; ++i) {
    Stamp* c = old->chunks[i].load(std::memory_order_relaxed);
    if (c != nullptr) old_chunks.push_back(c);
  }
  gc_->Retire([old, old_chunks = std::move(old_chunks)] {
    for (Stamp* c : old_chunks) delete[] c;
    delete old;
  });
  gc_->ReclaimExpired();
}

size_t VersionStore::ReclaimExpired() { return gc_->ReclaimExpired(); }

size_t VersionStore::retired_count() const { return gc_->retired_count(); }

uint64_t VersionStore::directory_capacity() const {
  ReadGuard g(this);
  return g.dir_->capacity;
}

size_t VersionStore::MemoryBytes() const {
  ReadGuard g(this);
  return g.dir_->capacity * sizeof(std::atomic<Stamp*>) +
         num_chunks_.load(std::memory_order_relaxed) * chunk_rows_ * sizeof(Stamp);
}

}  // namespace poly
