#ifndef POLY_STORAGE_CHUNKED_VECTOR_H_
#define POLY_STORAGE_CHUNKED_VECTOR_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "storage/epoch_gc.h"

namespace poly {

/// Reader-safe append-only value storage (DESIGN.md §12.5): the VersionStore
/// chunk/epoch scheme generalized to arbitrary element types. Values live in
/// preallocated fixed-size chunks that never move once published; a chunk
/// *directory* (array of atomic chunk pointers) is republished RCU-style when
/// it fills, and the count of fully-written elements is a watermark stored
/// INSIDE the directory so a reader always pairs a directory with a
/// consistent size. Chunks are never retired by growth (only the pointer
/// array is), so a `const T&` obtained under a pin stays valid for the
/// lifetime of the ChunkedVector itself.
///
/// Thread model mirrors VersionStore:
///  - any number of concurrent readers via Snap()/At(), each under an
///    EpochGC pin when `gc` is non-null;
///  - exactly one logical writer at a time (Append); callers serialize
///    writers externally;
///  - with `gc == nullptr` the structure is single-threaded (standalone
///    tests): retired directories are freed immediately.
template <typename T>
class ChunkedVector {
 public:
  static constexpr uint64_t kInitialDirectoryChunks = 4;

  /// `chunk_rows` must be a power of two.
  explicit ChunkedVector(EpochGC* gc, uint64_t chunk_rows = 256)
      : gc_(gc),
        chunk_rows_(chunk_rows),
        chunk_shift_(ShiftFor(chunk_rows)),
        chunk_mask_(chunk_rows - 1),
        dir_(new Directory(kInitialDirectoryChunks)) {}

  ~ChunkedVector() {
    // Contract: no live readers. Retired directories were handed to the gc
    // (or freed immediately when gc_ == nullptr); only the current one and
    // the chunks — which are shared across all directory generations and
    // freed exactly once, here — remain.
    Directory* dir = dir_.load(std::memory_order_relaxed);
    for (uint64_t i = 0; i < dir->capacity; ++i) {
      delete[] dir->chunks[i].load(std::memory_order_relaxed);
    }
    delete dir;
  }
  ChunkedVector(const ChunkedVector&) = delete;
  ChunkedVector& operator=(const ChunkedVector&) = delete;

 private:
  struct Directory {
    explicit Directory(uint64_t cap)
        : capacity(cap), chunks(new std::atomic<T*>[cap]) {
      for (uint64_t i = 0; i < cap; ++i)
        chunks[i].store(nullptr, std::memory_order_relaxed);
    }
    const uint64_t capacity;  // chunk slots
    std::atomic<uint64_t> watermark{0};
    std::unique_ptr<std::atomic<T*>[]> chunks;
  };

 public:
  /// An immutable view taken under a pin: directory pointer (seq_cst, pairs
  /// with the writer's seq_cst republish) + that directory's watermark.
  /// Copyable and — unlike VersionStore::ReadGuard — free of mutable cache
  /// state, so one Snapshot may be shared by many threads (the morsel
  /// fan-out reads through a single table guard).
  class Snapshot {
   public:
    Snapshot() = default;

    uint64_t size() const { return size_; }
    const T& operator[](uint64_t i) const {
      return dir_->chunks[i >> shift_].load(std::memory_order_acquire)
                 [i & mask_];
    }

   private:
    friend class ChunkedVector;
    Snapshot(const Directory* dir, uint64_t shift, uint64_t mask)
        : dir_(dir),
          size_(dir->watermark.load(std::memory_order_acquire)),
          shift_(shift),
          mask_(mask) {}

    const Directory* dir_ = nullptr;
    uint64_t size_ = 0;
    uint64_t shift_ = 0;
    uint64_t mask_ = 0;
  };

  /// Caller must hold a pin on the associated EpochGC (or be the writer,
  /// or single-threaded when gc_ == nullptr).
  Snapshot Snap() const {
    return Snapshot(dir_.load(std::memory_order_seq_cst), chunk_shift_,
                    chunk_mask_);
  }

  /// Single-element read under a pin. The reference stays valid for the
  /// lifetime of the ChunkedVector (chunks are never freed before the
  /// destructor), even after the pin is released.
  const T& At(uint64_t i) const {
    Directory* dir = dir_.load(std::memory_order_seq_cst);
    return dir->chunks[i >> chunk_shift_].load(std::memory_order_acquire)
               [i & chunk_mask_];
  }

  /// Published element count (acquire; usable without a pin for a bound
  /// that was current at some point).
  uint64_t Size() const {
    return dir_.load(std::memory_order_seq_cst)
        ->watermark.load(std::memory_order_acquire);
  }

  // ---- writer API: callers must serialize externally ---------------------

  /// Appends one element and publishes the watermark (release) so a reader
  /// that observes the new size also observes the element store and any
  /// writer stores sequenced before this call. Returns the element's index.
  uint64_t Append(T v) {
    uint64_t i = size_;
    uint64_t ci = i >> chunk_shift_;
    Directory* dir = dir_.load(std::memory_order_relaxed);
    if (ci >= dir->capacity) dir = Grow(dir);
    T* chunk = dir->chunks[ci].load(std::memory_order_relaxed);
    if (chunk == nullptr) {
      chunk = new T[chunk_rows_];
      dir->chunks[ci].store(chunk, std::memory_order_release);
      num_chunks_.fetch_add(1, std::memory_order_relaxed);
    }
    chunk[i & chunk_mask_] = std::move(v);
    ++size_;
    dir->watermark.store(size_, std::memory_order_release);
    return i;
  }

  /// Writer-side accessors (no pin needed: the caller holds the write
  /// latch, so no growth can race these).
  uint64_t WriterSize() const { return size_; }
  const T& WriterAt(uint64_t i) const {
    Directory* dir = dir_.load(std::memory_order_relaxed);
    return dir->chunks[i >> chunk_shift_].load(std::memory_order_relaxed)
               [i & chunk_mask_];
  }

  // ---- introspection -----------------------------------------------------
  uint64_t num_chunks() const {
    return num_chunks_.load(std::memory_order_relaxed);
  }
  uint64_t chunk_rows() const { return chunk_rows_; }
  uint64_t directory_capacity() const {
    return dir_.load(std::memory_order_seq_cst)->capacity;
  }
  /// Container overhead only; element payloads (e.g. strings inside Values)
  /// are the caller's to account for.
  size_t MemoryBytes() const {
    return directory_capacity() * sizeof(std::atomic<T*>) +
           num_chunks() * chunk_rows_ * sizeof(T);
  }

 private:
  static uint64_t ShiftFor(uint64_t pow2) {
    uint64_t s = 0;
    while ((1ull << s) < pow2) ++s;
    return s;
  }

  Directory* Grow(Directory* old) {
    auto* bigger = new Directory(old->capacity * 2);
    for (uint64_t i = 0; i < old->capacity; ++i) {
      bigger->chunks[i].store(old->chunks[i].load(std::memory_order_relaxed),
                              std::memory_order_relaxed);
    }
    bigger->watermark.store(size_, std::memory_order_relaxed);
    // seq_cst publish: pairs with the reader's pin + directory load.
    dir_.store(bigger, std::memory_order_seq_cst);
    // Only the pointer array is retired — chunks are shared with the new
    // directory and live on until the destructor.
    if (gc_ != nullptr) {
      gc_->Retire([old] { delete old; });
      gc_->ReclaimExpired();
    } else {
      delete old;
    }
    return bigger;
  }

  EpochGC* gc_;
  uint64_t chunk_rows_;
  uint64_t chunk_shift_;
  uint64_t chunk_mask_;

  std::atomic<Directory*> dir_;
  uint64_t size_ = 0;  // writer-private logical size (== published watermark)
  std::atomic<uint64_t> num_chunks_{0};
};

}  // namespace poly

#endif  // POLY_STORAGE_CHUNKED_VECTOR_H_
