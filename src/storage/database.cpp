#include "storage/database.h"

#include "common/thread_pool.h"
#include "query/compiled.h"
#include "query/executor.h"
#include "query/optimizer.h"
#include "query/sql_parser.h"
#include "resource/governor.h"
#include "storage/mvcc.h"

namespace poly {

StatusOr<ColumnTable*> Database::CreateTable(const std::string& name, Schema schema,
                                             bool compress_main) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tables_.count(name) || row_tables_.count(name)) {
    return Status::AlreadyExists("table '" + name + "' exists");
  }
  auto table = std::make_shared<ColumnTable>(name, std::move(schema), compress_main);
  if (auto* gov = resource_governor()) {
    table->BindMemoryBudget(gov->storage_node());
  }
  ColumnTable* ptr = table.get();
  tables_.emplace(name, std::move(table));
  return ptr;
}

StatusOr<RowTable*> Database::CreateRowTable(const std::string& name, Schema schema) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tables_.count(name) || row_tables_.count(name)) {
    return Status::AlreadyExists("table '" + name + "' exists");
  }
  auto table = std::make_unique<RowTable>(name, std::move(schema));
  RowTable* ptr = table.get();
  row_tables_.emplace(name, std::move(table));
  return ptr;
}

StatusOr<ColumnTable*> Database::GetTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table '" + name + "'");
  return it->second.get();
}

StatusOr<std::shared_ptr<ColumnTable>> Database::PinTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table '" + name + "'");
  return it->second;
}

StatusOr<RowTable*> Database::GetRowTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = row_tables_.find(name);
  if (it == row_tables_.end()) return Status::NotFound("no row table '" + name + "'");
  return it->second.get();
}

Status Database::DropTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tables_.erase(name) > 0) return Status::OK();
  if (row_tables_.erase(name) > 0) return Status::OK();
  return Status::NotFound("no table '" + name + "'");
}

Status Database::AdoptTable(std::unique_ptr<ColumnTable> table) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string& name = table->name();
  if (tables_.count(name) || row_tables_.count(name)) {
    return Status::AlreadyExists("table '" + name + "' exists");
  }
  // Tier movement and recovery bring tables in with data already loaded:
  // binding charges their current footprint so the budget sees page-ins.
  if (auto* gov = resource_governor()) {
    if (table->memory_budget() == nullptr) {
      table->BindMemoryBudget(gov->storage_node());
    }
  }
  tables_.emplace(name, std::shared_ptr<ColumnTable>(std::move(table)));
  return Status::OK();
}

std::vector<std::string> Database::TableNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size() + row_tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  for (const auto& [name, _] : row_tables_) names.push_back(name);
  return names;
}

void Database::set_exec_options(const ExecOptions& opts) {
  std::lock_guard<std::mutex> lock(mu_);
  exec_pool_.reset();  // rebuilt on demand at the new width
  exec_options_ = opts;
}

ExecOptions Database::exec_options() const {
  std::lock_guard<std::mutex> lock(mu_);
  return exec_options_;
}

ThreadPool* Database::exec_pool() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (exec_options_.num_threads <= 1) return nullptr;
  if (!exec_pool_) {
    exec_pool_ = std::make_unique<ThreadPool>(exec_options_.num_threads - 1);
  }
  return exec_pool_.get();
}

StatusOr<ResultSet> Database::Execute(const std::string& sql) {
  return Execute(sql, LatestCommittedView(), exec_options());
}

StatusOr<ResultSet> Database::Execute(const std::string& sql,
                                      const ExecOptions& opts) {
  return Execute(sql, LatestCommittedView(), opts);
}

StatusOr<ResultSet> Database::Execute(const std::string& sql, ReadView view,
                                      const ExecOptions& opts) {
  SqlParser parser(this);
  POLY_ASSIGN_OR_RETURN(PlanPtr plan, parser.Parse(sql));
  Optimizer optimizer(/*pruner=*/nullptr, this);
  plan = optimizer.Optimize(plan);

  // Admission: one ticket per statement, held until the result is
  // materialized. Its per-query budget node is threaded into ExecOptions so
  // operator materializations charge the right leaf.
  ExecOptions effective = opts;
  resource::AdmissionTicket ticket;
  if (auto* gov = resource_governor()) {
    POLY_ASSIGN_OR_RETURN(ticket, gov->AdmitQuery(effective.workload_class));
    effective.budget = ticket.budget();
  }

  QueryCompiler compiler(this, view, effective);
  if (compiler.CanCompile(plan)) {
    auto compiled = compiler.Execute(plan);
    // NotImplemented = lowering bailed after the cheap eligibility check;
    // anything else (including ResourceExhausted) is the query's verdict.
    if (compiled.ok() ||
        compiled.status().code() != StatusCode::kNotImplemented) {
      return compiled;
    }
  }
  Executor executor(this, view, effective);
  return executor.Execute(plan);
}

size_t Database::MemoryBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t bytes = 0;
  for (const auto& [_, t] : tables_) bytes += t->MemoryBytes();
  for (const auto& [_, t] : row_tables_) bytes += t->MemoryBytes();
  return bytes;
}

}  // namespace poly
