#ifndef POLY_FEDERATION_FEDERATION_H_
#define POLY_FEDERATION_FEDERATION_H_

#include <map>
#include <memory>
#include <string>

#include "hadoop/dfs.h"
#include "query/expr.h"
#include "query/result.h"
#include "storage/database.h"
#include "storage/mvcc.h"
#include "txn/transaction_manager.h"

namespace poly {

/// Smart Data Access (SDA, Figure 2/4): virtual tables backed by external
/// systems, with optional predicate pushdown. E15 measures pushdown vs
/// pull-everything on the simulated transfer counters.
class ExternalSource {
 public:
  virtual ~ExternalSource() = default;

  virtual const Schema& schema() const = 0;
  /// True if the source can evaluate simple predicates itself.
  virtual bool SupportsPushdown() const = 0;
  /// Scans the source. If `predicate` is non-null and pushdown is
  /// supported, only matching rows cross the wire; otherwise the caller
  /// must filter. Implementations account transferred bytes.
  virtual StatusOr<std::vector<Row>> Scan(const ExprPtr& predicate) = 0;
  /// Bytes shipped from the remote side so far.
  virtual uint64_t bytes_transferred() const = 0;
};

/// A remote Polyphony database reached over a simulated link — the
/// "HANA talks to another system" case.
class RemoteTableSource : public ExternalSource {
 public:
  /// `remote_db`/`remote_tm` model the other system; must outlive this.
  RemoteTableSource(const Database* remote_db, const TransactionManager* remote_tm,
                    std::string table, bool supports_pushdown);

  const Schema& schema() const override { return schema_; }
  bool SupportsPushdown() const override { return pushdown_; }
  StatusOr<std::vector<Row>> Scan(const ExprPtr& predicate) override;
  uint64_t bytes_transferred() const override { return bytes_; }

 private:
  const Database* db_;
  const TransactionManager* tm_;
  std::string table_;
  bool pushdown_;
  Schema schema_;
  uint64_t bytes_ = 0;
};

/// A TSV file on the simulated DFS exposed as a virtual table — the
/// "federated approach [...] queries on HDFS data" of §IV-C. Pushdown off:
/// Hive-less raw files always ship whole.
class DfsFileSource : public ExternalSource {
 public:
  static StatusOr<std::unique_ptr<DfsFileSource>> Open(SimulatedDfs* dfs,
                                                       const std::string& path);

  const Schema& schema() const override { return schema_; }
  bool SupportsPushdown() const override { return false; }
  StatusOr<std::vector<Row>> Scan(const ExprPtr& predicate) override;
  uint64_t bytes_transferred() const override { return bytes_; }

 private:
  DfsFileSource(SimulatedDfs* dfs, std::string path) : dfs_(dfs), path_(std::move(path)) {}

  SimulatedDfs* dfs_;
  std::string path_;
  Schema schema_;
  uint64_t bytes_ = 0;
};

/// The federation engine: registry of named virtual tables plus a scan
/// entry point that pushes predicates down when the source allows it and
/// compensates locally when it does not.
class FederationEngine {
 public:
  Status RegisterSource(const std::string& name, std::unique_ptr<ExternalSource> source);
  Status Unregister(const std::string& name);

  /// Scans a virtual table with local compensation filtering.
  StatusOr<ResultSet> ScanVirtual(const std::string& name, const ExprPtr& predicate);

  StatusOr<ExternalSource*> Source(const std::string& name) const;
  std::vector<std::string> SourceNames() const;

 private:
  std::map<std::string, std::unique_ptr<ExternalSource>> sources_;
};

/// Serialized row size model shared by sources (8 bytes per numeric cell,
/// string length for strings) — the unit E10/E15 report.
uint64_t EstimateRowBytes(const Row& row);

}  // namespace poly

#endif  // POLY_FEDERATION_FEDERATION_H_
