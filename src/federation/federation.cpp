#include "federation/federation.h"

#include "hadoop/table_connector.h"

namespace poly {

uint64_t EstimateRowBytes(const Row& row) {
  uint64_t bytes = 0;
  for (const Value& v : row) {
    switch (v.type()) {
      case DataType::kString:
      case DataType::kDocument:
        bytes += v.AsString().size() + 4;
        break;
      case DataType::kGeoPoint:
        bytes += 16;
        break;
      case DataType::kNull:
        bytes += 1;
        break;
      default:
        bytes += 8;
    }
  }
  return bytes;
}

RemoteTableSource::RemoteTableSource(const Database* remote_db,
                                     const TransactionManager* remote_tm,
                                     std::string table, bool supports_pushdown)
    : db_(remote_db), tm_(remote_tm), table_(std::move(table)), pushdown_(supports_pushdown) {
  auto t = db_->GetTable(table_);
  if (t.ok()) schema_ = (*t)->schema();
}

StatusOr<std::vector<Row>> RemoteTableSource::Scan(const ExprPtr& predicate) {
  POLY_ASSIGN_OR_RETURN(ColumnTable * t, db_->GetTable(table_));
  ReadView view = tm_->AutoCommitView();
  std::vector<Row> rows;
  t->ScanVisible(view, [&](uint64_t r) {
    Row row = t->GetRow(r);
    // Pushdown: the remote side filters before shipping.
    if (pushdown_ && predicate && !predicate->EvalBool(row)) return;
    bytes_ += EstimateRowBytes(row);
    rows.push_back(std::move(row));
  });
  return rows;
}

StatusOr<std::unique_ptr<DfsFileSource>> DfsFileSource::Open(SimulatedDfs* dfs,
                                                             const std::string& path) {
  auto source = std::unique_ptr<DfsFileSource>(new DfsFileSource(dfs, path));
  // Parse just the schema up front.
  POLY_ASSIGN_OR_RETURN(std::string data, dfs->Read(path));
  POLY_ASSIGN_OR_RETURN(auto parsed, DfsTableConnector::ParseTsv(data));
  source->schema_ = std::move(parsed.first);
  return source;
}

StatusOr<std::vector<Row>> DfsFileSource::Scan(const ExprPtr& predicate) {
  POLY_ASSIGN_OR_RETURN(std::string data, dfs_->Read(path_));
  bytes_ += data.size();  // raw files always ship whole
  POLY_ASSIGN_OR_RETURN(auto parsed, DfsTableConnector::ParseTsv(data));
  return std::move(parsed.second);
}

Status FederationEngine::RegisterSource(const std::string& name,
                                        std::unique_ptr<ExternalSource> source) {
  if (sources_.count(name)) {
    return Status::AlreadyExists("virtual table '" + name + "' exists");
  }
  sources_.emplace(name, std::move(source));
  return Status::OK();
}

Status FederationEngine::Unregister(const std::string& name) {
  if (sources_.erase(name) == 0) {
    return Status::NotFound("no virtual table '" + name + "'");
  }
  return Status::OK();
}

StatusOr<ResultSet> FederationEngine::ScanVirtual(const std::string& name,
                                                  const ExprPtr& predicate) {
  POLY_ASSIGN_OR_RETURN(ExternalSource * source, Source(name));
  POLY_ASSIGN_OR_RETURN(std::vector<Row> rows, source->Scan(predicate));
  ResultSet out;
  for (size_t c = 0; c < source->schema().num_columns(); ++c) {
    out.column_names.push_back(source->schema().column(c).name);
  }
  // Compensation filter for sources that could not push down.
  for (auto& row : rows) {
    if (predicate && !source->SupportsPushdown() && !predicate->EvalBool(row)) continue;
    out.rows.push_back(std::move(row));
  }
  return out;
}

StatusOr<ExternalSource*> FederationEngine::Source(const std::string& name) const {
  auto it = sources_.find(name);
  if (it == sources_.end()) return Status::NotFound("no virtual table '" + name + "'");
  return it->second.get();
}

std::vector<std::string> FederationEngine::SourceNames() const {
  std::vector<std::string> names;
  for (const auto& [name, _] : sources_) names.push_back(name);
  return names;
}

}  // namespace poly
