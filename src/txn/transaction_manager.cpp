#include "txn/transaction_manager.h"

#include "common/serializer.h"
#include "types/value_serde.h"

namespace poly {

std::unique_ptr<Transaction> TransactionManager::Begin() {
  auto txn = std::make_unique<Transaction>();
  txn->id_ = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  txn->snapshot_ts_ = clock_.load(std::memory_order_acquire);
  {
    std::lock_guard<std::mutex> lock(mu_);
    active_snapshots_[txn->id_] = txn->snapshot_ts_;
  }
  return txn;
}

Status TransactionManager::AppendLog(std::string record) {
  if (log_ == nullptr) return Status::OK();
  return log_->Append(std::move(record));
}

Status TransactionManager::Insert(Transaction* txn, ColumnTable* table,
                                  const Row& values) {
  if (txn->state_ != TxnState::kActive) return Status::InvalidArgument("txn not active");
  std::lock_guard<std::mutex> lock(write_mu_);
  POLY_ASSIGN_OR_RETURN(uint64_t row,
                        table->AppendVersion(values, MakeTxnStamp(txn->id_)));
  txn->writes_.push_back({table, row, /*is_delete=*/false});
  return AppendLog(EncodeInsert(txn->id_, table->name(), values));
}

Status TransactionManager::Insert(Transaction* txn, RowTable* table, const Row& values) {
  if (txn->state_ != TxnState::kActive) return Status::InvalidArgument("txn not active");
  std::lock_guard<std::mutex> lock(write_mu_);
  POLY_ASSIGN_OR_RETURN(uint64_t row,
                        table->AppendVersion(values, MakeTxnStamp(txn->id_)));
  txn->writes_.push_back({table, row, /*is_delete=*/false});
  return AppendLog(EncodeInsert(txn->id_, table->name(), values));
}

Status TransactionManager::Delete(Transaction* txn, ColumnTable* table, uint64_t row) {
  if (txn->state_ != TxnState::kActive) return Status::InvalidArgument("txn not active");
  std::lock_guard<std::mutex> lock(write_mu_);
  if (!txn->View().RowVisible(table->cts(row), table->dts(row))) {
    return Status::Aborted("row not visible to transaction");
  }
  POLY_RETURN_IF_ERROR(table->SetDeleteStamp(row, MakeTxnStamp(txn->id_)));
  txn->writes_.push_back({table, row, /*is_delete=*/true});
  return AppendLog(EncodeDelete(txn->id_, table->name(), row));
}

Status TransactionManager::Delete(Transaction* txn, RowTable* table, uint64_t row) {
  if (txn->state_ != TxnState::kActive) return Status::InvalidArgument("txn not active");
  std::lock_guard<std::mutex> lock(write_mu_);
  if (!txn->View().RowVisible(table->cts(row), table->dts(row))) {
    return Status::Aborted("row not visible to transaction");
  }
  POLY_RETURN_IF_ERROR(table->SetDeleteStamp(row, MakeTxnStamp(txn->id_)));
  txn->writes_.push_back({table, row, /*is_delete=*/true});
  return AppendLog(EncodeDelete(txn->id_, table->name(), row));
}

Status TransactionManager::Update(Transaction* txn, ColumnTable* table, uint64_t row,
                                  const Row& values) {
  POLY_RETURN_IF_ERROR(Delete(txn, table, row));
  return Insert(txn, table, values);
}

Status TransactionManager::Commit(Transaction* txn) {
  if (txn->state_ != TxnState::kActive) return Status::InvalidArgument("txn not active");
  std::lock_guard<std::mutex> lock(write_mu_);
  // Resolve every stamp BEFORE publishing the new clock value: a reader
  // whose snapshot_ts >= commit_ts must find all of this commit's stamps
  // already rewritten, or its visible count would transiently miss rows the
  // snapshot entitles it to (the §12 oracle harness checks every observed
  // (snapshot_ts, visible_count) pair against a serial replay). clock_ is
  // only ever advanced here, under write_mu_, so a plain load/store pair is
  // race-free; the release store pairs with AutoCommitView's acquire load.
  uint64_t commit_ts = clock_.load(std::memory_order_relaxed) + 1;
  for (const auto& op : txn->writes_) {
    std::visit(
        [&](auto* table) {
          if (op.is_delete) {
            table->ResolveDeleteStamp(op.row, commit_ts);
          } else {
            table->ResolveCreateStamp(op.row, commit_ts);
          }
        },
        op.table);
  }
  txn->commit_ts_ = commit_ts;
  txn->state_ = TxnState::kCommitted;
  clock_.store(commit_ts, std::memory_order_release);
  {
    std::lock_guard<std::mutex> snap_lock(mu_);
    active_snapshots_.erase(txn->id_);
  }
  POLY_RETURN_IF_ERROR(AppendLog(EncodeCommit(txn->id_, commit_ts)));
  return log_ ? log_->Sync() : Status::OK();
}

Status TransactionManager::Abort(Transaction* txn) {
  if (txn->state_ != TxnState::kActive) return Status::InvalidArgument("txn not active");
  std::lock_guard<std::mutex> lock(write_mu_);
  // Undo in reverse: inserted versions become permanently invisible
  // (cts stays an uncommitted stamp of a dead txn); delete stamps clear.
  for (auto it = txn->writes_.rbegin(); it != txn->writes_.rend(); ++it) {
    std::visit(
        [&](auto* table) {
          if (it->is_delete) table->ClearDeleteStamp(it->row);
        },
        it->table);
  }
  txn->state_ = TxnState::kAborted;
  std::lock_guard<std::mutex> snap_lock(mu_);
  active_snapshots_.erase(txn->id_);
  return Status::OK();
}

Status TransactionManager::LogCreateTable(const std::string& name, const Schema& schema) {
  return AppendLog(EncodeCreateTable(name, schema));
}

uint64_t TransactionManager::OldestActiveSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t oldest = clock_.load(std::memory_order_acquire);
  for (const auto& [_, snap] : active_snapshots_) oldest = std::min(oldest, snap);
  return oldest;
}

std::string TransactionManager::EncodeInsert(uint64_t txn_id, const std::string& table,
                                             const Row& values) {
  Serializer s;
  s.PutU8(static_cast<uint8_t>(RedoKind::kInsert));
  s.PutU64(txn_id);
  s.PutString(table);
  s.PutVarint(values.size());
  for (const auto& v : values) WriteValue(&s, v);
  return s.Release();
}

std::string TransactionManager::EncodeDelete(uint64_t txn_id, const std::string& table,
                                             uint64_t row) {
  Serializer s;
  s.PutU8(static_cast<uint8_t>(RedoKind::kDelete));
  s.PutU64(txn_id);
  s.PutString(table);
  s.PutU64(row);
  return s.Release();
}

std::string TransactionManager::EncodeCommit(uint64_t txn_id, uint64_t commit_ts) {
  Serializer s;
  s.PutU8(static_cast<uint8_t>(RedoKind::kCommit));
  s.PutU64(txn_id);
  s.PutU64(commit_ts);
  return s.Release();
}

std::string TransactionManager::EncodeCreateTable(const std::string& name,
                                                  const Schema& schema) {
  Serializer s;
  s.PutU8(static_cast<uint8_t>(RedoKind::kCreateTable));
  s.PutString(name);
  s.PutVarint(schema.num_columns());
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    const ColumnDef& def = schema.column(c);
    s.PutString(def.name);
    s.PutU8(static_cast<uint8_t>(def.type));
    s.PutU8(def.nullable ? 1 : 0);
    s.PutU8(def.generated_key_order ? 1 : 0);
  }
  return s.Release();
}

Status TransactionManager::Recover(const std::vector<std::string>& records,
                                   Database* db) {
  // Pass 1: commit timestamps of committed transactions.
  std::unordered_map<uint64_t, uint64_t> commit_ts;
  for (const auto& rec : records) {
    Deserializer d(rec);
    POLY_ASSIGN_OR_RETURN(uint8_t kind, d.GetU8());
    if (static_cast<RedoKind>(kind) == RedoKind::kCommit) {
      POLY_ASSIGN_OR_RETURN(uint64_t txn_id, d.GetU64());
      POLY_ASSIGN_OR_RETURN(uint64_t ts, d.GetU64());
      commit_ts[txn_id] = ts;
    }
  }
  // Pass 2: replay. Inserts/deletes of committed txns are applied with their
  // final commit timestamps; uncommitted writes are skipped entirely, but
  // their inserts still occupy a row slot so later row IDs line up.
  for (const auto& rec : records) {
    Deserializer d(rec);
    POLY_ASSIGN_OR_RETURN(uint8_t kind_raw, d.GetU8());
    RedoKind kind = static_cast<RedoKind>(kind_raw);
    switch (kind) {
      case RedoKind::kCreateTable: {
        POLY_ASSIGN_OR_RETURN(std::string name, d.GetString());
        POLY_ASSIGN_OR_RETURN(uint64_t ncols, d.GetVarint());
        Schema schema;
        for (uint64_t c = 0; c < ncols; ++c) {
          ColumnDef def;
          POLY_ASSIGN_OR_RETURN(def.name, d.GetString());
          POLY_ASSIGN_OR_RETURN(uint8_t type, d.GetU8());
          def.type = static_cast<DataType>(type);
          POLY_ASSIGN_OR_RETURN(uint8_t nullable, d.GetU8());
          def.nullable = nullable != 0;
          POLY_ASSIGN_OR_RETURN(uint8_t gko, d.GetU8());
          def.generated_key_order = gko != 0;
          schema.AddColumn(std::move(def));
        }
        POLY_RETURN_IF_ERROR(db->CreateTable(name, std::move(schema)).status());
        break;
      }
      case RedoKind::kInsert: {
        POLY_ASSIGN_OR_RETURN(uint64_t txn_id, d.GetU64());
        POLY_ASSIGN_OR_RETURN(std::string table_name, d.GetString());
        POLY_ASSIGN_OR_RETURN(uint64_t nvals, d.GetVarint());
        Row row;
        row.reserve(nvals);
        for (uint64_t i = 0; i < nvals; ++i) {
          POLY_ASSIGN_OR_RETURN(Value v, ReadValue(&d));
          row.push_back(std::move(v));
        }
        POLY_ASSIGN_OR_RETURN(ColumnTable * table, db->GetTable(table_name));
        auto it = commit_ts.find(txn_id);
        uint64_t stamp = it != commit_ts.end() ? it->second : MakeTxnStamp(txn_id);
        POLY_RETURN_IF_ERROR(table->AppendVersion(row, stamp).status());
        break;
      }
      case RedoKind::kDelete: {
        POLY_ASSIGN_OR_RETURN(uint64_t txn_id, d.GetU64());
        POLY_ASSIGN_OR_RETURN(std::string table_name, d.GetString());
        POLY_ASSIGN_OR_RETURN(uint64_t row, d.GetU64());
        auto it = commit_ts.find(txn_id);
        if (it == commit_ts.end()) break;  // uncommitted delete: no effect
        POLY_ASSIGN_OR_RETURN(ColumnTable * table, db->GetTable(table_name));
        POLY_RETURN_IF_ERROR(table->SetDeleteStamp(row, it->second));
        break;
      }
      case RedoKind::kCommit:
        break;
    }
  }
  return Status::OK();
}

}  // namespace poly
