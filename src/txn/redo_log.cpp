#include "txn/redo_log.h"

#include <cstdio>

#include "common/serializer.h"

namespace poly {

StatusOr<std::unique_ptr<RedoLog>> RedoLog::OpenFile(const std::string& path) {
  auto log = std::make_unique<RedoLog>();
  log->path_ = path;
  // Touch the file so ReadFile on a fresh log succeeds.
  FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) return Status::IOError("cannot open redo log " + path);
  std::fclose(f);
  return log;
}

void RedoLog::SetFaultInjector(std::function<Status(const char* op)> injector) {
  std::lock_guard<std::mutex> lock(mu_);
  fault_injector_ = std::move(injector);
}

Status RedoLog::Append(std::string record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fault_injector_) POLY_RETURN_IF_ERROR(fault_injector_("append"));
  if (!path_.empty()) {
    FILE* f = std::fopen(path_.c_str(), "ab");
    if (f == nullptr) return Status::IOError("cannot append to redo log " + path_);
    uint32_t len = static_cast<uint32_t>(record.size());
    std::fwrite(&len, sizeof(len), 1, f);
    std::fwrite(record.data(), 1, record.size(), f);
    std::fclose(f);
  }
  records_.push_back(std::move(record));
  return Status::OK();
}

Status RedoLog::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fault_injector_) POLY_RETURN_IF_ERROR(fault_injector_("sync"));
  return Status::OK();
}

Status RedoLog::ForEach(const std::function<Status(const std::string&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& r : records_) {
    POLY_RETURN_IF_ERROR(fn(r));
  }
  return Status::OK();
}

uint64_t RedoLog::num_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

StatusOr<std::vector<std::string>> RedoLog::ReadFile(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open redo log " + path);
  std::vector<std::string> records;
  for (;;) {
    uint32_t len = 0;
    size_t got = std::fread(&len, sizeof(len), 1, f);
    if (got != 1) break;
    std::string rec(len, '\0');
    if (std::fread(rec.data(), 1, len, f) != len) {
      std::fclose(f);
      return Status::Corruption("truncated redo record in " + path);
    }
    records.push_back(std::move(rec));
  }
  std::fclose(f);
  return records;
}

}  // namespace poly
