#ifndef POLY_TXN_TRANSACTION_MANAGER_H_
#define POLY_TXN_TRANSACTION_MANAGER_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <variant>
#include <vector>

#include "common/status.h"
#include "storage/database.h"
#include "storage/mvcc.h"
#include "txn/redo_log.h"

namespace poly {

/// State of one transaction handle.
enum class TxnState { kActive, kCommitted, kAborted };

/// Handle for one transaction: identity, snapshot, and write set.
/// Obtained from TransactionManager::Begin(); not thread-safe itself.
class Transaction {
 public:
  uint64_t id() const { return id_; }
  uint64_t snapshot_ts() const { return snapshot_ts_; }
  TxnState state() const { return state_; }
  uint64_t commit_ts() const { return commit_ts_; }

  /// Read view for statements inside this transaction.
  ReadView View() const { return ReadView{snapshot_ts_, id_}; }

  /// Row id of this transaction's most recent write (insert or delete).
  /// Lets callers learn the ids of their own inserts without re-scanning;
  /// requires at least one prior write.
  uint64_t last_write_row() const { return writes_.back().row; }

 private:
  friend class TransactionManager;

  using AnyTable = std::variant<ColumnTable*, RowTable*>;
  struct WriteOp {
    AnyTable table;
    uint64_t row = 0;
    bool is_delete = false;
  };

  uint64_t id_ = 0;
  uint64_t snapshot_ts_ = 0;
  uint64_t commit_ts_ = 0;
  TxnState state_ = TxnState::kActive;
  std::vector<WriteOp> writes_;
};

/// Snapshot-isolation MVCC transaction manager (§II-A: "fully ACID
/// compliant"). Commit stamps are resolved in place (stamps carrying kTxnBit
/// become the commit timestamp), writes are redo-logged, and recovery
/// rebuilds a database from the log.
///
/// Concurrency: Begin/Commit/Abort and all write paths are internally
/// latched; readers never block. Commit resolves all stamps in the tables'
/// reader-safe version stores (DESIGN.md §12) and only then publishes the
/// advanced clock, so any snapshot taken at or after a commit timestamp
/// observes that commit completely — visible counts are exact, not just
/// eventually consistent.
class TransactionManager {
 public:
  /// `log` may be null (no durability, e.g. inside benches).
  explicit TransactionManager(RedoLog* log = nullptr) : log_(log) {}

  std::unique_ptr<Transaction> Begin();

  /// Single-statement convenience view ("auto-commit read").
  ReadView AutoCommitView() const {
    return ReadView{clock_.load(std::memory_order_acquire), 0};
  }

  /// Inserts a row version into `table` under `txn`.
  Status Insert(Transaction* txn, ColumnTable* table, const Row& values);
  Status Insert(Transaction* txn, RowTable* table, const Row& values);

  /// Deletes a visible row version. Fails with Aborted on conflicts.
  Status Delete(Transaction* txn, ColumnTable* table, uint64_t row);
  Status Delete(Transaction* txn, RowTable* table, uint64_t row);

  /// Update = delete old version + insert new version.
  Status Update(Transaction* txn, ColumnTable* table, uint64_t row, const Row& values);

  Status Commit(Transaction* txn);
  Status Abort(Transaction* txn);

  /// Logs a CREATE TABLE so recovery can rebuild the catalog.
  Status LogCreateTable(const std::string& name, const Schema& schema);

  /// Timestamp low-water mark below which no active snapshot exists.
  uint64_t OldestActiveSnapshot() const;

  uint64_t CurrentTimestamp() const { return clock_.load(std::memory_order_acquire); }

  /// Replays a redo log into `db`: recreates tables and re-applies all
  /// writes of committed transactions with their final timestamps.
  static Status Recover(const std::vector<std::string>& records, Database* db);

  /// Serialization helpers shared with the SOE transaction broker.
  static std::string EncodeInsert(uint64_t txn_id, const std::string& table,
                                  const Row& values);
  static std::string EncodeDelete(uint64_t txn_id, const std::string& table,
                                  uint64_t row);
  static std::string EncodeCommit(uint64_t txn_id, uint64_t commit_ts);
  static std::string EncodeCreateTable(const std::string& name, const Schema& schema);

 private:
  Status AppendLog(std::string record);

  std::atomic<uint64_t> clock_{1};
  std::atomic<uint64_t> next_txn_id_{1};
  RedoLog* log_;

  mutable std::mutex mu_;
  std::map<uint64_t, uint64_t> active_snapshots_;  // txn id -> snapshot ts
  std::mutex write_mu_;  // serializes write/commit critical sections
};

}  // namespace poly

#endif  // POLY_TXN_TRANSACTION_MANAGER_H_
