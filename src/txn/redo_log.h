#ifndef POLY_TXN_REDO_LOG_H_
#define POLY_TXN_REDO_LOG_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace poly {

/// Record kinds in the single-node redo log.
enum class RedoKind : uint8_t {
  kCreateTable = 1,
  kInsert = 2,
  kDelete = 3,
  kCommit = 4,
};

/// Append-only redo log. Records live in memory and are optionally mirrored
/// to a file so recovery can be exercised across a simulated crash. The SOE
/// distributed shared log (src/soe/shared_log.h) is the scale-out sibling of
/// this component.
class RedoLog {
 public:
  /// Memory-only log.
  RedoLog() = default;
  /// File-backed log (append mode). Existing content is preserved.
  static StatusOr<std::unique_ptr<RedoLog>> OpenFile(const std::string& path);

  /// Appends one serialized record.
  Status Append(std::string record);

  /// Flushes file-backed storage (no-op for memory logs).
  Status Sync();

  /// Invokes fn on every record in append order.
  Status ForEach(const std::function<Status(const std::string&)>& fn) const;

  uint64_t num_records() const;

  /// Reads all records back from the file (for recovery after "restart").
  static StatusOr<std::vector<std::string>> ReadFile(const std::string& path);

  /// Deterministic IO-fault hook for crash testing: invoked at the top of
  /// every Append ("append") and Sync ("sync"); a non-OK return is handed
  /// to the caller *before* any mutation, so a failed append leaves the log
  /// exactly as it was (the single-node analogue of the SOE chaos fabric).
  /// Pass nullptr to clear.
  void SetFaultInjector(std::function<Status(const char* op)> injector);

 private:
  mutable std::mutex mu_;
  std::vector<std::string> records_;
  std::string path_;  // empty = memory-only
  std::function<Status(const char* op)> fault_injector_;
};

}  // namespace poly

#endif  // POLY_TXN_REDO_LOG_H_
