#include "aging/extended_storage.h"

#include "common/metrics.h"
#include "common/serializer.h"

namespace poly {

namespace {

/// Tier-movement counters in the default registry (DESIGN.md §10:
/// `tier.<temperature>.<direction>` plus byte volumes).
void CountTierMove(const char* counter_name, const char* bytes_name,
                   uint64_t bytes) {
  metrics::Registry& reg = metrics::Default();
  reg.counter(counter_name)->Add(1);
  reg.counter(bytes_name)->Add(bytes);
}

}  // namespace

Status ExtendedStorage::Demote(Database* db, const std::string& table) {
  POLY_ASSIGN_OR_RETURN(ColumnTable * t, db->GetTable(table));
  Serializer s;
  t->SaveTo(&s);
  CountTierMove("tier.warm.demotes", "tier.warm.demote_bytes", s.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    simulated_nanos_ += static_cast<double>(s.size()) * options_.write_nanos_per_byte;
    store_[table] = s.Release();
  }
  return db->DropTable(table);
}

StatusOr<ColumnTable*> ExtendedStorage::Promote(Database* db, const std::string& table) {
  // A promote MOVES the partition: leaving the payload behind as a "cache"
  // makes residency ambiguous, and with a cold tier attached a stale warm
  // copy can be sunk to DFS while the real partition is hot — two live
  // copies that then diverge. On any failure past the take, the payload is
  // put back so a half-promote never loses the only copy.
  POLY_ASSIGN_OR_RETURN(std::string payload, TakePayload(table));
  CountTierMove("tier.warm.promotes", "tier.warm.promote_bytes", payload.size());
  Deserializer d(payload);
  auto loaded = ColumnTable::LoadFrom(&d);
  if (!loaded.ok()) {
    (void)AdoptPayload(table, std::move(payload));
    return loaded.status();
  }
  ColumnTable* ptr = loaded->get();
  Status adopted = db->AdoptTable(std::move(*loaded));
  if (!adopted.ok()) {
    (void)AdoptPayload(table, std::move(payload));
    return adopted;
  }
  return ptr;
}

Status ExtendedStorage::DemoteToCold(const std::string& table, SimulatedDfs* dfs) {
  std::string payload;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = store_.find(table);
    if (it == store_.end()) {
      return Status::NotFound("no warm table '" + table + "'");
    }
    payload = std::move(it->second);
    store_.erase(it);
  }
  CountTierMove("tier.cold.demotes", "tier.cold.demote_bytes", payload.size());
  return dfs->Write(ColdPath(table), payload);
}

StatusOr<ColumnTable*> ExtendedStorage::PromoteFromCold(Database* db,
                                                        const std::string& table,
                                                        SimulatedDfs* dfs) {
  POLY_ASSIGN_OR_RETURN(std::string payload, dfs->Read(ColdPath(table)));
  CountTierMove("tier.cold.promotes", "tier.cold.promote_bytes", payload.size());
  Deserializer d(payload);
  POLY_ASSIGN_OR_RETURN(auto loaded, ColumnTable::LoadFrom(&d));
  ColumnTable* ptr = loaded.get();
  POLY_RETURN_IF_ERROR(db->AdoptTable(std::move(loaded)));
  return ptr;
}

StatusOr<std::string> ExtendedStorage::TakePayload(const std::string& table) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = store_.find(table);
  if (it == store_.end()) {
    return Status::NotFound("no warm table '" + table + "'");
  }
  simulated_nanos_ +=
      static_cast<double>(it->second.size()) * options_.read_nanos_per_byte;
  std::string payload = std::move(it->second);
  store_.erase(it);
  return payload;
}

Status ExtendedStorage::AdoptPayload(const std::string& table, std::string payload) {
  std::lock_guard<std::mutex> lock(mu_);
  simulated_nanos_ +=
      static_cast<double>(payload.size()) * options_.write_nanos_per_byte;
  store_[table] = std::move(payload);
  return Status::OK();
}

bool ExtendedStorage::Contains(const std::string& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  return store_.count(table) > 0;
}

Status ExtendedStorage::Drop(const std::string& table) {
  std::lock_guard<std::mutex> lock(mu_);
  if (store_.erase(table) == 0) return Status::NotFound("no warm table '" + table + "'");
  return Status::OK();
}

uint64_t ExtendedStorage::BytesOf(const std::string& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = store_.find(table);
  return it == store_.end() ? 0 : it->second.size();
}

uint64_t ExtendedStorage::bytes_stored() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [_, data] : store_) total += data.size();
  return total;
}

}  // namespace poly
