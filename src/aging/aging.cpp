#include "aging/aging.h"

#include <map>
#include <set>
#include <unordered_set>

#include "common/metrics.h"

namespace poly {

Status AgingManager::AddRule(AgingRule rule) {
  for (const auto& existing : rules_) {
    if (existing.name == rule.name) {
      return Status::AlreadyExists("aging rule '" + rule.name + "' exists");
    }
  }
  rules_.push_back(std::move(rule));
  Status cycle = CheckNoCycle();
  if (!cycle.ok()) {
    rules_.pop_back();
    return cycle;
  }
  return Status::OK();
}

Status AgingManager::CheckNoCycle() const {
  // DFS over the dependency graph with colors.
  std::map<std::string, const AgingRule*> by_name;
  for (const auto& r : rules_) by_name[r.name] = &r;
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::function<Status(const AgingRule&)> visit = [&](const AgingRule& r) -> Status {
    color[r.name] = 1;
    for (const auto& dep : r.depends_on) {
      auto it = by_name.find(dep);
      if (it == by_name.end()) continue;  // unknown deps are checked at Run
      if (color[dep] == 1) {
        return Status::InvalidArgument("aging dependency cycle through '" + dep + "'");
      }
      if (color[dep] == 0) POLY_RETURN_IF_ERROR(visit(*it->second));
    }
    color[r.name] = 2;
    return Status::OK();
  };
  for (const auto& r : rules_) {
    if (color[r.name] == 0) POLY_RETURN_IF_ERROR(visit(r));
  }
  return Status::OK();
}

StatusOr<AgingStats> AgingManager::RunAging() {
  // Topological order by repeated selection.
  std::map<std::string, const AgingRule*> by_name;
  for (const auto& r : rules_) by_name[r.name] = &r;
  std::vector<const AgingRule*> order;
  std::set<std::string> done;
  while (order.size() < rules_.size()) {
    bool progressed = false;
    for (const auto& r : rules_) {
      if (done.count(r.name)) continue;
      bool ready = true;
      for (const auto& dep : r.depends_on) {
        if (!by_name.count(dep)) {
          return Status::InvalidArgument("aging rule '" + r.name +
                                         "' depends on unknown rule '" + dep + "'");
        }
        if (!done.count(dep)) ready = false;
      }
      if (ready) {
        order.push_back(&r);
        done.insert(r.name);
        progressed = true;
      }
    }
    if (!progressed) return Status::InvalidArgument("aging dependency cycle");
  }

  AgingStats stats;
  for (const AgingRule* rule : order) {
    POLY_ASSIGN_OR_RETURN(ColumnTable * hot, db_->GetTable(rule->table));
    // Aged partition created on demand with the same schema.
    std::string aged_name = AgedName(rule->table);
    ColumnTable* aged;
    auto aged_or = db_->GetTable(aged_name);
    if (aged_or.ok()) {
      aged = *aged_or;
    } else {
      POLY_ASSIGN_OR_RETURN(aged, db_->CreateTable(aged_name, hot->schema()));
    }

    // Guard key set: keys present in the referenced table's aged partition.
    std::unordered_set<int64_t> guard_keys;
    size_t guard_fk_col = 0;
    bool has_guard = rule->guard.has_value();
    if (has_guard) {
      POLY_ASSIGN_OR_RETURN(guard_fk_col, hot->schema().IndexOf(rule->guard->fk_column));
      auto other_aged = db_->GetTable(AgedName(rule->guard->other_table));
      if (other_aged.ok()) {
        POLY_ASSIGN_OR_RETURN(size_t key_col, (*other_aged)
                                                  ->schema()
                                                  .IndexOf(rule->guard->other_key_column));
        ReadView view = tm_->AutoCommitView();
        (*other_aged)->ScanVisible(view, [&](uint64_t r) {
          Value k = (*other_aged)->GetValue(r, key_col);
          if (!k.is_null()) guard_keys.insert(k.AsInt());
        });
      }
    }

    ReadView view = tm_->AutoCommitView();
    std::vector<uint64_t> to_move;
    hot->ScanVisible(view, [&](uint64_t r) {
      Row row = hot->GetRow(r);
      if (rule->predicate && !rule->predicate->EvalBool(row)) return;
      if (has_guard) {
        Value fk = row[guard_fk_col];
        if (fk.is_null() || !guard_keys.count(fk.AsInt())) {
          ++stats.rows_blocked_by_guard;
          return;
        }
      }
      to_move.push_back(r);
    });

    if (to_move.empty()) continue;
    auto txn = tm_->Begin();
    for (uint64_t r : to_move) {
      Row row = hot->GetRow(r);
      POLY_RETURN_IF_ERROR(tm_->Delete(txn.get(), hot, r));
      POLY_RETURN_IF_ERROR(tm_->Insert(txn.get(), aged, row));
    }
    POLY_RETURN_IF_ERROR(tm_->Commit(txn.get()));
    stats.rows_aged += to_move.size();
    populated_aged_.insert(rule->table);
  }
  metrics::Registry& reg = metrics::Default();
  reg.counter("aging.runs")->Add(1);
  reg.counter("aging.rows_aged")->Add(stats.rows_aged);
  reg.counter("aging.rows_blocked")->Add(stats.rows_blocked_by_guard);
  return stats;
}

namespace {

/// Collects top-level conjuncts of a predicate.
void CollectConjuncts(const ExprPtr& e, std::vector<const Expr*>* out) {
  if (!e) return;
  if (e->kind() == ExprKind::kAnd) {
    CollectConjuncts(e->left(), out);
    CollectConjuncts(e->right(), out);
  } else {
    out->push_back(e.get());
  }
}

/// Upper/lower bound semantics of a comparison atom on one column.
struct Atom {
  size_t column;
  CmpOp op;
  Value value;
};

bool AtomFromExpr(const Expr& e, Atom* atom) {
  if (e.kind() != ExprKind::kCompare) return false;
  const ExprPtr& l = e.left();
  const ExprPtr& r = e.right();
  if (!l || !r || l->kind() != ExprKind::kColumn || r->kind() != ExprKind::kLiteral) {
    return false;
  }
  atom->column = l->column_index();
  atom->op = e.cmp_op();
  atom->value = r->literal();
  return true;
}

/// True if "x <op1> a" and "x <op2> b" cannot both hold.
bool AtomsContradict(CmpOp op1, const Value& a, CmpOp op2, const Value& b) {
  auto upper = [](CmpOp op) { return op == CmpOp::kLt || op == CmpOp::kLe; };
  auto lower = [](CmpOp op) { return op == CmpOp::kGt || op == CmpOp::kGe; };
  // x < a  vs  x > b : contradiction iff a <= b (with <=/>= edge handling).
  if (upper(op1) && lower(op2)) {
    if (a < b || a == b) {
      // equality allowed only when both are inclusive
      if (a == b && op1 == CmpOp::kLe && op2 == CmpOp::kGe) return false;
      return true;
    }
    return false;
  }
  if (lower(op1) && upper(op2)) return AtomsContradict(op2, b, op1, a);
  if (op1 == CmpOp::kEq && upper(op2)) {
    return !(a < b) && !(a == b && op2 == CmpOp::kLe);
  }
  if (op1 == CmpOp::kEq && lower(op2)) {
    return !(b < a) && !(a == b && op2 == CmpOp::kGe);
  }
  // Equality/equality must be handled before the operand swap below, which
  // would otherwise recurse forever for kEq/kEq pairs.
  if (op1 == CmpOp::kEq && op2 == CmpOp::kEq) return !(a == b);
  if (op2 == CmpOp::kEq) return AtomsContradict(op2, b, op1, a);
  return false;
}

}  // namespace

bool AgingManager::GuaranteeContradictsPredicate(const AgingGuarantee& guarantee,
                                                 const Schema& schema,
                                                 const ExprPtr& predicate) {
  if (!predicate) return false;
  auto col = schema.IndexOf(guarantee.column);
  if (!col.ok()) return false;
  std::vector<const Expr*> conjuncts;
  CollectConjuncts(predicate, &conjuncts);
  for (const Expr* c : conjuncts) {
    Atom atom;
    if (!AtomFromExpr(*c, &atom)) continue;
    if (atom.column != *col) continue;
    if (AtomsContradict(guarantee.op, guarantee.value, atom.op, atom.value)) {
      return true;  // one impossible conjunct kills the whole conjunction
    }
  }
  return false;
}

std::vector<std::string> AgingManager::Prune(const std::string& table,
                                             const ExprPtr& predicate) const {
  // Only tables with at least one rule are partition-managed.
  const AgingRule* rule = nullptr;
  for (const auto& r : rules_) {
    if (r.table == table) rule = &r;
  }
  if (rule == nullptr) return {};
  metrics::Registry& reg = metrics::Default();
  reg.counter("aging.prune.calls")->Add(1);
  std::vector<std::string> partitions = {table};
  std::string aged = AgedName(table);
  if (!populated_aged_.count(table)) return partitions;  // nothing aged yet
  auto hot = db_->GetTable(table);
  if (hot.ok() &&
      GuaranteeContradictsPredicate(rule->guarantee, (*hot)->schema(), predicate)) {
    reg.counter("aging.prune.pruned")->Add(1);
    return partitions;  // aged partition provably irrelevant
  }
  reg.counter("aging.prune.kept")->Add(1);
  partitions.push_back(aged);
  return partitions;
}

std::vector<std::string> AgingManager::Partitions(const std::string& table) const {
  std::vector<std::string> out = {table};
  if (populated_aged_.count(table)) out.push_back(AgedName(table));
  return out;
}

Status StatsPruner::Analyze(const std::string& table,
                            const std::vector<std::string>& partitions,
                            const std::string& column) {
  std::vector<PartitionStats> stats;
  for (const auto& part : partitions) {
    POLY_ASSIGN_OR_RETURN(ColumnTable * t, db_->GetTable(part));
    POLY_ASSIGN_OR_RETURN(size_t col, t->schema().IndexOf(column));
    PartitionStats ps;
    ps.name = part;
    ps.column = column;
    ReadView view = tm_->AutoCommitView();
    t->ScanVisible(view, [&](uint64_t r) {
      Value v = t->GetValue(r, col);
      if (v.is_null()) return;
      if (!ps.has_rows || v < ps.min) ps.min = v;
      if (!ps.has_rows || ps.max < v) ps.max = v;
      ps.has_rows = true;
    });
    stats.push_back(std::move(ps));
  }
  tables_[table] = std::move(stats);
  return Status::OK();
}

std::vector<std::string> StatsPruner::Prune(const std::string& table,
                                            const ExprPtr& predicate) const {
  auto it = tables_.find(table);
  if (it == tables_.end()) return {};
  std::vector<std::string> out;
  for (const PartitionStats& ps : it->second) {
    if (!ps.has_rows) continue;  // empty partitions never need scanning
    bool needed = true;
    if (predicate) {
      auto t = db_->GetTable(ps.name);
      if (t.ok()) {
        auto col = (*t)->schema().IndexOf(ps.column);
        if (col.ok()) {
          std::vector<const Expr*> conjuncts;
          CollectConjuncts(predicate, &conjuncts);
          for (const Expr* c : conjuncts) {
            Atom atom;
            if (!AtomFromExpr(*c, &atom) || atom.column != *col) continue;
            // Partition range [min, max] vs atom: disjoint -> prune.
            bool possible = true;
            switch (atom.op) {
              case CmpOp::kGe: possible = !(ps.max < atom.value); break;
              case CmpOp::kGt: possible = atom.value < ps.max; break;
              case CmpOp::kLe: possible = !(atom.value < ps.min); break;
              case CmpOp::kLt: possible = ps.min < atom.value; break;
              case CmpOp::kEq:
                possible = !(atom.value < ps.min) && !(ps.max < atom.value);
                break;
              case CmpOp::kNe: possible = true; break;
            }
            if (!possible) {
              needed = false;
              break;
            }
          }
        }
      }
    }
    if (needed) out.push_back(ps.name);
  }
  if (out.empty() && !it->second.empty()) out.push_back(it->second[0].name);
  return out;
}

}  // namespace poly
