#ifndef POLY_AGING_AGING_H_
#define POLY_AGING_AGING_H_

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "query/optimizer.h"
#include "storage/database.h"
#include "txn/transaction_manager.h"

namespace poly {

/// What the application promises about every aged row (§III): after aging,
/// all rows in the aged partition satisfy `column <op> value` (e.g.
/// "closing_year < 2026"). This semantic guarantee is what makes rule-based
/// pruning stronger than statistics (E12).
struct AgingGuarantee {
  std::string column;
  CmpOp op = CmpOp::kLt;
  Value value;
};

/// Cross-object aging dependency (§III: "an invoice can only be aged, if
/// the corresponding sales order is also aged"): a row may move only when a
/// matching key exists in the other table's aged partition.
struct JoinGuard {
  std::string fk_column;          ///< column in this table
  std::string other_table;        ///< base name of the referenced table
  std::string other_key_column;   ///< key column in the referenced table
};

/// One application-defined aging rule.
struct AgingRule {
  std::string name;
  std::string table;          ///< base (hot) table
  ExprPtr predicate;          ///< rows satisfying this are candidates to age
  AgingGuarantee guarantee;
  std::optional<JoinGuard> guard;
  std::vector<std::string> depends_on;  ///< rule names that must run first
};

/// Outcome of one aging pass.
struct AgingStats {
  uint64_t rows_aged = 0;
  uint64_t rows_blocked_by_guard = 0;
};

/// Manages aging rules, executes aging passes (hot -> "<table>$aged"
/// partition), and serves as the optimizer's PartitionPruner: a scan of a
/// base table expands to its partition list minus partitions the rule
/// guarantees cannot contain matches.
class AgingManager : public PartitionPruner {
 public:
  AgingManager(Database* db, TransactionManager* tm) : db_(db), tm_(tm) {}

  /// Registers a rule; rejects dependency cycles (§III: "there is no cycle
  /// in the dependency graph") and unknown dependencies at Run time.
  Status AddRule(AgingRule rule);

  /// Runs all rules in dependency order; moves matching rows into the aged
  /// partitions (created on demand).
  StatusOr<AgingStats> RunAging();

  /// PartitionPruner: returns the partitions of `table` that must be
  /// scanned for `predicate` ({} if `table` is not partition-managed).
  std::vector<std::string> Prune(const std::string& table,
                                 const ExprPtr& predicate) const override;

  /// Partition name helpers.
  static std::string AgedName(const std::string& table) { return table + "$aged"; }

  /// All partitions currently existing for a managed table.
  std::vector<std::string> Partitions(const std::string& table) const;

  const std::vector<AgingRule>& rules() const { return rules_; }

 private:
  Status CheckNoCycle() const;
  /// True if the guarantee proves the aged partition cannot satisfy any
  /// conjunct of the predicate (conservative: only simple atoms prune).
  static bool GuaranteeContradictsPredicate(const AgingGuarantee& guarantee,
                                            const Schema& schema, const ExprPtr& predicate);

  Database* db_;
  TransactionManager* tm_;
  std::vector<AgingRule> rules_;
  /// Tables whose aged partition has ever received rows. Tracked
  /// independently of residency: a demoted aged partition must still appear
  /// in unpruned partition lists so queries fail loudly (NotFound) instead
  /// of silently losing history until it is promoted back.
  std::set<std::string> populated_aged_;
};

/// Statistics-only pruning baseline for E12: per-partition min/max of the
/// columns it has seen; prunes only when the observed range is provably
/// disjoint from a predicate atom. Knows nothing about application
/// semantics, so open-but-old rows poison its bounds.
class StatsPruner : public PartitionPruner {
 public:
  StatsPruner(Database* db, TransactionManager* tm) : db_(db), tm_(tm) {}

  /// Declares `table` as partitioned into `partitions` and computes
  /// min/max stats for `column` in each.
  Status Analyze(const std::string& table, const std::vector<std::string>& partitions,
                 const std::string& column);

  std::vector<std::string> Prune(const std::string& table,
                                 const ExprPtr& predicate) const override;

 private:
  struct PartitionStats {
    std::string name;
    std::string column;
    Value min, max;
    bool has_rows = false;
  };
  Database* db_;
  TransactionManager* tm_;
  std::map<std::string, std::vector<PartitionStats>> tables_;
};

}  // namespace poly

#endif  // POLY_AGING_AGING_H_
