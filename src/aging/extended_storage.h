#ifndef POLY_AGING_EXTENDED_STORAGE_H_
#define POLY_AGING_EXTENDED_STORAGE_H_

#include <map>
#include <mutex>
#include <string>

#include "common/status.h"
#include "hadoop/dfs.h"
#include "storage/database.h"

namespace poly {

/// Warm tier of Figure 1 ("HANA Dynamic Tiering / Extended Storage", the IQ
/// technology box of Figure 2): disk-resident table storage with simulated
/// access cost between in-memory and DFS. Tables demoted here leave main
/// memory and are reloaded on demand.
class ExtendedStorage {
 public:
  struct Options {
    double read_nanos_per_byte = 2.0;   ///< ~500 MB/s "local disk"
    double write_nanos_per_byte = 4.0;
  };

  ExtendedStorage() : ExtendedStorage(Options()) {}
  explicit ExtendedStorage(Options options) : options_(options) {}

  /// Serializes and stores a table; removes it from `db`.
  Status Demote(Database* db, const std::string& table);

  /// Loads a table back into `db` (leaves the warm copy in place).
  StatusOr<ColumnTable*> Promote(Database* db, const std::string& table);

  /// Moves a warm table onward to the cold tier (DFS, Figure 1/4: "HDFS is
  /// used as an aging store for HANA").
  Status DemoteToCold(const std::string& table, SimulatedDfs* dfs);

  /// Loads a table from the cold tier back into `db`.
  StatusOr<ColumnTable*> PromoteFromCold(Database* db, const std::string& table,
                                         SimulatedDfs* dfs);

  bool Contains(const std::string& table) const;
  Status Drop(const std::string& table);

  /// Serialized size of a warm table; 0 if absent. The tiering policy
  /// meters its migration budget in these bytes.
  uint64_t BytesOf(const std::string& table) const;

  /// Accrued simulated access cost (ns) and volume.
  double simulated_nanos() const { return simulated_nanos_; }
  uint64_t bytes_stored() const;

  static std::string ColdPath(const std::string& table) {
    return "/cold/" + table + ".tbl";
  }

 private:
  Options options_;
  mutable std::mutex mu_;
  std::map<std::string, std::string> store_;  // table -> serialized bytes
  mutable double simulated_nanos_ = 0;
};

}  // namespace poly

#endif  // POLY_AGING_EXTENDED_STORAGE_H_
