#ifndef POLY_AGING_EXTENDED_STORAGE_H_
#define POLY_AGING_EXTENDED_STORAGE_H_

#include <map>
#include <mutex>
#include <string>

#include "common/status.h"
#include "hadoop/dfs.h"
#include "storage/database.h"

namespace poly {

/// Warm tier of Figure 1 ("HANA Dynamic Tiering / Extended Storage", the IQ
/// technology box of Figure 2): disk-resident table storage with simulated
/// access cost between in-memory and DFS. Tables demoted here leave main
/// memory and are reloaded on demand.
class ExtendedStorage {
 public:
  struct Options {
    double read_nanos_per_byte = 2.0;   ///< ~500 MB/s "local disk"
    double write_nanos_per_byte = 4.0;
  };

  ExtendedStorage() : ExtendedStorage(Options()) {}
  explicit ExtendedStorage(Options options) : options_(options) {}

  /// Serializes and stores a table; removes it from `db`.
  Status Demote(Database* db, const std::string& table);

  /// Moves a table back into `db`, removing the warm copy — residency is
  /// unambiguous (a stale warm "cache" could be independently demoted to
  /// cold while the partition is hot). On failure the payload is restored.
  StatusOr<ColumnTable*> Promote(Database* db, const std::string& table);

  /// Moves a warm table onward to the cold tier (DFS, Figure 1/4: "HDFS is
  /// used as an aging store for HANA").
  Status DemoteToCold(const std::string& table, SimulatedDfs* dfs);

  /// Loads a table from the cold tier back into `db`.
  StatusOr<ColumnTable*> PromoteFromCold(Database* db, const std::string& table,
                                         SimulatedDfs* dfs);

  bool Contains(const std::string& table) const;
  Status Drop(const std::string& table);

  /// Removes a warm table and returns its serialized payload (charging the
  /// warm read cost). Payload-level hop used by DfsTierStore::Sink so a
  /// warm->cold move never deserializes: the bytes go straight to DFS with
  /// MVCC stamps intact.
  StatusOr<std::string> TakePayload(const std::string& table);

  /// Inserts a serialized payload as a warm table (charging the warm write
  /// cost). The reverse hop, used by DfsTierStore::Raise for cold->warm.
  Status AdoptPayload(const std::string& table, std::string payload);

  /// Serialized size of a warm table; 0 if absent. The tiering policy
  /// meters its migration budget in these bytes.
  uint64_t BytesOf(const std::string& table) const;

  /// Accrued simulated access cost (ns) and volume.
  double simulated_nanos() const { return simulated_nanos_; }
  uint64_t bytes_stored() const;

  static std::string ColdPath(const std::string& table) {
    return "/cold/" + table + ".tbl";
  }

  const Options& options() const { return options_; }

 private:
  Options options_;
  mutable std::mutex mu_;
  std::map<std::string, std::string> store_;  // table -> serialized bytes
  mutable double simulated_nanos_ = 0;
};

}  // namespace poly

#endif  // POLY_AGING_EXTENDED_STORAGE_H_
