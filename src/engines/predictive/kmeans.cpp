#include "engines/predictive/kmeans.h"

#include <cmath>
#include <limits>

#include "common/random.h"

namespace poly {

namespace {
double SquaredDistance(const std::vector<double>& a, const std::vector<double>& b) {
  double d = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    double diff = a[i] - b[i];
    d += diff * diff;
  }
  return d;
}
}  // namespace

StatusOr<KMeansResult> KMeans(const std::vector<std::vector<double>>& points, size_t k,
                              int max_iterations, uint64_t seed) {
  if (k == 0) return Status::InvalidArgument("k must be > 0");
  if (points.size() < k) {
    return Status::InvalidArgument("fewer points than clusters");
  }
  size_t dims = points[0].size();
  for (const auto& p : points) {
    if (p.size() != dims) return Status::InvalidArgument("inconsistent dimensions");
  }

  Random rng(seed);
  KMeansResult result;
  // k-means++ seeding.
  result.centroids.push_back(points[rng.Uniform(points.size())]);
  std::vector<double> min_dist(points.size(), std::numeric_limits<double>::max());
  while (result.centroids.size() < k) {
    double total = 0;
    for (size_t i = 0; i < points.size(); ++i) {
      double d = SquaredDistance(points[i], result.centroids.back());
      if (d < min_dist[i]) min_dist[i] = d;
      total += min_dist[i];
    }
    double target = rng.NextDouble() * total;
    size_t chosen = 0;
    double acc = 0;
    for (size_t i = 0; i < points.size(); ++i) {
      acc += min_dist[i];
      if (acc >= target) {
        chosen = i;
        break;
      }
    }
    result.centroids.push_back(points[chosen]);
  }

  result.assignments.assign(points.size(), -1);
  for (int iter = 0; iter < max_iterations; ++iter) {
    bool changed = false;
    for (size_t i = 0; i < points.size(); ++i) {
      int best = 0;
      double best_d = std::numeric_limits<double>::max();
      for (size_t c = 0; c < k; ++c) {
        double d = SquaredDistance(points[i], result.centroids[c]);
        if (d < best_d) {
          best_d = d;
          best = static_cast<int>(c);
        }
      }
      if (result.assignments[i] != best) {
        result.assignments[i] = best;
        changed = true;
      }
    }
    result.iterations = iter + 1;
    if (!changed) break;
    // Recompute centroids; empty clusters keep their position.
    std::vector<std::vector<double>> sums(k, std::vector<double>(dims, 0));
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < points.size(); ++i) {
      int c = result.assignments[i];
      ++counts[c];
      for (size_t d = 0; d < dims; ++d) sums[c][d] += points[i][d];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;
      for (size_t d = 0; d < dims; ++d) {
        result.centroids[c][d] = sums[c][d] / static_cast<double>(counts[c]);
      }
    }
  }

  result.inertia = 0;
  for (size_t i = 0; i < points.size(); ++i) {
    result.inertia += SquaredDistance(points[i], result.centroids[result.assignments[i]]);
  }
  return result;
}

}  // namespace poly
