#include "engines/predictive/apriori.h"

#include <algorithm>
#include <set>

namespace poly {

namespace {

bool ContainsAll(const std::vector<int64_t>& sorted_txn,
                 const std::vector<int64_t>& sorted_items) {
  return std::includes(sorted_txn.begin(), sorted_txn.end(), sorted_items.begin(),
                       sorted_items.end());
}

}  // namespace

std::vector<Itemset> Apriori::FrequentItemsets(
    const std::vector<std::vector<int64_t>>& transactions) const {
  std::vector<Itemset> all_frequent;
  if (transactions.empty()) return all_frequent;

  std::vector<std::vector<int64_t>> sorted_txns = transactions;
  for (auto& t : sorted_txns) {
    std::sort(t.begin(), t.end());
    t.erase(std::unique(t.begin(), t.end()), t.end());
  }
  uint64_t min_count = static_cast<uint64_t>(
      min_support_ * static_cast<double>(sorted_txns.size()) + 0.999999);
  if (min_count == 0) min_count = 1;

  // L1.
  std::map<int64_t, uint64_t> item_counts;
  for (const auto& t : sorted_txns) {
    for (int64_t item : t) ++item_counts[item];
  }
  std::vector<std::vector<int64_t>> current;
  for (const auto& [item, count] : item_counts) {
    if (count >= min_count) {
      current.push_back({item});
      all_frequent.push_back({{item}, count});
    }
  }

  // Lk: join Lk-1 with itself on shared (k-2)-prefix, count, filter.
  for (size_t k = 2; k <= max_size_ && current.size() > 1; ++k) {
    std::vector<std::vector<int64_t>> candidates;
    for (size_t i = 0; i < current.size(); ++i) {
      for (size_t j = i + 1; j < current.size(); ++j) {
        const auto& a = current[i];
        const auto& b = current[j];
        if (!std::equal(a.begin(), a.end() - 1, b.begin())) continue;
        std::vector<int64_t> merged = a;
        merged.push_back(b.back());
        if (merged[merged.size() - 2] > merged.back()) {
          std::swap(merged[merged.size() - 2], merged.back());
        }
        candidates.push_back(std::move(merged));
      }
    }
    std::vector<std::vector<int64_t>> next;
    for (const auto& cand : candidates) {
      uint64_t count = 0;
      for (const auto& t : sorted_txns) {
        if (ContainsAll(t, cand)) ++count;
      }
      if (count >= min_count) {
        next.push_back(cand);
        all_frequent.push_back({cand, count});
      }
    }
    current = std::move(next);
  }

  std::sort(all_frequent.begin(), all_frequent.end(),
            [](const Itemset& a, const Itemset& b) {
              if (a.items.size() != b.items.size()) {
                return a.items.size() < b.items.size();
              }
              return a.items < b.items;
            });
  return all_frequent;
}

std::vector<AssociationRule> Apriori::Rules(
    const std::vector<std::vector<int64_t>>& transactions, double min_confidence) const {
  std::vector<Itemset> frequent = FrequentItemsets(transactions);
  double n = static_cast<double>(transactions.size());
  // Support lookup by itemset.
  std::map<std::vector<int64_t>, uint64_t> support;
  for (const auto& f : frequent) support[f.items] = f.support;

  std::vector<AssociationRule> rules;
  for (const auto& f : frequent) {
    if (f.items.size() < 2) continue;
    // Every single-item consequent (standard compact rule form).
    for (size_t i = 0; i < f.items.size(); ++i) {
      std::vector<int64_t> rhs = {f.items[i]};
      std::vector<int64_t> lhs;
      for (size_t j = 0; j < f.items.size(); ++j) {
        if (j != i) lhs.push_back(f.items[j]);
      }
      auto lhs_it = support.find(lhs);
      auto rhs_it = support.find(rhs);
      if (lhs_it == support.end() || rhs_it == support.end()) continue;
      double conf = static_cast<double>(f.support) / lhs_it->second;
      if (conf < min_confidence) continue;
      AssociationRule rule;
      rule.lhs = lhs;
      rule.rhs = rhs;
      rule.support = f.support / n;
      rule.confidence = conf;
      rule.lift = conf / (rhs_it->second / n);
      rules.push_back(std::move(rule));
    }
  }
  std::sort(rules.begin(), rules.end(),
            [](const AssociationRule& a, const AssociationRule& b) {
              return a.confidence > b.confidence;
            });
  return rules;
}

}  // namespace poly
