#include "engines/predictive/forecast.h"

#include <cmath>

namespace poly {

namespace {
Status CheckSmoothing(double v, const char* name) {
  if (v <= 0 || v > 1) {
    return Status::InvalidArgument(std::string(name) + " must be in (0, 1]");
  }
  return Status::OK();
}
}  // namespace

StatusOr<std::vector<double>> SimpleExpSmoothing(const std::vector<double>& series,
                                                 double alpha, size_t horizon) {
  POLY_RETURN_IF_ERROR(CheckSmoothing(alpha, "alpha"));
  if (series.empty()) return Status::InvalidArgument("empty series");
  double level = series[0];
  for (size_t i = 1; i < series.size(); ++i) {
    level = alpha * series[i] + (1 - alpha) * level;
  }
  return std::vector<double>(horizon, level);
}

StatusOr<std::vector<double>> HoltLinear(const std::vector<double>& series, double alpha,
                                         double beta, size_t horizon) {
  POLY_RETURN_IF_ERROR(CheckSmoothing(alpha, "alpha"));
  POLY_RETURN_IF_ERROR(CheckSmoothing(beta, "beta"));
  if (series.size() < 2) return Status::InvalidArgument("need >= 2 observations");
  double level = series[0];
  double trend = series[1] - series[0];
  for (size_t i = 1; i < series.size(); ++i) {
    double prev_level = level;
    level = alpha * series[i] + (1 - alpha) * (level + trend);
    trend = beta * (level - prev_level) + (1 - beta) * trend;
  }
  std::vector<double> out(horizon);
  for (size_t h = 0; h < horizon; ++h) out[h] = level + trend * static_cast<double>(h + 1);
  return out;
}

StatusOr<std::vector<double>> HoltWinters(const std::vector<double>& series,
                                          size_t season_length, double alpha, double beta,
                                          double gamma, size_t horizon) {
  POLY_RETURN_IF_ERROR(CheckSmoothing(alpha, "alpha"));
  POLY_RETURN_IF_ERROR(CheckSmoothing(beta, "beta"));
  POLY_RETURN_IF_ERROR(CheckSmoothing(gamma, "gamma"));
  size_t m = season_length;
  if (m < 2) return Status::InvalidArgument("season_length must be >= 2");
  if (series.size() < 2 * m) {
    return Status::InvalidArgument("need >= 2 full seasons of data");
  }
  // Initial level/trend from the first two seasons; initial seasonal
  // components as deviations from the first-season mean.
  double mean1 = 0, mean2 = 0;
  for (size_t i = 0; i < m; ++i) {
    mean1 += series[i];
    mean2 += series[m + i];
  }
  mean1 /= static_cast<double>(m);
  mean2 /= static_cast<double>(m);
  double level = mean1;
  double trend = (mean2 - mean1) / static_cast<double>(m);
  std::vector<double> seasonal(m);
  for (size_t i = 0; i < m; ++i) seasonal[i] = series[i] - mean1;

  for (size_t i = 0; i < series.size(); ++i) {
    size_t s = i % m;
    double prev_level = level;
    level = alpha * (series[i] - seasonal[s]) + (1 - alpha) * (level + trend);
    trend = beta * (level - prev_level) + (1 - beta) * trend;
    seasonal[s] = gamma * (series[i] - level) + (1 - gamma) * seasonal[s];
  }
  std::vector<double> out(horizon);
  for (size_t h = 0; h < horizon; ++h) {
    size_t s = (series.size() + h) % m;
    out[h] = level + trend * static_cast<double>(h + 1) + seasonal[s];
  }
  return out;
}

StatusOr<LinearFit> FitLinearTrend(const std::vector<double>& series) {
  size_t n = series.size();
  if (n < 2) return Status::InvalidArgument("need >= 2 observations");
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (size_t i = 0; i < n; ++i) {
    double x = static_cast<double>(i);
    double y = series[i];
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    syy += y * y;
  }
  double nd = static_cast<double>(n);
  double denom = nd * sxx - sx * sx;
  LinearFit fit;
  fit.slope = denom != 0 ? (nd * sxy - sx * sy) / denom : 0;
  fit.intercept = (sy - fit.slope * sx) / nd;
  double ss_tot = syy - sy * sy / nd;
  if (ss_tot > 0) {
    double ss_res = 0;
    for (size_t i = 0; i < n; ++i) {
      double e = series[i] - fit.Predict(static_cast<double>(i));
      ss_res += e * e;
    }
    fit.r2 = 1 - ss_res / ss_tot;
  } else {
    fit.r2 = 1;  // constant series fits perfectly
  }
  return fit;
}

double MeanAbsoluteError(const std::vector<double>& actual,
                         const std::vector<double>& predicted) {
  size_t n = std::min(actual.size(), predicted.size());
  if (n == 0) return 0;
  double sum = 0;
  for (size_t i = 0; i < n; ++i) sum += std::abs(actual[i] - predicted[i]);
  return sum / static_cast<double>(n);
}

double RootMeanSquaredError(const std::vector<double>& actual,
                            const std::vector<double>& predicted) {
  size_t n = std::min(actual.size(), predicted.size());
  if (n == 0) return 0;
  double sum = 0;
  for (size_t i = 0; i < n; ++i) {
    double e = actual[i] - predicted[i];
    sum += e * e;
  }
  return std::sqrt(sum / static_cast<double>(n));
}

}  // namespace poly
