#ifndef POLY_ENGINES_PREDICTIVE_APRIORI_H_
#define POLY_ENGINES_PREDICTIVE_APRIORI_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace poly {

/// Frequent itemset with its support count.
struct Itemset {
  std::vector<int64_t> items;  // sorted
  uint64_t support = 0;
};

/// Association rule lhs -> rhs.
struct AssociationRule {
  std::vector<int64_t> lhs;
  std::vector<int64_t> rhs;
  double support = 0;     // fraction of transactions containing lhs ∪ rhs
  double confidence = 0;  // support(lhs ∪ rhs) / support(lhs)
  double lift = 0;        // confidence / support(rhs)
};

/// Apriori basket analysis (§II-B: "distributed basket analysis" embedded
/// in the column store; the single-node kernel here, distributed by the SOE
/// in src/soe). Transactions are sets of item IDs.
class Apriori {
 public:
  /// `min_support`: minimum fraction of transactions an itemset must
  /// appear in; `max_size`: cap on itemset cardinality.
  Apriori(double min_support, size_t max_size = 4)
      : min_support_(min_support), max_size_(max_size) {}

  /// Mines frequent itemsets, sorted by (size, items).
  std::vector<Itemset> FrequentItemsets(
      const std::vector<std::vector<int64_t>>& transactions) const;

  /// Derives rules meeting `min_confidence` from the frequent itemsets.
  std::vector<AssociationRule> Rules(
      const std::vector<std::vector<int64_t>>& transactions,
      double min_confidence) const;

 private:
  double min_support_;
  size_t max_size_;
};

}  // namespace poly

#endif  // POLY_ENGINES_PREDICTIVE_APRIORI_H_
