#ifndef POLY_ENGINES_PREDICTIVE_KMEANS_H_
#define POLY_ENGINES_PREDICTIVE_KMEANS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace poly {

/// Result of a k-means run.
struct KMeansResult {
  std::vector<std::vector<double>> centroids;  ///< k x dims
  std::vector<int> assignments;                ///< point -> cluster
  double inertia = 0;                          ///< sum of squared distances
  int iterations = 0;
};

/// Lloyd's k-means with k-means++ seeding (deterministic given `seed`).
/// Part of the §II-B data-mining portfolio (clustering).
StatusOr<KMeansResult> KMeans(const std::vector<std::vector<double>>& points, size_t k,
                              int max_iterations = 100, uint64_t seed = 42);

}  // namespace poly

#endif  // POLY_ENGINES_PREDICTIVE_KMEANS_H_
