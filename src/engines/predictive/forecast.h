#ifndef POLY_ENGINES_PREDICTIVE_FORECAST_H_
#define POLY_ENGINES_PREDICTIVE_FORECAST_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace poly {

/// Forecasting algorithms (§II-B: "a variety of forecasting algorithms"
/// embedded in the engine). All operate on equally spaced observations.

/// Simple exponential smoothing; returns `horizon` flat forecasts.
StatusOr<std::vector<double>> SimpleExpSmoothing(const std::vector<double>& series,
                                                 double alpha, size_t horizon);

/// Holt's linear trend method.
StatusOr<std::vector<double>> HoltLinear(const std::vector<double>& series, double alpha,
                                         double beta, size_t horizon);

/// Holt-Winters additive seasonal method. Needs >= 2 full seasons.
StatusOr<std::vector<double>> HoltWinters(const std::vector<double>& series,
                                          size_t season_length, double alpha, double beta,
                                          double gamma, size_t horizon);

/// Ordinary least squares y = intercept + slope * x over x = 0..n-1.
struct LinearFit {
  double intercept = 0;
  double slope = 0;
  double r2 = 0;
  double Predict(double x) const { return intercept + slope * x; }
};
StatusOr<LinearFit> FitLinearTrend(const std::vector<double>& series);

/// Forecast-accuracy metrics against held-out actuals.
double MeanAbsoluteError(const std::vector<double>& actual,
                         const std::vector<double>& predicted);
double RootMeanSquaredError(const std::vector<double>& actual,
                            const std::vector<double>& predicted);

}  // namespace poly

#endif  // POLY_ENGINES_PREDICTIVE_FORECAST_H_
