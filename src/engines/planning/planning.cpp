#include "engines/planning/planning.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace poly {

StatusOr<std::vector<double>> Disaggregate(double total,
                                           const std::vector<double>& weights) {
  if (weights.empty()) return Status::InvalidArgument("no weights");
  double sum = 0;
  for (double w : weights) {
    if (w < 0) return Status::InvalidArgument("negative weight");
    sum += w;
  }
  if (sum == 0) return Status::InvalidArgument("weights sum to zero");
  std::vector<double> out(weights.size());
  for (size_t i = 0; i < weights.size(); ++i) out[i] = total * weights[i] / sum;
  return out;
}

StatusOr<std::vector<int64_t>> DisaggregateInt(int64_t total,
                                               const std::vector<double>& weights) {
  POLY_ASSIGN_OR_RETURN(std::vector<double> exact,
                        Disaggregate(static_cast<double>(total), weights));
  std::vector<int64_t> out(exact.size());
  std::vector<std::pair<double, size_t>> remainders(exact.size());
  int64_t assigned = 0;
  for (size_t i = 0; i < exact.size(); ++i) {
    out[i] = static_cast<int64_t>(std::floor(exact[i]));
    assigned += out[i];
    remainders[i] = {exact[i] - std::floor(exact[i]), i};
  }
  // Largest remainders absorb the leftover units, ties by index (stable).
  std::stable_sort(remainders.begin(), remainders.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  int64_t leftover = total - assigned;
  for (int64_t i = 0; i < leftover && i < static_cast<int64_t>(out.size()); ++i) {
    ++out[remainders[static_cast<size_t>(i)].second];
  }
  return out;
}

StatusOr<PlanningEngine> PlanningEngine::Create(TransactionManager* tm,
                                                ColumnTable* plan_table) {
  POLY_ASSIGN_OR_RETURN(size_t version_col, plan_table->schema().IndexOf("version"));
  POLY_ASSIGN_OR_RETURN(size_t value_col, plan_table->schema().IndexOf("value"));
  if (plan_table->schema().column(version_col).type != DataType::kInt64 ||
      plan_table->schema().column(value_col).type != DataType::kDouble) {
    return Status::InvalidArgument("plan table needs version INT64 and value DOUBLE");
  }
  return PlanningEngine(tm, plan_table, version_col, value_col);
}

std::vector<uint64_t> PlanningEngine::VersionRows(int64_t version) const {
  std::vector<uint64_t> rows;
  ReadView view = tm_->AutoCommitView();
  table_->ScanVisible(view, [&](uint64_t r) {
    Value v = table_->GetValue(r, version_col_);
    if (!v.is_null() && v.AsInt() == version) rows.push_back(r);
  });
  return rows;
}

StatusOr<uint64_t> PlanningEngine::CopyVersion(int64_t from_version, int64_t to_version,
                                               double factor) {
  if (!VersionRows(to_version).empty()) {
    return Status::AlreadyExists("plan version " + std::to_string(to_version) +
                                 " already populated");
  }
  std::vector<uint64_t> source = VersionRows(from_version);
  if (source.empty()) {
    return Status::NotFound("plan version " + std::to_string(from_version) + " empty");
  }
  auto txn = tm_->Begin();
  for (uint64_t r : source) {
    Row row = table_->GetRow(r);
    row[version_col_] = Value::Int(to_version);
    row[value_col_] = Value::Dbl(row[value_col_].NumericValue() * factor);
    POLY_RETURN_IF_ERROR(tm_->Insert(txn.get(), table_, row));
  }
  POLY_RETURN_IF_ERROR(tm_->Commit(txn.get()));
  return source.size();
}

Status PlanningEngine::DisaggregateVersion(int64_t version, double new_total) {
  std::vector<uint64_t> rows = VersionRows(version);
  if (rows.empty()) {
    return Status::NotFound("plan version " + std::to_string(version) + " empty");
  }
  std::vector<double> weights;
  weights.reserve(rows.size());
  for (uint64_t r : rows) {
    weights.push_back(table_->GetValue(r, value_col_).NumericValue());
  }
  // All-zero plans disaggregate uniformly.
  double sum = 0;
  for (double w : weights) sum += w;
  if (sum == 0) std::fill(weights.begin(), weights.end(), 1.0);
  POLY_ASSIGN_OR_RETURN(std::vector<double> parts, Disaggregate(new_total, weights));
  auto txn = tm_->Begin();
  for (size_t i = 0; i < rows.size(); ++i) {
    Row row = table_->GetRow(rows[i]);
    row[value_col_] = Value::Dbl(parts[i]);
    POLY_RETURN_IF_ERROR(tm_->Update(txn.get(), table_, rows[i], row));
  }
  return tm_->Commit(txn.get());
}

StatusOr<double> PlanningEngine::VersionTotal(int64_t version) const {
  std::vector<uint64_t> rows = VersionRows(version);
  if (rows.empty()) {
    return Status::NotFound("plan version " + std::to_string(version) + " empty");
  }
  double total = 0;
  for (uint64_t r : rows) total += table_->GetValue(r, value_col_).NumericValue();
  return total;
}

std::vector<int64_t> PlanningEngine::Versions() const {
  std::set<int64_t> versions;
  ReadView view = tm_->AutoCommitView();
  table_->ScanVisible(view, [&](uint64_t r) {
    Value v = table_->GetValue(r, version_col_);
    if (!v.is_null()) versions.insert(v.AsInt());
  });
  return std::vector<int64_t>(versions.begin(), versions.end());
}

uint64_t PlanningEngine::VersionRowCount(int64_t version) const {
  return VersionRows(version).size();
}

}  // namespace poly
