#ifndef POLY_ENGINES_PLANNING_PLANNING_H_
#define POLY_ENGINES_PLANNING_PLANNING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/column_table.h"
#include "txn/transaction_manager.h"

namespace poly {

/// Planning engine (§II-D): "disaggregation or copy processes, providing
/// logical snapshots or versioning" as in-database operators behind SQL
/// extensions. Plan tables carry an explicit `version` column; a planning
/// version is a logical snapshot created by the copy operator.

/// Splits `total` across weights proportionally. Doubles get exact
/// proportional shares; DisaggregateInt uses largest-remainder so the parts
/// sum exactly to the total (the property planners actually need).
StatusOr<std::vector<double>> Disaggregate(double total, const std::vector<double>& weights);
StatusOr<std::vector<int64_t>> DisaggregateInt(int64_t total,
                                               const std::vector<double>& weights);

/// In-database planning operators over a plan table with schema
/// (version INT64, key INT64, value DOUBLE, ...extra dims).
class PlanningEngine {
 public:
  /// `plan_table` must contain columns named `version` (INT64) and
  /// `value` (DOUBLE); both table and tm must outlive the engine.
  static StatusOr<PlanningEngine> Create(TransactionManager* tm,
                                         ColumnTable* plan_table);

  /// Copy operator: duplicates all rows of `from_version` into
  /// `to_version`, scaling values by `factor` (the "copy last year's plan
  /// +5%" workflow). Fails if the target version already has rows.
  StatusOr<uint64_t> CopyVersion(int64_t from_version, int64_t to_version,
                                 double factor = 1.0);

  /// Disaggregation operator: overwrite the values of `version` so that
  /// the version total becomes `new_total` while preserving the current
  /// proportions (classic top-down planning).
  Status DisaggregateVersion(int64_t version, double new_total);

  /// Sum of plan values of a version.
  StatusOr<double> VersionTotal(int64_t version) const;
  /// Distinct versions present.
  std::vector<int64_t> Versions() const;
  /// Row count of a version.
  uint64_t VersionRowCount(int64_t version) const;

 private:
  PlanningEngine(TransactionManager* tm, ColumnTable* table, size_t version_col,
                 size_t value_col)
      : tm_(tm), table_(table), version_col_(version_col), value_col_(value_col) {}

  /// Visible row ids of a version under a fresh snapshot.
  std::vector<uint64_t> VersionRows(int64_t version) const;

  TransactionManager* tm_;
  ColumnTable* table_;
  size_t version_col_ = 0;
  size_t value_col_ = 0;
};

}  // namespace poly

#endif  // POLY_ENGINES_PLANNING_PLANNING_H_
