#ifndef POLY_ENGINES_TEXT_TEXT_ANALYSIS_H_
#define POLY_ENGINES_TEXT_TEXT_ANALYSIS_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "engines/text/tokenizer.h"

namespace poly {

/// Extracted entity (§II-C: "we are able to extract entities (like names,
/// addresses, companies, ...) and sentiments from documents with a rule
/// based approach"). Entities become structured data combinable with the
/// relational engine.
struct Entity {
  enum class Kind { kPersonOrPlace, kCompany, kMoney, kNumber, kEmail };
  Kind kind;
  std::string text;
  size_t token_offset = 0;
};

const char* EntityKindName(Entity::Kind kind);

/// Rule-based entity extractor: capitalized runs, a company-suffix
/// gazetteer, currency amounts, bare numbers, e-mail shapes.
std::vector<Entity> ExtractEntities(const std::string& text);

/// Lexicon-based sentiment in [-1, 1] with simple negation handling.
double SentimentScore(const std::string& text);

/// Multinomial naive-Bayes text classifier (§II-C "text classification").
class NaiveBayesClassifier {
 public:
  /// Adds a training document under `label`.
  void Train(const std::string& label, const std::string& text);

  /// Most likely label, or "" if untrained.
  std::string Classify(const std::string& text) const;

  /// Log-probability scores per label for inspection.
  std::unordered_map<std::string, double> Scores(const std::string& text) const;

  size_t num_labels() const { return label_docs_.size(); }

 private:
  TokenizerOptions opts_;
  std::unordered_map<std::string, uint64_t> label_docs_;
  std::unordered_map<std::string, uint64_t> label_tokens_;
  // label -> term -> count
  std::unordered_map<std::string, std::unordered_map<std::string, uint64_t>> counts_;
  std::unordered_map<std::string, bool> vocabulary_;
};

}  // namespace poly

#endif  // POLY_ENGINES_TEXT_TEXT_ANALYSIS_H_
