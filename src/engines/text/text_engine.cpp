#include "engines/text/text_engine.h"

namespace poly {

StatusOr<TextEngine> TextEngine::Create(ColumnTable* table, const std::string& column) {
  POLY_ASSIGN_OR_RETURN(size_t idx, table->schema().IndexOf(column));
  DataType type = table->schema().column(idx).type;
  if (type != DataType::kString && type != DataType::kDocument) {
    return Status::InvalidArgument("text engine needs a string column, got " +
                                   std::string(DataTypeName(type)));
  }
  return TextEngine(table, idx);
}

uint64_t TextEngine::Refresh() {
  uint64_t n = table_->num_versions();
  uint64_t indexed = 0;
  for (uint64_t r = indexed_until_; r < n; ++r) {
    Value v = table_->GetValue(r, column_);
    if (v.is_null()) continue;
    index_.AddDocument(r, v.AsString());
    ++indexed;
  }
  indexed_until_ = n;
  return indexed;
}

double TextEngine::RowSentiment(uint64_t row) const {
  Value v = table_->GetValue(row, column_);
  if (v.is_null()) return 0;
  return SentimentScore(v.AsString());
}

StatusOr<uint64_t> TextEngine::ExtractEntitiesTo(TransactionManager* tm,
                                                 ColumnTable* target) {
  if (target->schema().num_columns() != 3) {
    return Status::InvalidArgument(
        "entity target table must be (doc_row, kind, entity)");
  }
  auto txn = tm->Begin();
  uint64_t written = 0;
  for (uint64_t r = 0; r < indexed_until_; ++r) {
    Value v = table_->GetValue(r, column_);
    if (v.is_null()) continue;
    for (const Entity& e : ExtractEntities(v.AsString())) {
      POLY_RETURN_IF_ERROR(tm->Insert(
          txn.get(), target,
          {Value::Int(static_cast<int64_t>(r)), Value::Str(EntityKindName(e.kind)),
           Value::Str(e.text)}));
      ++written;
    }
  }
  POLY_RETURN_IF_ERROR(tm->Commit(txn.get()));
  return written;
}

}  // namespace poly
