#include "engines/text/tokenizer.h"

#include <array>
#include <cctype>
#include <unordered_set>

#include "common/string_util.h"

namespace poly {

namespace {

const std::unordered_set<std::string>& StopwordSet() {
  static const auto* kSet = new std::unordered_set<std::string>{
      "a",    "an",   "and",  "are",  "as",   "at",   "be",   "but", "by",
      "for",  "from", "has",  "have", "he",   "her",  "his",  "if",  "in",
      "is",   "it",   "its",  "not",  "of",   "on",   "or",   "she", "so",
      "that", "the",  "their", "then", "there", "they", "this", "to", "was",
      "we",   "were", "which", "will", "with", "you"};
  return *kSet;
}

bool EndsWithSuffix(const std::string& w, std::string_view suffix) {
  return w.size() > suffix.size() &&
         w.compare(w.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

bool IsStopword(std::string_view word) {
  return StopwordSet().count(std::string(word)) > 0;
}

std::string StemWord(const std::string& word) {
  std::string w = word;
  // Order matters: longest suffixes first within each family.
  if (EndsWithSuffix(w, "sses")) {
    w.erase(w.size() - 2);  // classes -> class
  } else if (EndsWithSuffix(w, "ies")) {
    w.replace(w.size() - 3, 3, "y");  // companies -> company
  } else if (EndsWithSuffix(w, "ss")) {
    // keep: glass
  } else if (EndsWithSuffix(w, "s") && w.size() > 3) {
    w.erase(w.size() - 1);  // sensors -> sensor
  }
  if (EndsWithSuffix(w, "ment") && w.size() > 6) {
    w.erase(w.size() - 4);  // management -> manage
  } else if (EndsWithSuffix(w, "ness") && w.size() > 5) {
    w.erase(w.size() - 4);
  } else if (EndsWithSuffix(w, "tion") && w.size() > 5) {
    w.replace(w.size() - 3, 3, "e");  // integration -> integrate
  } else if (EndsWithSuffix(w, "ing") && w.size() > 5) {
    w.erase(w.size() - 3);  // processing -> process
    if (w.size() > 2 && w[w.size() - 1] == w[w.size() - 2] &&
        !EndsWithSuffix(w, "ss") && !EndsWithSuffix(w, "ll")) {
      w.erase(w.size() - 1);  // planning -> plan
    }
  } else if (EndsWithSuffix(w, "ed") && w.size() > 4) {
    w.erase(w.size() - 2);  // merged -> merg (stems align across forms)
  } else if (EndsWithSuffix(w, "ly") && w.size() > 4) {
    w.erase(w.size() - 2);
  }
  // Final e-stripping so inflections converge on one stem
  // (merge/merges/merged/merging -> "merg").
  if (EndsWithSuffix(w, "e") && w.size() > 4) w.erase(w.size() - 1);
  return w;
}

std::vector<std::string> RawTokens(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char ch : text) {
    if (std::isalnum(static_cast<unsigned char>(ch)) || ch == '\'') {
      current += ch;
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

std::vector<std::string> Tokenize(std::string_view text, const TokenizerOptions& opts) {
  std::vector<std::string> out;
  for (std::string& raw : RawTokens(text)) {
    std::string token = ToLower(raw);
    if (token.size() < opts.min_token_length) continue;
    if (opts.remove_stopwords && IsStopword(token)) continue;
    if (opts.stem) token = StemWord(token);
    out.push_back(std::move(token));
  }
  return out;
}

}  // namespace poly
