#ifndef POLY_ENGINES_TEXT_TEXT_ENGINE_H_
#define POLY_ENGINES_TEXT_TEXT_ENGINE_H_

#include <string>

#include "engines/text/inverted_index.h"
#include "engines/text/text_analysis.h"
#include "storage/column_table.h"
#include "txn/transaction_manager.h"

namespace poly {

/// Binds the text machinery to a string/document column of a column table
/// (§II-C: "text processing is deeply integrated into the HANA engine [...]
/// results of text analytics can now be combined with structured data").
///
/// The paper triggers analysis "automatically when new or changed documents
/// are brought into the data management system"; Refresh() is that trigger —
/// it incrementally indexes row versions appended since the last call.
class TextEngine {
 public:
  /// `table` must outlive the engine; `column` must be a string column.
  static StatusOr<TextEngine> Create(ColumnTable* table, const std::string& column);

  /// Indexes rows appended since the last Refresh. Returns rows indexed.
  uint64_t Refresh();

  /// BM25 search returning table row IDs (visibility is the caller's
  /// concern: filter hits through a ReadView when combining with SQL).
  std::vector<SearchHit> Search(const std::string& query, size_t top_k = 10) const {
    return index_.Search(query, top_k);
  }
  std::vector<SearchHit> SearchAll(const std::string& query, size_t top_k = 10) const {
    return index_.SearchAll(query, top_k);
  }

  /// Sentiment of one stored document row.
  double RowSentiment(uint64_t row) const;

  /// Extracts entities from every indexed document into `target`, which
  /// must have schema (doc_row INT64, kind STRING, entity STRING) — the
  /// unstructured→structured bridge. Returns entities written.
  StatusOr<uint64_t> ExtractEntitiesTo(TransactionManager* tm, ColumnTable* target);

  const InvertedIndex& index() const { return index_; }

 private:
  TextEngine(ColumnTable* table, size_t column) : table_(table), column_(column) {}

  ColumnTable* table_;
  size_t column_;
  uint64_t indexed_until_ = 0;
  InvertedIndex index_;
};

}  // namespace poly

#endif  // POLY_ENGINES_TEXT_TEXT_ENGINE_H_
