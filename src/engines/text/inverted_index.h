#ifndef POLY_ENGINES_TEXT_INVERTED_INDEX_H_
#define POLY_ENGINES_TEXT_INVERTED_INDEX_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "engines/text/tokenizer.h"

namespace poly {

/// One ranked search hit.
struct SearchHit {
  uint64_t doc_id = 0;
  double score = 0;
};

/// In-memory inverted index with TF-IDF / BM25 ranking (§II-C "simple text
/// search which we all know from web search engines"). Documents are
/// arbitrary uint64 IDs — the text engine maps them to table row IDs.
class InvertedIndex {
 public:
  explicit InvertedIndex(TokenizerOptions opts = TokenizerOptions())
      : opts_(opts) {}

  /// Indexes (or re-indexes) a document. Re-adding an ID replaces it.
  void AddDocument(uint64_t doc_id, const std::string& text);
  void RemoveDocument(uint64_t doc_id);

  /// BM25-ranked disjunctive query; hits must match >= 1 term.
  std::vector<SearchHit> Search(const std::string& query, size_t top_k = 10) const;
  /// Conjunctive query: documents containing all terms, BM25-ranked.
  std::vector<SearchHit> SearchAll(const std::string& query, size_t top_k = 10) const;

  /// Phrase query: documents where the (normalized) terms occur as a
  /// contiguous sequence, BM25-ranked. Uses positional postings.
  std::vector<SearchHit> SearchPhrase(const std::string& phrase,
                                      size_t top_k = 10) const;

  /// Documents containing `term` (normalized through the tokenizer).
  std::vector<uint64_t> PostingList(const std::string& term) const;

  size_t num_documents() const { return doc_lengths_.size(); }
  size_t num_terms() const { return postings_.size(); }

 private:
  struct Posting {
    uint64_t doc_id;
    uint32_t term_freq;
    std::vector<uint32_t> positions;  ///< token offsets within the document
  };

  std::vector<SearchHit> RankedSearch(const std::string& query, size_t top_k,
                                      bool require_all) const;
  double AvgDocLength() const;

  TokenizerOptions opts_;
  std::unordered_map<std::string, std::vector<Posting>> postings_;
  std::unordered_map<uint64_t, uint32_t> doc_lengths_;
};

}  // namespace poly

#endif  // POLY_ENGINES_TEXT_INVERTED_INDEX_H_
