#ifndef POLY_ENGINES_TEXT_TOKENIZER_H_
#define POLY_ENGINES_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace poly {

/// Tokenization + linguistic normalization for the text engine (§II-C:
/// "many languages have to be supported natively with functionality like
/// stemming"). ASCII-oriented: lowercases, splits on non-alphanumerics,
/// optionally drops stopwords and applies a Porter-style suffix stemmer.
struct TokenizerOptions {
  bool remove_stopwords = true;
  bool stem = true;
  size_t min_token_length = 2;
};

/// English stopword test (small built-in list).
bool IsStopword(std::string_view word);

/// Porter-style suffix stripping (a compact subset: plurals, -ed, -ing,
/// -ly, -ment, -ness, -tion). Input must already be lowercase.
std::string StemWord(const std::string& word);

/// Splits `text` into normalized tokens.
std::vector<std::string> Tokenize(std::string_view text,
                                  const TokenizerOptions& opts = TokenizerOptions());

/// Tokenizes without normalization (original casing, no stemming) — used by
/// the rule-based entity extractor which needs capitalization.
std::vector<std::string> RawTokens(std::string_view text);

}  // namespace poly

#endif  // POLY_ENGINES_TEXT_TOKENIZER_H_
