#include "engines/text/text_analysis.h"

#include <cctype>
#include <cmath>
#include <unordered_set>

#include "common/string_util.h"

namespace poly {

namespace {

bool IsCapitalized(const std::string& token) {
  return !token.empty() && std::isupper(static_cast<unsigned char>(token[0]));
}

bool IsAllDigits(const std::string& token) {
  if (token.empty()) return false;
  for (char c : token) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

const std::unordered_set<std::string>& CompanySuffixes() {
  static const auto* kSet = new std::unordered_set<std::string>{
      "inc", "corp", "gmbh", "ltd", "llc", "se", "ag", "co"};
  return *kSet;
}

const std::unordered_map<std::string, double>& SentimentLexicon() {
  static const auto* kLex = new std::unordered_map<std::string, double>{
      {"good", 1},      {"great", 1.5},   {"excellent", 2},  {"love", 1.5},
      {"like", 0.5},    {"fast", 1},      {"happy", 1},      {"best", 1.5},
      {"amazing", 2},   {"reliable", 1},  {"efficient", 1},  {"win", 1},
      {"bad", -1},      {"poor", -1},     {"terrible", -2},  {"hate", -1.5},
      {"slow", -1},     {"broken", -1.5}, {"fail", -1.5},    {"failure", -1.5},
      {"worst", -2},    {"awful", -2},    {"leak", -1},      {"problem", -1},
      {"issue", -0.5},  {"delay", -1},    {"expensive", -0.5}};
  return *kLex;
}

bool IsNegation(const std::string& token) {
  return token == "not" || token == "no" || token == "never" || token == "n't";
}

}  // namespace

const char* EntityKindName(Entity::Kind kind) {
  switch (kind) {
    case Entity::Kind::kPersonOrPlace: return "PERSON_OR_PLACE";
    case Entity::Kind::kCompany: return "COMPANY";
    case Entity::Kind::kMoney: return "MONEY";
    case Entity::Kind::kNumber: return "NUMBER";
    case Entity::Kind::kEmail: return "EMAIL";
  }
  return "UNKNOWN";
}

std::vector<Entity> ExtractEntities(const std::string& text) {
  std::vector<Entity> out;

  // E-mail shapes work on the raw text (tokenizer would split the '@').
  size_t at = text.find('@');
  while (at != std::string::npos && at > 0) {
    size_t start = at;
    while (start > 0 && (std::isalnum(static_cast<unsigned char>(text[start - 1])) ||
                         text[start - 1] == '.' || text[start - 1] == '_')) {
      --start;
    }
    size_t end = at + 1;
    while (end < text.size() && (std::isalnum(static_cast<unsigned char>(text[end])) ||
                                 text[end] == '.' || text[end] == '-')) {
      ++end;
    }
    std::string candidate = text.substr(start, end - start);
    if (start < at && end > at + 1 && candidate.find('.', at - start) != std::string::npos) {
      out.push_back({Entity::Kind::kEmail, candidate, start});
    }
    at = text.find('@', at + 1);
  }

  std::vector<std::string> tokens = RawTokens(text);
  for (size_t i = 0; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    // Money: "$123" is split to "123" by RawTokens, so look in raw text via
    // the simpler rule: number followed by currency words, or EUR/USD prefix.
    if (IsAllDigits(tok)) {
      bool money = false;
      if (i + 1 < tokens.size()) {
        std::string next = ToLower(tokens[i + 1]);
        money = next == "eur" || next == "usd" || next == "dollars" || next == "euros";
      }
      if (!money && i > 0) {
        std::string prev = ToLower(tokens[i - 1]);
        money = prev == "eur" || prev == "usd";
      }
      out.push_back({money ? Entity::Kind::kMoney : Entity::Kind::kNumber, tok, i});
      continue;
    }
    // Capitalized run: join consecutive capitalized tokens (not at sentence
    // start heuristics — kept simple and deterministic).
    if (IsCapitalized(tok) && i > 0) {
      size_t j = i;
      std::string run;
      while (j < tokens.size() && IsCapitalized(tokens[j])) {
        if (!run.empty()) run += " ";
        run += tokens[j];
        ++j;
      }
      Entity::Kind kind = Entity::Kind::kPersonOrPlace;
      if (j < tokens.size() && CompanySuffixes().count(ToLower(tokens[j]))) {
        run += " " + tokens[j];
        ++j;
        kind = Entity::Kind::kCompany;
      } else if (CompanySuffixes().count(ToLower(tokens[j - 1]))) {
        kind = Entity::Kind::kCompany;
      }
      out.push_back({kind, run, i});
      i = j - 1;
    }
  }
  return out;
}

double SentimentScore(const std::string& text) {
  TokenizerOptions opts;
  opts.remove_stopwords = false;
  opts.stem = false;
  opts.min_token_length = 1;
  std::vector<std::string> tokens = Tokenize(text, opts);
  double score = 0;
  double weight_sum = 0;
  bool negated = false;
  for (const auto& tok : tokens) {
    if (IsNegation(tok)) {
      negated = true;
      continue;
    }
    auto it = SentimentLexicon().find(tok);
    if (it != SentimentLexicon().end()) {
      score += negated ? -it->second : it->second;
      weight_sum += std::abs(it->second);
    }
    negated = false;  // negation scopes one content word
  }
  if (weight_sum == 0) return 0;
  double normalized = score / weight_sum;
  return std::max(-1.0, std::min(1.0, normalized));
}

void NaiveBayesClassifier::Train(const std::string& label, const std::string& text) {
  ++label_docs_[label];
  for (const auto& tok : Tokenize(text, opts_)) {
    ++counts_[label][tok];
    ++label_tokens_[label];
    vocabulary_[tok] = true;
  }
}

std::unordered_map<std::string, double> NaiveBayesClassifier::Scores(
    const std::string& text) const {
  std::unordered_map<std::string, double> scores;
  if (label_docs_.empty()) return scores;
  uint64_t total_docs = 0;
  for (const auto& [_, n] : label_docs_) total_docs += n;
  double vocab = static_cast<double>(vocabulary_.size());
  std::vector<std::string> tokens = Tokenize(text, opts_);
  for (const auto& [label, docs] : label_docs_) {
    double score = std::log(static_cast<double>(docs) / total_docs);
    double denom = static_cast<double>(label_tokens_.at(label)) + vocab;
    const auto& term_counts = counts_.at(label);
    for (const auto& tok : tokens) {
      auto it = term_counts.find(tok);
      double count = it != term_counts.end() ? it->second : 0;
      score += std::log((count + 1.0) / denom);  // Laplace smoothing
    }
    scores[label] = score;
  }
  return scores;
}

std::string NaiveBayesClassifier::Classify(const std::string& text) const {
  auto scores = Scores(text);
  std::string best;
  double best_score = -1e300;
  for (const auto& [label, score] : scores) {
    if (score > best_score || (score == best_score && label < best)) {
      best = label;
      best_score = score;
    }
  }
  return best;
}

}  // namespace poly
