#include "engines/text/inverted_index.h"

#include <algorithm>
#include <cmath>

namespace poly {

namespace {
constexpr double kBm25K1 = 1.2;
constexpr double kBm25B = 0.75;
}  // namespace

void InvertedIndex::AddDocument(uint64_t doc_id, const std::string& text) {
  if (doc_lengths_.count(doc_id)) RemoveDocument(doc_id);
  std::vector<std::string> tokens = Tokenize(text, opts_);
  std::unordered_map<std::string, std::vector<uint32_t>> positions;
  for (uint32_t pos = 0; pos < tokens.size(); ++pos) {
    positions[tokens[pos]].push_back(pos);
  }
  for (auto& [term, where] : positions) {
    postings_[term].push_back(
        {doc_id, static_cast<uint32_t>(where.size()), std::move(where)});
  }
  doc_lengths_[doc_id] = static_cast<uint32_t>(tokens.size());
}

void InvertedIndex::RemoveDocument(uint64_t doc_id) {
  if (doc_lengths_.erase(doc_id) == 0) return;
  for (auto it = postings_.begin(); it != postings_.end();) {
    auto& list = it->second;
    list.erase(std::remove_if(list.begin(), list.end(),
                              [doc_id](const Posting& p) { return p.doc_id == doc_id; }),
               list.end());
    it = list.empty() ? postings_.erase(it) : std::next(it);
  }
}

double InvertedIndex::AvgDocLength() const {
  if (doc_lengths_.empty()) return 0;
  double sum = 0;
  for (const auto& [_, len] : doc_lengths_) sum += len;
  return sum / static_cast<double>(doc_lengths_.size());
}

std::vector<SearchHit> InvertedIndex::RankedSearch(const std::string& query,
                                                   size_t top_k, bool require_all) const {
  std::vector<std::string> terms = Tokenize(query, opts_);
  if (terms.empty() || doc_lengths_.empty()) return {};
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());

  double n_docs = static_cast<double>(doc_lengths_.size());
  double avg_len = AvgDocLength();

  std::unordered_map<uint64_t, double> scores;
  std::unordered_map<uint64_t, uint32_t> matched_terms;
  size_t usable_terms = 0;
  for (const auto& term : terms) {
    auto it = postings_.find(term);
    if (it == postings_.end()) continue;
    ++usable_terms;
    const auto& list = it->second;
    double idf =
        std::log((n_docs - list.size() + 0.5) / (list.size() + 0.5) + 1.0);
    for (const Posting& p : list) {
      double len = doc_lengths_.at(p.doc_id);
      double tf = p.term_freq;
      double bm25 = idf * (tf * (kBm25K1 + 1)) /
                    (tf + kBm25K1 * (1 - kBm25B + kBm25B * len / avg_len));
      scores[p.doc_id] += bm25;
      ++matched_terms[p.doc_id];
    }
  }

  std::vector<SearchHit> hits;
  hits.reserve(scores.size());
  for (const auto& [doc, score] : scores) {
    if (require_all && matched_terms[doc] < terms.size()) continue;
    hits.push_back({doc, score});
  }
  if (require_all && usable_terms < terms.size()) return {};
  std::sort(hits.begin(), hits.end(), [](const SearchHit& a, const SearchHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc_id < b.doc_id;
  });
  if (hits.size() > top_k) hits.resize(top_k);
  return hits;
}

std::vector<SearchHit> InvertedIndex::Search(const std::string& query,
                                             size_t top_k) const {
  return RankedSearch(query, top_k, /*require_all=*/false);
}

std::vector<SearchHit> InvertedIndex::SearchAll(const std::string& query,
                                                size_t top_k) const {
  return RankedSearch(query, top_k, /*require_all=*/true);
}

std::vector<SearchHit> InvertedIndex::SearchPhrase(const std::string& phrase,
                                                   size_t top_k) const {
  std::vector<std::string> terms = Tokenize(phrase, opts_);
  if (terms.empty()) return {};
  if (terms.size() == 1) return SearchAll(phrase, top_k);

  // Candidate docs: BM25-ranked conjunction (unlimited), then position check.
  std::vector<SearchHit> candidates = RankedSearch(phrase, ~size_t{0}, true);
  // Per-term posting lookup for position verification.
  std::vector<const std::vector<Posting>*> lists;
  for (const auto& term : terms) {
    auto it = postings_.find(term);
    if (it == postings_.end()) return {};
    lists.push_back(&it->second);
  }
  auto positions_of = [](const std::vector<Posting>& list,
                         uint64_t doc) -> const std::vector<uint32_t>* {
    for (const Posting& p : list) {
      if (p.doc_id == doc) return &p.positions;
    }
    return nullptr;
  };
  std::vector<SearchHit> hits;
  for (const SearchHit& cand : candidates) {
    const std::vector<uint32_t>* first = positions_of(*lists[0], cand.doc_id);
    if (!first) continue;
    bool match = false;
    for (uint32_t start : *first) {
      bool all = true;
      for (size_t t = 1; t < terms.size() && all; ++t) {
        const std::vector<uint32_t>* pos = positions_of(*lists[t], cand.doc_id);
        all = pos && std::binary_search(pos->begin(), pos->end(),
                                        start + static_cast<uint32_t>(t));
      }
      if (all) {
        match = true;
        break;
      }
    }
    if (match) hits.push_back(cand);
    if (hits.size() >= top_k) break;
  }
  return hits;
}

std::vector<uint64_t> InvertedIndex::PostingList(const std::string& term) const {
  std::vector<std::string> normalized = Tokenize(term, opts_);
  if (normalized.empty()) return {};
  auto it = postings_.find(normalized[0]);
  if (it == postings_.end()) return {};
  std::vector<uint64_t> docs;
  docs.reserve(it->second.size());
  for (const Posting& p : it->second) docs.push_back(p.doc_id);
  std::sort(docs.begin(), docs.end());
  return docs;
}

}  // namespace poly
