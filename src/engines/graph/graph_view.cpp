#include "engines/graph/graph_view.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>

namespace poly {

StatusOr<GraphView> GraphView::Build(const ColumnTable& edges, const ReadView& view,
                                     const std::string& src_column,
                                     const std::string& dst_column,
                                     const std::string& weight_column, bool directed) {
  POLY_ASSIGN_OR_RETURN(size_t src_col, edges.schema().IndexOf(src_column));
  POLY_ASSIGN_OR_RETURN(size_t dst_col, edges.schema().IndexOf(dst_column));
  int weight_col = -1;
  if (!weight_column.empty()) {
    POLY_ASSIGN_OR_RETURN(size_t w, edges.schema().IndexOf(weight_column));
    weight_col = static_cast<int>(w);
  }

  struct RawEdge {
    int64_t src, dst;
    double weight;
  };
  std::vector<RawEdge> raw;
  edges.ScanVisible(view, [&](uint64_t r) {
    Value s = edges.GetValue(r, src_col);
    Value d = edges.GetValue(r, dst_col);
    if (s.is_null() || d.is_null()) return;
    double w = 1.0;
    if (weight_col >= 0) {
      Value wv = edges.GetValue(r, static_cast<size_t>(weight_col));
      if (!wv.is_null()) w = wv.NumericValue();
    }
    raw.push_back({s.AsInt(), d.AsInt(), w});
    if (!directed) raw.push_back({d.AsInt(), s.AsInt(), w});
  });

  GraphView g;
  for (const RawEdge& e : raw) {
    for (int64_t id : {e.src, e.dst}) {
      if (!g.index_.count(id)) {
        g.index_.emplace(id, static_cast<int>(g.node_ids_.size()));
        g.node_ids_.push_back(id);
      }
    }
  }
  // CSR construction: count, prefix-sum, fill.
  size_t n = g.node_ids_.size();
  std::vector<size_t> counts(n, 0);
  for (const RawEdge& e : raw) ++counts[g.index_[e.src]];
  g.adj_offsets_.assign(n + 1, 0);
  for (size_t i = 0; i < n; ++i) g.adj_offsets_[i + 1] = g.adj_offsets_[i] + counts[i];
  g.adj_dst_.resize(raw.size());
  g.adj_weight_.resize(raw.size());
  std::vector<size_t> cursor(g.adj_offsets_.begin(), g.adj_offsets_.end() - 1);
  for (const RawEdge& e : raw) {
    size_t pos = cursor[g.index_[e.src]]++;
    g.adj_dst_[pos] = g.index_[e.dst];
    g.adj_weight_[pos] = e.weight;
  }
  return g;
}

int GraphView::IndexOf(int64_t node_id) const {
  auto it = index_.find(node_id);
  return it == index_.end() ? -1 : it->second;
}

std::vector<int64_t> GraphView::Neighbors(int64_t node_id) const {
  int idx = IndexOf(node_id);
  if (idx < 0) return {};
  std::vector<int64_t> out;
  for (size_t p = adj_offsets_[idx]; p < adj_offsets_[idx + 1]; ++p) {
    out.push_back(node_ids_[adj_dst_[p]]);
  }
  return out;
}

size_t GraphView::OutDegree(int64_t node_id) const {
  int idx = IndexOf(node_id);
  if (idx < 0) return 0;
  return adj_offsets_[idx + 1] - adj_offsets_[idx];
}

int64_t GraphView::BfsDistance(int64_t from, int64_t to) const {
  int s = IndexOf(from), t = IndexOf(to);
  if (s < 0 || t < 0) return -1;
  if (s == t) return 0;
  std::vector<int64_t> dist(node_ids_.size(), -1);
  dist[s] = 0;
  std::deque<int> queue = {s};
  while (!queue.empty()) {
    int u = queue.front();
    queue.pop_front();
    for (size_t p = adj_offsets_[u]; p < adj_offsets_[u + 1]; ++p) {
      int v = adj_dst_[p];
      if (dist[v] >= 0) continue;
      dist[v] = dist[u] + 1;
      if (v == t) return dist[v];
      queue.push_back(v);
    }
  }
  return -1;
}

namespace {
struct PqEntry {
  double dist;
  int node;
  bool operator>(const PqEntry& o) const { return dist > o.dist; }
};
}  // namespace

std::vector<int64_t> GraphView::ShortestPath(int64_t from, int64_t to,
                                             double* cost) const {
  if (cost) *cost = kUnreachable;
  int s = IndexOf(from), t = IndexOf(to);
  if (s < 0 || t < 0) return {};
  size_t n = node_ids_.size();
  std::vector<double> dist(n, kUnreachable);
  std::vector<int> prev(n, -1);
  std::priority_queue<PqEntry, std::vector<PqEntry>, std::greater<PqEntry>> pq;
  dist[s] = 0;
  pq.push({0, s});
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    if (u == t) break;
    for (size_t p = adj_offsets_[u]; p < adj_offsets_[u + 1]; ++p) {
      int v = adj_dst_[p];
      double nd = d + adj_weight_[p];
      if (nd < dist[v]) {
        dist[v] = nd;
        prev[v] = u;
        pq.push({nd, v});
      }
    }
  }
  if (dist[t] == kUnreachable) return {};
  if (cost) *cost = dist[t];
  std::vector<int64_t> path;
  for (int u = t; u != -1; u = prev[u]) path.push_back(node_ids_[u]);
  std::reverse(path.begin(), path.end());
  return path;
}

std::unordered_map<int64_t, double> GraphView::DistancesFrom(int64_t from) const {
  std::unordered_map<int64_t, double> out;
  int s = IndexOf(from);
  if (s < 0) return out;
  size_t n = node_ids_.size();
  std::vector<double> dist(n, kUnreachable);
  std::priority_queue<PqEntry, std::vector<PqEntry>, std::greater<PqEntry>> pq;
  dist[s] = 0;
  pq.push({0, s});
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    for (size_t p = adj_offsets_[u]; p < adj_offsets_[u + 1]; ++p) {
      int v = adj_dst_[p];
      double nd = d + adj_weight_[p];
      if (nd < dist[v]) {
        dist[v] = nd;
        pq.push({nd, v});
      }
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (dist[i] != kUnreachable) out.emplace(node_ids_[i], dist[i]);
  }
  return out;
}

std::vector<int64_t> GraphView::NodesWithinCost(int64_t from, double max_cost) const {
  std::vector<int64_t> out;
  for (const auto& [node, d] : DistancesFrom(from)) {
    if (d <= max_cost) out.push_back(node);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::unordered_map<int64_t, double> GraphView::PageRank(double damping, int iterations,
                                                        double tolerance) const {
  size_t n = node_ids_.size();
  std::unordered_map<int64_t, double> out;
  if (n == 0) return out;
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n);
  for (int it = 0; it < iterations; ++it) {
    double dangling = 0;
    for (size_t u = 0; u < n; ++u) {
      if (adj_offsets_[u + 1] == adj_offsets_[u]) dangling += rank[u];
    }
    double base = (1.0 - damping) / static_cast<double>(n) +
                  damping * dangling / static_cast<double>(n);
    std::fill(next.begin(), next.end(), base);
    for (size_t u = 0; u < n; ++u) {
      size_t degree = adj_offsets_[u + 1] - adj_offsets_[u];
      if (degree == 0) continue;
      double share = damping * rank[u] / static_cast<double>(degree);
      for (size_t p = adj_offsets_[u]; p < adj_offsets_[u + 1]; ++p) {
        next[adj_dst_[p]] += share;
      }
    }
    double delta = 0;
    for (size_t u = 0; u < n; ++u) delta += std::abs(next[u] - rank[u]);
    rank.swap(next);
    if (delta < tolerance) break;
  }
  for (size_t u = 0; u < n; ++u) out.emplace(node_ids_[u], rank[u]);
  return out;
}

std::unordered_map<int64_t, int> GraphView::ConnectedComponents() const {
  size_t n = node_ids_.size();
  // Undirected closure via reverse adjacency.
  std::vector<std::vector<int>> reverse_adj(n);
  for (size_t u = 0; u < n; ++u) {
    for (size_t p = adj_offsets_[u]; p < adj_offsets_[u + 1]; ++p) {
      reverse_adj[adj_dst_[p]].push_back(static_cast<int>(u));
    }
  }
  std::vector<int> comp(n, -1);
  int next_comp = 0;
  for (size_t start = 0; start < n; ++start) {
    if (comp[start] >= 0) continue;
    std::deque<int> queue = {static_cast<int>(start)};
    comp[start] = next_comp;
    while (!queue.empty()) {
      int u = queue.front();
      queue.pop_front();
      auto visit = [&](int v) {
        if (comp[v] < 0) {
          comp[v] = next_comp;
          queue.push_back(v);
        }
      };
      for (size_t p = adj_offsets_[u]; p < adj_offsets_[u + 1]; ++p) visit(adj_dst_[p]);
      for (int v : reverse_adj[u]) visit(v);
    }
    ++next_comp;
  }
  std::unordered_map<int64_t, int> out;
  for (size_t i = 0; i < n; ++i) out.emplace(node_ids_[i], comp[i]);
  return out;
}

}  // namespace poly
