#include "engines/graph/hierarchy.h"

#include <algorithm>

namespace poly {

StatusOr<HierarchyView> HierarchyView::Build(const ColumnTable& table,
                                             const ReadView& view,
                                             const std::string& id_column,
                                             const std::string& parent_column) {
  POLY_ASSIGN_OR_RETURN(size_t id_col, table.schema().IndexOf(id_column));
  POLY_ASSIGN_OR_RETURN(size_t parent_col, table.schema().IndexOf(parent_column));

  HierarchyView h;
  std::vector<int64_t> parents_raw;
  Status status = Status::OK();
  table.ScanVisible(view, [&](uint64_t r) {
    if (!status.ok()) return;
    Value idv = table.GetValue(r, id_col);
    if (idv.is_null()) return;
    int64_t id = idv.AsInt();
    if (h.index_.count(id)) {
      status = Status::InvalidArgument("duplicate hierarchy id " + std::to_string(id));
      return;
    }
    h.index_.emplace(id, static_cast<int>(h.ids_.size()));
    h.ids_.push_back(id);
    Value pv = table.GetValue(r, parent_col);
    parents_raw.push_back(pv.is_null() ? id : pv.AsInt());  // self/null = root
  });
  POLY_RETURN_IF_ERROR(status);

  size_t n = h.ids_.size();
  h.nodes_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    int64_t parent_id = parents_raw[i];
    if (parent_id == h.ids_[i] || !h.index_.count(parent_id)) {
      h.nodes_[i].parent = -1;
      h.roots_.push_back(h.ids_[i]);
    } else {
      int p = h.index_[parent_id];
      h.nodes_[i].parent = p;
      h.nodes_[p].children.push_back(static_cast<int>(i));
    }
  }

  // Iterative DFS assigning (pre, post) labels and depth.
  int64_t clock = 0;
  std::vector<int> visited(n, 0);
  h.preorder_.resize(n, -1);
  for (int64_t root_id : h.roots_) {
    int root = h.index_[root_id];
    std::vector<std::pair<int, size_t>> stack = {{root, 0}};
    h.nodes_[root].pre = clock;
    h.preorder_[clock++] = root;
    visited[root] = 1;
    h.nodes_[root].depth = 0;
    while (!stack.empty()) {
      auto& [u, child_pos] = stack.back();
      if (child_pos < h.nodes_[u].children.size()) {
        int v = h.nodes_[u].children[child_pos++];
        if (visited[v]) return Status::Corruption("cycle in hierarchy");
        visited[v] = 1;
        h.nodes_[v].pre = clock;
        h.preorder_[clock++] = v;
        h.nodes_[v].depth = h.nodes_[u].depth + 1;
        stack.push_back({v, 0});
      } else {
        h.nodes_[u].post = clock;
        h.nodes_[u].subtree_size = h.nodes_[u].post - h.nodes_[u].pre - 1;
        stack.pop_back();
      }
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (!visited[i]) return Status::Corruption("cycle in hierarchy (unreachable nodes)");
  }
  return h;
}

bool HierarchyView::IsDescendant(int64_t descendant, int64_t ancestor) const {
  auto d = index_.find(descendant);
  auto a = index_.find(ancestor);
  if (d == index_.end() || a == index_.end() || descendant == ancestor) return false;
  const Node& dn = nodes_[d->second];
  const Node& an = nodes_[a->second];
  return dn.pre > an.pre && dn.post <= an.post;
}

StatusOr<int64_t> HierarchyView::CountDescendants(int64_t id) const {
  auto it = index_.find(id);
  if (it == index_.end()) return Status::NotFound("no node " + std::to_string(id));
  return nodes_[it->second].subtree_size;
}

std::vector<int64_t> HierarchyView::Children(int64_t id) const {
  auto it = index_.find(id);
  if (it == index_.end()) return {};
  std::vector<int64_t> out;
  for (int c : nodes_[it->second].children) out.push_back(ids_[c]);
  return out;
}

std::vector<int64_t> HierarchyView::Siblings(int64_t id) const {
  auto it = index_.find(id);
  if (it == index_.end()) return {};
  int parent = nodes_[it->second].parent;
  std::vector<int64_t> out;
  if (parent < 0) {
    for (int64_t r : roots_) {
      if (r != id) out.push_back(r);
    }
    return out;
  }
  for (int c : nodes_[parent].children) {
    if (ids_[c] != id) out.push_back(ids_[c]);
  }
  return out;
}

StatusOr<int64_t> HierarchyView::Depth(int64_t id) const {
  auto it = index_.find(id);
  if (it == index_.end()) return Status::NotFound("no node " + std::to_string(id));
  return nodes_[it->second].depth;
}

std::vector<int64_t> HierarchyView::PathToRoot(int64_t id) const {
  auto it = index_.find(id);
  if (it == index_.end()) return {};
  std::vector<int64_t> path;
  for (int u = it->second; u >= 0; u = nodes_[u].parent) path.push_back(ids_[u]);
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<int64_t> HierarchyView::Descendants(int64_t id) const {
  auto it = index_.find(id);
  if (it == index_.end()) return {};
  const Node& n = nodes_[it->second];
  std::vector<int64_t> out;
  out.reserve(n.subtree_size);
  // Descendants occupy the contiguous preorder range (pre, post).
  for (int64_t p = n.pre + 1; p < n.post; ++p) out.push_back(ids_[preorder_[p]]);
  return out;
}

StatusOr<std::pair<int64_t, int64_t>> HierarchyView::Interval(int64_t id) const {
  auto it = index_.find(id);
  if (it == index_.end()) return Status::NotFound("no node " + std::to_string(id));
  return std::make_pair(nodes_[it->second].pre, nodes_[it->second].post);
}

Status VersionedHierarchy::Snapshot(int64_t version, const ColumnTable& table,
                                    const ReadView& view, const std::string& id_column,
                                    const std::string& parent_column) {
  POLY_ASSIGN_OR_RETURN(HierarchyView h,
                        HierarchyView::Build(table, view, id_column, parent_column));
  versions_.insert_or_assign(version, std::move(h));
  return Status::OK();
}

StatusOr<const HierarchyView*> VersionedHierarchy::Version(int64_t version) const {
  auto it = versions_.find(version);
  if (it == versions_.end()) {
    return Status::NotFound("no hierarchy version " + std::to_string(version));
  }
  return &it->second;
}

std::vector<int64_t> VersionedHierarchy::Versions() const {
  std::vector<int64_t> out;
  for (const auto& [v, _] : versions_) out.push_back(v);
  std::sort(out.begin(), out.end());
  return out;
}

StatusOr<std::vector<int64_t>> VersionedHierarchy::ChangedNodes(
    int64_t from_version, int64_t to_version) const {
  POLY_ASSIGN_OR_RETURN(const HierarchyView* from, Version(from_version));
  POLY_ASSIGN_OR_RETURN(const HierarchyView* to, Version(to_version));
  std::vector<int64_t> changed;
  // A node changed if its path-to-root parent differs or it appears/vanishes.
  auto parent_of = [](const HierarchyView& h, int64_t id) -> int64_t {
    auto path = h.PathToRoot(id);
    return path.size() >= 2 ? path[path.size() - 2] : -1;
  };
  // Union of ids via both views' descendants-of-roots plus roots.
  std::vector<int64_t> all;
  for (const HierarchyView* h : {from, to}) {
    for (int64_t r : h->Roots()) {
      all.push_back(r);
      auto d = h->Descendants(r);
      all.insert(all.end(), d.begin(), d.end());
    }
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  for (int64_t id : all) {
    bool in_from = from->Contains(id);
    bool in_to = to->Contains(id);
    if (in_from != in_to || parent_of(*from, id) != parent_of(*to, id)) {
      changed.push_back(id);
    }
  }
  return changed;
}

}  // namespace poly
