#ifndef POLY_ENGINES_GRAPH_GRAPH_VIEW_H_
#define POLY_ENGINES_GRAPH_GRAPH_VIEW_H_

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/column_table.h"

namespace poly {

constexpr double kUnreachable = std::numeric_limits<double>::infinity();

/// Graph engine (§II-E): "interpret data in columns (structured relational
/// data) as graph or hierarchy structures by defining [...] graph views on
/// top of the relational data". A GraphView is a CSR adjacency snapshot
/// built from an edge table's (src, dst[, weight]) columns under a read
/// view; node IDs are the distinct int64 endpoint values.
class GraphView {
 public:
  /// Builds from edge table columns. `weight_column` empty = unit weights.
  /// `directed` false mirrors every edge.
  static StatusOr<GraphView> Build(const ColumnTable& edges, const ReadView& view,
                                   const std::string& src_column,
                                   const std::string& dst_column,
                                   const std::string& weight_column = "",
                                   bool directed = true);

  size_t num_nodes() const { return node_ids_.size(); }
  size_t num_edges() const { return adj_dst_.size(); }

  /// External int64 id of internal node index.
  int64_t NodeId(size_t idx) const { return node_ids_[idx]; }
  /// Internal index for an external id, or -1.
  int IndexOf(int64_t node_id) const;

  /// Out-neighbors (external IDs) of a node.
  std::vector<int64_t> Neighbors(int64_t node_id) const;
  size_t OutDegree(int64_t node_id) const;

  /// Unweighted hop distance (§II-E "distance"); -1 if unreachable.
  int64_t BfsDistance(int64_t from, int64_t to) const;

  /// Dijkstra shortest path (§II-E "shortest path"). Returns the node
  /// sequence from->to and writes the cost; empty if unreachable.
  std::vector<int64_t> ShortestPath(int64_t from, int64_t to, double* cost) const;

  /// Single-source Dijkstra distances to every node (external-id keyed).
  std::unordered_map<int64_t, double> DistancesFrom(int64_t from) const;

  /// Nodes within `max_cost` of `from` (used by the evacuation scenario).
  std::vector<int64_t> NodesWithinCost(int64_t from, double max_cost) const;

  /// Connected components on the undirected closure; returns component id
  /// per node keyed by external id.
  std::unordered_map<int64_t, int> ConnectedComponents() const;

  /// PageRank with damping factor `damping` (§II-E "state of the art graph
  /// processing functionality"). Dangling mass is redistributed uniformly.
  /// Returns external-id -> score, summing to ~1.
  std::unordered_map<int64_t, double> PageRank(double damping = 0.85,
                                               int iterations = 50,
                                               double tolerance = 1e-10) const;

 private:
  GraphView() = default;

  std::vector<int64_t> node_ids_;             // index -> external id
  std::unordered_map<int64_t, int> index_;    // external id -> index
  std::vector<size_t> adj_offsets_;           // CSR offsets, size nodes+1
  std::vector<int> adj_dst_;                  // CSR targets (internal)
  std::vector<double> adj_weight_;
};

}  // namespace poly

#endif  // POLY_ENGINES_GRAPH_GRAPH_VIEW_H_
