#ifndef POLY_ENGINES_GRAPH_HIERARCHY_H_
#define POLY_ENGINES_GRAPH_HIERARCHY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/column_table.h"

namespace poly {

/// Hierarchy engine (§II-E, [5]): hierarchies are "used in almost all kinds
/// of business applications" and need core database support. A
/// HierarchyView labels each node with a DFS (pre, post) interval, making
/// the queries the paper calls out O(1)/O(k) instead of recursive
/// application-side resolution (§III's count-transitive-children example):
///   IsDescendant(a, b)      : interval containment, O(1)
///   CountDescendants(a)     : subtree size, O(1)
///   Siblings / Depth / Path : direct lookups
class HierarchyView {
 public:
  /// Builds from (id, parent) columns; parent NULL or self marks roots.
  /// Fails with Corruption on cycles and InvalidArgument on duplicate ids.
  static StatusOr<HierarchyView> Build(const ColumnTable& table, const ReadView& view,
                                       const std::string& id_column,
                                       const std::string& parent_column);

  size_t num_nodes() const { return ids_.size(); }
  bool Contains(int64_t id) const { return index_.count(id) > 0; }

  /// O(1) interval-containment test (strict: a node is not its own
  /// descendant).
  bool IsDescendant(int64_t descendant, int64_t ancestor) const;
  /// O(1): transitive child count of `id`.
  StatusOr<int64_t> CountDescendants(int64_t id) const;
  /// Direct children in DFS order.
  std::vector<int64_t> Children(int64_t id) const;
  /// Nodes sharing the parent of `id` (excluding `id` itself).
  std::vector<int64_t> Siblings(int64_t id) const;
  /// Root depth 0.
  StatusOr<int64_t> Depth(int64_t id) const;
  /// Path from root down to `id` (inclusive).
  std::vector<int64_t> PathToRoot(int64_t id) const;
  /// All descendants of `id` — one contiguous label-range scan.
  std::vector<int64_t> Descendants(int64_t id) const;
  std::vector<int64_t> Roots() const { return roots_; }

  /// Raw labels, exposed so tests can check the labeling invariants.
  StatusOr<std::pair<int64_t, int64_t>> Interval(int64_t id) const;

 private:
  HierarchyView() = default;

  struct Node {
    int64_t parent = -1;      // index, -1 for roots
    int64_t pre = 0, post = 0;
    int64_t depth = 0;
    int64_t subtree_size = 0;  // nodes strictly below
    std::vector<int> children;
  };

  std::vector<int64_t> ids_;
  std::unordered_map<int64_t, int> index_;
  std::vector<Node> nodes_;
  std::vector<int64_t> roots_;
  std::vector<int> preorder_;  // pre label -> node index
};

/// Versioned hierarchies (§II-E: "special support for time dependent and
/// versioned hierarchies"): a store of labeled snapshots keyed by version
/// id, built lazily from the same relational table at different points.
class VersionedHierarchy {
 public:
  /// Labels the current visible state of the table as `version`.
  Status Snapshot(int64_t version, const ColumnTable& table, const ReadView& view,
                  const std::string& id_column, const std::string& parent_column);

  StatusOr<const HierarchyView*> Version(int64_t version) const;
  std::vector<int64_t> Versions() const;

  /// Nodes whose parent differs between two versions (id-level diff).
  StatusOr<std::vector<int64_t>> ChangedNodes(int64_t from_version,
                                              int64_t to_version) const;

 private:
  std::unordered_map<int64_t, HierarchyView> versions_;
};

}  // namespace poly

#endif  // POLY_ENGINES_GRAPH_HIERARCHY_H_
