#ifndef POLY_ENGINES_GEO_GEO_H_
#define POLY_ENGINES_GEO_GEO_H_

#include <vector>

#include "types/value.h"

namespace poly {

/// Geospatial primitives (§II-F): the engine-native point/polygon types
/// behind the SQL surface operators WithinDistance / Contains / Area.
/// Coordinates are (lon, lat) in degrees; distances in meters on a
/// spherical Earth.

constexpr double kEarthRadiusMeters = 6371000.0;

/// Great-circle distance between two points.
double HaversineMeters(const GeoPointValue& a, const GeoPointValue& b);

/// Axis-aligned lon/lat bounding box.
struct GeoBBox {
  double min_lon = 0, min_lat = 0, max_lon = 0, max_lat = 0;
  bool Contains(const GeoPointValue& p) const {
    return p.lon >= min_lon && p.lon <= max_lon && p.lat >= min_lat && p.lat <= max_lat;
  }
};

/// Bounding box that conservatively covers a radius around a center
/// (clamped near the poles).
GeoBBox BBoxAround(const GeoPointValue& center, double radius_meters);

/// Simple polygon (no self-intersection checks; last-first edge implicit).
class GeoPolygon {
 public:
  explicit GeoPolygon(std::vector<GeoPointValue> vertices)
      : vertices_(std::move(vertices)) {}

  /// Point-in-polygon via ray casting (lon/lat treated planar — correct for
  /// the region-sized polygons of the §V scenarios).
  bool Contains(const GeoPointValue& p) const;

  /// Area in square meters: planar shoelace with cos(lat) longitude
  /// scaling — the SQL Area() operator.
  double AreaSquareMeters() const;

  GeoBBox BoundingBox() const;
  const std::vector<GeoPointValue>& vertices() const { return vertices_; }

 private:
  std::vector<GeoPointValue> vertices_;
};

}  // namespace poly

#endif  // POLY_ENGINES_GEO_GEO_H_
