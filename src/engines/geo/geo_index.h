#ifndef POLY_ENGINES_GEO_GEO_INDEX_H_
#define POLY_ENGINES_GEO_GEO_INDEX_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "engines/geo/geo.h"
#include "storage/column_table.h"

namespace poly {

/// Uniform lon/lat grid index over a geo-point column. Answers the paper's
/// §II-F query operators over table rows:
///   WithinDistance(center, radius) — grid cells pre-filter, haversine
///   refines (E6 measures this against the full-scan baseline).
///   ContainedIn(polygon)           — bbox cells pre-filter, ray casting
///   refines.
class GeoIndex {
 public:
  /// `cell_degrees`: grid resolution (0.1° ≈ 11 km at the equator).
  static StatusOr<GeoIndex> Build(const ColumnTable& table, const ReadView& view,
                                  const std::string& geo_column,
                                  double cell_degrees = 0.1);

  /// Row IDs within `radius_meters` of `center`, sorted.
  std::vector<uint64_t> WithinDistance(const GeoPointValue& center,
                                       double radius_meters) const;

  /// Row IDs inside `polygon`, sorted.
  std::vector<uint64_t> ContainedIn(const GeoPolygon& polygon) const;

  /// Row IDs with point inside bbox, sorted (no refinement needed).
  std::vector<uint64_t> WithinBBox(const GeoBBox& box) const;

  /// Nearest row to `center` by great-circle distance (expanding ring
  /// search); NotFound on an empty index.
  StatusOr<uint64_t> Nearest(const GeoPointValue& center) const;

  /// The k nearest rows to `center`, closest first (expanding ring search
  /// with exact haversine refinement). Returns fewer than k on a small
  /// index.
  std::vector<uint64_t> KNearest(const GeoPointValue& center, size_t k) const;

  size_t num_points() const { return points_.size(); }

  /// Candidate count of the last WithinDistance call — lets E6 report the
  /// filter/refine ratio. (Mutable statistic, not thread-safe.)
  uint64_t last_candidates() const { return last_candidates_; }

 private:
  GeoIndex() = default;

  int64_t CellKey(double lon, double lat) const;
  void CellRange(const GeoBBox& box, std::vector<int64_t>* keys) const;

  double cell_degrees_ = 0.1;
  struct IndexedPoint {
    uint64_t row;
    GeoPointValue point;
  };
  std::vector<IndexedPoint> points_;
  std::unordered_map<int64_t, std::vector<uint32_t>> cells_;  // key -> points_ idx
  mutable uint64_t last_candidates_ = 0;
};

}  // namespace poly

#endif  // POLY_ENGINES_GEO_GEO_INDEX_H_
