#include "engines/geo/geo.h"

#include <algorithm>
#include <cmath>

namespace poly {

namespace {
constexpr double kDegToRad = M_PI / 180.0;
}

double HaversineMeters(const GeoPointValue& a, const GeoPointValue& b) {
  double lat1 = a.lat * kDegToRad, lat2 = b.lat * kDegToRad;
  double dlat = (b.lat - a.lat) * kDegToRad;
  double dlon = (b.lon - a.lon) * kDegToRad;
  double h = std::sin(dlat / 2) * std::sin(dlat / 2) +
             std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) * std::sin(dlon / 2);
  return 2 * kEarthRadiusMeters * std::asin(std::min(1.0, std::sqrt(h)));
}

GeoBBox BBoxAround(const GeoPointValue& center, double radius_meters) {
  double dlat = radius_meters / kEarthRadiusMeters / kDegToRad;
  double cos_lat = std::cos(center.lat * kDegToRad);
  double dlon = cos_lat > 1e-9 ? dlat / cos_lat : 180.0;
  GeoBBox box;
  box.min_lat = std::max(-90.0, center.lat - dlat);
  box.max_lat = std::min(90.0, center.lat + dlat);
  box.min_lon = std::max(-180.0, center.lon - dlon);
  box.max_lon = std::min(180.0, center.lon + dlon);
  return box;
}

bool GeoPolygon::Contains(const GeoPointValue& p) const {
  bool inside = false;
  size_t n = vertices_.size();
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    const GeoPointValue& a = vertices_[i];
    const GeoPointValue& b = vertices_[j];
    bool crosses = (a.lat > p.lat) != (b.lat > p.lat);
    if (crosses) {
      double x = (b.lon - a.lon) * (p.lat - a.lat) / (b.lat - a.lat) + a.lon;
      if (p.lon < x) inside = !inside;
    }
  }
  return inside;
}

double GeoPolygon::AreaSquareMeters() const {
  if (vertices_.size() < 3) return 0;
  // Mean-latitude cosine scaling, then shoelace in meters.
  double mean_lat = 0;
  for (const auto& v : vertices_) mean_lat += v.lat;
  mean_lat /= static_cast<double>(vertices_.size());
  double meters_per_deg_lat = kEarthRadiusMeters * kDegToRad;
  double meters_per_deg_lon = meters_per_deg_lat * std::cos(mean_lat * kDegToRad);
  double area2 = 0;
  size_t n = vertices_.size();
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    double xi = vertices_[i].lon * meters_per_deg_lon;
    double yi = vertices_[i].lat * meters_per_deg_lat;
    double xj = vertices_[j].lon * meters_per_deg_lon;
    double yj = vertices_[j].lat * meters_per_deg_lat;
    area2 += xj * yi - xi * yj;
  }
  return std::abs(area2) / 2;
}

GeoBBox GeoPolygon::BoundingBox() const {
  GeoBBox box{180, 90, -180, -90};
  for (const auto& v : vertices_) {
    box.min_lon = std::min(box.min_lon, v.lon);
    box.max_lon = std::max(box.max_lon, v.lon);
    box.min_lat = std::min(box.min_lat, v.lat);
    box.max_lat = std::max(box.max_lat, v.lat);
  }
  return box;
}

}  // namespace poly
