#include "engines/geo/geo_index.h"

#include <algorithm>
#include <cmath>

namespace poly {

StatusOr<GeoIndex> GeoIndex::Build(const ColumnTable& table, const ReadView& view,
                                   const std::string& geo_column, double cell_degrees) {
  POLY_ASSIGN_OR_RETURN(size_t col, table.schema().IndexOf(geo_column));
  if (table.schema().column(col).type != DataType::kGeoPoint) {
    return Status::InvalidArgument("column " + geo_column + " is not GEO_POINT");
  }
  if (cell_degrees <= 0) return Status::InvalidArgument("cell size must be positive");
  GeoIndex idx;
  idx.cell_degrees_ = cell_degrees;
  table.ScanVisible(view, [&](uint64_t r) {
    Value v = table.GetValue(r, col);
    if (v.is_null()) return;
    const GeoPointValue& p = v.AsGeoPoint();
    uint32_t slot = static_cast<uint32_t>(idx.points_.size());
    idx.points_.push_back({r, p});
    idx.cells_[idx.CellKey(p.lon, p.lat)].push_back(slot);
  });
  return idx;
}

int64_t GeoIndex::CellKey(double lon, double lat) const {
  int64_t x = static_cast<int64_t>(std::floor((lon + 180.0) / cell_degrees_));
  int64_t y = static_cast<int64_t>(std::floor((lat + 90.0) / cell_degrees_));
  return x * 1000000 + y;
}

void GeoIndex::CellRange(const GeoBBox& box, std::vector<int64_t>* keys) const {
  int64_t x0 = static_cast<int64_t>(std::floor((box.min_lon + 180.0) / cell_degrees_));
  int64_t x1 = static_cast<int64_t>(std::floor((box.max_lon + 180.0) / cell_degrees_));
  int64_t y0 = static_cast<int64_t>(std::floor((box.min_lat + 90.0) / cell_degrees_));
  int64_t y1 = static_cast<int64_t>(std::floor((box.max_lat + 90.0) / cell_degrees_));
  for (int64_t x = x0; x <= x1; ++x) {
    for (int64_t y = y0; y <= y1; ++y) keys->push_back(x * 1000000 + y);
  }
}

std::vector<uint64_t> GeoIndex::WithinDistance(const GeoPointValue& center,
                                               double radius_meters) const {
  std::vector<int64_t> keys;
  CellRange(BBoxAround(center, radius_meters), &keys);
  std::vector<uint64_t> out;
  last_candidates_ = 0;
  for (int64_t key : keys) {
    auto it = cells_.find(key);
    if (it == cells_.end()) continue;
    for (uint32_t slot : it->second) {
      ++last_candidates_;
      if (HaversineMeters(points_[slot].point, center) <= radius_meters) {
        out.push_back(points_[slot].row);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<uint64_t> GeoIndex::ContainedIn(const GeoPolygon& polygon) const {
  std::vector<int64_t> keys;
  CellRange(polygon.BoundingBox(), &keys);
  std::vector<uint64_t> out;
  for (int64_t key : keys) {
    auto it = cells_.find(key);
    if (it == cells_.end()) continue;
    for (uint32_t slot : it->second) {
      if (polygon.Contains(points_[slot].point)) out.push_back(points_[slot].row);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<uint64_t> GeoIndex::WithinBBox(const GeoBBox& box) const {
  std::vector<int64_t> keys;
  CellRange(box, &keys);
  std::vector<uint64_t> out;
  for (int64_t key : keys) {
    auto it = cells_.find(key);
    if (it == cells_.end()) continue;
    for (uint32_t slot : it->second) {
      if (box.Contains(points_[slot].point)) out.push_back(points_[slot].row);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<uint64_t> GeoIndex::KNearest(const GeoPointValue& center, size_t k) const {
  if (points_.empty() || k == 0) return {};
  // Grow the search radius until >= k candidates, then rank exactly.
  double radius = cell_degrees_ * kEarthRadiusMeters * M_PI / 180.0;
  std::vector<uint64_t> hits;
  for (int iter = 0; iter < 24 && hits.size() < k; ++iter) {
    hits = WithinDistance(center, radius);
    radius *= 2;
  }
  if (hits.size() < k) {
    hits.clear();
    for (const auto& ip : points_) hits.push_back(ip.row);
  }
  std::vector<std::pair<double, uint64_t>> ranked;
  ranked.reserve(hits.size());
  for (const auto& ip : points_) {
    if (std::binary_search(hits.begin(), hits.end(), ip.row)) {
      ranked.emplace_back(HaversineMeters(ip.point, center), ip.row);
    }
  }
  std::sort(ranked.begin(), ranked.end());
  std::vector<uint64_t> out;
  for (size_t i = 0; i < ranked.size() && i < k; ++i) out.push_back(ranked[i].second);
  return out;
}

StatusOr<uint64_t> GeoIndex::Nearest(const GeoPointValue& center) const {
  if (points_.empty()) return Status::NotFound("empty geo index");
  // Expanding ring search: double the radius until a hit, then refine.
  double radius = cell_degrees_ * kEarthRadiusMeters * M_PI / 180.0;
  for (int iter = 0; iter < 20; ++iter) {
    std::vector<uint64_t> hits = WithinDistance(center, radius);
    if (!hits.empty()) {
      uint64_t best_row = hits[0];
      double best = 1e18;
      for (const auto& ip : points_) {
        double d = HaversineMeters(ip.point, center);
        if (d < best && std::find(hits.begin(), hits.end(), ip.row) != hits.end()) {
          best = d;
          best_row = ip.row;
        }
      }
      return best_row;
    }
    radius *= 2;
  }
  // Degenerate fallback: brute force.
  uint64_t best_row = points_[0].row;
  double best = 1e18;
  for (const auto& ip : points_) {
    double d = HaversineMeters(ip.point, center);
    if (d < best) {
      best = d;
      best_row = ip.row;
    }
  }
  return best_row;
}

}  // namespace poly
