#ifndef POLY_ENGINES_TIMESERIES_SERIES_H_
#define POLY_ENGINES_TIMESERIES_SERIES_H_

#include <cstdint>
#include <vector>

namespace poly {

/// A plain in-memory time series: parallel timestamp/value arrays, sorted
/// by timestamp. Timestamps are microseconds (matching DataType::kTimestamp).
struct TimeSeries {
  std::vector<int64_t> timestamps;
  std::vector<double> values;

  size_t size() const { return timestamps.size(); }
  bool empty() const { return timestamps.empty(); }

  void Append(int64_t ts, double value) {
    timestamps.push_back(ts);
    values.push_back(value);
  }
};

}  // namespace poly

#endif  // POLY_ENGINES_TIMESERIES_SERIES_H_
