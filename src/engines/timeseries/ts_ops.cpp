#include "engines/timeseries/ts_ops.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace poly {

TimeSeries Resample(const TimeSeries& ts, int64_t bucket_micros, ResampleAgg agg) {
  TimeSeries out;
  if (ts.empty() || bucket_micros <= 0) return out;
  size_t i = 0;
  while (i < ts.size()) {
    int64_t bucket = ts.timestamps[i] / bucket_micros * bucket_micros;
    double acc = 0, mn = ts.values[i], mx = ts.values[i], last = 0;
    size_t count = 0;
    while (i < ts.size() && ts.timestamps[i] / bucket_micros * bucket_micros == bucket) {
      double v = ts.values[i];
      acc += v;
      mn = std::min(mn, v);
      mx = std::max(mx, v);
      last = v;
      ++count;
      ++i;
    }
    double result = 0;
    switch (agg) {
      case ResampleAgg::kMean: result = acc / static_cast<double>(count); break;
      case ResampleAgg::kSum: result = acc; break;
      case ResampleAgg::kMin: result = mn; break;
      case ResampleAgg::kMax: result = mx; break;
      case ResampleAgg::kLast: result = last; break;
      case ResampleAgg::kCount: result = static_cast<double>(count); break;
    }
    out.Append(bucket, result);
  }
  return out;
}

double Correlation(const TimeSeries& a, const TimeSeries& b, int64_t bucket_micros) {
  TimeSeries ra = Resample(a, bucket_micros, ResampleAgg::kMean);
  TimeSeries rb = Resample(b, bucket_micros, ResampleAgg::kMean);
  // Merge-join on bucket timestamps.
  std::vector<std::pair<double, double>> pairs;
  size_t i = 0, j = 0;
  while (i < ra.size() && j < rb.size()) {
    if (ra.timestamps[i] < rb.timestamps[j]) {
      ++i;
    } else if (ra.timestamps[i] > rb.timestamps[j]) {
      ++j;
    } else {
      pairs.emplace_back(ra.values[i], rb.values[j]);
      ++i;
      ++j;
    }
  }
  if (pairs.size() < 2) return 0;
  double n = static_cast<double>(pairs.size());
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  for (auto [x, y] : pairs) {
    sx += x;
    sy += y;
    sxx += x * x;
    syy += y * y;
    sxy += x * y;
  }
  double cov = sxy - sx * sy / n;
  double vx = sxx - sx * sx / n;
  double vy = syy - sy * sy / n;
  if (vx <= 0 || vy <= 0) return 0;
  return cov / std::sqrt(vx * vy);
}

TimeSeries MovingAverage(const TimeSeries& ts, size_t window) {
  TimeSeries out;
  if (window == 0 || ts.size() < window) return out;
  double acc = 0;
  for (size_t i = 0; i < ts.size(); ++i) {
    acc += ts.values[i];
    if (i >= window) acc -= ts.values[i - window];
    if (i + 1 >= window) {
      out.Append(ts.timestamps[i], acc / static_cast<double>(window));
    }
  }
  return out;
}

TimeSeries Difference(const TimeSeries& ts) {
  TimeSeries out;
  for (size_t i = 1; i < ts.size(); ++i) {
    out.Append(ts.timestamps[i], ts.values[i] - ts.values[i - 1]);
  }
  return out;
}

TimeSeries Normalize(const TimeSeries& ts) {
  TimeSeries out = ts;
  if (ts.empty()) return out;
  double mn = *std::min_element(ts.values.begin(), ts.values.end());
  double mx = *std::max_element(ts.values.begin(), ts.values.end());
  double range = mx - mn;
  for (double& v : out.values) v = range > 0 ? (v - mn) / range : 0.0;
  return out;
}

TimeSeries Slice(const TimeSeries& ts, int64_t from, int64_t to) {
  TimeSeries out;
  for (size_t i = 0; i < ts.size(); ++i) {
    if (ts.timestamps[i] >= from && ts.timestamps[i] < to) {
      out.Append(ts.timestamps[i], ts.values[i]);
    }
  }
  return out;
}

std::vector<size_t> DetectAnomalies(const TimeSeries& ts, size_t window,
                                    double z_threshold) {
  std::vector<size_t> out;
  if (window < 2 || ts.size() <= window) return out;
  double sum = 0, sum_sq = 0;
  for (size_t i = 0; i < window; ++i) {
    sum += ts.values[i];
    sum_sq += ts.values[i] * ts.values[i];
  }
  for (size_t i = window; i < ts.size(); ++i) {
    double n = static_cast<double>(window);
    double mean = sum / n;
    double var = std::max(0.0, sum_sq / n - mean * mean);
    double stddev = std::sqrt(var);
    double v = ts.values[i];
    if (stddev > 1e-12) {
      if (std::abs(v - mean) > z_threshold * stddev) out.push_back(i);
    } else if (std::abs(v - mean) > 1e-9) {
      out.push_back(i);  // any move off a perfectly flat window is anomalous
    }
    // Slide the window.
    double leaving = ts.values[i - window];
    sum += v - leaving;
    sum_sq += v * v - leaving * leaving;
  }
  return out;
}

SeriesStats ComputeStats(const TimeSeries& ts) {
  SeriesStats s;
  if (ts.empty()) return s;
  s.count = ts.size();
  s.min = s.max = ts.values[0];
  double sum = 0;
  for (double v : ts.values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(s.count);
  double var = 0;
  for (double v : ts.values) var += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(s.count));
  return s;
}

StatusOr<TimeSeries> SeriesFromTable(const ColumnTable& table, const ReadView& view,
                                     const std::string& ts_column,
                                     const std::string& value_column,
                                     const std::string& key_column, int64_t key) {
  POLY_ASSIGN_OR_RETURN(size_t ts_col, table.schema().IndexOf(ts_column));
  POLY_ASSIGN_OR_RETURN(size_t val_col, table.schema().IndexOf(value_column));
  int key_col = -1;
  if (!key_column.empty()) {
    POLY_ASSIGN_OR_RETURN(size_t k, table.schema().IndexOf(key_column));
    key_col = static_cast<int>(k);
  }
  std::vector<std::pair<int64_t, double>> points;
  table.ScanVisible(view, [&](uint64_t r) {
    if (key_col >= 0) {
      Value kv = table.GetValue(r, static_cast<size_t>(key_col));
      if (kv.is_null() || kv.AsInt() != key) return;
    }
    Value tv = table.GetValue(r, ts_col);
    Value vv = table.GetValue(r, val_col);
    if (tv.is_null() || vv.is_null()) return;
    int64_t t = tv.type() == DataType::kTimestamp ? tv.AsTimestamp() : tv.AsInt();
    points.emplace_back(t, vv.NumericValue());
  });
  std::sort(points.begin(), points.end());
  TimeSeries out;
  for (auto [t, v] : points) out.Append(t, v);
  return out;
}

}  // namespace poly
