#ifndef POLY_ENGINES_TIMESERIES_TS_CODEC_H_
#define POLY_ENGINES_TIMESERIES_TS_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "engines/timeseries/series.h"

namespace poly {

/// Bit-granular writer used by the time-series codec.
class BitWriter {
 public:
  void WriteBit(bool bit);
  void WriteBits(uint64_t value, int bits);  ///< most-significant bit first
  const std::string& data() const { return buf_; }
  size_t bit_count() const { return bit_count_; }

 private:
  std::string buf_;
  size_t bit_count_ = 0;
};

class BitReader {
 public:
  explicit BitReader(const std::string& data) : data_(data) {}
  StatusOr<bool> ReadBit();
  StatusOr<uint64_t> ReadBits(int bits);

 private:
  const std::string& data_;
  size_t pos_ = 0;
};

/// Gorilla-style time-series compression (§II-F: "powerful compression
/// mechanisms, which is especially useful for sensor data"):
///  * timestamps: delta-of-delta with variable-length buckets
///  * values: XOR with previous, leading/trailing-zero windows
/// E7 measures the resulting compression factor on sensor-like streams.
class CompressedSeries {
 public:
  void Append(int64_t timestamp, double value);

  /// Decodes the full series.
  StatusOr<TimeSeries> Decompress() const;

  size_t num_points() const { return count_; }
  /// Compressed payload size.
  size_t SizeBytes() const { return bits_.data().size(); }
  /// Uncompressed equivalent (16 bytes per point).
  size_t RawBytes() const { return count_ * 16; }
  double CompressionRatio() const {
    return SizeBytes() == 0 ? 0 : static_cast<double>(RawBytes()) / SizeBytes();
  }

  /// Convenience: compress a whole series.
  static CompressedSeries FromSeries(const TimeSeries& ts);

 private:
  BitWriter bits_;
  size_t count_ = 0;
  int64_t first_ts_ = 0;
  int64_t prev_ts_ = 0;
  int64_t prev_delta_ = 0;
  uint64_t prev_value_bits_ = 0;
  int prev_leading_ = -1;
  int prev_trailing_ = -1;
};

}  // namespace poly

#endif  // POLY_ENGINES_TIMESERIES_TS_CODEC_H_
