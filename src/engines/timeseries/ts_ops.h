#ifndef POLY_ENGINES_TIMESERIES_TS_OPS_H_
#define POLY_ENGINES_TIMESERIES_TS_OPS_H_

#include <string>

#include "common/status.h"
#include "engines/timeseries/series.h"
#include "storage/column_table.h"

namespace poly {

/// Aggregation used when resampling buckets.
enum class ResampleAgg { kMean, kSum, kMin, kMax, kLast, kCount };

/// Time-series operators (§II-F: "resolution adoption, comparison
/// functions, correlation, transformations, and others").

/// Re-buckets a series to `bucket_micros` resolution ("resolution
/// adoption"). Bucket timestamps are aligned down; empty buckets are
/// omitted. Input must be sorted by time.
TimeSeries Resample(const TimeSeries& ts, int64_t bucket_micros, ResampleAgg agg);

/// Pearson correlation of two series after aligning both to the bucket
/// grid (only buckets present in both count). Returns 0 with <2 shared
/// buckets.
double Correlation(const TimeSeries& a, const TimeSeries& b, int64_t bucket_micros);

/// Simple moving average over a window of k points.
TimeSeries MovingAverage(const TimeSeries& ts, size_t window);

/// Pointwise difference v[i] - v[i-1] (length n-1).
TimeSeries Difference(const TimeSeries& ts);

/// Min-max normalization to [0, 1] (constant series maps to 0).
TimeSeries Normalize(const TimeSeries& ts);

/// Restricts to timestamps in [from, to).
TimeSeries Slice(const TimeSeries& ts, int64_t from, int64_t to);

/// Indexes of points whose value deviates more than `z_threshold` standard
/// deviations from the mean of the surrounding window of `window` points
/// (rolling z-score; the predictive-maintenance anomaly primitive of the
/// §V-2 scenario). Points without a full preceding window are skipped.
std::vector<size_t> DetectAnomalies(const TimeSeries& ts, size_t window,
                                    double z_threshold);

/// Summary statistics.
struct SeriesStats {
  size_t count = 0;
  double mean = 0, stddev = 0, min = 0, max = 0;
};
SeriesStats ComputeStats(const TimeSeries& ts);

/// Loads a series from a table's (timestamp, value) columns, optionally
/// restricted to rows where `key_column` == key (the "elected sensor" of
/// §II-F). Rows are sorted by time.
StatusOr<TimeSeries> SeriesFromTable(const ColumnTable& table, const ReadView& view,
                                     const std::string& ts_column,
                                     const std::string& value_column,
                                     const std::string& key_column = "",
                                     int64_t key = 0);

}  // namespace poly

#endif  // POLY_ENGINES_TIMESERIES_TS_OPS_H_
