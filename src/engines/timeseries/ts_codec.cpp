#include "engines/timeseries/ts_codec.h"

#include <bit>
#include <cstring>

namespace poly {

void BitWriter::WriteBit(bool bit) {
  size_t byte = bit_count_ / 8;
  if (byte >= buf_.size()) buf_.push_back('\0');
  if (bit) buf_[byte] = static_cast<char>(buf_[byte] | (1 << (7 - bit_count_ % 8)));
  ++bit_count_;
}

void BitWriter::WriteBits(uint64_t value, int bits) {
  for (int i = bits - 1; i >= 0; --i) WriteBit((value >> i) & 1);
}

StatusOr<bool> BitReader::ReadBit() {
  size_t byte = pos_ / 8;
  if (byte >= data_.size()) return Status::Corruption("bit stream underflow");
  bool bit = (static_cast<unsigned char>(data_[byte]) >> (7 - pos_ % 8)) & 1;
  ++pos_;
  return bit;
}

StatusOr<uint64_t> BitReader::ReadBits(int bits) {
  uint64_t v = 0;
  for (int i = 0; i < bits; ++i) {
    POLY_ASSIGN_OR_RETURN(bool bit, ReadBit());
    v = (v << 1) | (bit ? 1 : 0);
  }
  return v;
}

namespace {

uint64_t DoubleBits(double d) {
  uint64_t u;
  std::memcpy(&u, &d, 8);
  return u;
}

double BitsDouble(uint64_t u) {
  double d;
  std::memcpy(&d, &u, 8);
  return d;
}

// Delta-of-delta bucket encoding (Gorilla Table):
//   '0'                      : dod == 0
//   '10'  + 7 bits           : [-63, 64]
//   '110' + 9 bits           : [-255, 256]
//   '1110'+ 12 bits          : [-2047, 2048]
//   '1111'+ 64 bits          : anything else
void WriteDod(BitWriter* w, int64_t dod) {
  if (dod == 0) {
    w->WriteBit(false);
  } else if (dod >= -63 && dod <= 64) {
    w->WriteBits(0b10, 2);
    w->WriteBits(static_cast<uint64_t>(dod + 63), 7);
  } else if (dod >= -255 && dod <= 256) {
    w->WriteBits(0b110, 3);
    w->WriteBits(static_cast<uint64_t>(dod + 255), 9);
  } else if (dod >= -2047 && dod <= 2048) {
    w->WriteBits(0b1110, 4);
    w->WriteBits(static_cast<uint64_t>(dod + 2047), 12);
  } else {
    w->WriteBits(0b1111, 4);
    w->WriteBits(static_cast<uint64_t>(dod), 64);
  }
}

StatusOr<int64_t> ReadDod(BitReader* r) {
  POLY_ASSIGN_OR_RETURN(bool b0, r->ReadBit());
  if (!b0) return static_cast<int64_t>(0);
  POLY_ASSIGN_OR_RETURN(bool b1, r->ReadBit());
  if (!b1) {
    POLY_ASSIGN_OR_RETURN(uint64_t v, r->ReadBits(7));
    return static_cast<int64_t>(v) - 63;
  }
  POLY_ASSIGN_OR_RETURN(bool b2, r->ReadBit());
  if (!b2) {
    POLY_ASSIGN_OR_RETURN(uint64_t v, r->ReadBits(9));
    return static_cast<int64_t>(v) - 255;
  }
  POLY_ASSIGN_OR_RETURN(bool b3, r->ReadBit());
  if (!b3) {
    POLY_ASSIGN_OR_RETURN(uint64_t v, r->ReadBits(12));
    return static_cast<int64_t>(v) - 2047;
  }
  POLY_ASSIGN_OR_RETURN(uint64_t v, r->ReadBits(64));
  return static_cast<int64_t>(v);
}

}  // namespace

void CompressedSeries::Append(int64_t timestamp, double value) {
  uint64_t vbits = DoubleBits(value);
  if (count_ == 0) {
    first_ts_ = timestamp;
    bits_.WriteBits(static_cast<uint64_t>(timestamp), 64);
    bits_.WriteBits(vbits, 64);
    prev_ts_ = timestamp;
    prev_delta_ = 0;
    prev_value_bits_ = vbits;
    ++count_;
    return;
  }
  // Timestamp: delta-of-delta.
  int64_t delta = timestamp - prev_ts_;
  WriteDod(&bits_, delta - prev_delta_);
  prev_delta_ = delta;
  prev_ts_ = timestamp;

  // Value: XOR scheme.
  uint64_t x = vbits ^ prev_value_bits_;
  if (x == 0) {
    bits_.WriteBit(false);
  } else {
    bits_.WriteBit(true);
    int leading = std::countl_zero(x);
    int trailing = std::countr_zero(x);
    if (leading > 31) leading = 31;
    if (prev_leading_ >= 0 && leading >= prev_leading_ && trailing >= prev_trailing_) {
      // Fits in the previous window: '0' + meaningful bits.
      bits_.WriteBit(false);
      int meaningful = 64 - prev_leading_ - prev_trailing_;
      bits_.WriteBits(x >> prev_trailing_, meaningful);
    } else {
      // New window: '1' + 5 bits leading + 6 bits length + bits.
      bits_.WriteBit(true);
      int meaningful = 64 - leading - trailing;
      bits_.WriteBits(static_cast<uint64_t>(leading), 5);
      bits_.WriteBits(static_cast<uint64_t>(meaningful), 6);
      bits_.WriteBits(x >> trailing, meaningful);
      prev_leading_ = leading;
      prev_trailing_ = trailing;
    }
  }
  prev_value_bits_ = vbits;
  ++count_;
}

StatusOr<TimeSeries> CompressedSeries::Decompress() const {
  TimeSeries out;
  if (count_ == 0) return out;
  BitReader r(bits_.data());
  POLY_ASSIGN_OR_RETURN(uint64_t ts0, r.ReadBits(64));
  POLY_ASSIGN_OR_RETURN(uint64_t v0, r.ReadBits(64));
  int64_t ts = static_cast<int64_t>(ts0);
  uint64_t vbits = v0;
  out.Append(ts, BitsDouble(vbits));
  int64_t delta = 0;
  int leading = 0, trailing = 0;
  for (size_t i = 1; i < count_; ++i) {
    POLY_ASSIGN_OR_RETURN(int64_t dod, ReadDod(&r));
    delta += dod;
    ts += delta;
    POLY_ASSIGN_OR_RETURN(bool changed, r.ReadBit());
    if (changed) {
      POLY_ASSIGN_OR_RETURN(bool new_window, r.ReadBit());
      if (new_window) {
        POLY_ASSIGN_OR_RETURN(uint64_t lead, r.ReadBits(5));
        POLY_ASSIGN_OR_RETURN(uint64_t len, r.ReadBits(6));
        leading = static_cast<int>(lead);
        int meaningful = static_cast<int>(len);
        if (meaningful == 0) meaningful = 64;
        trailing = 64 - leading - meaningful;
        POLY_ASSIGN_OR_RETURN(uint64_t x, r.ReadBits(meaningful));
        vbits ^= x << trailing;
      } else {
        int meaningful = 64 - leading - trailing;
        POLY_ASSIGN_OR_RETURN(uint64_t x, r.ReadBits(meaningful));
        vbits ^= x << trailing;
      }
    }
    out.Append(ts, BitsDouble(vbits));
  }
  return out;
}

CompressedSeries CompressedSeries::FromSeries(const TimeSeries& ts) {
  CompressedSeries c;
  for (size_t i = 0; i < ts.size(); ++i) c.Append(ts.timestamps[i], ts.values[i]);
  return c;
}

}  // namespace poly
