#ifndef POLY_ENGINES_SCIENTIFIC_MATRIX_H_
#define POLY_ENGINES_SCIENTIFIC_MATRIX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/column_table.h"

namespace poly {

/// Dense row-major matrix. The scientific engine (§II-G, [6] "SLACID")
/// brings linear algebra to the column store so analysts stop exporting to
/// external files; E8 measures exactly that copy-out tax.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(size_t rows, size_t cols) : rows_(rows), cols_(cols), data_(rows * cols) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }
  const std::vector<double>& data() const { return data_; }

  StatusOr<DenseMatrix> Multiply(const DenseMatrix& other) const;
  DenseMatrix Transpose() const;
  StatusOr<std::vector<double>> MultiplyVector(const std::vector<double>& v) const;
  double FrobeniusNorm() const;

  bool operator==(const DenseMatrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_ && data_ == o.data_;
  }

 private:
  size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

/// Compressed sparse row matrix built from (row, col, value) triplets —
/// the natural mapping of a relational triple table onto linear algebra.
class CsrMatrix {
 public:
  struct Triplet {
    uint64_t row, col;
    double value;
  };

  /// Duplicate (row, col) entries are summed.
  static CsrMatrix FromTriplets(size_t rows, size_t cols, std::vector<Triplet> triplets);

  /// Builds from a table's (row_col, col_col, val_col) int/int/double
  /// columns under a read view — "matrices live in the database".
  static StatusOr<CsrMatrix> FromTable(const ColumnTable& table, const ReadView& view,
                                       const std::string& row_column,
                                       const std::string& col_column,
                                       const std::string& value_column);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t nnz() const { return values_.size(); }

  /// y = A x.
  StatusOr<std::vector<double>> MultiplyVector(const std::vector<double>& x) const;

  DenseMatrix ToDense() const;
  double At(size_t r, size_t c) const;

  /// Solves A x = b for symmetric positive-definite A via conjugate
  /// gradients. Returns the solution; InvalidArgument on shape mismatch,
  /// Aborted if not converged within max_iters.
  StatusOr<std::vector<double>> SolveConjugateGradient(const std::vector<double>& b,
                                                       int max_iters = 1000,
                                                       double tolerance = 1e-10) const;

  /// Largest-magnitude eigenvalue via power iteration ([6]'s headline
  /// workload). Returns the eigenvalue; eigenvector written if non-null.
  StatusOr<double> PowerIteration(int max_iters = 1000, double tolerance = 1e-9,
                                  std::vector<double>* eigenvector = nullptr) const;

 private:
  size_t rows_ = 0, cols_ = 0;
  std::vector<size_t> row_offsets_;
  std::vector<uint64_t> col_indices_;
  std::vector<double> values_;
};

/// Simulation of the §II-B/§II-G external analytics provider ("R", SAS):
/// running an operation externally first serializes the matrix out, pays a
/// simulated transfer, computes, and pays the transfer back. E8 contrasts
/// this with in-engine execution on the same data.
class ExternalAnalyticsProvider {
 public:
  /// `bandwidth_bytes_per_sec` models the DB<->R channel.
  explicit ExternalAnalyticsProvider(double bandwidth_bytes_per_sec = 100e6)
      : bandwidth_(bandwidth_bytes_per_sec) {}

  /// Computes A x externally; accumulates simulated transfer seconds.
  StatusOr<std::vector<double>> MultiplyVector(const CsrMatrix& matrix,
                                               const std::vector<double>& x);

  double transfer_seconds() const { return transfer_seconds_; }
  uint64_t bytes_transferred() const { return bytes_transferred_; }

 private:
  double bandwidth_;
  double transfer_seconds_ = 0;
  uint64_t bytes_transferred_ = 0;
};

}  // namespace poly

#endif  // POLY_ENGINES_SCIENTIFIC_MATRIX_H_
