#include "engines/scientific/matrix.h"

#include <algorithm>
#include <cmath>

namespace poly {

StatusOr<DenseMatrix> DenseMatrix::Multiply(const DenseMatrix& other) const {
  if (cols_ != other.rows_) {
    return Status::InvalidArgument("dimension mismatch in matrix multiply");
  }
  DenseMatrix out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      double a = At(i, k);
      if (a == 0) continue;
      for (size_t j = 0; j < other.cols_; ++j) {
        out.At(i, j) += a * other.At(k, j);
      }
    }
  }
  return out;
}

DenseMatrix DenseMatrix::Transpose() const {
  DenseMatrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) out.At(j, i) = At(i, j);
  }
  return out;
}

StatusOr<std::vector<double>> DenseMatrix::MultiplyVector(
    const std::vector<double>& v) const {
  if (v.size() != cols_) return Status::InvalidArgument("vector length mismatch");
  std::vector<double> out(rows_, 0);
  for (size_t i = 0; i < rows_; ++i) {
    double sum = 0;
    for (size_t j = 0; j < cols_; ++j) sum += At(i, j) * v[j];
    out[i] = sum;
  }
  return out;
}

double DenseMatrix::FrobeniusNorm() const {
  double sum = 0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

CsrMatrix CsrMatrix::FromTriplets(size_t rows, size_t cols,
                                  std::vector<Triplet> triplets) {
  std::sort(triplets.begin(), triplets.end(), [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_offsets_.assign(rows + 1, 0);
  for (size_t i = 0; i < triplets.size();) {
    size_t j = i;
    double sum = 0;
    while (j < triplets.size() && triplets[j].row == triplets[i].row &&
           triplets[j].col == triplets[i].col) {
      sum += triplets[j].value;
      ++j;
    }
    if (sum != 0 && triplets[i].row < rows && triplets[i].col < cols) {
      m.col_indices_.push_back(triplets[i].col);
      m.values_.push_back(sum);
      ++m.row_offsets_[triplets[i].row + 1];
    }
    i = j;
  }
  for (size_t r = 0; r < rows; ++r) m.row_offsets_[r + 1] += m.row_offsets_[r];
  return m;
}

StatusOr<CsrMatrix> CsrMatrix::FromTable(const ColumnTable& table, const ReadView& view,
                                         const std::string& row_column,
                                         const std::string& col_column,
                                         const std::string& value_column) {
  POLY_ASSIGN_OR_RETURN(size_t rc, table.schema().IndexOf(row_column));
  POLY_ASSIGN_OR_RETURN(size_t cc, table.schema().IndexOf(col_column));
  POLY_ASSIGN_OR_RETURN(size_t vc, table.schema().IndexOf(value_column));
  std::vector<Triplet> triplets;
  uint64_t max_row = 0, max_col = 0;
  table.ScanVisible(view, [&](uint64_t r) {
    Value rv = table.GetValue(r, rc);
    Value cv = table.GetValue(r, cc);
    Value vv = table.GetValue(r, vc);
    if (rv.is_null() || cv.is_null() || vv.is_null()) return;
    uint64_t row = static_cast<uint64_t>(rv.AsInt());
    uint64_t col = static_cast<uint64_t>(cv.AsInt());
    max_row = std::max(max_row, row);
    max_col = std::max(max_col, col);
    triplets.push_back({row, col, vv.NumericValue()});
  });
  if (triplets.empty()) return Status::InvalidArgument("no matrix entries visible");
  return FromTriplets(max_row + 1, max_col + 1, std::move(triplets));
}

StatusOr<std::vector<double>> CsrMatrix::MultiplyVector(
    const std::vector<double>& x) const {
  if (x.size() != cols_) return Status::InvalidArgument("vector length mismatch");
  std::vector<double> y(rows_, 0);
  for (size_t r = 0; r < rows_; ++r) {
    double sum = 0;
    for (size_t p = row_offsets_[r]; p < row_offsets_[r + 1]; ++p) {
      sum += values_[p] * x[col_indices_[p]];
    }
    y[r] = sum;
  }
  return y;
}

DenseMatrix CsrMatrix::ToDense() const {
  DenseMatrix out(rows_, cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t p = row_offsets_[r]; p < row_offsets_[r + 1]; ++p) {
      out.At(r, col_indices_[p]) = values_[p];
    }
  }
  return out;
}

double CsrMatrix::At(size_t r, size_t c) const {
  if (r >= rows_) return 0;
  for (size_t p = row_offsets_[r]; p < row_offsets_[r + 1]; ++p) {
    if (col_indices_[p] == c) return values_[p];
  }
  return 0;
}

StatusOr<std::vector<double>> CsrMatrix::SolveConjugateGradient(
    const std::vector<double>& b, int max_iters, double tolerance) const {
  if (rows_ != cols_) return Status::InvalidArgument("CG needs a square matrix");
  if (b.size() != rows_) return Status::InvalidArgument("rhs length mismatch");
  std::vector<double> x(rows_, 0.0);
  std::vector<double> r = b;  // residual for x = 0
  std::vector<double> p = r;
  auto dot = [](const std::vector<double>& a, const std::vector<double>& c) {
    double s = 0;
    for (size_t i = 0; i < a.size(); ++i) s += a[i] * c[i];
    return s;
  };
  double rr = dot(r, r);
  if (std::sqrt(rr) <= tolerance) return x;
  for (int it = 0; it < max_iters; ++it) {
    POLY_ASSIGN_OR_RETURN(std::vector<double> ap, MultiplyVector(p));
    double pap = dot(p, ap);
    if (pap <= 0) return Status::Aborted("matrix is not positive definite");
    double alpha = rr / pap;
    for (size_t i = 0; i < rows_; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    double rr_next = dot(r, r);
    if (std::sqrt(rr_next) <= tolerance) return x;
    double beta = rr_next / rr;
    for (size_t i = 0; i < rows_; ++i) p[i] = r[i] + beta * p[i];
    rr = rr_next;
  }
  return Status::Aborted("conjugate gradient did not converge");
}

StatusOr<double> CsrMatrix::PowerIteration(int max_iters, double tolerance,
                                           std::vector<double>* eigenvector) const {
  if (rows_ != cols_) return Status::InvalidArgument("power iteration needs square matrix");
  if (rows_ == 0) return Status::InvalidArgument("empty matrix");
  std::vector<double> v(rows_, 1.0 / std::sqrt(static_cast<double>(rows_)));
  double eigenvalue = 0;
  for (int it = 0; it < max_iters; ++it) {
    POLY_ASSIGN_OR_RETURN(std::vector<double> w, MultiplyVector(v));
    double norm = 0;
    for (double x : w) norm += x * x;
    norm = std::sqrt(norm);
    if (norm == 0) return Status::InvalidArgument("matrix maps start vector to zero");
    for (double& x : w) x /= norm;
    // Rayleigh quotient.
    POLY_ASSIGN_OR_RETURN(std::vector<double> aw, MultiplyVector(w));
    double lambda = 0;
    for (size_t i = 0; i < rows_; ++i) lambda += w[i] * aw[i];
    double diff = std::abs(lambda - eigenvalue);
    eigenvalue = lambda;
    v = std::move(w);
    if (diff < tolerance && it > 0) break;
  }
  if (eigenvector) *eigenvector = v;
  return eigenvalue;
}

StatusOr<std::vector<double>> ExternalAnalyticsProvider::MultiplyVector(
    const CsrMatrix& matrix, const std::vector<double>& x) {
  // Copy-out: triplets (8+8+8 bytes each) plus the vector; copy-in: result.
  uint64_t out_bytes = matrix.nnz() * 24 + x.size() * 8;
  uint64_t in_bytes = matrix.rows() * 8;
  bytes_transferred_ += out_bytes + in_bytes;
  transfer_seconds_ += static_cast<double>(out_bytes + in_bytes) / bandwidth_;
  return matrix.MultiplyVector(x);
}

}  // namespace poly
