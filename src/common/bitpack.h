#ifndef POLY_COMMON_BITPACK_H_
#define POLY_COMMON_BITPACK_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace poly {

/// Number of bits needed to represent values in [0, max_value].
/// Returns 1 for max_value == 0 so an all-equal column still occupies
/// one bit per row (value-ID vectors must stay addressable).
int BitsFor(uint64_t max_value);

/// Fixed-width bit-packed vector of unsigned integers — the physical
/// representation of the column store's value-ID ("reference") vectors.
/// The paper (§III) describes these as the compressed references into the
/// sorted dictionary; the SOE relaxes their compression (§IV-A), which we
/// model by choosing width 64 ("uncompressed" mode).
class BitPackedVector {
 public:
  /// Creates an empty vector storing `bits` bits per entry (1..64).
  explicit BitPackedVector(int bits = 1);

  void Append(uint64_t value);
  uint64_t Get(size_t index) const;
  void Set(size_t index, uint64_t value);

  size_t size() const { return size_; }
  int bits() const { return bits_; }
  /// Bytes of the underlying word storage.
  size_t MemoryBytes() const { return words_.size() * sizeof(uint64_t); }

  /// Returns a copy re-packed at a new width (used when a merge grows the
  /// dictionary past the current width). New width must fit all values.
  BitPackedVector Repack(int new_bits) const;

  /// Decodes [begin, end) into `out` (must have end-begin capacity).
  void Decode(size_t begin, size_t end, uint64_t* out) const;

  void Reserve(size_t n);
  void Clear();

 private:
  int bits_;
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace poly

#endif  // POLY_COMMON_BITPACK_H_
