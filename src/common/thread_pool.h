#ifndef POLY_COMMON_THREAD_POOL_H_
#define POLY_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace poly {

/// Fixed-size worker pool used by the parallel scan/merge paths, the
/// MapReduce framework, and the simulated SOE cluster services.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns a future for its completion.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace poly

#endif  // POLY_COMMON_THREAD_POOL_H_
