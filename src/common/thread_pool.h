#ifndef POLY_COMMON_THREAD_POOL_H_
#define POLY_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace poly {

/// Fixed-size worker pool used by the morsel-driven executor, the parallel
/// scan/merge paths, the MapReduce framework, and the simulated SOE cluster
/// services.
///
/// Shutdown protocol: the destructor drains the queue — every task enqueued
/// before destruction begins still runs — and then joins the workers.
///
/// Wake-up protocol: every `cv_` notification happens while `mu_` is held.
/// The destructor acquires `mu_` before it starts tearing down, so once a
/// submitter has left Submit's critical section its notification has
/// completed and can never touch a condition variable that is being
/// destroyed. Concretely: a thread that observes a submitted task's side
/// effects (e.g. through the returned future) may destroy the pool even
/// while the submitting thread is still returning from Submit.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns a future for its completion. Tasks are
  /// dispatched FIFO.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks_.emplace_back([task]() { (*task)(); });
      // Notify under the lock — see the wake-up protocol above.
      cv_.notify_one();
    }
    return fut;
  }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  ///
  /// Indices are split into chunks of `grain` (0 = automatic sizing, a few
  /// chunks per runner) handed out dynamically, and the calling thread
  /// participates as a runner, so ParallelFor always makes progress — even
  /// when every worker is busy, including when it is invoked from inside a
  /// pool task. If an invocation throws, no further chunks start, in-flight
  /// chunks finish, and the exception from the lowest-numbered failing
  /// chunk is rethrown here.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                   size_t grain = 0);

  /// Status-returning variant: the first non-OK status (lowest failing
  /// chunk) is returned after all in-flight chunks complete; remaining
  /// chunks are skipped. Exceptions propagate as in ParallelFor.
  Status ParallelForStatus(size_t n, const std::function<Status(size_t)>& fn,
                           size_t grain = 0);

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace poly

#endif  // POLY_COMMON_THREAD_POOL_H_
