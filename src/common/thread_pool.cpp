#include "common/thread_pool.h"

#include <atomic>

namespace poly {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // Chunk work so each worker gets a contiguous index range.
  size_t num_chunks = std::min(n, workers_.size());
  size_t chunk = (n + num_chunks - 1) / num_chunks;
  std::vector<std::future<void>> futs;
  futs.reserve(num_chunks);
  for (size_t c = 0; c < num_chunks; ++c) {
    size_t begin = c * chunk;
    size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    futs.push_back(Submit([begin, end, &fn]() {
      for (size_t i = begin; i < end; ++i) fn(i);
    }));
  }
  for (auto& f : futs) f.get();
}

}  // namespace poly
