#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace poly {

namespace {

/// Shared state of one ParallelFor invocation. Helpers that the scheduler
/// only gets to after the call returned (all chunks already claimed or the
/// run failed) touch nothing but this refcounted block, so they are
/// harmless stragglers rather than use-after-frees.
struct ParallelForControl {
  std::function<Status(size_t)> fn;
  size_t n = 0;
  size_t grain = 1;
  size_t num_chunks = 0;

  std::atomic<size_t> next_chunk{0};
  std::atomic<bool> failed{false};

  std::mutex mu;
  std::condition_variable idle_cv;
  size_t active_runners = 0;      ///< helpers currently executing chunks
  size_t error_chunk = SIZE_MAX;  ///< lowest chunk that failed
  Status error = Status::OK();
  std::exception_ptr eptr;

  /// Claims and runs chunks until none remain or the run has failed.
  /// Chunks are handed out in increasing order, and a failing chunk is
  /// always claimed before any chunk that would run "after" it serially,
  /// so the recorded lowest failing chunk is deterministic.
  void RunChunks() {
    for (;;) {
      size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      if (failed.load(std::memory_order_acquire)) return;
      size_t begin = c * grain;
      size_t end = std::min(n, begin + grain);
      Status s = Status::OK();
      std::exception_ptr ep;
      try {
        for (size_t i = begin; i < end && s.ok(); ++i) s = fn(i);
      } catch (...) {
        ep = std::current_exception();
      }
      if (!s.ok() || ep) {
        {
          std::lock_guard<std::mutex> lock(mu);
          if (c < error_chunk) {
            error_chunk = c;
            error = s;
            eptr = ep;
          }
        }
        failed.store(true, std::memory_order_release);
      }
    }
  }
};

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    cv_.notify_all();
  }
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

Status ThreadPool::ParallelForStatus(size_t n,
                                     const std::function<Status(size_t)>& fn,
                                     size_t grain) {
  if (n == 0) return Status::OK();
  size_t runners = workers_.size() + 1;  // workers plus the calling thread
  if (grain == 0) grain = std::max<size_t>(1, n / (runners * 4));
  auto ctl = std::make_shared<ParallelForControl>();
  ctl->fn = fn;
  ctl->n = n;
  ctl->grain = grain;
  ctl->num_chunks = (n + grain - 1) / grain;

  // Helpers beyond the chunk count would only ever no-op.
  size_t helpers = std::min(workers_.size(), ctl->num_chunks - 1);
  for (size_t h = 0; h < helpers; ++h) {
    // Deliberately not waiting on these futures: a helper that the pool
    // only schedules after all chunks are claimed must be allowed to
    // no-op *after* ParallelFor returned (otherwise a ParallelFor issued
    // from inside a pool task could deadlock waiting for helpers that
    // are queued behind itself).
    (void)Submit([ctl]() {
      {
        std::lock_guard<std::mutex> lock(ctl->mu);
        ++ctl->active_runners;
      }
      ctl->RunChunks();
      {
        std::lock_guard<std::mutex> lock(ctl->mu);
        --ctl->active_runners;
      }
      ctl->idle_cv.notify_all();
    });
  }
  ctl->RunChunks();
  // The caller's loop only exits once every chunk is claimed (or the run
  // failed, which stops stragglers); any chunk claimed by a helper was
  // claimed after that helper registered as active, so active_runners == 0
  // means every claimed chunk has finished.
  {
    std::unique_lock<std::mutex> lock(ctl->mu);
    ctl->idle_cv.wait(lock, [&]() { return ctl->active_runners == 0; });
  }
  if (ctl->eptr) std::rethrow_exception(ctl->eptr);
  return ctl->error;
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                             size_t grain) {
  (void)ParallelForStatus(
      n,
      [&fn](size_t i) {
        fn(i);
        return Status::OK();
      },
      grain);
}

}  // namespace poly
