#include "common/status.h"

namespace poly {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kCorruption: return "Corruption";
    case StatusCode::kNotImplemented: return "NotImplemented";
    case StatusCode::kAborted: return "Aborted";
    case StatusCode::kUnavailable: return "Unavailable";
    case StatusCode::kIOError: return "IOError";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace poly
