#include "common/arena.h"

#include <cstring>

namespace poly {

void* Arena::Allocate(size_t size, size_t align) {
  if (size == 0) size = 1;
  Block* block = blocks_.empty() ? AddBlock(size + align) : &blocks_.back();
  uintptr_t base = reinterpret_cast<uintptr_t>(block->data.get()) + block->used;
  uintptr_t aligned = (base + align - 1) & ~(align - 1);
  size_t padding = aligned - base;
  if (block->used + padding + size > block->size) {
    block = AddBlock(size + align);
    base = reinterpret_cast<uintptr_t>(block->data.get());
    aligned = (base + align - 1) & ~(align - 1);
    padding = aligned - base;
  }
  block->used += padding + size;
  bytes_allocated_ += size;
  return reinterpret_cast<void*>(aligned);
}

char* Arena::CopyBytes(const char* data, size_t len) {
  char* dst = static_cast<char*>(Allocate(len, 1));
  std::memcpy(dst, data, len);
  return dst;
}

void Arena::Reset() {
  if (blocks_.size() > 1) {
    Block first = std::move(blocks_.front());
    blocks_.clear();
    blocks_.push_back(std::move(first));
  }
  if (!blocks_.empty()) {
    blocks_.front().used = 0;
    bytes_reserved_ = blocks_.front().size;
  } else {
    bytes_reserved_ = 0;
  }
  bytes_allocated_ = 0;
}

Arena::Block* Arena::AddBlock(size_t min_size) {
  size_t size = std::max(block_size_, min_size);
  Block block;
  block.data = std::make_unique<char[]>(size);
  block.size = size;
  bytes_reserved_ += size;
  blocks_.push_back(std::move(block));
  return &blocks_.back();
}

}  // namespace poly
