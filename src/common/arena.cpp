#include "common/arena.h"

#include <cstring>

#include "resource/memory_budget.h"

namespace poly {

Arena::~Arena() {
  if (budget_ != nullptr && budget_charged_ > 0) {
    budget_->Release(budget_charged_);
  }
}

void Arena::BindMemoryBudget(resource::BudgetNode* budget) {
  if (budget == budget_) return;
  if (budget_ != nullptr && budget_charged_ > 0) {
    budget_->Release(budget_charged_);
    budget_charged_ = 0;
  }
  budget_ = budget;
  if (budget_ != nullptr && bytes_reserved_ > 0) {
    budget_->ForceCharge(bytes_reserved_);
    budget_charged_ = bytes_reserved_;
  }
}

void* Arena::Allocate(size_t size, size_t align) {
  if (size == 0) size = 1;
  Block* block = blocks_.empty() ? AddBlock(size + align) : &blocks_.back();
  uintptr_t base = reinterpret_cast<uintptr_t>(block->data.get()) + block->used;
  uintptr_t aligned = (base + align - 1) & ~(align - 1);
  size_t padding = aligned - base;
  if (block->used + padding + size > block->size) {
    block = AddBlock(size + align);
    base = reinterpret_cast<uintptr_t>(block->data.get());
    aligned = (base + align - 1) & ~(align - 1);
    padding = aligned - base;
  }
  block->used += padding + size;
  bytes_allocated_ += size;
  return reinterpret_cast<void*>(aligned);
}

char* Arena::CopyBytes(const char* data, size_t len) {
  char* dst = static_cast<char*>(Allocate(len, 1));
  std::memcpy(dst, data, len);
  return dst;
}

void Arena::Reset() {
  size_t released = bytes_reserved_;
  if (blocks_.size() > 1) {
    Block first = std::move(blocks_.front());
    blocks_.clear();
    blocks_.push_back(std::move(first));
  }
  if (!blocks_.empty()) {
    blocks_.front().used = 0;
    bytes_reserved_ = blocks_.front().size;
  } else {
    bytes_reserved_ = 0;
  }
  bytes_allocated_ = 0;
  if (budget_ != nullptr) {
    // Keep the charge in lockstep with bytes_reserved_ (the recycled first
    // block stays charged).
    if (released > bytes_reserved_) budget_->Release(released - bytes_reserved_);
    budget_charged_ = bytes_reserved_;
  }
}

Arena::Block* Arena::AddBlock(size_t min_size) {
  size_t size = std::max(block_size_, min_size);
  Block block;
  block.data = std::make_unique<char[]>(size);
  block.size = size;
  bytes_reserved_ += size;
  if (budget_ != nullptr) {
    budget_->ForceCharge(size);
    budget_charged_ += size;
  }
  blocks_.push_back(std::move(block));
  return &blocks_.back();
}

}  // namespace poly
