#ifndef POLY_COMMON_SERIALIZER_H_
#define POLY_COMMON_SERIALIZER_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace poly {

/// Little-endian byte writer used by the redo log, the shared log, the
/// simulated DFS blocks, and network messages. Fixed-width primitives plus
/// varint and length-prefixed strings.
class Serializer {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutRaw(&v, sizeof(v)); }
  void PutDouble(double v) { PutRaw(&v, sizeof(v)); }
  void PutVarint(uint64_t v);
  void PutString(const std::string& s);
  void PutBytes(const char* data, size_t len) { PutRaw(data, len); }

  const std::string& data() const { return buf_; }
  std::string Release() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  void PutRaw(const void* p, size_t n) {
    const char* c = static_cast<const char*>(p);
    buf_.append(c, n);
  }
  std::string buf_;
};

/// Counterpart reader; all getters fail with Corruption on underflow.
class Deserializer {
 public:
  explicit Deserializer(const std::string& data) : data_(data.data()), size_(data.size()) {}
  Deserializer(const char* data, size_t size) : data_(data), size_(size) {}

  StatusOr<uint8_t> GetU8();
  StatusOr<uint32_t> GetU32();
  StatusOr<uint64_t> GetU64();
  StatusOr<int64_t> GetI64();
  StatusOr<double> GetDouble();
  StatusOr<uint64_t> GetVarint();
  StatusOr<std::string> GetString();

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  Status Need(size_t n) {
    if (pos_ + n > size_) return Status::Corruption("serialized buffer underflow");
    return Status::OK();
  }
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace poly

#endif  // POLY_COMMON_SERIALIZER_H_
