#ifndef POLY_COMMON_EXEC_OPTIONS_H_
#define POLY_COMMON_EXEC_OPTIONS_H_

#include <cstddef>
#include <string>

namespace poly {

class ThreadPool;

namespace resource {
class BudgetNode;
}  // namespace resource

/// Knobs for morsel-driven parallel query execution, threaded from
/// `Database::set_exec_options` (session default) or per-`Executor`. The
/// default is fully serial, so MVCC-sensitive callers (transaction-local
/// reads, merge, the SOE log appliers) keep the single-threaded execution
/// they were written against; analytic entry points opt in explicitly.
struct ExecOptions {
  static constexpr size_t kDefaultMorselRows = 16384;

  /// Total threads a query may use, calling thread included. <= 1 = serial.
  size_t num_threads = 1;

  /// Rows per morsel — the dispatch granule for table scans and for
  /// splitting materialized operator inputs. Results are independent of
  /// both this value and num_threads, except that floating-point aggregate
  /// sums follow the morsel-ordered reduction tree (see DESIGN.md §5).
  size_t morsel_rows = kDefaultMorselRows;

  /// Optional externally owned worker pool. When null and num_threads > 1
  /// the executor uses its Database's shared pool (created on demand) or,
  /// for ad-hoc executors with explicit options, a private pool.
  ThreadPool* pool = nullptr;

  /// Record per-operator spans (rows in/out, bytes, wall + coordinator CPU
  /// nanos) and attach an EXPLAIN ANALYZE-style trace to the top-level
  /// ResultSet. Off by default; the cost when on is per *operator*, never
  /// per row (E21 measures it at well under 3%).
  bool trace = false;

  /// Report per-partition AccessEvents to the Database's AccessObserver
  /// (when one is attached) so the tiering heat tracker sees real workload.
  /// On by default because the cost is one virtual call per (query,
  /// partition) — nothing per row — and zero when no observer is attached.
  /// Internal scans that should not perturb heat (tier movement itself,
  /// recovery replay) turn it off.
  bool track_access = true;

  /// Workload class this query runs under ("oltp", "olap", "batch", ...).
  /// Empty means the governor's default class. Consulted whenever a
  /// ResourceGovernor is attached to the Database: `Database::Execute`
  /// admits per statement, and an ad-hoc `Executor::Execute` with no budget
  /// of its own mints a ticket in this class too (DESIGN.md §13.2) — SOE
  /// fragment execution enters through exactly that path.
  std::string workload_class;

  /// Memory budget to charge operator materializations against (hash join
  /// build sides, aggregate tables, sort/result buffers). Null = unmetered.
  /// Normally the per-query node minted by the AdmissionController; the
  /// executor holds one Reservation against it and releases everything when
  /// the query finishes, success or error (DESIGN.md §13).
  resource::BudgetNode* budget = nullptr;
};

}  // namespace poly

#endif  // POLY_COMMON_EXEC_OPTIONS_H_
